module qnp

go 1.21
