// Quickstart: generate end-to-end entangled pairs across a three-node
// quantum network (Alice — repeater — Bob).
//
// The example builds the full stack — NV-centre hardware model, link layer
// entanglement generation, the Quantum Network Protocol data plane, routing
// controller and signalling — asks for five pairs at end-to-end fidelity
// 0.8, and prints each delivery with its Bell state and exact fidelity.
package main

import (
	"fmt"
	"log"

	"qnp/internal/sim"
	"qnp/qnet"
)

func main() {
	// A linear network: n0 (Alice) — n1 (repeater) — n2 (Bob), with the
	// paper's idealised NV parameters and 2 m lab fibre.
	net := qnet.Chain(qnet.DefaultConfig(), 3)

	// Plan and install a virtual circuit for end-to-end fidelity 0.8. The
	// routing controller picks the per-link fidelity and the cutoff timer;
	// the signalling protocol installs the routing-table entries.
	vc, err := net.Establish("quickstart", "n0", "n2", 0.8, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("circuit installed: path=%v link-fidelity=%.3f cutoff=%v\n",
		vc.Plan.Path, vc.Plan.LinkFidelity, vc.Plan.Cutoff)

	// Alice (the head-end) receives pairs; both ends consume automatically.
	done := false
	vc.HandleHead(qnet.Handlers{
		AutoConsume: true,
		OnPair: func(d qnet.Delivered) {
			f := d.Pair.FidelityWith(d.At, d.State)
			fmt.Printf("pair %d at t=%v: Bell state %v, fidelity %.3f\n",
				d.Seq+1, d.At, d.State, f)
		},
		OnComplete: func(id qnet.RequestID) {
			fmt.Printf("request %q complete\n", id)
			done = true
		},
	})
	vc.HandleTail(qnet.Handlers{AutoConsume: true})

	if err := vc.Submit(qnet.Request{ID: "r1", Type: qnet.Keep, NumPairs: 5}); err != nil {
		log.Fatal(err)
	}
	net.Run(30 * sim.Second)
	if !done {
		log.Fatal("request did not complete in 30 simulated seconds")
	}
}
