// Quickstart: generate end-to-end entangled pairs across a three-node
// quantum network (Alice — repeater — Bob), declared as a Scenario.
//
// The scenario builds the full stack — NV-centre hardware model, link layer
// entanglement generation, the Quantum Network Protocol data plane, routing
// controller and signalling — asks for five pairs at end-to-end fidelity
// 0.8, and reads each delivery's Bell state and exact fidelity back from
// the unified metrics.
package main

import (
	"fmt"
	"log"

	"qnp/internal/sim"
	"qnp/qnet"
)

func main() {
	// A linear network: n0 (Alice) — n1 (repeater) — n2 (Bob), with the
	// paper's idealised NV parameters and 2 m lab fibre. The routing
	// controller picks the per-link fidelity and the cutoff timer; the
	// signalling protocol installs the circuit; the workload submits one
	// five-pair KEEP request the moment traffic opens.
	res, err := qnet.Scenario{
		Name:     "quickstart",
		Topology: qnet.ChainTopo(3),
		Circuits: []qnet.CircuitSpec{{
			ID: "quickstart", Src: "n0", Dst: "n2", Fidelity: 0.8,
			Workload:       qnet.KeepBatch{Count: 1, Pairs: 5},
			RecordFidelity: true,
		}},
		Horizon: 30 * sim.Second,
		WaitFor: []qnet.CircuitID{"quickstart"},
	}.Run()
	if err != nil {
		log.Fatal(err)
	}

	cm := res.Metrics.Circuit("quickstart")
	fmt.Printf("circuit installed: path=%v link-fidelity=%.3f cutoff=%v\n",
		cm.Path, cm.Plan.LinkFidelity, cm.Plan.Cutoff)
	for i, at := range cm.DeliveryTimes {
		fmt.Printf("pair %d at t=%v: Bell state %v, fidelity %.3f\n",
			i+1, at, cm.States[i], cm.Fidelities[i])
	}
	if !cm.AllComplete() {
		log.Fatal("request did not complete in 30 simulated seconds")
	}
	fmt.Printf("request %q complete\n", cm.Requests[0].ID)
}
