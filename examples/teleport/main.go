// Teleport: the "create and keep" use case (§3.1) — deterministic qubit
// transmission over delivered end-to-end pairs.
//
// Alice prepares data qubits in random states, requests KEEP pairs in a
// fixed final Bell state (the QNP's head-end Pauli correction), teleports
// each data qubit through its pair, and the example verifies the received
// state's fidelity at Bob against the known input. The circuit, workload
// and measurement window are declared as a Scenario; the teleportation
// itself runs in a custom head-end handler layered over the metrics.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"qnp/internal/linalg"
	"qnp/internal/quantum"
	"qnp/internal/sim"
	"qnp/qnet"
)

func main() {
	const pairs = 20
	phi := quantum.PhiPlus

	// Random pure data states |ψ> = cos(θ/2)|0> + e^{iφ} sin(θ/2)|1>.
	src := rand.New(rand.NewSource(7))
	var fidelities []float64
	var net *qnet.Network

	res, err := qnet.Scenario{
		Name:     "teleport",
		Topology: qnet.ChainTopo(3),
		// The handler needs the live network (its params and physics RNG);
		// Setup captures it before any delivery fires.
		Setup: func(n *qnet.Network) { net = n },
		Circuits: []qnet.CircuitSpec{{
			ID: "tp", Src: "n0", Dst: "n2", Fidelity: 0.85,
			Workload: qnet.Batch{Requests: []qnet.Request{{
				ID: "tp", Type: qnet.Keep, NumPairs: pairs, FinalState: &phi,
			}}},
			Head: qnet.Handlers{
				OnPair: func(d qnet.Delivered) {
					theta, ph := src.Float64()*math.Pi, src.Float64()*2*math.Pi
					v := linalg.ColumnVector(
						complex(math.Cos(theta/2), 0),
						complex(math.Sin(theta/2)*math.Cos(ph), math.Sin(theta/2)*math.Sin(ph)),
					)
					data := linalg.OuterProduct(v, v)

					// Teleport through the delivered pair: the Bell-state
					// measurement consumes Alice's half; the correction on
					// Bob's side uses the network-declared Bell state — this
					// is why the QNP must deliver the state with the pair.
					params := net.Config.Params
					out := quantum.Teleport(data, d.Pair.Rho(), d.State, params.SwapConfig(), net.Sim.Rand())
					f := real(linalg.Expectation(out, v))
					fidelities = append(fidelities, f)
					fmt.Printf("teleport %2d: declared %v, output fidelity %.3f\n", d.Seq+1, d.State, f)

					// Physically both halves are consumed by the protocol.
					for s := 0; s < 2; s++ {
						if q := d.Pair.Half(s); q != nil {
							net.Device(q.Node()).Free(q)
						}
					}
				},
			},
		}},
		Horizon: 60 * sim.Second,
		WaitFor: []qnet.CircuitID{"tp"},
	}.Run()
	if err != nil {
		log.Fatal(err)
	}

	if got := res.Metrics.Circuit("tp").Delivered; got != pairs || len(fidelities) != pairs {
		log.Fatalf("only %d/%d teleports completed", len(fidelities), pairs)
	}
	var sum float64
	for _, f := range fidelities {
		sum += f
	}
	fmt.Printf("mean teleportation fidelity over %d random states: %.3f (classical limit 2/3)\n",
		pairs, sum/float64(pairs))
}
