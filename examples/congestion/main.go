// Congestion: a compressed rerun of the paper's Fig. 8(c)/(f) story on the
// Fig. 7 dumbbell — four circuits fighting over the MA-MB bottleneck,
// declared as one multi-circuit Scenario per cutoff policy.
//
// With the long cutoff, pairs park in the bottleneck's two memory qubits
// waiting for partners that belong to other circuits: the "quantum
// congestion collapse". The short cutoff discards unmatched pairs quickly
// and restores progress.
package main

import (
	"fmt"
	"log"

	"qnp/internal/sim"
	"qnp/qnet"
)

func run(policy qnet.CutoffPolicy, name string) {
	endpoints := [][2]string{{"A0", "B0"}, {"A1", "B1"}, {"A0", "B1"}, {"A1", "B0"}}
	const pairsEach = 20

	specs := make([]qnet.CircuitSpec, len(endpoints))
	waitFor := make([]qnet.CircuitID, len(endpoints))
	for i, ep := range endpoints {
		id := qnet.CircuitID(fmt.Sprintf("c%d", i))
		specs[i] = qnet.CircuitSpec{
			ID: id, Src: ep[0], Dst: ep[1], Fidelity: 0.85, Policy: policy,
			Workload: qnet.KeepBatch{Count: 1, Pairs: pairsEach},
		}
		waitFor[i] = id
	}
	res, err := qnet.Scenario{
		Name:     "congestion-" + name,
		Topology: qnet.DumbbellTopo(),
		Circuits: specs,
		Horizon:  300 * sim.Second,
		WaitFor:  waitFor,
	}.Run()
	if err != nil {
		log.Fatal(err)
	}

	m := res.Metrics
	completed := 0
	var lastDone sim.Time
	for _, cm := range m.Circuits {
		if cm.AllComplete() {
			completed++
			if t := cm.Requests[0].CompletedAt; t > lastDone {
				lastDone = t
			}
		}
	}
	discards := m.NodeStats["MA"].Discards + m.NodeStats["MB"].Discards
	if completed == len(endpoints) {
		fmt.Printf("%-12s: all %d circuits finished %d pairs in %.1f s (bottleneck discards: %d)\n",
			name, len(endpoints), pairsEach, lastDone.Sub(m.Start).Seconds(), discards)
	} else {
		fmt.Printf("%-12s: only %d/%d circuits finished within 300 s — congestion collapse (bottleneck discards: %d)\n",
			name, completed, len(endpoints), discards)
	}
}

func main() {
	fmt.Println("four circuits × 20 pairs across the MA-MB bottleneck (Fig. 7 topology)")
	run(qnet.CutoffLong, "long cutoff")
	run(qnet.CutoffShort, "short cutoff")
}
