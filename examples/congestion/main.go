// Congestion: a compressed rerun of the paper's Fig. 8(c)/(f) story on the
// Fig. 7 dumbbell — four circuits fighting over the MA-MB bottleneck.
//
// With the long cutoff, pairs park in the bottleneck's two memory qubits
// waiting for partners that belong to other circuits: the "quantum
// congestion collapse". The short cutoff discards unmatched pairs quickly
// and restores progress.
package main

import (
	"fmt"
	"log"

	"qnp/internal/sim"
	"qnp/qnet"
)

func run(policy qnet.CutoffPolicy, name string) {
	cfg := qnet.DefaultConfig()
	net := qnet.Dumbbell(cfg)
	endpoints := [][2]string{{"A0", "B0"}, {"A1", "B1"}, {"A0", "B1"}, {"A1", "B0"}}
	const pairsEach = 20

	completed := 0
	start := net.Sim.Now()
	var lastDone sim.Time
	for i, ep := range endpoints {
		vc, err := net.Establish(qnet.CircuitID(fmt.Sprintf("c%d", i)), ep[0], ep[1], 0.85,
			&qnet.CircuitOptions{Policy: policy})
		if err != nil {
			log.Fatal(err)
		}
		vc.HandleTail(qnet.Handlers{AutoConsume: true})
		vc.HandleHead(qnet.Handlers{
			AutoConsume: true,
			OnComplete: func(qnet.RequestID) {
				completed++
				lastDone = net.Sim.Now()
			},
		})
		if err := vc.Submit(qnet.Request{ID: "r", Type: qnet.Keep, NumPairs: pairsEach}); err != nil {
			log.Fatal(err)
		}
	}
	net.Run(300 * sim.Second)
	discards := uint64(0)
	for _, id := range []string{"MA", "MB"} {
		discards += net.Node(id).Stats().Discards
	}
	if completed == len(endpoints) {
		fmt.Printf("%-12s: all %d circuits finished %d pairs in %.1f s (bottleneck discards: %d)\n",
			name, len(endpoints), pairsEach, lastDone.Sub(start).Seconds(), discards)
	} else {
		fmt.Printf("%-12s: only %d/%d circuits finished within 300 s — congestion collapse (bottleneck discards: %d)\n",
			name, completed, len(endpoints), discards)
	}
}

func main() {
	fmt.Println("four circuits × 20 pairs across the MA-MB bottleneck (Fig. 7 topology)")
	run(qnet.CutoffLong, "long cutoff")
	run(qnet.CutoffShort, "short cutoff")
}
