// Distillation: the §4.3 layered service built ON TOP of the QNP — the
// paper's argument for designing the protocol as a building block.
//
// A QNP circuit runs between two nodes and feeds its delivered pairs to a
// DEJMPS distillation module, which consumes pairs two at a time and, on
// success, emits one higher-fidelity pair. The example compares the raw
// circuit fidelity with the distilled fidelity and reports the yield. The
// circuit and workload are a Scenario; the distillation module is a custom
// head-end handler holding every other pair.
package main

import (
	"fmt"
	"log"

	"qnp/internal/device"
	"qnp/internal/quantum"
	"qnp/internal/sim"
	"qnp/qnet"
)

func main() {
	const rawPairs = 120
	phi := quantum.PhiPlus

	var net *qnet.Network
	var hold *device.Pair
	var rawFids, distFids []float64
	attempts, successes := 0, 0

	consume := func(p *device.Pair) {
		for s := 0; s < 2; s++ {
			if q := p.Half(s); q != nil {
				net.Device(q.Node()).Free(q)
			}
		}
	}

	// Ask for a deliberately modest fidelity: distillation exists to buy
	// back what long paths lose.
	_, err := qnet.Scenario{
		Name:     "distillation",
		Topology: qnet.ChainTopo(4),
		Setup:    func(n *qnet.Network) { net = n },
		Circuits: []qnet.CircuitSpec{{
			ID: "dist", Src: "n0", Dst: "n3", Fidelity: 0.75,
			Workload: qnet.Batch{Requests: []qnet.Request{{
				ID: "d", Type: qnet.Keep, NumPairs: rawPairs, FinalState: &phi,
			}}},
			Head: qnet.Handlers{
				OnPair: func(d qnet.Delivered) {
					params := net.Config.Params
					rawFids = append(rawFids, d.Pair.FidelityWith(d.At, d.State))
					// Rotate into the canonical Φ+ frame so DEJMPS's success
					// rule applies, using the network-declared state.
					dd := d.State ^ quantum.PhiPlus
					d.Pair.ApplyPauli(0, dd.XBit(), dd.ZBit())
					// Bilateral Pauli twirl: the same random Pauli on both
					// halves preserves the Φ+ component and kills coherences
					// between the error components, pushing the state toward
					// Bell-diagonal — the form DEJMPS distills best. Locally
					// free.
					tw := uint8(net.Sim.Rand().Intn(4))
					d.Pair.ApplyPauli(0, tw&1, tw>>1)
					d.Pair.ApplyPauli(1, tw&1, tw>>1)
					if hold == nil {
						hold = d.Pair
						return
					}
					// Two pairs between the same end-points: one DEJMPS round.
					attempts++
					r := quantum.Distill(hold.StateAt(d.At), d.Pair.StateAt(d.At), params.SwapConfig(), net.Sim.Rand())
					if r.OK {
						successes++
						distFids = append(distFids, quantum.Fidelity(r.Rho, quantum.PhiPlus))
					}
					consume(hold)
					consume(d.Pair)
					hold = nil
				},
			},
		}},
		Horizon: 240 * sim.Second,
		WaitFor: []qnet.CircuitID{"dist"},
	}.Run()
	if err != nil {
		log.Fatal(err)
	}

	if len(distFids) == 0 {
		log.Fatal("no distillation successes")
	}
	fmt.Printf("raw pairs delivered: %d, mean fidelity %.3f\n", len(rawFids), mean(rawFids))
	fmt.Printf("distillation rounds: %d, successes: %d (yield %.0f%%)\n",
		attempts, successes, 100*float64(successes)/float64(attempts))
	fmt.Printf("distilled mean fidelity %.3f (raw %.3f)\n", mean(distFids), mean(rawFids))
	if mean(distFids) > mean(rawFids) {
		fmt.Println("distillation improved fidelity — the layered service works")
	}
}

func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
