// QKD: the paper's flagship "measure directly" use case (§3.1) — an
// E91-style entanglement-based key exchange over a repeater chain.
//
// Alice and Bob request EARLY delivery so each qubit is measured the moment
// it becomes available (minimising decoherence), in a locally chosen random
// basis. After tracking confirms each pair, the bases are sifted over the
// classical channel: matching-basis rounds become key bits, and the
// quantum bit error rate (QBER) bounds the eavesdropper. The circuit and
// workload are a Scenario; the early-measurement protocol runs in custom
// handlers at both ends.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"qnp/internal/linklayer"
	"qnp/internal/quantum"
	"qnp/internal/sim"
	"qnp/qnet"
)

type round struct {
	basis quantum.Basis
	bit   int
	state quantum.BellIndex
	ok    bool
}

func main() {
	const pairs = 200

	// Local basis choices are private randomness, separate from the
	// simulation's physics stream.
	aliceRng := rand.New(rand.NewSource(101))
	bobRng := rand.New(rand.NewSource(202))
	// Rounds are keyed by the local link-pair correlator at measurement
	// time; tracking confirmation later reveals the canonical chain ID that
	// joins Alice's and Bob's records (their local correlators differ).
	alicePending := make(map[linklayer.Correlator]*round)
	bobPending := make(map[linklayer.Correlator]*round)
	alice := make(map[linklayer.Correlator]*round)
	bob := make(map[linklayer.Correlator]*round)

	var net *qnet.Network
	measureEarly := func(node string, rng *rand.Rand, pending map[linklayer.Correlator]*round) func(qnet.Delivered) {
		return func(d qnet.Delivered) {
			r := &round{basis: quantum.Basis(rng.Intn(2) + 1)} // X or Y basis
			pending[d.LocalCorr] = r
			side := d.Pair.LocalSide(node)
			net.Device(node).MeasureHalf(d.Pair.Half(side), r.basis, func(bit int) {
				r.bit = bit
			})
		}
	}
	confirm := func(pending, confirmed map[linklayer.Correlator]*round) func(qnet.Delivered) {
		return func(d qnet.Delivered) {
			if r, found := pending[d.LocalCorr]; found {
				delete(pending, d.LocalCorr)
				r.state = d.State
				r.ok = true
				confirmed[d.Corr] = r
			}
		}
	}

	res, err := qnet.Scenario{
		Name:     "qkd",
		Topology: qnet.ChainTopo(4), // two repeaters between the ends
		Setup:    func(n *qnet.Network) { net = n },
		Circuits: []qnet.CircuitSpec{{
			ID: "qkd", Src: "n0", Dst: "n3", Fidelity: 0.9,
			Workload: qnet.Batch{Requests: []qnet.Request{{
				ID: "key", Type: qnet.Early, NumPairs: pairs,
			}}},
			Head: qnet.Handlers{
				OnEarlyPair: measureEarly("n0", aliceRng, alicePending),
				OnPair:      confirm(alicePending, alice),
			},
			Tail: qnet.Handlers{
				OnEarlyPair: measureEarly("n3", bobRng, bobPending),
				OnPair:      confirm(bobPending, bob),
			},
		}},
		Horizon: 120 * sim.Second,
		WaitFor: []qnet.CircuitID{"qkd"},
	}.Run()
	if err != nil {
		log.Fatal(err)
	}
	cm := res.Metrics.Circuit("qkd")
	fmt.Printf("QKD circuit: path=%v link-fidelity=%.3f; %d early hand-offs, %d confirmed\n",
		cm.Path, cm.Plan.LinkFidelity, cm.EarlyDelivered, cm.Delivered)

	// Sifting: keep rounds where both confirmed and bases matched. The
	// expected correlation depends on the delivered Bell state: in the X
	// basis Φ states correlate and Ψ states correlate (X⊗X eigenvalue +1
	// for Φ+ and Ψ+, −1 for Φ− and Ψ−); Bob flips his bit accordingly.
	sifted, errors := 0, 0
	for corr, ra := range alice {
		rb, found := bob[corr]
		if !found || !ra.ok || !rb.ok || ra.basis != rb.basis {
			continue
		}
		sifted++
		expectEqual := expectedCorrelation(ra.state, ra.basis)
		if (ra.bit == rb.bit) != expectEqual {
			errors++
		}
	}
	if sifted == 0 {
		log.Fatal("no sifted rounds")
	}
	qber := float64(errors) / float64(sifted)
	fmt.Printf("rounds=%d sifted=%d QBER=%.1f%%\n", len(alice), sifted, qber*100)
	// For the requested fidelity (~0.85) the QBER should sit well under the
	// ~11%% BB84/E91 security threshold.
	if qber < 0.11 {
		fmt.Println("QBER below the 11% security threshold: key distillation possible")
	} else {
		fmt.Println("QBER too high for secure key distillation")
	}
}

// expectedCorrelation reports whether same-basis outcomes agree for the
// given Bell state: the ±1 eigenvalues of X⊗X and Y⊗Y per state.
func expectedCorrelation(idx quantum.BellIndex, basis quantum.Basis) bool {
	switch basis {
	case quantum.XBasis: // +1 for Φ+, Ψ+; −1 for Φ−, Ψ−
		return idx == quantum.PhiPlus || idx == quantum.PsiPlus
	case quantum.YBasis: // +1 for Ψ+, Φ−; −1 for Φ+, Ψ−
		return idx == quantum.PsiPlus || idx == quantum.PhiMinus
	default: // Z: +1 for Φ states
		return idx.XBit() == 0
	}
}
