package qnp

import (
	"testing"

	"qnp/internal/runner"
	"qnp/qnet"
)

// The root package holds the benchmark harness; these tests keep the
// harness's own helpers honest so a broken bench shows up in `go test`
// rather than only when someone next runs -bench.

// TestBenchOptsSeeds checks successive bench iterations get distinct,
// deterministic seeds.
func TestBenchOptsSeeds(t *testing.T) {
	seen := map[int64]bool{}
	for i := 0; i < 100; i++ {
		o := benchOpts(i)
		if !o.Quick {
			t.Fatal("bench options must be quick-sized")
		}
		if seen[o.Seed] {
			t.Fatalf("duplicate bench seed %d at iteration %d", o.Seed, i)
		}
		seen[o.Seed] = true
	}
	if got, want := benchOpts(3).Seed, runner.DeriveSeed(3, 1); got != want {
		t.Errorf("benchOpts(3).Seed = %d, want %d", got, want)
	}
}

// TestDeliverPairs exercises the ablation benches' workhorse end to end:
// a 3-node circuit must actually deliver the pairs and report a positive,
// reproducible simulated duration.
func TestDeliverPairs(t *testing.T) {
	const pairs = 5
	simS := deliverPairs(1, qnet.CutoffLong, pairs)
	if simS <= 0 {
		t.Fatalf("simulated duration %v", simS)
	}
	if again := deliverPairs(1, qnet.CutoffLong, pairs); again != simS {
		t.Errorf("same seed gave %v then %v simulated seconds", simS, again)
	}
	// The no-cutoff ablation must also run (it may be slower, not stuck).
	if s := deliverPairs(1, qnet.CutoffNone, 2); s <= 0 {
		t.Errorf("no-cutoff run reported %v simulated seconds", s)
	}
}

// TestDiscardWriter keeps the io sink used by the table bench valid.
func TestDiscardWriter(t *testing.T) {
	n, err := discard{}.Write(make([]byte, 42))
	if n != 42 || err != nil {
		t.Errorf("discard.Write = (%d, %v)", n, err)
	}
}
