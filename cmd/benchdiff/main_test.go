package main

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFile(t *testing.T, dir, name string, f File) string {
	t.Helper()
	data, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// captureCompare runs runCompare with stdout captured.
func captureCompare(t *testing.T, oldPath, newPath string, threshold float64) (bool, string) {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	saved := os.Stdout
	os.Stdout = w
	ok, cmpErr := runCompare(oldPath, newPath, threshold)
	os.Stdout = saved
	w.Close()
	var sb strings.Builder
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		sb.WriteString(sc.Text())
		sb.WriteString("\n")
	}
	if cmpErr != nil {
		t.Fatalf("runCompare: %v", cmpErr)
	}
	return ok, sb.String()
}

// TestCompareReportsNewBenches: a benchmark present only in the new run
// must be listed as "new ... (no baseline ...)" without failing the gate,
// while regressions on shared benches still fail.
func TestCompareReportsNewBenches(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeFile(t, dir, "old.json", File{Benchmarks: map[string]Result{
		"BenchmarkShared": {NsOp: 100, AllocsOp: 10},
	}})
	newPath := writeFile(t, dir, "new.json", File{Benchmarks: map[string]Result{
		"BenchmarkShared": {NsOp: 105, AllocsOp: 10},
		"BenchmarkFresh":  {NsOp: 42, AllocsOp: 1},
	}})
	ok, out := captureCompare(t, oldPath, newPath, 0.15)
	if !ok {
		t.Errorf("compare failed; output:\n%s", out)
	}
	if !strings.Contains(out, "new ") || !strings.Contains(out, "BenchmarkFresh") || !strings.Contains(out, "no baseline") {
		t.Errorf("new-only bench not reported:\n%s", out)
	}
	if !strings.Contains(out, "ok    BenchmarkShared") {
		t.Errorf("shared bench line missing:\n%s", out)
	}
}

// TestCompareStillFailsOnMissingAndRegressed: vanished benches and
// threshold breaches keep failing the gate with the new-bench pass in
// place.
func TestCompareStillFailsOnMissingAndRegressed(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeFile(t, dir, "old.json", File{Benchmarks: map[string]Result{
		"BenchmarkGone":   {NsOp: 50, AllocsOp: 5},
		"BenchmarkShared": {NsOp: 100, AllocsOp: 10},
	}})
	newPath := writeFile(t, dir, "new.json", File{Benchmarks: map[string]Result{
		"BenchmarkShared": {NsOp: 200, AllocsOp: 10},
		"BenchmarkFresh":  {NsOp: 42, AllocsOp: 1},
	}})
	ok, out := captureCompare(t, oldPath, newPath, 0.15)
	if ok {
		t.Errorf("compare passed despite missing + regressed benches:\n%s", out)
	}
	if !strings.Contains(out, "missing from") {
		t.Errorf("vanished bench not flagged:\n%s", out)
	}
	if !strings.Contains(out, "FAIL  BenchmarkShared") {
		t.Errorf("regression not flagged:\n%s", out)
	}
}
