// Command benchdiff normalises `go test -bench -benchmem` output into the
// repository's BENCH_*.json format and compares two such files with
// benchstat-style regression thresholds. CI and developers run the same
// binary, so the gate that fails a pull request is exactly reproducible
// locally:
//
//	go test -run='^$' -bench='Fig|Topology|SwapHeavy' -benchtime=2x -benchmem . |
//	    go run ./cmd/benchdiff -parse -sha $(git rev-parse --short HEAD) -out BENCH_new.json
//	go run ./cmd/benchdiff -compare BENCH_baseline.json BENCH_new.json
//
// Compare exits non-zero when ns/op or allocs/op regress by more than the
// threshold (default 15%) on any benchmark present in both files.
// Benchmarks present only in the new file are listed as "new (no
// baseline)" without failing the gate; benchmarks that vanished from
// the new file fail it.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Result is one benchmark's normalised numbers.
type Result struct {
	NsOp     float64            `json:"ns_op"`
	AllocsOp float64            `json:"allocs_op"`
	BytesOp  float64            `json:"bytes_op"`
	Metrics  map[string]float64 `json:"metrics,omitempty"`
}

// File is the BENCH_*.json schema.
type File struct {
	SHA        string            `json:"sha,omitempty"`
	Date       string            `json:"date,omitempty"`
	GoVersion  string            `json:"go_version,omitempty"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

func main() {
	parse := flag.Bool("parse", false, "parse `go test -bench` output from stdin into JSON")
	compare := flag.Bool("compare", false, "compare two BENCH_*.json files: -compare old.json new.json")
	sha := flag.String("sha", "", "commit SHA recorded in parsed output")
	out := flag.String("out", "", "output file for -parse (default stdout)")
	threshold := flag.Float64("threshold", 0.15, "relative regression threshold for ns/op and allocs/op")
	flag.Parse()

	switch {
	case *parse:
		if err := runParse(*sha, *out); err != nil {
			fatal(err)
		}
	case *compare:
		if flag.NArg() != 2 {
			fatal(fmt.Errorf("-compare needs exactly two files, got %d", flag.NArg()))
		}
		ok, err := runCompare(flag.Arg(0), flag.Arg(1), *threshold)
		if err != nil {
			fatal(err)
		}
		if !ok {
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(2)
}

// normalizeName strips the -GOMAXPROCS suffix so runs from machines with
// different core counts compare by benchmark identity.
func normalizeName(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

// parseBench reads `go test -bench` text and returns the normalised results.
func parseBench(r *bufio.Scanner) (map[string]Result, error) {
	results := make(map[string]Result)
	for r.Scan() {
		line := strings.TrimSpace(r.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name, iterations, then value/unit pairs.
		if len(fields) < 4 {
			continue
		}
		name := normalizeName(fields[0])
		res := Result{Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("line %q: bad value %q", line, fields[i])
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				res.NsOp = v
			case "allocs/op":
				res.AllocsOp = v
			case "B/op":
				res.BytesOp = v
			default:
				res.Metrics[unit] = v
			}
		}
		if len(res.Metrics) == 0 {
			res.Metrics = nil
		}
		results[name] = res
	}
	return results, r.Err()
}

func runParse(sha, out string) error {
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	results, err := parseBench(sc)
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return errors.New("no Benchmark lines found on stdin")
	}
	f := File{
		SHA:        sha,
		Date:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		Benchmarks: results,
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(out, data, 0o644)
}

func load(path string) (File, error) {
	var f File
	data, err := os.ReadFile(path)
	if err != nil {
		return f, err
	}
	if err := json.Unmarshal(data, &f); err != nil {
		return f, fmt.Errorf("%s: %w", path, err)
	}
	return f, nil
}

// runCompare prints a delta table and reports whether the new results stay
// within the threshold on every benchmark both files share.
func runCompare(oldPath, newPath string, threshold float64) (bool, error) {
	oldF, err := load(oldPath)
	if err != nil {
		return false, err
	}
	newF, err := load(newPath)
	if err != nil {
		return false, err
	}
	var names, missing []string
	ok := true
	for name := range oldF.Benchmarks {
		if _, present := newF.Benchmarks[name]; present {
			names = append(names, name)
		} else {
			// A benchmark that vanished is a failure, not a warning: a
			// crashed or renamed bench must not slip past the gate green.
			missing = append(missing, name)
			ok = false
		}
	}
	sort.Strings(missing)
	for _, name := range missing {
		fmt.Printf("FAIL  %-32s missing from %s\n", name, newPath)
	}
	// Benchmarks present only in the new run are reported, not gated:
	// freshly added benches have no baseline to regress against, but
	// listing them keeps the reviewer's cue to check one in visible —
	// silently ignoring them is how baselines go stale.
	var fresh []string
	for name := range newF.Benchmarks {
		if _, present := oldF.Benchmarks[name]; !present {
			fresh = append(fresh, name)
		}
	}
	sort.Strings(fresh)
	for _, name := range fresh {
		n := newF.Benchmarks[name]
		fmt.Printf("new   %-32s ns/op %14.0f                             allocs/op %10.0f   (no baseline in %s)\n",
			name, n.NsOp, n.AllocsOp, oldPath)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return false, fmt.Errorf("no common benchmarks between %s and %s", oldPath, newPath)
	}
	for _, name := range names {
		o, n := oldF.Benchmarks[name], newF.Benchmarks[name]
		nsBad := exceeds(o.NsOp, n.NsOp, threshold)
		allocBad := exceeds(o.AllocsOp, n.AllocsOp, threshold)
		status := "ok  "
		if nsBad || allocBad {
			status = "FAIL"
			ok = false
		}
		fmt.Printf("%s  %-32s ns/op %14.0f -> %14.0f (%+6.1f%%)   allocs/op %10.0f -> %10.0f (%+6.1f%%)\n",
			status, name, o.NsOp, n.NsOp, delta(o.NsOp, n.NsOp),
			o.AllocsOp, n.AllocsOp, delta(o.AllocsOp, n.AllocsOp))
	}
	if !ok {
		fmt.Printf("\nregression beyond %.0f%% threshold vs %s\n", threshold*100, oldPath)
	}
	return ok, nil
}

// exceeds reports whether new regresses past the threshold. A zero baseline
// is a hard contract (a benchmark that reached 0 allocs/op must stay there),
// so any increase from 0 fails regardless of the relative threshold.
func exceeds(old, new, threshold float64) bool {
	if old <= 0 {
		return new > 0
	}
	return new > old*(1+threshold)
}

func delta(old, new float64) float64 {
	if old <= 0 {
		return 0
	}
	return (new - old) / old * 100
}
