// Command figures regenerates the paper's evaluation tables and figures
// (§5) on this repository's simulator and prints the series as text tables.
//
// Usage:
//
//	figures -fig all            # everything, default size
//	figures -fig 8 -runs 3      # one figure
//	figures -fig 10ab -quick    # smoke-test size
//
// Figure IDs: 5, 8, 9, 10ab, 10c, 11, tables, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"qnp/internal/experiments"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 5, 8, 9, 10ab, 10c, 11, tables, all")
	runs := flag.Int("runs", 0, "independent simulation runs per point (0 = default)")
	quick := flag.Bool("quick", false, "shrink workloads for a smoke run")
	seed := flag.Int64("seed", 1, "base random seed")
	flag.Parse()

	o := experiments.DefaultOptions()
	if *quick {
		o = experiments.QuickOptions()
	}
	if *runs > 0 {
		o.Runs = *runs
	}
	o.Seed = *seed

	w := os.Stdout
	run := func(name string, fn func()) {
		t0 := time.Now()
		fn()
		fmt.Fprintf(w, "[%s regenerated in %.1fs]\n", name, time.Since(t0).Seconds())
	}
	want := func(name string) bool { return *fig == name || *fig == "all" }

	if want("tables") {
		run("tables", func() { experiments.WriteTables(w) })
	}
	if want("5") {
		run("fig5", func() { experiments.Fig5(o).Print(w) })
	}
	if want("8") {
		run("fig8", func() { experiments.Fig8(o).Print(w) })
	}
	if want("9") {
		run("fig9", func() { experiments.Fig9(o).Print(w) })
	}
	if want("10ab") {
		run("fig10ab", func() { experiments.Fig10AB(o).Print(w) })
	}
	if want("10c") {
		run("fig10c", func() { experiments.Fig10C(o).Print(w) })
	}
	if want("11") {
		run("fig11", func() { experiments.Fig11(o).Print(w) })
	}
}
