// Command figures regenerates the paper's evaluation tables and figures
// (§5) on this repository's simulator and prints the series as text tables,
// plus the scenario-API extensions that go beyond the paper: the topology
// sweep, star hub contention, grid/Waxman path diversity, and the EER
// admission-control saturation study.
//
// Usage:
//
//	figures -fig all            # everything, default size
//	figures -fig 8 -runs 3      # one figure
//	figures -fig 10ab -quick    # smoke-test size
//	figures -fig hub -progress  # hub contention with a progress ticker
//
// Figure IDs: 5, 8, 9, 10ab, 10c, 11, tables, topo, hub, diversity, eer,
// churn, multipath, all.
//
// Replicas fan out across a worker pool (-workers, default NumCPU), across
// N re-exec'd worker processes with -shards N, or across a work-stealing
// fleet of worker endpoints with -fleet N (add -resume DIR for a
// checkpoint journal that survives kills); the per-replica seeding makes
// every figure bit-identical for any worker, shard or endpoint count.
// Ctrl-C cancels the in-flight figure.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"time"

	"qnp/internal/experiments"
	"qnp/internal/runner"
	"qnp/qnet"
)

func main() {
	// A process spawned as a shard worker serves its replica range and
	// exits here, before flag parsing.
	runner.MaybeWorker()

	fig := flag.String("fig", "all", "figure to regenerate: 5, 8, 9, 10ab, 10c, 11, tables, topo, hub, diversity, eer, churn, multipath, all, or city (not in all: the city-scale streaming-metrics study runs only when asked for)")
	runs := flag.Int("runs", 0, "independent simulation runs per point (0 = default)")
	quick := flag.Bool("quick", false, "shrink workloads for a smoke run")
	seed := flag.Int64("seed", 1, "base random seed")
	workers := flag.Int("workers", 0, "replica worker pool size (0 = NumCPU)")
	shards := flag.Int("shards", 0, "worker processes to shard replica grids across (0 = in-process; 11 and tables have no grid and always run in-process)")
	fleet := flag.Int("fleet", 0, "local fleet endpoints to work-steal replica grids across (0 = no fleet; exclusive with -shards)")
	fleetThrottle := flag.Duration("fleet-throttle", 0, "artificial per-chunk delay on the last fleet endpoint (steal-schedule testing; results are unaffected)")
	resume := flag.String("resume", "", "checkpoint journal directory: completed replicas spill here and a re-run resumes instead of restarting (implies -fleet 1)")
	workerTimeout := flag.Duration("worker-timeout", 0, "liveness bound for -shards/-fleet workers (0 = backend default of 10m; negative disables)")
	progress := flag.Bool("progress", false, "print replica progress to stderr")
	physics := flag.String("physics", "exact", "pair-state engine for the validation figures (9, eer, churn, city): exact or werner; the other figures always run exact")
	flag.Parse()

	o := experiments.DefaultOptions()
	if *quick {
		o = experiments.QuickOptions()
	}
	if *runs > 0 {
		o.Runs = *runs
	}
	o.Seed = *seed
	o.Workers = *workers
	switch *physics {
	case "exact":
		o.Physics = qnet.PhysicsExact
	case "werner":
		o.Physics = qnet.PhysicsWerner
	default:
		fmt.Fprintf(os.Stderr, "unknown physics engine %q (want exact or werner)\n", *physics)
		os.Exit(2)
	}
	if *resume != "" && *fleet == 0 {
		*fleet = 1 // only Fleet journals; resuming implies one
	}
	o.Timeout = *workerTimeout
	switch {
	case *fleet > 0 && *shards > 0:
		fmt.Fprintln(os.Stderr, "-fleet and -shards are exclusive: pick one backend")
		os.Exit(2)
	case *fleet > 0:
		eps := make([]runner.Endpoint, *fleet)
		for i := range eps {
			eps[i].Name = fmt.Sprintf("local-%d", i)
		}
		if *fleetThrottle > 0 {
			eps[len(eps)-1].Throttle = *fleetThrottle
		}
		o.Backend = runner.Fleet{Endpoints: eps, Journal: *resume}
	case *shards > 0:
		o.Backend = runner.Subprocess{Shards: *shards}
	}
	if o.Backend != nil {
		// Fig. 11 is a single staircase run and the tables are closed-form:
		// neither has a replica grid, so sharding cannot apply to them.
		if *fig == "11" || *fig == "tables" {
			fmt.Fprintf(os.Stderr, "note: -fig %s has no replica grid; -shards/-fleet have no effect on it\n", *fig)
		}
	}
	if *progress {
		o.Progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\r%d/%d replicas", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	o.Context = ctx

	w := os.Stdout
	// Figures compute first, print after: a Ctrl-C mid-figure leaves the
	// aggregates holding zeros for replicas that never ran, so an
	// interrupted figure's output is discarded rather than printed.
	// Stdout carries only deterministic figure data — wall-clock timing
	// goes to stderr — so the same seed renders byte-identical stdout for
	// any worker or shard count (the CI sharded-equivalence job diffs it).
	run := func(name string, fn func() interface{ Print(io.Writer) }) {
		if ctx.Err() != nil {
			fmt.Fprintf(w, "[%s skipped: interrupted]\n", name)
			return
		}
		t0 := time.Now()
		d := fn()
		if ctx.Err() != nil {
			fmt.Fprintf(w, "[%s interrupted: partial results discarded]\n", name)
			return
		}
		d.Print(w)
		fmt.Fprintf(os.Stderr, "[%s regenerated in %.1fs]\n", name, time.Since(t0).Seconds())
	}
	want := func(name string) bool { return *fig == name || *fig == "all" }

	if want("tables") {
		// Tables are closed-form (no replicas), printed directly.
		if ctx.Err() == nil {
			t0 := time.Now()
			experiments.WriteTables(w)
			fmt.Fprintf(os.Stderr, "[tables regenerated in %.1fs]\n", time.Since(t0).Seconds())
		}
	}
	if want("5") {
		run("fig5", func() interface{ Print(io.Writer) } { return experiments.Fig5(o) })
	}
	if want("8") {
		run("fig8", func() interface{ Print(io.Writer) } { return experiments.Fig8(o) })
	}
	if want("9") {
		run("fig9", func() interface{ Print(io.Writer) } { return experiments.Fig9(o) })
	}
	if want("10ab") {
		run("fig10ab", func() interface{ Print(io.Writer) } { return experiments.Fig10AB(o) })
	}
	if want("10c") {
		run("fig10c", func() interface{ Print(io.Writer) } { return experiments.Fig10C(o) })
	}
	if want("11") {
		run("fig11", func() interface{ Print(io.Writer) } { return experiments.Fig11(o) })
	}
	if want("topo") {
		run("topo", func() interface{ Print(io.Writer) } { return experiments.TopologySweep(o) })
	}
	if want("hub") {
		run("hub", func() interface{ Print(io.Writer) } { return experiments.HubContention(o) })
	}
	if want("diversity") {
		run("diversity", func() interface{ Print(io.Writer) } { return experiments.PathDiversity(o) })
	}
	if want("eer") {
		run("eer", func() interface{ Print(io.Writer) } { return experiments.EERSaturation(o) })
	}
	if want("churn") {
		run("churn", func() interface{ Print(io.Writer) } { return experiments.Churn(o) })
	}
	if want("multipath") {
		run("multipath", func() interface{ Print(io.Writer) } { return experiments.Multipath(o) })
	}
	// The city study is opt-in, not part of "all": it is far larger than
	// the paper figures (a 225-node grid under thousands of churning
	// circuits) and exists to exercise streaming metrics at a scale the
	// full-record mode cannot hold.
	if *fig == "city" {
		if o.Physics == qnet.PhysicsWerner {
			// The Werner city variant regenerates the study under both
			// engines — exact first, its output discarded — so stderr can
			// report the two wall times side by side. Stdout carries the
			// Werner run's (byte-identical) table, keeping the
			// sharded-equivalence diff meaningful.
			if ctx.Err() != nil {
				fmt.Fprintf(w, "[city skipped: interrupted]\n")
				return
			}
			exactO := o
			exactO.Physics = qnet.PhysicsExact
			t0 := time.Now()
			experiments.City(exactO)
			exactS := time.Since(t0).Seconds()
			t1 := time.Now()
			d := experiments.City(o)
			wernerS := time.Since(t1).Seconds()
			if ctx.Err() != nil {
				fmt.Fprintf(w, "[city interrupted: partial results discarded]\n")
				return
			}
			d.Print(w)
			fmt.Fprintf(os.Stderr, "[city regenerated: exact %.1fs, werner %.1fs]\n", exactS, wernerS)
		} else {
			run("city", func() interface{ Print(io.Writer) } { return experiments.City(o) })
		}
	}
}
