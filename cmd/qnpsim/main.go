// Command qnpsim runs an ad-hoc QNP scenario from flags: any generated
// topology (chain, dumbbell, ring, star, grid, Waxman random graph), one
// circuit, one request, and a summary of what the network delivered.
//
// Examples:
//
//	qnpsim -nodes 4 -fidelity 0.85 -pairs 20
//	qnpsim -topology dumbbell -src A0 -dst B1 -fidelity 0.8 -pairs 10 -cutoff short
//	qnpsim -topology grid -rows 3 -cols 3 -fidelity 0.8 -pairs 5
//	qnpsim -topology random -nodes 10 -seed 7 -pairs 5
//	qnpsim -nearterm -nodes 3 -fidelity 0.5 -pairs 5
//
// When -src/-dst are omitted the circuit spans the topology's diameter.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"qnp/internal/routing"
	"qnp/internal/sim"
	"qnp/qnet"
)

func main() {
	topology := flag.String("topology", "chain", "chain, dumbbell, ring, star, grid or random")
	nodes := flag.Int("nodes", 3, "node count (chain, ring, star, random)")
	rows := flag.Int("rows", 3, "grid rows")
	cols := flag.Int("cols", 3, "grid columns")
	alpha := flag.Float64("alpha", 0.4, "Waxman link-probability scale (random topology)")
	beta := flag.Float64("beta", 0.4, "Waxman distance decay (random topology)")
	src := flag.String("src", "", "source end-node (default: a diameter endpoint of the topology)")
	dst := flag.String("dst", "", "destination end-node (default: the matching diameter endpoint)")
	fidelity := flag.Float64("fidelity", 0.85, "end-to-end fidelity target")
	pairs := flag.Int("pairs", 10, "number of pairs to request")
	cutoff := flag.String("cutoff", "long", "cutoff policy: long, short, none")
	nearterm := flag.Bool("nearterm", false, "near-term hardware (25 km telecom links, carbon storage)")
	horizon := flag.Float64("horizon", 300, "max simulated seconds")
	seed := flag.Int64("seed", 1, "random seed")
	verbose := flag.Bool("v", false, "log every delivery")
	flag.Parse()

	cfg := qnet.DefaultConfig()
	if *nearterm {
		cfg = qnet.NearTermConfig(25000)
	}
	cfg.Seed = *seed

	die := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
		os.Exit(2)
	}
	var net *qnet.Network
	switch *topology {
	case "chain":
		if *nodes < 2 {
			die("chain needs -nodes ≥ 2 (got %d)", *nodes)
		}
		net = qnet.Chain(cfg, *nodes)
	case "dumbbell":
		net = qnet.Dumbbell(cfg)
	case "ring":
		if *nodes < 3 {
			die("ring needs -nodes ≥ 3 (got %d)", *nodes)
		}
		net = qnet.Ring(cfg, *nodes)
	case "star":
		if *nodes < 2 {
			die("star needs -nodes ≥ 2 (got %d)", *nodes)
		}
		net = qnet.Star(cfg, *nodes)
	case "grid":
		if *rows < 1 || *cols < 1 || *rows**cols < 2 {
			die("grid needs positive -rows/-cols spanning ≥ 2 nodes (got %dx%d)", *rows, *cols)
		}
		net = qnet.Grid(cfg, *rows, *cols)
	case "random":
		if *nodes < 2 {
			die("random needs -nodes ≥ 2 (got %d)", *nodes)
		}
		net = qnet.RandomGraph(cfg, *nodes, *alpha, *beta)
	default:
		die("unknown topology %q", *topology)
	}
	if *src == "" || *dst == "" {
		a, b, _ := net.Diameter()
		if *src == "" {
			*src = a
		}
		if *dst == "" {
			*dst = b
		}
	}

	var policy routing.CutoffPolicy
	switch *cutoff {
	case "long":
		policy = qnet.CutoffLong
	case "short":
		policy = qnet.CutoffShort
	case "none":
		policy = qnet.CutoffNone
	default:
		fmt.Fprintf(os.Stderr, "unknown cutoff policy %q\n", *cutoff)
		os.Exit(2)
	}

	vc, err := net.Establish("cli", *src, *dst, *fidelity, &qnet.CircuitOptions{Policy: policy})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("circuit %s→%s: path=%v link-fidelity=%.3f cutoff=%v LPR=%.1f/s\n",
		*src, *dst, vc.Plan.Path, vc.Plan.LinkFidelity, vc.Plan.Cutoff, vc.Plan.MaxLPR)

	delivered := 0
	var fidSum float64
	done := false
	start := net.Sim.Now()
	vc.HandleHead(qnet.Handlers{
		AutoConsume: true,
		OnPair: func(d qnet.Delivered) {
			f := d.Pair.FidelityWith(d.At, d.State)
			delivered++
			fidSum += f
			if *verbose {
				fmt.Printf("  t=%8.3fs  pair %3d  %v  F=%.3f\n", d.At.Sub(start).Seconds(), delivered, d.State, f)
			}
		},
		OnComplete: func(qnet.RequestID) { done = true },
	})
	vc.HandleTail(qnet.Handlers{AutoConsume: true})

	if err := vc.Submit(qnet.Request{ID: "r", Type: qnet.Keep, NumPairs: *pairs}); err != nil {
		log.Fatal(err)
	}
	deadline := start.Add(sim.DurationFromSeconds(*horizon))
	for !done && net.Sim.Now() < deadline {
		if !net.Sim.Step() {
			break
		}
	}
	elapsed := net.Sim.Now().Sub(start).Seconds()
	if delivered == 0 {
		log.Fatalf("no pairs delivered within %.0f simulated seconds", *horizon)
	}
	fmt.Printf("delivered %d/%d pairs in %.3f simulated seconds (%.2f pairs/s), mean fidelity %.3f\n",
		delivered, *pairs, elapsed, float64(delivered)/elapsed, fidSum/float64(delivered))
	if !done {
		fmt.Println("warning: request did not complete before the horizon")
	}

	var swaps, discards uint64
	for _, id := range vc.Plan.Path[1 : len(vc.Plan.Path)-1] {
		st := net.Node(id).Stats()
		swaps += st.Swaps
		discards += st.Discards
	}
	fmt.Printf("intermediate nodes: %d swaps, %d cutoff discards; classical messages: %d\n",
		swaps, discards, net.Classical.Stats().MessagesSent)
}
