// Command qnpsim runs an ad-hoc QNP scenario from flags: any generated
// topology (chain, dumbbell, ring, star, grid, Waxman random graph), one or
// several concurrent circuits, a pluggable workload, and a unified metrics
// summary of what the network delivered.
//
// Examples:
//
//	qnpsim -nodes 4 -fidelity 0.85 -pairs 20
//	qnpsim -topology dumbbell -src A0 -dst B1 -fidelity 0.8 -pairs 10 -cutoff short
//	qnpsim -topology grid -rows 3 -cols 3 -circuits 3 -workload continuous -horizon 10
//	qnpsim -topology star -nodes 9 -circuits 4 -workload interval -interval 0.5
//	qnpsim -topology random -nodes 10 -seed 7 -pairs 5 -replicas 20
//	qnpsim -nearterm -nodes 3 -fidelity 0.5 -pairs 5
//
// With -circuits 1 and no -src/-dst the circuit spans the topology's
// diameter; -circuits k > 1 draws k distinct random endpoint pairs.
// -replicas R fans R independent seeded replicas across a worker pool and
// reports aggregate means; -shards N spreads them over N worker processes
// instead, and -fleet N over N work-stealing endpoints (-resume DIR adds a
// checkpoint journal), all with bit-identical aggregates.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"qnp/internal/runner"
	"qnp/internal/sim"
	"qnp/qnet"
)

func main() {
	// A process spawned as a shard worker serves its replica range and
	// exits here, before flag parsing.
	runner.MaybeWorker()

	topology := flag.String("topology", "chain", "chain, dumbbell, ring, star, grid or random")
	nodes := flag.Int("nodes", 3, "node count (chain, ring, star, random)")
	rows := flag.Int("rows", 3, "grid rows")
	cols := flag.Int("cols", 3, "grid columns")
	alpha := flag.Float64("alpha", 0.4, "Waxman link-probability scale (random topology)")
	beta := flag.Float64("beta", 0.4, "Waxman distance decay (random topology)")
	src := flag.String("src", "", "source end-node (default: a diameter endpoint of the topology)")
	dst := flag.String("dst", "", "destination end-node (default: the matching diameter endpoint)")
	circuits := flag.Int("circuits", 1, "concurrent circuits (>1 draws random endpoint pairs)")
	fidelity := flag.Float64("fidelity", 0.85, "end-to-end fidelity target")
	workload := flag.String("workload", "batch", "workload per circuit: batch, continuous, interval, poisson, onoff, measure, churn")
	pairs := flag.Int("pairs", 10, "pairs per request (batch, interval, poisson, onoff, measure)")
	interval := flag.Float64("interval", 1, "request inter-arrival seconds (interval, poisson, onoff); mean circuit-arrival offset (churn)")
	hold := flag.Float64("hold", 5, "mean circuit holding seconds (churn)")
	minEER := flag.Float64("mineer", 0, "per-circuit admission demand in pairs/s (churn; needs admission control)")
	alloc := flag.String("alloc", "count", "allocation policy: count (equal split by membership), model (model-weighted by each circuit's deliverable rate), static (frozen at MaxLPR/2)")
	staticAlloc := flag.Bool("static-alloc", false, "deprecated alias for -alloc static")
	paths := flag.Int("paths", 1, "k-shortest-path candidates scored per circuit (> 1 re-routes around contention the shortest path cannot absorb)")
	cutoff := flag.String("cutoff", "long", "cutoff policy: long, short, none")
	maxEER := flag.Float64("maxeer", 0, "circuit EER allocation for admission control (0 = off)")
	nearterm := flag.Bool("nearterm", false, "near-term hardware (25 km telecom links, carbon storage)")
	physics := flag.String("physics", "exact", "pair-state engine: exact (density matrices) or werner (scalar Werner-parameter fast path)")
	streaming := flag.Bool("streaming", false, "constant-memory streaming metrics: per-event records are dropped and summaries come from mergeable aggregates (for runs too large to hold every delivery)")
	horizon := flag.Float64("horizon", 300, "max simulated seconds")
	seed := flag.Int64("seed", 1, "random seed")
	replicas := flag.Int("replicas", 1, "independent replicas (means reported when > 1)")
	workers := flag.Int("workers", 0, "replica worker pool size (0 = NumCPU)")
	shards := flag.Int("shards", 0, "worker processes to shard replicas across (0 = in-process)")
	fleet := flag.Int("fleet", 0, "local fleet endpoints to work-steal replicas across (0 = no fleet; exclusive with -shards)")
	fleetThrottle := flag.Duration("fleet-throttle", 0, "artificial per-chunk delay on the last fleet endpoint (steal-schedule testing; results are unaffected)")
	resume := flag.String("resume", "", "checkpoint journal directory: completed replicas spill here and a re-run resumes instead of restarting (implies -fleet 1)")
	workerTimeout := flag.Duration("worker-timeout", 0, "liveness bound for -shards/-fleet workers (0 = backend default of 10m; negative disables)")
	verbose := flag.Bool("v", false, "log every delivery (single replica only)")
	flag.Parse()

	die := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
		os.Exit(2)
	}

	cfg := qnet.DefaultConfig()
	if *nearterm {
		cfg = qnet.NearTermConfig(25000)
	}
	cfg.Seed = *seed
	if *maxEER > 0 || *minEER > 0 {
		cfg.EnforceEER = true
	}
	switch *alloc {
	case "count":
	case "model":
		cfg.Alloc = qnet.AllocModelWeighted
	case "static":
		cfg.Alloc = qnet.AllocStatic
	default:
		die("unknown allocation policy %q (want count, model or static)", *alloc)
	}
	// The deprecated flag is honoured only while -alloc is left at its
	// count-split default — same precedence Config gives the deprecated
	// StaticAllocation field, resolved here at the CLI edge so the config
	// itself stays on the Alloc enum.
	if *staticAlloc && cfg.Alloc == qnet.AllocCountSplit {
		cfg.Alloc = qnet.AllocStatic
	}
	if *paths < 1 {
		die("-paths must be ≥ 1 (got %d)", *paths)
	}
	if *streaming {
		cfg.MetricsMode = qnet.MetricsStreaming
	}
	switch *physics {
	case "exact":
		cfg.Physics = qnet.PhysicsExact
	case "werner":
		cfg.Physics = qnet.PhysicsWerner
	default:
		die("unknown physics engine %q (want exact or werner)", *physics)
	}

	var topo qnet.TopologySpec
	nodeCount := *nodes
	switch *topology {
	case "chain":
		if *nodes < 2 {
			die("chain needs -nodes ≥ 2 (got %d)", *nodes)
		}
		topo = qnet.ChainTopo(*nodes)
	case "dumbbell":
		topo = qnet.DumbbellTopo()
		nodeCount = 6
	case "ring":
		if *nodes < 3 {
			die("ring needs -nodes ≥ 3 (got %d)", *nodes)
		}
		topo = qnet.RingTopo(*nodes)
	case "star":
		if *nodes < 2 {
			die("star needs -nodes ≥ 2 (got %d)", *nodes)
		}
		topo = qnet.StarTopo(*nodes)
	case "grid":
		if *rows < 1 || *cols < 1 || *rows**cols < 2 {
			die("grid needs positive -rows/-cols spanning ≥ 2 nodes (got %dx%d)", *rows, *cols)
		}
		topo = qnet.GridTopo(*rows, *cols)
		nodeCount = *rows * *cols
	case "random":
		if *nodes < 2 {
			die("random needs -nodes ≥ 2 (got %d)", *nodes)
		}
		topo = qnet.WaxmanTopo(*nodes, *alpha, *beta)
	default:
		die("unknown topology %q", *topology)
	}
	// RandomPairs clamps to the pairs the topology has; mirror that here so
	// circuit IDs (and WaitFor below) match the actual expansion.
	if max := nodeCount * (nodeCount - 1) / 2; *circuits > max {
		fmt.Fprintf(os.Stderr, "note: only %d distinct endpoint pairs exist; running %d circuits\n", max, max)
		*circuits = max
	}

	var policy qnet.CutoffPolicy
	switch *cutoff {
	case "long":
		policy = qnet.CutoffLong
	case "short":
		policy = qnet.CutoffShort
	case "none":
		policy = qnet.CutoffNone
	default:
		die("unknown cutoff policy %q", *cutoff)
	}

	iv := sim.DurationFromSeconds(*interval)
	churning := *workload == "churn"
	var wl qnet.Workload
	switch *workload {
	case "batch":
		wl = qnet.KeepBatch{Count: 1, Pairs: *pairs}
	case "continuous":
		wl = qnet.ContinuousKeep{}
	case "churn":
		// Churn circuits carry an open-ended load: rate-based (policed
		// against the admission allocation) when a demand is given,
		// saturating otherwise.
		if *minEER > 0 {
			wl = qnet.MeasureStream{Rate: *minEER}
		} else {
			wl = qnet.ContinuousKeep{}
		}
	case "interval":
		wl = qnet.IntervalKeep{Interval: iv, Pairs: *pairs}
	case "poisson":
		wl = qnet.PoissonKeep{Mean: iv, Pairs: *pairs}
	case "onoff":
		wl = qnet.OnOffKeep{On: 5 * iv, Off: 5 * iv, Interval: iv, Pairs: *pairs}
	case "measure":
		wl = qnet.MeasureStream{Pairs: *pairs}
	default:
		die("unknown workload %q", *workload)
	}

	spec := qnet.CircuitSpec{
		ID: "cli", Fidelity: *fidelity, Policy: policy, MaxEER: *maxEER,
		Candidates: *paths, Workload: wl, RecordFidelity: true,
	}
	if churning {
		spec.Arrival = qnet.Exponential(iv)
		spec.Holding = qnet.Exponential(sim.DurationFromSeconds(*hold))
		spec.MinEER = *minEER
		spec.Optional = true
		spec.RecordFidelity = false
	}
	switch {
	case *circuits > 1:
		spec.Select = qnet.RandomPairs(*circuits)
		spec.Optional = true
	case *src != "" && *dst != "":
		spec.Src, spec.Dst = *src, *dst
	case *src != "" || *dst != "":
		die("-src and -dst must be given together")
	default:
		spec.Select = qnet.DiameterPair()
	}
	if *verbose && *replicas == 1 {
		delivered := 0
		spec.Head = qnet.Handlers{
			AutoConsume: true,
			OnPair: func(d qnet.Delivered) {
				delivered++
				fmt.Printf("  t=%8.3fs  circuit %-8s pair %3d  %v\n", d.At.Seconds(), d.Circuit, delivered, d.State)
			},
		}
	}

	sc := qnet.Scenario{
		Name:     "qnpsim",
		Config:   cfg,
		Topology: topo,
		Circuits: []qnet.CircuitSpec{spec},
		Horizon:  sim.DurationFromSeconds(*horizon),
	}
	// Batch workloads are finite: stop as soon as their requests complete.
	if *workload == "batch" || *workload == "measure" {
		if *circuits <= 1 {
			sc.WaitFor = []qnet.CircuitID{"cli"}
		} else {
			for j := 0; j < *circuits; j++ {
				sc.WaitFor = append(sc.WaitFor, qnet.CircuitID(fmt.Sprintf("cli-%d", j)))
			}
		}
	}

	if *replicas > 1 {
		ropts := qnet.ReplicaOptions{Replicas: *replicas, Workers: *workers, Seed: *seed, Timeout: *workerTimeout}
		if *resume != "" && *fleet == 0 {
			*fleet = 1 // only Fleet journals; resuming implies one
		}
		switch {
		case *fleet > 0 && *shards > 0:
			die("-fleet and -shards are exclusive: pick one backend")
		case *fleet > 0:
			eps := make([]runner.Endpoint, *fleet)
			for i := range eps {
				eps[i].Name = fmt.Sprintf("local-%d", i)
			}
			if *fleetThrottle > 0 {
				eps[len(eps)-1].Throttle = *fleetThrottle
			}
			ropts.Backend = runner.Fleet{Endpoints: eps, Journal: *resume}
		case *shards > 0:
			ropts.Backend = runner.Subprocess{Shards: *shards}
		}
		ms, err := sc.RunReplicated(ropts)
		if err != nil {
			log.Fatal(err)
		}
		ok := 0
		for _, m := range ms {
			if m != nil && m.Err == "" {
				ok++
			}
		}
		fmt.Printf("%d/%d replicas ran (base seed %d, per-replica seeds disjoint)\n", ok, *replicas, *seed)
		fmt.Printf("mean aggregate EER %.2f pairs/s\n", qnet.MeanAggregateEER(ms))
		if churning && ok > 0 {
			var adm, rej, tw float64
			for _, m := range ms {
				if m == nil || m.Err != "" {
					continue
				}
				adm += float64(m.Admitted)
				rej += float64(m.RejectedAtAdmission)
				tw += m.TimeWeightedEER()
			}
			fmt.Printf("churn means: %.1f admitted, %.1f rejected at admission; time-weighted EER %.2f pairs per circuit-second\n",
				adm/float64(ok), rej/float64(ok), tw/float64(ok))
		}
		for _, cm := range ms[0].Circuits {
			// Random topologies and random endpoint selectors redraw per
			// replica seed; only name endpoints when every replica agrees.
			where := fmt.Sprintf("%s→%s", cm.Src, cm.Dst)
			for _, m := range ms {
				if m == nil || m.Err != "" {
					continue
				}
				if c := m.Circuit(cm.ID); c != nil && (c.Src != cm.Src || c.Dst != cm.Dst) {
					where = "(endpoints vary per replica)"
					break
				}
			}
			fmt.Printf("  circuit %-10s %-32s mean EER %.2f pairs/s\n",
				cm.ID, where, qnet.MeanCircuitEER(ms, cm.ID))
		}
		return
	}

	res, err := sc.Run()
	if err != nil {
		log.Fatal(err)
	}
	m := res.Metrics
	fmt.Printf("%s: %d nodes, %d links; horizon %.0f s (ran %.3f s of virtual time)\n",
		*topology, m.Nodes, m.Links, *horizon, m.End.Sub(m.Start).Seconds())
	totalDelivered := 0
	mid := map[string]bool{}
	for _, cm := range m.Circuits {
		if !cm.Established {
			what := "NOT ESTABLISHED"
			if cm.AdmissionRejected {
				what = "REJECTED AT ADMISSION"
			}
			fmt.Printf("circuit %s %s→%s: %s (%s)\n", cm.ID, cm.Src, cm.Dst, what, cm.Err)
			continue
		}
		fmt.Printf("circuit %s %s→%s: path=%v link-fidelity=%.3f cutoff=%v LPR=%.1f/s\n",
			cm.ID, cm.Src, cm.Dst, cm.Path, cm.Plan.LinkFidelity, cm.Plan.Cutoff, cm.Plan.MaxLPR)
		if churning {
			left := "held to end of run"
			if cm.TornDownAt != 0 {
				left = fmt.Sprintf("departed t=%.3fs", cm.TornDownAt.Seconds())
			}
			fmt.Printf("  arrived t=%.3fs, established t=%.3fs, %s (lifetime %.3fs)\n",
				cm.ArrivedAt.Seconds(), cm.EstablishedAt.Seconds(), left, cm.Lifetime(m.End).Seconds())
		}
		status := "all requests complete"
		if !cm.AllComplete() {
			status = "open/incomplete requests at horizon"
		}
		fmt.Printf("  delivered %d pairs (%.2f/s), mean fidelity %.3f; %d requests, %d rejected, %d expiries; %s\n",
			cm.Delivered, cm.EER(m.Start, m.End), cm.MeanFidelity(),
			cm.Submitted, cm.Rejected, cm.Expired, status)
		totalDelivered += cm.Delivered
		for _, id := range cm.Path[1 : len(cm.Path)-1] {
			mid[id] = true
		}
	}
	var swaps, discards uint64
	for id := range mid {
		swaps += m.NodeStats[id].Swaps
		discards += m.NodeStats[id].Discards
	}
	if totalDelivered == 0 {
		log.Fatalf("no pairs delivered within %.0f simulated seconds", *horizon)
	}
	fmt.Printf("totals: %d pairs (%.2f/s aggregate); intermediate nodes: %d swaps, %d cutoff discards; classical messages: %d\n",
		m.TotalDelivered(), m.AggregateEER(), swaps, discards, m.ClassicalMessages)
	if churning {
		fmt.Printf("churn: %d admitted, %d rejected at admission; time-weighted EER %.2f pairs per circuit-second\n",
			m.Admitted, m.RejectedAtAdmission, m.TimeWeightedEER())
	}
}
