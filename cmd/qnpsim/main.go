// Command qnpsim runs an ad-hoc QNP scenario from flags: a linear chain or
// the paper's dumbbell topology, one circuit, one request, and a summary of
// what the network delivered.
//
// Examples:
//
//	qnpsim -nodes 4 -fidelity 0.85 -pairs 20
//	qnpsim -topology dumbbell -src A0 -dst B1 -fidelity 0.8 -pairs 10 -cutoff short
//	qnpsim -nearterm -nodes 3 -fidelity 0.5 -pairs 5
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"qnp/internal/routing"
	"qnp/internal/sim"
	"qnp/qnet"
)

func main() {
	topology := flag.String("topology", "chain", "chain or dumbbell")
	nodes := flag.Int("nodes", 3, "chain length (chain topology)")
	src := flag.String("src", "", "source end-node (defaults: first/last of chain, A0/B0)")
	dst := flag.String("dst", "", "destination end-node")
	fidelity := flag.Float64("fidelity", 0.85, "end-to-end fidelity target")
	pairs := flag.Int("pairs", 10, "number of pairs to request")
	cutoff := flag.String("cutoff", "long", "cutoff policy: long, short, none")
	nearterm := flag.Bool("nearterm", false, "near-term hardware (25 km telecom links, carbon storage)")
	horizon := flag.Float64("horizon", 300, "max simulated seconds")
	seed := flag.Int64("seed", 1, "random seed")
	verbose := flag.Bool("v", false, "log every delivery")
	flag.Parse()

	cfg := qnet.DefaultConfig()
	if *nearterm {
		cfg = qnet.NearTermConfig(25000)
	}
	cfg.Seed = *seed

	var net *qnet.Network
	switch *topology {
	case "chain":
		net = qnet.Chain(cfg, *nodes)
		if *src == "" {
			*src = "n0"
		}
		if *dst == "" {
			*dst = fmt.Sprintf("n%d", *nodes-1)
		}
	case "dumbbell":
		net = qnet.Dumbbell(cfg)
		if *src == "" {
			*src = "A0"
		}
		if *dst == "" {
			*dst = "B0"
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown topology %q\n", *topology)
		os.Exit(2)
	}

	var policy routing.CutoffPolicy
	switch *cutoff {
	case "long":
		policy = qnet.CutoffLong
	case "short":
		policy = qnet.CutoffShort
	case "none":
		policy = qnet.CutoffNone
	default:
		fmt.Fprintf(os.Stderr, "unknown cutoff policy %q\n", *cutoff)
		os.Exit(2)
	}

	vc, err := net.Establish("cli", *src, *dst, *fidelity, &qnet.CircuitOptions{Policy: policy})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("circuit %s→%s: path=%v link-fidelity=%.3f cutoff=%v LPR=%.1f/s\n",
		*src, *dst, vc.Plan.Path, vc.Plan.LinkFidelity, vc.Plan.Cutoff, vc.Plan.MaxLPR)

	delivered := 0
	var fidSum float64
	done := false
	start := net.Sim.Now()
	vc.HandleHead(qnet.Handlers{
		AutoConsume: true,
		OnPair: func(d qnet.Delivered) {
			f := d.Pair.FidelityWith(d.At, d.State)
			delivered++
			fidSum += f
			if *verbose {
				fmt.Printf("  t=%8.3fs  pair %3d  %v  F=%.3f\n", d.At.Sub(start).Seconds(), delivered, d.State, f)
			}
		},
		OnComplete: func(qnet.RequestID) { done = true },
	})
	vc.HandleTail(qnet.Handlers{AutoConsume: true})

	if err := vc.Submit(qnet.Request{ID: "r", Type: qnet.Keep, NumPairs: *pairs}); err != nil {
		log.Fatal(err)
	}
	deadline := start.Add(sim.DurationFromSeconds(*horizon))
	for !done && net.Sim.Now() < deadline {
		if !net.Sim.Step() {
			break
		}
	}
	elapsed := net.Sim.Now().Sub(start).Seconds()
	if delivered == 0 {
		log.Fatalf("no pairs delivered within %.0f simulated seconds", *horizon)
	}
	fmt.Printf("delivered %d/%d pairs in %.3f simulated seconds (%.2f pairs/s), mean fidelity %.3f\n",
		delivered, *pairs, elapsed, float64(delivered)/elapsed, fidSum/float64(delivered))
	if !done {
		fmt.Println("warning: request did not complete before the horizon")
	}

	var swaps, discards uint64
	for _, id := range vc.Plan.Path[1 : len(vc.Plan.Path)-1] {
		st := net.Node(id).Stats()
		swaps += st.Swaps
		discards += st.Discards
	}
	fmt.Printf("intermediate nodes: %d swaps, %d cutoff discards; classical messages: %d\n",
		swaps, discards, net.Classical.Stats().MessagesSent)
}
