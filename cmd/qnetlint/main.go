// qnetlint is the simulator's static-analysis suite (package
// qnp/internal/lint) packaged as a go vet tool. It speaks the cmd/go
// vettool protocol directly — no external analysis framework — so it works
// both ways:
//
//	go build -o bin/qnetlint ./cmd/qnetlint
//	go vet -vettool=$PWD/bin/qnetlint ./...   # as a vettool
//	bin/qnetlint ./...                        # re-execs go vet for you
//
// Each analyzer has a boolean flag (-detrand=false, ...) to disable it.
// Diagnostics go to stderr as file:line:col: message [analyzer]; the exit
// status is 2 when any diagnostic fired, matching go vet's convention.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"runtime"
	"sort"

	"qnp/internal/lint"
	"qnp/internal/lint/analysis"
)

func main() {
	os.Exit(run())
}

func run() int {
	fs := flag.NewFlagSet("qnetlint", flag.ExitOnError)
	versionFlag := fs.String("V", "", "print version and exit (-V=full for the go toolchain)")
	flagsFlag := fs.Bool("flags", false, "print the tool's flags as JSON and exit (go vet protocol)")
	enabled := map[string]*bool{}
	for _, a := range lint.Analyzers() {
		doc := a.Doc
		for i, r := range doc {
			if r == '\n' {
				doc = doc[:i]
				break
			}
		}
		enabled[a.Name] = fs.Bool(a.Name, true, "enable the "+a.Name+" check: "+doc)
	}
	fs.Parse(os.Args[1:])

	if *versionFlag != "" {
		return printVersion(*versionFlag)
	}
	if *flagsFlag {
		return printFlagsJSON(enabled)
	}

	args := fs.Args()
	if len(args) == 1 && len(args[0]) > 4 && args[0][len(args[0])-4:] == ".cfg" {
		return checkConfig(args[0], enabled)
	}
	// Invoked directly on package patterns: let go vet drive us.
	return reexecGoVet(args)
}

// printVersion implements the -V flag. cmd/go demands the exact shape
// `<name> version devel buildID=<hex>` (or a release version string) to key
// its action cache on the tool's identity; hash our own binary.
func printVersion(mode string) int {
	if mode != "full" {
		fmt.Println("qnetlint version devel")
		return 0
	}
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "qnetlint: %v\n", err)
		return 1
	}
	f, err := os.Open(self)
	if err != nil {
		fmt.Fprintf(os.Stderr, "qnetlint: %v\n", err)
		return 1
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fmt.Fprintf(os.Stderr, "qnetlint: %v\n", err)
		return 1
	}
	fmt.Printf("qnetlint version devel buildID=%x\n", h.Sum(nil))
	return 0
}

// printFlagsJSON implements -flags: cmd/go asks the tool which flags it
// supports before forwarding any.
func printFlagsJSON(enabled map[string]*bool) int {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var out []jsonFlag
	for _, a := range lint.Analyzers() {
		out = append(out, jsonFlag{Name: a.Name, Bool: true, Usage: "enable the " + a.Name + " check"})
	}
	data, err := json.Marshal(out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "qnetlint: %v\n", err)
		return 1
	}
	os.Stdout.Write(data)
	fmt.Println()
	return 0
}

// vetConfig mirrors the JSON cmd/go writes to <objdir>/vet.cfg for each
// package unit (cmd/go/internal/work.vetConfig).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	GoVersion                 string
	SucceedOnTypecheckFailure bool
}

// checkConfig runs the suite over one package unit described by a vet.cfg.
func checkConfig(cfgPath string, enabled map[string]*bool) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "qnetlint: reading %s: %v\n", cfgPath, err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "qnetlint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	if cfg.VetxOnly {
		// Dependency visited only for cross-package facts; qnetlint keeps
		// no facts, so there is nothing to do.
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(os.Stderr, "qnetlint: %v\n", err)
			return 1
		}
		files = append(files, f)
	}

	// Type-check against the export data cmd/go already built for every
	// import, resolving through the unit's ImportMap exactly like the
	// compiler invocation did.
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	}
	tcfg := types.Config{
		Importer: importer.ForCompiler(fset, cfg.Compiler, lookup),
		Sizes:    types.SizesFor(cfg.Compiler, runtime.GOARCH),
		Error:    func(error) {}, // keep going; Check returns the first error
	}
	if cfg.GoVersion != "" {
		tcfg.GoVersion = cfg.GoVersion
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	pkg, err := tcfg.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "qnetlint: typechecking %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	type diag struct {
		pos      token.Position
		analyzer string
		message  string
	}
	var diags []diag
	for _, a := range lint.Analyzers() {
		if on, ok := enabled[a.Name]; ok && !*on {
			continue
		}
		a := a
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
		}
		pass.Report = func(d analysis.Diagnostic) {
			diags = append(diags, diag{pos: fset.Position(d.Pos), analyzer: a.Name, message: d.Message})
		}
		if _, err := a.Run(pass); err != nil {
			fmt.Fprintf(os.Stderr, "qnetlint: %s: %v\n", a.Name, err)
			return 1
		}
	}
	if len(diags) == 0 {
		return 0
	}
	// Deterministic output order regardless of analyzer internals.
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.pos.Filename != b.pos.Filename {
			return a.pos.Filename < b.pos.Filename
		}
		if a.pos.Line != b.pos.Line {
			return a.pos.Line < b.pos.Line
		}
		if a.pos.Column != b.pos.Column {
			return a.pos.Column < b.pos.Column
		}
		return a.message < b.message
	})
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", d.pos, d.message, d.analyzer)
	}
	return 2
}

// reexecGoVet lets `qnetlint ./...` work standalone by re-invoking go vet
// with itself as the vettool.
func reexecGoVet(args []string) int {
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "qnetlint: %v\n", err)
		return 1
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + self}, args...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintf(os.Stderr, "qnetlint: %v\n", err)
		return 1
	}
	return 0
}
