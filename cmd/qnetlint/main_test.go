package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"qnp/internal/lint"
)

// capture redirects one of the process streams while fn runs and returns
// what fn wrote to it.
func capture(t *testing.T, stream **os.File, fn func()) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	orig := *stream
	*stream = w
	defer func() { *stream = orig }()
	fn()
	w.Close()
	data, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func allEnabled() map[string]*bool {
	enabled := map[string]*bool{}
	for _, a := range lint.Analyzers() {
		on := true
		enabled[a.Name] = &on
	}
	return enabled
}

// The -flags protocol answer must advertise every analyzer as a boolean
// flag, or cmd/go refuses to forward -detrand=false and friends.
func TestFlagsJSONListsEveryAnalyzer(t *testing.T) {
	out := capture(t, &os.Stdout, func() {
		if code := printFlagsJSON(allEnabled()); code != 0 {
			t.Errorf("printFlagsJSON = %d, want 0", code)
		}
	})
	var flags []struct {
		Name  string
		Bool  bool
		Usage string
	}
	if err := json.Unmarshal([]byte(out), &flags); err != nil {
		t.Fatalf("-flags output is not JSON: %v\n%s", err, out)
	}
	byName := map[string]bool{}
	for _, f := range flags {
		if !f.Bool {
			t.Errorf("flag %s is not boolean", f.Name)
		}
		byName[f.Name] = true
	}
	for _, a := range lint.Analyzers() {
		if !byName[a.Name] {
			t.Errorf("-flags output is missing analyzer %s", a.Name)
		}
	}
}

// -V=full must print the exact `name version devel buildID=<hex>` shape
// cmd/go keys its action cache on.
func TestVersionLineShape(t *testing.T) {
	out := capture(t, &os.Stdout, func() {
		if code := printVersion("full"); code != 0 {
			t.Errorf("printVersion = %d, want 0", code)
		}
	})
	if !strings.HasPrefix(out, "qnetlint version devel buildID=") {
		t.Fatalf("-V=full printed %q", out)
	}
	id := strings.TrimSpace(strings.TrimPrefix(out, "qnetlint version devel buildID="))
	if len(id) != 64 {
		t.Errorf("buildID %q is not a sha256 hex digest", id)
	}
}

// writeCfg marshals a vetConfig next to the unit's sources.
func writeCfg(t *testing.T, dir string, cfg vetConfig) string {
	t.Helper()
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "vet.cfg")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// A VetxOnly unit is visited for cross-package facts only; qnetlint keeps
// none and must exit clean without touching the files.
func TestCheckConfigVetxOnly(t *testing.T) {
	path := writeCfg(t, t.TempDir(), vetConfig{VetxOnly: true, GoFiles: []string{"does-not-exist.go"}})
	if code := checkConfig(path, allEnabled()); code != 0 {
		t.Fatalf("VetxOnly unit exited %d, want 0", code)
	}
}

// End-to-end over one import-free unit: a finding prints in go vet's
// file:line:col format, tagged with its analyzer, and exits 2; disabling
// that analyzer's flag silences it.
func TestCheckConfigReportsFindings(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "stride.go")
	code := "package sim\n\nfunc stride(base int64) int64 {\n\treturn base * 7919\n}\n"
	if err := os.WriteFile(src, []byte(code), 0o644); err != nil {
		t.Fatal(err)
	}
	path := writeCfg(t, dir, vetConfig{
		ID:         "qnp/internal/sim",
		Compiler:   "gc",
		Dir:        dir,
		ImportPath: "qnp/internal/sim",
		GoFiles:    []string{src},
		GoVersion:  "go1.21",
	})

	enabled := allEnabled()
	var exit int
	out := capture(t, &os.Stderr, func() { exit = checkConfig(path, enabled) })
	if exit != 2 {
		t.Fatalf("checkConfig = %d, want 2; stderr:\n%s", exit, out)
	}
	if !strings.Contains(out, "stride.go:4:") || !strings.Contains(out, "bare 7919") || !strings.Contains(out, "[streamoffset]") {
		t.Errorf("diagnostic line malformed:\n%s", out)
	}

	*enabled["streamoffset"] = false
	out = capture(t, &os.Stderr, func() { exit = checkConfig(path, enabled) })
	if exit != 0 || out != "" {
		t.Errorf("with -streamoffset=false: exit %d, stderr %q; want 0 and silence", exit, out)
	}
}
