package qnet

import (
	"errors"
	"strings"
	"testing"

	"qnp/internal/sim"
)

// TestStreamFamiliesDisjoint is the regression net for the RNG
// stream-offset collision: the selection stream used to sit at the odd
// offset 104729, which circuit index 52364's workload stream (2i+1) shared,
// so at large circuit counts two supposedly independent streams were
// identical. Engine streams now take even offsets, workloads odd ones.
func TestStreamFamiliesDisjoint(t *testing.T) {
	if selectionStreamOffset%2 != 0 || churnStreamOffset%2 != 0 {
		t.Fatalf("engine stream offsets must be even: selection=%d churn=%d",
			selectionStreamOffset, churnStreamOffset)
	}
	if selectionStreamOffset == churnStreamOffset {
		t.Fatal("selection and churn streams share an offset")
	}
	// Offset 0 would alias an engine stream onto the bare-seed physics
	// stream at replica seed 0 (0*Stride+0 == 0).
	if selectionStreamOffset == 0 || churnStreamOffset == 0 {
		t.Fatal("engine stream offsets must be nonzero to stay off the physics stream")
	}
	// The old collision index, and a broad sweep toward the million-user
	// north star.
	for _, i := range []int{0, 1, 52364, 1 << 20} {
		off := workloadStreamOffset(i)
		if off%2 != 1 {
			t.Fatalf("workload stream offset for circuit %d is even (%d)", i, off)
		}
		if off == selectionStreamOffset || off == churnStreamOffset {
			t.Fatalf("workload stream for circuit %d collides with an engine stream (offset %d)", i, off)
		}
	}
	for i := 0; i < 200000; i++ {
		if off := workloadStreamOffset(i); off == selectionStreamOffset || off == churnStreamOffset {
			t.Fatalf("workload stream for circuit %d collides at offset %d", i, off)
		}
	}
}

// TestChurnLifecycle drives one scheduled arrival/departure end to end:
// the circuit establishes on the simulation clock, carries traffic only
// inside its window, and the lifetime stamps and admission counters land.
func TestChurnLifecycle(t *testing.T) {
	res, err := Scenario{
		Topology: ChainTopo(3),
		Circuits: []CircuitSpec{
			{ID: "base", Src: "n0", Dst: "n2", Fidelity: 0.8,
				Workload: ContinuousKeep{}},
			{ID: "late", Src: "n0", Dst: "n2", Fidelity: 0.8,
				ArriveAt: 2 * sim.Second, HoldFor: 3 * sim.Second,
				Workload: ContinuousKeep{}},
		},
		Horizon: 8 * sim.Second,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	late := m.Circuit("late")
	if !late.Established {
		t.Fatalf("late circuit did not establish: %q", late.Err)
	}
	if late.ArrivedAt != m.Start.Add(2*sim.Second) {
		t.Errorf("ArrivedAt = %v, want %v", late.ArrivedAt, m.Start.Add(2*sim.Second))
	}
	if late.EstablishedAt < late.ArrivedAt {
		t.Errorf("EstablishedAt %v before ArrivedAt %v", late.EstablishedAt, late.ArrivedAt)
	}
	wantDown := late.EstablishedAt.Add(3 * sim.Second)
	if late.TornDownAt != wantDown {
		t.Errorf("TornDownAt = %v, want %v", late.TornDownAt, wantDown)
	}
	if got, want := late.Lifetime(m.End), wantDown.Sub(late.EstablishedAt); got != want {
		t.Errorf("Lifetime = %v, want %v", got, want)
	}
	if late.Delivered == 0 {
		t.Error("late circuit delivered nothing inside its window")
	}
	for _, at := range late.DeliveryTimes {
		if at < late.EstablishedAt || at > late.TornDownAt {
			t.Fatalf("delivery at %v outside lifetime [%v, %v]", at, late.EstablishedAt, late.TornDownAt)
		}
	}
	if m.Admitted != 2 || m.RejectedAtAdmission != 0 {
		t.Errorf("admission counts: admitted=%d rejected=%d", m.Admitted, m.RejectedAtAdmission)
	}
	base := m.Circuit("base")
	if base.TornDownAt != 0 {
		t.Errorf("base circuit departed at %v; should live to the end", base.TornDownAt)
	}
	if base.Delivered == 0 {
		t.Error("base circuit delivered nothing")
	}
	if tw := m.TimeWeightedEER(); tw <= 0 {
		t.Errorf("TimeWeightedEER = %v", tw)
	}
}

// TestChurnTeardownRestoresState is the acceptance gate for churn-safe
// teardown: after every circuit departs, all device qubits are free again,
// every link engine has dropped its registrations, and no pace cap
// survives.
func TestChurnTeardownRestoresState(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EnforceEER = true
	res, err := Scenario{
		Config:   cfg,
		Topology: DumbbellTopo(),
		Circuits: []CircuitSpec{
			{ID: "a", Src: "A0", Dst: "B0", Fidelity: 0.85, Policy: CutoffShort,
				HoldFor: 2 * sim.Second, Workload: MeasureStream{Rate: 10}},
			{ID: "b", Src: "A1", Dst: "B1", Fidelity: 0.85, Policy: CutoffShort,
				ArriveAt: sim.Second, HoldFor: 2 * sim.Second, Workload: MeasureStream{Rate: 10}},
		},
		Horizon: 8 * sim.Second,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	for _, id := range []CircuitID{"a", "b"} {
		cm := m.Circuit(id)
		if !cm.Established || cm.TornDownAt == 0 {
			t.Fatalf("circuit %s: established=%v torndown=%v (%s)", id, cm.Established, cm.TornDownAt, cm.Err)
		}
		if cm.Delivered == 0 {
			t.Errorf("circuit %s delivered nothing before departing", id)
		}
	}
	net := res.Net
	for name, eng := range net.Fabric.All() {
		if n := eng.RequestCount(); n != 0 {
			t.Errorf("link %s still holds %d link layer registrations after all departures", name, n)
		}
		for _, id := range []CircuitID{"a", "b"} {
			if p := eng.Pace(Label(id)); p != 0 {
				t.Errorf("link %s still paces label %q at %v", name, id, p)
			}
		}
	}
	for _, id := range net.NodeIDs() {
		for _, q := range net.Device(id).Qubits() {
			if !q.Free() {
				t.Errorf("node %s qubit %d still allocated after all departures", id, q.ID())
			}
		}
	}
}

// TestChurnAdmissionRefit pins the §4.4 re-fit rule end to end on the
// dumbbell bottleneck: the first circuit gets the full MaxLPR/2, a second
// sharing the bottleneck halves both, and a departure restores the
// survivor — propagated to every node on its path. A third arrival whose
// demand no longer fits is rejected at admission, while the static
// allocation admits it.
func TestChurnAdmissionRefit(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EnforceEER = true
	net := Dumbbell(cfg)
	a, err := net.Establish("a", "A0", "B0", 0.85, &CircuitOptions{Policy: CutoffShort})
	if err != nil {
		t.Fatal(err)
	}
	full := a.Plan.MaxEER
	if full <= 0 {
		t.Fatalf("no allocation under EnforceEER: %+v", a.Plan)
	}
	b, err := net.Establish("b", "A1", "B1", 0.85, &CircuitOptions{Policy: CutoffShort})
	if err != nil {
		t.Fatal(err)
	}
	if b.Plan.MaxEER != full/2 {
		t.Errorf("second circuit allocation = %v, want %v (half of %v)", b.Plan.MaxEER, full/2, full)
	}
	net.Run(sim.Second) // let the re-fit UpdateMsg reach every hop
	for _, node := range a.Plan.Path {
		e, ok := net.Node(node).Circuit("a")
		if !ok {
			t.Fatalf("node %s lost circuit a", node)
		}
		if e.MaxEER != full/2 {
			t.Errorf("node %s: circuit a MaxEER = %v after b joined, want %v", node, e.MaxEER, full/2)
		}
	}

	// Departure: the survivor is re-fitted back up at every hop.
	b.Teardown()
	net.Run(sim.Second)
	for _, node := range a.Plan.Path {
		e, _ := net.Node(node).Circuit("a")
		if e.MaxEER != full {
			t.Errorf("node %s: circuit a MaxEER = %v after b left, want %v", node, e.MaxEER, full)
		}
	}

	// Admission: a demand that fits alone but not shared is rejected while
	// the bottleneck is occupied.
	if _, err := net.Establish("c", "A1", "B0", 0.85,
		&CircuitOptions{Policy: CutoffShort, MinEER: 0.8 * full}); err == nil || !strings.Contains(err.Error(), "admission rejected") {
		t.Errorf("oversubscribed arrival not rejected: %v", err)
	}

	// A caller-fixed cap below the circuit's own demand is rejected too —
	// admitting it would shape the demand forever against a cap it can
	// never meet.
	if _, err := net.Establish("d", "A1", "B0", 0.85,
		&CircuitOptions{Policy: CutoffShort, MaxEER: full / 4, MinEER: full / 2}); !errors.Is(err, ErrAdmissionRejected) {
		t.Errorf("fixed cap below demand not rejected: %v", err)
	}

	// The static controller admits the same arrival: allocations never
	// dilute there.
	scfg := cfg
	scfg.Alloc = AllocStatic
	snet := Dumbbell(scfg)
	if _, err := snet.Establish("a", "A0", "B0", 0.85, &CircuitOptions{Policy: CutoffShort}); err != nil {
		t.Fatal(err)
	}
	c, err := snet.Establish("c", "A1", "B0", 0.85, &CircuitOptions{Policy: CutoffShort, MinEER: 0.8 * full})
	if err != nil {
		t.Fatalf("static allocation rejected arrival: %v", err)
	}
	if c.Plan.MaxEER != full {
		t.Errorf("static allocation = %v, want %v regardless of sharing", c.Plan.MaxEER, full)
	}
}

// TestAdmissionRecheckAtConfirm pins the racing-arrival window: two
// circuits that both plan against an empty bottleneck within one
// establishment round trip cannot both be admitted below their demand —
// the demand is re-checked when each CONFIRM returns, and the later
// arrival is rejected and rolled back.
func TestAdmissionRecheckAtConfirm(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EnforceEER = true
	net := Dumbbell(cfg)
	net.Start()
	probe, _, err := net.planFor("A0", "B0", 0.85, &CircuitOptions{Policy: CutoffShort})
	if err != nil {
		t.Fatal(err)
	}
	demand := 0.8 * probe.Plan.MaxEER // fits alone, not when shared

	type outcome struct {
		vc  *Circuit
		err error
	}
	var a, b outcome
	opts := &CircuitOptions{Policy: CutoffShort, MinEER: demand}
	net.EstablishAsync("a", "A0", "B0", 0.85, opts, func(vc *Circuit, err error) { a = outcome{vc, err} })
	net.EstablishAsync("b", "A1", "B1", 0.85, opts, func(vc *Circuit, err error) { b = outcome{vc, err} })
	net.Run(sim.Second)

	if a.err != nil || a.vc == nil {
		t.Fatalf("first arrival should be admitted: %v", a.err)
	}
	if a.vc.Plan.MaxEER < demand {
		t.Errorf("admitted circuit holds allocation %v below demand %v", a.vc.Plan.MaxEER, demand)
	}
	if b.err == nil || !errors.Is(b.err, ErrAdmissionRejected) {
		t.Fatalf("racing arrival not rejected at confirm: vc=%v err=%v", b.vc, b.err)
	}
	if _, ok := net.Node("MA").Circuit("b"); ok {
		t.Error("rejected arrival left routing state behind at MA")
	}
	if alloc, ok := net.Controller.Allocation("a"); !ok || alloc != probe.Plan.MaxEER {
		t.Errorf("survivor allocation = %v, %v; want full %v after rollback", alloc, ok, probe.Plan.MaxEER)
	}
}

// TestTeardownIdempotent pins churn-safe teardown: a second Teardown call
// sends no second TEARDOWN flood and cannot destroy a circuit that was
// re-established under the same ID.
func TestTeardownIdempotent(t *testing.T) {
	net := Chain(DefaultConfig(), 3)
	vc, err := net.Establish("vc", "n0", "n2", 0.8, nil)
	if err != nil {
		t.Fatal(err)
	}
	vc.Teardown()
	net.Run(sim.Second) // drain the teardown wave
	sent := net.Classical.Stats().MessagesSent

	vc.Teardown() // second call: no-op
	net.Run(sim.Second)
	if got := net.Classical.Stats().MessagesSent; got != sent {
		t.Errorf("second Teardown sent %d extra classical messages", got-sent)
	}

	// Re-establish under the same ID; the stale handle must not be able to
	// destroy the new circuit.
	vc2, err := net.Establish("vc", "n0", "n2", 0.8, nil)
	if err != nil {
		t.Fatal(err)
	}
	vc.Teardown()
	net.Run(sim.Second)
	if _, ok := net.Node("n0").Circuit("vc"); !ok {
		t.Fatal("stale Teardown handle destroyed the re-established circuit")
	}
	vc2.Teardown()
	net.Run(sim.Second)
	if _, ok := net.Node("n0").Circuit("vc"); ok {
		t.Fatal("live Teardown did not remove the circuit")
	}
}

// TestReestablishNoPaceResidue is the regression net for head-end pace
// residue: a circuit torn down mid-traffic leaves its link-label free of
// the old SetPace cap, so a successor over the same label (same circuit
// ID, re-established) generates unthrottled.
func TestReestablishNoPaceResidue(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EnforceEER = true
	net := Chain(cfg, 2)
	vc, err := net.Establish("vc", "n0", "n1", 0.85, &CircuitOptions{Policy: CutoffShort})
	if err != nil {
		t.Fatal(err)
	}
	// Activate a rate-based request so the head paces the link, then tear
	// down mid-traffic while the cap is in force.
	if err := vc.Submit(Request{ID: "r", Type: Measure, Rate: 5}); err != nil {
		t.Fatal(err)
	}
	net.Run(sim.Second / 2)
	eng := net.Fabric.Between("n0", "n1")
	if p := eng.Pace(Label("vc")); p != 5 {
		t.Fatalf("pace not in force before teardown (got %v)", p)
	}
	vc.Teardown()
	net.Run(sim.Second / 2)
	if p := eng.Pace(Label("vc")); p != 0 {
		t.Fatalf("pace cap survives teardown: %v", p)
	}

	// Re-establish the same ID with a manual, unpoliced plan over the same
	// path: the label is reused, and the successor must run uncapped.
	plan := vc.Plan
	plan.MaxEER = 0
	vc2, err := net.EstablishPlan("vc", plan)
	if err != nil {
		t.Fatal(err)
	}
	if err := vc2.Submit(Request{ID: "r", Type: Measure, Rate: 0}); err != nil {
		t.Fatal(err)
	}
	net.Run(sim.Second)
	if p := eng.Pace(Label("vc")); p != 0 {
		t.Errorf("re-established circuit inherited pace cap %v", p)
	}
}

// TestRunErrorPathsStampMetrics pins satellite 4: a Run that fails mid-way
// (a non-optional circuit with an infeasible target, after a first circuit
// already installed) still returns well-formed partial metrics — window
// stamped, network counts filled.
func TestRunErrorPathsStampMetrics(t *testing.T) {
	res, err := Scenario{
		Topology: ChainTopo(4),
		Circuits: []CircuitSpec{
			{ID: "ok", Src: "n0", Dst: "n1", Fidelity: 0.8, Workload: ContinuousKeep{}},
			{ID: "doomed", Src: "n0", Dst: "n3", Fidelity: 0.999},
		},
		Horizon: 2 * sim.Second,
	}.Run()
	if err == nil {
		t.Fatal("expected establishment error for infeasible fidelity")
	}
	m := res.Metrics
	if m.Start == 0 || m.End == 0 || m.End < m.Start {
		t.Errorf("window not stamped on error path: Start=%v End=%v", m.Start, m.End)
	}
	if m.Nodes != 4 || m.Links != 3 {
		t.Errorf("network counts not stamped: nodes=%d links=%d", m.Nodes, m.Links)
	}
	if m.NodeStats == nil || m.ClassicalMessages == 0 {
		t.Errorf("node stats / classical counts not stamped: %+v", m)
	}
	if cm := m.Circuit("doomed"); cm.Err == "" {
		t.Error("failed circuit carries no error")
	}
}

// TestChurnSpecRoundTripAndSharding proves churn scenarios are fully
// declarative: the spec JSON round-trips, and the same scenario produces
// byte-identical metrics whether replicas run in-process or through the
// subprocess backend (exercised further by the figures CI gate).
func TestChurnSpecRoundTripAndSharding(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EnforceEER = true
	sc := Scenario{
		Name:     "churn-rt",
		Config:   cfg,
		Topology: DumbbellTopo(),
		Circuits: []CircuitSpec{{
			ID: "vc", Select: RandomPairs(4), Fidelity: 0.85, Policy: CutoffShort,
			Arrival: Uniform(0, 2*sim.Second), Holding: Exponential(sim.Second),
			MinEER: 5, Workload: MeasureStream{Rate: 5}, Optional: true,
		}},
		Horizon: 3 * sim.Second,
	}
	spec, err := sc.Spec()
	if err != nil {
		t.Fatal(err)
	}
	back, err := spec.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	cs, bs := sc.Circuits[0], back.Circuits[0]
	if *cs.Arrival != *bs.Arrival || *cs.Holding != *bs.Holding ||
		cs.MinEER != bs.MinEER || cs.ArriveAt != bs.ArriveAt || cs.HoldFor != bs.HoldFor {
		t.Fatalf("churn fields lost in round trip:\n  sent %+v\n  got  %+v", cs, bs)
	}
	direct, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	via, err := back.Run()
	if err != nil {
		t.Fatal(err)
	}
	if da, va := direct.Metrics.Admitted, via.Metrics.Admitted; da != va {
		t.Errorf("round-tripped run diverged: admitted %d vs %d", da, va)
	}
	if dd, vd := direct.Metrics.TotalDelivered(), via.Metrics.TotalDelivered(); dd != vd {
		t.Errorf("round-tripped run diverged: delivered %d vs %d", dd, vd)
	}
}

// TestExpiryCountedOncePerEnd pins the expiry accounting contract: both the
// head and tail metrics wrappers count expiries, and each expiry event
// reaches exactly one end — so the circuit's Expired counter equals the sum
// of per-end application callbacks, never double an event.
func TestExpiryCountedOncePerEnd(t *testing.T) {
	headSeen, tailSeen := 0, 0
	res, err := Scenario{
		Topology: ChainTopo(3),
		Circuits: []CircuitSpec{{
			ID: "vc", Src: "n0", Dst: "n2", Fidelity: 0.8,
			Policy: CutoffManual, ManualCutoff: 2 * sim.Millisecond,
			Workload: Batch{Requests: []Request{{ID: "e", Type: Early, NumPairs: 0}}},
			Head: Handlers{
				AutoConsume: true,
				OnExpire:    func(RequestID, Correlator) { headSeen++ },
			},
			Tail: Handlers{
				AutoConsume: true,
				OnExpire:    func(RequestID, Correlator) { tailSeen++ },
			},
		}},
		Horizon: 4 * sim.Second,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	cm := res.Metrics.Circuit("vc")
	if headSeen+tailSeen == 0 {
		t.Skip("no expiries induced; cutoff too generous for this plant")
	}
	if cm.Expired != headSeen+tailSeen {
		t.Errorf("Expired = %d, want %d (head %d + tail %d): expiry events double-counted",
			cm.Expired, headSeen+tailSeen, headSeen, tailSeen)
	}
}
