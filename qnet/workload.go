package qnet

import (
	"fmt"
	"math/rand"

	"qnp/internal/quantum"
	"qnp/internal/sim"
)

// A Workload drives requests onto one scenario circuit. Implementations
// must be stateless values — the same workload value may drive several
// circuits (selector expansion) and several replicas concurrently; all
// per-run state lives in the WorkloadContext.
//
// Traffic opens in two phases. Immediate returns the requests submitted
// synchronously the moment traffic starts; the scenario engine interleaves
// them breadth-first across circuits (request k of every circuit, in spec
// order, before request k+1 of any), so equal-time batches load the network
// exactly like a round-robin submission loop. Start then schedules timed
// arrivals on the simulation clock. Either phase may be a no-op.
type Workload interface {
	Immediate(ctx *WorkloadContext) []Request
	Start(ctx *WorkloadContext)
}

// WorkloadContext is the per-circuit runtime a workload drives: the live
// circuit, the simulation clock, a workload-private random stream (separate
// from the physics stream, so traffic randomness never perturbs the
// hardware model), and the submission hook that feeds request bookkeeping
// into the scenario's Metrics.
type WorkloadContext struct {
	Net     *Network
	Circuit *Circuit
	Sim     *sim.Simulation
	// Rand is deterministic per (scenario seed, circuit index) and disjoint
	// from the simulation's physics stream.
	Rand *rand.Rand
	// Start is the virtual time this circuit's traffic opened; Horizon the
	// scenario's run budget from there.
	Start   sim.Time
	Horizon sim.Duration

	cm *CircuitMetrics
	// stopped marks a departed (torn-down) circuit: timed workload chains
	// stop re-arming and any still-in-flight submission becomes a no-op.
	stopped bool
}

// open reports whether a timed workload chain should re-arm: the circuit is
// still up and the scenario horizon has not elapsed.
func (w *WorkloadContext) open() bool {
	return !w.stopped && w.Sim.Now().Sub(w.Start) < w.Horizon
}

// Submit sends a request on the circuit and records it in the scenario
// metrics (submission time, completion, rejection). The request's Circuit
// field is filled in automatically.
func (w *WorkloadContext) Submit(req Request) error {
	w.cm.noteSubmit(&RequestMetrics{ID: req.ID, SubmittedAt: w.Sim.Now(), Pairs: req.NumPairs})
	return w.Circuit.Submit(req)
}

// mustSubmit panics on submission errors — inside timed arrivals there is
// no caller left to return the error to, and a failed submit (duplicate ID,
// torn-down circuit) is a scenario bug, not a protocol outcome. Submissions
// racing a scenario-driven departure (an arrival event already queued when
// the circuit tore down) are dropped silently: departure is an outcome, not
// a bug.
func (w *WorkloadContext) mustSubmit(req Request) {
	if w.stopped {
		return
	}
	if err := w.Submit(req); err != nil {
		panic(fmt.Sprintf("qnet: workload submit on circuit %q: %v", w.Circuit.ID, err))
	}
}

func prefixed(prefix string, k int) RequestID {
	if prefix == "" {
		prefix = "r"
	}
	return RequestID(fmt.Sprintf("%s%d", prefix, k))
}

// Batch submits an explicit request list the moment traffic opens — the
// fully general immediate workload.
type Batch struct {
	Requests []Request
}

// Immediate returns the configured requests.
func (b Batch) Immediate(*WorkloadContext) []Request { return b.Requests }

// Start is a no-op.
func (b Batch) Start(*WorkloadContext) {}

// ContinuousKeep saturates the circuit with one open-ended KEEP request —
// the paper's long-running background traffic ("we submit a request for
// infinite pairs").
type ContinuousKeep struct {
	// ID names the request (default "keep").
	ID RequestID
}

// Immediate returns the single open-ended request.
func (c ContinuousKeep) Immediate(*WorkloadContext) []Request {
	id := c.ID
	if id == "" {
		id = "keep"
	}
	return []Request{{ID: id, Type: Keep, NumPairs: 0}}
}

// Start is a no-op.
func (c ContinuousKeep) Start(*WorkloadContext) {}

// KeepBatch submits Count simultaneous KEEP requests of Pairs pairs each
// when traffic opens. Window, when set, attaches the create-and-keep Δt
// that gives each request a policeable minimum rate.
type KeepBatch struct {
	Count  int
	Pairs  int
	Window sim.Duration
	// IDPrefix prefixes request IDs (default "r": r0, r1, ...).
	IDPrefix string
}

// Immediate returns the request batch.
func (b KeepBatch) Immediate(*WorkloadContext) []Request {
	reqs := make([]Request, b.Count)
	for k := range reqs {
		reqs[k] = Request{ID: prefixed(b.IDPrefix, k), Type: Keep, NumPairs: b.Pairs, Window: b.Window}
	}
	return reqs
}

// Start is a no-op.
func (b KeepBatch) Start(*WorkloadContext) {}

// IntervalKeep issues a Pairs-pair KEEP request every Interval, starting
// immediately, for the whole scenario horizon — the paper's constant-rate
// offered load (Fig. 9).
type IntervalKeep struct {
	Interval sim.Duration
	Pairs    int
	IDPrefix string
}

// Immediate is a no-op.
func (w IntervalKeep) Immediate(*WorkloadContext) []Request { return nil }

// Start schedules the arrival chain.
func (w IntervalKeep) Start(ctx *WorkloadContext) {
	if w.Interval <= 0 {
		return
	}
	k := 0
	var issue func()
	issue = func() {
		ctx.mustSubmit(Request{ID: prefixed(w.IDPrefix, k), Type: Keep, NumPairs: w.Pairs})
		k++
		if ctx.open() {
			ctx.Sim.Schedule(w.Interval, issue)
		}
	}
	ctx.Sim.Schedule(0, issue)
}

// PoissonKeep issues Pairs-pair KEEP requests as a Poisson process with the
// given mean inter-arrival time, drawn from the workload-private stream.
type PoissonKeep struct {
	Mean     sim.Duration
	Pairs    int
	IDPrefix string
}

// Immediate is a no-op.
func (w PoissonKeep) Immediate(*WorkloadContext) []Request { return nil }

// Start schedules the arrival chain.
func (w PoissonKeep) Start(ctx *WorkloadContext) {
	if w.Mean <= 0 {
		return
	}
	gap := func() sim.Duration {
		return sim.DurationFromSeconds(ctx.Rand.ExpFloat64() * w.Mean.Seconds())
	}
	k := 0
	var issue func()
	issue = func() {
		ctx.mustSubmit(Request{ID: prefixed(w.IDPrefix, k), Type: Keep, NumPairs: w.Pairs})
		k++
		if ctx.open() {
			ctx.Sim.Schedule(gap(), issue)
		}
	}
	ctx.Sim.Schedule(gap(), issue)
}

// OnOffKeep alternates On-long bursts of interval arrivals with Off-long
// silences — the classic bursty source.
type OnOffKeep struct {
	On, Off  sim.Duration
	Interval sim.Duration
	Pairs    int
	IDPrefix string
}

// Immediate is a no-op.
func (w OnOffKeep) Immediate(*WorkloadContext) []Request { return nil }

// Start schedules the burst chain.
func (w OnOffKeep) Start(ctx *WorkloadContext) {
	if w.Interval <= 0 || w.On <= 0 {
		return
	}
	period := w.On + w.Off
	k := 0
	var tick func()
	tick = func() {
		elapsed := ctx.Sim.Now().Sub(ctx.Start)
		if elapsed >= ctx.Horizon || ctx.stopped {
			return
		}
		if pos := elapsed % period; pos < w.On {
			ctx.mustSubmit(Request{ID: prefixed(w.IDPrefix, k), Type: Keep, NumPairs: w.Pairs})
			k++
			ctx.Sim.Schedule(w.Interval, tick)
			return
		}
		// In the silence: sleep to the next burst start.
		next := (elapsed/period + 1) * period
		ctx.Sim.Schedule(next-elapsed, tick)
	}
	ctx.Sim.Schedule(0, tick)
}

// MeasureStream is the QKD-style measure-directly workload: one request
// whose pairs are measured at both ends in the given basis the moment they
// are ready (§3.1 "measure directly").
type MeasureStream struct {
	Basis quantum.Basis
	// Pairs is the number of rounds; 0 with Rate set streams open-endedly.
	Pairs int
	// Rate, for open-ended streams, is the requested pairs/second — the
	// policed quantity under EER enforcement.
	Rate float64
	// ID names the request (default "measure").
	ID RequestID
}

// Immediate returns the measurement request.
func (m MeasureStream) Immediate(*WorkloadContext) []Request {
	id := m.ID
	if id == "" {
		id = "measure"
	}
	return []Request{{ID: id, Type: Measure, MeasureBasis: m.Basis, NumPairs: m.Pairs, Rate: m.Rate}}
}

// Start is a no-op.
func (m MeasureStream) Start(*WorkloadContext) {}
