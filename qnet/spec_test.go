package qnet

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"os"
	"strings"
	"testing"
	"time"

	"qnp/internal/quantum"
	"qnp/internal/runner"
	"qnp/internal/sim"
)

// TestMain doubles as the shard worker entrypoint for the subprocess
// equivalence tests, which re-exec this test binary behind WorkerFlag.
func TestMain(m *testing.M) {
	runner.MaybeWorker()
	os.Exit(m.Run())
}

// metricsJSON canonicalizes metrics for bit-exact comparison: Go's JSON
// codec round-trips every exported field (ints, float64s, sorted map keys)
// exactly.
func metricsJSON(t *testing.T, m *Metrics) []byte {
	t.Helper()
	b, err := json.Marshal(m)
	if err != nil {
		t.Fatalf("marshal metrics: %v", err)
	}
	return b
}

// runSpecRoundTrip runs sc directly and via ScenarioSpec JSON round-trip,
// and fails unless the two Metrics are bit-identical.
func runSpecRoundTrip(t *testing.T, sc Scenario) {
	t.Helper()
	spec, err := sc.Spec()
	if err != nil {
		t.Fatalf("Spec: %v", err)
	}
	wire, err := json.Marshal(spec)
	if err != nil {
		t.Fatalf("marshal spec: %v", err)
	}
	var decoded ScenarioSpec
	if err := json.Unmarshal(wire, &decoded); err != nil {
		t.Fatalf("unmarshal spec: %v", err)
	}
	back, err := decoded.Scenario()
	if err != nil {
		t.Fatalf("Scenario: %v", err)
	}
	want, err := sc.Run()
	if err != nil {
		t.Fatalf("original run: %v", err)
	}
	got, err := back.Run()
	if err != nil {
		t.Fatalf("round-tripped run: %v", err)
	}
	w, g := metricsJSON(t, want.Metrics), metricsJSON(t, got.Metrics)
	if !bytes.Equal(w, g) {
		t.Errorf("round-tripped scenario diverged\n want %s\n  got %s", w, g)
	}
}

// TestScenarioSpecRoundTripTopologies proves every serializable topology
// kind encodes, decodes, and runs to identical Metrics.
func TestScenarioSpecRoundTripTopologies(t *testing.T) {
	topos := []struct {
		name string
		spec TopologySpec
	}{
		{"chain", ChainTopo(3)},
		{"dumbbell", DumbbellTopo()},
		{"ring", RingTopo(4)},
		{"star", StarTopo(4)},
		{"grid", GridTopo(2, 2)},
		{"waxman", WaxmanTopo(6, 0.7, 0.4)},
	}
	for _, tc := range topos {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			runSpecRoundTrip(t, Scenario{
				Name:     "rt-" + tc.name,
				Config:   Config{Seed: 11},
				Topology: tc.spec,
				Circuits: []CircuitSpec{{
					ID: "c", Select: DiameterPair(), Fidelity: 0.8,
					Workload: ContinuousKeep{}, Optional: true, RecordFidelity: true,
				}},
				Horizon: 2 * sim.Second,
			})
		})
	}
}

// TestScenarioSpecRoundTripWorkloads proves every built-in workload
// encodes, decodes, and runs to identical Metrics.
func TestScenarioSpecRoundTripWorkloads(t *testing.T) {
	bell := quantum.PhiPlus
	workloads := []struct {
		name string
		wl   Workload
	}{
		{"batch", Batch{Requests: []Request{
			{ID: "b0", Type: Keep, NumPairs: 2, Window: sim.Second},
			{ID: "b1", Type: Keep, NumPairs: 1, FinalState: &bell},
		}}},
		{"keep-batch", KeepBatch{Count: 2, Pairs: 2, Window: 2 * sim.Second, IDPrefix: "k"}},
		{"continuous-keep", ContinuousKeep{ID: "ck"}},
		{"interval-keep", IntervalKeep{Interval: 300 * sim.Millisecond, Pairs: 1}},
		{"poisson-keep", PoissonKeep{Mean: 400 * sim.Millisecond, Pairs: 1}},
		{"onoff-keep", OnOffKeep{On: 500 * sim.Millisecond, Off: 500 * sim.Millisecond, Interval: 200 * sim.Millisecond, Pairs: 1}},
		{"measure-stream", MeasureStream{Basis: quantum.XBasis, Pairs: 3}},
	}
	for _, tc := range workloads {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			runSpecRoundTrip(t, Scenario{
				Name:     "rt-" + tc.name,
				Config:   Config{Seed: 5},
				Topology: ChainTopo(3),
				Circuits: []CircuitSpec{{
					ID: "c", Src: "n0", Dst: "n2", Fidelity: 0.8,
					Workload: tc.wl, RecordFidelity: true,
				}},
				Horizon: 2 * sim.Second,
			})
		})
	}
}

// TestScenarioSpecRoundTripPhysics proves Config.Physics travels through
// the spec wire: the decoded spec carries the Werner selector, and the
// round-tripped scenario runs to bit-identical Metrics. RecordFidelity
// makes the check sharp — if the field were silently dropped, the decoded
// side would run the exact engine and its recorded fidelities would
// diverge from the Werner originals.
func TestScenarioSpecRoundTripPhysics(t *testing.T) {
	t.Parallel()
	sc := Scenario{
		Name:     "rt-physics",
		Config:   Config{Seed: 11, Physics: PhysicsWerner},
		Topology: ChainTopo(3),
		Circuits: []CircuitSpec{{
			ID: "c", Src: "n0", Dst: "n2", Fidelity: 0.8,
			Workload: ContinuousKeep{}, RecordFidelity: true,
		}},
		Horizon: 2 * sim.Second,
	}
	spec, err := sc.Spec()
	if err != nil {
		t.Fatalf("Spec: %v", err)
	}
	wire, err := json.Marshal(spec)
	if err != nil {
		t.Fatalf("marshal spec: %v", err)
	}
	var decoded ScenarioSpec
	if err := json.Unmarshal(wire, &decoded); err != nil {
		t.Fatalf("unmarshal spec: %v", err)
	}
	if decoded.Config.Physics != PhysicsWerner {
		t.Fatalf("decoded Physics = %v, want %v", decoded.Config.Physics, PhysicsWerner)
	}
	runSpecRoundTrip(t, sc)
}

func TestScenarioSpecRejectsRuntimeOnlyFeatures(t *testing.T) {
	base := Scenario{
		Topology: ChainTopo(3),
		Circuits: []CircuitSpec{{ID: "c", Src: "n0", Dst: "n2", Fidelity: 0.8}},
		Horizon:  sim.Second,
	}
	cases := []struct {
		name string
		mod  func(*Scenario)
		want string
	}{
		{"setup-hook", func(sc *Scenario) { sc.Setup = func(*Network) {} }, "Setup"},
		{"context", func(sc *Scenario) { sc.Context = context.Background() }, "Context"},
		{"custom-topology", func(sc *Scenario) { sc.Topology = CustomTopo(func(cfg Config) *Network { return Chain(cfg, 3) }) }, "custom topologies"},
		{"handler-callbacks", func(sc *Scenario) {
			sc.Circuits[0].Head = Handlers{OnPair: func(Delivered) {}}
		}, "handler callbacks"},
		{"ad-hoc-selector", func(sc *Scenario) {
			sc.Circuits[0].Select = SelectorFunc(func(net *Network, rng *rand.Rand) [][2]string { return nil })
		}, "not registered"},
		{"unregistered-workload", func(sc *Scenario) {
			sc.Circuits[0].Workload = unregisteredWorkload{}
		}, "not registered"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc := base
			sc.Circuits = append([]CircuitSpec(nil), base.Circuits...)
			tc.mod(&sc)
			_, err := sc.Spec()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Spec() err = %v, want mention of %q", err, tc.want)
			}
		})
	}
}

type unregisteredWorkload struct{}

func (unregisteredWorkload) Immediate(*WorkloadContext) []Request { return nil }
func (unregisteredWorkload) Start(*WorkloadContext)               {}

// TestMetricsJSONRoundTrip checks a decoded Metrics answers the same
// queries as the original, including the rebuilt lookup indexes.
func TestMetricsJSONRoundTrip(t *testing.T) {
	res, err := Scenario{
		Topology: ChainTopo(3),
		Circuits: []CircuitSpec{{
			ID: "c", Src: "n0", Dst: "n2", Fidelity: 0.8,
			Workload: KeepBatch{Count: 1, Pairs: 3}, RecordFidelity: true,
		}},
		Horizon: 5 * sim.Second,
		WaitFor: []CircuitID{"c"},
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	b := metricsJSON(t, res.Metrics)
	var m Metrics
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	cm := m.Circuit("c")
	if cm == nil {
		t.Fatal("decoded Metrics lost the circuit index")
	}
	if cm.request("r0") == nil {
		t.Fatal("decoded CircuitMetrics lost the request index")
	}
	if !cm.AllComplete() {
		t.Error("decoded metrics disagree on AllComplete")
	}
	if got := metricsJSON(t, &m); !bytes.Equal(b, got) {
		t.Errorf("re-encoded metrics diverged\n want %s\n  got %s", b, got)
	}
}

// shardedScenario is a scenario exercising selector expansion, a random
// topology and recorded fidelities — the serialization surface a sharded
// figure run needs.
func shardedScenario() Scenario {
	return Scenario{
		Name:     "sharded",
		Config:   Config{Seed: 3},
		Topology: WaxmanTopo(8, 0.7, 0.4),
		Circuits: []CircuitSpec{{
			ID: "r", Select: RandomPairs(2), Fidelity: 0.8,
			Workload: ContinuousKeep{}, Optional: true, RecordFidelity: true,
		}},
		Horizon: 2 * sim.Second,
	}
}

// TestRunReplicatedBackendEquivalence is the scenario-level shard-count
// invariance proof: the in-process pool, the InProcess backend (bytes
// codec, same process), Subprocess at several shard counts, and a
// work-stealing Fleet (uniform and with a throttled endpoint) must produce
// bit-identical metrics in identical order.
func TestRunReplicatedBackendEquivalence(t *testing.T) {
	sc := shardedScenario()
	const replicas = 6
	opts := func(b runner.Backend) ReplicaOptions {
		return ReplicaOptions{Replicas: replicas, Seed: 21, Backend: b}
	}
	want, err := sc.RunReplicated(opts(nil))
	if err != nil {
		t.Fatal(err)
	}
	wantJSON := make([][]byte, replicas)
	for i, m := range want {
		wantJSON[i] = metricsJSON(t, m)
	}
	worker := []string{os.Args[0], runner.WorkerFlag}
	backends := map[string]runner.Backend{
		"in-process": runner.InProcess{},
		"shards-1":   runner.Subprocess{Shards: 1, Command: worker},
		"shards-3":   runner.Subprocess{Shards: 3, Command: worker},
		"fleet-2": runner.Fleet{Endpoints: []runner.Endpoint{
			{Name: "a", Command: worker},
			{Name: "b", Command: worker, Throttle: 20 * time.Millisecond},
		}, ChunkSize: 2},
	}
	for name, b := range backends {
		got, err := sc.RunReplicated(opts(b))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i := range want {
			if g := metricsJSON(t, got[i]); !bytes.Equal(g, wantJSON[i]) {
				t.Errorf("%s: replica %d metrics diverged\n want %s\n  got %s", name, i, wantJSON[i], g)
			}
		}
	}
}
