package qnet

import (
	"fmt"
	"strings"
	"testing"

	"qnp/internal/sim"
)

func TestScenarioQuickstart(t *testing.T) {
	res, err := Scenario{
		Topology: ChainTopo(3),
		Circuits: []CircuitSpec{{
			ID: "vc", Src: "n0", Dst: "n2", Fidelity: 0.8,
			Workload:       KeepBatch{Count: 1, Pairs: 5},
			RecordFidelity: true,
		}},
		Horizon: 30 * sim.Second,
		WaitFor: []CircuitID{"vc"},
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	cm := res.Metrics.Circuit("vc")
	if !cm.Established || cm.Delivered != 5 || !cm.AllComplete() {
		t.Fatalf("established=%v delivered=%d complete=%v", cm.Established, cm.Delivered, cm.AllComplete())
	}
	if len(cm.Fidelities) != 5 || len(cm.States) != 5 {
		t.Fatalf("recorded %d fidelities / %d states", len(cm.Fidelities), len(cm.States))
	}
	for i, f := range cm.Fidelities {
		if f < 0.5 || f > 1 {
			t.Errorf("fidelity[%d] = %v", i, f)
		}
		if !cm.States[i].Valid() {
			t.Errorf("state[%d] invalid", i)
		}
	}
	if rm := cm.Requests[0]; !rm.Done || rm.CompletedAt <= rm.SubmittedAt {
		t.Errorf("request metrics: %+v", rm)
	}
	if res.Metrics.ClassicalMessages == 0 || res.Metrics.Nodes != 3 || res.Metrics.Links != 2 {
		t.Errorf("network totals: %+v", res.Metrics)
	}
	if res.VC("vc") == nil {
		t.Error("live circuit not exposed")
	}
}

// TestStartOrderDeterminism is the regression net for Network.Start's wiring
// order: two fresh networks from the same seed must produce identical
// delivered-pair traces. Before Start iterated node IDs in sorted order this
// depended on Go's randomised map iteration.
func TestStartOrderDeterminism(t *testing.T) {
	trace := func() string {
		res, err := Scenario{
			Topology: DumbbellTopo(),
			Circuits: []CircuitSpec{
				{ID: "a", Src: "A0", Dst: "B0", Fidelity: 0.85,
					Workload: KeepBatch{Count: 1, Pairs: 8}, RecordFidelity: true},
				{ID: "b", Src: "A1", Dst: "B1", Fidelity: 0.85,
					Workload: KeepBatch{Count: 1, Pairs: 8}, RecordFidelity: true},
			},
			Horizon: 60 * sim.Second,
			WaitFor: []CircuitID{"a", "b"},
		}.Run()
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		for _, cm := range res.Metrics.Circuits {
			for i, at := range cm.DeliveryTimes {
				fmt.Fprintf(&b, "%s %d %d %v %.9f\n", cm.ID, i, at, cm.States[i], cm.Fidelities[i])
			}
		}
		return b.String()
	}
	first := trace()
	for run := 1; run < 3; run++ {
		if got := trace(); got != first {
			t.Fatalf("run %d produced a different delivered-pair trace:\n--- first ---\n%s--- run %d ---\n%s",
				run, first, run, got)
		}
	}
}

// TestEstablishDeadlineNoOvershoot pins the bounded installation wait: when
// the CONFIRM cannot return in time, EstablishPlan must fail without firing
// events beyond its deadline — virtual time never silently overshoots.
func TestEstablishDeadlineNoOvershoot(t *testing.T) {
	net := Chain(DefaultConfig(), 3)
	dec, _, err := net.Controller.Place(PlacementRequest{Src: "n0", Dst: "n2", Fidelity: 0.8, Cutoff: CutoffLong, Probe: true})
	if err != nil {
		t.Fatal(err)
	}
	plan := dec.Plan
	// The installation deadline is 4× the path's propagation delay plus
	// 1 ms of slack; a per-hop processing delay far beyond that makes the
	// SETUP/CONFIRM round trip impossible to finish in time.
	net.Classical.SetProcessingDelay(10 * sim.Second)
	start := net.Sim.Now()
	deadline := start.Add(net.Classical.PathDelay(toNodeIDs(plan.Path)).Scale(4) + sim.Millisecond)
	if _, err := net.EstablishPlan("late", plan); err == nil {
		t.Fatal("installation confirmed despite a 10 s per-hop processing delay")
	}
	if now := net.Sim.Now(); now > deadline {
		t.Errorf("Sim.Now() = %v after failed confirm, beyond the deadline %v", now, deadline)
	}
}

// TestScenarioMultiCircuitTeardown covers two circuits sharing the dumbbell
// bottleneck: both install, both deliver, and tearing one down leaves the
// other's handlers intact and delivering.
func TestScenarioMultiCircuitTeardown(t *testing.T) {
	res, err := Scenario{
		Topology: DumbbellTopo(),
		Circuits: []CircuitSpec{
			{ID: "c1", Src: "A0", Dst: "B0", Fidelity: 0.85, Workload: KeepBatch{Count: 1, Pairs: 3}},
			{ID: "c2", Src: "A1", Dst: "B1", Fidelity: 0.85, Workload: KeepBatch{Count: 1, Pairs: 3}},
		},
		Horizon: 60 * sim.Second,
		WaitFor: []CircuitID{"c1", "c2"},
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	if !m.Circuit("c1").AllComplete() || !m.Circuit("c2").AllComplete() {
		t.Fatalf("initial deliveries: c1=%d c2=%d", m.Circuit("c1").Delivered, m.Circuit("c2").Delivered)
	}
	// Tear down c1; c2's handler table must survive and keep delivering.
	res.VC("c1").Teardown()
	more := 0
	done := false
	res.VC("c2").HandleHead(Handlers{
		AutoConsume: true,
		OnPair:      func(Delivered) { more++ },
		OnComplete:  func(RequestID) { done = true },
	})
	if err := res.VC("c2").Submit(Request{ID: "again", Type: Keep, NumPairs: 3}); err != nil {
		t.Fatal(err)
	}
	res.Net.Run(60 * sim.Second)
	if more != 3 || !done {
		t.Errorf("after teardown of c1: c2 delivered %d more pairs, done=%v", more, done)
	}
}

func TestScenarioSelectors(t *testing.T) {
	// DiameterPair must pick the chain's ends.
	res, err := Scenario{
		Topology: ChainTopo(4),
		Circuits: []CircuitSpec{{ID: "d", Select: DiameterPair(), Fidelity: 0.8,
			Workload: KeepBatch{Count: 1, Pairs: 1}}},
		Horizon: 30 * sim.Second,
		WaitFor: []CircuitID{"d"},
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	cm := res.Metrics.Circuit("d")
	if cm.Src != "n0" || cm.Dst != "n3" || cm.Delivered != 1 {
		t.Errorf("diameter circuit %s→%s delivered %d", cm.Src, cm.Dst, cm.Delivered)
	}

	// RandomPairs expands one spec into k distinct circuits, and the same
	// seed draws the same pairs.
	endpoints := func(seed int64) []string {
		cfg := DefaultConfig()
		cfg.Seed = seed
		res, err := Scenario{
			Config:   cfg,
			Topology: GridTopo(3, 3),
			Circuits: []CircuitSpec{{ID: "r", Select: RandomPairs(3), Fidelity: 0.8, Optional: true}},
			Horizon:  sim.Millisecond,
		}.Run()
		if err != nil {
			t.Fatal(err)
		}
		var out []string
		for _, cm := range res.Metrics.Circuits {
			out = append(out, string(cm.ID)+":"+cm.Src+"-"+cm.Dst)
		}
		return out
	}
	a, b := endpoints(7), endpoints(7)
	if len(a) != 3 {
		t.Fatalf("RandomPairs(3) expanded to %d circuits: %v", len(a), a)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("selector not deterministic: %v vs %v", a, b)
		}
	}
	seen := map[string]bool{}
	for _, e := range a {
		pair := e[strings.Index(e, ":")+1:]
		if seen[pair] {
			t.Errorf("duplicate endpoint pair %s in %v", pair, a)
		}
		seen[pair] = true
	}
	if c := endpoints(8); fmt.Sprint(a) == fmt.Sprint(c) {
		t.Errorf("different seeds drew identical pairs: %v", a)
	}
}

func TestScenarioTimedWorkloads(t *testing.T) {
	run := func(w Workload) *CircuitMetrics {
		res, err := Scenario{
			Topology: ChainTopo(2),
			Circuits: []CircuitSpec{{ID: "c", Src: "n0", Dst: "n1", Fidelity: 0.85, Workload: w}},
			Horizon:  4 * sim.Second,
		}.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Metrics.Circuit("c")
	}
	iv := run(IntervalKeep{Interval: sim.Second, Pairs: 1})
	// Arrivals at 0,1,2,3,4 s: five requests inside the horizon.
	if len(iv.Requests) != 5 {
		t.Errorf("IntervalKeep issued %d requests, want 5", len(iv.Requests))
	}
	po := run(PoissonKeep{Mean: sim.Second, Pairs: 1})
	if len(po.Requests) == 0 {
		t.Error("PoissonKeep issued no requests")
	}
	oo := run(OnOffKeep{On: sim.Second, Off: sim.Second, Interval: 250 * sim.Millisecond, Pairs: 1})
	if len(oo.Requests) == 0 {
		t.Error("OnOffKeep issued no requests")
	}
	// Bursts cover half the horizon: strictly fewer arrivals than the
	// always-on interval source at the same spacing would make.
	alwaysOn := run(IntervalKeep{Interval: 250 * sim.Millisecond, Pairs: 1})
	if len(oo.Requests) >= len(alwaysOn.Requests) {
		t.Errorf("OnOffKeep (%d) not sparser than always-on interval (%d)",
			len(oo.Requests), len(alwaysOn.Requests))
	}
}

func TestScenarioMeasureStream(t *testing.T) {
	res, err := Scenario{
		Topology: ChainTopo(3),
		Circuits: []CircuitSpec{{ID: "m", Src: "n0", Dst: "n2", Fidelity: 0.8,
			Workload: MeasureStream{Pairs: 10}}},
		Horizon: 60 * sim.Second,
		WaitFor: []CircuitID{"m"},
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	cm := res.Metrics.Circuit("m")
	if cm.Delivered != 10 || !cm.AllComplete() {
		t.Errorf("measure stream delivered %d, complete=%v", cm.Delivered, cm.AllComplete())
	}
}

func TestScenarioEstablishErrors(t *testing.T) {
	// Impossible fidelity: the run fails unless the circuit is Optional.
	base := Scenario{
		Topology: ChainTopo(3),
		Circuits: []CircuitSpec{{ID: "x", Src: "n0", Dst: "n2", Fidelity: 0.9999}},
		Horizon:  sim.Second,
	}
	if _, err := base.Run(); err == nil {
		t.Error("infeasible circuit did not fail the run")
	}
	base.Circuits[0].Optional = true
	res, err := base.Run()
	if err != nil {
		t.Fatalf("optional circuit failed the run: %v", err)
	}
	cm := res.Metrics.Circuit("x")
	if cm.Established || cm.Err == "" {
		t.Errorf("optional infeasible circuit recorded as %+v", cm)
	}
	// WaitFor must name declared circuits.
	bad := base
	bad.WaitFor = []CircuitID{"nope"}
	if _, err := bad.Run(); err == nil {
		t.Error("unknown WaitFor circuit accepted")
	}
}

func TestScenarioLinkLengthOverride(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LinkLengthM = map[string]float64{LinkKey("n1", "n0"): 2000}
	net := Chain(cfg, 3)
	if d0, d1 := net.Classical.Delay("n0", "n1"), net.Classical.Delay("n1", "n2"); d0 <= d1 {
		t.Errorf("overridden 2 km link delay %v not above default %v", d0, d1)
	}
	link, ok := net.Graph.Link("n0", "n1")
	if !ok || link.LengthM != 2000 {
		t.Errorf("routing graph link length = %v", link.LengthM)
	}
	if link, _ := net.Graph.Link("n1", "n2"); link.LengthM != 2 {
		t.Errorf("unaffected link length = %v", link.LengthM)
	}
}

func TestRunReplicatedWorkerInvariance(t *testing.T) {
	sc := Scenario{
		Topology: ChainTopo(3),
		Circuits: []CircuitSpec{{ID: "c", Select: DiameterPair(), Fidelity: 0.8,
			Workload: KeepBatch{Count: 1, Pairs: 3}, RecordFidelity: true}},
		Horizon: 30 * sim.Second,
		WaitFor: []CircuitID{"c"},
	}
	render := func(workers int) string {
		ms, err := sc.RunReplicated(ReplicaOptions{Replicas: 6, Workers: workers, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		for i, m := range ms {
			cm := m.Circuit("c")
			fmt.Fprintf(&b, "replica %d: %d delivered, EER %.9f, meanF %.9f\n",
				i, cm.Delivered, cm.EER(m.Start, m.End), cm.MeanFidelity())
		}
		return b.String()
	}
	if a, b := render(1), render(4); a != b {
		t.Fatalf("worker count changed replicated results:\n--- 1 worker ---\n%s--- 4 workers ---\n%s", a, b)
	}
}

// TestScenarioEERPolicing pins the CircuitSpec.MaxEER path end to end: an
// explicit allocation polices an oversized rate request away and paces an
// admitted one at or below the allocation.
func TestScenarioEERPolicing(t *testing.T) {
	run := func(rate float64) *CircuitMetrics {
		res, err := Scenario{
			Topology: ChainTopo(2),
			Circuits: []CircuitSpec{{
				ID: "p", Src: "n0", Dst: "n1", Fidelity: 0.85, MaxEER: 20,
				Workload: Batch{Requests: []Request{{ID: "m", Type: Measure, Rate: rate}}},
			}},
			Horizon: 5 * sim.Second,
		}.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Metrics.Circuit("p")
	}
	over := run(50) // demands 2.5× the allocation: policed away
	if over.Rejected != 1 || over.Delivered != 0 {
		t.Errorf("oversized request: rejected=%d delivered=%d", over.Rejected, over.Delivered)
	}
	ok := run(15) // fits: admitted and paced
	if ok.Rejected != 0 || ok.Delivered == 0 {
		t.Fatalf("admitted request: rejected=%d delivered=%d", ok.Rejected, ok.Delivered)
	}
	if eer := float64(ok.Delivered) / 5.0; eer > 20*1.02 {
		t.Errorf("measured EER %.2f exceeds the 20 pairs/s allocation", eer)
	}
}
