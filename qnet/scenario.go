package qnet

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"qnp/internal/hardware"
	"qnp/internal/runner"
	"qnp/internal/sim"
)

// TopologyKind selects a built-in topology generator.
type TopologyKind int

// Built-in topology kinds.
const (
	TopoChain TopologyKind = iota
	TopoDumbbell
	TopoRing
	TopoStar
	TopoGrid
	TopoWaxman
	TopoCustom
)

// TopologySpec declares a scenario's network shape. The zero value is
// invalid; use the constructors (ChainTopo, DumbbellTopo, ...) or fill the
// fields for the chosen Kind. Per-link fibre lengths come from
// Config.LinkLengthM, so one spec expresses both uniform and heterogeneous
// plants.
type TopologySpec struct {
	Kind TopologyKind
	// Nodes sizes chains, rings, stars and Waxman graphs.
	Nodes int
	// Rows and Cols size grids.
	Rows, Cols int
	// Alpha and Beta are the Waxman parameters (0 = the customary 0.4).
	Alpha, Beta float64
	// Build constructs a started custom network (Kind TopoCustom).
	Build func(Config) *Network
}

// ChainTopo declares a k-node chain.
func ChainTopo(k int) TopologySpec { return TopologySpec{Kind: TopoChain, Nodes: k} }

// DumbbellTopo declares the paper's Fig. 7 dumbbell.
func DumbbellTopo() TopologySpec { return TopologySpec{Kind: TopoDumbbell} }

// RingTopo declares a k-node ring.
func RingTopo(k int) TopologySpec { return TopologySpec{Kind: TopoRing, Nodes: k} }

// StarTopo declares a k-node star (hub n0).
func StarTopo(k int) TopologySpec { return TopologySpec{Kind: TopoStar, Nodes: k} }

// GridTopo declares a rows×cols lattice.
func GridTopo(rows, cols int) TopologySpec {
	return TopologySpec{Kind: TopoGrid, Rows: rows, Cols: cols}
}

// WaxmanTopo declares a k-node Waxman random graph.
func WaxmanTopo(k int, alpha, beta float64) TopologySpec {
	return TopologySpec{Kind: TopoWaxman, Nodes: k, Alpha: alpha, Beta: beta}
}

// CustomTopo declares a hand-built topology; build must return a started
// network.
func CustomTopo(build func(Config) *Network) TopologySpec {
	return TopologySpec{Kind: TopoCustom, Build: build}
}

// materialize builds and starts the declared network.
func (t TopologySpec) materialize(cfg Config) (*Network, error) {
	switch t.Kind {
	case TopoChain:
		if t.Nodes < 2 {
			return nil, fmt.Errorf("qnet: chain topology needs ≥ 2 nodes (got %d)", t.Nodes)
		}
		return Chain(cfg, t.Nodes), nil
	case TopoDumbbell:
		return Dumbbell(cfg), nil
	case TopoRing:
		if t.Nodes < 3 {
			return nil, fmt.Errorf("qnet: ring topology needs ≥ 3 nodes (got %d)", t.Nodes)
		}
		return Ring(cfg, t.Nodes), nil
	case TopoStar:
		if t.Nodes < 2 {
			return nil, fmt.Errorf("qnet: star topology needs ≥ 2 nodes (got %d)", t.Nodes)
		}
		return Star(cfg, t.Nodes), nil
	case TopoGrid:
		if t.Rows < 1 || t.Cols < 1 || t.Rows*t.Cols < 2 {
			return nil, fmt.Errorf("qnet: grid topology needs ≥ 2 nodes (got %dx%d)", t.Rows, t.Cols)
		}
		return Grid(cfg, t.Rows, t.Cols), nil
	case TopoWaxman:
		if t.Nodes < 2 {
			return nil, fmt.Errorf("qnet: waxman topology needs ≥ 2 nodes (got %d)", t.Nodes)
		}
		return RandomGraph(cfg, t.Nodes, t.Alpha, t.Beta), nil
	case TopoCustom:
		if t.Build == nil {
			return nil, errors.New("qnet: custom topology without Build")
		}
		return t.Build(cfg), nil
	}
	return nil, fmt.Errorf("qnet: unknown topology kind %d", t.Kind)
}

// A Selector derives circuit endpoints from the materialized topology, so
// scenarios stay valid across shapes and seeds. The rng is the scenario's
// selection stream — deterministic per seed and disjoint from the physics
// stream. The built-in selectors (DiameterPair, RandomPairs) are plain
// data values, so scenarios using them serialize for process-sharded
// execution; ad-hoc logic can wrap a SelectorFunc instead, at the cost of
// shardability (unless the concrete type is registered via
// RegisterSelector).
type Selector interface {
	Pairs(net *Network, rng *rand.Rand) [][2]string
}

// SelectorFunc adapts a plain function to the Selector interface.
type SelectorFunc func(net *Network, rng *rand.Rand) [][2]string

// Pairs implements Selector.
func (f SelectorFunc) Pairs(net *Network, rng *rand.Rand) [][2]string { return f(net, rng) }

// diameterPair is the DiameterPair selector value.
type diameterPair struct{}

// DiameterPair selects the topology's farthest node pair — its hardest
// circuit.
func DiameterPair() Selector { return diameterPair{} }

// Pairs implements Selector.
func (diameterPair) Pairs(net *Network, _ *rand.Rand) [][2]string {
	src, dst, _ := net.Diameter()
	return [][2]string{{src, dst}}
}

// randomPairs is the RandomPairs selector value.
type randomPairs struct {
	K int
}

// RandomPairs selects k distinct unordered node pairs uniformly at random
// (clamped to the number of pairs the topology has).
func RandomPairs(k int) Selector { return randomPairs{K: k} }

// Pairs implements Selector.
func (s randomPairs) Pairs(net *Network, rng *rand.Rand) [][2]string {
	k := s.K
	ids := net.NodeIDs()
	if max := len(ids) * (len(ids) - 1) / 2; k > max {
		k = max
	}
	seen := make(map[[2]string]bool, k)
	out := make([][2]string, 0, k)
	for len(out) < k {
		i, j := rng.Intn(len(ids)), rng.Intn(len(ids))
		if i == j {
			continue
		}
		p := [2]string{ids[i], ids[j]}
		if p[0] > p[1] {
			p[0], p[1] = p[1], p[0]
		}
		if seen[p] {
			continue
		}
		seen[p] = true
		out = append(out, p)
	}
	return out
}

// CircuitSpec declares one circuit of a scenario: its endpoints (explicit,
// or derived by a Selector — which may expand the spec into several
// circuits), the end-to-end fidelity target and cutoff policy, the
// workload that drives it, and optional application handlers that ride on
// top of the scenario's metrics recording.
type CircuitSpec struct {
	// ID names the circuit (default c<i>). Selector expansions beyond one
	// pair get -<j> suffixes.
	ID CircuitID
	// Src and Dst are explicit endpoints; Select derives them instead.
	Src, Dst string
	Select   Selector
	// Fidelity is the end-to-end target handed to the routing controller.
	Fidelity float64
	// Policy and ManualCutoff select the cutoff rule (default CutoffLong).
	Policy       CutoffPolicy
	ManualCutoff sim.Duration
	// MaxEER overrides the circuit's end-to-end rate allocation for
	// policing/shaping (0 keeps the controller's allocation, which is
	// itself 0 unless Config.EnforceEER is on).
	MaxEER float64
	// Plan bypasses the routing controller with a hand-built plan — the
	// paper does this for the near-term evaluation (§5.3).
	Plan *Plan
	// ArriveAt schedules the circuit's arrival: instead of being installed
	// up front, it establishes on the simulation clock this long after
	// traffic opens (via the asynchronous signalling path, contending with
	// live traffic). 0 pre-installs as before.
	ArriveAt sim.Duration
	// HoldFor tears the circuit down this long after its traffic opens
	// (scenario-driven departure through Circuit.Teardown, triggering an
	// allocation re-fit for survivors under EnforceEER). 0 holds the
	// circuit to the end of the run.
	HoldFor sim.Duration
	// Arrival and Holding draw ArriveAt/HoldFor from a distribution
	// instead — e.g. Exponential arrival offsets and holding times give a
	// Poisson churn mix. Draws come from the scenario's dedicated churn
	// stream (one per configured field per expanded circuit, in expansion
	// order), never from the physics or workload streams.
	Arrival *Dist
	Holding *Dist
	// MinEER is the circuit's demand at admission: under EnforceEER, an
	// arrival whose re-fitted allocation falls below MinEER is rejected —
	// counted in Metrics.RejectedAtAdmission, not treated as a run error.
	MinEER float64
	// Candidates is the number of loopless candidate paths the controller
	// scores for placement (see CircuitOptions.Candidates). 0 or 1 places
	// on the shortest path only; with more, a MinEER demand the shortest
	// path cannot absorb re-routes to the best alternate that can, recorded
	// in CircuitMetrics.CandidateIndex.
	Candidates int
	// Workload drives requests; nil establishes an idle circuit.
	Workload Workload
	// Head and Tail are application callbacks layered over the metrics
	// recording. Handlers keep their AutoConsume semantics: a circuit
	// whose handlers do not take ownership of delivered qubits has them
	// freed automatically.
	Head, Tail Handlers
	// RecordFidelity records each delivery's exact pair fidelity and
	// declared Bell state in the metrics (costs one 4×4 fidelity
	// computation per delivery; never touches the physics random stream).
	RecordFidelity bool
	// Optional records establishment failure in the metrics instead of
	// failing the run — for sweeps over topologies where the routing
	// controller may find no feasible plan.
	Optional bool
}

// Scenario is the declarative experiment unit: a topology, circuits with
// workloads, and a run budget. Run executes it once on Config.Seed;
// RunReplicated fans independent replicas across a worker pool. The
// simulation event order is a pure function of the scenario value, so any
// result is reproducible from its seed.
type Scenario struct {
	Name string
	// Config selects hardware and seed; the zero value means
	// DefaultConfig() (with Seed kept if set).
	Config   Config
	Topology TopologySpec
	Circuits []CircuitSpec
	// Horizon bounds the traffic phase in virtual time (it excludes
	// circuit installation).
	Horizon sim.Duration
	// WaitFor stops the run as soon as the listed circuits have completed
	// every finite request submitted to them (the horizon still caps the
	// run). Open-ended requests never complete and are not waited for.
	WaitFor []CircuitID
	// Sequential brings circuits up one at a time — establish, handlers,
	// workload — so earlier circuits carry traffic while later ones
	// install, as in the paper's §5.2 runs. The default establishes all
	// circuits first, then opens traffic together.
	Sequential bool
	// ProcessingDelay is applied to every classical message once traffic
	// opens (the Fig. 10c knob); installation runs undelayed.
	ProcessingDelay sim.Duration
	// Setup, when set, is called with the started network before any
	// circuit establishes — the hook for handlers that need device or
	// clock access.
	Setup func(*Network)
	// Context, when non-nil, aborts the run loop early (partial metrics
	// are returned).
	Context context.Context
}

// Result is a single scenario run: the unified metrics plus the live
// network and circuits for post-run inspection.
type Result struct {
	Metrics *Metrics
	Net     *Network
	circs   map[CircuitID]*Circuit
}

// VC returns a live established circuit by ID (nil if unknown or failed).
func (r *Result) VC(id CircuitID) *Circuit { return r.circs[id] }

// effectiveConfig fills unset Config fields with the paper's defaults,
// field by field, so a scenario that sets only (say) a seed or a qubit
// count keeps everything else it declared.
func (sc Scenario) effectiveConfig() Config {
	cfg := sc.Config
	if cfg.Params == (hardware.Params{}) {
		cfg.Params = DefaultConfig().Params
	}
	if cfg.Link == (hardware.LinkConfig{}) {
		cfg.Link = DefaultConfig().Link
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	return cfg
}

// liveCircuit is the engine's per-circuit runtime state.
type liveCircuit struct {
	spec CircuitSpec
	id   CircuitID
	src  string
	dst  string
	vc   *Circuit
	cm   *CircuitMetrics
	ctx  *WorkloadContext
	// arriveAt/holdFor are the resolved churn values (spec fields, or the
	// per-circuit draws from the churn stream).
	arriveAt sim.Duration
	holdFor  sim.Duration
}

// runState carries the mutable engine state shared by the run loop and the
// churn event callbacks.
type runState struct {
	net *Network
	m   *Metrics
	res *Result
	// err records the first fatal failure raised from inside an event
	// callback (a non-optional arrival that could not establish, a workload
	// submission error); the run loop aborts on it.
	err error
}

// fail records the first fatal error; the run loop checks it between
// events.
func (eng *runState) fail(err error) {
	if eng.err == nil {
		eng.err = err
	}
}

// Run executes the scenario once and returns its metrics. Establishment
// errors fail the run unless the circuit is Optional (admission rejections
// under EnforceEER are never fatal — they are the studied outcome);
// workload submission errors always fail it. Error returns still carry
// well-formed partial metrics: Start/End and the network-wide counts are
// stamped on every path.
func (sc Scenario) Run() (*Result, error) {
	cfg := sc.effectiveConfig()
	net, err := sc.Topology.materialize(cfg)
	if err != nil {
		return nil, err
	}
	if sc.Setup != nil {
		sc.Setup(net)
	}
	m := &Metrics{Name: sc.Name, Mode: cfg.MetricsMode, byID: make(map[CircuitID]*CircuitMetrics)}
	res := &Result{Metrics: m, Net: net, circs: make(map[CircuitID]*Circuit)}
	eng := &runState{net: net, m: m, res: res}
	// fail stamps the window and counts before an error return, so partial
	// metrics from failed establishes are well-formed instead of
	// zero-valued.
	fail := func(err error) (*Result, error) {
		if m.Start == 0 {
			m.Start = net.Sim.Now()
		}
		m.End = net.Sim.Now()
		sc.finalize(net, m)
		return res, err
	}

	// Selector expansion draws from a selection stream derived from the
	// seed, and churn scheduling from a churn stream — never from the
	// simulation's physics stream, and on offsets disjoint from every
	// workload stream (see the stream-family constants in churn.go).
	selRand := rand.New(rand.NewSource(cfg.Seed*runner.SeedStride + selectionStreamOffset))
	churnRand := rand.New(rand.NewSource(cfg.Seed*runner.SeedStride + churnStreamOffset))
	var live []*liveCircuit
	for _, spec := range sc.Circuits {
		var pairs [][2]string
		switch {
		case spec.Plan != nil:
			p := spec.Plan.Path
			if len(p) < 2 {
				return fail(fmt.Errorf("qnet: scenario circuit %q: manual plan path too short", spec.ID))
			}
			pairs = [][2]string{{p[0], p[len(p)-1]}}
		case spec.Select != nil:
			pairs = spec.Select.Pairs(net, selRand)
		default:
			pairs = [][2]string{{spec.Src, spec.Dst}}
		}
		for j, p := range pairs {
			id := spec.ID
			if id == "" {
				id = CircuitID(fmt.Sprintf("c%d", len(live)))
			} else if len(pairs) > 1 {
				id = CircuitID(fmt.Sprintf("%s-%d", id, j))
			}
			if _, dup := m.byID[id]; dup {
				return fail(fmt.Errorf("qnet: scenario declares circuit %q twice", id))
			}
			cm := newCircuitMetrics(id, p[0], p[1], cfg.MetricsMode)
			m.Circuits = append(m.Circuits, cm)
			m.byID[id] = cm
			lc := &liveCircuit{spec: spec, id: id, src: p[0], dst: p[1], cm: cm}
			lc.ctx = &WorkloadContext{
				Net:     net,
				Sim:     net.Sim,
				Rand:    rand.New(rand.NewSource(cfg.Seed*runner.SeedStride + workloadStreamOffset(len(live)))),
				Horizon: sc.Horizon,
				cm:      cm,
			}
			// Churn resolution: fixed offsets, overridden by per-circuit
			// draws from the churn stream (in expansion order — the draw
			// sequence is a pure function of the scenario value and seed).
			lc.arriveAt = spec.ArriveAt
			if spec.Arrival != nil {
				lc.arriveAt = spec.Arrival.draw(churnRand)
			}
			lc.holdFor = spec.HoldFor
			if spec.Holding != nil {
				lc.holdFor = spec.Holding.draw(churnRand)
			}
			live = append(live, lc)
		}
	}
	for _, id := range sc.WaitFor {
		if m.byID[id] == nil {
			return fail(fmt.Errorf("qnet: WaitFor names unknown circuit %q", id))
		}
	}

	// Pre-installed circuits establish before traffic opens; scheduled
	// (churn) arrivals establish on the simulation clock during the run.
	pre := make([]*liveCircuit, 0, len(live))
	var scheduled []*liveCircuit
	for _, lc := range live {
		if lc.arriveAt > 0 {
			scheduled = append(scheduled, lc)
		} else {
			pre = append(pre, lc)
		}
	}

	if sc.Sequential {
		// Bring-up interleaves with traffic: each circuit's workload opens
		// before the next circuit installs.
		for _, lc := range pre {
			if err := sc.establish(eng, lc); err != nil {
				return fail(err)
			}
			if lc.vc != nil {
				res.circs[lc.id] = lc.vc
			}
			sc.attach(lc)
			if lc.vc == nil || lc.spec.Workload == nil {
				continue
			}
			for _, req := range lc.spec.Workload.Immediate(lc.ctx) {
				if err := lc.ctx.Submit(req); err != nil {
					return fail(fmt.Errorf("qnet: scenario circuit %q: %w", lc.id, err))
				}
			}
			lc.spec.Workload.Start(lc.ctx)
		}
	} else {
		for _, lc := range pre {
			if err := sc.establish(eng, lc); err != nil {
				return fail(err)
			}
			if lc.vc != nil {
				res.circs[lc.id] = lc.vc
			}
		}
		for _, lc := range pre {
			sc.attach(lc)
		}
		// Immediate phase: breadth-first across circuits, so simultaneous
		// batches interleave like a round-robin submission loop.
		immediates := make([][]Request, len(pre))
		for i, lc := range pre {
			if lc.vc != nil && lc.spec.Workload != nil {
				immediates[i] = lc.spec.Workload.Immediate(lc.ctx)
			}
		}
		for k := 0; ; k++ {
			any := false
			for i, lc := range pre {
				if k < len(immediates[i]) {
					any = true
					if err := lc.ctx.Submit(immediates[i][k]); err != nil {
						return fail(fmt.Errorf("qnet: scenario circuit %q: %w", lc.id, err))
					}
				}
			}
			if !any {
				break
			}
		}
		for _, lc := range pre {
			if lc.vc != nil && lc.spec.Workload != nil {
				lc.spec.Workload.Start(lc.ctx)
			}
		}
	}

	if sc.ProcessingDelay > 0 {
		net.Classical.SetProcessingDelay(sc.ProcessingDelay)
	}

	t0 := net.Sim.Now()
	m.Start = t0

	// Churn scheduling: arrivals at t0+ArriveAt, departures HoldFor after a
	// circuit's traffic opens (for pre-installed circuits that is t0, the
	// instant every circuit's ctx.Start was pinned to).
	for _, lc := range scheduled {
		lc := lc
		lc.cm.PendingArrival = true
		net.Sim.ScheduleAt(t0.Add(lc.arriveAt), func() { sc.arrive(eng, lc) })
	}
	for _, lc := range pre {
		if lc.vc == nil || lc.holdFor <= 0 {
			continue
		}
		lc := lc
		at := lc.ctx.Start.Add(lc.holdFor)
		if at < t0 {
			at = t0
		}
		net.Sim.ScheduleAt(at, func() { sc.depart(eng, lc) })
	}

	deadline := t0.Add(sc.Horizon)
	ctx := sc.Context
	switch {
	case len(sc.WaitFor) > 0:
		// Early-stop runs step by step; like the experiment loops it
		// replaces, the final step may carry the clock past the horizon.
		for eng.err == nil && !m.waitSatisfied(sc.WaitFor) && net.Sim.Now() < deadline {
			if ctx != nil && ctx.Err() != nil {
				break
			}
			if !net.Sim.Step() {
				break
			}
		}
	case ctx == nil && len(scheduled) == 0:
		net.Sim.RunUntil(deadline)
	default:
		// Stepped run: check for context cancellation and fatal churn
		// errors between events. Stepping fires the identical event
		// sequence RunUntil would, so results stay bit-identical.
		for eng.err == nil && (ctx == nil || ctx.Err() == nil) && net.Sim.StepUntil(deadline) {
		}
		if eng.err == nil && (ctx == nil || ctx.Err() == nil) {
			net.Sim.RunUntil(deadline) // pin the clock to the horizon
		}
	}
	if eng.err != nil {
		return fail(eng.err)
	}
	m.End = net.Sim.Now()
	sc.finalize(net, m)
	return res, nil
}

// finalize stamps the network-wide counters — on successful and failed
// runs alike.
func (sc Scenario) finalize(net *Network, m *Metrics) {
	m.Nodes = len(net.NodeIDs())
	m.Links = net.LinkCount()
	m.ClassicalMessages = net.Classical.Stats().MessagesSent
	m.NodeStats = make(map[string]NodeStats, m.Nodes)
	for _, id := range net.NodeIDs() {
		m.NodeStats[id] = net.Node(id).Stats()
	}
}

// arrive is a scheduled circuit's arrival event: plan, admission, and
// asynchronous installation riding the live event flow. Failures are
// recorded per-circuit; only non-optional, non-admission failures abort the
// run.
func (sc Scenario) arrive(eng *runState, lc *liveCircuit) {
	net := eng.net
	lc.cm.ArrivedAt = net.Sim.Now()
	done := func(vc *Circuit, err error) {
		lc.cm.PendingArrival = false
		if err != nil {
			lc.cm.Err = err.Error()
			if errors.Is(err, ErrAdmissionRejected) {
				lc.cm.AdmissionRejected = true
				eng.m.RejectedAtAdmission++
				return
			}
			if !lc.spec.Optional {
				eng.fail(fmt.Errorf("qnet: scenario circuit %q: %w", lc.id, err))
			}
			return
		}
		eng.m.Admitted++
		lc.vc = vc
		lc.ctx.Circuit = vc
		lc.cm.Established = true
		lc.cm.EstablishedAt = net.Sim.Now()
		lc.cm.Plan = vc.Plan
		lc.cm.Path = append([]string(nil), vc.Plan.Path...)
		lc.cm.CandidateIndex = vc.Placement.CandidateIndex
		eng.res.circs[lc.id] = vc
		sc.attach(lc)
		if lc.spec.Workload != nil {
			for _, req := range lc.spec.Workload.Immediate(lc.ctx) {
				if err := lc.ctx.Submit(req); err != nil {
					eng.fail(fmt.Errorf("qnet: scenario circuit %q: %w", lc.id, err))
					return
				}
			}
			lc.spec.Workload.Start(lc.ctx)
		}
		if lc.holdFor > 0 {
			net.Sim.Schedule(lc.holdFor, func() { sc.depart(eng, lc) })
		}
	}
	if lc.spec.Plan != nil {
		net.establishPlanAsync(lc.id, *lc.spec.Plan, true, 0, done)
		return
	}
	opts := &CircuitOptions{
		Policy:       lc.spec.Policy,
		ManualCutoff: lc.spec.ManualCutoff,
		MaxEER:       lc.spec.MaxEER,
		MinEER:       lc.spec.MinEER,
		Candidates:   lc.spec.Candidates,
	}
	net.EstablishAsync(lc.id, lc.src, lc.dst, lc.spec.Fidelity, opts, done)
}

// depart is the single scenario-driven departure path: the workload chain
// stops, the circuit tears down (idempotently — a duplicate event is a
// no-op), and the lifetime stamp is recorded.
func (sc Scenario) depart(eng *runState, lc *liveCircuit) {
	if lc.vc == nil || lc.cm.TornDownAt != 0 {
		return
	}
	lc.ctx.stopped = true
	lc.vc.Teardown()
	lc.cm.TornDownAt = eng.net.Sim.Now()
}

// establish installs one pre-traffic circuit (controller-planned or
// manual), stamping its lifetime fields and admission outcome.
func (sc Scenario) establish(eng *runState, lc *liveCircuit) error {
	net := eng.net
	lc.cm.ArrivedAt = net.Sim.Now()
	var vc *Circuit
	var err error
	if lc.spec.Plan != nil {
		vc, err = net.EstablishPlan(lc.id, *lc.spec.Plan)
	} else {
		opts := &CircuitOptions{
			Policy:       lc.spec.Policy,
			ManualCutoff: lc.spec.ManualCutoff,
			MaxEER:       lc.spec.MaxEER,
			MinEER:       lc.spec.MinEER,
			Candidates:   lc.spec.Candidates,
		}
		vc, err = net.Establish(lc.id, lc.src, lc.dst, lc.spec.Fidelity, opts)
	}
	if err != nil {
		lc.cm.Err = err.Error()
		if errors.Is(err, ErrAdmissionRejected) {
			lc.cm.AdmissionRejected = true
			eng.m.RejectedAtAdmission++
			return nil
		}
		if lc.spec.Optional {
			return nil
		}
		return fmt.Errorf("qnet: scenario circuit %q: %w", lc.id, err)
	}
	eng.m.Admitted++
	lc.vc = vc
	lc.ctx.Circuit = vc
	lc.ctx.Start = net.Sim.Now()
	lc.cm.Established = true
	lc.cm.EstablishedAt = net.Sim.Now()
	lc.cm.Plan = vc.Plan
	lc.cm.Path = append([]string(nil), vc.Plan.Path...)
	lc.cm.CandidateIndex = vc.Placement.CandidateIndex
	return nil
}

// attach layers the metrics recorder under the spec's application handlers
// at both ends. In non-sequential runs every circuit's traffic opens at
// the same instant, so Start is re-pinned when traffic begins.
func (sc Scenario) attach(lc *liveCircuit) {
	if lc.vc == nil {
		return
	}
	lc.ctx.Start = lc.ctx.Sim.Now()
	lc.vc.HandleHead(lc.headHandlers())
	lc.vc.HandleTail(lc.tailHandlers())
}

// headHandlers wraps the user's head-end handlers with metrics recording.
// AutoConsume keeps its dispatcher semantics: the pair is freed after the
// callback unless the user's handlers take ownership.
func (lc *liveCircuit) headHandlers() Handlers {
	user := lc.spec.Head
	cm := lc.cm
	record := lc.spec.RecordFidelity
	h := Handlers{
		AutoConsume: user.AutoConsume || user.OnPair == nil,
		OnPair: func(d Delivered) {
			f := 0.0
			if record && d.Pair != nil {
				f = d.Pair.FidelityWith(d.At, d.State)
			}
			cm.noteDelivery(d.At, record, f, d.State)
			if user.OnPair != nil {
				user.OnPair(d)
			}
		},
		OnComplete: func(id RequestID) {
			cm.noteComplete(id, lc.ctx.Sim.Now())
			if user.OnComplete != nil {
				user.OnComplete(id)
			}
		},
		OnReject: func(req Request, reason string) {
			cm.noteReject(req.ID)
			if user.OnReject != nil {
				user.OnReject(req, reason)
			}
		},
		OnExpire: func(id RequestID, corr Correlator) {
			cm.Expired++
			if user.OnExpire != nil {
				user.OnExpire(id, corr)
			}
		},
		OnEarlyPair: func(d Delivered) {
			cm.EarlyDelivered++
			if user.OnEarlyPair != nil {
				user.OnEarlyPair(d)
			}
		},
		OnTestEstimate: user.OnTestEstimate,
	}
	return h
}

// tailHandlers passes the user's tail handlers through, counting expiries
// and keeping the AutoConsume default.
func (lc *liveCircuit) tailHandlers() Handlers {
	user := lc.spec.Tail
	cm := lc.cm
	h := user
	h.AutoConsume = user.AutoConsume || user.OnPair == nil
	h.OnExpire = func(id RequestID, corr Correlator) {
		cm.Expired++
		if user.OnExpire != nil {
			user.OnExpire(id, corr)
		}
	}
	return h
}

// ReplicaOptions configure a replicated scenario run.
type ReplicaOptions struct {
	// Replicas is the number of independent runs (≥ 1).
	Replicas int
	// Workers caps the worker pool (0 = NumCPU); it never changes results.
	Workers int
	// Seed is the base seed: replica i runs the scenario with seed
	// runner.DeriveSeed(Seed, i), giving disjoint streams per replica.
	Seed int64
	// Progress, when non-nil, ticks after each replica completes.
	Progress func(done, total int)
	// Context, when non-nil, cancels remaining replicas; cancelled slots
	// are nil in the result.
	Context context.Context
	// Backend, when non-nil, executes replicas through the runner's
	// Backend seam instead of the in-process pool — runner.Subprocess
	// shards them across worker processes. The scenario must then be fully
	// declarative (see Scenario.Spec); replica seeding and result order are
	// backend-independent, so the metrics are bit-identical to an
	// in-process run for any backend, shard count or worker count.
	Backend runner.Backend
	// Timeout is the Backend's liveness bound — the Subprocess inactivity
	// watchdog or the Fleet heartbeat bound. 0 defers to the backend's own
	// default; negative disables detection. In-process runs ignore it.
	Timeout time.Duration
}

// RunReplicated fans independent replicas of the scenario across a worker
// pool and returns their metrics in replica order — bit-identical for any
// worker count (and, with a process-sharded Backend, any shard count). A
// replica that fails returns a Metrics with Err set rather than aborting
// its siblings.
func (sc Scenario) RunReplicated(o ReplicaOptions) ([]*Metrics, error) {
	if o.Replicas < 1 {
		o.Replicas = 1
	}
	if o.Backend != nil {
		return sc.runReplicatedOn(o)
	}
	ropts := runner.Options{Workers: o.Workers, Seed: o.Seed, Progress: o.Progress, Context: o.Context}
	return runner.Run(ropts, o.Replicas, func(_ int, seed int64) *Metrics {
		replica := sc
		replica.Config = sc.effectiveConfig()
		replica.Config.Seed = seed
		replica.Context = o.Context
		res, err := replica.Run()
		if err != nil {
			return &Metrics{Name: sc.Name, Err: err.Error()}
		}
		return res.Metrics
	})
}
