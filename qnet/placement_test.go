package qnet

import (
	"bytes"
	"encoding/json"
	"os"
	"testing"

	"qnp/internal/runner"
	"qnp/internal/sim"
)

// TestAllocPolicyResolution pins the deprecated-bool migration: the old
// StaticAllocation flag means AllocStatic only while Alloc is left at its
// default, and an explicit Alloc always wins.
func TestAllocPolicyResolution(t *testing.T) {
	cases := []struct {
		cfg  Config
		want AllocationPolicy
	}{
		{Config{}, AllocCountSplit},
		//qnetlint:allow nodeprecated the StaticAllocation shim's designated coverage: precedence vs the Alloc enum
		{Config{StaticAllocation: true}, AllocStatic},
		{Config{Alloc: AllocModelWeighted}, AllocModelWeighted},
		//qnetlint:allow nodeprecated the StaticAllocation shim's designated coverage: an explicit Alloc wins over the bool
		{Config{Alloc: AllocModelWeighted, StaticAllocation: true}, AllocModelWeighted},
		{Config{Alloc: AllocStatic}, AllocStatic},
	}
	for _, c := range cases {
		if got := c.cfg.allocPolicy(); got != c.want {
			//qnetlint:allow nodeprecated diagnostic output of the designated StaticAllocation coverage
			t.Errorf("allocPolicy(Alloc=%v, StaticAllocation=%v) = %v, want %v", c.cfg.Alloc, c.cfg.StaticAllocation, got, c.want)
		}
	}
	// The resolved policy reaches the controller.
	cfg := DefaultConfig()
	//qnetlint:allow nodeprecated the StaticAllocation shim's designated coverage: the bool must reach the controller policy
	cfg.StaticAllocation = true
	if net := New(cfg); net.Controller.Policy != AllocStatic {
		t.Errorf("controller policy = %v, want AllocStatic", net.Controller.Policy)
	}
}

// TestSpecRoundTripsPlacementFields: Candidates and the allocation policy
// survive the scenario wire format, and a legacy JSON spec carrying only
// the old StaticAllocation bool still decodes to a static-allocation run.
func TestSpecRoundTripsPlacementFields(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EnforceEER = true
	cfg.Alloc = AllocModelWeighted
	sc := Scenario{
		Name:     "placement",
		Config:   cfg,
		Topology: GridTopo(3, 3),
		Circuits: []CircuitSpec{{
			ID: "c", Src: "n0", Dst: "n8", Fidelity: 0.8,
			Candidates: 3, Workload: ContinuousKeep{}, Optional: true,
		}},
		Horizon: sim.Second,
	}
	spec, err := sc.Spec()
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	var back ScenarioSpec
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	sc2, err := back.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	if sc2.Config.Alloc != AllocModelWeighted {
		t.Errorf("Alloc did not round-trip: %v", sc2.Config.Alloc)
	}
	if len(sc2.Circuits) != 1 || sc2.Circuits[0].Candidates != 3 {
		t.Errorf("Candidates did not round-trip: %+v", sc2.Circuits)
	}

	// A spec written before the enum existed: the bool alone must still
	// mean static allocation. The legacy field arrives through the wire
	// format — JSON is where old specs live — so the test needs no
	// source-level use of the deprecated Go field.
	var legacy ScenarioSpec
	if err := json.Unmarshal(raw, &legacy); err != nil {
		t.Fatal(err)
	}
	legacy.Config.Alloc = AllocCountSplit
	if err := json.Unmarshal([]byte(`{"StaticAllocation": true}`), &legacy.Config); err != nil {
		t.Fatal(err)
	}
	lsc, err := legacy.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	if lsc.Config.allocPolicy() != AllocStatic {
		t.Errorf("legacy StaticAllocation bool lost its meaning: %v", lsc.Config.allocPolicy())
	}
}

// churnyScenario is a small arrival/departure mix on the dumbbell
// bottleneck — enough membership changes to trigger re-fits when (and only
// when) the network enforces admission.
func churnyScenario(enforce bool) Scenario {
	cfg := DefaultConfig()
	cfg.EnforceEER = enforce
	return Scenario{
		Config:   cfg,
		Topology: DumbbellTopo(),
		Circuits: []CircuitSpec{
			{ID: "a", Src: "A0", Dst: "B0", Fidelity: 0.85, Policy: CutoffShort,
				HoldFor: 3 * sim.Second, Workload: MeasureStream{Rate: 10}},
			{ID: "b", Src: "A1", Dst: "B1", Fidelity: 0.85, Policy: CutoffShort,
				ArriveAt: sim.Second, HoldFor: 3 * sim.Second, Workload: MeasureStream{Rate: 10}},
			{ID: "c", Src: "A0", Dst: "B1", Fidelity: 0.85, Policy: CutoffShort,
				ArriveAt: 2 * sim.Second, Workload: MeasureStream{Rate: 10}},
		},
		Horizon: 6 * sim.Second,
	}
}

// TestNonEnforcingChurnEmitsNoUpdateTraffic is the regression test for the
// EnforceEER refit gating fix: a network that does not enforce admission
// must never emit UpdateMsg traffic on churn — observable as zero
// allocation re-fits applied at any node. The enforcing twin proves the
// counter actually sees refit traffic.
func TestNonEnforcingChurnEmitsNoUpdateTraffic(t *testing.T) {
	sumUpdates := func(m *Metrics) uint64 {
		var total uint64
		for _, st := range m.NodeStats {
			total += st.EERUpdates
		}
		return total
	}
	res, err := churnyScenario(false).Run()
	if err != nil {
		t.Fatal(err)
	}
	if n := sumUpdates(res.Metrics); n != 0 {
		t.Errorf("non-enforcing churn applied %d EER updates, want 0", n)
	}
	res, err = churnyScenario(true).Run()
	if err != nil {
		t.Fatal(err)
	}
	if n := sumUpdates(res.Metrics); n == 0 {
		t.Error("enforcing churn applied no EER updates; counter is not observing refit traffic")
	}
}

// TestPlacementDeterminismAcrossBackends: k-candidate, model-weighted
// placement under churn must stay a pure function of the scenario value
// and seed — bit-identical metrics from the in-process pool, the InProcess
// backend and subprocess sharding at 1 and 3 shards.
func TestPlacementDeterminismAcrossBackends(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EnforceEER = true
	cfg.Alloc = AllocModelWeighted
	sc := Scenario{
		Name:     "placement-determinism",
		Config:   cfg,
		Topology: GridTopo(4, 4),
		Circuits: []CircuitSpec{{
			Select: RandomPairs(6), Fidelity: 0.8, Policy: CutoffShort,
			Candidates: 3, MinEER: 1, Optional: true,
			Holding:  &Dist{Kind: DistExponential, Mean: 2 * sim.Second},
			Workload: ContinuousKeep{},
		}},
		Horizon: 4 * sim.Second,
	}
	const replicas = 4
	opts := func(b runner.Backend) ReplicaOptions {
		return ReplicaOptions{Replicas: replicas, Seed: 11, Backend: b}
	}
	want, err := sc.RunReplicated(opts(nil))
	if err != nil {
		t.Fatal(err)
	}
	admitted := 0
	wantJSON := make([][]byte, replicas)
	for i, m := range want {
		admitted += m.Admitted
		var err error
		wantJSON[i], err = json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
	}
	if admitted == 0 {
		t.Fatal("no circuits admitted; placement never exercised")
	}
	backends := map[string]runner.Backend{
		"in-process": runner.InProcess{},
		"shards-1":   runner.Subprocess{Shards: 1, Command: []string{os.Args[0], runner.WorkerFlag}},
		"shards-3":   runner.Subprocess{Shards: 3, Command: []string{os.Args[0], runner.WorkerFlag}},
		"fleet-2": runner.Fleet{Endpoints: []runner.Endpoint{
			{Name: "a", Command: []string{os.Args[0], runner.WorkerFlag}},
			{Name: "b", Command: []string{os.Args[0], runner.WorkerFlag}},
		}, ChunkSize: 1},
	}
	for name, b := range backends {
		got, err := sc.RunReplicated(opts(b))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i := range want {
			g, err := json.Marshal(got[i])
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(g, wantJSON[i]) {
				t.Errorf("%s: replica %d placement metrics diverged", name, i)
			}
		}
	}
}
