package qnet

import (
	"fmt"
	"math"
	"math/rand"
)

// The generators below complement Chain and Dumbbell: each builds and
// starts a network whose shape experiments can sweep. Node names follow
// the chain's "n<i>" convention so endpoint selection is uniform; Grid
// numbers its nodes row-major. All generators are deterministic functions
// of their arguments (RandomGraph draws from cfg.Seed).

// Ring builds a started cycle n0 — n1 — … — n{k−1} — n0. k must be ≥ 3.
func Ring(cfg Config, k int) *Network {
	if k < 3 {
		panic("qnet: Ring needs at least 3 nodes")
	}
	n := New(cfg)
	for i := 0; i < k; i++ {
		n.AddNode(fmt.Sprintf("n%d", i))
	}
	for i := 0; i < k; i++ {
		n.Connect(fmt.Sprintf("n%d", i), fmt.Sprintf("n%d", (i+1)%k))
	}
	n.Start()
	return n
}

// Star builds a started hub-and-spoke network of k nodes: n0 is the hub,
// n1 … n{k−1} are leaves. k must be ≥ 2. Any leaf-to-leaf circuit is two
// hops through the hub, which concentrates swap load on one node.
func Star(cfg Config, k int) *Network {
	if k < 2 {
		panic("qnet: Star needs at least 2 nodes")
	}
	n := New(cfg)
	for i := 0; i < k; i++ {
		n.AddNode(fmt.Sprintf("n%d", i))
	}
	for i := 1; i < k; i++ {
		n.Connect("n0", fmt.Sprintf("n%d", i))
	}
	n.Start()
	return n
}

// Grid builds a started rows×cols lattice with nearest-neighbour links.
// Nodes are numbered row-major: node (r,c) is n{r*cols+c}, so n0 and
// n{rows*cols−1} are opposite corners.
func Grid(cfg Config, rows, cols int) *Network {
	if rows < 1 || cols < 1 {
		panic("qnet: Grid needs positive dimensions")
	}
	n := New(cfg)
	id := func(r, c int) string { return fmt.Sprintf("n%d", r*cols+c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			n.AddNode(id(r, c))
		}
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				n.Connect(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				n.Connect(id(r, c), id(r+1, c))
			}
		}
	}
	n.Start()
	return n
}

// RandomGraph builds a started k-node Waxman random graph: nodes are
// placed uniformly in the unit square and each pair (i, j) is linked with
// probability alpha·exp(−d(i,j)/(beta·L)), where L is the largest
// pairwise distance. Non-positive alpha or beta fall back to the
// customary 0.4. The graph is stitched to a single connected component by
// bridging each stray component to the main one at the closest node pair,
// so every circuit request has a path. The layout and edges are a
// deterministic function of cfg.Seed.
func RandomGraph(cfg Config, k int, alpha, beta float64) *Network {
	if k < 1 {
		panic("qnet: RandomGraph needs at least 1 node")
	}
	if alpha <= 0 {
		alpha = 0.4
	}
	if beta <= 0 {
		beta = 0.4
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	xs := make([]float64, k)
	ys := make([]float64, k)
	for i := 0; i < k; i++ {
		xs[i], ys[i] = rng.Float64(), rng.Float64()
	}
	dist := func(i, j int) float64 {
		return math.Hypot(xs[i]-xs[j], ys[i]-ys[j])
	}
	maxD := 0.0
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			if d := dist(i, j); d > maxD {
				maxD = d
			}
		}
	}
	if maxD == 0 {
		maxD = 1 // coincident points: probability reduces to alpha
	}

	n := New(cfg)
	for i := 0; i < k; i++ {
		n.AddNode(fmt.Sprintf("n%d", i))
	}
	// Union-find over node indices to track components while sampling.
	parent := make([]int, k)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(i int) int {
		for parent[i] != i {
			parent[i] = parent[parent[i]]
			i = parent[i]
		}
		return i
	}
	connect := func(i, j int) {
		n.Connect(fmt.Sprintf("n%d", i), fmt.Sprintf("n%d", j))
		parent[find(i)] = find(j)
	}
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			if rng.Float64() < alpha*math.Exp(-dist(i, j)/(beta*maxD)) {
				connect(i, j)
			}
		}
	}
	// Bridge any remaining components into the one containing n0, always
	// picking the geometrically closest cross pair (deterministic).
	for {
		root := find(0)
		bi, bj, bd := -1, -1, math.Inf(1)
		for i := 0; i < k; i++ {
			if find(i) != root {
				continue
			}
			for j := 0; j < k; j++ {
				if find(j) == root {
					continue
				}
				if d := dist(i, j); d < bd {
					bi, bj, bd = i, j, d
				}
			}
		}
		if bi < 0 {
			break
		}
		connect(bi, bj)
	}
	n.Start()
	return n
}

// NodeIDs returns every node name in sorted order.
func (n *Network) NodeIDs() []string { return n.Graph.Nodes() }

// LinkCount returns the number of (bidirectional) links.
func (n *Network) LinkCount() int { return n.Graph.LinkCount() }

// Diameter returns a farthest node pair by hop count, with the hop count,
// scanning sources and destinations in sorted name order so the choice is
// deterministic. It is the natural "hardest" circuit to ask of a topology.
// Links have unit cost, so one BFS per source suffices (O(V·(V+E))).
func (n *Network) Diameter() (src, dst string, hops int) {
	ids := n.NodeIDs()
	for _, a := range ids {
		dist := map[string]int{a: 0}
		queue := []string{a}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, nb := range n.Graph.Neighbors(cur) {
				if _, seen := dist[nb]; !seen {
					dist[nb] = dist[cur] + 1
					queue = append(queue, nb)
				}
			}
		}
		for _, b := range ids {
			if b <= a {
				continue
			}
			if d, ok := dist[b]; ok && d > hops {
				src, dst, hops = a, b, d
			}
		}
	}
	return src, dst, hops
}
