package qnet

import (
	"testing"

	"qnp/internal/linklayer"
	"qnp/internal/quantum"
	"qnp/internal/sim"
)

func TestChainQuickstart(t *testing.T) {
	net := Chain(DefaultConfig(), 3)
	vc, err := net.Establish("vc1", "n0", "n2", 0.8, nil)
	if err != nil {
		t.Fatal(err)
	}
	var got []Delivered
	done := false
	vc.HandleHead(Handlers{
		OnPair:      func(d Delivered) { got = append(got, d) },
		OnComplete:  func(RequestID) { done = true },
		AutoConsume: true,
	})
	vc.HandleTail(Handlers{AutoConsume: true})
	if err := vc.Submit(Request{ID: "r1", Type: Keep, NumPairs: 5}); err != nil {
		t.Fatal(err)
	}
	net.Run(30 * sim.Second)
	if len(got) != 5 || !done {
		t.Fatalf("delivered %d pairs, done=%v", len(got), done)
	}
	for _, d := range got {
		if !d.State.Valid() {
			t.Error("invalid declared state")
		}
	}
}

func TestDumbbellTopology(t *testing.T) {
	net := Dumbbell(DefaultConfig())
	vc, err := net.Establish("c1", "A0", "B0", 0.8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(vc.Plan.Path) != 4 {
		t.Fatalf("A0→B0 path = %v", vc.Plan.Path)
	}
	// Second circuit shares the bottleneck link.
	vc2, err := net.Establish("c2", "A1", "B1", 0.8, nil)
	if err != nil {
		t.Fatal(err)
	}
	count1, count2 := 0, 0
	vc.HandleHead(Handlers{OnPair: func(Delivered) { count1++ }, AutoConsume: true})
	vc.HandleTail(Handlers{AutoConsume: true})
	vc2.HandleHead(Handlers{OnPair: func(Delivered) { count2++ }, AutoConsume: true})
	vc2.HandleTail(Handlers{AutoConsume: true})
	if err := vc.Submit(Request{ID: "r1", Type: Keep, NumPairs: 3}); err != nil {
		t.Fatal(err)
	}
	if err := vc2.Submit(Request{ID: "r1", Type: Keep, NumPairs: 3}); err != nil {
		t.Fatal(err)
	}
	net.Run(60 * sim.Second)
	if count1 != 3 || count2 != 3 {
		t.Fatalf("deliveries c1=%d c2=%d, want 3/3", count1, count2)
	}
}

func TestDefaultAutoConsumeWithoutHandlers(t *testing.T) {
	// A circuit with no handlers must not wedge on end-node memory.
	net := Chain(DefaultConfig(), 2)
	vc, err := net.Establish("c", "n0", "n1", 0.9, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := vc.Submit(Request{ID: "r", Type: Keep, NumPairs: 10}); err != nil {
		t.Fatal(err)
	}
	net.Run(10 * sim.Second)
	free := net.Device("n0").FreeCommCount(linklayer.LinkName("n0", "n1"))
	if free != 2 {
		t.Errorf("head free qubits = %d after unhandled deliveries", free)
	}
}

func TestCircuitOptionsPolicies(t *testing.T) {
	net := Dumbbell(DefaultConfig())
	long, err := net.Establish("l", "A0", "B0", 0.85, &CircuitOptions{Policy: CutoffLong})
	if err != nil {
		t.Fatal(err)
	}
	short, err := net.Establish("s", "A1", "B1", 0.85, &CircuitOptions{Policy: CutoffShort})
	if err != nil {
		t.Fatal(err)
	}
	if short.Plan.Cutoff >= long.Plan.Cutoff {
		t.Errorf("short cutoff %v not shorter than long %v", short.Plan.Cutoff, long.Plan.Cutoff)
	}
	none, err := net.Establish("n", "A0", "B1", 0.85, &CircuitOptions{Policy: CutoffNone})
	if err != nil {
		t.Fatal(err)
	}
	if none.Plan.Cutoff != 0 {
		t.Error("CutoffNone produced a cutoff")
	}
	manual, err := net.Establish("m", "A1", "B0", 0.85, &CircuitOptions{Policy: CutoffManual, ManualCutoff: 42 * sim.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if manual.Plan.Cutoff != 42*sim.Millisecond {
		t.Errorf("manual cutoff = %v", manual.Plan.Cutoff)
	}
}

func TestDuplicateCircuitRejected(t *testing.T) {
	net := Chain(DefaultConfig(), 2)
	if _, err := net.Establish("c", "n0", "n1", 0.8, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Establish("c", "n0", "n1", 0.8, nil); err == nil {
		t.Error("duplicate circuit accepted")
	}
	if _, err := net.Establish("c2", "n0", "zz", 0.8, nil); err == nil {
		t.Error("unknown destination accepted")
	}
	if _, err := net.Establish("c3", "n0", "n1", 0.9999, nil); err == nil {
		t.Error("impossible fidelity accepted")
	}
}

func TestTeardownAndReestablish(t *testing.T) {
	net := Chain(DefaultConfig(), 3)
	vc, err := net.Establish("c", "n0", "n2", 0.8, nil)
	if err != nil {
		t.Fatal(err)
	}
	vc.Teardown()
	net.Run(sim.Millisecond)
	vc2, err := net.Establish("c", "n0", "n2", 0.8, nil)
	if err != nil {
		t.Fatalf("re-establish failed: %v", err)
	}
	count := 0
	vc2.HandleHead(Handlers{OnPair: func(Delivered) { count++ }, AutoConsume: true})
	vc2.HandleTail(Handlers{AutoConsume: true})
	if err := vc2.Submit(Request{ID: "r", Type: Keep, NumPairs: 2}); err != nil {
		t.Fatal(err)
	}
	net.Run(20 * sim.Second)
	if count != 2 {
		t.Errorf("deliveries after re-establish = %d", count)
	}
}

func TestMeasureRequestThroughFacade(t *testing.T) {
	net := Chain(DefaultConfig(), 3)
	vc, err := net.Establish("c", "n0", "n2", 0.8, nil)
	if err != nil {
		t.Fatal(err)
	}
	var headBits, tailBits []Delivered
	vc.HandleHead(Handlers{OnPair: func(d Delivered) { headBits = append(headBits, d) }})
	vc.HandleTail(Handlers{OnPair: func(d Delivered) { tailBits = append(tailBits, d) }})
	if err := vc.Submit(Request{ID: "r", Type: Measure, MeasureBasis: quantum.ZBasis, NumPairs: 10}); err != nil {
		t.Fatal(err)
	}
	net.Run(60 * sim.Second)
	if len(headBits) != 10 || len(tailBits) != 10 {
		t.Fatalf("measure deliveries %d/%d", len(headBits), len(tailBits))
	}
	agree := 0
	for i := range headBits {
		wantEqual := headBits[i].State.XBit() == 0
		if (headBits[i].Bit == tailBits[i].Bit) == wantEqual {
			agree++
		}
	}
	if agree < 8 {
		t.Errorf("correct correlations %d/10", agree)
	}
}

func TestNearTermConfigBuilds(t *testing.T) {
	cfg := NearTermConfig(25000)
	cfg.Seed = 3
	net := Chain(cfg, 3)
	// The near-term platform cannot reach high fidelities; 0.5 must plan.
	vc, err := net.Establish("c", "n0", "n2", 0.5, &CircuitOptions{Policy: CutoffManual, ManualCutoff: 2 * sim.Second})
	if err != nil {
		t.Fatal(err)
	}
	if vc.Plan.LinkFidelity <= 0.5 {
		t.Errorf("near-term link fidelity = %v", vc.Plan.LinkFidelity)
	}
}
