// Package qnet is the public API of the quantum network protocol library: a
// builder for simulated quantum networks running the full stack from the
// paper — NV-centre hardware model, link layer entanglement generation,
// the Quantum Network Protocol (QNP) data plane, routing controller and
// signalling protocol — plus a declarative scenario/workload API for
// driving and measuring multi-circuit traffic.
//
// A minimal session declares a Scenario — a topology, circuits, and the
// workloads that drive them — and reads the unified Metrics back:
//
//	res, err := qnet.Scenario{
//		Topology: qnet.ChainTopo(3), // Alice — repeater — Bob
//		Circuits: []qnet.CircuitSpec{{
//			ID: "vc1", Src: "n0", Dst: "n2", Fidelity: 0.8,
//			Workload:       qnet.KeepBatch{Count: 1, Pairs: 10},
//			RecordFidelity: true,
//		}},
//		Horizon: 10 * sim.Second,
//		WaitFor: []qnet.CircuitID{"vc1"},
//	}.Run()
//	cm := res.Metrics.Circuit("vc1")
//	// cm.Delivered, cm.Fidelities, cm.Requests[0].CompletedAt, ...
//
// Scenarios compose: several CircuitSpecs contend for the same links,
// endpoint selectors (DiameterPair, RandomPairs) derive circuits from the
// topology's shape, and pluggable workloads (ContinuousKeep, IntervalKeep,
// PoissonKeep, OnOffKeep, MeasureStream, ...) model traffic patterns.
// Circuits need not live for the whole run: CircuitSpec.ArriveAt/HoldFor
// (or the stochastic Arrival/Holding distributions) schedule arrivals and
// departures on the simulation clock — scheduled circuits establish
// asynchronously through the signalling plane, departures tear down via
// the idempotent Circuit.Teardown, and per-circuit lifetime stamps plus
// Metrics.TimeWeightedEER measure the dynamics. Under Config.EnforceEER
// the routing controller re-fits rate allocations to link membership as
// circuits join and leave (each link's budget splits across its circuits,
// propagated hop by hop so head-end pacing tracks membership); an arrival
// whose MinEER demand no longer fits is rejected at admission.
// Scenario.RunReplicated fans independent replicas across a worker pool
// with disjoint per-replica seeds and order-stable results; with a
// runner.Backend in ReplicaOptions (runner.Subprocess) the same replicas
// shard across worker processes instead, bit-identically. Declarative
// scenarios serialize through ScenarioSpec — JSON complete enough for a
// worker process to reconstruct and run them from bytes — with custom
// workload/selector types made portable via RegisterWorkload and
// RegisterSelector.
//
// # Topologies
//
// Besides chains and the paper's dumbbell, generators build rings, stars,
// grids and seeded Waxman random graphs, all with uniform hardware unless
// Config.LinkLengthM overrides individual fibre lengths. Diameter picks
// the farthest endpoint pair, so a scenario can always ask for the
// topology's hardest circuit via the DiameterPair selector.
//
// # Physics engines
//
// Config.Physics selects how entangled-pair states are represented.
// PhysicsExact (the zero value) evolves 4×4 density matrices through the
// exact channel models in internal/quantum. PhysicsWerner tracks a single
// Werner parameter per pair with closed-form updates (internal/werner) —
// constant work per operation instead of matrix algebra, which is what
// makes city-scale scenarios fast. The closed forms are exact for
// Werner-form states (pinned to ≤1e-12 by property tests) and a bounded
// approximation otherwise; both engines consume identical RNG streams in
// identical order, so the event timeline, throughput, latency and
// admission behaviour do not change with the engine — only the oracle
// fidelity readouts, within the envelope the cross-engine CI suite gates.
//
// # Imperative core
//
// The scenario layer is sugar over the imperative builder, which remains
// available for applications that need full control:
//
//	net := qnet.Chain(qnet.DefaultConfig(), 3)
//	vc, err := net.Establish("vc1", "n0", "n2", 0.8, nil)
//	vc.HandleHead(qnet.Handlers{OnPair: func(d qnet.Delivered) { ... }})
//	vc.Submit(qnet.Request{ID: "r1", Type: qnet.Keep, NumPairs: 10})
//	net.Run(10 * sim.Second)
//
// The experiment suite in internal/experiments (cmd/figures) reproduces
// every figure of the paper's evaluation on the scenario API, fanning the
// replica grid through internal/runner so figure output is bit-identical
// for any worker count.
package qnet

import (
	"errors"
	"fmt"
	"sort"

	"qnp/internal/core"
	"qnp/internal/device"
	"qnp/internal/hardware"
	"qnp/internal/linklayer"
	"qnp/internal/netsim"
	"qnp/internal/routing"
	"qnp/internal/signaling"
	"qnp/internal/sim"
)

// Re-exported protocol types, so applications only import qnet (plus the
// sim and quantum leaf packages for time and measurement bases).
type (
	// Request is a QNP request (see core.Request).
	Request = core.Request
	// RequestID names a request.
	RequestID = core.RequestID
	// CircuitID names a virtual circuit.
	CircuitID = core.CircuitID
	// Delivered is an end-node delivery.
	Delivered = core.Delivered
	// RequestType selects KEEP / EARLY / MEASURE consumption.
	RequestType = core.RequestType
	// TestEstimate is a fidelity test-round report.
	TestEstimate = core.TestEstimate
	// CutoffPolicy selects the routing controller's cutoff rule.
	CutoffPolicy = routing.CutoffPolicy
	// AllocationPolicy selects how link budget divides among the circuits
	// sharing a link (see Config.Alloc).
	AllocationPolicy = routing.AllocationPolicy
	// Plan is the routing controller's circuit plan.
	Plan = routing.Plan
	// PlacementRequest asks the routing controller to place one circuit
	// (Controller.Place).
	PlacementRequest = routing.PlacementRequest
	// PlacementDecision is the controller's placement answer: chosen plan,
	// candidate index, modeled EER and allocation.
	PlacementDecision = routing.PlacementDecision
	// NodeStats are a QNP node's data-plane counters.
	NodeStats = core.NodeStats
	// Correlator identifies a link-pair / entanglement chain (§3.2).
	Correlator = linklayer.Correlator
	// Label identifies a circuit's reservation on one link (the paper's
	// link-label); the signalling protocol uses the circuit ID itself.
	Label = linklayer.Label
	// Physics selects the pair-state engine (see Config.Physics).
	Physics = device.Physics
)

// Request consumption modes.
const (
	Keep    = core.Keep
	Early   = core.Early
	Measure = core.Measure
)

// Cutoff policies.
const (
	CutoffNone   = routing.CutoffNone
	CutoffLong   = routing.CutoffLong
	CutoffShort  = routing.CutoffShort
	CutoffManual = routing.CutoffManual
)

// Allocation policies (see Config.Alloc).
const (
	// AllocCountSplit — the default — splits a link's budget equally among
	// the circuits on the path's most contended link.
	AllocCountSplit = routing.AllocCountSplit
	// AllocModelWeighted divides link budget in proportion to each
	// circuit's modeled end-to-end deliverable rate (worst-case swap
	// survival, cutoff discards, fidelity budget).
	AllocModelWeighted = routing.AllocModelWeighted
	// AllocStatic pins the original MaxLPR/2-per-circuit heuristic.
	AllocStatic = routing.AllocStatic
)

// Physics engines (see Config.Physics).
const (
	// PhysicsExact tracks every pair as an exact 4×4 density matrix.
	PhysicsExact = device.PhysicsExact
	// PhysicsWerner tracks a single Werner parameter per pair — the scalar
	// fast path, validated against the exact engine in CI.
	PhysicsWerner = device.PhysicsWerner
)

// Config selects the hardware model and topology parameters. All links and
// nodes are identical, as in the paper's evaluation.
type Config struct {
	Seed   int64
	Params hardware.Params
	Link   hardware.LinkConfig
	// QubitsPerLinkEnd is the number of communication qubits each node
	// dedicates to each of its links (the paper's main evaluation uses 2).
	// Ignored when SharedCommQubits > 0.
	QubitsPerLinkEnd int
	// SharedCommQubits gives each node this many link-agnostic
	// communication qubits instead (the near-term platform has exactly 1).
	SharedCommQubits int
	// StorageQubits adds carbon storage qubits per node (near-term).
	StorageQubits int
	// LinkLengthM overrides the fibre length (in metres) of individual
	// links, keyed by LinkKey(a, b). Links without an entry use Link.LengthM
	// as before, so the paper's uniform evaluations are the zero value.
	LinkLengthM map[string]float64
	// EnforceEER turns on the routing controller's admission control: plans
	// carry a MaxEER allocation and the head-end polices/shapes requests
	// against it. The paper's evaluation leaves it off ("we do not perform
	// any resource management").
	EnforceEER bool
	// Alloc selects the admission allocation policy: AllocCountSplit (the
	// default) splits each link's budget equally among the circuits on the
	// path's most contended link, AllocModelWeighted divides it in
	// proportion to each circuit's modeled end-to-end deliverable rate, and
	// AllocStatic pins the original MaxLPR/2 heuristic. Re-fits on churn
	// propagate over the signalling plane as before. Only meaningful with
	// EnforceEER.
	Alloc AllocationPolicy
	// StaticAllocation pins the admission allocation at the original
	// MaxLPR/2-per-circuit heuristic.
	//
	// Deprecated: set Alloc to AllocStatic instead. The bool is honoured
	// (as AllocStatic) only while Alloc is left at its default, so old
	// configs and serialized scenarios keep their meaning.
	StaticAllocation bool
	// MetricsMode selects how scenario metrics are recorded. The zero
	// value, MetricsFull, keeps every per-delivery and per-request record
	// as before; MetricsStreaming replaces the records with mergeable
	// constant-memory aggregates so a run's metrics memory is independent
	// of its delivery count (the city-scale setting). Recording never
	// feeds back into the simulation: both modes fire the identical event
	// sequence and produce identical counters.
	MetricsMode MetricsMode
	// Physics selects the pair-state engine. The zero value, PhysicsExact,
	// tracks every entangled pair as a 4×4 density matrix through the exact
	// channel models; PhysicsWerner tracks a single Werner parameter per
	// pair with closed-form updates (internal/werner) — far faster on
	// swap-heavy scenarios, exact for Werner-form states and a bounded
	// approximation otherwise. Both engines consume identical RNG streams,
	// so switching engines never changes the event timeline, only the
	// fidelity values the oracle reports.
	Physics Physics
}

// LinkKey canonically names the a-b link for Config.LinkLengthM overrides.
func LinkKey(a, b string) string { return linklayer.LinkName(a, b) }

// DefaultConfig is the paper's main evaluation setup: idealised NV
// parameters, 2 m lab fibre, two communication qubits per link end.
func DefaultConfig() Config {
	return Config{
		Seed:             1,
		Params:           hardware.Simulation(),
		Link:             hardware.LabLink(),
		QubitsPerLinkEnd: 2,
	}
}

// NearTermConfig is the §5.3 setup: near-term NV parameters, 25 km telecom
// fibre, a single shared communication qubit and carbon storage.
func NearTermConfig(lengthM float64) Config {
	return Config{
		Seed:             1,
		Params:           hardware.NearTerm(),
		Link:             hardware.TelecomLink(lengthM),
		SharedCommQubits: 1,
		StorageQubits:    4,
	}
}

// Network is a fully wired simulated quantum network.
type Network struct {
	Config     Config
	Sim        *sim.Simulation
	Classical  *netsim.Network
	Fabric     *linklayer.Fabric
	Graph      *routing.Graph
	Controller *routing.Controller

	devices  map[string]*device.Device
	nodes    map[string]*core.Node
	signaler *signaling.Signaler
	started  bool

	circuits map[CircuitID]*Circuit
	// handlers dispatch per (node, circuit); installed lazily per node.
	handlers map[string]map[CircuitID]Handlers
}

// New creates an empty network; add nodes and links, then Start.
func New(cfg Config) *Network {
	if cfg.QubitsPerLinkEnd == 0 && cfg.SharedCommQubits == 0 {
		cfg.QubitsPerLinkEnd = 2
	}
	s := sim.New(cfg.Seed)
	n := &Network{
		Config:    cfg,
		Sim:       s,
		Classical: netsim.New(s),
		Fabric:    linklayer.NewFabric(),
		Graph:     routing.NewGraph(),
		devices:   make(map[string]*device.Device),
		nodes:     make(map[string]*core.Node),
		circuits:  make(map[CircuitID]*Circuit),
		handlers:  make(map[string]map[CircuitID]Handlers),
	}
	n.Controller = routing.NewController(n.Graph, cfg.Params)
	n.Controller.EnforceEER = cfg.EnforceEER
	n.Controller.Policy = cfg.allocPolicy()
	return n
}

// allocPolicy resolves Config.Alloc against the deprecated
// StaticAllocation bool: the bool only matters while Alloc is left at its
// default, so old configs (and serialized scenario specs) keep meaning
// AllocStatic without being able to override an explicit policy.
func (cfg Config) allocPolicy() AllocationPolicy {
	if cfg.Alloc == AllocCountSplit && cfg.StaticAllocation {
		return AllocStatic
	}
	return cfg.Alloc
}

// AddNode registers a node.
func (n *Network) AddNode(id string) {
	if n.started {
		panic("qnet: AddNode after Start")
	}
	n.Classical.AddNode(netsim.NodeID(id))
	n.Graph.AddNode(id)
	dev := device.NewWithPhysics(n.Sim, id, n.Config.Params, n.Config.Physics)
	if n.Config.SharedCommQubits > 0 {
		dev.AddCommQubits("", n.Config.SharedCommQubits)
	}
	if n.Config.StorageQubits > 0 {
		dev.AddStorageQubits(n.Config.StorageQubits)
	}
	n.devices[id] = dev
}

// Connect joins two nodes with the configured link (quantum + classical),
// honouring any Config.LinkLengthM override for this link.
func (n *Network) Connect(a, b string) {
	if n.started {
		panic("qnet: Connect after Start")
	}
	name := linklayer.LinkName(a, b)
	link := n.Config.Link
	if m, ok := n.Config.LinkLengthM[name]; ok {
		link.LengthM = m
	}
	if n.Config.QubitsPerLinkEnd > 0 && n.Config.SharedCommQubits == 0 {
		n.devices[a].AddCommQubits(name, n.Config.QubitsPerLinkEnd)
		n.devices[b].AddCommQubits(name, n.Config.QubitsPerLinkEnd)
	}
	n.Classical.Connect(netsim.NodeID(a), netsim.NodeID(b), link.PropagationDelay())
	n.Fabric.Add(linklayer.NewEngine(n.Sim, name, link, n.devices[a], n.devices[b]))
	n.Graph.AddLink(a, b, link)
}

// Start freezes the topology and wires the protocol stack. Nodes are wired
// in sorted-ID order: iterating the devices map here would make core-node
// creation and classical-handler registration order vary between process
// runs, which is exactly the kind of hidden nondeterminism the simulator
// exists to exclude (see TestStartOrderDeterminism).
func (n *Network) Start() {
	if n.started {
		return
	}
	n.started = true
	ids := make([]string, 0, len(n.devices))
	for id := range n.devices {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	cores := make([]*core.Node, 0, len(ids))
	for _, id := range ids {
		node := core.NewNode(n.Sim, n.Classical, n.devices[id], n.Fabric)
		n.nodes[id] = node
		cores = append(cores, node)
	}
	n.signaler = signaling.New(n.Classical, cores)
	for _, id := range ids {
		n.installDispatcher(id)
	}
}

// Node returns a node's QNP engine.
func (n *Network) Node(id string) *core.Node {
	node, ok := n.nodes[id]
	if !ok {
		panic(fmt.Sprintf("qnet: unknown node %q (did you Start()?)", id))
	}
	return node
}

// Device returns a node's quantum device.
func (n *Network) Device(id string) *device.Device { return n.devices[id] }

// Run advances the simulation by d.
func (n *Network) Run(d sim.Duration) { n.Sim.RunFor(d) }

// Chain builds a started linear network n0 — n1 — … — n{k−1}.
func Chain(cfg Config, k int) *Network {
	n := New(cfg)
	for i := 0; i < k; i++ {
		n.AddNode(fmt.Sprintf("n%d", i))
	}
	for i := 0; i+1 < k; i++ {
		n.Connect(fmt.Sprintf("n%d", i), fmt.Sprintf("n%d", i+1))
	}
	n.Start()
	return n
}

// Dumbbell builds the paper's Fig. 7 evaluation topology: end-nodes A0, A1,
// B0, B1 around the MA—MB bottleneck link.
func Dumbbell(cfg Config) *Network {
	n := New(cfg)
	for _, id := range []string{"A0", "A1", "MA", "MB", "B0", "B1"} {
		n.AddNode(id)
	}
	n.Connect("A0", "MA")
	n.Connect("A1", "MA")
	n.Connect("MA", "MB")
	n.Connect("MB", "B0")
	n.Connect("MB", "B1")
	n.Start()
	return n
}

// CircuitOptions tune circuit establishment.
type CircuitOptions struct {
	// Policy selects the cutoff rule; the default is CutoffLong.
	Policy CutoffPolicy
	// ManualCutoff is used with CutoffManual.
	ManualCutoff sim.Duration
	// MaxEER overrides the circuit's end-to-end rate allocation for
	// policing/shaping (0 = no admission control, as in the paper). An
	// overridden circuit is excluded from allocation re-fitting.
	MaxEER float64
	// MinEER is the circuit's rate demand at admission: under EnforceEER,
	// establishment fails with ErrAdmissionRejected when the controller's
	// (re-fitted) allocation falls below it. 0 admits unconditionally.
	MinEER float64
	// Candidates is the number of loopless candidate paths the controller
	// enumerates and scores for placement (k-shortest-path placement).
	// 0 or 1 places on the shortest path only, the legacy behaviour; with
	// more, a MinEER demand the shortest path cannot absorb re-routes to
	// the best alternate that can.
	Candidates int
}

// ErrAdmissionRejected marks an establishment refused by admission control:
// the re-fitted allocation the circuit would receive is below its MinEER
// demand. It is a protocol outcome, not an infrastructure failure; match it
// with errors.Is.
var ErrAdmissionRejected = errors.New("admission rejected: allocation below circuit demand")

// Circuit is an established virtual circuit.
type Circuit struct {
	ID   CircuitID
	Plan Plan
	// Placement is the controller's plan-time placement decision (candidate
	// index, modeled EER). Zero for manually installed plans.
	Placement PlacementDecision
	net       *Network
	torn      bool
}

// Establish plans a circuit with the routing controller, installs it via
// the signalling protocol, and advances the simulation just enough for the
// installation round trip to complete.
func (n *Network) Establish(id CircuitID, src, dst string, fidelity float64, opts *CircuitOptions) (*Circuit, error) {
	dec, fixed, err := n.planFor(src, dst, fidelity, opts)
	if err != nil {
		return nil, err
	}
	var (
		circ    *Circuit
		asyncEr error
		settled bool
	)
	n.establishDecisionAsync(id, dec, fixed, minEEROf(opts), func(c *Circuit, err error) {
		circ, asyncEr, settled = c, err, true
	})
	return n.driveInstall(id, dec.Plan, &circ, &asyncEr, &settled)
}

// minEEROf extracts the admission demand from options (0 = none).
func minEEROf(opts *CircuitOptions) float64 {
	if opts == nil {
		return 0
	}
	return opts.MinEER
}

// EstablishAsync is Establish for callers inside a running simulation (a
// churn scenario's scheduled arrivals): the installation round trip rides
// the normal event flow instead of being stepped synchronously, and done
// fires with the live circuit when its CONFIRM returns. Planning and
// admission errors are reported synchronously through done before
// EstablishAsync returns.
func (n *Network) EstablishAsync(id CircuitID, src, dst string, fidelity float64, opts *CircuitOptions, done func(*Circuit, error)) {
	dec, fixed, err := n.planFor(src, dst, fidelity, opts)
	if err != nil {
		done(nil, err)
		return
	}
	n.establishDecisionAsync(id, dec, fixed, minEEROf(opts), done)
}

// planFor probes the routing controller for a placement and applies the
// option overrides and the MinEER admission check. With Candidates > 1 the
// controller scores k loopless candidate paths and re-routes a demand the
// shortest path cannot absorb. fixed reports a caller-chosen MaxEER, which
// allocation re-fitting must not touch.
func (n *Network) planFor(src, dst string, fidelity float64, opts *CircuitOptions) (PlacementDecision, bool, error) {
	o := CircuitOptions{}
	if opts != nil {
		o = *opts
	}
	fixed := o.MaxEER > 0
	dec, _, err := n.Controller.Place(PlacementRequest{
		Src:          src,
		Dst:          dst,
		Fidelity:     fidelity,
		Cutoff:       o.Policy,
		ManualCutoff: o.ManualCutoff,
		MinEER:       o.MinEER,
		Fixed:        fixed,
		K:            o.Candidates,
		Probe:        true,
	})
	if err != nil {
		return PlacementDecision{}, false, err
	}
	if fixed {
		dec.Plan.MaxEER = o.MaxEER
	}
	// The demand check applies to overridden caps too: a circuit whose own
	// fixed allocation cannot carry its demand is rejected, not admitted
	// into permanent shaping.
	if o.MinEER > 0 && n.Controller.EnforceEER && dec.Plan.MaxEER < o.MinEER {
		return PlacementDecision{}, false, fmt.Errorf("qnet: circuit %s→%s needs %.2f pairs/s, allocation %.2f: %w",
			src, dst, o.MinEER, dec.Plan.MaxEER, ErrAdmissionRejected)
	}
	return dec, fixed, nil
}

// EstablishPlan installs a hand-built plan, bypassing the routing
// controller — the paper does exactly this for the near-term hardware
// evaluation ("as our routing protocol does not work well in this
// environment we manually populate the routing tables"). A manual plan's
// MaxEER is the caller's business: it never joins allocation re-fitting.
func (n *Network) EstablishPlan(id CircuitID, plan Plan) (*Circuit, error) {
	var (
		circ    *Circuit
		asyncEr error
		settled bool
	)
	n.establishPlanAsync(id, plan, true, 0, func(c *Circuit, err error) {
		circ, asyncEr, settled = c, err, true
	})
	return n.driveInstall(id, plan, &circ, &asyncEr, &settled)
}

// driveInstall steps the simulation until an in-flight installation settles
// — the synchronous Establish/EstablishPlan tail.
func (n *Network) driveInstall(id CircuitID, plan Plan, circ **Circuit, asyncEr *error, settled *bool) (*Circuit, error) {
	if *settled {
		return *circ, *asyncEr
	}
	// Drive the installation round trip (twice the path delay plus slack).
	// Stepping is bounded: only events at or before the deadline may fire,
	// so a failed confirm can never silently overshoot virtual time.
	deadline := n.Sim.Now().Add(n.Classical.PathDelay(toNodeIDs(plan.Path)).Scale(4) + sim.Millisecond)
	for !*settled && n.Sim.StepUntil(deadline) {
	}
	if !*settled {
		return nil, fmt.Errorf("qnet: circuit %q installation did not confirm", id)
	}
	return *circ, *asyncEr
}

// establishPlanAsync installs a hand-built plan without stepping the
// simulation (the manual EstablishPlan path: no placement decision exists).
func (n *Network) establishPlanAsync(id CircuitID, plan Plan, fixed bool, minEER float64, done func(*Circuit, error)) {
	n.establishDecisionAsync(id, PlacementDecision{Plan: plan}, fixed, minEER, done)
}

// establishDecisionAsync installs a placement decision's plan without
// stepping the simulation; done fires when the CONFIRM returns to the
// head-end (or synchronously, with an error, if installation cannot
// start). minEER is the circuit's admission demand, re-checked at CONFIRM
// time against the then-current membership.
func (n *Network) establishDecisionAsync(id CircuitID, dec PlacementDecision, fixed bool, minEER float64, done func(*Circuit, error)) {
	if !n.started {
		n.Start()
	}
	if _, dup := n.circuits[id]; dup {
		done(nil, fmt.Errorf("qnet: circuit %q already exists", id))
		return
	}
	plan := dec.Plan
	err := n.signaler.Establish(id, plan, func() {
		c := &Circuit{ID: id, Plan: plan, Placement: dec, net: n}
		n.circuits[id] = c
		// Joining may dilute the allocations of circuits sharing links with
		// this one: re-fit and propagate the members' new caps (§4.4).
		// Caller-fixed allocations join the membership (they occupy link
		// budget) but never receive re-fit updates.
		if n.Controller.EnforceEER && plan.MaxEER > 0 {
			_, refits, _ := n.Controller.Place(PlacementRequest{ID: string(id), Fixed: fixed, Plan: &plan})
			if alloc, ok := n.Controller.Allocation(string(id)); ok && !fixed {
				if minEER > 0 && alloc < minEER {
					// A racing arrival between planning and this CONFIRM
					// diluted the share below the circuit's demand: the
					// plan-time admission check no longer holds, so reject
					// now and roll the installation back. Teardown releases
					// the membership and re-propagates the survivors'
					// allocations, making the dilution (never propagated)
					// moot.
					c.Teardown()
					done(nil, fmt.Errorf("qnet: circuit %q allocation fell to %.2f below demand %.2f at confirm: %w",
						id, alloc, minEER, ErrAdmissionRejected))
					return
				}
				if alloc != plan.MaxEER {
					// True up this circuit's own installed entries to the
					// confirm-time share.
					c.Plan.MaxEER = alloc
					n.signaler.UpdateAllocation(id, plan.Path, alloc)
				}
			}
			for _, r := range refits {
				n.propagateRefit(r)
			}
		}
		done(c, nil)
	})
	if err != nil {
		done(nil, err)
	}
}

// propagateRefit pushes one re-fitted allocation along its circuit's path.
func (n *Network) propagateRefit(r routing.Refit) {
	if path, ok := n.Controller.MemberPath(r.Circuit); ok {
		n.signaler.UpdateAllocation(CircuitID(r.Circuit), path, r.MaxEER)
	}
}

func toNodeIDs(path []string) []netsim.NodeID {
	out := make([]netsim.NodeID, len(path))
	for i, p := range path {
		out[i] = netsim.NodeID(p)
	}
	return out
}

// Head returns the circuit's head-end QNP node.
func (c *Circuit) Head() *core.Node { return c.net.Node(c.Plan.Path[0]) }

// Tail returns the circuit's tail-end QNP node.
func (c *Circuit) Tail() *core.Node { return c.net.Node(c.Plan.Path[len(c.Plan.Path)-1]) }

// Submit sends a request to the circuit's head-end. The request's Circuit
// field is filled in automatically.
func (c *Circuit) Submit(req Request) error {
	req.Circuit = c.ID
	return c.Head().Submit(req)
}

// Cancel terminates an open-ended request.
func (c *Circuit) Cancel(id RequestID) error { return c.Head().Cancel(c.ID, id) }

// Teardown removes the circuit from the network: the head end uninstalls
// immediately, a TEARDOWN floods down the path, the handlers are dropped,
// and — under admission control — the freed link budget is re-fitted to the
// surviving circuits, propagated over the signalling plane so their SetPace
// caps track the new membership (§4.1/§4.4). Teardown is idempotent: a
// second call (or a call racing a scenario-driven departure) is a no-op
// rather than a duplicate TEARDOWN flood, so it can never destroy a
// re-established circuit with the same ID.
func (c *Circuit) Teardown() {
	if c.torn || c.net.circuits[c.ID] != c {
		return
	}
	c.torn = true
	c.net.signaler.Teardown(c.ID, c.Plan)
	delete(c.net.circuits, c.ID)
	delete(c.net.handlers[c.Plan.Path[0]], c.ID)
	delete(c.net.handlers[c.Plan.Path[len(c.Plan.Path)-1]], c.ID)
	for _, r := range c.net.Controller.Release(string(c.ID)) {
		c.net.propagateRefit(r)
	}
}

// Handlers are per-circuit application callbacks at one end-node.
type Handlers struct {
	OnPair         func(Delivered)
	OnEarlyPair    func(Delivered)
	OnExpire       func(RequestID, linklayer.Correlator)
	OnComplete     func(RequestID)
	OnReject       func(Request, string)
	OnTestEstimate func(TestEstimate)
	// AutoConsume frees this end's qubit right after OnPair returns —
	// convenient for applications that only read metadata/fidelity.
	AutoConsume bool
}

// HandleHead installs handlers at the circuit's head-end.
func (c *Circuit) HandleHead(h Handlers) { c.net.setHandlers(c.Plan.Path[0], c.ID, h) }

// HandleTail installs handlers at the circuit's tail-end.
func (c *Circuit) HandleTail(h Handlers) {
	c.net.setHandlers(c.Plan.Path[len(c.Plan.Path)-1], c.ID, h)
}

func (n *Network) setHandlers(node string, id CircuitID, h Handlers) {
	if n.handlers[node] == nil {
		n.handlers[node] = make(map[CircuitID]Handlers)
	}
	n.handlers[node][id] = h
}

// installDispatcher wires a node's core callbacks to the per-circuit
// handler table.
func (n *Network) installDispatcher(id string) {
	node := n.nodes[id]
	dev := n.devices[id]
	consume := func(d Delivered) {
		if d.Pair == nil {
			return
		}
		if s := d.Pair.LocalSide(id); s >= 0 {
			if q := d.Pair.Half(s); q != nil {
				dev.Free(q)
			}
		}
	}
	node.SetCallbacks(core.AppCallbacks{
		OnPair: func(d Delivered) {
			h := n.handlers[id][d.Circuit]
			if h.OnPair != nil {
				h.OnPair(d)
			}
			if h.AutoConsume || h.OnPair == nil {
				consume(d)
			}
		},
		OnEarlyPair: func(d Delivered) {
			if h := n.handlers[id][d.Circuit]; h.OnEarlyPair != nil {
				h.OnEarlyPair(d)
			}
		},
		OnExpire: func(cid CircuitID, rid RequestID, corr linklayer.Correlator) {
			if h := n.handlers[id][cid]; h.OnExpire != nil {
				h.OnExpire(rid, corr)
			}
		},
		OnComplete: func(cid CircuitID, rid RequestID) {
			if h := n.handlers[id][cid]; h.OnComplete != nil {
				h.OnComplete(rid)
			}
		},
		OnReject: func(req Request, reason string) {
			if h := n.handlers[id][req.Circuit]; h.OnReject != nil {
				h.OnReject(req, reason)
			}
		},
		OnTestEstimate: func(te TestEstimate) {
			if h := n.handlers[id][te.Circuit]; h.OnTestEstimate != nil {
				h.OnTestEstimate(te)
			}
		},
	})
}
