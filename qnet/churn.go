package qnet

import (
	"fmt"
	"math/rand"

	"qnp/internal/sim"
)

// Random-stream families. Every scenario-level stream is derived from the
// replica seed as seed*runner.SeedStride + offset; the physics stream is
// the bare seed itself. Engine streams (selection, churn) take the even
// offsets and per-circuit workload streams take the odd offsets 2i+1, so no
// circuit index can ever collide with an engine stream. (The selection
// stream previously sat at the odd offset 104729, which circuit index 52364
// would have shared — a real hazard for million-user churn scenarios; see
// TestStreamFamiliesDisjoint.) Engine offsets are nonzero so that no seed —
// including replica seed 0, where offset 0 would make seed*Stride+0 == seed
// — can alias an engine stream onto the bare-seed physics stream.
const (
	selectionStreamOffset = 2
	churnStreamOffset     = 4
)

// workloadStreamOffset is circuit i's private workload-stream offset.
func workloadStreamOffset(i int) int64 { return 2*int64(i) + 1 }

// DistKind selects a Dist's shape.
type DistKind int

// Distribution kinds.
const (
	// DistFixed always yields Mean.
	DistFixed DistKind = iota
	// DistExponential yields exponential durations with the given Mean —
	// Poisson arrivals when used as an inter-arrival/offset distribution.
	DistExponential
	// DistUniform yields durations uniform on [Min, Max].
	DistUniform
)

// Dist is a serializable duration distribution for churn scheduling
// (CircuitSpec.Arrival / Holding). Draws come from the scenario's dedicated
// churn stream — deterministic per seed, disjoint from the physics,
// selection and workload streams — one draw per configured field per
// expanded circuit, in expansion order, so churn scenarios serialize and
// shard bit-identically.
type Dist struct {
	Kind DistKind
	// Mean parameterises DistFixed (the value) and DistExponential.
	Mean sim.Duration `json:",omitempty"`
	// Min and Max bound DistUniform.
	Min sim.Duration `json:",omitempty"`
	Max sim.Duration `json:",omitempty"`
}

// Fixed is the degenerate distribution always yielding d.
func Fixed(d sim.Duration) *Dist { return &Dist{Kind: DistFixed, Mean: d} }

// Exponential yields exponential durations with the given mean.
func Exponential(mean sim.Duration) *Dist { return &Dist{Kind: DistExponential, Mean: mean} }

// Uniform yields durations uniform on [min, max].
func Uniform(min, max sim.Duration) *Dist { return &Dist{Kind: DistUniform, Min: min, Max: max} }

// draw samples the distribution from the churn stream.
func (d *Dist) draw(rng *rand.Rand) sim.Duration {
	switch d.Kind {
	case DistExponential:
		return sim.DurationFromSeconds(rng.ExpFloat64() * d.Mean.Seconds())
	case DistUniform:
		if d.Max <= d.Min {
			return d.Min
		}
		return d.Min + sim.Duration(rng.Int63n(int64(d.Max-d.Min)))
	default:
		return d.Mean
	}
}

func (d *Dist) String() string {
	switch d.Kind {
	case DistExponential:
		return fmt.Sprintf("Exp(mean %v)", d.Mean)
	case DistUniform:
		return fmt.Sprintf("U[%v, %v]", d.Min, d.Max)
	default:
		return fmt.Sprintf("Fixed(%v)", d.Mean)
	}
}
