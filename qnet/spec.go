package qnet

import (
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"sort"
	"sync"

	"qnp/internal/runner"
	"qnp/internal/sim"
)

// This file is the serializable job layer under Scenario: ScenarioSpec is
// the JSON wire form of a declarative scenario, complete enough that a
// worker process holding only bytes can reconstruct the scenario, run a
// replica, and ship its Metrics back. Workloads and selectors are interface
// values, so they travel by name through registries (the built-ins are
// pre-registered; applications add their own with RegisterWorkload /
// RegisterSelector). The registration is what makes process-sharded
// execution (runner.Subprocess) able to run "any scenario from bytes"
// while staying bit-identical to in-process runs.

// ScenarioJobKind is the runner job kind under which scenario replicas
// execute on a Backend: payload = ScenarioSpec JSON, result = Metrics JSON.
const ScenarioJobKind = "qnet.scenario"

func init() {
	runner.RegisterKind(ScenarioJobKind, runScenarioJob)
}

// runScenarioJob executes one scenario replica from its serialized spec —
// the worker-process half of Scenario.RunReplicated's Backend path. Run
// errors become Metrics.Err, mirroring the in-process replica semantics.
func runScenarioJob(payload []byte, _ int, seed int64) ([]byte, error) {
	var spec ScenarioSpec
	if err := json.Unmarshal(payload, &spec); err != nil {
		return nil, fmt.Errorf("decode ScenarioSpec: %w", err)
	}
	sc, err := spec.Scenario()
	if err != nil {
		return nil, err
	}
	sc.Config = sc.effectiveConfig()
	sc.Config.Seed = seed
	var m *Metrics
	if res, err := sc.Run(); err != nil {
		m = &Metrics{Name: sc.Name, Err: err.Error()}
	} else {
		m = res.Metrics
	}
	return json.Marshal(m)
}

// runReplicatedOn is RunReplicated's Backend path: serialize once, fan the
// replicas out, decode the metrics in strict replica order.
func (sc Scenario) runReplicatedOn(o ReplicaOptions) ([]*Metrics, error) {
	// RunReplicated replaces any per-scenario Context with o.Context on the
	// in-process path; mirror that here (o.Context cancels the dispatch
	// parent-side) so a set Context doesn't spuriously fail Spec.
	sc.Context = nil
	spec, err := sc.Spec()
	if err != nil {
		return nil, fmt.Errorf("qnet: scenario cannot run on a sharded backend: %w", err)
	}
	payload, err := json.Marshal(spec)
	if err != nil {
		return nil, fmt.Errorf("qnet: encode ScenarioSpec: %w", err)
	}
	out := make([]*Metrics, o.Replicas)
	ex, err := o.Backend.Dispatch(runner.ExecRequest{
		Kind:     ScenarioJobKind,
		Payload:  payload,
		Replicas: o.Replicas,
		Options:  runner.Options{Workers: o.Workers, Seed: o.Seed, Progress: o.Progress, Context: o.Context},
		Timeout:  o.Timeout,
	})
	if err != nil {
		return nil, err
	}
	var decodeErr error
	for r := range ex.Results() {
		m := new(Metrics)
		if err := json.Unmarshal(r.Data, m); err != nil {
			if decodeErr == nil {
				decodeErr = fmt.Errorf("qnet: decode replica %d metrics: %w", r.Replica, err)
			}
			continue
		}
		out[r.Replica] = m
	}
	if decodeErr != nil {
		return out, decodeErr
	}
	return out, ex.Wait()
}

// PluginRef names a registered workload or selector on the wire, with its
// JSON-encoded configuration.
type PluginRef struct {
	Name string
	Spec json.RawMessage `json:",omitempty"`
}

// pluginRegistry maps wire names to concrete Go types both ways.
type pluginRegistry struct {
	what     string // "workload" or "selector", for error messages
	register string // the public registration entry point, for error messages
	mu       sync.RWMutex
	byName   map[string]reflect.Type
	byType   map[reflect.Type]string
}

func newPluginRegistry(what, register string) *pluginRegistry {
	return &pluginRegistry{what: what, register: register, byName: map[string]reflect.Type{}, byType: map[reflect.Type]string{}}
}

func (r *pluginRegistry) add(name string, prototype any) {
	if name == "" || prototype == nil {
		panic(fmt.Sprintf("qnet: %s with empty name or nil prototype", r.register))
	}
	t := reflect.TypeOf(prototype)
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[name]; dup {
		panic(fmt.Sprintf("qnet: %s %q registered twice", r.what, name))
	}
	if prev, dup := r.byType[t]; dup {
		panic(fmt.Sprintf("qnet: %s type %v already registered as %q", r.what, t, prev))
	}
	r.byName[name] = t
	r.byType[t] = name
}

// encode turns a live value into its wire reference, failing for
// unregistered types (ad-hoc closures, application one-offs).
func (r *pluginRegistry) encode(v any) (*PluginRef, error) {
	r.mu.RLock()
	name, ok := r.byType[reflect.TypeOf(v)]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%s type %T is not registered (see %s)", r.what, v, r.register)
	}
	raw, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("encode %s %q: %w", r.what, name, err)
	}
	return &PluginRef{Name: name, Spec: raw}, nil
}

// decode rebuilds a live value from its wire reference.
func (r *pluginRegistry) decode(ref *PluginRef) (any, error) {
	r.mu.RLock()
	t, ok := r.byName[ref.Name]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("unknown %s %q (known: %v)", r.what, ref.Name, r.names())
	}
	ptr := reflect.New(t)
	if len(ref.Spec) > 0 {
		if err := json.Unmarshal(ref.Spec, ptr.Interface()); err != nil {
			return nil, fmt.Errorf("decode %s %q: %w", r.what, ref.Name, err)
		}
	}
	return ptr.Elem().Interface(), nil
}

func (r *pluginRegistry) names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.byName))
	for n := range r.byName {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

var (
	workloadRegistry = newPluginRegistry("workload", "RegisterWorkload")
	selectorRegistry = newPluginRegistry("selector", "RegisterSelector")
)

// RegisterWorkload makes a workload type serializable under the given wire
// name, so scenarios using it can run on process-sharded backends. The
// prototype's concrete type must JSON round-trip to an equivalent value
// (exported fields only, no functions). The built-in workloads are
// pre-registered; applications register their own in init so that worker
// processes (re-execs of the same binary) share the table.
func RegisterWorkload(name string, prototype Workload) {
	workloadRegistry.add(name, prototype)
}

// RegisterSelector makes a selector type serializable under the given wire
// name; see RegisterWorkload for the contract.
func RegisterSelector(name string, prototype Selector) {
	selectorRegistry.add(name, prototype)
}

func init() {
	RegisterWorkload("batch", Batch{})
	RegisterWorkload("keep-batch", KeepBatch{})
	RegisterWorkload("continuous-keep", ContinuousKeep{})
	RegisterWorkload("interval-keep", IntervalKeep{})
	RegisterWorkload("poisson-keep", PoissonKeep{})
	RegisterWorkload("onoff-keep", OnOffKeep{})
	RegisterWorkload("measure-stream", MeasureStream{})
	RegisterSelector("diameter-pair", diameterPair{})
	RegisterSelector("random-pairs", randomPairs{})
}

// topoKindNames is the TopologyKind wire vocabulary (TopoCustom is absent:
// a Build closure cannot cross a process boundary).
var topoKindNames = map[TopologyKind]string{
	TopoChain:    "chain",
	TopoDumbbell: "dumbbell",
	TopoRing:     "ring",
	TopoStar:     "star",
	TopoGrid:     "grid",
	TopoWaxman:   "waxman",
}

var topoKindsByName = func() map[string]TopologyKind {
	m := make(map[string]TopologyKind, len(topoKindNames))
	for k, n := range topoKindNames {
		m[n] = k
	}
	return m
}()

// TopologyWire is the JSON form of a TopologySpec.
type TopologyWire struct {
	Kind  string
	Nodes int     `json:",omitempty"`
	Rows  int     `json:",omitempty"`
	Cols  int     `json:",omitempty"`
	Alpha float64 `json:",omitempty"`
	Beta  float64 `json:",omitempty"`
}

func (t TopologySpec) wire() (TopologyWire, error) {
	name, ok := topoKindNames[t.Kind]
	if !ok {
		if t.Kind == TopoCustom {
			return TopologyWire{}, errors.New("custom topologies (Build closures) are not serializable")
		}
		return TopologyWire{}, fmt.Errorf("unknown topology kind %d", t.Kind)
	}
	return TopologyWire{Kind: name, Nodes: t.Nodes, Rows: t.Rows, Cols: t.Cols, Alpha: t.Alpha, Beta: t.Beta}, nil
}

func (w TopologyWire) spec() (TopologySpec, error) {
	kind, ok := topoKindsByName[w.Kind]
	if !ok {
		return TopologySpec{}, fmt.Errorf("unknown topology kind %q", w.Kind)
	}
	return TopologySpec{Kind: kind, Nodes: w.Nodes, Rows: w.Rows, Cols: w.Cols, Alpha: w.Alpha, Beta: w.Beta}, nil
}

// CircuitWire is the JSON form of a CircuitSpec. Application handler
// callbacks do not serialize; only their AutoConsume bits travel.
type CircuitWire struct {
	ID              CircuitID    `json:",omitempty"`
	Src             string       `json:",omitempty"`
	Dst             string       `json:",omitempty"`
	Select          *PluginRef   `json:",omitempty"`
	Fidelity        float64      `json:",omitempty"`
	Policy          CutoffPolicy `json:",omitempty"`
	ManualCutoff    sim.Duration `json:",omitempty"`
	MaxEER          float64      `json:",omitempty"`
	MinEER          float64      `json:",omitempty"`
	Candidates      int          `json:",omitempty"`
	ArriveAt        sim.Duration `json:",omitempty"`
	HoldFor         sim.Duration `json:",omitempty"`
	Arrival         *Dist        `json:",omitempty"`
	Holding         *Dist        `json:",omitempty"`
	Plan            *Plan        `json:",omitempty"`
	Workload        *PluginRef   `json:",omitempty"`
	HeadAutoConsume bool         `json:",omitempty"`
	TailAutoConsume bool         `json:",omitempty"`
	RecordFidelity  bool         `json:",omitempty"`
	Optional        bool         `json:",omitempty"`
}

// hasCallbacks reports whether any function-typed handler field is set.
func (h Handlers) hasCallbacks() bool {
	return h.OnPair != nil || h.OnEarlyPair != nil || h.OnExpire != nil ||
		h.OnComplete != nil || h.OnReject != nil || h.OnTestEstimate != nil
}

func (spec CircuitSpec) wire() (CircuitWire, error) {
	if spec.Head.hasCallbacks() || spec.Tail.hasCallbacks() {
		return CircuitWire{}, fmt.Errorf("circuit %q: handler callbacks are not serializable", spec.ID)
	}
	w := CircuitWire{
		ID: spec.ID, Src: spec.Src, Dst: spec.Dst,
		Fidelity: spec.Fidelity, Policy: spec.Policy, ManualCutoff: spec.ManualCutoff,
		MaxEER: spec.MaxEER, MinEER: spec.MinEER, Candidates: spec.Candidates,
		ArriveAt: spec.ArriveAt, HoldFor: spec.HoldFor,
		HeadAutoConsume: spec.Head.AutoConsume, TailAutoConsume: spec.Tail.AutoConsume,
		RecordFidelity: spec.RecordFidelity, Optional: spec.Optional,
	}
	if spec.Arrival != nil {
		d := *spec.Arrival
		w.Arrival = &d
	}
	if spec.Holding != nil {
		d := *spec.Holding
		w.Holding = &d
	}
	if spec.Plan != nil {
		p := *spec.Plan
		w.Plan = &p
	}
	if spec.Select != nil {
		ref, err := selectorRegistry.encode(spec.Select)
		if err != nil {
			return CircuitWire{}, fmt.Errorf("circuit %q: %w", spec.ID, err)
		}
		w.Select = ref
	}
	if spec.Workload != nil {
		ref, err := workloadRegistry.encode(spec.Workload)
		if err != nil {
			return CircuitWire{}, fmt.Errorf("circuit %q: %w", spec.ID, err)
		}
		w.Workload = ref
	}
	return w, nil
}

func (w CircuitWire) spec() (CircuitSpec, error) {
	spec := CircuitSpec{
		ID: w.ID, Src: w.Src, Dst: w.Dst,
		Fidelity: w.Fidelity, Policy: w.Policy, ManualCutoff: w.ManualCutoff,
		MaxEER: w.MaxEER, MinEER: w.MinEER, Candidates: w.Candidates,
		ArriveAt: w.ArriveAt, HoldFor: w.HoldFor,
		Head:           Handlers{AutoConsume: w.HeadAutoConsume},
		Tail:           Handlers{AutoConsume: w.TailAutoConsume},
		RecordFidelity: w.RecordFidelity, Optional: w.Optional,
	}
	if w.Arrival != nil {
		d := *w.Arrival
		spec.Arrival = &d
	}
	if w.Holding != nil {
		d := *w.Holding
		spec.Holding = &d
	}
	if w.Plan != nil {
		p := *w.Plan
		spec.Plan = &p
	}
	if w.Select != nil {
		v, err := selectorRegistry.decode(w.Select)
		if err != nil {
			return CircuitSpec{}, fmt.Errorf("circuit %q: %w", w.ID, err)
		}
		sel, ok := v.(Selector)
		if !ok {
			return CircuitSpec{}, fmt.Errorf("circuit %q: registered selector %q (%T) no longer implements Selector", w.ID, w.Select.Name, v)
		}
		spec.Select = sel
	}
	if w.Workload != nil {
		v, err := workloadRegistry.decode(w.Workload)
		if err != nil {
			return CircuitSpec{}, fmt.Errorf("circuit %q: %w", w.ID, err)
		}
		wl, ok := v.(Workload)
		if !ok {
			return CircuitSpec{}, fmt.Errorf("circuit %q: registered workload %q (%T) no longer implements Workload", w.ID, w.Workload.Name, v)
		}
		spec.Workload = wl
	}
	return spec, nil
}

// ScenarioSpec is the JSON-serializable form of a declarative Scenario: a
// worker process can reconstruct and run the scenario from these bytes
// alone. Spec and Scenario convert in both directions, and a round-tripped
// scenario runs to bit-identical Metrics (the event order is a pure
// function of the scenario value and its seed).
//
// Runtime-only Scenario fields — Setup hooks, Context, handler callbacks,
// custom topology Build closures, unregistered workload/selector types —
// have no wire form; Scenario.Spec reports an error for scenarios using
// them.
type ScenarioSpec struct {
	Name            string `json:",omitempty"`
	Config          Config
	Topology        TopologyWire
	Circuits        []CircuitWire
	Horizon         sim.Duration `json:",omitempty"`
	WaitFor         []CircuitID  `json:",omitempty"`
	Sequential      bool         `json:",omitempty"`
	ProcessingDelay sim.Duration `json:",omitempty"`
}

// Spec converts the scenario to its serializable form, or reports why it
// cannot travel (Setup hook, Context, handler callbacks, custom topology,
// or an unregistered workload/selector type).
func (sc Scenario) Spec() (*ScenarioSpec, error) {
	if sc.Setup != nil {
		return nil, errors.New("scenario Setup hooks are not serializable")
	}
	if sc.Context != nil {
		return nil, errors.New("scenario Context is not serializable (RunReplicated's ReplicaOptions.Context cancels sharded runs parent-side)")
	}
	topo, err := sc.Topology.wire()
	if err != nil {
		return nil, err
	}
	spec := &ScenarioSpec{
		Name: sc.Name, Config: sc.Config, Topology: topo,
		Horizon: sc.Horizon, Sequential: sc.Sequential, ProcessingDelay: sc.ProcessingDelay,
	}
	if len(sc.WaitFor) > 0 {
		spec.WaitFor = append([]CircuitID(nil), sc.WaitFor...)
	}
	for _, c := range sc.Circuits {
		w, err := c.wire()
		if err != nil {
			return nil, err
		}
		spec.Circuits = append(spec.Circuits, w)
	}
	return spec, nil
}

// Scenario materializes the spec back into a runnable Scenario.
func (spec *ScenarioSpec) Scenario() (Scenario, error) {
	topo, err := spec.Topology.spec()
	if err != nil {
		return Scenario{}, err
	}
	sc := Scenario{
		Name: spec.Name, Config: spec.Config, Topology: topo,
		Horizon: spec.Horizon, Sequential: spec.Sequential, ProcessingDelay: spec.ProcessingDelay,
	}
	if len(spec.WaitFor) > 0 {
		sc.WaitFor = append([]CircuitID(nil), spec.WaitFor...)
	}
	for _, w := range spec.Circuits {
		c, err := w.spec()
		if err != nil {
			return Scenario{}, err
		}
		sc.Circuits = append(sc.Circuits, c)
	}
	return sc, nil
}
