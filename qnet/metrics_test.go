package qnet

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"strings"
	"testing"

	"qnp/internal/race"
	"qnp/internal/runner"
	"qnp/internal/sim"
	"qnp/internal/stats"
)

// TestEERWindowExcludesLateDeliveries is the regression net for the
// DeliveredSince window bug: EER(from, to) used to count every delivery at
// or after from, including those past to — an early-stop run that
// overshoots its horizon inflated the measured rate. Both modes must
// exclude them.
func TestEERWindowExcludesLateDeliveries(t *testing.T) {
	times := []sim.Time{0, sim.Time(2 * sim.Second), sim.Time(4 * sim.Second),
		sim.Time(9 * sim.Second), sim.Time(11 * sim.Second)}
	full := newCircuitMetrics("c", "a", "b", MetricsFull)
	str := newCircuitMetrics("c", "a", "b", MetricsStreaming)
	for _, at := range times {
		full.noteDelivery(at, false, 0, 0)
		str.noteDelivery(at, false, 0, 0)
	}
	from, to := sim.Time(sim.Second), sim.Time(10*sim.Second)
	for name, cm := range map[string]*CircuitMetrics{"full": full, "streaming": str} {
		// Window [1 s, 10 s] holds the deliveries at 2, 4 and 9 s; the ones
		// at 0 and 11 s are outside.
		if got := cm.DeliveredBetween(from, to); got != 3 {
			t.Errorf("%s: DeliveredBetween = %d, want 3", name, got)
		}
		if got, want := cm.EER(from, to), 3.0/9.0; got != want {
			t.Errorf("%s: EER = %v, want %v", name, got, want)
		}
		if got := cm.DeliveredSince(from); got != 4 {
			t.Errorf("%s: DeliveredSince = %d, want 4", name, got)
		}
		// Full window stays exact in both modes.
		if got := cm.DeliveredBetween(0, sim.Time(11*sim.Second)); got != 5 {
			t.Errorf("%s: full-window DeliveredBetween = %d, want 5", name, got)
		}
		if got := cm.DeliveredBetween(to, from); got != 0 {
			t.Errorf("%s: inverted window = %d, want 0", name, got)
		}
	}
}

// streamingPair runs the same scenario in both metrics modes.
func streamingPair(t *testing.T, sc Scenario) (full, str *Metrics) {
	t.Helper()
	cfg := sc.effectiveConfig()
	cfg.MetricsMode = MetricsFull
	sc.Config = cfg
	resFull, err := sc.Run()
	if err != nil {
		t.Fatalf("full run: %v", err)
	}
	cfg.MetricsMode = MetricsStreaming
	sc.Config = cfg
	resStr, err := sc.Run()
	if err != nil {
		t.Fatalf("streaming run: %v", err)
	}
	return resFull.Metrics, resStr.Metrics
}

// TestStreamingModeAgreement is the tentpole's correctness contract:
// MetricsStreaming never changes the simulation, so every counter is
// bit-identical to MetricsFull, means agree exactly, and percentiles agree
// within the histogram tolerance — while the per-event records stay empty.
func TestStreamingModeAgreement(t *testing.T) {
	full, str := streamingPair(t, Scenario{
		Topology: DumbbellTopo(),
		Circuits: []CircuitSpec{
			{ID: "a", Src: "A0", Dst: "B0", Fidelity: 0.85,
				Workload: IntervalKeep{Interval: 200 * sim.Millisecond, Pairs: 1}, RecordFidelity: true},
			{ID: "b", Src: "A1", Dst: "B1", Fidelity: 0.85,
				Workload: PoissonKeep{Mean: 300 * sim.Millisecond, Pairs: 2}},
		},
		Horizon: 20 * sim.Second,
	})
	if str.Mode != MetricsStreaming || full.Mode != MetricsFull {
		t.Fatalf("modes recorded as full=%v streaming=%v", full.Mode, str.Mode)
	}
	if full.Start != str.Start || full.End != str.End {
		t.Fatalf("run windows differ: [%v,%v] vs [%v,%v]", full.Start, full.End, str.Start, str.End)
	}
	for _, id := range []CircuitID{"a", "b"} {
		f, s := full.Circuit(id), str.Circuit(id)
		// Simulation-side counters are bit-identical.
		if f.Delivered != s.Delivered || f.Submitted != s.Submitted ||
			f.Completed != s.Completed || f.Rejected != s.Rejected ||
			f.Expired != s.Expired || f.PendingFinite != s.PendingFinite {
			t.Errorf("%s: counters diverged: full %+v streaming %+v", id,
				[]int{f.Delivered, f.Submitted, f.Completed, f.Rejected, f.Expired, f.PendingFinite},
				[]int{s.Delivered, s.Submitted, s.Completed, s.Rejected, s.Expired, s.PendingFinite})
		}
		if f.Submitted != len(f.Requests) {
			t.Errorf("%s: full mode Submitted %d != %d request records", id, f.Submitted, len(f.Requests))
		}
		// Streaming drops the records...
		if len(s.DeliveryTimes) != 0 || len(s.Requests) != 0 || len(s.Fidelities) != 0 || len(s.States) != 0 {
			t.Errorf("%s: streaming kept records: %d times, %d requests, %d fidelities",
				id, len(s.DeliveryTimes), len(s.Requests), len(s.Fidelities))
		}
		// ...and the aggregates hold the same series.
		if s.DeliveryAgg == nil || s.DeliveryAgg.Count != int64(s.Delivered) {
			t.Fatalf("%s: DeliveryAgg count %v, delivered %d", id, s.DeliveryAgg, s.Delivered)
		}
		if s.LatencyAgg.Count != int64(s.Completed) {
			t.Errorf("%s: LatencyAgg count %d, completed %d", id, s.LatencyAgg.Count, s.Completed)
		}
		// Rates and means agree exactly (exact sums on both sides).
		if fe, se := f.EER(full.Start, full.End), s.EER(str.Start, str.End); fe != se {
			t.Errorf("%s: EER %v (full) vs %v (streaming)", id, fe, se)
		}
		if ff, sf := f.MeanFidelity(), s.MeanFidelity(); ff != sf {
			t.Errorf("%s: MeanFidelity %v (full) vs %v (streaming)", id, ff, sf)
		}
		if f.AllComplete() != s.AllComplete() {
			t.Errorf("%s: AllComplete %v (full) vs %v (streaming)", id, f.AllComplete(), s.AllComplete())
		}
	}
	// Cross-circuit summaries: exact mean agreement, histogram-tolerance
	// percentile agreement.
	fl, sl := full.LatencySummary(), str.LatencySummary()
	if fl.Count != sl.Count {
		t.Fatalf("latency counts: %d vs %d", fl.Count, sl.Count)
	}
	if fm, sm := fl.Mean(), sl.Mean(); math.Abs(fm-sm) > 1e-9*math.Abs(fm) {
		t.Errorf("mean latency %v (full) vs %v (streaming)", fm, sm)
	}
	for _, p := range []float64{0.5, 0.95, 0.99} {
		fp, sp := fl.Percentile(p), sl.Percentile(p)
		if fp == 0 {
			continue
		}
		if rel := math.Abs(fp-sp) / fp; rel > 2.0/stats.BucketsPerOctave {
			t.Errorf("p%v latency %v (full) vs %v (streaming), rel err %.4f", 100*p, fp, sp, rel)
		}
	}
}

// TestStreamingSpecAndJSONRoundTrip: MetricsMode survives the ScenarioSpec
// wire form, and a streaming Metrics round-trips through JSON
// bit-identically with working lookup helpers — the contract the sharded
// backend rides on.
func TestStreamingSpecAndJSONRoundTrip(t *testing.T) {
	sc := Scenario{
		Name:     "rt-streaming",
		Config:   Config{Seed: 11, MetricsMode: MetricsStreaming},
		Topology: ChainTopo(3),
		Circuits: []CircuitSpec{{
			ID: "c", Src: "n0", Dst: "n2", Fidelity: 0.8,
			Workload: KeepBatch{Count: 2, Pairs: 3}, RecordFidelity: true,
		}},
		Horizon: 10 * sim.Second,
		WaitFor: []CircuitID{"c"},
	}
	spec, err := sc.Spec()
	if err != nil {
		t.Fatal(err)
	}
	wire, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	var decoded ScenarioSpec
	if err := json.Unmarshal(wire, &decoded); err != nil {
		t.Fatal(err)
	}
	back, err := decoded.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	if back.Config.MetricsMode != MetricsStreaming {
		t.Fatalf("MetricsMode lost on the spec wire: %v", back.Config.MetricsMode)
	}
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	blob := metricsJSON(t, m)
	var dec Metrics
	if err := json.Unmarshal(blob, &dec); err != nil {
		t.Fatal(err)
	}
	cm := dec.Circuit("c")
	if cm == nil {
		t.Fatal("decoded streaming Metrics lost the circuit index")
	}
	if !cm.streaming {
		t.Error("decoded circuit not marked streaming")
	}
	if !cm.AllComplete() {
		t.Error("decoded streaming metrics disagree on AllComplete")
	}
	if got, want := cm.EER(dec.Start, dec.End), m.Circuit("c").EER(m.Start, m.End); got != want {
		t.Errorf("decoded EER %v, want %v", got, want)
	}
	if got := metricsJSON(t, &dec); !bytes.Equal(blob, got) {
		t.Errorf("re-encoded streaming metrics diverged\n want %s\n  got %s", blob, got)
	}
}

// TestStreamingShardMergeIdentity: replicated streaming runs through the
// subprocess backend at 1 and 3 shards produce bit-identical per-replica
// metrics, and folding the replicas' aggregates in replica order gives
// bit-identical summary statistics regardless of shard count.
func TestStreamingShardMergeIdentity(t *testing.T) {
	sc := shardedScenario()
	sc.Config.MetricsMode = MetricsStreaming
	const replicas = 6
	run := func(shards int) []*Metrics {
		ms, err := sc.RunReplicated(ReplicaOptions{
			Replicas: replicas, Seed: 21,
			Backend: runner.Subprocess{Shards: shards, Command: []string{os.Args[0], runner.WorkerFlag}},
		})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		return ms
	}
	one, three := run(1), run(3)
	merged := func(ms []*Metrics) (*stats.Agg, *stats.Agg, string) {
		lat, fid := new(stats.Agg), new(stats.Agg)
		var b strings.Builder
		for i, m := range ms {
			lat.Merge(m.LatencySummary())
			fid.Merge(m.FidelitySummary())
			blob := metricsJSON(t, m)
			b.WriteString(string(blob))
			b.WriteByte('\n')
			_ = i
		}
		return lat, fid, b.String()
	}
	lat1, fid1, raw1 := merged(one)
	lat3, fid3, raw3 := merged(three)
	if raw1 != raw3 {
		t.Fatal("per-replica metrics JSON differs between 1 and 3 shards")
	}
	for _, pair := range []struct {
		name string
		a, b *stats.Agg
	}{{"latency", lat1, lat3}, {"fidelity", fid1, fid3}} {
		if pair.a.Count != pair.b.Count || pair.a.Sum() != pair.b.Sum() ||
			pair.a.Mean() != pair.b.Mean() ||
			pair.a.Percentile(0.5) != pair.b.Percentile(0.5) ||
			pair.a.Percentile(0.95) != pair.b.Percentile(0.95) {
			t.Errorf("%s summary differs between shard counts", pair.name)
		}
	}
}

// TestUnmarshalPendingState pins satellite 3: the wait-loop state decodes
// faithfully, and a MetricsFull stream whose PendingFinite contradicts its
// own request records is rejected instead of decoded into a wrong wait
// state.
func TestUnmarshalPendingState(t *testing.T) {
	cm := newCircuitMetrics("c", "a", "b", MetricsFull)
	cm.Established = true
	cm.noteSubmit(&RequestMetrics{ID: "r0", SubmittedAt: 0, Pairs: 2})
	cm.PendingArrival = true
	m := &Metrics{Name: "pending", Circuits: []*CircuitMetrics{cm},
		byID: map[CircuitID]*CircuitMetrics{"c": cm}}
	if m.waitSatisfied([]CircuitID{"c"}) {
		t.Fatal("precondition: original should be unsatisfied")
	}
	blob, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var dec Metrics
	if err := json.Unmarshal(blob, &dec); err != nil {
		t.Fatal(err)
	}
	c := dec.Circuit("c")
	if !c.PendingArrival || c.PendingFinite != 1 {
		t.Errorf("decoded wait state: PendingArrival=%v PendingFinite=%d, want true/1",
			c.PendingArrival, c.PendingFinite)
	}
	if dec.waitSatisfied([]CircuitID{"c"}) != m.waitSatisfied([]CircuitID{"c"}) {
		t.Error("decoded waitSatisfied differs from the original")
	}

	// Corrupt the counter: a full-mode decode must reject the mismatch.
	var raw map[string]any
	if err := json.Unmarshal(blob, &raw); err != nil {
		t.Fatal(err)
	}
	raw["Circuits"].([]any)[0].(map[string]any)["PendingFinite"] = 7
	bad, err := json.Marshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	var rej Metrics
	if err := json.Unmarshal(bad, &rej); err == nil ||
		!strings.Contains(err.Error(), "PendingFinite") {
		t.Errorf("corrupt PendingFinite decoded without error (err=%v)", err)
	}
}

// TestAllocsStreamingRecording is the PR's constant-memory gate at the
// metrics layer: a warm streaming circuit absorbs a million
// submit/deliver/complete cycles with allocations bounded by histogram
// bucket growth, not event count. Full mode, by contrast, appends one
// record per event — the O(deliveries) behavior this PR escapes.
func TestAllocsStreamingRecording(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation gates run with -race off")
	}
	cm := newCircuitMetrics("c", "a", "b", MetricsStreaming)
	at := sim.Time(0)
	id := RequestID("r")
	warm := func(n int) float64 {
		return testing.AllocsPerRun(1, func() {
			rm := RequestMetrics{ID: id, Pairs: 1}
			for i := 0; i < n; i++ {
				at = at.Add(sim.Millisecond)
				rm.SubmittedAt = at
				rm.Done, rm.CompletedAt = false, 0
				cm.noteSubmit(&rm)
				cm.noteDelivery(at.Add(sim.Microsecond), true, 0.9, 0)
				cm.noteComplete(id, at.Add(2*sim.Microsecond))
			}
		})
	}
	warm(4 * stats.ExactThreshold) // spill all three aggregates
	if allocs := warm(1_000_000); allocs > 200 {
		t.Errorf("1e6 streaming deliveries allocated %v times, want ≤ 200", allocs)
	}
	if cm.Delivered < 1_000_000 || len(cm.DeliveryTimes) != 0 || len(cm.Requests) != 0 {
		t.Fatalf("gate exercised the wrong path: %d delivered, %d times, %d requests",
			cm.Delivered, len(cm.DeliveryTimes), len(cm.Requests))
	}
}
