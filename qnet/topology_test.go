package qnet

import (
	"fmt"
	"testing"

	"qnp/internal/sim"
)

// edges flattens a network's link set into sorted "a-b" strings.
func edges(n *Network) []string {
	var out []string
	for _, a := range n.NodeIDs() {
		for _, b := range n.Graph.Neighbors(a) {
			if a < b {
				out = append(out, a+"-"+b)
			}
		}
	}
	return out
}

// connected walks the graph from the first node and checks every node is
// reachable.
func connected(n *Network) bool {
	ids := n.NodeIDs()
	if len(ids) == 0 {
		return true
	}
	seen := map[string]bool{ids[0]: true}
	queue := []string{ids[0]}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range n.Graph.Neighbors(cur) {
			if !seen[nb] {
				seen[nb] = true
				queue = append(queue, nb)
			}
		}
	}
	return len(seen) == len(ids)
}

func TestTopologyGenerators(t *testing.T) {
	cfg := DefaultConfig()
	cases := []struct {
		name  string
		build func() *Network
		nodes int
		links int
		// wantHops is the expected Diameter hop count (0 = don't check).
		wantHops int
	}{
		{"chain-5", func() *Network { return Chain(cfg, 5) }, 5, 4, 4},
		{"ring-3", func() *Network { return Ring(cfg, 3) }, 3, 3, 1},
		{"ring-6", func() *Network { return Ring(cfg, 6) }, 6, 6, 3},
		{"star-2", func() *Network { return Star(cfg, 2) }, 2, 1, 1},
		{"star-7", func() *Network { return Star(cfg, 7) }, 7, 6, 2},
		{"grid-1x4", func() *Network { return Grid(cfg, 1, 4) }, 4, 3, 3},
		{"grid-2x3", func() *Network { return Grid(cfg, 2, 3) }, 6, 7, 3},
		{"grid-3x3", func() *Network { return Grid(cfg, 3, 3) }, 9, 12, 4},
		{"waxman-12", func() *Network { return RandomGraph(cfg, 12, 0.5, 0.4) }, 12, 0, 0},
		{"waxman-1", func() *Network { return RandomGraph(cfg, 1, 0.4, 0.4) }, 1, 0, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			n := tc.build()
			if got := len(n.NodeIDs()); got != tc.nodes {
				t.Errorf("nodes = %d, want %d", got, tc.nodes)
			}
			if tc.links > 0 {
				if got := n.LinkCount(); got != tc.links {
					t.Errorf("links = %d, want %d", got, tc.links)
				}
			}
			if !connected(n) {
				t.Error("graph not connected")
			}
			if tc.wantHops > 0 {
				if _, _, hops := n.Diameter(); hops != tc.wantHops {
					t.Errorf("diameter = %d hops, want %d", hops, tc.wantHops)
				}
			}
		})
	}
}

func TestRandomGraphSeededDeterminism(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 11
	a := edges(RandomGraph(cfg, 15, 0.5, 0.4))
	b := edges(RandomGraph(cfg, 15, 0.5, 0.4))
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("same seed produced different graphs:\n%v\n%v", a, b)
	}
	// A random graph must span at least the stitching tree.
	if len(a) < 14 {
		t.Errorf("only %d edges for 15 nodes", len(a))
	}
	cfg.Seed = 12
	c := edges(RandomGraph(cfg, 15, 0.5, 0.4))
	if fmt.Sprint(a) == fmt.Sprint(c) {
		t.Error("different seeds produced identical graphs")
	}
}

func TestRandomGraphMinimumIsConnected(t *testing.T) {
	// With a vanishing link probability the stitching pass alone must
	// still deliver a connected graph (a tree).
	cfg := DefaultConfig()
	cfg.Seed = 5
	n := RandomGraph(cfg, 10, 1e-9, 0.4)
	if !connected(n) {
		t.Fatal("stitching failed to connect the graph")
	}
	if got := n.LinkCount(); got != 9 {
		t.Errorf("links = %d, want spanning tree of 9", got)
	}
}

// TestRingCircuit drives real traffic over a generated topology: the ring
// routes around whichever side is shorter and delivers pairs end to end.
func TestRingCircuit(t *testing.T) {
	net := Ring(DefaultConfig(), 5)
	vc, err := net.Establish("rc", "n0", "n2", 0.8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(vc.Plan.Path) != 3 {
		t.Fatalf("n0→n2 path on a 5-ring = %v, want 2 hops", vc.Plan.Path)
	}
	got := 0
	vc.HandleHead(Handlers{AutoConsume: true, OnPair: func(Delivered) { got++ }})
	vc.HandleTail(Handlers{AutoConsume: true})
	if err := vc.Submit(Request{ID: "r", Type: Keep, NumPairs: 3}); err != nil {
		t.Fatal(err)
	}
	net.Run(30 * sim.Second)
	if got != 3 {
		t.Fatalf("delivered %d of 3 pairs over the ring", got)
	}
}
