package qnet

import (
	"encoding/json"
	"fmt"
	"math"

	"qnp/internal/quantum"
	"qnp/internal/runner"
	"qnp/internal/sim"
	"qnp/internal/stats"
)

// MetricsMode selects how a scenario records its metrics.
type MetricsMode int

const (
	// MetricsFull (the default) keeps every per-delivery and per-request
	// record: DeliveryTimes, Fidelities, States and Requests hold one
	// entry per event, so any window or distribution can be queried
	// exactly after the run. Memory is O(deliveries + requests).
	MetricsFull MetricsMode = iota
	// MetricsStreaming drops the per-delivery and per-request records and
	// feeds the same observations into mergeable constant-memory
	// aggregates (DeliveryAgg, LatencyAgg, FidelityAgg) instead: memory
	// is independent of the delivery count, which is what makes
	// city-scale runs (hundreds of nodes, millions of deliveries)
	// possible. Counters and mean-style statistics stay exact;
	// percentile, CDF and sub-window queries are histogram-approximated
	// once a series exceeds stats.ExactThreshold samples (see the
	// internal/stats package comment for the bucket policy). Recording
	// mode never changes the simulation itself: the event sequence, and
	// therefore every counter, is bit-identical between modes.
	MetricsStreaming
)

// streamingMode reports whether the mode drops records for aggregates.
func (m MetricsMode) streaming() bool { return m == MetricsStreaming }

// RequestMetrics records one request submitted through a scenario workload.
type RequestMetrics struct {
	ID          RequestID
	SubmittedAt sim.Time
	CompletedAt sim.Time
	// Done reports head-end completion (OnComplete fired).
	Done bool
	// Rejected reports that policing refused the request (OnReject fired).
	Rejected bool
	// Pairs is the request's NumPairs (0 for open-ended requests).
	Pairs int
}

// CircuitMetrics aggregates what one circuit of a scenario did. Counters
// are taken at the circuit's head-end, the same vantage point the paper's
// evaluation measures from; Expired sums both ends.
type CircuitMetrics struct {
	ID   CircuitID
	Src  string
	Dst  string
	Path []string
	// Established reports whether the circuit installed; when false, Err
	// holds the routing/signalling error and all counters stay zero.
	Established bool
	Err         string
	Plan        Plan
	// CandidateIndex is the k-shortest-path candidate the controller placed
	// the circuit on: 0 is the shortest path (and the only possibility
	// unless CircuitSpec.Candidates > 1), >0 a re-route around contention.
	CandidateIndex int `json:",omitempty"`

	// Lifetime stamps for churn scenarios. ArrivedAt is when the scenario
	// offered the circuit (for pre-installed circuits, when its installation
	// began); EstablishedAt is when its CONFIRM returned to the head-end;
	// TornDownAt is when it departed (zero = it lived to the end of the
	// run). AdmissionRejected marks arrivals that admission control refused
	// — the circuit never installs, Established stays false, and Err holds
	// the allocation-versus-demand detail.
	ArrivedAt         sim.Time
	EstablishedAt     sim.Time
	TornDownAt        sim.Time
	AdmissionRejected bool

	// Delivered counts head-end pair (or measurement) deliveries. In
	// MetricsFull the delivery times ride along in order, and with
	// CircuitSpec.RecordFidelity so do the exact pair fidelity and
	// declared Bell state at each delivery. In MetricsStreaming these
	// slices stay nil and the aggregates below hold the same series.
	Delivered      int
	DeliveryTimes  []sim.Time          `json:",omitempty"`
	Fidelities     []float64           `json:",omitempty"`
	States         []quantum.BellIndex `json:",omitempty"`
	EarlyDelivered int
	Expired        int
	Rejected       int
	// Requests holds the per-request records (MetricsFull only).
	Requests []*RequestMetrics `json:",omitempty"`

	// Submitted and Completed count workload request submissions and
	// head-end completions — maintained in both modes, they are the
	// request totals that survive MetricsStreaming.
	Submitted int
	Completed int

	// Streaming aggregates (MetricsStreaming only): constant-memory
	// summaries of delivery times (seconds), request completion latencies
	// (seconds) and recorded per-delivery fidelities. Bell states are not
	// aggregated — a state histogram has no mean, and the per-delivery
	// pairing with fidelity is exactly the record MetricsStreaming drops.
	DeliveryAgg *stats.Agg `json:",omitempty"`
	LatencyAgg  *stats.Agg `json:",omitempty"`
	FidelityAgg *stats.Agg `json:",omitempty"`

	// PendingFinite counts finite requests submitted but not yet
	// completed or rejected — the scenario wait loop's early-stop state.
	// Exported (and serialized) so a decoded Metrics answers
	// waitSatisfied and AllComplete exactly like the original; on decode
	// of a MetricsFull value it is cross-checked against Requests.
	PendingFinite int `json:",omitempty"`
	// PendingArrival marks a scheduled (churn) circuit whose arrival has
	// not resolved yet — WaitFor treats it as incomplete. True in a
	// completed run only for arrivals the horizon cut off before they
	// fired; serialized so the wait state survives the wire (see
	// Metrics.UnmarshalJSON).
	PendingArrival bool `json:",omitempty"`

	reqByID map[RequestID]*RequestMetrics
	// streaming mirrors Metrics.Mode for the recording fast path.
	streaming bool
}

// newCircuitMetrics builds the per-circuit recording state for a mode.
func newCircuitMetrics(id CircuitID, src, dst string, mode MetricsMode) *CircuitMetrics {
	cm := &CircuitMetrics{
		ID: id, Src: src, Dst: dst,
		reqByID:   make(map[RequestID]*RequestMetrics),
		streaming: mode.streaming(),
	}
	if cm.streaming {
		cm.DeliveryAgg = new(stats.Agg)
		cm.LatencyAgg = new(stats.Agg)
	}
	return cm
}

// noteSubmit records a workload request submission. Both modes keep the
// live in-flight index (completion and rejection look requests up by ID);
// only MetricsFull keeps the record itself.
func (c *CircuitMetrics) noteSubmit(rm *RequestMetrics) {
	c.Submitted++
	if !c.streaming {
		c.Requests = append(c.Requests, rm)
	}
	c.reqByID[rm.ID] = rm
	if rm.Pairs > 0 {
		c.PendingFinite++
	}
}

// noteDelivery records one head-end delivery; with record set, the pair
// fidelity and declared Bell state ride along.
func (c *CircuitMetrics) noteDelivery(at sim.Time, record bool, f float64, state quantum.BellIndex) {
	c.Delivered++
	if c.streaming {
		c.DeliveryAgg.Add(at.Seconds())
		if record {
			if c.FidelityAgg == nil {
				c.FidelityAgg = new(stats.Agg)
			}
			c.FidelityAgg.Add(f)
		}
		return
	}
	c.DeliveryTimes = append(c.DeliveryTimes, at)
	if record {
		c.Fidelities = append(c.Fidelities, f)
		c.States = append(c.States, state)
	}
}

// noteComplete records a head-end request completion at now. In
// MetricsStreaming the completion latency feeds LatencyAgg and the
// in-flight entry is dropped — memory tracks the in-flight request count,
// not the submission total.
func (c *CircuitMetrics) noteComplete(id RequestID, now sim.Time) {
	rm := c.request(id)
	if rm == nil || rm.Done {
		return
	}
	rm.Done = true
	rm.CompletedAt = now
	c.Completed++
	if rm.Pairs > 0 {
		c.PendingFinite--
	}
	if c.streaming {
		c.LatencyAgg.Add(now.Sub(rm.SubmittedAt).Seconds())
		delete(c.reqByID, id)
	}
}

// noteReject records a policing rejection of a submitted request.
func (c *CircuitMetrics) noteReject(id RequestID) {
	c.Rejected++
	rm := c.request(id)
	if rm == nil || rm.Rejected {
		return
	}
	rm.Rejected = true
	if rm.Pairs > 0 && !rm.Done {
		c.PendingFinite--
	}
	if c.streaming {
		delete(c.reqByID, id)
	}
}

// Lifetime is the circuit's established lifespan: EstablishedAt to
// TornDownAt, the latter defaulting to end (the run's End) for circuits
// that never departed. Zero for circuits that never established.
func (c *CircuitMetrics) Lifetime(end sim.Time) sim.Duration {
	if !c.Established {
		return 0
	}
	to := c.TornDownAt
	if to == 0 {
		to = end
	}
	return to.Sub(c.EstablishedAt)
}

// DeliveredSince counts deliveries at or after from — the steady-state
// window used by latency-versus-throughput scenarios. Exact in
// MetricsFull; in MetricsStreaming it is exact when from precedes the
// first delivery and histogram-approximated otherwise.
func (c *CircuitMetrics) DeliveredSince(from sim.Time) int {
	if c.streaming {
		if c.Delivered == 0 {
			return 0
		}
		return int(c.DeliveryAgg.CountAtOrAbove(from.Seconds()))
	}
	n := 0
	for _, t := range c.DeliveryTimes {
		if t >= from {
			n++
		}
	}
	return n
}

// DeliveredBetween counts deliveries in the window [from, to]. Exactness
// matches DeliveredSince: MetricsStreaming is exact when the window
// covers every delivery (the usual [Start, End] query) and
// histogram-approximated for narrower windows.
func (c *CircuitMetrics) DeliveredBetween(from, to sim.Time) int {
	if to < from {
		return 0
	}
	if c.streaming {
		if c.Delivered == 0 {
			return 0
		}
		n := c.DeliveryAgg.CountAtOrAbove(from.Seconds())
		if to.Seconds() >= c.DeliveryAgg.Max {
			return int(n)
		}
		return int(n - c.DeliveryAgg.CountAtOrAbove(math.Nextafter(to.Seconds(), math.Inf(1))))
	}
	n := 0
	for _, t := range c.DeliveryTimes {
		if t >= from && t <= to {
			n++
		}
	}
	return n
}

// EER is the measured entanglement end-to-end rate: deliveries in the
// window [from, to] per second. Deliveries outside the window — possible
// past to when an early-stop run overshoots its horizon — are excluded.
func (c *CircuitMetrics) EER(from, to sim.Time) float64 {
	w := to.Sub(from).Seconds()
	if w <= 0 {
		return 0
	}
	return float64(c.DeliveredBetween(from, to)) / w
}

// Latencies returns the completion latencies (seconds) of finished requests
// submitted at or after from, in submission order. MetricsFull only: in
// MetricsStreaming the per-request records do not exist and the result is
// nil — query LatencyAgg (or Metrics.LatencySummary) instead.
func (c *CircuitMetrics) Latencies(from sim.Time) []float64 {
	var out []float64
	for _, r := range c.Requests {
		if r.Done && r.SubmittedAt >= from {
			out = append(out, r.CompletedAt.Sub(r.SubmittedAt).Seconds())
		}
	}
	return out
}

// MeanFidelity averages the recorded per-delivery fidelities (0 when the
// scenario did not record them). Exact in both modes — streaming
// aggregates keep exact sums.
func (c *CircuitMetrics) MeanFidelity() float64 {
	if c.streaming {
		if c.FidelityAgg == nil {
			return 0
		}
		return c.FidelityAgg.Mean()
	}
	var s runner.Stats
	s.Add(c.Fidelities...)
	return s.Mean()
}

// AllComplete reports whether every submitted finite request finished. In
// MetricsStreaming, where per-request records are gone, it reports that
// no finite request is pending and none was rejected — identical unless a
// rejected open-ended request is in play (a rejected finite request makes
// both modes report false forever).
func (c *CircuitMetrics) AllComplete() bool {
	if !c.Established {
		return false
	}
	if c.streaming {
		return c.PendingFinite == 0 && c.Rejected == 0
	}
	for _, r := range c.Requests {
		if r.Pairs > 0 && !r.Done {
			return false
		}
	}
	return true
}

// request looks up the bookkeeping record for a workload-submitted request.
func (c *CircuitMetrics) request(id RequestID) *RequestMetrics {
	if c.reqByID == nil {
		return nil
	}
	return c.reqByID[id]
}

// Metrics is a scenario run's unified result: per-circuit delivery,
// latency, fidelity and policing counters plus network-wide totals.
type Metrics struct {
	Name string
	// Mode records how the run's metrics were captured (MetricsFull keeps
	// records, MetricsStreaming keeps aggregates); helpers branch on it.
	Mode MetricsMode `json:",omitempty"`
	// Start is the virtual time traffic opened (after circuit
	// installation); End is where the run stopped. The measurement window
	// for rate helpers is [Start, End].
	Start sim.Time
	End   sim.Time
	// Err is set on replicas that failed to run (RunReplicated keeps going).
	Err string

	Circuits []*CircuitMetrics
	byID     map[CircuitID]*CircuitMetrics

	// Admission outcomes across circuit arrivals: Admitted counts circuits
	// that established, RejectedAtAdmission those the admission control
	// refused (allocation below their MinEER demand). Circuits that failed
	// for other reasons (no feasible plan) count toward neither.
	Admitted            int
	RejectedAtAdmission int

	Nodes             int
	Links             int
	ClassicalMessages uint64
	// NodeStats holds every node's data-plane counters (swaps, discards,
	// expiries) keyed by node ID.
	NodeStats map[string]NodeStats
}

// Circuit returns a circuit's metrics, or nil for unknown IDs.
func (m *Metrics) Circuit(id CircuitID) *CircuitMetrics { return m.byID[id] }

// UnmarshalJSON decodes metrics produced by a worker process (the default
// encoding covers every exported field exactly: counters are integers or
// float64s, which Go's JSON codec round-trips bit-identically, and the
// streaming aggregates define their own exact wire form) and rebuilds the
// unexported lookup indexes, so a decoded Metrics answers Circuit and
// request queries like the original.
//
// The wait-loop state (PendingFinite, PendingArrival) is serialized
// verbatim, so even a Metrics captured mid-run decodes into the same wait
// state — historically PendingArrival was silently dropped, letting a
// mid-run serialization decode into a value whose waitSatisfied answer
// differed from the original's. Workers only serialize completed runs,
// and for MetricsFull values that invariant is enforced: PendingFinite is
// recomputed from the request records and a mismatch (a hand-edited or
// corrupt stream) is rejected rather than decoded into a wrong wait
// state. MetricsStreaming carries no records to check against, so its
// counters are trusted as serialized.
func (m *Metrics) UnmarshalJSON(b []byte) error {
	type plain Metrics // shed the method set to avoid recursion
	if err := json.Unmarshal(b, (*plain)(m)); err != nil {
		return err
	}
	m.byID = make(map[CircuitID]*CircuitMetrics, len(m.Circuits))
	for _, cm := range m.Circuits {
		m.byID[cm.ID] = cm
		cm.streaming = m.Mode.streaming()
		cm.reqByID = make(map[RequestID]*RequestMetrics, len(cm.Requests))
		pending := 0
		for _, rm := range cm.Requests {
			cm.reqByID[rm.ID] = rm
			if rm.Pairs > 0 && !rm.Done && !rm.Rejected {
				pending++
			}
		}
		if !cm.streaming && pending != cm.PendingFinite {
			return fmt.Errorf("qnet: circuit %q: PendingFinite %d does not match its %d pending request records", cm.ID, cm.PendingFinite, pending)
		}
	}
	return nil
}

// TotalDelivered sums deliveries over all circuits.
func (m *Metrics) TotalDelivered() int {
	n := 0
	for _, c := range m.Circuits {
		n += c.Delivered
	}
	return n
}

// AggregateEER is the network-wide delivered pair rate over the run window.
func (m *Metrics) AggregateEER() float64 {
	w := m.End.Sub(m.Start).Seconds()
	if w <= 0 {
		return 0
	}
	return float64(m.TotalDelivered()) / w
}

// TimeWeightedEER is the delivered pair rate per circuit-second of
// established lifetime: total deliveries divided by the summed lifetimes of
// the circuits that carried them. Under churn this weighs each circuit by
// how long it actually held its links, where AggregateEER (which divides by
// the whole run window) under-reports scenarios whose circuits live
// briefly. With every circuit alive for the full window the two agree up to
// the number of circuits.
func (m *Metrics) TimeWeightedEER() float64 {
	var life float64
	for _, c := range m.Circuits {
		life += c.Lifetime(m.End).Seconds()
	}
	if life <= 0 {
		return 0
	}
	return float64(m.TotalDelivered()) / life
}

// LatencySummary aggregates every circuit's completion latencies
// (seconds) into one mergeable summary, in circuit declaration order: the
// per-request records in MetricsFull, the merged LatencyAggs in
// MetricsStreaming. Mean and count are exact in both modes; percentiles
// are exact until the series outgrows stats.ExactThreshold.
func (m *Metrics) LatencySummary() *stats.Agg {
	agg := new(stats.Agg)
	for _, c := range m.Circuits {
		if c.streaming {
			agg.Merge(c.LatencyAgg)
			continue
		}
		for _, r := range c.Requests {
			if r.Done {
				agg.Add(r.CompletedAt.Sub(r.SubmittedAt).Seconds())
			}
		}
	}
	return agg
}

// FidelitySummary aggregates every circuit's recorded per-delivery
// fidelities into one mergeable summary, in circuit declaration order;
// empty when no circuit set RecordFidelity.
func (m *Metrics) FidelitySummary() *stats.Agg {
	agg := new(stats.Agg)
	for _, c := range m.Circuits {
		if c.streaming {
			agg.Merge(c.FidelityAgg)
			continue
		}
		for _, f := range c.Fidelities {
			agg.Add(f)
		}
	}
	return agg
}

// waitSatisfied reports whether every listed circuit has no finite request
// still pending — the scenario's early-stop condition. A scheduled (churn)
// circuit is unsatisfied until its arrival resolves; a departed circuit is
// always satisfied (its unfinished requests died with it).
func (m *Metrics) waitSatisfied(ids []CircuitID) bool {
	for _, id := range ids {
		c := m.byID[id]
		if c == nil {
			continue
		}
		if c.PendingArrival {
			return false
		}
		if c.TornDownAt == 0 && c.Established && c.PendingFinite > 0 {
			return false
		}
	}
	return true
}

// MeanCircuitEER averages one circuit's full-window EER across replicas,
// skipping failed replicas — the natural aggregate for RunReplicated.
func MeanCircuitEER(ms []*Metrics, id CircuitID) float64 {
	var s runner.Stats
	for _, m := range ms {
		if m == nil || m.Err != "" {
			continue
		}
		if c := m.Circuit(id); c != nil {
			s.Add(c.EER(m.Start, m.End))
		}
	}
	return s.Mean()
}

// MeanAggregateEER averages the network-wide EER across replicas, skipping
// failed replicas.
func MeanAggregateEER(ms []*Metrics) float64 {
	var s runner.Stats
	for _, m := range ms {
		if m == nil || m.Err != "" {
			continue
		}
		s.Add(m.AggregateEER())
	}
	return s.Mean()
}
