package qnet

import (
	"encoding/json"

	"qnp/internal/quantum"
	"qnp/internal/runner"
	"qnp/internal/sim"
)

// RequestMetrics records one request submitted through a scenario workload.
type RequestMetrics struct {
	ID          RequestID
	SubmittedAt sim.Time
	CompletedAt sim.Time
	// Done reports head-end completion (OnComplete fired).
	Done bool
	// Rejected reports that policing refused the request (OnReject fired).
	Rejected bool
	// Pairs is the request's NumPairs (0 for open-ended requests).
	Pairs int
}

// CircuitMetrics aggregates what one circuit of a scenario did. Counters
// are taken at the circuit's head-end, the same vantage point the paper's
// evaluation measures from; Expired sums both ends.
type CircuitMetrics struct {
	ID   CircuitID
	Src  string
	Dst  string
	Path []string
	// Established reports whether the circuit installed; when false, Err
	// holds the routing/signalling error and all counters stay zero.
	Established bool
	Err         string
	Plan        Plan

	// Delivered counts head-end pair (or measurement) deliveries, with the
	// delivery times in order. With CircuitSpec.RecordFidelity the exact
	// pair fidelity and declared Bell state at each delivery ride along.
	Delivered      int
	DeliveryTimes  []sim.Time
	Fidelities     []float64
	States         []quantum.BellIndex
	EarlyDelivered int
	Expired        int
	Rejected       int
	Requests       []*RequestMetrics

	reqByID       map[RequestID]*RequestMetrics
	pendingFinite int
}

// DeliveredSince counts deliveries at or after from — the steady-state
// window used by latency-versus-throughput scenarios.
func (c *CircuitMetrics) DeliveredSince(from sim.Time) int {
	n := 0
	for _, t := range c.DeliveryTimes {
		if t >= from {
			n++
		}
	}
	return n
}

// EER is the measured entanglement end-to-end rate: deliveries in [from, to]
// per second.
func (c *CircuitMetrics) EER(from, to sim.Time) float64 {
	w := to.Sub(from).Seconds()
	if w <= 0 {
		return 0
	}
	return float64(c.DeliveredSince(from)) / w
}

// Latencies returns the completion latencies (seconds) of finished requests
// submitted at or after from, in submission order.
func (c *CircuitMetrics) Latencies(from sim.Time) []float64 {
	var out []float64
	for _, r := range c.Requests {
		if r.Done && r.SubmittedAt >= from {
			out = append(out, r.CompletedAt.Sub(r.SubmittedAt).Seconds())
		}
	}
	return out
}

// MeanFidelity averages the recorded per-delivery fidelities (0 when the
// scenario did not record them).
func (c *CircuitMetrics) MeanFidelity() float64 {
	var s runner.Stats
	s.Add(c.Fidelities...)
	return s.Mean()
}

// AllComplete reports whether every submitted finite request finished.
func (c *CircuitMetrics) AllComplete() bool {
	if !c.Established {
		return false
	}
	for _, r := range c.Requests {
		if r.Pairs > 0 && !r.Done {
			return false
		}
	}
	return true
}

// request looks up the bookkeeping record for a workload-submitted request.
func (c *CircuitMetrics) request(id RequestID) *RequestMetrics {
	if c.reqByID == nil {
		return nil
	}
	return c.reqByID[id]
}

// Metrics is a scenario run's unified result: per-circuit delivery,
// latency, fidelity and policing counters plus network-wide totals.
type Metrics struct {
	Name string
	// Start is the virtual time traffic opened (after circuit
	// installation); End is where the run stopped. The measurement window
	// for rate helpers is [Start, End].
	Start sim.Time
	End   sim.Time
	// Err is set on replicas that failed to run (RunReplicated keeps going).
	Err string

	Circuits []*CircuitMetrics
	byID     map[CircuitID]*CircuitMetrics

	Nodes             int
	Links             int
	ClassicalMessages uint64
	// NodeStats holds every node's data-plane counters (swaps, discards,
	// expiries) keyed by node ID.
	NodeStats map[string]NodeStats
}

// Circuit returns a circuit's metrics, or nil for unknown IDs.
func (m *Metrics) Circuit(id CircuitID) *CircuitMetrics { return m.byID[id] }

// UnmarshalJSON decodes metrics produced by a worker process (the default
// encoding covers every exported field exactly: all counters are integers
// or float64s, which Go's JSON codec round-trips bit-identically) and
// rebuilds the unexported lookup indexes, so a decoded Metrics answers
// Circuit and request queries like the original. The pendingFinite counter
// is run-time state (only the scenario engine's wait loop reads it) and is
// recomputed from the request records.
func (m *Metrics) UnmarshalJSON(b []byte) error {
	type plain Metrics // shed the method set to avoid recursion
	if err := json.Unmarshal(b, (*plain)(m)); err != nil {
		return err
	}
	m.byID = make(map[CircuitID]*CircuitMetrics, len(m.Circuits))
	for _, cm := range m.Circuits {
		m.byID[cm.ID] = cm
		cm.reqByID = make(map[RequestID]*RequestMetrics, len(cm.Requests))
		cm.pendingFinite = 0
		for _, rm := range cm.Requests {
			cm.reqByID[rm.ID] = rm
			if rm.Pairs > 0 && !rm.Done && !rm.Rejected {
				cm.pendingFinite++
			}
		}
	}
	return nil
}

// TotalDelivered sums deliveries over all circuits.
func (m *Metrics) TotalDelivered() int {
	n := 0
	for _, c := range m.Circuits {
		n += c.Delivered
	}
	return n
}

// AggregateEER is the network-wide delivered pair rate over the run window.
func (m *Metrics) AggregateEER() float64 {
	w := m.End.Sub(m.Start).Seconds()
	if w <= 0 {
		return 0
	}
	return float64(m.TotalDelivered()) / w
}

// waitSatisfied reports whether every listed circuit has no finite request
// still pending — the scenario's early-stop condition.
func (m *Metrics) waitSatisfied(ids []CircuitID) bool {
	for _, id := range ids {
		if c := m.byID[id]; c != nil && c.Established && c.pendingFinite > 0 {
			return false
		}
	}
	return true
}

// MeanCircuitEER averages one circuit's full-window EER across replicas,
// skipping failed replicas — the natural aggregate for RunReplicated.
func MeanCircuitEER(ms []*Metrics, id CircuitID) float64 {
	var s runner.Stats
	for _, m := range ms {
		if m == nil || m.Err != "" {
			continue
		}
		if c := m.Circuit(id); c != nil {
			s.Add(c.EER(m.Start, m.End))
		}
	}
	return s.Mean()
}

// MeanAggregateEER averages the network-wide EER across replicas, skipping
// failed replicas.
func MeanAggregateEER(ms []*Metrics) float64 {
	var s runner.Stats
	for _, m := range ms {
		if m == nil || m.Err != "" {
			continue
		}
		s.Add(m.AggregateEER())
	}
	return s.Mean()
}
