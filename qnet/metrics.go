package qnet

import (
	"encoding/json"

	"qnp/internal/quantum"
	"qnp/internal/runner"
	"qnp/internal/sim"
)

// RequestMetrics records one request submitted through a scenario workload.
type RequestMetrics struct {
	ID          RequestID
	SubmittedAt sim.Time
	CompletedAt sim.Time
	// Done reports head-end completion (OnComplete fired).
	Done bool
	// Rejected reports that policing refused the request (OnReject fired).
	Rejected bool
	// Pairs is the request's NumPairs (0 for open-ended requests).
	Pairs int
}

// CircuitMetrics aggregates what one circuit of a scenario did. Counters
// are taken at the circuit's head-end, the same vantage point the paper's
// evaluation measures from; Expired sums both ends.
type CircuitMetrics struct {
	ID   CircuitID
	Src  string
	Dst  string
	Path []string
	// Established reports whether the circuit installed; when false, Err
	// holds the routing/signalling error and all counters stay zero.
	Established bool
	Err         string
	Plan        Plan

	// Lifetime stamps for churn scenarios. ArrivedAt is when the scenario
	// offered the circuit (for pre-installed circuits, when its installation
	// began); EstablishedAt is when its CONFIRM returned to the head-end;
	// TornDownAt is when it departed (zero = it lived to the end of the
	// run). AdmissionRejected marks arrivals that admission control refused
	// — the circuit never installs, Established stays false, and Err holds
	// the allocation-versus-demand detail.
	ArrivedAt         sim.Time
	EstablishedAt     sim.Time
	TornDownAt        sim.Time
	AdmissionRejected bool

	// Delivered counts head-end pair (or measurement) deliveries, with the
	// delivery times in order. With CircuitSpec.RecordFidelity the exact
	// pair fidelity and declared Bell state at each delivery ride along.
	Delivered      int
	DeliveryTimes  []sim.Time
	Fidelities     []float64
	States         []quantum.BellIndex
	EarlyDelivered int
	Expired        int
	Rejected       int
	Requests       []*RequestMetrics

	reqByID       map[RequestID]*RequestMetrics
	pendingFinite int
	// pendingArrival marks a scheduled (churn) circuit whose arrival has
	// not resolved yet — WaitFor treats it as incomplete.
	pendingArrival bool
}

// Lifetime is the circuit's established lifespan: EstablishedAt to
// TornDownAt, the latter defaulting to end (the run's End) for circuits
// that never departed. Zero for circuits that never established.
func (c *CircuitMetrics) Lifetime(end sim.Time) sim.Duration {
	if !c.Established {
		return 0
	}
	to := c.TornDownAt
	if to == 0 {
		to = end
	}
	return to.Sub(c.EstablishedAt)
}

// DeliveredSince counts deliveries at or after from — the steady-state
// window used by latency-versus-throughput scenarios.
func (c *CircuitMetrics) DeliveredSince(from sim.Time) int {
	n := 0
	for _, t := range c.DeliveryTimes {
		if t >= from {
			n++
		}
	}
	return n
}

// EER is the measured entanglement end-to-end rate: deliveries in [from, to]
// per second.
func (c *CircuitMetrics) EER(from, to sim.Time) float64 {
	w := to.Sub(from).Seconds()
	if w <= 0 {
		return 0
	}
	return float64(c.DeliveredSince(from)) / w
}

// Latencies returns the completion latencies (seconds) of finished requests
// submitted at or after from, in submission order.
func (c *CircuitMetrics) Latencies(from sim.Time) []float64 {
	var out []float64
	for _, r := range c.Requests {
		if r.Done && r.SubmittedAt >= from {
			out = append(out, r.CompletedAt.Sub(r.SubmittedAt).Seconds())
		}
	}
	return out
}

// MeanFidelity averages the recorded per-delivery fidelities (0 when the
// scenario did not record them).
func (c *CircuitMetrics) MeanFidelity() float64 {
	var s runner.Stats
	s.Add(c.Fidelities...)
	return s.Mean()
}

// AllComplete reports whether every submitted finite request finished.
func (c *CircuitMetrics) AllComplete() bool {
	if !c.Established {
		return false
	}
	for _, r := range c.Requests {
		if r.Pairs > 0 && !r.Done {
			return false
		}
	}
	return true
}

// request looks up the bookkeeping record for a workload-submitted request.
func (c *CircuitMetrics) request(id RequestID) *RequestMetrics {
	if c.reqByID == nil {
		return nil
	}
	return c.reqByID[id]
}

// Metrics is a scenario run's unified result: per-circuit delivery,
// latency, fidelity and policing counters plus network-wide totals.
type Metrics struct {
	Name string
	// Start is the virtual time traffic opened (after circuit
	// installation); End is where the run stopped. The measurement window
	// for rate helpers is [Start, End].
	Start sim.Time
	End   sim.Time
	// Err is set on replicas that failed to run (RunReplicated keeps going).
	Err string

	Circuits []*CircuitMetrics
	byID     map[CircuitID]*CircuitMetrics

	// Admission outcomes across circuit arrivals: Admitted counts circuits
	// that established, RejectedAtAdmission those the admission control
	// refused (allocation below their MinEER demand). Circuits that failed
	// for other reasons (no feasible plan) count toward neither.
	Admitted            int
	RejectedAtAdmission int

	Nodes             int
	Links             int
	ClassicalMessages uint64
	// NodeStats holds every node's data-plane counters (swaps, discards,
	// expiries) keyed by node ID.
	NodeStats map[string]NodeStats
}

// Circuit returns a circuit's metrics, or nil for unknown IDs.
func (m *Metrics) Circuit(id CircuitID) *CircuitMetrics { return m.byID[id] }

// UnmarshalJSON decodes metrics produced by a worker process (the default
// encoding covers every exported field exactly: all counters are integers
// or float64s, which Go's JSON codec round-trips bit-identically) and
// rebuilds the unexported lookup indexes, so a decoded Metrics answers
// Circuit and request queries like the original. The pendingFinite counter
// is run-time state (only the scenario engine's wait loop reads it) and is
// recomputed from the request records.
func (m *Metrics) UnmarshalJSON(b []byte) error {
	type plain Metrics // shed the method set to avoid recursion
	if err := json.Unmarshal(b, (*plain)(m)); err != nil {
		return err
	}
	m.byID = make(map[CircuitID]*CircuitMetrics, len(m.Circuits))
	for _, cm := range m.Circuits {
		m.byID[cm.ID] = cm
		cm.reqByID = make(map[RequestID]*RequestMetrics, len(cm.Requests))
		cm.pendingFinite = 0
		for _, rm := range cm.Requests {
			cm.reqByID[rm.ID] = rm
			if rm.Pairs > 0 && !rm.Done && !rm.Rejected {
				cm.pendingFinite++
			}
		}
	}
	return nil
}

// TotalDelivered sums deliveries over all circuits.
func (m *Metrics) TotalDelivered() int {
	n := 0
	for _, c := range m.Circuits {
		n += c.Delivered
	}
	return n
}

// AggregateEER is the network-wide delivered pair rate over the run window.
func (m *Metrics) AggregateEER() float64 {
	w := m.End.Sub(m.Start).Seconds()
	if w <= 0 {
		return 0
	}
	return float64(m.TotalDelivered()) / w
}

// TimeWeightedEER is the delivered pair rate per circuit-second of
// established lifetime: total deliveries divided by the summed lifetimes of
// the circuits that carried them. Under churn this weighs each circuit by
// how long it actually held its links, where AggregateEER (which divides by
// the whole run window) under-reports scenarios whose circuits live
// briefly. With every circuit alive for the full window the two agree up to
// the number of circuits.
func (m *Metrics) TimeWeightedEER() float64 {
	var life float64
	for _, c := range m.Circuits {
		life += c.Lifetime(m.End).Seconds()
	}
	if life <= 0 {
		return 0
	}
	return float64(m.TotalDelivered()) / life
}

// waitSatisfied reports whether every listed circuit has no finite request
// still pending — the scenario's early-stop condition. A scheduled (churn)
// circuit is unsatisfied until its arrival resolves; a departed circuit is
// always satisfied (its unfinished requests died with it).
func (m *Metrics) waitSatisfied(ids []CircuitID) bool {
	for _, id := range ids {
		c := m.byID[id]
		if c == nil {
			continue
		}
		if c.pendingArrival {
			return false
		}
		if c.TornDownAt == 0 && c.Established && c.pendingFinite > 0 {
			return false
		}
	}
	return true
}

// MeanCircuitEER averages one circuit's full-window EER across replicas,
// skipping failed replicas — the natural aggregate for RunReplicated.
func MeanCircuitEER(ms []*Metrics, id CircuitID) float64 {
	var s runner.Stats
	for _, m := range ms {
		if m == nil || m.Err != "" {
			continue
		}
		if c := m.Circuit(id); c != nil {
			s.Add(c.EER(m.Start, m.End))
		}
	}
	return s.Mean()
}

// MeanAggregateEER averages the network-wide EER across replicas, skipping
// failed replicas.
func MeanAggregateEER(ms []*Metrics) float64 {
	var s runner.Stats
	for _, m := range ms {
		if m == nil || m.Err != "" {
			continue
		}
		s.Add(m.AggregateEER())
	}
	return s.Mean()
}
