package experiments

import (
	"encoding/json"
	"fmt"
	"io"

	"qnp/internal/runner"
	"qnp/internal/sim"
	"qnp/internal/stats"
	"qnp/qnet"
)

// CityPoint is one mean-holding-time row of the city study, averaged over
// replicas; the latency percentiles come from the replicas' merged
// streaming aggregates.
type CityPoint struct {
	HoldS    float64 // mean circuit holding time (s)
	Admitted float64 // mean circuits admitted
	Rejected float64 // mean circuits rejected at admission
	Deliv    float64 // mean pairs delivered
	AggEER   float64 // mean network-wide EER (pairs/s)
	TWEER    float64 // mean time-weighted EER (pairs per circuit-second)
	LatP50   float64 // request completion latency percentiles (s),
	LatP95   float64 // from the replica-merged streaming aggregate
	LatP99   float64
	LatN     int64 // completions behind the percentiles
}

// CityData is the city-scale churn study: the first scenario size the
// repository could not run before streaming metrics existed.
type CityData struct {
	Nodes    int
	Links    int
	Arrivals int
	HorizonS float64
	DemandPS float64
	Points   []CityPoint
}

// cityTargetF is the end-to-end fidelity target of every city circuit.
const cityTargetF = 0.85

// cityParams is the wire form of the study's shape.
type cityParams struct {
	Rows, Cols int
	Horizon    sim.Duration
	Holds      []sim.Duration
	Circuits   int
	ReqMean    sim.Duration
}

// cityJob is one cell of the sweep.
type cityJob struct {
	hold sim.Duration
}

// cityResult is one replica's wire-friendly measurement. Lat is the
// replica's merged latency aggregate — constant-size regardless of how many
// requests completed, and mergeable across replicas and shards.
type cityResult struct {
	Admitted  int
	Rejected  int
	Delivered int
	AggEER    float64
	TWEER     float64
	Lat       *stats.Agg
}

// cityScenario is one replica: a Rows×Cols metropolitan grid with Circuits
// circuit arrivals offered over the first 60% of the horizon, exponential
// holding, each demanding a policeable rate under admission control and
// carrying Poisson single-pair requests. MetricsStreaming keeps the
// metrics memory independent of the delivery count — the point of the
// scenario.
func cityScenario(hold sim.Duration, physics qnet.Physics, p cityParams, demand float64) qnet.Scenario {
	cfg := qnet.DefaultConfig()
	cfg.EnforceEER = true
	cfg.MetricsMode = qnet.MetricsStreaming
	cfg.Physics = physics
	return qnet.Scenario{
		Name:     "city",
		Config:   cfg,
		Topology: qnet.GridTopo(p.Rows, p.Cols),
		Circuits: []qnet.CircuitSpec{{
			ID:       "vc",
			Select:   qnet.RandomPairs(p.Circuits),
			Fidelity: cityTargetF,
			Policy:   qnet.CutoffShort,
			Arrival:  qnet.Uniform(0, sim.Duration(float64(p.Horizon)*0.6)),
			Holding:  qnet.Exponential(hold),
			MinEER:   demand,
			Workload: qnet.PoissonKeep{Mean: p.ReqMean, Pairs: 1},
			Optional: true,
		}},
		Horizon: p.Horizon,
	}
}

// cityGrid derives the replica grid from (Options, params) alone, so shard
// workers rebuild it bit-identically.
func cityGrid(o Options, p cityParams) (grid, []cityJob, int, float64) {
	runs := o.Runs
	if runs > 3 {
		runs = 3
	}
	if o.Quick {
		runs = 1
	}
	demand := churnDemand()
	var jobs []cityJob
	for _, hold := range p.Holds {
		for r := 0; r < runs; r++ {
			jobs = append(jobs, cityJob{hold: hold})
		}
	}
	g := grid{n: len(jobs), run: func(i int, seed int64) any {
		return cityRun(seed, o.Physics, jobs[i], p, demand)
	}}
	return g, jobs, runs, demand
}

func init() {
	registerGrid("city", func(o Options, raw json.RawMessage) (grid, error) {
		p, err := decodeParams[cityParams](raw)
		if err != nil {
			return grid{}, err
		}
		g, _, _, _ := cityGrid(o, p)
		return g, nil
	})
}

// cityRun measures one city replica.
func cityRun(seed int64, physics qnet.Physics, j cityJob, p cityParams, demand float64) cityResult {
	sc := cityScenario(j.hold, physics, p, demand)
	sc.Config.Seed = seed
	res, err := sc.Run()
	if err != nil {
		panic(err)
	}
	m := res.Metrics
	return cityResult{
		Admitted:  m.Admitted,
		Rejected:  m.RejectedAtAdmission,
		Delivered: m.TotalDelivered(),
		AggEER:    m.AggregateEER(),
		TWEER:     m.TimeWeightedEER(),
		Lat:       m.LatencySummary(),
	}
}

// City runs the city-scale churn study: a metropolitan grid of repeater
// nodes under thousands of churning circuits, recorded with streaming
// metrics. Not part of -fig all: the default size runs far longer than the
// paper figures and its memory story (constant-size metrics over an
// unbounded delivery stream) is the study itself.
func City(o Options) *CityData {
	p := cityParams{
		Rows: 15, Cols: 15,
		Horizon:  20 * sim.Second,
		Holds:    []sim.Duration{5 * sim.Second / 2, 10 * sim.Second},
		Circuits: 2000,
		ReqMean:  100 * sim.Millisecond,
	}
	if o.Quick {
		p = cityParams{
			Rows: 10, Cols: 10,
			Horizon:  6 * sim.Second,
			Holds:    []sim.Duration{5 * sim.Second / 2},
			Circuits: 300,
			ReqMean:  100 * sim.Millisecond,
		}
	}
	return city(o, p)
}

// city is the parameterised core.
func city(o Options, p cityParams) *CityData {
	g, jobs, runs, demand := cityGrid(o, p)
	results := gridMap[cityResult](o, "city", p, g)
	d := &CityData{
		Nodes:    p.Rows * p.Cols,
		Links:    p.Rows*(p.Cols-1) + p.Cols*(p.Rows-1),
		Arrivals: p.Circuits,
		HorizonS: p.Horizon.Seconds(),
		DemandPS: demand,
	}
	for i := 0; i < len(jobs); i += runs {
		j := jobs[i]
		var adm, rej, del, agg, tw runner.Stats
		lat := new(stats.Agg)
		for _, r := range results[i : i+runs] {
			adm.Add(float64(r.Admitted))
			rej.Add(float64(r.Rejected))
			del.Add(float64(r.Delivered))
			agg.Add(r.AggEER)
			tw.Add(r.TWEER)
			lat.Merge(r.Lat)
		}
		d.Points = append(d.Points, CityPoint{
			HoldS:    j.hold.Seconds(),
			Admitted: adm.Mean(), Rejected: rej.Mean(), Deliv: del.Mean(),
			AggEER: agg.Mean(), TWEER: tw.Mean(),
			LatP50: lat.Percentile(0.50),
			LatP95: lat.Percentile(0.95),
			LatP99: lat.Percentile(0.99),
			LatN:   lat.Count,
		})
	}
	return d
}

// Print writes the city table.
func (d *CityData) Print(w io.Writer) {
	header(w, fmt.Sprintf("City scale — %d-node grid (%d links), %d circuit arrivals/run, %.2f pairs/s demand, %.0f s horizon, streaming metrics",
		d.Nodes, d.Links, d.Arrivals, d.DemandPS, d.HorizonS))
	fmt.Fprintf(w, "%7s %9s %9s %10s %8s %8s %9s %9s %9s %9s\n",
		"hold/s", "admitted", "rejected", "delivered", "aggEER", "tw-EER", "lat-p50", "lat-p95", "lat-p99", "requests")
	for _, p := range d.Points {
		fmt.Fprintf(w, "%7.1f %9.1f %9.1f %10.1f %8.1f %8.2f %8.1fms %8.1fms %8.1fms %9d\n",
			p.HoldS, p.Admitted, p.Rejected, p.Deliv, p.AggEER, p.TWEER,
			1e3*p.LatP50, 1e3*p.LatP95, 1e3*p.LatP99, p.LatN)
	}
	fmt.Fprintln(w, "latency percentiles come from per-circuit streaming aggregates merged across")
	fmt.Fprintln(w, "circuits and replicas; metrics memory is independent of the delivery count")
}
