package experiments

import (
	"encoding/json"
	"fmt"
	"io"

	"qnp/internal/runner"
	"qnp/internal/sim"
	"qnp/qnet"
)

// The multipath placement study: the same offered load, admitted under
// every combination of k-shortest-path candidate count (k ∈ {1,2,3}) and
// allocation policy (count-split vs model-weighted). k=1 count-split is
// the legacy controller; k>1 lets a MinEER demand re-route around a loaded
// shortest path, and model-weighted divides link budget by each member's
// modeled end-to-end deliverable rate instead of by head count.

// MultipathPoint is one (topology, k, policy) cell, averaged over replicas.
type MultipathPoint struct {
	Topology string
	K        int     // candidate paths scored per circuit
	Model    bool    // model-weighted allocation instead of count-split
	Offered  int     // circuits offered per run
	Admitted float64 // mean circuits admitted
	Rejected float64 // mean circuits rejected at admission
	Rerouted float64 // mean circuits placed off their shortest path
	AggEER   float64 // mean aggregate delivered pairs/s across the network
}

// MultipathData is the placement study.
type MultipathData struct {
	Points []MultipathPoint
	// GridDemandPS and WaxmanDemandPS are the per-circuit MinEER demands of
	// the two testbeds (fractions of the three-hop reference allocation).
	GridDemandPS   float64
	WaxmanDemandPS float64
	HorizonS       float64
}

// multipathTargetF is the end-to-end fidelity target of every circuit.
const multipathTargetF = 0.8

// multipathParams is the wire form of the sweep's shape.
type multipathParams struct {
	Horizon sim.Duration
	Pairs   int
}

// multipathJob is one cell of the sweep.
type multipathJob struct {
	topo  string
	k     int
	model bool
}

// multipathResult is one replica's wire-friendly measurement.
type multipathResult struct {
	Admitted int
	Rejected int
	Rerouted int
	AggEER   float64
}

// multipathRef probes the uncontended count-split allocation of a
// three-hop circuit at the study's fidelity target — the reference rate
// the per-testbed demands are fractions of. Deterministic — parent and
// shard workers compute the identical value (the probe depends only on
// the uniform link hardware).
func multipathRef() float64 {
	cfg := qnet.DefaultConfig()
	cfg.EnforceEER = true
	net := qnet.Dumbbell(cfg)
	dec, _, err := net.Controller.Place(qnet.PlacementRequest{
		Src: "A0", Dst: "B0", Fidelity: multipathTargetF, Cutoff: qnet.CutoffShort, Probe: true,
	})
	if err != nil {
		panic(err)
	}
	return dec.Plan.MaxEER
}

// Per-testbed demand as a fraction of the three-hop reference allocation.
// The grid demand sits in the band where a three-hop circuit needs every
// link of its path to itself (a second member's split falls short) while
// shorter circuits tolerate sharing — so the crafted load saturates
// shortest-path corridors and recovery must re-route. The Waxman demand is
// lower: random loads on random graphs stack several circuits per link,
// and the demand is set so only deep stacks overflow.
const (
	gridDemandFrac   = 0.6
	waxmanDemandFrac = 0.3
)

// gridLoad is the crafted 16-circuit offered load for the 4×4 grid (nodes
// n<y·4+x>): three L-shaped 3-hop "backbone" circuits through the left
// block, seven 3-hop contenders that collide with them (some with a
// loopless detour through the free periphery, some without), and six
// 1-hop fills. Admission is sequential in this order, so the outcome is
// identical in every replica: k=1 admits 10 (the contenders' shortest
// paths all cross held links), k=2 re-routes one contender onto its
// periphery detour, k=3 a second — admitted rises 10 → 11 → 12 with k.
var gridLoad = [][2]string{
	{"n0", "n6"}, {"n4", "n10"}, {"n8", "n14"},
	{"n2", "n11"}, {"n7", "n14"}, {"n6", "n15"}, {"n9", "n15"},
	{"n4", "n13"}, {"n5", "n11"}, {"n0", "n9"},
	{"n0", "n4"}, {"n1", "n5"}, {"n12", "n13"},
	{"n5", "n6"}, {"n8", "n9"}, {"n10", "n14"},
}

// multipathScenario is one replica's declarative scenario: the offered
// load pre-installed in spec order (sequential admission), each circuit
// demanding the testbed's MinEER under EnforceEER with the cell's
// placement parameters, then saturated by ContinuousKeep so delivered
// throughput reflects the placements. The grid offers the crafted
// gridLoad; the (seed-dependent) Waxman graph offers random pairs.
func multipathScenario(j multipathJob, physics qnet.Physics, p multipathParams, ref float64) qnet.Scenario {
	cfg := qnet.DefaultConfig()
	cfg.EnforceEER = true
	cfg.Physics = physics
	if j.model {
		cfg.Alloc = qnet.AllocModelWeighted
	}
	base := qnet.CircuitSpec{
		Fidelity:   multipathTargetF,
		Policy:     qnet.CutoffShort,
		Candidates: j.k,
		Workload:   qnet.ContinuousKeep{},
		Optional:   true,
	}
	var ts qnet.TopologySpec
	var circuits []qnet.CircuitSpec
	if j.topo == "grid-4x4" {
		ts = qnet.GridTopo(4, 4)
		for i, pair := range gridLoad {
			c := base
			c.ID = qnet.CircuitID(fmt.Sprintf("c%d", i))
			c.Src, c.Dst = pair[0], pair[1]
			c.MinEER = gridDemandFrac * ref
			circuits = append(circuits, c)
		}
	} else {
		// Denser than the diversity figure's Waxman testbed (23 links on
		// 12 nodes vs 14): placement needs alternate routes to exist.
		ts = qnet.WaxmanTopo(12, 0.8, 0.5)
		c := base
		c.ID = "vc"
		c.Select = qnet.RandomPairs(p.Pairs)
		c.MinEER = waxmanDemandFrac * ref
		circuits = append(circuits, c)
	}
	return qnet.Scenario{
		Name:     fmt.Sprintf("multipath-%s-k%d", j.topo, j.k),
		Config:   cfg,
		Topology: ts,
		Circuits: circuits,
		Horizon:  p.Horizon,
	}
}

// multipathGrid derives the replica grid from (Options, params) alone, so
// shard workers rebuild it bit-identically.
func multipathGrid(o Options, p multipathParams) (grid, []multipathJob, int, float64) {
	runs := o.Runs
	if runs > 3 {
		runs = 3
	}
	if o.Quick {
		runs = 1
	}
	ref := multipathRef()
	var jobs []multipathJob
	for _, topo := range []string{"grid-4x4", "waxman-12"} {
		for _, k := range []int{1, 2, 3} {
			for _, model := range []bool{false, true} {
				for r := 0; r < runs; r++ {
					jobs = append(jobs, multipathJob{topo: topo, k: k, model: model})
				}
			}
		}
	}
	// Every (k, policy) cell replays the same replica seeds, so all cells
	// see the identical offered load and differ only in placement policy —
	// a paired comparison, not independent draws.
	g := grid{n: len(jobs), run: func(i int, _ int64) any {
		return multipathRun(o.Seed+int64(i%runs), o.Physics, jobs[i], p, ref)
	}}
	return g, jobs, runs, ref
}

func init() {
	registerGrid("multipath", func(o Options, raw json.RawMessage) (grid, error) {
		p, err := decodeParams[multipathParams](raw)
		if err != nil {
			return grid{}, err
		}
		g, _, _, _ := multipathGrid(o, p)
		return g, nil
	})
}

// multipathRun measures one placement replica.
func multipathRun(seed int64, physics qnet.Physics, j multipathJob, p multipathParams, ref float64) multipathResult {
	sc := multipathScenario(j, physics, p, ref)
	sc.Config.Seed = seed
	res, err := sc.Run()
	if err != nil {
		panic(err)
	}
	m := res.Metrics
	out := multipathResult{
		Admitted: m.Admitted,
		Rejected: m.RejectedAtAdmission,
		AggEER:   m.AggregateEER(),
	}
	for _, cm := range m.Circuits {
		if cm.Established && cm.CandidateIndex > 0 {
			out.Rerouted++
		}
	}
	return out
}

// Multipath runs the placement study on the grid and Waxman testbeds.
func Multipath(o Options) *MultipathData {
	horizon, pairs := 10*sim.Second, 16
	if o.Quick {
		horizon = 3 * sim.Second
	}
	return multipath(o, multipathParams{Horizon: horizon, Pairs: pairs})
}

// multipath is the parameterised core.
func multipath(o Options, p multipathParams) *MultipathData {
	g, jobs, runs, ref := multipathGrid(o, p)
	results := gridMap[multipathResult](o, "multipath", p, g)
	d := &MultipathData{
		GridDemandPS:   gridDemandFrac * ref,
		WaxmanDemandPS: waxmanDemandFrac * ref,
		HorizonS:       p.Horizon.Seconds(),
	}
	for i := 0; i < len(jobs); i += runs {
		j := jobs[i]
		offered := len(gridLoad)
		if j.topo != "grid-4x4" {
			offered = p.Pairs
		}
		var adm, rej, rer, agg runner.Stats
		for _, r := range results[i : i+runs] {
			adm.Add(float64(r.Admitted))
			rej.Add(float64(r.Rejected))
			rer.Add(float64(r.Rerouted))
			agg.Add(r.AggEER)
		}
		d.Points = append(d.Points, MultipathPoint{
			Topology: j.topo, K: j.k, Model: j.model, Offered: offered,
			Admitted: adm.Mean(), Rejected: rej.Mean(), Rerouted: rer.Mean(), AggEER: agg.Mean(),
		})
	}
	return d
}

// Print writes the multipath placement table.
func (d *MultipathData) Print(w io.Writer) {
	header(w, fmt.Sprintf("Multipath placement — per-circuit demand %.1f (grid) / %.1f (waxman) pairs/s, %.0f s horizon",
		d.GridDemandPS, d.WaxmanDemandPS, d.HorizonS))
	fmt.Fprintf(w, "%10s %3s %9s %8s %9s %9s %9s %8s\n",
		"topology", "k", "alloc", "offered", "admitted", "rejected", "rerouted", "agg-EER")
	for _, p := range d.Points {
		alloc := "count"
		if p.Model {
			alloc = "model"
		}
		fmt.Fprintf(w, "%10s %3d %9s %8d %9.1f %9.1f %9.1f %8.2f\n",
			p.Topology, p.K, alloc, p.Offered, p.Admitted, p.Rejected, p.Rerouted, p.AggEER)
	}
	fmt.Fprintln(w, "k>1 scores loopless candidate paths and re-routes demands the shortest path")
	fmt.Fprintln(w, "cannot absorb; model-weighted divides link budget by each circuit's modeled")
	fmt.Fprintln(w, "end-to-end deliverable rate instead of by contention head count")
}
