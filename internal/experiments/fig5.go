package experiments

import (
	"encoding/json"
	"fmt"
	"io"

	"qnp/internal/device"
	"qnp/internal/hardware"
	"qnp/internal/linklayer"
	"qnp/internal/runner"
	"qnp/internal/sim"
)

// Fig5Data is the cumulative distribution of link-pair generation time for
// fidelity-0.95 pairs over a 2 m fibre (paper Fig. 5: mean ≈10 ms, 95% of
// pairs within ≈30 ms).
type Fig5Data struct {
	Samples  []float64 // generation times in seconds, sorted
	MeanMS   float64
	P95MS    float64
	Fidelity float64

	agg runner.Stats
}

// fig5Grid derives the figure's replica grid from Options alone: o.Runs
// independent link-layer sample batches.
func fig5Grid(o Options) grid {
	want := 2000
	if o.Quick {
		want = 200
	}
	perRun := want / o.Runs
	if perRun < 10 {
		perRun = 10
	}
	return grid{n: o.Runs, run: func(_ int, seed int64) any {
		return fig5Run(seed, perRun)
	}}
}

func init() {
	registerGrid("fig5", func(o Options, _ json.RawMessage) (grid, error) {
		return fig5Grid(o), nil
	})
}

// Fig5 measures the link layer's generation time distribution directly —
// a single link asked for F=0.95 pairs, the paper's Fig. 5 setup — through
// the real engine (geometric attempt sampling on the calibrated hardware
// model), not a closed form.
func Fig5(o Options) *Fig5Data {
	runs := gridMap[[]float64](o, "fig5", nil, fig5Grid(o))
	d := &Fig5Data{Fidelity: 0.95}
	for _, r := range runs {
		d.agg.Add(r...)
	}
	d.Samples = d.agg.Sorted()
	d.MeanMS = d.agg.Mean() * 1e3
	d.P95MS = d.agg.Percentile(0.95) * 1e3
	return d
}

// fig5Run is one replica: a fresh link engine generating perRun pairs.
func fig5Run(seed int64, perRun int) []float64 {
	s := sim.New(seed)
	params := hardware.Simulation()
	a := device.New(s, "a", params)
	b := device.New(s, "b", params)
	name := linklayer.LinkName("a", "b")
	a.AddCommQubits(name, 2)
	b.AddCommQubits(name, 2)
	eng := linklayer.NewEngine(s, name, hardware.LabLink(), a, b)

	var times []float64
	last := s.Now()
	free := func(d linklayer.Delivery, dev *device.Device) {
		if side := d.Pair.LocalSide(dev.ID()); side >= 0 {
			dev.Free(d.Pair.Half(side))
		}
	}
	if err := eng.Register("a", "f5", 0.95, 10, func(d linklayer.Delivery) {
		times = append(times, d.Pair.CreatedAt().Sub(last).Seconds())
		last = d.Pair.CreatedAt()
		free(d, a)
	}); err != nil {
		panic(err)
	}
	if err := eng.Register("b", "f5", 0.95, 10, func(d linklayer.Delivery) { free(d, b) }); err != nil {
		panic(err)
	}
	for len(times) < perRun {
		if !s.Step() {
			break
		}
	}
	return times
}

// CDF evaluates the empirical distribution at time t (seconds).
func (d *Fig5Data) CDF(t float64) float64 { return d.agg.CDF(t) }

// Print writes the CDF series the paper plots.
func (d *Fig5Data) Print(w io.Writer) {
	header(w, "Fig. 5 — link-pair generation time CDF (F=0.95, 2 m fibre)")
	fmt.Fprintf(w, "samples=%d  mean=%.1f ms (paper ≈10 ms)  p95=%.1f ms (paper ≈30 ms)\n",
		len(d.Samples), d.MeanMS, d.P95MS)
	fmt.Fprintf(w, "%8s  %s\n", "t (ms)", "fraction generated")
	for _, ms := range []float64{1, 2, 5, 10, 15, 20, 25, 30, 40, 50, 75, 100} {
		fmt.Fprintf(w, "%8.0f  %.3f\n", ms, d.CDF(ms/1e3))
	}
}
