package experiments

import (
	"encoding/json"
	"fmt"
	"io"

	"qnp/internal/baseline"
	"qnp/internal/sim"
	"qnp/qnet"
)

// Fig10ABPoint is one marker of Fig. 10(a,b): the goodput of one circuit at
// one memory lifetime under one protocol.
type Fig10ABPoint struct {
	T2Star   float64
	Fidelity float64 // circuit's end-to-end target (0.9 for a, 0.8 for b)
	Oracle   bool    // true = baseline (no cutoff, oracle discard at ends)
	PairsPS  float64
	// RawPS carries the unfiltered delivery rate for runs that also track
	// goodput (Fig. 10(c)).
	RawPS    float64
	Feasible bool // routing found a plan at this lifetime
}

// Fig10ABData is the robustness-to-decoherence study.
type Fig10ABData struct {
	Points   []Fig10ABPoint
	HorizonS float64
}

type fig10Job struct {
	oracle bool
	t2     float64
}

// fig10ABGrid derives the figure's replica grid from Options alone.
func fig10ABGrid(o Options) (grid, []fig10Job, int, sim.Duration) {
	horizon := 20 * sim.Second
	lifetimes := []float64{0.2, 0.5, 1, 1.6, 3, 6, 15, 60}
	runs := o.Runs
	if runs > 3 {
		runs = 3
	}
	if o.Quick {
		horizon = 5 * sim.Second
		lifetimes = []float64{0.5, 1.6, 60}
		runs = 1
	}
	var jobs []fig10Job
	for _, oracle := range []bool{false, true} {
		for _, t2 := range lifetimes {
			for r := 0; r < runs; r++ {
				jobs = append(jobs, fig10Job{oracle, t2})
			}
		}
	}
	g := grid{n: len(jobs), run: func(i int, seed int64) any {
		j := jobs[i]
		return fig10Run(seed, j.t2, j.oracle, horizon, 0)
	}}
	return g, jobs, runs, horizon
}

func init() {
	registerGrid("fig10ab", func(o Options, _ json.RawMessage) (grid, error) {
		g, _, _, _ := fig10ABGrid(o)
		return g, nil
	})
}

// Fig10AB sweeps the electron memory lifetime (T2*) for two competing
// circuits — A0-B0 at F=0.9 and A1-B1 at F=0.8 — comparing the QNP's cutoff
// against the §5.2 baseline that discards below-threshold end-to-end pairs
// with a simulation oracle.
func Fig10AB(o Options) *Fig10ABData {
	g, jobs, runs, horizon := fig10ABGrid(o)
	d := &Fig10ABData{HorizonS: horizon.Seconds()}
	pts := gridMap[[2]Fig10ABPoint](o, "fig10ab", nil, g)
	for k := 0; k < len(jobs); k += runs {
		j := jobs[k]
		for i, f := range []float64{0.9, 0.8} {
			var tp []float64
			feasible := false
			for _, p := range pts[k : k+runs] {
				tp = append(tp, p[i].PairsPS)
				feasible = feasible || p[i].Feasible
			}
			d.Points = append(d.Points, Fig10ABPoint{
				T2Star: j.t2, Fidelity: f, Oracle: j.oracle,
				PairsPS: mean(tp), Feasible: feasible,
			})
		}
	}
	return d
}

// fig10Run runs the two competing circuits for the horizon and returns the
// goodput of (A0-B0 @0.9, A1-B1 @0.8). With oracle=true the circuits run
// without cutoffs and deliveries are filtered by exact fidelity; otherwise
// the cutoff protocol's deliveries count directly. msgDelay adds the
// Fig. 10(c) per-hop processing delay.
func fig10Run(seed int64, t2 float64, oracle bool, horizon, msgDelay sim.Duration) [2]Fig10ABPoint {
	cfg := qnet.DefaultConfig()
	cfg.Seed = seed
	cfg.Params.Electron.T2 = t2

	policy := qnet.CutoffLong
	if oracle {
		policy = qnet.CutoffNone
	}
	targets := []struct {
		src, dst string
		f        float64
	}{{"A0", "B0", 0.9}, {"A1", "B1", 0.8}}
	specs := make([]qnet.CircuitSpec, len(targets))
	for i, tgt := range targets {
		specs[i] = qnet.CircuitSpec{
			ID: qnet.CircuitID(fmt.Sprintf("c%d", i)), Src: tgt.src, Dst: tgt.dst,
			Fidelity: tgt.f, Policy: policy,
			Workload: qnet.ContinuousKeep{ID: "long"},
			// Routing may not meet the target at this lifetime: record the
			// infeasibility (zero goodput) instead of failing the run.
			Optional: true,
			// The oracle baseline consults exact delivery fidelities.
			RecordFidelity: oracle,
		}
	}
	res, err := qnet.Scenario{
		Config:   cfg,
		Topology: qnet.DumbbellTopo(),
		Circuits: specs,
		Horizon:  horizon,
		// Circuits come up one at a time, the first already generating while
		// the second installs — the paper's §5.2 arrangement. The delay knob
		// applies to QNP data plane messages only: circuits are installed
		// undelayed (the paper delays "any QNP message", not the control
		// plane's one-time setup).
		Sequential:      true,
		ProcessingDelay: msgDelay,
	}.Run()
	if err != nil {
		panic(err)
	}
	var out [2]Fig10ABPoint
	for i, tgt := range targets {
		cm := res.Metrics.Circuit(qnet.CircuitID(fmt.Sprintf("c%d", i)))
		if !cm.Established {
			continue
		}
		out[i].Feasible = true
		count := cm.Delivered
		if oracle {
			filter := &baseline.Filter{Threshold: tgt.f}
			count = 0
			for _, f := range cm.Fidelities {
				if filter.AcceptFidelity(f) {
					count++
				}
			}
		}
		out[i].PairsPS = float64(count) / horizon.Seconds()
	}
	return out
}

// Print writes panels (a) and (b).
func (d *Fig10ABData) Print(w io.Writer) {
	header(w, fmt.Sprintf("Fig. 10(a,b) — goodput vs memory lifetime (%.0f s runs)", d.HorizonS))
	for _, f := range []float64{0.9, 0.8} {
		fmt.Fprintf(w, "\npanel F=%.1f circuit\n%10s %16s %18s\n", f, "T2* (s)", "cutoff (pairs/s)", "oracle (pairs/s)")
		seen := map[float64]bool{}
		for _, p := range d.Points {
			if p.Fidelity != f || seen[p.T2Star] {
				continue
			}
			seen[p.T2Star] = true
			var cut, orc float64
			for _, q := range d.Points {
				if q.Fidelity == f && q.T2Star == p.T2Star {
					if q.Oracle {
						orc = q.PairsPS
					} else {
						cut = q.PairsPS
					}
				}
			}
			fmt.Fprintf(w, "%10.2f %16.2f %18.2f\n", p.T2Star, cut, orc)
		}
	}
}

// Fig10CPoint is one marker of Fig. 10(c).
type Fig10CPoint struct {
	DelayMS  float64
	Fidelity float64
	// RawPS counts all delivered pairs; the knee appears when the TRACK
	// round trip (which parks end-node qubits) approaches the cutoff.
	RawPS float64
	// GoodPS counts only pairs whose exact fidelity at delivery still meets
	// the circuit threshold — "the delivered pairs have insufficient
	// fidelity" beyond the cutoff.
	GoodPS float64
}

// Fig10CData is the classical-message-delay study.
type Fig10CData struct {
	Points   []Fig10CPoint
	CutoffMS float64
}

// fig10CGrid derives the figure's replica grid from Options alone.
func fig10CGrid(o Options) (grid, []float64, int) {
	horizon := 20 * sim.Second
	delays := []float64{0, 1, 2, 4, 6, 9, 12, 16, 24}
	runs := o.Runs
	if runs > 3 {
		runs = 3
	}
	if o.Quick {
		horizon = 5 * sim.Second
		delays = []float64{0, 6, 16}
		runs = 1
	}
	var jobs []float64
	for _, ms := range delays {
		for r := 0; r < runs; r++ {
			jobs = append(jobs, ms)
		}
	}
	g := grid{n: len(jobs), run: func(i int, seed int64) any {
		return fig10GoodputRun(seed, 1.6, sim.DurationFromSeconds(jobs[i]/1e3), horizon)
	}}
	return g, jobs, runs
}

func init() {
	registerGrid("fig10c", func(o Options, _ json.RawMessage) (grid, error) {
		g, _, _ := fig10CGrid(o)
		return g, nil
	})
}

// Fig10C sweeps the per-hop classical processing delay at a fixed memory
// lifetime of ≈1.6 s and plots goodput: pairs whose exact fidelity at
// delivery still meets the circuit's threshold. Quantum operations never
// block on control messages, so goodput holds until the delay approaches
// the cutoff.
func Fig10C(o Options) *Fig10CData {
	g, jobs, runs := fig10CGrid(o)
	d := &Fig10CData{}
	// Report the cutoff value the routing controller picks at this
	// lifetime (the paper's dashed vertical line).
	{
		cfg := qnet.DefaultConfig()
		cfg.Params.Electron.T2 = 1.6
		net := qnet.Dumbbell(cfg)
		if vc, err := net.Establish("probe", "A0", "B0", 0.9, nil); err == nil {
			d.CutoffMS = vc.Plan.Cutoff.Milliseconds()
		}
	}
	pts := gridMap[[2]Fig10ABPoint](o, "fig10c", nil, g)
	for k := 0; k < len(jobs); k += runs {
		ms := jobs[k]
		for i, f := range []float64{0.9, 0.8} {
			var raw, good []float64
			for _, p := range pts[k : k+runs] {
				raw = append(raw, p[i].RawPS)
				good = append(good, p[i].PairsPS)
			}
			d.Points = append(d.Points, Fig10CPoint{DelayMS: ms, Fidelity: f, RawPS: mean(raw), GoodPS: mean(good)})
		}
	}
	return d
}

// fig10GoodputRun is the cutoff protocol with an oracle *readout* (not
// discard): delivered pairs only count when their exact fidelity meets the
// threshold, which is what "delivered pairs have insufficient fidelity"
// plots in the paper.
func fig10GoodputRun(seed int64, t2 float64, msgDelay, horizon sim.Duration) [2]Fig10ABPoint {
	cfg := qnet.DefaultConfig()
	cfg.Seed = seed
	cfg.Params.Electron.T2 = t2
	targets := []struct {
		src, dst string
		f        float64
	}{{"A0", "B0", 0.9}, {"A1", "B1", 0.8}}
	specs := make([]qnet.CircuitSpec, len(targets))
	for i, tgt := range targets {
		specs[i] = qnet.CircuitSpec{
			ID: qnet.CircuitID(fmt.Sprintf("c%d", i)), Src: tgt.src, Dst: tgt.dst,
			Fidelity: tgt.f, Policy: qnet.CutoffLong,
			Workload:       qnet.ContinuousKeep{ID: "long"},
			Optional:       true,
			RecordFidelity: true,
		}
	}
	res, err := qnet.Scenario{
		Config:          cfg,
		Topology:        qnet.DumbbellTopo(),
		Circuits:        specs,
		Horizon:         horizon,
		Sequential:      true,
		ProcessingDelay: msgDelay,
	}.Run()
	if err != nil {
		panic(err)
	}
	var out [2]Fig10ABPoint
	for i, tgt := range targets {
		cm := res.Metrics.Circuit(qnet.CircuitID(fmt.Sprintf("c%d", i)))
		if !cm.Established {
			continue
		}
		out[i].Feasible = true
		good := 0
		for _, f := range cm.Fidelities {
			if f >= tgt.f {
				good++
			}
		}
		out[i].PairsPS = float64(good) / horizon.Seconds()
		out[i].RawPS = float64(cm.Delivered) / horizon.Seconds()
	}
	return out
}

// Print writes panel (c).
func (d *Fig10CData) Print(w io.Writer) {
	header(w, "Fig. 10(c) — throughput vs classical message delay (T2*≈1.6 s)")
	fmt.Fprintf(w, "routing cutoff at this lifetime ≈ %.1f ms (paper's dashed line)\n", d.CutoffMS)
	fmt.Fprintf(w, "%12s %13s %13s %13s %13s\n", "delay (ms)",
		"F=0.9 raw/s", "F=0.9 good/s", "F=0.8 raw/s", "F=0.8 good/s")
	seen := map[float64]bool{}
	for _, p := range d.Points {
		if seen[p.DelayMS] {
			continue
		}
		seen[p.DelayMS] = true
		var r9, g9, r8, g8 float64
		for _, q := range d.Points {
			if q.DelayMS == p.DelayMS {
				if q.Fidelity == 0.9 {
					r9, g9 = q.RawPS, q.GoodPS
				} else {
					r8, g8 = q.RawPS, q.GoodPS
				}
			}
		}
		fmt.Fprintf(w, "%12.1f %13.2f %13.2f %13.2f %13.2f\n", p.DelayMS, r9, g9, r8, g8)
	}
}
