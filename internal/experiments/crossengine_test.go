package experiments

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"testing"

	"qnp/internal/runner"
	"qnp/internal/sim"
	"qnp/qnet"
)

// The Werner scalar engine is wired so that it consumes the same RNG
// streams in the same draw order as the exact density-matrix engine, and
// fidelity readout never feeds back into protocol timing. Both facts
// together make the validation set's event timelines — and therefore every
// counter-and-latency figure — identical between engines; only the oracle
// fidelity differs, and there only by the re-twirl approximation. These
// tests are the CI gate for that contract.

// wernerOpts is QuickOptions on the Werner engine.
func wernerOpts() Options {
	o := QuickOptions()
	o.Physics = qnet.PhysicsWerner
	return o
}

// TestCrossEngineValidationGrids runs the validation-set grids (fig9, eer,
// churn) under both physics engines and demands byte-identical rendered
// aggregates. The issue tolerance is "EER within 2%"; because the engines
// share timelines the achieved agreement is exact, which this pins down so
// a draw-order regression in either engine fails loudly instead of drifting
// inside a tolerance band.
func TestCrossEngineValidationGrids(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		// Trimmed single replicas of each run function.
		seed := runner.DeriveSeed(1, 0)
		fe := fig9Run(seed, qnet.PhysicsExact, true, 0.3, 10*sim.Second, 6*sim.Second)
		fw := fig9Run(seed, qnet.PhysicsWerner, true, 0.3, 10*sim.Second, 6*sim.Second)
		if fe != fw {
			t.Errorf("fig9 point diverged: exact %+v werner %+v", fe, fw)
		}
		alloc := eerAllocation()
		ee := eerRun(seed, qnet.PhysicsExact, eerJob{requests: 2}, alloc, 4*sim.Second)
		ew := eerRun(seed, qnet.PhysicsWerner, eerJob{requests: 2}, alloc, 4*sim.Second)
		if ee != ew {
			t.Errorf("eer point diverged: exact %+v werner %+v", ee, ew)
		}
		p := churnParams{Horizon: 2 * sim.Second, Holds: []sim.Duration{sim.Second}, Circuits: 4}
		ce := churnRun(seed, qnet.PhysicsExact, churnJob{topo: "dumbbell", hold: sim.Second}, p, churnDemand())
		cw := churnRun(seed, qnet.PhysicsWerner, churnJob{topo: "dumbbell", hold: sim.Second}, p, churnDemand())
		if ce != cw {
			t.Errorf("churn point diverged: exact %+v werner %+v", ce, cw)
		}
		return
	}
	render := func(o Options) string {
		var buf bytes.Buffer
		Fig9(o).Print(&buf)
		EERSaturation(o).Print(&buf)
		Churn(o).Print(&buf)
		return buf.String()
	}
	exact := render(QuickOptions())
	werner := render(wernerOpts())
	if exact != werner {
		t.Fatalf("validation grids diverged between engines:\n--- exact ---\n%s\n--- werner ---\n%s", exact, werner)
	}
}

// TestCrossEngineCityQuick extends the timeline-identity gate to the
// city-scale streaming scenario (admission churn on a 10×10 grid).
func TestCrossEngineCityQuick(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("city quick is too heavy for -short")
	}
	render := func(o Options) string {
		var buf bytes.Buffer
		City(o).Print(&buf)
		return buf.String()
	}
	exact := render(QuickOptions())
	werner := render(wernerOpts())
	if exact != werner {
		t.Fatalf("city quick diverged between engines:\n--- exact ---\n%s\n--- werner ---\n%s", exact, werner)
	}
}

// fidelityProbe delivers recorded-fidelity pairs over a k-node chain (k−2
// swaps each) at the given end-to-end fidelity target and returns (mean
// oracle fidelity, deliveries).
func fidelityProbe(t *testing.T, physics qnet.Physics, k int, target float64, seed int64) (float64, int) {
	t.Helper()
	cfg := qnet.DefaultConfig()
	cfg.Seed = seed
	cfg.Physics = physics
	res, err := qnet.Scenario{
		Name:     "crossengine-fidelity",
		Config:   cfg,
		Topology: qnet.ChainTopo(k),
		Circuits: []qnet.CircuitSpec{{
			ID: "f", Src: "n0", Dst: fmt.Sprintf("n%d", k-1),
			Fidelity: target, Policy: qnet.CutoffShort,
			Workload:       qnet.IntervalKeep{Interval: 300 * sim.Millisecond, Pairs: 2},
			RecordFidelity: true,
		}},
		Horizon: 8 * sim.Second,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	cm := res.Metrics.Circuit("f")
	return cm.MeanFidelity(), cm.Delivered
}

// TestCrossEngineMeanFidelity is the accuracy half of the gate. The Werner
// engine is lossless on swap-free paths — link states re-twirled at
// generation carry their fidelity exactly through decoherence and readout —
// so chain-2 must agree to float precision. Across swaps it is an
// approximation: link states keep dephasing error inside the Ψ subspace
// and bright-state error inside the Φ subspace, while the single scalar
// spreads both uniformly, so post-swap fidelity picks up a declared-class
// systematic that grows as the link operating point degrades. Empirically
// (four seeds, one- and two-swap chains) the mean delivered fidelity
// tracks the exact engine within 1e-3 for end-to-end targets of 0.90 and
// up, and within 2e-3 at the paper's 0.85 target; the bands below pin
// those measurements so a model regression fails loudly. The README's
// "Physics engines" section documents the envelope.
func TestCrossEngineMeanFidelity(t *testing.T) {
	t.Parallel()
	seeds := []int64{1, 7, 13, 42}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, tc := range []struct {
		k      int
		target float64
		tol    float64
	}{
		{2, 0.85, 1e-9}, // swap-free: lossless
		{3, 0.85, 2e-3}, // one swap at the paper's operating point
		{4, 0.85, 2e-3}, // two swaps at the paper's operating point
		{3, 0.90, 1e-3},
		{4, 0.90, 1e-3},
		{3, 0.95, 1e-3},
		{4, 0.95, 1e-3},
	} {
		for _, seed := range seeds {
			fe, ne := fidelityProbe(t, qnet.PhysicsExact, tc.k, tc.target, seed)
			fw, nw := fidelityProbe(t, qnet.PhysicsWerner, tc.k, tc.target, seed)
			if ne != nw {
				t.Fatalf("chain-%d F%.2f seed %d: delivered diverged: exact %d werner %d", tc.k, tc.target, seed, ne, nw)
			}
			if ne == 0 {
				t.Fatalf("chain-%d F%.2f seed %d: no deliveries", tc.k, tc.target, seed)
			}
			if d := math.Abs(fe - fw); d > tc.tol {
				t.Errorf("chain-%d F%.2f seed %d: mean fidelity diverged by %.2e > %.0e (exact %.6f werner %.6f, n=%d)",
					tc.k, tc.target, seed, d, tc.tol, fe, fw, ne)
			}
		}
	}
}

// TestWernerShardInvariance mirrors TestShardCountInvariance on the Werner
// engine: the scalar fast path must stay bit-identical across worker
// counts, the in-process codec, and 1- or 3-way subprocess sharding. The
// Physics field travels in wireOptions, so this also proves re-exec'd
// shard workers rebuild Werner grids rather than silently falling back to
// exact.
func TestWernerShardInvariance(t *testing.T) {
	t.Parallel()
	render := func(b runner.Backend) string {
		o := wernerOpts()
		o.Backend = b
		var buf bytes.Buffer
		churn(o, churnParams{Horizon: 2 * sim.Second, Holds: []sim.Duration{sim.Second}, Circuits: 4}).Print(&buf)
		if !testing.Short() {
			Fig9(o).Print(&buf)
		}
		return buf.String()
	}
	worker := []string{os.Args[0], runner.WorkerFlag}
	backends := []struct {
		name string
		b    runner.Backend
	}{
		{"pool", nil},
		{"in-process-codec", runner.InProcess{}},
		{"shards-1", runner.Subprocess{Shards: 1, Command: worker}},
		{"shards-3", runner.Subprocess{Shards: 3, Command: worker}},
		{"fleet-2", runner.Fleet{Endpoints: []runner.Endpoint{
			{Name: "a", Command: worker},
			{Name: "b", Command: worker},
		}, ChunkSize: 1}},
	}
	want := render(backends[0].b)
	for _, tc := range backends[1:] {
		if got := render(tc.b); got != want {
			t.Fatalf("%s produced different aggregates:\n--- pool ---\n%s\n--- %s ---\n%s",
				tc.name, want, tc.name, got)
		}
	}
}
