package experiments

import (
	"fmt"
	"io"
	"math"

	"qnp/internal/hardware"
)

// WriteTables prints Tables 1 and 2 of the paper as consumed by the
// simulator — the unit tests in internal/hardware assert these values are
// wired through to the models.
func WriteTables(w io.Writer) {
	s, n := hardware.Simulation(), hardware.NearTerm()

	header(w, "Table 1 — quantum gate parameters")
	fmt.Fprintf(w, "%-38s %12s %12s %14s %12s\n", "parameter", "sim fid", "sim time", "near-term fid", "nt time")
	row := func(name string, sf float64, st string, nf float64, nt string) {
		fmt.Fprintf(w, "%-38s %12.4g %12s %14.4g %12s\n", name, sf, st, nf, nt)
	}
	row("Electron single-qubit gate", s.Gates.SingleQubitFidelity, s.Gates.SingleQubitTime.String(),
		n.Gates.SingleQubitFidelity, n.Gates.SingleQubitTime.String())
	row("Two-qubit gate (E-C)", s.Gates.TwoQubitFidelity, s.Gates.TwoQubitTime.String(),
		n.Gates.TwoQubitFidelity, n.Gates.TwoQubitTime.String())
	row("Carbon Rot-Z gate", math.NaN(), "—", n.Gates.CarbonRotZFidelity, n.Gates.CarbonRotZTime.String())
	row("Electron initialisation", s.Gates.ElectronInitFidelity, s.Gates.ElectronInitTime.String(),
		n.Gates.ElectronInitFidelity, n.Gates.ElectronInitTime.String())
	row("Carbon initialisation", math.NaN(), "—", n.Gates.CarbonInitFidelity, n.Gates.CarbonInitTime.String())
	row("Electron readout |0>", s.Gates.Readout.F0, s.Gates.ReadoutTime.String(),
		n.Gates.Readout.F0, n.Gates.ReadoutTime.String())
	row("Electron readout |1>", s.Gates.Readout.F1, s.Gates.ReadoutTime.String(),
		n.Gates.Readout.F1, n.Gates.ReadoutTime.String())

	header(w, "Table 2 — other hardware parameters")
	fmt.Fprintf(w, "%-38s %16s %16s\n", "parameter", "simulation", "near-term")
	r2 := func(name, sv, nv string) { fmt.Fprintf(w, "%-38s %16s %16s\n", name, sv, nv) }
	r2("Electron T1", fmt.Sprintf("%.0f s", s.Electron.T1), fmt.Sprintf("%.0f s", n.Electron.T1))
	r2("Electron T2*", fmt.Sprintf("%.2f s", s.Electron.T2), fmt.Sprintf("%.2f s", n.Electron.T2))
	r2("Carbon T1", "—", fmt.Sprintf("%.0f s", n.Carbon.T1))
	r2("Carbon T2*", "—", fmt.Sprintf("%.0f s", n.Carbon.T2))
	r2("τ_w (detection window)", s.Photon.TauWindow.String(), n.Photon.TauWindow.String())
	r2("τ_e (emission)", s.Photon.TauEmission.String(), n.Photon.TauEmission.String())
	r2("Δφ", fmt.Sprintf("%.1f°", s.Photon.DeltaPhi*180/math.Pi), fmt.Sprintf("%.1f°", n.Photon.DeltaPhi*180/math.Pi))
	r2("p_double_excitation", fmt.Sprintf("%.2f", s.Photon.PDoubleExcitation), fmt.Sprintf("%.2f", n.Photon.PDoubleExcitation))
	r2("p_zero_phonon", fmt.Sprintf("%.2f", s.Photon.PZeroPhonon), fmt.Sprintf("%.2f", n.Photon.PZeroPhonon))
	r2("Collection efficiency", fmt.Sprintf("%.4g", s.Photon.CollectionEff), fmt.Sprintf("%.4g", n.Photon.CollectionEff))
	r2("Dark count rate", fmt.Sprintf("%.0f /s", s.Photon.DarkCountRate), fmt.Sprintf("%.0f /s", n.Photon.DarkCountRate))
	r2("p_detection", fmt.Sprintf("%.2f", s.Photon.PDetection), fmt.Sprintf("%.2f", n.Photon.PDetection))
	r2("Visibility", fmt.Sprintf("%.2f", s.Photon.Visibility), fmt.Sprintf("%.2f", n.Photon.Visibility))
}
