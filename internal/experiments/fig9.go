package experiments

import (
	"encoding/json"
	"fmt"
	"io"

	"qnp/internal/sim"
	"qnp/qnet"
)

// Fig9Point is one marker of Fig. 9: mean request latency and circuit
// throughput at one offered load, in an empty or congested network.
type Fig9Point struct {
	Congested     bool
	IntervalS     float64
	ThroughputPS  float64 // delivered pairs/second on A0-B0 in the window
	LatencyS      float64 // mean latency of requests issued in the window
	LatP5, LatP95 float64
}

// Fig9Data is the latency-versus-throughput curve of §5.1.
type Fig9Data struct {
	Points []Fig9Point
}

type fig9Job struct {
	congested bool
	interval  float64
}

// fig9Grid derives the figure's replica grid from Options alone, so a
// shard worker rebuilds the identical job list.
func fig9Grid(o Options) (grid, []fig9Job, int) {
	horizon := 50 * sim.Second
	measureFrom := 40 * sim.Second
	intervals := []float64{2, 1, 0.5, 0.3, 0.2, 0.15, 0.1, 0.07, 0.05, 0.035, 0.025}
	runs := o.Runs
	if runs > 3 {
		runs = 3
	}
	if o.Quick {
		horizon = 15 * sim.Second
		measureFrom = 10 * sim.Second
		intervals = []float64{1, 0.3, 0.15}
		runs = 1
	}
	var jobs []fig9Job
	for _, congested := range []bool{false, true} {
		for _, iv := range intervals {
			for r := 0; r < runs; r++ {
				jobs = append(jobs, fig9Job{congested, iv})
			}
		}
	}
	g := grid{n: len(jobs), run: func(i int, seed int64) any {
		j := jobs[i]
		return fig9Run(seed, o.Physics, j.congested, j.interval, horizon, measureFrom)
	}}
	return g, jobs, runs
}

func init() {
	registerGrid("fig9", func(o Options, _ json.RawMessage) (grid, error) {
		g, _, _ := fig9Grid(o)
		return g, nil
	})
}

// Fig9 issues 3-pair requests on A0-B0 at an increasing rate (short cutoff,
// F=0.85) with A1-B1 idle ("empty") or saturated by a long-running request
// ("congested"), and measures latency after the system reaches equilibrium.
func Fig9(o Options) *Fig9Data {
	g, jobs, runs := fig9Grid(o)
	d := &Fig9Data{}
	pts := gridMap[Fig9Point](o, "fig9", nil, g)
	for i := 0; i < len(jobs); i += runs {
		j := jobs[i]
		var tp, lat, p5, p95 []float64
		for _, p := range pts[i : i+runs] {
			tp = append(tp, p.ThroughputPS)
			lat = append(lat, p.LatencyS)
			p5 = append(p5, p.LatP5)
			p95 = append(p95, p.LatP95)
		}
		d.Points = append(d.Points, Fig9Point{
			Congested: j.congested, IntervalS: j.interval,
			ThroughputPS: mean(tp), LatencyS: mean(lat),
			LatP5: mean(p5), LatP95: mean(p95),
		})
	}
	return d
}

func fig9Run(seed int64, physics qnet.Physics, congested bool, intervalS float64, horizon, measureFrom sim.Duration) Fig9Point {
	cfg := qnet.DefaultConfig()
	cfg.Seed = seed
	cfg.Physics = physics
	// A1-B1 idles or carries an open-ended background request; A0-B0 sees a
	// 3-pair request every interval. Background traffic, being an immediate
	// workload, opens before the timed arrival chain — the paper's setup.
	var background qnet.Workload
	if congested {
		background = qnet.ContinuousKeep{ID: "bg"}
	}
	res, err := qnet.Scenario{
		Config:   cfg,
		Topology: qnet.DumbbellTopo(),
		Circuits: []qnet.CircuitSpec{
			{ID: "main", Src: "A0", Dst: "B0", Fidelity: 0.85, Policy: qnet.CutoffShort,
				Workload: qnet.IntervalKeep{Interval: sim.DurationFromSeconds(intervalS), Pairs: 3}},
			{ID: "other", Src: "A1", Dst: "B1", Fidelity: 0.85, Policy: qnet.CutoffShort,
				Workload: background},
		},
		Horizon: horizon,
	}.Run()
	if err != nil {
		panic(err)
	}
	// Measure only after the system reaches equilibrium.
	cm := res.Metrics.Circuit("main")
	from := res.Metrics.Start.Add(measureFrom)
	latencies := cm.Latencies(from)
	window := horizon - measureFrom
	return Fig9Point{
		ThroughputPS: float64(cm.DeliveredSince(from)) / window.Seconds(),
		LatencyS:     mean(latencies),
		LatP5:        percentile(latencies, 0.05),
		LatP95:       percentile(latencies, 0.95),
	}
}

// Print writes both curves.
func (d *Fig9Data) Print(w io.Writer) {
	header(w, "Fig. 9 — A0-B0 latency vs throughput (3-pair requests, short cutoff)")
	for _, congested := range []bool{false, true} {
		name := "empty network (A1-B1 idle)"
		if congested {
			name = "congested network (A1-B1 saturated)"
		}
		fmt.Fprintf(w, "\n%s\n%12s %14s %12s %10s %10s\n", name,
			"interval(s)", "throughput(/s)", "latency(s)", "p5(s)", "p95(s)")
		for _, p := range d.Points {
			if p.Congested == congested {
				fmt.Fprintf(w, "%12.2f %14.2f %12.3f %10.3f %10.3f\n",
					p.IntervalS, p.ThroughputPS, p.LatencyS, p.LatP5, p.LatP95)
			}
		}
	}
}
