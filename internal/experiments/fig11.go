package experiments

import (
	"fmt"
	"io"

	"qnp/internal/routing"
	"qnp/internal/runner"
	"qnp/internal/sim"
	"qnp/qnet"
)

// Fig11Delivery is one step of the Fig. 11 staircase.
type Fig11Delivery struct {
	AtS      float64
	Count    int
	Fidelity float64 // oracle fidelity at delivery (for validation)
}

// Fig11Data is the near-term hardware demonstration.
type Fig11Data struct {
	Deliveries  []Fig11Delivery
	MeanFid     float64
	LinkF       float64
	CutoffS     float64
	TargetF     float64
	DeliveredOK int // deliveries meeting the 0.5 target
}

// Fig11 reproduces §5.3: ten pairs at fidelity 0.5 over a three-node chain
// with 25 km telecom links on near-term hardware — one communication qubit
// per node, carbon storage with per-attempt nuclear dephasing. As in the
// paper ("we manually populate the routing tables ... we set the
// link-fidelities as high as possible ... and tune the cutoff timer"), the
// circuit plan is hand-built rather than produced by the routing controller.
func Fig11(o Options) *Fig11Data {
	pairs := 10
	if o.Quick {
		pairs = 3
	}
	cfg := qnet.NearTermConfig(25000)
	cfg.Seed = o.Seed

	const (
		linkF   = 0.81
		cutoff  = 1000 * sim.Millisecond
		targetF = 0.5
	)
	pairTime, ok := cfg.Link.ExpectedPairTime(cfg.Params, linkF)
	if !ok {
		panic("fig11: link cannot reach the hand-picked fidelity")
	}
	plan := routing.Plan{
		Path:             []string{"n0", "n1", "n2"},
		LinkFidelity:     linkF,
		Cutoff:           cutoff,
		LinkPairTime:     pairTime,
		MaxLPR:           1 / pairTime.Seconds(),
		EndToEndFidelity: targetF,
	}

	d := &Fig11Data{LinkF: linkF, CutoffS: cutoff.Seconds(), TargetF: targetF}
	delivered := 0
	// This figure is a single staircase run, not a replica fan-out, so the
	// scenario honours cancellation in its own event loop; progress ticks
	// once per delivered pair.
	res, err := qnet.Scenario{
		Config:   cfg,
		Topology: qnet.ChainTopo(3),
		Circuits: []qnet.CircuitSpec{{
			ID: "nearterm", Plan: &plan,
			Workload:       qnet.Batch{Requests: []qnet.Request{{ID: "r", Type: qnet.Keep, NumPairs: pairs}}},
			RecordFidelity: true,
			Head: qnet.Handlers{
				AutoConsume: true,
				OnPair: func(qnet.Delivered) {
					delivered++
					if o.Progress != nil {
						o.Progress(delivered, pairs)
					}
				},
			},
		}},
		Horizon: 30 * sim.Minute,
		WaitFor: []qnet.CircuitID{"nearterm"},
		Context: o.Context,
	}.Run()
	if err != nil {
		panic(err)
	}
	cm := res.Metrics.Circuit("nearterm")
	start := res.Metrics.Start
	var fids runner.Stats
	for i, at := range cm.DeliveryTimes {
		f := cm.Fidelities[i]
		fids.Add(f)
		if f >= targetF {
			d.DeliveredOK++
		}
		d.Deliveries = append(d.Deliveries, Fig11Delivery{
			AtS:      at.Sub(start).Seconds(),
			Count:    i + 1,
			Fidelity: f,
		})
	}
	d.MeanFid = fids.Mean()
	return d
}

// Print writes the delivery staircase.
func (d *Fig11Data) Print(w io.Writer) {
	header(w, "Fig. 11 — pairs delivered over time on near-term hardware (3 nodes, 25 km links)")
	fmt.Fprintf(w, "hand-tuned: link fidelity %.2f, cutoff %.2f s; target end-to-end F=%.2f\n",
		d.LinkF, d.CutoffS, d.TargetF)
	fmt.Fprintf(w, "%10s %7s %10s\n", "t (s)", "pairs", "fidelity")
	for _, del := range d.Deliveries {
		fmt.Fprintf(w, "%10.1f %7d %10.3f\n", del.AtS, del.Count, del.Fidelity)
	}
	fmt.Fprintf(w, "mean delivered fidelity %.3f; %d/%d deliveries met F≥%.2f\n",
		d.MeanFid, d.DeliveredOK, len(d.Deliveries), d.TargetF)
}
