package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// The quick variants of every figure must run and produce physically
// sensible headline numbers — this is the regression net for the whole
// reproduction harness.

func TestFig5Quick(t *testing.T) {
	d := Fig5(QuickOptions())
	if len(d.Samples) < 100 {
		t.Fatalf("samples = %d", len(d.Samples))
	}
	// Paper: mean ≈10 ms, 95% within ≈30 ms.
	if d.MeanMS < 5 || d.MeanMS > 20 {
		t.Errorf("mean = %.1f ms, want ≈10", d.MeanMS)
	}
	if d.P95MS < 15 || d.P95MS > 60 {
		t.Errorf("p95 = %.1f ms, want ≈30", d.P95MS)
	}
	if cdf := d.CDF(1.0); cdf < 0.99 {
		t.Errorf("CDF(1s) = %v", cdf)
	}
	var buf bytes.Buffer
	d.Print(&buf)
	if !strings.Contains(buf.String(), "Fig. 5") {
		t.Error("Print output missing header")
	}
}

func TestFig8Quick(t *testing.T) {
	d := Fig8(QuickOptions())
	if len(d.Points) == 0 {
		t.Fatal("no points")
	}
	// Latency grows with load on the single-circuit panel.
	var one, eight float64
	for _, p := range d.Points {
		if p.Circuits == 1 && !p.ShortCut {
			if p.Requests == 1 {
				one = p.LatencyS
			}
			if p.Requests == 8 {
				eight = p.LatencyS
			}
		}
	}
	if eight <= one {
		t.Errorf("latency not increasing with load: 1→%.2f 8→%.2f", one, eight)
	}
	// The congestion collapse: 4 circuits with the long cutoff are far
	// slower at load 8 than with the short cutoff.
	var long4, short4 float64
	for _, p := range d.Points {
		if p.Circuits == 4 && p.Requests == 8 {
			if p.ShortCut {
				short4 = p.LatencyS
			} else {
				long4 = p.LatencyS
			}
		}
	}
	if long4 < 2*short4 {
		t.Errorf("no congestion collapse: long=%.2f short=%.2f", long4, short4)
	}
	var buf bytes.Buffer
	d.Print(&buf)
	if !strings.Contains(buf.String(), "panel: 4 circuit(s)") {
		t.Error("Print output missing panels")
	}
}

func TestFig9Quick(t *testing.T) {
	d := Fig9(QuickOptions())
	if len(d.Points) == 0 {
		t.Fatal("no points")
	}
	// Congestion raises latency at comparable load.
	var empty, congested float64
	for _, p := range d.Points {
		if p.IntervalS == 0.3 {
			if p.Congested {
				congested = p.LatencyS
			} else {
				empty = p.LatencyS
			}
		}
	}
	if congested <= empty {
		t.Errorf("congested latency %.3f not above empty %.3f", congested, empty)
	}
	var buf bytes.Buffer
	d.Print(&buf)
	if !strings.Contains(buf.String(), "congested network") {
		t.Error("Print output incomplete")
	}
}

func TestFig10ABQuick(t *testing.T) {
	d := Fig10AB(QuickOptions())
	// Throughput grows with memory lifetime for the cutoff protocol, and
	// the F=0.8 circuit outpaces the F=0.9 circuit.
	get := func(t2, f float64, oracle bool) float64 {
		for _, p := range d.Points {
			if p.T2Star == t2 && p.Fidelity == f && p.Oracle == oracle {
				return p.PairsPS
			}
		}
		return -1
	}
	if get(60, 0.9, false) <= get(0.5, 0.9, false) {
		t.Error("cutoff throughput did not grow with lifetime (F=0.9)")
	}
	if get(60, 0.8, false) <= get(60, 0.9, false) {
		t.Error("F=0.8 circuit not faster than F=0.9")
	}
	// The cutoff beats the oracle baseline at short lifetimes (the paper's
	// central claim in §5.2).
	if get(0.5, 0.8, false) <= get(0.5, 0.8, true) {
		t.Errorf("cutoff (%.2f) not above oracle (%.2f) at T2*=0.5",
			get(0.5, 0.8, false), get(0.5, 0.8, true))
	}
	var buf bytes.Buffer
	d.Print(&buf)
	if !strings.Contains(buf.String(), "panel F=0.9") {
		t.Error("Print output incomplete")
	}
}

func TestFig10CQuick(t *testing.T) {
	d := Fig10C(QuickOptions())
	if d.CutoffMS <= 0 {
		t.Error("no cutoff reported")
	}
	get := func(ms float64) (raw, good float64) {
		for _, p := range d.Points {
			if p.DelayMS == ms && p.Fidelity == 0.8 {
				return p.RawPS, p.GoodPS
			}
		}
		return -1, -1
	}
	raw0, _ := get(0)
	raw16, _ := get(16)
	if raw16 >= raw0 {
		t.Errorf("throughput did not degrade with delay: %.1f → %.1f", raw0, raw16)
	}
	var buf bytes.Buffer
	d.Print(&buf)
	if !strings.Contains(buf.String(), "dashed line") {
		t.Error("Print output incomplete")
	}
}

func TestFig11Quick(t *testing.T) {
	d := Fig11(QuickOptions())
	if len(d.Deliveries) == 0 {
		t.Fatal("no deliveries on near-term hardware")
	}
	// Pair times are seconds-scale on 25 km links.
	if d.Deliveries[0].AtS < 0.5 {
		t.Errorf("first delivery at %.2f s — implausibly fast for 25 km near-term", d.Deliveries[0].AtS)
	}
	// The tuned configuration demonstrates entanglement (mean F ≥ 0.5).
	if d.MeanFid < 0.45 {
		t.Errorf("mean fidelity %.3f too low", d.MeanFid)
	}
	var buf bytes.Buffer
	d.Print(&buf)
	if !strings.Contains(buf.String(), "near-term") {
		t.Error("Print output incomplete")
	}
}

func TestWriteTables(t *testing.T) {
	var buf bytes.Buffer
	WriteTables(&buf)
	out := buf.String()
	for _, want := range []string{"Table 1", "Table 2", "Two-qubit gate", "Visibility", "0.998", "0.992"} {
		if !strings.Contains(out, want) {
			t.Errorf("tables output missing %q", want)
		}
	}
}

func TestHelpers(t *testing.T) {
	if mean(nil) != 0 || percentile(nil, 0.5) != 0 {
		t.Error("empty-input helpers wrong")
	}
	if mean([]float64{1, 2, 3}) != 2 {
		t.Error("mean wrong")
	}
	if percentile([]float64{5, 1, 3}, 0.5) != 3 {
		t.Error("percentile wrong")
	}
	if seconds(1500000000) != 1.5 {
		t.Error("seconds wrong")
	}
}
