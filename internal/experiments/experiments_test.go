package experiments

import (
	"bytes"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"qnp/internal/runner"
	"qnp/internal/sim"
	"qnp/qnet"
)

// The quick variants of every figure must run and produce physically
// sensible headline numbers — this is the regression net for the whole
// reproduction harness. Under -short the full quick grids give way to
// trimmed two-point variants that exercise the same run functions, so
// `go test -race -short ./...` stays fast while `go test ./...` keeps the
// complete shape checks.

func TestFig5Quick(t *testing.T) {
	t.Parallel()
	d := Fig5(QuickOptions())
	if len(d.Samples) < 100 {
		t.Fatalf("samples = %d", len(d.Samples))
	}
	// Paper: mean ≈10 ms, 95% within ≈30 ms.
	if d.MeanMS < 5 || d.MeanMS > 20 {
		t.Errorf("mean = %.1f ms, want ≈10", d.MeanMS)
	}
	if d.P95MS < 15 || d.P95MS > 60 {
		t.Errorf("p95 = %.1f ms, want ≈30", d.P95MS)
	}
	if cdf := d.CDF(1.0); cdf < 0.99 {
		t.Errorf("CDF(1s) = %v", cdf)
	}
	var buf bytes.Buffer
	d.Print(&buf)
	if !strings.Contains(buf.String(), "Fig. 5") {
		t.Error("Print output missing header")
	}
}

func TestFig8Quick(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		// Two points of the single-circuit panel: latency must grow with
		// offered load.
		one := fig8Run(runner.DeriveSeed(1, 0), 1, false, 0.85, 1, 10, 60*sim.Second)
		eight := fig8Run(runner.DeriveSeed(1, 1), 1, false, 0.85, 8, 10, 60*sim.Second)
		if eight.LatencyS <= one.LatencyS {
			t.Errorf("latency not increasing with load: 1→%.2f 8→%.2f", one.LatencyS, eight.LatencyS)
		}
		return
	}
	d := Fig8(QuickOptions())
	if len(d.Points) == 0 {
		t.Fatal("no points")
	}
	// Latency grows with load on the single-circuit panel.
	var one, eight float64
	for _, p := range d.Points {
		if p.Circuits == 1 && !p.ShortCut {
			if p.Requests == 1 {
				one = p.LatencyS
			}
			if p.Requests == 8 {
				eight = p.LatencyS
			}
		}
	}
	if eight <= one {
		t.Errorf("latency not increasing with load: 1→%.2f 8→%.2f", one, eight)
	}
	// The congestion collapse: 4 circuits with the long cutoff are far
	// slower at load 8 than with the short cutoff.
	var long4, short4 float64
	for _, p := range d.Points {
		if p.Circuits == 4 && p.Requests == 8 {
			if p.ShortCut {
				short4 = p.LatencyS
			} else {
				long4 = p.LatencyS
			}
		}
	}
	if long4 < 2*short4 {
		t.Errorf("no congestion collapse: long=%.2f short=%.2f", long4, short4)
	}
	var buf bytes.Buffer
	d.Print(&buf)
	if !strings.Contains(buf.String(), "panel: 4 circuit(s)") {
		t.Error("Print output missing panels")
	}
}

func TestFig9Quick(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		// One load point, empty versus congested: congestion must cost
		// latency.
		empty := fig9Run(runner.DeriveSeed(1, 0), qnet.PhysicsExact, false, 0.3, 10*sim.Second, 6*sim.Second)
		congested := fig9Run(runner.DeriveSeed(1, 0), qnet.PhysicsExact, true, 0.3, 10*sim.Second, 6*sim.Second)
		if congested.LatencyS <= empty.LatencyS {
			t.Errorf("congested latency %.3f not above empty %.3f", congested.LatencyS, empty.LatencyS)
		}
		return
	}
	d := Fig9(QuickOptions())
	if len(d.Points) == 0 {
		t.Fatal("no points")
	}
	// Congestion raises latency at comparable load.
	var empty, congested float64
	for _, p := range d.Points {
		if p.IntervalS == 0.3 {
			if p.Congested {
				congested = p.LatencyS
			} else {
				empty = p.LatencyS
			}
		}
	}
	if congested <= empty {
		t.Errorf("congested latency %.3f not above empty %.3f", congested, empty)
	}
	var buf bytes.Buffer
	d.Print(&buf)
	if !strings.Contains(buf.String(), "congested network") {
		t.Error("Print output incomplete")
	}
}

func TestFig10ABQuick(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		// Cutoff-protocol throughput must grow with memory lifetime, and
		// the laxer F=0.8 circuit must outpace F=0.9.
		lo := fig10Run(runner.DeriveSeed(1, 0), 0.5, false, 3*sim.Second, 0)
		hi := fig10Run(runner.DeriveSeed(1, 1), 60, false, 3*sim.Second, 0)
		if hi[0].PairsPS <= lo[0].PairsPS {
			t.Errorf("throughput did not grow with lifetime: %.2f → %.2f", lo[0].PairsPS, hi[0].PairsPS)
		}
		if hi[1].PairsPS <= hi[0].PairsPS {
			t.Errorf("F=0.8 (%.2f) not faster than F=0.9 (%.2f)", hi[1].PairsPS, hi[0].PairsPS)
		}
		return
	}
	d := Fig10AB(QuickOptions())
	// Throughput grows with memory lifetime for the cutoff protocol, and
	// the F=0.8 circuit outpaces the F=0.9 circuit.
	get := func(t2, f float64, oracle bool) float64 {
		for _, p := range d.Points {
			if p.T2Star == t2 && p.Fidelity == f && p.Oracle == oracle {
				return p.PairsPS
			}
		}
		return -1
	}
	if get(60, 0.9, false) <= get(0.5, 0.9, false) {
		t.Error("cutoff throughput did not grow with lifetime (F=0.9)")
	}
	if get(60, 0.8, false) <= get(60, 0.9, false) {
		t.Error("F=0.8 circuit not faster than F=0.9")
	}
	// The cutoff beats the oracle baseline at short lifetimes (the paper's
	// central claim in §5.2).
	if get(0.5, 0.8, false) <= get(0.5, 0.8, true) {
		t.Errorf("cutoff (%.2f) not above oracle (%.2f) at T2*=0.5",
			get(0.5, 0.8, false), get(0.5, 0.8, true))
	}
	var buf bytes.Buffer
	d.Print(&buf)
	if !strings.Contains(buf.String(), "panel F=0.9") {
		t.Error("Print output incomplete")
	}
}

func TestFig10CQuick(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		// Raw delivery rate must degrade once the control-plane delay
		// approaches the cutoff.
		d0 := fig10GoodputRun(runner.DeriveSeed(1, 0), 1.6, 0, 3*sim.Second)
		d16 := fig10GoodputRun(runner.DeriveSeed(1, 0), 1.6, 16*sim.Millisecond, 3*sim.Second)
		if d16[1].RawPS >= d0[1].RawPS {
			t.Errorf("throughput did not degrade with delay: %.1f → %.1f", d0[1].RawPS, d16[1].RawPS)
		}
		return
	}
	d := Fig10C(QuickOptions())
	if d.CutoffMS <= 0 {
		t.Error("no cutoff reported")
	}
	get := func(ms float64) (raw, good float64) {
		for _, p := range d.Points {
			if p.DelayMS == ms && p.Fidelity == 0.8 {
				return p.RawPS, p.GoodPS
			}
		}
		return -1, -1
	}
	raw0, _ := get(0)
	raw16, _ := get(16)
	if raw16 >= raw0 {
		t.Errorf("throughput did not degrade with delay: %.1f → %.1f", raw0, raw16)
	}
	var buf bytes.Buffer
	d.Print(&buf)
	if !strings.Contains(buf.String(), "dashed line") {
		t.Error("Print output incomplete")
	}
}

func TestFig11Quick(t *testing.T) {
	t.Parallel()
	d := Fig11(QuickOptions())
	if len(d.Deliveries) == 0 {
		t.Fatal("no deliveries on near-term hardware")
	}
	// Pair times are seconds-scale on 25 km links.
	if d.Deliveries[0].AtS < 0.5 {
		t.Errorf("first delivery at %.2f s — implausibly fast for 25 km near-term", d.Deliveries[0].AtS)
	}
	// The tuned configuration demonstrates entanglement (mean F ≥ 0.5).
	if d.MeanFid < 0.45 {
		t.Errorf("mean fidelity %.3f too low", d.MeanFid)
	}
	var buf bytes.Buffer
	d.Print(&buf)
	if !strings.Contains(buf.String(), "near-term") {
		t.Error("Print output incomplete")
	}
}

func TestTopologySweepQuick(t *testing.T) {
	t.Parallel()
	d := TopologySweep(QuickOptions())
	if len(d.Points) != 6 {
		t.Fatalf("%d topologies", len(d.Points))
	}
	byName := map[string]TopoPoint{}
	for _, p := range d.Points {
		if p.FeasibleFrac < 1 {
			t.Errorf("%s: routing infeasible (frac %.2f)", p.Topology, p.FeasibleFrac)
		}
		if p.PairsPS <= 0 {
			t.Errorf("%s: no throughput", p.Topology)
		}
		if p.MeanFid < d.TargetF-0.05 {
			t.Errorf("%s: mean fidelity %.3f far below target %.2f", p.Topology, p.MeanFid, d.TargetF)
		}
		byName[p.Topology] = p
	}
	// More hops cost throughput: the 2-hop chain beats the 4-hop one.
	if byName["chain-3"].PairsPS <= byName["chain-5"].PairsPS {
		t.Errorf("chain-3 (%.1f/s) not faster than chain-5 (%.1f/s)",
			byName["chain-3"].PairsPS, byName["chain-5"].PairsPS)
	}
	var buf bytes.Buffer
	d.Print(&buf)
	if !strings.Contains(buf.String(), "waxman-10") {
		t.Error("Print output incomplete")
	}
}

func TestHubContentionQuick(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		// Gateway contention only, two circuit counts: per-circuit
		// throughput must collapse when four circuits share one spoke.
		d := hubContention(QuickOptions(), 1500*sim.Millisecond, []int{1, 4}, []bool{true})
		s1, s4 := d.Points[0], d.Points[1]
		if s4.PerCircuitPS >= 0.7*s1.PerCircuitPS {
			t.Errorf("no gateway contention: per-circuit %.1f/s → %.1f/s", s1.PerCircuitPS, s4.PerCircuitPS)
		}
		return
	}
	d := HubContention(QuickOptions())
	if len(d.Points) != 8 {
		t.Fatalf("%d points", len(d.Points))
	}
	get := func(k int, shared bool) HubPoint {
		for _, p := range d.Points {
			if p.Circuits == k && p.Shared == shared {
				return p
			}
		}
		t.Fatalf("missing point k=%d shared=%v", k, shared)
		return HubPoint{}
	}
	// Disjoint spokes scale: four circuits deliver well over twice one
	// circuit's aggregate, and the hub's swap load grows with them.
	if d1, d4 := get(1, false), get(4, false); d4.AggregatePS < 2*d1.AggregatePS {
		t.Errorf("disjoint spokes did not scale: 1→%.1f/s, 4→%.1f/s", d1.AggregatePS, d4.AggregatePS)
	} else if d4.HubSwaps <= d1.HubSwaps {
		t.Errorf("hub swap load did not grow: %.1f → %.1f", d1.HubSwaps, d4.HubSwaps)
	}
	// The shared gateway spoke is the contention point: per-circuit
	// throughput collapses as circuits pile onto it.
	if s1, s4 := get(1, true), get(4, true); s4.PerCircuitPS >= 0.7*s1.PerCircuitPS {
		t.Errorf("no gateway contention: per-circuit %.1f/s → %.1f/s", s1.PerCircuitPS, s4.PerCircuitPS)
	}
	var buf bytes.Buffer
	d.Print(&buf)
	if !strings.Contains(buf.String(), "shared gateway spoke") {
		t.Error("Print output incomplete")
	}
}

func TestPathDiversityQuick(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		// Grid rows only: link-disjoint circuits must scale the aggregate.
		d := pathDiversity(QuickOptions(), 1500*sim.Millisecond, []string{"grid-4x4"}, []int{1, 4})
		g1, g4 := d.Points[0], d.Points[1]
		if g4.AggregatePS < 2*g1.AggregatePS {
			t.Errorf("grid aggregate did not scale: 1→%.1f/s, 4→%.1f/s", g1.AggregatePS, g4.AggregatePS)
		}
		return
	}
	d := PathDiversity(QuickOptions())
	get := func(topo string, k int) DiversityPoint {
		for _, p := range d.Points {
			if p.Topology == topo && p.Circuits == k {
				return p
			}
		}
		t.Fatalf("missing point %s k=%d", topo, k)
		return DiversityPoint{}
	}
	// Link-disjoint grid rows scale aggregate throughput with the circuit
	// count — the payoff of path diversity.
	g1, g4 := get("grid-4x4", 1), get("grid-4x4", 4)
	if g1.Feasible < 1 || g4.Feasible < 1 {
		t.Errorf("grid circuits infeasible: %v %v", g1.Feasible, g4.Feasible)
	}
	if g4.AggregatePS < 2*g1.AggregatePS {
		t.Errorf("grid aggregate did not scale: 1→%.1f/s, 4→%.1f/s", g1.AggregatePS, g4.AggregatePS)
	}
	// Waxman random demand must at least plan and deliver.
	for _, k := range []int{1, 2, 4} {
		if p := get("waxman-12", k); p.Feasible <= 0 || p.AggregatePS <= 0 {
			t.Errorf("waxman k=%d: feasible %.2f, aggregate %.2f/s", k, p.Feasible, p.AggregatePS)
		}
	}
	var buf bytes.Buffer
	d.Print(&buf)
	if !strings.Contains(buf.String(), "waxman-12") {
		t.Error("Print output incomplete")
	}
}

func TestEERSaturationQuick(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		// One overloaded point plus the oversized request: measured EER
		// must stay at or below the allocation and the oversized request
		// must be policed away.
		d := eerSaturation(QuickOptions(), 2*sim.Second, []int{3})
		for _, p := range d.Points {
			if p.MeasuredPS > d.AllocatedPS*1.02 {
				t.Errorf("measured %.2f pairs/s exceeds allocation %.2f", p.MeasuredPS, d.AllocatedPS)
			}
			if p.Oversized && (p.Rejected < 1 || p.MeasuredPS > 0) {
				t.Errorf("oversized request not policed: rejected=%.1f measured=%.2f", p.Rejected, p.MeasuredPS)
			}
		}
		return
	}
	d := EERSaturation(QuickOptions())
	if d.AllocatedPS <= 0 {
		t.Fatalf("allocation %.2f", d.AllocatedPS)
	}
	sawOversized := false
	for _, p := range d.Points {
		// The satellite assertion: the policed circuit's measured EER stays
		// at or below its allocation (small slack for window rounding).
		if p.MeasuredPS > d.AllocatedPS*1.02 {
			t.Errorf("measured %.2f pairs/s exceeds allocation %.2f (offered %.2f)",
				p.MeasuredPS, d.AllocatedPS, p.OfferedPS)
		}
		if p.Oversized {
			sawOversized = true
			if p.Rejected < 1 {
				t.Errorf("oversized request not policed: rejected=%.1f", p.Rejected)
			}
			if p.MeasuredPS > 0 {
				t.Errorf("oversized request delivered %.2f pairs/s", p.MeasuredPS)
			}
		} else if p.Rejected != 0 {
			t.Errorf("in-allocation load rejected: %.1f at offered %.2f", p.Rejected, p.OfferedPS)
		}
		if !p.Oversized && p.MeasuredPS <= 0 {
			t.Errorf("no deliveries at offered %.2f", p.OfferedPS)
		}
	}
	if !sawOversized {
		t.Error("no oversized point in the sweep")
	}
	var buf bytes.Buffer
	d.Print(&buf)
	if !strings.Contains(buf.String(), "at or below the MaxEER allocation") {
		t.Error("Print output incomplete")
	}
}

// TestMain doubles as the shard worker entrypoint: the shard-count
// invariance test re-execs this test binary behind runner.WorkerFlag.
func TestMain(m *testing.M) {
	runner.MaybeWorker()
	os.Exit(m.Run())
}

// TestShardCountInvariance extends worker-count invariance across the
// Backend seam: figure aggregates must be byte-identical whether replicas
// run on the in-process pool, through the in-process bytes codec, sharded
// over 1 or 3 worker processes, or work-stolen across a two-endpoint fleet
// with one throttled host.
func TestShardCountInvariance(t *testing.T) {
	t.Parallel()
	render := func(b runner.Backend) string {
		o := QuickOptions()
		o.Backend = b
		var buf bytes.Buffer
		Fig5(o).Print(&buf)
		// A parameterised grid exercises the params wire path.
		hubContention(o, 2*sim.Second, []int{2}, []bool{true}).Print(&buf)
		// Churn exercises the dynamic arrival/departure engine across the
		// Backend seam with a trimmed grid.
		churn(o, churnParams{Horizon: 2 * sim.Second, Holds: []sim.Duration{sim.Second}, Circuits: 4}).Print(&buf)
		if !testing.Short() {
			Fig9(o).Print(&buf)
			EERSaturation(o).Print(&buf)
			// Multipath exercises k-candidate placement and both allocation
			// policies across the Backend seam.
			multipath(o, multipathParams{Horizon: 2 * sim.Second, Pairs: 6}).Print(&buf)
		}
		return buf.String()
	}
	worker := []string{os.Args[0], runner.WorkerFlag}
	backends := []struct {
		name string
		b    runner.Backend
	}{
		{"pool", nil},
		{"in-process-codec", runner.InProcess{}},
		{"shards-1", runner.Subprocess{Shards: 1, Command: worker}},
		{"shards-3", runner.Subprocess{Shards: 3, Command: worker}},
		{"fleet-2", runner.Fleet{Endpoints: []runner.Endpoint{
			{Name: "a", Command: worker},
			{Name: "b", Command: worker, Throttle: 10 * time.Millisecond},
		}, ChunkSize: 2}},
	}
	want := render(backends[0].b)
	for _, tc := range backends[1:] {
		if got := render(tc.b); got != want {
			t.Fatalf("%s produced different aggregates:\n--- pool ---\n%s\n--- %s ---\n%s",
				tc.name, want, tc.name, got)
		}
	}
}

// TestWorkerCountInvariance is the runner's end-to-end determinism proof:
// the same seed must render byte-identical figure aggregates no matter how
// many workers share the replicas.
func TestWorkerCountInvariance(t *testing.T) {
	t.Parallel()
	render := func(workers int) string {
		o := QuickOptions()
		o.Workers = workers
		var buf bytes.Buffer
		Fig5(o).Print(&buf)
		if !testing.Short() {
			TopologySweep(o).Print(&buf)
		}
		return buf.String()
	}
	counts := []int{1, 2}
	if n := runtime.NumCPU(); n != 1 && n != 2 {
		counts = append(counts, n)
	}
	want := render(counts[0])
	for _, w := range counts[1:] {
		if got := render(w); got != want {
			t.Fatalf("workers=%d produced different aggregates:\n--- workers=1 ---\n%s\n--- workers=%d ---\n%s",
				w, want, w, got)
		}
	}
}

func TestWriteTables(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	WriteTables(&buf)
	out := buf.String()
	for _, want := range []string{"Table 1", "Table 2", "Two-qubit gate", "Visibility", "0.998", "0.992"} {
		if !strings.Contains(out, want) {
			t.Errorf("tables output missing %q", want)
		}
	}
}

func TestHelpers(t *testing.T) {
	t.Parallel()
	if mean(nil) != 0 || percentile(nil, 0.5) != 0 {
		t.Error("empty-input helpers wrong")
	}
	if mean([]float64{1, 2, 3}) != 2 {
		t.Error("mean wrong")
	}
	if percentile([]float64{5, 1, 3}, 0.5) != 3 {
		t.Error("percentile wrong")
	}
	if seconds(1500000000) != 1.5 {
		t.Error("seconds wrong")
	}
}

func TestChurnQuick(t *testing.T) {
	t.Parallel()
	o := QuickOptions()
	var p churnParams
	if testing.Short() {
		p = churnParams{Horizon: 2 * sim.Second, Holds: []sim.Duration{sim.Second}, Circuits: 4}
	} else {
		p = churnParams{Horizon: 4 * sim.Second, Holds: []sim.Duration{sim.Second, 5 * sim.Second / 2}, Circuits: 6}
	}
	d := churn(o, p)
	if len(d.Points) != 4*len(p.Holds) {
		t.Fatalf("point count = %d, want %d", len(d.Points), 4*len(p.Holds))
	}
	if d.DemandPS <= 0 {
		t.Fatalf("demand = %v", d.DemandPS)
	}
	var refitDeliv, staticDeliv float64
	for _, pt := range d.Points {
		if pt.Admitted+pt.Rejected > float64(pt.Offered) {
			t.Errorf("%s hold=%.1f static=%v: admitted %.1f + rejected %.1f exceeds offered %d",
				pt.Topology, pt.HoldS, pt.Static, pt.Admitted, pt.Rejected, pt.Offered)
		}
		if pt.Admitted <= 0 {
			t.Errorf("%s hold=%.1f static=%v admitted nothing", pt.Topology, pt.HoldS, pt.Static)
		}
		if pt.Static && pt.Rejected != 0 {
			t.Errorf("static allocation rejected %.1f arrivals; it admits everything", pt.Rejected)
		}
		if pt.Admitted > 0 && pt.Deliv <= 0 {
			t.Errorf("%s hold=%.1f static=%v admitted %.1f circuits but delivered nothing",
				pt.Topology, pt.HoldS, pt.Static, pt.Admitted)
		}
		if pt.Static {
			staticDeliv += pt.Deliv
		} else {
			refitDeliv += pt.Deliv
		}
	}
	if refitDeliv <= 0 || staticDeliv <= 0 {
		t.Fatalf("empty sweep: refit=%v static=%v", refitDeliv, staticDeliv)
	}
	var buf bytes.Buffer
	d.Print(&buf)
	out := buf.String()
	for _, want := range []string{"re-fit", "static", "Circuit churn"} {
		if !strings.Contains(out, want) {
			t.Errorf("Print output missing %q", want)
		}
	}
}

// TestMultipathQuick pins the placement study's headline claim: k=3
// model-weighted placement admits strictly more circuits than k=1
// count-split (or at least as many at a higher aggregate EER) on both
// testbeds, and the crafted grid load's admitted count rises with k.
func TestMultipathQuick(t *testing.T) {
	t.Parallel()
	o := QuickOptions()
	p := multipathParams{Horizon: 2 * sim.Second, Pairs: 16}
	d := multipath(o, p)
	if len(d.Points) != 12 {
		t.Fatalf("point count = %d, want 12", len(d.Points))
	}
	point := func(topo string, k int, model bool) MultipathPoint {
		for _, pt := range d.Points {
			if pt.Topology == topo && pt.K == k && pt.Model == model {
				return pt
			}
		}
		t.Fatalf("no point for %s k=%d model=%v", topo, k, model)
		return MultipathPoint{}
	}
	for _, topo := range []string{"grid-4x4", "waxman-12"} {
		base := point(topo, 1, false)
		best := point(topo, 3, true)
		if base.Admitted <= 0 {
			t.Errorf("%s k=1 count-split admitted nothing", topo)
		}
		better := best.Admitted > base.Admitted ||
			(best.Admitted == base.Admitted && best.AggEER > base.AggEER)
		if !better {
			t.Errorf("%s: k=3 model-weighted (admitted %.1f, agg %.2f) does not beat k=1 count-split (admitted %.1f, agg %.2f)",
				topo, best.Admitted, best.AggEER, base.Admitted, base.AggEER)
		}
		for _, pt := range d.Points {
			if pt.Topology == topo && pt.Admitted+pt.Rejected > float64(pt.Offered) {
				t.Errorf("%s k=%d model=%v: admitted %.1f + rejected %.1f exceeds offered %d",
					topo, pt.K, pt.Model, pt.Admitted, pt.Rejected, pt.Offered)
			}
		}
	}
	// The crafted grid load is seed-independent: admission there is exact.
	for _, model := range []bool{false, true} {
		g1, g2, g3 := point("grid-4x4", 1, model), point("grid-4x4", 2, model), point("grid-4x4", 3, model)
		if !(g1.Admitted < g2.Admitted && g2.Admitted < g3.Admitted) {
			t.Errorf("grid admitted not rising with k (model=%v): %.1f, %.1f, %.1f",
				model, g1.Admitted, g2.Admitted, g3.Admitted)
		}
		if g1.Rerouted != 0 || g3.Rerouted == 0 {
			t.Errorf("grid rerouted counts wrong (model=%v): k=1 %.1f (want 0), k=3 %.1f (want > 0)",
				model, g1.Rerouted, g3.Rerouted)
		}
	}
	var buf bytes.Buffer
	d.Print(&buf)
	out := buf.String()
	for _, want := range []string{"Multipath placement", "model", "count", "re-routes"} {
		if !strings.Contains(out, want) {
			t.Errorf("Print output missing %q", want)
		}
	}
}
