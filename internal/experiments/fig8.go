package experiments

import (
	"encoding/json"
	"fmt"
	"io"

	"qnp/internal/runner"
	"qnp/internal/sim"
	"qnp/qnet"
)

// Fig8Point is one marker of Fig. 8: the mean completion latency of the
// 100-pair requests carried by the A0-B0 circuit when reqCount simultaneous
// requests are spread round-robin over the scenario's circuits.
type Fig8Point struct {
	Circuits  int
	ShortCut  bool
	Fidelity  float64
	Requests  int
	LatencyS  float64
	Completed bool // false if the run hit the simulation cap (congestion collapse)
}

// Fig8Data holds the six panels (1/2/4 circuits × long/short cutoff), each
// with latency-vs-request-count series per end-to-end fidelity.
type Fig8Data struct {
	Points      []Fig8Point
	PairsPerReq int
	CapS        float64
}

// circuitSets returns the paper's three sharing scenarios.
func circuitSets(n int) [][2]string {
	switch n {
	case 1:
		return [][2]string{{"A0", "B0"}}
	case 2:
		return [][2]string{{"A0", "B0"}, {"A1", "B1"}}
	default:
		return [][2]string{{"A0", "B0"}, {"A1", "B1"}, {"A0", "B1"}, {"A1", "B0"}}
	}
}

type fig8Job struct {
	nCirc int
	short bool
	fid   float64
	load  int
}

// fig8Grid derives the figure's replica grid from Options alone: the whole
// scenario grid × replica matrix flattened into one runner batch (replica
// innermost, so each point's replicas are contiguous).
func fig8Grid(o Options) (grid, []fig8Job, int, int, sim.Duration) {
	pairs := 100
	capT := 600 * sim.Second
	fids := []float64{0.8, 0.9}
	loads := []int{1, 2, 3, 4, 5, 6, 7, 8}
	runs := o.Runs
	if runs > 3 {
		runs = 3
	}
	if o.Quick {
		pairs = 15
		capT = 120 * sim.Second
		fids = []float64{0.85}
		loads = []int{1, 4, 8}
		runs = 1
	}
	var jobs []fig8Job
	for _, nCirc := range []int{1, 2, 4} {
		for _, short := range []bool{false, true} {
			for _, f := range fids {
				for _, load := range loads {
					for r := 0; r < runs; r++ {
						jobs = append(jobs, fig8Job{nCirc, short, f, load})
					}
				}
			}
		}
	}
	g := grid{n: len(jobs), run: func(i int, seed int64) any {
		j := jobs[i]
		return fig8Run(seed, j.nCirc, j.short, j.fid, j.load, pairs, capT)
	}}
	return g, jobs, runs, pairs, capT
}

func init() {
	registerGrid("fig8", func(o Options, _ json.RawMessage) (grid, error) {
		g, _, _, _, _ := fig8Grid(o)
		return g, nil
	})
}

// Fig8 reproduces the resource-sharing study of §5.1: 1–8 simultaneous
// requests across 1, 2 or 4 circuits sharing the MA-MB bottleneck, with the
// long and the short cutoff, on one-minute memories (T2* = 60 s).
func Fig8(o Options) *Fig8Data {
	g, jobs, runs, pairs, capT := fig8Grid(o)
	d := &Fig8Data{PairsPerReq: pairs, CapS: capT.Seconds()}
	pts := gridMap[Fig8Point](o, "fig8", nil, g)
	for i := 0; i < len(jobs); i += runs {
		j := jobs[i]
		var ls runner.Stats
		completed := true
		for _, p := range pts[i : i+runs] {
			ls.Add(p.LatencyS)
			completed = completed && p.Completed
		}
		d.Points = append(d.Points, Fig8Point{
			Circuits: j.nCirc, ShortCut: j.short, Fidelity: j.fid,
			Requests: j.load, LatencyS: ls.Mean(), Completed: completed,
		})
	}
	return d
}

func fig8Run(seed int64, nCirc int, short bool, fidelity float64, load, pairs int, capT sim.Duration) Fig8Point {
	cfg := qnet.DefaultConfig()
	cfg.Seed = seed
	policy := qnet.CutoffLong
	if short {
		policy = qnet.CutoffShort
	}
	// Round-robin request placement: request k goes to circuit k mod n. The
	// scenario engine submits simultaneous batches breadth-first across
	// circuits, so listing each circuit's share reproduces the global
	// round-robin submission order exactly.
	sets := circuitSets(nCirc)
	reqs := make([][]qnet.Request, len(sets))
	for k := 0; k < load; k++ {
		i := k % len(sets)
		reqs[i] = append(reqs[i], qnet.Request{
			ID: qnet.RequestID(fmt.Sprintf("r%d", k)), Type: qnet.Keep, NumPairs: pairs,
		})
	}
	specs := make([]qnet.CircuitSpec, len(sets))
	for i, ep := range sets {
		specs[i] = qnet.CircuitSpec{
			ID: qnet.CircuitID(fmt.Sprintf("c%d", i)), Src: ep[0], Dst: ep[1],
			Fidelity: fidelity, Policy: policy,
			Workload: qnet.Batch{Requests: reqs[i]},
		}
	}
	res, err := qnet.Scenario{
		Config:   cfg,
		Topology: qnet.DumbbellTopo(),
		Circuits: specs,
		Horizon:  capT,
		WaitFor:  []qnet.CircuitID{"c0"}, // measure the A0-B0 circuit
	}.Run()
	if err != nil {
		panic(err)
	}
	cm := res.Metrics.Circuit("c0")
	start := res.Metrics.Start
	var ls []float64
	for _, rm := range cm.Requests {
		if rm.Done {
			ls = append(ls, rm.CompletedAt.Sub(start).Seconds())
		} else {
			// Unfinished requests count at the cap (a conservative floor).
			ls = append(ls, capT.Seconds())
		}
	}
	return Fig8Point{LatencyS: mean(ls), Completed: cm.AllComplete()}
}

// Print writes the six panels.
func (d *Fig8Data) Print(w io.Writer) {
	header(w, fmt.Sprintf("Fig. 8 — mean A0-B0 request latency (s), %d-pair requests", d.PairsPerReq))
	for _, short := range []bool{false, true} {
		for _, nCirc := range []int{1, 2, 4} {
			cut := "long cutoff"
			if short {
				cut = "short cutoff"
			}
			fmt.Fprintf(w, "\npanel: %d circuit(s), %s\n", nCirc, cut)
			fmt.Fprintf(w, "%10s", "requests")
			fids := d.fidelities()
			for _, f := range fids {
				fmt.Fprintf(w, "  F=%.2f  ", f)
			}
			fmt.Fprintln(w)
			for _, load := range d.loads() {
				fmt.Fprintf(w, "%10d", load)
				for _, f := range fids {
					for _, p := range d.Points {
						if p.Circuits == nCirc && p.ShortCut == short && p.Fidelity == f && p.Requests == load {
							mark := " "
							if !p.Completed {
								mark = "*" // hit the simulation cap
							}
							fmt.Fprintf(w, "  %7.2f%s", p.LatencyS, mark)
						}
					}
				}
				fmt.Fprintln(w)
			}
		}
	}
	fmt.Fprintf(w, "\n(* = capped at %.0f s: quantum congestion collapse)\n", d.CapS)
}

func (d *Fig8Data) fidelities() []float64 {
	seen := map[float64]bool{}
	var out []float64
	for _, p := range d.Points {
		if !seen[p.Fidelity] {
			seen[p.Fidelity] = true
			out = append(out, p.Fidelity)
		}
	}
	return out
}

func (d *Fig8Data) loads() []int {
	seen := map[int]bool{}
	var out []int
	for _, p := range d.Points {
		if !seen[p.Requests] {
			seen[p.Requests] = true
			out = append(out, p.Requests)
		}
	}
	return out
}
