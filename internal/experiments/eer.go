package experiments

import (
	"encoding/json"
	"fmt"
	"io"

	"qnp/internal/quantum"
	"qnp/internal/runner"
	"qnp/internal/sim"
	"qnp/qnet"
)

// EERPoint is one offered-load marker of the saturation study.
type EERPoint struct {
	Requests    int     // concurrent rate-based requests offered
	OfferedPS   float64 // sum of requested rates (pairs/s)
	MeasuredPS  float64 // delivered pairs/s at the head-end
	Rejected    float64 // mean policed-away requests per run
	Oversized   bool    // single request demanding more than the allocation
	AllocatedPS float64
}

// EERData is the admission-control saturation study.
type EERData struct {
	Points      []EERPoint
	AllocatedPS float64
	HorizonS    float64
}

// EERSaturation exercises routing.Controller.EnforceEER end to end: with
// admission control on, the A0-B0 plan carries a MaxEER allocation, and the
// head-end polices and shapes rate-based requests against it. The offered
// load sweeps past the allocation — demand above it is queued (shaped) or,
// when a single request alone exceeds the allocation, rejected — and the
// measured end-to-end rate saturates at or below MaxEER.
func EERSaturation(o Options) *EERData {
	horizon := 10 * sim.Second
	if o.Quick {
		horizon = 4 * sim.Second
	}
	return eerSaturation(o, horizon, []int{1, 2, 3, 4, 6})
}

const eerTargetF = 0.85

// eerParams is the wire form of the saturation sweep's shape.
type eerParams struct {
	Horizon sim.Duration
	Loads   []int
}

type eerJob struct {
	requests  int
	oversized bool
}

// eerResult is one replica's wire-friendly measurement.
type eerResult struct {
	MeasuredPS float64
	Rejected   int
}

// eerAllocation reads the MaxEER allocation the controller hands out on
// this plant — deterministic (no replica seed involved), so parent and
// shard workers compute the identical value.
func eerAllocation() float64 {
	cfg := qnet.DefaultConfig()
	cfg.EnforceEER = true
	net := qnet.Dumbbell(cfg)
	dec, _, err := net.Controller.Place(qnet.PlacementRequest{
		Src: "A0", Dst: "B0", Fidelity: eerTargetF, Cutoff: qnet.CutoffShort, Probe: true,
	})
	if err != nil {
		panic(err)
	}
	return dec.Plan.MaxEER
}

// eerGrid derives the replica grid from (Options, params) alone.
func eerGrid(o Options, p eerParams) (grid, []eerJob, int, float64) {
	runs := o.Runs
	if runs > 3 {
		runs = 3
	}
	if o.Quick {
		runs = 1
	}
	alloc := eerAllocation()
	var jobs []eerJob
	for _, k := range p.Loads {
		for r := 0; r < runs; r++ {
			jobs = append(jobs, eerJob{requests: k})
		}
	}
	for r := 0; r < runs; r++ {
		jobs = append(jobs, eerJob{requests: 1, oversized: true})
	}
	g := grid{n: len(jobs), run: func(i int, seed int64) any {
		return eerRun(seed, o.Physics, jobs[i], alloc, p.Horizon)
	}}
	return g, jobs, runs, alloc
}

func init() {
	registerGrid("eer", func(o Options, raw json.RawMessage) (grid, error) {
		p, err := decodeParams[eerParams](raw)
		if err != nil {
			return grid{}, err
		}
		g, _, _, _ := eerGrid(o, p)
		return g, nil
	})
}

// eerRun measures one policed-circuit replica.
func eerRun(seed int64, physics qnet.Physics, j eerJob, alloc float64, horizon sim.Duration) eerResult {
	cfg := qnet.DefaultConfig()
	cfg.Seed = seed
	cfg.Physics = physics
	cfg.EnforceEER = true
	reqs := make([]qnet.Request, j.requests)
	for i := range reqs {
		rate := alloc * 0.4
		if j.oversized {
			rate = 2 * alloc
		}
		reqs[i] = qnet.Request{
			ID: qnet.RequestID(fmt.Sprintf("m%d", i)), Type: qnet.Measure,
			MeasureBasis: quantum.ZBasis, Rate: rate,
		}
	}
	res, err := qnet.Scenario{
		Name:     "eer-saturation",
		Config:   cfg,
		Topology: qnet.DumbbellTopo(),
		Circuits: []qnet.CircuitSpec{{
			ID: "policed", Src: "A0", Dst: "B0", Fidelity: eerTargetF, Policy: qnet.CutoffShort,
			Workload: qnet.Batch{Requests: reqs},
		}},
		Horizon: horizon,
	}.Run()
	if err != nil {
		panic(err)
	}
	m := res.Metrics
	cm := m.Circuit("policed")
	return eerResult{MeasuredPS: cm.EER(m.Start, m.End), Rejected: cm.Rejected}
}

// eerSaturation is the parameterised core, so -short tests can trim the
// sweep without duplicating the scenario.
func eerSaturation(o Options, horizon sim.Duration, loads []int) *EERData {
	p := eerParams{Horizon: horizon, Loads: loads}
	g, jobs, runs, alloc := eerGrid(o, p)
	perReq := alloc * 0.4
	results := gridMap[eerResult](o, "eer", p, g)
	d := &EERData{AllocatedPS: alloc, HorizonS: horizon.Seconds()}
	for i := 0; i < len(jobs); i += runs {
		j := jobs[i]
		var meas, rej runner.Stats
		for _, r := range results[i : i+runs] {
			meas.Add(r.MeasuredPS)
			rej.Add(float64(r.Rejected))
		}
		offered := float64(j.requests) * perReq
		if j.oversized {
			offered = 2 * alloc
		}
		d.Points = append(d.Points, EERPoint{
			Requests: j.requests, OfferedPS: offered, MeasuredPS: meas.Mean(),
			Rejected: rej.Mean(), Oversized: j.oversized, AllocatedPS: alloc,
		})
	}
	return d
}

// Print writes the saturation table.
func (d *EERData) Print(w io.Writer) {
	header(w, fmt.Sprintf("EER saturation — policed A0-B0 circuit, allocation %.2f pairs/s, %.0f s runs",
		d.AllocatedPS, d.HorizonS))
	fmt.Fprintf(w, "%9s %11s %12s %10s\n", "requests", "offered/s", "measured/s", "rejected")
	for _, p := range d.Points {
		note := ""
		if p.Oversized {
			note = "  (single oversized request: policed away)"
		}
		fmt.Fprintf(w, "%9d %11.2f %12.2f %10.1f%s\n", p.Requests, p.OfferedPS, p.MeasuredPS, p.Rejected, note)
	}
	fmt.Fprintln(w, "demand above the allocation is shaped (queued) or rejected; the measured")
	fmt.Fprintln(w, "rate stays at or below the MaxEER allocation")
}
