package experiments

import (
	"encoding/json"
	"fmt"
	"io"

	"qnp/internal/runner"
	"qnp/internal/sim"
	"qnp/qnet"
)

// ChurnPoint is one (topology, hold time, allocation policy) cell of the
// churn study, averaged over replicas.
type ChurnPoint struct {
	Topology string
	HoldS    float64 // mean holding time (s)
	Static   bool    // static MaxLPR/2 allocation instead of re-fit
	Offered  int     // circuit arrivals offered per run
	Admitted float64 // mean circuits admitted
	Rejected float64 // mean circuits rejected at admission
	TWEER    float64 // mean time-weighted EER (pairs per circuit-second)
	Deliv    float64 // mean total pairs delivered
}

// ChurnData is the circuit-churn admission study.
type ChurnData struct {
	Points   []ChurnPoint
	Arrivals int
	DemandPS float64
	HorizonS float64
}

// churnTargetF is the end-to-end fidelity target of every churn circuit.
const churnTargetF = 0.85

// churnParams is the wire form of the sweep's shape.
type churnParams struct {
	Horizon  sim.Duration
	Holds    []sim.Duration
	Circuits int
}

// churnJob is one cell of the sweep.
type churnJob struct {
	topo   string
	hold   sim.Duration
	static bool
}

// churnResult is one replica's wire-friendly measurement.
type churnResult struct {
	Admitted  int
	Rejected  int
	TWEER     float64
	Delivered int
}

// churnDemand is each circuit's rate demand: 40% of the uncontended
// allocation, so the re-fit controller admits up to two circuits per link
// (MaxLPR/(2·2) ≥ demand) and rejects a third, while the static controller
// admits everything and lets the link contend. Deterministic — parent and
// shard workers compute the identical value (the allocation depends only on
// the uniform link hardware, so the dumbbell probe covers every topology).
func churnDemand() float64 { return 0.4 * eerAllocation() }

// churnScenario is one replica's declarative scenario: Circuits arrivals
// with uniform offsets over the first 60% of the horizon (a Poisson
// process conditioned on the arrival count has i.i.d. uniform arrival
// times) and exponential holding, each demanding churnDemand() pairs/s,
// admission-controlled with either re-fit or static allocation.
func churnScenario(topo string, hold sim.Duration, static bool, physics qnet.Physics, p churnParams, demand float64) qnet.Scenario {
	cfg := qnet.DefaultConfig()
	cfg.EnforceEER = true
	if static {
		cfg.Alloc = qnet.AllocStatic
	}
	cfg.Physics = physics
	var ts qnet.TopologySpec
	if topo == "grid" {
		ts = qnet.GridTopo(3, 3)
	} else {
		ts = qnet.DumbbellTopo()
	}
	return qnet.Scenario{
		Name:     "churn-" + topo,
		Config:   cfg,
		Topology: ts,
		Circuits: []qnet.CircuitSpec{{
			ID:       "vc",
			Select:   qnet.RandomPairs(p.Circuits),
			Fidelity: churnTargetF,
			Policy:   qnet.CutoffShort,
			Arrival:  qnet.Uniform(0, sim.Duration(float64(p.Horizon)*0.6)),
			Holding:  qnet.Exponential(hold),
			MinEER:   demand,
			Workload: qnet.MeasureStream{Rate: demand},
			Optional: true,
		}},
		Horizon: p.Horizon,
	}
}

// churnGrid derives the replica grid from (Options, params) alone, so
// shard workers rebuild it bit-identically.
func churnGrid(o Options, p churnParams) (grid, []churnJob, int, float64) {
	runs := o.Runs
	if runs > 3 {
		runs = 3
	}
	if o.Quick {
		runs = 1
	}
	demand := churnDemand()
	var jobs []churnJob
	for _, topo := range []string{"dumbbell", "grid"} {
		for _, hold := range p.Holds {
			for _, static := range []bool{false, true} {
				for r := 0; r < runs; r++ {
					jobs = append(jobs, churnJob{topo: topo, hold: hold, static: static})
				}
			}
		}
	}
	g := grid{n: len(jobs), run: func(i int, seed int64) any {
		return churnRun(seed, o.Physics, jobs[i], p, demand)
	}}
	return g, jobs, runs, demand
}

func init() {
	registerGrid("churn", func(o Options, raw json.RawMessage) (grid, error) {
		p, err := decodeParams[churnParams](raw)
		if err != nil {
			return grid{}, err
		}
		g, _, _, _ := churnGrid(o, p)
		return g, nil
	})
}

// churnRun measures one churn replica.
func churnRun(seed int64, physics qnet.Physics, j churnJob, p churnParams, demand float64) churnResult {
	sc := churnScenario(j.topo, j.hold, j.static, physics, p, demand)
	sc.Config.Seed = seed
	res, err := sc.Run()
	if err != nil {
		panic(err)
	}
	m := res.Metrics
	return churnResult{
		Admitted:  m.Admitted,
		Rejected:  m.RejectedAtAdmission,
		TWEER:     m.TimeWeightedEER(),
		Delivered: m.TotalDelivered(),
	}
}

// Churn runs the circuit-churn admission study: scheduled arrivals and
// departures under admission control, comparing membership re-fit against
// the static MaxLPR/2 allocation on the dumbbell and a 3×3 grid.
func Churn(o Options) *ChurnData {
	horizon, holds, circuits := 10*sim.Second, []sim.Duration{1 * sim.Second, 5 * sim.Second / 2, 5 * sim.Second}, 10
	if o.Quick {
		horizon, holds, circuits = 4*sim.Second, []sim.Duration{1 * sim.Second, 5 * sim.Second / 2}, 6
	}
	return churn(o, churnParams{Horizon: horizon, Holds: holds, Circuits: circuits})
}

// churn is the parameterised core.
func churn(o Options, p churnParams) *ChurnData {
	g, jobs, runs, demand := churnGrid(o, p)
	results := gridMap[churnResult](o, "churn", p, g)
	d := &ChurnData{Arrivals: p.Circuits, DemandPS: demand, HorizonS: p.Horizon.Seconds()}
	for i := 0; i < len(jobs); i += runs {
		j := jobs[i]
		var adm, rej, tw, del runner.Stats
		for _, r := range results[i : i+runs] {
			adm.Add(float64(r.Admitted))
			rej.Add(float64(r.Rejected))
			tw.Add(r.TWEER)
			del.Add(float64(r.Delivered))
		}
		d.Points = append(d.Points, ChurnPoint{
			Topology: j.topo, HoldS: j.hold.Seconds(), Static: j.static, Offered: p.Circuits,
			Admitted: adm.Mean(), Rejected: rej.Mean(), TWEER: tw.Mean(), Deliv: del.Mean(),
		})
	}
	return d
}

// Print writes the churn table.
func (d *ChurnData) Print(w io.Writer) {
	header(w, fmt.Sprintf("Circuit churn — %d Poisson arrivals/run, %.2f pairs/s demand each, %.0f s horizon",
		d.Arrivals, d.DemandPS, d.HorizonS))
	fmt.Fprintf(w, "%9s %7s %8s %9s %9s %9s %11s\n",
		"topology", "hold/s", "alloc", "admitted", "rejected", "tw-EER", "delivered")
	for _, p := range d.Points {
		alloc := "re-fit"
		if p.Static {
			alloc = "static"
		}
		fmt.Fprintf(w, "%9s %7.1f %8s %9.1f %9.1f %9.2f %11.1f\n",
			p.Topology, p.HoldS, alloc, p.Admitted, p.Rejected, p.TWEER, p.Deliv)
	}
	fmt.Fprintln(w, "re-fit splits each link's budget across its members and rejects arrivals it")
	fmt.Fprintln(w, "cannot serve; static admits everything at MaxLPR/2 and lets links contend")
}
