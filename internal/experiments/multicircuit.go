package experiments

import (
	"encoding/json"
	"fmt"
	"io"

	"qnp/internal/runner"
	"qnp/internal/sim"
	"qnp/qnet"
)

// The two multi-circuit workloads the chain/dumbbell-era harness could not
// express: hub contention on stars (every circuit's swaps land on one
// node) and path diversity on grids and Waxman graphs (circuits spread
// over link-disjoint routes). Both are plain Scenario declarations — the
// contention structure lives in the CircuitSpecs, not in bespoke wiring.

// HubPoint is one marker of the hub-contention study: k concurrent
// leaf-to-leaf circuits through a star's hub, either on disjoint spokes or
// fanning out of one shared gateway leaf.
type HubPoint struct {
	Circuits     int
	Shared       bool    // circuits share the gateway leaf's spoke
	AggregatePS  float64 // network-wide delivered pairs/s
	PerCircuitPS float64 // mean per-circuit pairs/s
	MinPS        float64 // slowest circuit's pairs/s (fairness floor)
	HubSwaps     float64 // mean swaps at the hub per second
	HubDiscards  float64 // mean cutoff discards at the hub per second
}

// HubData is the star hub-contention scenario set.
type HubData struct {
	Points   []HubPoint
	Leaves   int
	HorizonS float64
	TargetF  float64
}

// HubContention drives 1–4 concurrent two-hop circuits through a 9-node
// star's hub in two regimes. With disjoint leaf pairs every circuit has
// its own spokes and the hub merely accumulates all swap load — aggregate
// throughput scales with the circuit count. With all circuits fanning out
// of one gateway leaf they contend for that spoke's two communication
// qubits exactly like the dumbbell's bottleneck, and per-circuit
// throughput collapses as circuits join.
func HubContention(o Options) *HubData {
	horizon := 10 * sim.Second
	if o.Quick {
		horizon = 3 * sim.Second
	}
	return hubContention(o, horizon, []int{1, 2, 3, 4}, []bool{false, true})
}

const hubTargetF = 0.85

// hubParams is the wire form of the hub grid's shape, so trimmed -short
// grids shard exactly like the full figure.
type hubParams struct {
	Horizon sim.Duration
	Counts  []int
	Modes   []bool
}

type hubJob struct {
	circuits int
	shared   bool
}

// hubResult is one replica's wire-friendly measurement.
type hubResult struct {
	AggregatePS  float64
	MinPS        float64
	PerCircuitPS float64
	SwapsPS      float64
	DiscardsPS   float64
}

// hubGrid derives the replica grid from (Options, params) alone.
func hubGrid(o Options, p hubParams) (grid, []hubJob, int) {
	runs := o.Runs
	if runs > 3 {
		runs = 3
	}
	if o.Quick {
		runs = 1
	}
	var jobs []hubJob
	for _, shared := range p.Modes {
		for _, k := range p.Counts {
			for r := 0; r < runs; r++ {
				jobs = append(jobs, hubJob{k, shared})
			}
		}
	}
	g := grid{n: len(jobs), run: func(i int, seed int64) any {
		return hubRun(seed, jobs[i], p.Horizon)
	}}
	return g, jobs, runs
}

func init() {
	registerGrid("hub", func(o Options, raw json.RawMessage) (grid, error) {
		p, err := decodeParams[hubParams](raw)
		if err != nil {
			return grid{}, err
		}
		g, _, _ := hubGrid(o, p)
		return g, nil
	})
}

// hubRun measures one hub-contention replica.
func hubRun(seed int64, j hubJob, horizon sim.Duration) hubResult {
	cfg := qnet.DefaultConfig()
	cfg.Seed = seed
	// Star-9: hub n0, leaves n1..n8. Disjoint pairs use separate
	// spokes; shared pairs all originate at the n1 gateway.
	disjoint := [][2]string{{"n1", "n2"}, {"n3", "n4"}, {"n5", "n6"}, {"n7", "n8"}}
	shared := [][2]string{{"n1", "n2"}, {"n1", "n3"}, {"n1", "n4"}, {"n1", "n5"}}
	pairs := disjoint
	if j.shared {
		pairs = shared
	}
	specs := make([]qnet.CircuitSpec, j.circuits)
	for i := 0; i < j.circuits; i++ {
		specs[i] = qnet.CircuitSpec{
			ID: qnet.CircuitID(fmt.Sprintf("c%d", i)), Src: pairs[i][0], Dst: pairs[i][1],
			Fidelity: hubTargetF, Policy: qnet.CutoffShort,
			Workload: qnet.ContinuousKeep{},
		}
	}
	res, err := qnet.Scenario{
		Name:     fmt.Sprintf("hub-%d", j.circuits),
		Config:   cfg,
		Topology: qnet.StarTopo(9),
		Circuits: specs,
		Horizon:  horizon,
	}.Run()
	if err != nil {
		panic(err)
	}
	m := res.Metrics
	out := hubResult{AggregatePS: m.AggregateEER()}
	var per runner.Stats
	out.MinPS = -1
	for _, cm := range m.Circuits {
		eer := cm.EER(m.Start, m.End)
		per.Add(eer)
		if out.MinPS < 0 || eer < out.MinPS {
			out.MinPS = eer
		}
	}
	out.PerCircuitPS = per.Mean()
	hub := m.NodeStats["n0"]
	out.SwapsPS = float64(hub.Swaps) / horizon.Seconds()
	out.DiscardsPS = float64(hub.Discards) / horizon.Seconds()
	return out
}

// hubContention is the parameterised core, so -short tests can trim the
// grid without duplicating the scenario.
func hubContention(o Options, horizon sim.Duration, counts []int, modes []bool) *HubData {
	p := hubParams{Horizon: horizon, Counts: counts, Modes: modes}
	g, jobs, runs := hubGrid(o, p)
	results := gridMap[hubResult](o, "hub", p, g)
	d := &HubData{Leaves: 8, HorizonS: horizon.Seconds(), TargetF: hubTargetF}
	for i := 0; i < len(jobs); i += runs {
		var agg, per, min, sw, disc runner.Stats
		for _, r := range results[i : i+runs] {
			agg.Add(r.AggregatePS)
			per.Add(r.PerCircuitPS)
			min.Add(r.MinPS)
			sw.Add(r.SwapsPS)
			disc.Add(r.DiscardsPS)
		}
		d.Points = append(d.Points, HubPoint{
			Circuits: jobs[i].circuits, Shared: jobs[i].shared,
			AggregatePS: agg.Mean(), PerCircuitPS: per.Mean(),
			MinPS: min.Mean(), HubSwaps: sw.Mean(), HubDiscards: disc.Mean(),
		})
	}
	return d
}

// Print writes the hub-contention tables.
func (d *HubData) Print(w io.Writer) {
	header(w, fmt.Sprintf("Hub contention — star-%d, two-hop circuits at F=%.2f, %.0f s horizon",
		d.Leaves+1, d.TargetF, d.HorizonS))
	for _, shared := range []bool{false, true} {
		name := "disjoint spokes (hub accumulates swap load)"
		if shared {
			name = "shared gateway spoke (memory contention at the hub's port)"
		}
		fmt.Fprintf(w, "\n%s\n%9s %12s %13s %10s %11s %13s\n", name,
			"circuits", "aggregate/s", "per-circuit/s", "min/s", "hub swaps/s", "hub discard/s")
		for _, p := range d.Points {
			if p.Shared != shared {
				continue
			}
			fmt.Fprintf(w, "%9d %12.2f %13.2f %10.2f %11.1f %13.1f\n",
				p.Circuits, p.AggregatePS, p.PerCircuitPS, p.MinPS, p.HubSwaps, p.HubDiscards)
		}
	}
}

// DiversityPoint is one marker of the path-diversity study.
type DiversityPoint struct {
	Topology     string
	Circuits     int
	Feasible     float64 // mean fraction of circuits that could be planned
	AggregatePS  float64
	PerCircuitPS float64
	MeanHops     float64
}

// DiversityData is the grid/Waxman path-diversity scenario set.
type DiversityData struct {
	Points   []DiversityPoint
	HorizonS float64
	TargetF  float64
}

// PathDiversity runs 1, 2 and 4 concurrent circuits over a 4×4 grid (one
// three-hop circuit per row — fully link-disjoint routes) and over 12-node
// Waxman graphs (random endpoint pairs). Unlike the shared-spoke star,
// aggregate throughput grows with the circuit count because the mesh
// offers disjoint routes — the routing argument for path-diverse
// topologies.
func PathDiversity(o Options) *DiversityData {
	horizon := 10 * sim.Second
	if o.Quick {
		horizon = 3 * sim.Second
	}
	return pathDiversity(o, horizon, []string{"grid-4x4", "waxman-12"}, []int{1, 2, 4})
}

const diversityTargetF = 0.8

// diversityParams is the wire form of the diversity grid's shape.
type diversityParams struct {
	Horizon    sim.Duration
	Topologies []string
	Counts     []int
}

type diversityJob struct {
	topology string
	circuits int
}

// diversityResult is one replica's wire-friendly measurement.
type diversityResult struct {
	Feasible     float64
	AggregatePS  float64
	PerCircuitPS float64
	Hops         float64
}

// diversityGrid derives the replica grid from (Options, params) alone.
func diversityGrid(o Options, p diversityParams) (grid, []diversityJob, int) {
	runs := o.Runs
	if runs > 3 {
		runs = 3
	}
	if o.Quick {
		runs = 1
	}
	var jobs []diversityJob
	for _, topology := range p.Topologies {
		for _, k := range p.Counts {
			for r := 0; r < runs; r++ {
				jobs = append(jobs, diversityJob{topology, k})
			}
		}
	}
	g := grid{n: len(jobs), run: func(i int, seed int64) any {
		return diversityRun(seed, jobs[i], p.Horizon)
	}}
	return g, jobs, runs
}

func init() {
	registerGrid("diversity", func(o Options, raw json.RawMessage) (grid, error) {
		p, err := decodeParams[diversityParams](raw)
		if err != nil {
			return grid{}, err
		}
		g, _, _ := diversityGrid(o, p)
		return g, nil
	})
}

// diversityRun measures one path-diversity replica.
func diversityRun(seed int64, j diversityJob, horizon sim.Duration) diversityResult {
	cfg := qnet.DefaultConfig()
	cfg.Seed = seed
	// One circuit per grid row (row-major numbering): link-disjoint routes.
	gridPairs := [][2]string{{"n0", "n3"}, {"n4", "n7"}, {"n8", "n11"}, {"n12", "n15"}}
	var topo qnet.TopologySpec
	var specs []qnet.CircuitSpec
	if j.topology == "grid-4x4" {
		topo = qnet.GridTopo(4, 4)
		for i := 0; i < j.circuits; i++ {
			specs = append(specs, qnet.CircuitSpec{
				Src: gridPairs[i][0], Dst: gridPairs[i][1],
				Fidelity: diversityTargetF, Workload: qnet.ContinuousKeep{}, Optional: true,
			})
		}
	} else {
		topo = qnet.WaxmanTopo(12, 0.5, 0.4)
		specs = []qnet.CircuitSpec{{
			Select:   qnet.RandomPairs(j.circuits),
			Fidelity: diversityTargetF, Workload: qnet.ContinuousKeep{}, Optional: true,
		}}
	}
	res, err := qnet.Scenario{
		Name:     fmt.Sprintf("%s-%d", j.topology, j.circuits),
		Config:   cfg,
		Topology: topo,
		Circuits: specs,
		Horizon:  horizon,
	}.Run()
	if err != nil {
		panic(err)
	}
	m := res.Metrics
	out := diversityResult{AggregatePS: m.AggregateEER()}
	var feas, per, hops runner.Stats
	for _, cm := range m.Circuits {
		if !cm.Established {
			feas.Add(0)
			continue
		}
		feas.Add(1)
		per.Add(cm.EER(m.Start, m.End))
		hops.Add(float64(len(cm.Path) - 1))
	}
	out.Feasible = feas.Mean()
	out.PerCircuitPS = per.Mean()
	out.Hops = hops.Mean()
	return out
}

// pathDiversity is the parameterised core, so -short tests can trim the
// grid without duplicating the scenario.
func pathDiversity(o Options, horizon sim.Duration, topologies []string, counts []int) *DiversityData {
	p := diversityParams{Horizon: horizon, Topologies: topologies, Counts: counts}
	g, jobs, runs := diversityGrid(o, p)
	results := gridMap[diversityResult](o, "diversity", p, g)
	d := &DiversityData{HorizonS: horizon.Seconds(), TargetF: diversityTargetF}
	for i := 0; i < len(jobs); i += runs {
		j := jobs[i]
		var feas, agg, per, hops runner.Stats
		for _, r := range results[i : i+runs] {
			feas.Add(r.Feasible)
			agg.Add(r.AggregatePS)
			per.Add(r.PerCircuitPS)
			hops.Add(r.Hops)
		}
		d.Points = append(d.Points, DiversityPoint{
			Topology: j.topology, Circuits: j.circuits,
			Feasible: feas.Mean(), AggregatePS: agg.Mean(),
			PerCircuitPS: per.Mean(), MeanHops: hops.Mean(),
		})
	}
	return d
}

// Print writes the path-diversity table.
func (d *DiversityData) Print(w io.Writer) {
	header(w, fmt.Sprintf("Path diversity — concurrent circuits at F=%.2f, %.0f s horizon", d.TargetF, d.HorizonS))
	fmt.Fprintf(w, "%-10s %9s %9s %6s %12s %13s\n",
		"topology", "circuits", "feasible", "hops", "aggregate/s", "per-circuit/s")
	for _, p := range d.Points {
		fmt.Fprintf(w, "%-10s %9d %9.2f %6.1f %12.2f %13.2f\n",
			p.Topology, p.Circuits, p.Feasible, p.MeanHops, p.AggregatePS, p.PerCircuitPS)
	}
}
