// Package experiments regenerates every table and figure of the paper's
// evaluation section (§5). Each FigN function runs the corresponding
// scenario on the full protocol stack and returns the series the paper
// plots; the WriteTo methods print them as aligned text tables.
//
// Absolute numbers come from this repository's simulator, not the authors'
// NetSquid testbed, so the comparison target is the *shape* of each result:
// who wins, where the knees and crossovers sit, and the scaling trends.
// EXPERIMENTS.md records paper-versus-measured for every item.
package experiments

import (
	"context"
	"fmt"
	"io"

	"qnp/internal/runner"
	"qnp/internal/sim"
)

// Options control experiment size. Runs is the number of independent
// simulation repetitions averaged per point (the paper uses 100; the
// default here is smaller so the whole suite regenerates in minutes).
type Options struct {
	Runs int
	Seed int64
	// Quick shrinks workloads (fewer pairs, shorter horizons) for smoke
	// runs and benchmarks.
	Quick bool
	// Workers caps the replica runner's worker pool (0 = NumCPU). The
	// value only changes wall-clock time: figure aggregates are
	// bit-identical for any worker count.
	Workers int
	// Progress, when non-nil, receives a tick after each simulation
	// replica of the current figure completes.
	Progress func(done, total int)
	// Context, when non-nil, cancels the remaining replicas of the
	// current figure early. A cancelled figure's aggregates include
	// zero values for the replicas that never ran, so callers must
	// treat its output as garbage and discard it (cmd/figures does).
	Context context.Context
}

// DefaultOptions is the standard reproduction size.
func DefaultOptions() Options { return Options{Runs: 10, Seed: 1} }

// QuickOptions is the smoke-test size.
func QuickOptions() Options { return Options{Runs: 2, Seed: 1, Quick: true} }

func (o Options) runnerOpts() runner.Options {
	return runner.Options{Workers: o.Workers, Seed: o.Seed, Progress: o.Progress, Context: o.Context}
}

// parallelRuns fans a figure point's o.Runs independent replicas through
// the runner; fn must build its own network from the seed it is handed.
// Results come back in replica order.
func parallelRuns[T any](o Options, fn func(seed int64) T) []T {
	out, _ := runner.Run(o.runnerOpts(), o.Runs, func(_ int, seed int64) T {
		return fn(seed)
	})
	return out
}

// mapJobs fans a whole scenario grid (every point × replica) through the
// runner at once, so a figure saturates the pool even when each point
// only has one replica. Results come back in job order.
func mapJobs[J, T any](o Options, jobs []J, fn func(job J, seed int64) T) []T {
	out, _ := runner.Map(o.runnerOpts(), jobs, fn)
	return out
}

func mean(xs []float64) float64 { return runner.Mean(xs) }

func percentile(xs []float64, p float64) float64 { return runner.Percentile(xs, p) }

func seconds(d sim.Duration) float64 { return d.Seconds() }

func header(w io.Writer, title string) {
	fmt.Fprintf(w, "\n== %s ==\n", title)
}
