// Package experiments regenerates every table and figure of the paper's
// evaluation section (§5). Each FigN function runs the corresponding
// scenario on the full protocol stack and returns the series the paper
// plots; the WriteTo methods print them as aligned text tables.
//
// Absolute numbers come from this repository's simulator, not the authors'
// NetSquid testbed, so the comparison target is the *shape* of each result:
// who wins, where the knees and crossovers sit, and the scaling trends.
// EXPERIMENTS.md records paper-versus-measured for every item.
package experiments

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"

	"qnp/internal/sim"
)

// Options control experiment size. Runs is the number of independent
// simulation repetitions averaged per point (the paper uses 100; the
// default here is smaller so the whole suite regenerates in minutes).
type Options struct {
	Runs int
	Seed int64
	// Quick shrinks workloads (fewer pairs, shorter horizons) for smoke
	// runs and benchmarks.
	Quick bool
}

// DefaultOptions is the standard reproduction size.
func DefaultOptions() Options { return Options{Runs: 10, Seed: 1} }

// QuickOptions is the smoke-test size.
func QuickOptions() Options { return Options{Runs: 2, Seed: 1, Quick: true} }

// parallelRuns fans out independent simulation runs across CPUs; fn must
// build its own Network from the given seed. Results are kept in run order
// so output is deterministic regardless of scheduling.
func parallelRuns[T any](o Options, fn func(seed int64) T) []T {
	out := make([]T, o.Runs)
	sem := make(chan struct{}, runtime.NumCPU())
	var wg sync.WaitGroup
	for i := 0; i < o.Runs; i++ {
		i := i
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			out[i] = fn(o.Seed + int64(i)*1000003)
		}()
	}
	wg.Wait()
	return out
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	idx := int(p * float64(len(s)-1))
	return s[idx]
}

func seconds(d sim.Duration) float64 { return d.Seconds() }

func header(w io.Writer, title string) {
	fmt.Fprintf(w, "\n== %s ==\n", title)
}
