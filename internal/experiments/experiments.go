// Package experiments regenerates every table and figure of the paper's
// evaluation section (§5). Each FigN function runs the corresponding
// scenario on the full protocol stack and returns the series the paper
// plots; the WriteTo methods print them as aligned text tables.
//
// Absolute numbers come from this repository's simulator, not the authors'
// NetSquid testbed, so the comparison target is the *shape* of each result:
// who wins, where the knees and crossovers sit, and the scaling trends.
// EXPERIMENTS.md records paper-versus-measured for every item.
package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"qnp/internal/runner"
	"qnp/internal/sim"
	"qnp/qnet"
)

// Options control experiment size. Runs is the number of independent
// simulation repetitions averaged per point (the paper uses 100; the
// default here is smaller so the whole suite regenerates in minutes).
type Options struct {
	Runs int
	Seed int64
	// Quick shrinks workloads (fewer pairs, shorter horizons) for smoke
	// runs and benchmarks.
	Quick bool
	// Workers caps the replica runner's worker pool (0 = NumCPU). The
	// value only changes wall-clock time: figure aggregates are
	// bit-identical for any worker count.
	Workers int
	// Progress, when non-nil, receives a tick after each simulation
	// replica of the current figure completes.
	Progress func(done, total int)
	// Context, when non-nil, cancels the remaining replicas of the
	// current figure early. A cancelled figure's aggregates include
	// zero values for the replicas that never ran, so callers must
	// treat its output as garbage and discard it (cmd/figures does).
	Context context.Context
	// Backend, when non-nil, executes each figure's replica grid through
	// the runner's Backend seam (runner.Subprocess shards it across worker
	// processes). Replica seeding and aggregation order are
	// backend-independent, so figure output is bit-identical for any
	// backend and shard count.
	Backend runner.Backend
	// Physics selects the pair-state engine for the figures that support
	// it (fig9, eer, churn, city — the cross-engine validation set). The
	// other figures always run exact: they measure fidelity-sensitive
	// quantities the Werner approximation is not meant to reproduce.
	Physics qnet.Physics
	// Timeout is the Backend's liveness bound — the Subprocess inactivity
	// watchdog or the Fleet heartbeat bound. 0 defers to the backend's own
	// default; negative disables detection. In-process runs ignore it.
	Timeout time.Duration
}

// DefaultOptions is the standard reproduction size.
func DefaultOptions() Options { return Options{Runs: 10, Seed: 1} }

// QuickOptions is the smoke-test size.
func QuickOptions() Options { return Options{Runs: 2, Seed: 1, Quick: true} }

func (o Options) runnerOpts() runner.Options {
	return runner.Options{Workers: o.Workers, Seed: o.Seed, Progress: o.Progress, Context: o.Context}
}

// Figures fan their scenario grid × replica matrix through the runner as a
// "grid": the job count plus a function running job i from its seed. Every
// grid is registered by figure ID with a constructor that rebuilds it from
// (Options, params) alone, so a shard worker process — which holds only
// the serialized gridJob — re-derives the exact same job list and runs any
// index of it. Grid results must JSON round-trip exactly (ints and
// float64s do); that is what keeps sharded figure output byte-identical.

// grid is one figure's replica matrix.
type grid struct {
	n   int
	run func(i int, seed int64) any
}

// wireOptions is the serializable Options subset a worker needs to rebuild
// a grid. Workers, Progress, Context and Backend stay parent-side: they
// steer execution, never results.
type wireOptions struct {
	Runs    int
	Seed    int64
	Quick   bool
	Physics qnet.Physics `json:",omitempty"`
}

func (w wireOptions) options() Options {
	return Options{Runs: w.Runs, Seed: w.Seed, Quick: w.Quick, Physics: w.Physics}
}

// gridJob is the wire form of "one replica of figure Fig's grid".
type gridJob struct {
	Fig    string
	Opts   wireOptions
	Params json.RawMessage `json:",omitempty"`
}

// gridFuncs rebuilds a figure's grid from its wire coordinates; populated
// in each figure file's init, so parent and re-exec'd worker share it.
var gridFuncs = map[string]func(o Options, params json.RawMessage) (grid, error){}

func registerGrid(fig string, mk func(o Options, params json.RawMessage) (grid, error)) {
	if _, dup := gridFuncs[fig]; dup {
		panic("experiments: grid " + fig + " registered twice")
	}
	gridFuncs[fig] = mk
}

// gridKind is the runner job kind for figure grids: payload = gridJob,
// result = the grid run function's JSON-encoded return value.
const gridKind = "experiments.grid"

// gridMemo caches the last rebuilt grid by payload: a shard worker serves
// one payload for its whole replica range, so rebuilding the grid (which
// for some figures probes a network, e.g. eer's allocation read) once
// instead of once per replica. Grid run functions are replica-pure, so
// reuse across concurrent replicas is safe.
var gridMemo struct {
	sync.Mutex
	payload string
	g       grid
	ok      bool
}

func gridFor(payload []byte) (grid, error) {
	gridMemo.Lock()
	defer gridMemo.Unlock()
	if gridMemo.ok && gridMemo.payload == string(payload) {
		return gridMemo.g, nil
	}
	var j gridJob
	if err := json.Unmarshal(payload, &j); err != nil {
		return grid{}, fmt.Errorf("experiments: decode grid job: %w", err)
	}
	mk := gridFuncs[j.Fig]
	if mk == nil {
		return grid{}, fmt.Errorf("experiments: unknown figure grid %q", j.Fig)
	}
	g, err := mk(j.Opts.options(), j.Params)
	if err != nil {
		return grid{}, fmt.Errorf("experiments: rebuild %s grid: %w", j.Fig, err)
	}
	gridMemo.payload, gridMemo.g, gridMemo.ok = string(payload), g, true
	return g, nil
}

func init() {
	runner.RegisterKind(gridKind, func(payload []byte, replica int, seed int64) ([]byte, error) {
		g, err := gridFor(payload)
		if err != nil {
			return nil, err
		}
		if replica < 0 || replica >= g.n {
			return nil, fmt.Errorf("experiments: grid %s has %d jobs, got index %d", payload, g.n, replica)
		}
		return json.Marshal(g.run(replica, seed))
	})
}

// decodeParams is the grid constructors' params decoder (nil params decode
// to the zero value, for grids without any).
func decodeParams[P any](raw json.RawMessage) (P, error) {
	var p P
	if len(raw) == 0 {
		return p, nil
	}
	err := json.Unmarshal(raw, &p)
	return p, err
}

// gridMap runs figure fig's whole grid — locally on the goroutine pool, or
// through o.Backend when set — and returns the results in job order.
// params must be the same value the registered constructor derives g from.
// Infrastructure failures (a shard crashing past its retries, undecodable
// results) panic, like any other impossible condition inside a figure;
// cancellation returns the partial results, which cmd/figures discards.
func gridMap[T any](o Options, fig string, params any, g grid) []T {
	if o.Backend == nil {
		out, _ := runner.Run(o.runnerOpts(), g.n, func(i int, seed int64) T {
			return g.run(i, seed).(T)
		})
		return out
	}
	job := gridJob{Fig: fig, Opts: wireOptions{Runs: o.Runs, Seed: o.Seed, Quick: o.Quick, Physics: o.Physics}}
	if params != nil {
		raw, err := json.Marshal(params)
		if err != nil {
			panic(fmt.Sprintf("experiments: encode %s grid params: %v", fig, err))
		}
		job.Params = raw
	}
	payload, err := json.Marshal(job)
	if err != nil {
		panic(fmt.Sprintf("experiments: encode %s grid job: %v", fig, err))
	}
	out := make([]T, g.n)
	var decErr error
	ex, err := o.Backend.Dispatch(runner.ExecRequest{
		Kind: gridKind, Payload: payload, Replicas: g.n,
		Options: o.runnerOpts(), Timeout: o.Timeout,
	})
	if err == nil {
		for r := range ex.Results() {
			if e := json.Unmarshal(r.Data, &out[r.Replica]); e != nil && decErr == nil {
				decErr = fmt.Errorf("experiments: decode %s result %d: %w", fig, r.Replica, e)
			}
		}
		err = ex.Wait()
	}
	if err == nil {
		err = decErr
	}
	if err != nil {
		if o.Context != nil && o.Context.Err() != nil {
			return out // cancelled: partial results, discarded by the caller
		}
		panic(fmt.Sprintf("experiments: %s grid on %T: %v", fig, o.Backend, err))
	}
	return out
}

func mean(xs []float64) float64 { return runner.Mean(xs) }

func percentile(xs []float64, p float64) float64 { return runner.Percentile(xs, p) }

func seconds(d sim.Duration) float64 { return d.Seconds() }

func header(w io.Writer, title string) {
	fmt.Fprintf(w, "\n== %s ==\n", title)
}
