package experiments

import (
	"encoding/json"
	"fmt"
	"io"

	"qnp/internal/runner"
	"qnp/internal/sim"
	"qnp/qnet"
)

// TopoPoint aggregates one topology's replicas in the sweep: the steady
// throughput and delivered fidelity of a circuit spanning the topology's
// diameter.
type TopoPoint struct {
	Topology string
	Nodes    int
	// Links and Hops are means over replicas — the Waxman graphs resample
	// their layout each replica, so these are fractional there.
	Links float64
	Hops  float64
	// FeasibleFrac is the fraction of replicas whose diameter circuit the
	// routing controller could plan at the target fidelity.
	FeasibleFrac float64
	PairsPS      float64
	MeanFid      float64
}

// TopoData is the topology sweep: the same protocol stack and hardware
// driven over chains, rings, stars, grids and Waxman random graphs.
type TopoData struct {
	Points   []TopoPoint
	HorizonS float64
	TargetF  float64
}

// topoScenario names a declarative topology the sweep drives.
type topoScenario struct {
	name  string
	nodes int
	topo  qnet.TopologySpec
}

func topoScenarios() []topoScenario {
	return []topoScenario{
		{"chain-3", 3, qnet.ChainTopo(3)},
		{"chain-5", 5, qnet.ChainTopo(5)},
		{"ring-6", 6, qnet.RingTopo(6)},
		{"star-6", 6, qnet.StarTopo(6)},
		{"grid-3x3", 9, qnet.GridTopo(3, 3)},
		{"waxman-10", 10, qnet.WaxmanTopo(10, 0.5, 0.4)},
	}
}

// topoResult is one replica's wire-friendly measurement.
type topoResult struct {
	Links, Hops int
	Feasible    bool
	PairsPS     float64
	MeanFid     float64
}

const topoTargetF = 0.85

// topoGrid derives the sweep's replica grid from Options alone.
func topoGrid(o Options) (grid, []topoScenario, int, sim.Duration) {
	horizon := 10 * sim.Second
	runs := o.Runs
	if runs > 3 {
		runs = 3
	}
	if o.Quick {
		horizon = 3 * sim.Second
		runs = 1
	}
	var jobs []topoScenario
	for _, sc := range topoScenarios() {
		for r := 0; r < runs; r++ {
			jobs = append(jobs, sc)
		}
	}
	g := grid{n: len(jobs), run: func(i int, seed int64) any {
		return topoRun(seed, jobs[i], horizon)
	}}
	return g, jobs, runs, horizon
}

func init() {
	registerGrid("topo", func(o Options, _ json.RawMessage) (grid, error) {
		g, _, _, _ := topoGrid(o)
		return g, nil
	})
}

// topoRun measures one topology replica.
func topoRun(seed int64, sc topoScenario, horizon sim.Duration) topoResult {
	cfg := qnet.DefaultConfig()
	cfg.Seed = seed
	run, err := qnet.Scenario{
		Config:   cfg,
		Topology: sc.topo,
		Circuits: []qnet.CircuitSpec{{
			ID: "topo", Select: qnet.DiameterPair(), Fidelity: topoTargetF,
			Workload: qnet.ContinuousKeep{ID: "tp"},
			// Some shapes cannot plan a diameter circuit at this target:
			// that is the sweep's FeasibleFrac, not an error.
			Optional:       true,
			RecordFidelity: true,
		}},
		Horizon: horizon,
	}.Run()
	if err != nil {
		panic(err)
	}
	_, _, hops := run.Net.Diameter()
	res := topoResult{Links: run.Metrics.Links, Hops: hops}
	cm := run.Metrics.Circuit("topo")
	if !cm.Established {
		return res
	}
	res.Feasible = true
	// Mean over pair deliveries only (a Measure delivery records F=0).
	var fids runner.Stats
	fids.Add(cm.Fidelities...)
	res.PairsPS = float64(cm.Delivered) / horizon.Seconds()
	res.MeanFid = fids.Mean()
	return res
}

// TopologySweep drives a diameter-spanning circuit on each generator's
// output — the scenario-shape sweep the chain-only seed could not express.
// Every topology runs the identical hardware and protocol stack, so
// differences isolate what the graph shape does to end-to-end entanglement
// distribution (hop count, swap concentration at hubs, path diversity).
func TopologySweep(o Options) *TopoData {
	g, jobs, runs, horizon := topoGrid(o)
	results := gridMap[topoResult](o, "topo", nil, g)
	d := &TopoData{HorizonS: horizon.Seconds(), TargetF: topoTargetF}
	for i := 0; i < len(jobs); i += runs {
		sc := jobs[i]
		var links, hops, feas, tp, mf runner.Stats
		for _, r := range results[i : i+runs] {
			links.Add(float64(r.Links))
			hops.Add(float64(r.Hops))
			if r.Feasible {
				feas.Add(1)
				tp.Add(r.PairsPS)
				mf.Add(r.MeanFid)
			} else {
				feas.Add(0)
			}
		}
		d.Points = append(d.Points, TopoPoint{
			Topology: sc.name, Nodes: sc.nodes,
			Links: links.Mean(), Hops: hops.Mean(),
			FeasibleFrac: feas.Mean(), PairsPS: tp.Mean(), MeanFid: mf.Mean(),
		})
	}
	return d
}

// Print writes the sweep table.
func (d *TopoData) Print(w io.Writer) {
	header(w, fmt.Sprintf("Topology sweep — diameter circuit at F=%.2f, %.0f s horizon", d.TargetF, d.HorizonS))
	fmt.Fprintf(w, "%-10s %6s %6s %5s %9s %9s %9s\n",
		"topology", "nodes", "links", "hops", "feasible", "pairs/s", "mean F")
	for _, p := range d.Points {
		fmt.Fprintf(w, "%-10s %6d %6.1f %5.1f %9.2f %9.2f %9.3f\n",
			p.Topology, p.Nodes, p.Links, p.Hops, p.FeasibleFrac, p.PairsPS, p.MeanFid)
	}
}
