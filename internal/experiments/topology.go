package experiments

import (
	"fmt"
	"io"

	"qnp/internal/runner"
	"qnp/internal/sim"
	"qnp/qnet"
)

// TopoPoint aggregates one topology's replicas in the sweep: the steady
// throughput and delivered fidelity of a circuit spanning the topology's
// diameter.
type TopoPoint struct {
	Topology string
	Nodes    int
	// Links and Hops are means over replicas — the Waxman graphs resample
	// their layout each replica, so these are fractional there.
	Links float64
	Hops  float64
	// FeasibleFrac is the fraction of replicas whose diameter circuit the
	// routing controller could plan at the target fidelity.
	FeasibleFrac float64
	PairsPS      float64
	MeanFid      float64
}

// TopoData is the topology sweep: the same protocol stack and hardware
// driven over chains, rings, stars, grids and Waxman random graphs.
type TopoData struct {
	Points   []TopoPoint
	HorizonS float64
	TargetF  float64
}

// topoScenario names a declarative topology the sweep drives.
type topoScenario struct {
	name  string
	nodes int
	topo  qnet.TopologySpec
}

func topoScenarios() []topoScenario {
	return []topoScenario{
		{"chain-3", 3, qnet.ChainTopo(3)},
		{"chain-5", 5, qnet.ChainTopo(5)},
		{"ring-6", 6, qnet.RingTopo(6)},
		{"star-6", 6, qnet.StarTopo(6)},
		{"grid-3x3", 9, qnet.GridTopo(3, 3)},
		{"waxman-10", 10, qnet.WaxmanTopo(10, 0.5, 0.4)},
	}
}

// TopologySweep drives a diameter-spanning circuit on each generator's
// output — the scenario-shape sweep the chain-only seed could not express.
// Every topology runs the identical hardware and protocol stack, so
// differences isolate what the graph shape does to end-to-end entanglement
// distribution (hop count, swap concentration at hubs, path diversity).
func TopologySweep(o Options) *TopoData {
	horizon := 10 * sim.Second
	const fid = 0.85
	runs := o.Runs
	if runs > 3 {
		runs = 3
	}
	if o.Quick {
		horizon = 3 * sim.Second
		runs = 1
	}
	scens := topoScenarios()
	type result struct {
		links, hops int
		feasible    bool
		pairsPS     float64
		meanFid     float64
	}
	var jobs []topoScenario
	for _, sc := range scens {
		for r := 0; r < runs; r++ {
			jobs = append(jobs, sc)
		}
	}
	results := mapJobs(o, jobs, func(sc topoScenario, seed int64) result {
		cfg := qnet.DefaultConfig()
		cfg.Seed = seed
		run, err := qnet.Scenario{
			Config:   cfg,
			Topology: sc.topo,
			Circuits: []qnet.CircuitSpec{{
				ID: "topo", Select: qnet.DiameterPair(), Fidelity: fid,
				Workload: qnet.ContinuousKeep{ID: "tp"},
				// Some shapes cannot plan a diameter circuit at this target:
				// that is the sweep's FeasibleFrac, not an error.
				Optional:       true,
				RecordFidelity: true,
			}},
			Horizon: horizon,
		}.Run()
		if err != nil {
			panic(err)
		}
		_, _, hops := run.Net.Diameter()
		res := result{links: run.Metrics.Links, hops: hops}
		cm := run.Metrics.Circuit("topo")
		if !cm.Established {
			return res
		}
		res.feasible = true
		// Mean over pair deliveries only (a Measure delivery records F=0).
		var fids runner.Stats
		fids.Add(cm.Fidelities...)
		res.pairsPS = float64(cm.Delivered) / horizon.Seconds()
		res.meanFid = fids.Mean()
		return res
	})
	d := &TopoData{HorizonS: horizon.Seconds(), TargetF: fid}
	for i := 0; i < len(jobs); i += runs {
		sc := jobs[i]
		var links, hops, feas, tp, mf runner.Stats
		for _, r := range results[i : i+runs] {
			links.Add(float64(r.links))
			hops.Add(float64(r.hops))
			if r.feasible {
				feas.Add(1)
				tp.Add(r.pairsPS)
				mf.Add(r.meanFid)
			} else {
				feas.Add(0)
			}
		}
		d.Points = append(d.Points, TopoPoint{
			Topology: sc.name, Nodes: sc.nodes,
			Links: links.Mean(), Hops: hops.Mean(),
			FeasibleFrac: feas.Mean(), PairsPS: tp.Mean(), MeanFid: mf.Mean(),
		})
	}
	return d
}

// Print writes the sweep table.
func (d *TopoData) Print(w io.Writer) {
	header(w, fmt.Sprintf("Topology sweep — diameter circuit at F=%.2f, %.0f s horizon", d.TargetF, d.HorizonS))
	fmt.Fprintf(w, "%-10s %6s %6s %5s %9s %9s %9s\n",
		"topology", "nodes", "links", "hops", "feasible", "pairs/s", "mean F")
	for _, p := range d.Points {
		fmt.Fprintf(w, "%-10s %6d %6.1f %5.1f %9.2f %9.2f %9.3f\n",
			p.Topology, p.Nodes, p.Links, p.Hops, p.FeasibleFrac, p.PairsPS, p.MeanFid)
	}
}
