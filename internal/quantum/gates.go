// Package quantum implements the quantum-state machinery the paper's
// evaluation relies on NetSquid for: two-qubit entangled-pair states as exact
// density matrices, noisy gates and measurements as Kraus channels, Bell-state
// algebra for entanglement tracking, entanglement swapping composed on the
// joint four-qubit state, teleportation and BBPSSW distillation.
//
// Pairs are the unit of state. A pair's density matrix is 4×4 in the basis
// |00>,|01>,|10>,|11> with the *left* qubit first. Entanglement swaps build
// the 16×16 joint state of two pairs, apply the noisy Bell-state measurement
// at the middle node, and return the exact post-measurement remote pair.
package quantum

import (
	"math"
	"math/cmplx"

	"qnp/internal/linalg"
)

// Standard single-qubit gates.
var (
	// I2 is the single-qubit identity.
	I2 = linalg.Identity(2)
	// X, Y, Z are the Pauli matrices.
	X = linalg.FromRows([][]complex128{{0, 1}, {1, 0}})
	Y = linalg.FromRows([][]complex128{{0, complex(0, -1)}, {complex(0, 1), 0}})
	Z = linalg.FromRows([][]complex128{{1, 0}, {0, -1}})
	// H is the Hadamard gate.
	H = linalg.FromRows([][]complex128{
		{complex(1/math.Sqrt2, 0), complex(1/math.Sqrt2, 0)},
		{complex(1/math.Sqrt2, 0), complex(-1/math.Sqrt2, 0)},
	})
	// S is the phase gate diag(1, i).
	S = linalg.FromRows([][]complex128{{1, 0}, {0, complex(0, 1)}})
	// SDagger is diag(1, -i).
	SDagger = linalg.FromRows([][]complex128{{1, 0}, {0, complex(0, -1)}})
	// T is the π/8 gate.
	T = linalg.FromRows([][]complex128{{1, 0}, {0, cmplx.Exp(complex(0, math.Pi/4))}})
)

// Two-qubit gates in the basis |00>,|01>,|10>,|11> (first qubit = control
// where applicable).
var (
	// CNOT flips the second qubit when the first is |1>.
	CNOT = linalg.FromRows([][]complex128{
		{1, 0, 0, 0},
		{0, 1, 0, 0},
		{0, 0, 0, 1},
		{0, 0, 1, 0},
	})
	// CZ applies a phase of -1 to |11>.
	CZ = linalg.FromRows([][]complex128{
		{1, 0, 0, 0},
		{0, 1, 0, 0},
		{0, 0, 1, 0},
		{0, 0, 0, -1},
	})
	// SWAP exchanges the two qubits.
	SWAP = linalg.FromRows([][]complex128{
		{1, 0, 0, 0},
		{0, 0, 1, 0},
		{0, 1, 0, 0},
		{0, 0, 0, 1},
	})
)

// Rx returns the rotation exp(-iθX/2).
func Rx(theta float64) *linalg.Matrix {
	c := complex(math.Cos(theta/2), 0)
	s := complex(0, -math.Sin(theta/2))
	return linalg.FromRows([][]complex128{{c, s}, {s, c}})
}

// Ry returns the rotation exp(-iθY/2).
func Ry(theta float64) *linalg.Matrix {
	c := complex(math.Cos(theta/2), 0)
	s := complex(math.Sin(theta/2), 0)
	return linalg.FromRows([][]complex128{{c, -s}, {s, c}})
}

// Rz returns the rotation exp(-iθZ/2).
func Rz(theta float64) *linalg.Matrix {
	return linalg.FromRows([][]complex128{
		{cmplx.Exp(complex(0, -theta/2)), 0},
		{0, cmplx.Exp(complex(0, theta/2))},
	})
}

// Pauli returns the Pauli operator for index 0..3 = I,X,Y,Z.
func Pauli(i int) *linalg.Matrix {
	switch i {
	case 0:
		return I2
	case 1:
		return X
	case 2:
		return Y
	case 3:
		return Z
	}
	panic("quantum: Pauli index out of range")
}

// Lift1 embeds a single-qubit operator acting on qubit target (0-based) of an
// n-qubit system.
func Lift1(op *linalg.Matrix, target, n int) *linalg.Matrix {
	return Lift1Into(linalg.New(1<<n, 1<<n), op, target, n)
}

// Lift1Into writes the n-qubit embedding I⊗…⊗op⊗…⊗I of a single-qubit
// operator into dst (which must be 2ⁿ×2ⁿ) and returns dst. It produces
// exactly the matrix Lift1 does, without allocating.
func Lift1Into(dst, op *linalg.Matrix, target, n int) *linalg.Matrix {
	if op.Rows != 2 || op.Cols != 2 {
		panic("quantum: Lift1 needs a 2×2 operator")
	}
	if target < 0 || target >= n {
		panic("quantum: Lift1 target out of range")
	}
	dim := 1 << n
	if dst.Rows != dim || dst.Cols != dim {
		panic("quantum: Lift1Into dst has wrong shape")
	}
	dst.Zero()
	left := 1 << target
	right := 1 << (n - target - 1)
	for l := 0; l < left; l++ {
		for a := 0; a < 2; a++ {
			for b := 0; b < 2; b++ {
				v := op.Data[a*2+b]
				if v == 0 {
					continue
				}
				rowBase := (l*2 + a) * right
				colBase := (l*2 + b) * right
				for r := 0; r < right; r++ {
					dst.Data[(rowBase+r)*dim+colBase+r] = v
				}
			}
		}
	}
	return dst
}

// Lift2 embeds a two-qubit operator acting on adjacent qubits (target,
// target+1) of an n-qubit system.
func Lift2(op *linalg.Matrix, target, n int) *linalg.Matrix {
	return Lift2Into(linalg.New(1<<n, 1<<n), op, target, n)
}

// Lift2Into writes the n-qubit embedding of a two-qubit operator on adjacent
// qubits (target, target+1) into dst (2ⁿ×2ⁿ) and returns dst.
func Lift2Into(dst, op *linalg.Matrix, target, n int) *linalg.Matrix {
	if op.Rows != 4 || op.Cols != 4 {
		panic("quantum: Lift2 needs a 4×4 operator")
	}
	if target < 0 || target+1 >= n {
		panic("quantum: Lift2 target out of range")
	}
	dim := 1 << n
	if dst.Rows != dim || dst.Cols != dim {
		panic("quantum: Lift2Into dst has wrong shape")
	}
	dst.Zero()
	left := 1 << target
	right := 1 << (n - target - 2)
	for l := 0; l < left; l++ {
		for a := 0; a < 4; a++ {
			for b := 0; b < 4; b++ {
				v := op.Data[a*4+b]
				if v == 0 {
					continue
				}
				rowBase := (l*4 + a) * right
				colBase := (l*4 + b) * right
				for r := 0; r < right; r++ {
					dst.Data[(rowBase+r)*dim+colBase+r] = v
				}
			}
		}
	}
	return dst
}

// Conjugate returns U·ρ·U†.
func Conjugate(u, rho *linalg.Matrix) *linalg.Matrix {
	return linalg.MulChain(u, rho, linalg.Adjoint(u))
}

// conjugateW computes U·ρ·U† with workspace temporaries. The result is a
// fresh workspace matrix owned by the caller; u and rho are untouched.
func conjugateW(ws *linalg.Workspace, u, rho *linalg.Matrix) *linalg.Matrix {
	tmp := ws.GetRaw(u.Rows, rho.Cols)
	linalg.MulInto(tmp, u, rho)
	udag := ws.GetRaw(u.Cols, u.Rows)
	linalg.ConjTransposeInto(udag, u)
	out := ws.GetRaw(tmp.Rows, udag.Cols)
	linalg.MulInto(out, tmp, udag)
	ws.Put(tmp)
	ws.Put(udag)
	return out
}

// ApplyGate1 applies a single-qubit unitary to qubit target of an n-qubit ρ.
func ApplyGate1(rho, gate *linalg.Matrix, target, n int) *linalg.Matrix {
	return ApplyGate1W(nil, rho, gate, target, n)
}

// ApplyGate1W is the workspace-threaded ApplyGate1: temporaries come from ws
// and the result is a fresh ws matrix owned by the caller. ρ is untouched.
// A nil ws falls back to plain allocation.
func ApplyGate1W(ws *linalg.Workspace, rho, gate *linalg.Matrix, target, n int) *linalg.Matrix {
	u := ws.GetRaw(rho.Rows, rho.Cols)
	Lift1Into(u, gate, target, n)
	out := conjugateW(ws, u, rho)
	ws.Put(u)
	return out
}

// ApplyGate2 applies a two-qubit unitary to adjacent qubits (target,
// target+1) of an n-qubit ρ.
func ApplyGate2(rho, gate *linalg.Matrix, target, n int) *linalg.Matrix {
	return ApplyGate2W(nil, rho, gate, target, n)
}

// ApplyGate2W is the workspace-threaded ApplyGate2; see ApplyGate1W for the
// ownership rules.
func ApplyGate2W(ws *linalg.Workspace, rho, gate *linalg.Matrix, target, n int) *linalg.Matrix {
	u := ws.GetRaw(rho.Rows, rho.Cols)
	Lift2Into(u, gate, target, n)
	out := conjugateW(ws, u, rho)
	ws.Put(u)
	return out
}
