// Package quantum implements the quantum-state machinery the paper's
// evaluation relies on NetSquid for: two-qubit entangled-pair states as exact
// density matrices, noisy gates and measurements as Kraus channels, Bell-state
// algebra for entanglement tracking, entanglement swapping composed on the
// joint four-qubit state, teleportation and BBPSSW distillation.
//
// Pairs are the unit of state. A pair's density matrix is 4×4 in the basis
// |00>,|01>,|10>,|11> with the *left* qubit first. Entanglement swaps build
// the 16×16 joint state of two pairs, apply the noisy Bell-state measurement
// at the middle node, and return the exact post-measurement remote pair.
package quantum

import (
	"math"
	"math/cmplx"

	"qnp/internal/linalg"
)

// Standard single-qubit gates.
var (
	// I2 is the single-qubit identity.
	I2 = linalg.Identity(2)
	// X, Y, Z are the Pauli matrices.
	X = linalg.FromRows([][]complex128{{0, 1}, {1, 0}})
	Y = linalg.FromRows([][]complex128{{0, complex(0, -1)}, {complex(0, 1), 0}})
	Z = linalg.FromRows([][]complex128{{1, 0}, {0, -1}})
	// H is the Hadamard gate.
	H = linalg.FromRows([][]complex128{
		{complex(1/math.Sqrt2, 0), complex(1/math.Sqrt2, 0)},
		{complex(1/math.Sqrt2, 0), complex(-1/math.Sqrt2, 0)},
	})
	// S is the phase gate diag(1, i).
	S = linalg.FromRows([][]complex128{{1, 0}, {0, complex(0, 1)}})
	// SDagger is diag(1, -i).
	SDagger = linalg.FromRows([][]complex128{{1, 0}, {0, complex(0, -1)}})
	// T is the π/8 gate.
	T = linalg.FromRows([][]complex128{{1, 0}, {0, cmplx.Exp(complex(0, math.Pi/4))}})
)

// Two-qubit gates in the basis |00>,|01>,|10>,|11> (first qubit = control
// where applicable).
var (
	// CNOT flips the second qubit when the first is |1>.
	CNOT = linalg.FromRows([][]complex128{
		{1, 0, 0, 0},
		{0, 1, 0, 0},
		{0, 0, 0, 1},
		{0, 0, 1, 0},
	})
	// CZ applies a phase of -1 to |11>.
	CZ = linalg.FromRows([][]complex128{
		{1, 0, 0, 0},
		{0, 1, 0, 0},
		{0, 0, 1, 0},
		{0, 0, 0, -1},
	})
	// SWAP exchanges the two qubits.
	SWAP = linalg.FromRows([][]complex128{
		{1, 0, 0, 0},
		{0, 0, 1, 0},
		{0, 1, 0, 0},
		{0, 0, 0, 1},
	})
)

// Rx returns the rotation exp(-iθX/2).
func Rx(theta float64) *linalg.Matrix {
	c := complex(math.Cos(theta/2), 0)
	s := complex(0, -math.Sin(theta/2))
	return linalg.FromRows([][]complex128{{c, s}, {s, c}})
}

// Ry returns the rotation exp(-iθY/2).
func Ry(theta float64) *linalg.Matrix {
	c := complex(math.Cos(theta/2), 0)
	s := complex(math.Sin(theta/2), 0)
	return linalg.FromRows([][]complex128{{c, -s}, {s, c}})
}

// Rz returns the rotation exp(-iθZ/2).
func Rz(theta float64) *linalg.Matrix {
	return linalg.FromRows([][]complex128{
		{cmplx.Exp(complex(0, -theta/2)), 0},
		{0, cmplx.Exp(complex(0, theta/2))},
	})
}

// Pauli returns the Pauli operator for index 0..3 = I,X,Y,Z.
func Pauli(i int) *linalg.Matrix {
	switch i {
	case 0:
		return I2
	case 1:
		return X
	case 2:
		return Y
	case 3:
		return Z
	}
	panic("quantum: Pauli index out of range")
}

// Lift1 embeds a single-qubit operator acting on qubit target (0-based) of an
// n-qubit system.
func Lift1(op *linalg.Matrix, target, n int) *linalg.Matrix {
	out := linalg.Identity(1)
	for i := 0; i < n; i++ {
		if i == target {
			out = linalg.Kron(out, op)
		} else {
			out = linalg.Kron(out, I2)
		}
	}
	return out
}

// Lift2 embeds a two-qubit operator acting on adjacent qubits (target,
// target+1) of an n-qubit system.
func Lift2(op *linalg.Matrix, target, n int) *linalg.Matrix {
	if target+1 >= n {
		panic("quantum: Lift2 target out of range")
	}
	out := linalg.Identity(1)
	i := 0
	for i < n {
		if i == target {
			out = linalg.Kron(out, op)
			i += 2
		} else {
			out = linalg.Kron(out, I2)
			i++
		}
	}
	return out
}

// Conjugate returns U·ρ·U†.
func Conjugate(u, rho *linalg.Matrix) *linalg.Matrix {
	return linalg.MulChain(u, rho, linalg.Adjoint(u))
}

// ApplyGate1 applies a single-qubit unitary to qubit target of an n-qubit ρ.
func ApplyGate1(rho, gate *linalg.Matrix, target, n int) *linalg.Matrix {
	return Conjugate(Lift1(gate, target, n), rho)
}

// ApplyGate2 applies a two-qubit unitary to adjacent qubits (target,
// target+1) of an n-qubit ρ.
func ApplyGate2(rho, gate *linalg.Matrix, target, n int) *linalg.Matrix {
	return Conjugate(Lift2(gate, target, n), rho)
}
