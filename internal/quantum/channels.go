package quantum

import (
	"math"
	"sync"

	"qnp/internal/linalg"
)

// Kraus is a completely-positive trace-preserving map given by its Kraus
// operators: ρ → Σ K ρ K†.
type Kraus []*linalg.Matrix

// Apply applies the channel to qubit target of an n-qubit density matrix.
// The Kraus operators must be single-qubit (2×2).
func (k Kraus) Apply(rho *linalg.Matrix, target, n int) *linalg.Matrix {
	return k.ApplyW(nil, rho, target, n)
}

// ApplyW is the workspace-threaded Apply: temporaries come from ws and the
// result is a fresh ws matrix owned by the caller. ρ is untouched. A nil ws
// falls back to plain allocation.
func (k Kraus) ApplyW(ws *linalg.Workspace, rho *linalg.Matrix, target, n int) *linalg.Matrix {
	return applyKrausW(ws, rho, k, target, n, false)
}

// Apply2 applies a two-qubit channel (4×4 Kraus operators) to adjacent
// qubits (target, target+1) of an n-qubit density matrix.
func (k Kraus) Apply2(rho *linalg.Matrix, target, n int) *linalg.Matrix {
	return k.Apply2W(nil, rho, target, n)
}

// Apply2W is the workspace-threaded Apply2; see ApplyW.
func (k Kraus) Apply2W(ws *linalg.Workspace, rho *linalg.Matrix, target, n int) *linalg.Matrix {
	return applyKrausW(ws, rho, k, target, n, true)
}

// applyKrausW lifts each operator into ws scratch and accumulates
// Σ K ρ K† into a fresh ws matrix, preserving Apply's exact accumulation
// order so allocating and pooled paths are bit-identical.
func applyKrausW(ws *linalg.Workspace, rho *linalg.Matrix, ops []*linalg.Matrix, target, n int, two bool) *linalg.Matrix {
	out := ws.Get(rho.Rows, rho.Cols)
	lift := ws.GetRaw(rho.Rows, rho.Cols)
	for _, op := range ops {
		if two {
			Lift2Into(lift, op, target, n)
		} else {
			Lift1Into(lift, op, target, n)
		}
		c := conjugateW(ws, lift, rho)
		out.AddInPlace(c)
		ws.Put(c)
	}
	ws.Put(lift)
	return out
}

// liftedKraus is a channel pre-lifted to its full n-qubit operators with
// precomputed adjoints — the form the hot path applies directly, with no
// per-call lifting. Instances live in the global cache and are read-only.
type liftedKraus struct {
	ops, adj []*linalg.Matrix
}

// applyW accumulates Σ K ρ K† into a fresh ws matrix using the pre-lifted
// operators. Accumulation order matches Kraus.Apply exactly.
func (lk *liftedKraus) applyW(ws *linalg.Workspace, rho *linalg.Matrix) *linalg.Matrix {
	out := ws.Get(rho.Rows, rho.Cols)
	tmp := ws.GetRaw(rho.Rows, rho.Cols)
	c := ws.GetRaw(rho.Rows, rho.Cols)
	for i := range lk.ops {
		linalg.MulInto(tmp, lk.ops[i], rho)
		linalg.MulInto(c, tmp, lk.adj[i])
		out.AddInPlace(c)
	}
	ws.Put(tmp)
	ws.Put(c)
	return out
}

// depKey identifies a cached lifted depolarising channel. The probability is
// part of the key; each device uses one fixed gate-noise probability, so the
// cache stays tiny.
type depKey struct {
	p         float64
	target, n int
	two       bool
}

// depCache maps depKey → *liftedKraus. It is shared by all simulations
// (parallel replicas included); entries are immutable once stored, and the
// cached values are computed by the same constructors the allocating path
// uses, so results are bit-identical. A typed map under RWMutex (rather
// than sync.Map) keeps the hot-path lookup allocation-free: sync.Map would
// box the struct key on every Load.
var depCache = struct {
	sync.RWMutex
	m map[depKey]*liftedKraus
}{m: make(map[depKey]*liftedKraus)}

func liftedDepolarizing(p float64, target, n int, two bool) *liftedKraus {
	key := depKey{p: p, target: target, n: n, two: two}
	depCache.RLock()
	lk, ok := depCache.m[key]
	depCache.RUnlock()
	if ok {
		return lk
	}
	var ops Kraus
	if two {
		ops = Depolarizing2(p)
	} else {
		ops = Depolarizing1(p)
	}
	lk = &liftedKraus{}
	for _, op := range ops {
		var lifted *linalg.Matrix
		if two {
			lifted = Lift2(op, target, n)
		} else {
			lifted = Lift1(op, target, n)
		}
		lk.ops = append(lk.ops, lifted)
		lk.adj = append(lk.adj, linalg.Adjoint(lifted))
	}
	depCache.Lock()
	if prev, ok := depCache.m[key]; ok {
		lk = prev // another goroutine built it first; keep one canonical copy
	} else {
		depCache.m[key] = lk
	}
	depCache.Unlock()
	return lk
}

// IsTracePreserving reports whether Σ K†K = I within tol.
func (k Kraus) IsTracePreserving(tol float64) bool {
	if len(k) == 0 {
		return false
	}
	n := k[0].Rows
	sum := linalg.New(n, n)
	for _, op := range k {
		sum.AddInPlace(linalg.Mul(linalg.Adjoint(op), op))
	}
	return linalg.ApproxEqual(sum, linalg.Identity(n), tol)
}

// AmplitudeDamping returns the T1 relaxation channel with decay probability
// γ = 1 − exp(−t/T1).
func AmplitudeDamping(gamma float64) Kraus {
	gamma = clamp01(gamma)
	k0 := linalg.FromRows([][]complex128{{1, 0}, {0, complex(math.Sqrt(1-gamma), 0)}})
	k1 := linalg.FromRows([][]complex128{{0, complex(math.Sqrt(gamma), 0)}, {0, 0}})
	return Kraus{k0, k1}
}

// PhaseFlip returns the dephasing channel that applies Z with probability p.
func PhaseFlip(p float64) Kraus {
	p = clamp01(p)
	return Kraus{
		linalg.Scale(complex(math.Sqrt(1-p), 0), I2),
		linalg.Scale(complex(math.Sqrt(p), 0), Z),
	}
}

// BitFlip returns the channel that applies X with probability p.
func BitFlip(p float64) Kraus {
	p = clamp01(p)
	return Kraus{
		linalg.Scale(complex(math.Sqrt(1-p), 0), I2),
		linalg.Scale(complex(math.Sqrt(p), 0), X),
	}
}

// Depolarizing1 returns the single-qubit depolarising channel
// ρ → (1−p)ρ + p·I/2.
func Depolarizing1(p float64) Kraus {
	p = clamp01(p)
	ops := Kraus{linalg.Scale(complex(math.Sqrt(1-3*p/4), 0), I2)}
	for i := 1; i <= 3; i++ {
		ops = append(ops, linalg.Scale(complex(math.Sqrt(p/4), 0), Pauli(i)))
	}
	return ops
}

// Depolarizing2 returns the two-qubit depolarising channel
// ρ → (1−p)ρ + p·I/4, expressed over the 16 two-qubit Paulis.
func Depolarizing2(p float64) Kraus {
	p = clamp01(p)
	var ops Kraus
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			w := p / 16
			if i == 0 && j == 0 {
				w = 1 - 15*p/16
			}
			ops = append(ops, linalg.Scale(complex(math.Sqrt(w), 0), linalg.Kron(Pauli(i), Pauli(j))))
		}
	}
	return ops
}

// DecoherenceProbabilities converts an idle time into (γ, p) for amplitude
// damping and phase flip given T1 and T2* (both in the same unit as t; pass
// seconds). The pure-dephasing rate is 1/T2* − 1/(2T1); if T2* ≥ 2T1 the
// dephasing contribution is zero. Non-positive lifetimes mean "no decay of
// that kind".
func DecoherenceProbabilities(t, t1, t2star float64) (gamma, pflip float64) {
	if t <= 0 {
		return 0, 0
	}
	if t1 > 0 {
		gamma = 1 - math.Exp(-t/t1)
	}
	if t2star > 0 {
		rate := 1 / t2star
		if t1 > 0 {
			rate -= 1 / (2 * t1)
		}
		if rate > 0 {
			pflip = (1 - math.Exp(-t*rate)) / 2
		}
	}
	return gamma, pflip
}

// Decohere evolves qubit target of an n-qubit ρ under T1 amplitude damping
// and T2* dephasing for t seconds. It is the lazy-decoherence primitive: the
// device calls it whenever a qubit is touched after sitting idle.
func Decohere(rho *linalg.Matrix, target, n int, t, t1, t2star float64) *linalg.Matrix {
	return DecohereW(nil, rho, target, n, t, t1, t2star)
}

// DecohereW is the workspace-threaded Decohere. The Kraus operators are
// built in ws scratch (their probabilities vary continuously with t, so they
// cannot be cached). When no decay applies it returns rho itself; otherwise
// the result is a fresh ws matrix owned by the caller and rho is untouched.
func DecohereW(ws *linalg.Workspace, rho *linalg.Matrix, target, n int, t, t1, t2star float64) *linalg.Matrix {
	gamma, pflip := DecoherenceProbabilities(t, t1, t2star)
	out := rho
	if gamma > 0 {
		// AmplitudeDamping(gamma), built in scratch.
		k0 := ws.Get(2, 2)
		k0.Data[0] = 1
		k0.Data[3] = complex(math.Sqrt(1-gamma), 0)
		k1 := ws.Get(2, 2)
		k1.Data[1] = complex(math.Sqrt(gamma), 0)
		ops := [2]*linalg.Matrix{k0, k1}
		out = applyKrausW(ws, out, ops[:], target, n, false)
		ws.Put(k0)
		ws.Put(k1)
	}
	if pflip > 0 {
		next := ApplyPhaseFlipW(ws, out, pflip, target, n)
		if out != rho {
			ws.Put(out)
		}
		out = next
	}
	return out
}

// NoisyGate2 applies a two-qubit unitary to adjacent qubits (target,
// target+1) followed by two-qubit depolarising noise parameterised by the
// gate fidelity: p = 1 − f. A fidelity of 1 reduces to the perfect gate.
// This is the standard NetSquid-style gate noise model the paper's hardware
// tables (Table 1) parameterise.
func NoisyGate2(rho, gate *linalg.Matrix, target, n int, fidelity float64) *linalg.Matrix {
	return NoisyGate2W(nil, rho, gate, target, n, fidelity)
}

// NoisyGate2W is the workspace-threaded NoisyGate2. The depolarising channel
// is fetched pre-lifted from the global cache (gate fidelities are fixed
// per device, so the cache converges immediately). Result: fresh ws matrix
// owned by the caller; ρ untouched.
func NoisyGate2W(ws *linalg.Workspace, rho, gate *linalg.Matrix, target, n int, fidelity float64) *linalg.Matrix {
	out := ApplyGate2W(ws, rho, gate, target, n)
	if fidelity < 1 {
		lk := liftedDepolarizing(1-fidelity, target, n, true)
		next := lk.applyW(ws, out)
		ws.Put(out)
		out = next
	}
	return out
}

// NoisyGate1 applies a single-qubit unitary followed by single-qubit
// depolarising noise with p = 1 − f.
func NoisyGate1(rho, gate *linalg.Matrix, target, n int, fidelity float64) *linalg.Matrix {
	return NoisyGate1W(nil, rho, gate, target, n, fidelity)
}

// NoisyGate1W is the workspace-threaded NoisyGate1; see NoisyGate2W.
func NoisyGate1W(ws *linalg.Workspace, rho, gate *linalg.Matrix, target, n int, fidelity float64) *linalg.Matrix {
	out := ApplyGate1W(ws, rho, gate, target, n)
	if fidelity < 1 {
		lk := liftedDepolarizing(1-fidelity, target, n, false)
		next := lk.applyW(ws, out)
		ws.Put(out)
		out = next
	}
	return out
}

// ApplyDepolarizing1W applies the single-qubit depolarising channel with
// probability p to qubit target of ρ, using the pre-lifted channel cache.
// Result: fresh ws matrix owned by the caller; ρ untouched. Bit-identical to
// Depolarizing1(p).Apply(rho, target, n).
func ApplyDepolarizing1W(ws *linalg.Workspace, rho *linalg.Matrix, p float64, target, n int) *linalg.Matrix {
	return liftedDepolarizing(p, target, n, false).applyW(ws, rho)
}

// ApplyPhaseFlipW applies the dephasing channel with probability p to qubit
// target of ρ, building the operators in ws scratch (p varies continuously
// in the attempt-dephasing path, so it is not cached). Bit-identical to
// PhaseFlip(p).Apply(rho, target, n).
func ApplyPhaseFlipW(ws *linalg.Workspace, rho *linalg.Matrix, p float64, target, n int) *linalg.Matrix {
	p = clamp01(p)
	s0 := complex(math.Sqrt(1-p), 0)
	k0 := ws.Get(2, 2)
	k0.Data[0], k0.Data[3] = s0, s0
	k1 := ws.Get(2, 2)
	// complex(-x, 0), not a complex negation: negating the complex would
	// flip the imaginary zero to -0, diverging bitwise from Scale(s, Z).
	k1.Data[0], k1.Data[3] = complex(math.Sqrt(p), 0), complex(-math.Sqrt(p), 0)
	ops := [2]*linalg.Matrix{k0, k1}
	out := applyKrausW(ws, rho, ops[:], target, n, false)
	ws.Put(k0)
	ws.Put(k1)
	return out
}

func clamp01(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}
