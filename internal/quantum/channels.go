package quantum

import (
	"math"

	"qnp/internal/linalg"
)

// Kraus is a completely-positive trace-preserving map given by its Kraus
// operators: ρ → Σ K ρ K†.
type Kraus []*linalg.Matrix

// Apply applies the channel to qubit target of an n-qubit density matrix.
// The Kraus operators must be single-qubit (2×2).
func (k Kraus) Apply(rho *linalg.Matrix, target, n int) *linalg.Matrix {
	out := linalg.New(rho.Rows, rho.Cols)
	for _, op := range k {
		lifted := Lift1(op, target, n)
		out.AddInPlace(Conjugate(lifted, rho))
	}
	return out
}

// Apply2 applies a two-qubit channel (4×4 Kraus operators) to adjacent
// qubits (target, target+1) of an n-qubit density matrix.
func (k Kraus) Apply2(rho *linalg.Matrix, target, n int) *linalg.Matrix {
	out := linalg.New(rho.Rows, rho.Cols)
	for _, op := range k {
		lifted := Lift2(op, target, n)
		out.AddInPlace(Conjugate(lifted, rho))
	}
	return out
}

// IsTracePreserving reports whether Σ K†K = I within tol.
func (k Kraus) IsTracePreserving(tol float64) bool {
	if len(k) == 0 {
		return false
	}
	n := k[0].Rows
	sum := linalg.New(n, n)
	for _, op := range k {
		sum.AddInPlace(linalg.Mul(linalg.Adjoint(op), op))
	}
	return linalg.ApproxEqual(sum, linalg.Identity(n), tol)
}

// AmplitudeDamping returns the T1 relaxation channel with decay probability
// γ = 1 − exp(−t/T1).
func AmplitudeDamping(gamma float64) Kraus {
	gamma = clamp01(gamma)
	k0 := linalg.FromRows([][]complex128{{1, 0}, {0, complex(math.Sqrt(1-gamma), 0)}})
	k1 := linalg.FromRows([][]complex128{{0, complex(math.Sqrt(gamma), 0)}, {0, 0}})
	return Kraus{k0, k1}
}

// PhaseFlip returns the dephasing channel that applies Z with probability p.
func PhaseFlip(p float64) Kraus {
	p = clamp01(p)
	return Kraus{
		linalg.Scale(complex(math.Sqrt(1-p), 0), I2),
		linalg.Scale(complex(math.Sqrt(p), 0), Z),
	}
}

// BitFlip returns the channel that applies X with probability p.
func BitFlip(p float64) Kraus {
	p = clamp01(p)
	return Kraus{
		linalg.Scale(complex(math.Sqrt(1-p), 0), I2),
		linalg.Scale(complex(math.Sqrt(p), 0), X),
	}
}

// Depolarizing1 returns the single-qubit depolarising channel
// ρ → (1−p)ρ + p·I/2.
func Depolarizing1(p float64) Kraus {
	p = clamp01(p)
	ops := Kraus{linalg.Scale(complex(math.Sqrt(1-3*p/4), 0), I2)}
	for i := 1; i <= 3; i++ {
		ops = append(ops, linalg.Scale(complex(math.Sqrt(p/4), 0), Pauli(i)))
	}
	return ops
}

// Depolarizing2 returns the two-qubit depolarising channel
// ρ → (1−p)ρ + p·I/4, expressed over the 16 two-qubit Paulis.
func Depolarizing2(p float64) Kraus {
	p = clamp01(p)
	var ops Kraus
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			w := p / 16
			if i == 0 && j == 0 {
				w = 1 - 15*p/16
			}
			ops = append(ops, linalg.Scale(complex(math.Sqrt(w), 0), linalg.Kron(Pauli(i), Pauli(j))))
		}
	}
	return ops
}

// DecoherenceProbabilities converts an idle time into (γ, p) for amplitude
// damping and phase flip given T1 and T2* (both in the same unit as t; pass
// seconds). The pure-dephasing rate is 1/T2* − 1/(2T1); if T2* ≥ 2T1 the
// dephasing contribution is zero. Non-positive lifetimes mean "no decay of
// that kind".
func DecoherenceProbabilities(t, t1, t2star float64) (gamma, pflip float64) {
	if t <= 0 {
		return 0, 0
	}
	if t1 > 0 {
		gamma = 1 - math.Exp(-t/t1)
	}
	if t2star > 0 {
		rate := 1 / t2star
		if t1 > 0 {
			rate -= 1 / (2 * t1)
		}
		if rate > 0 {
			pflip = (1 - math.Exp(-t*rate)) / 2
		}
	}
	return gamma, pflip
}

// Decohere evolves qubit target of an n-qubit ρ under T1 amplitude damping
// and T2* dephasing for t seconds. It is the lazy-decoherence primitive: the
// device calls it whenever a qubit is touched after sitting idle.
func Decohere(rho *linalg.Matrix, target, n int, t, t1, t2star float64) *linalg.Matrix {
	gamma, pflip := DecoherenceProbabilities(t, t1, t2star)
	out := rho
	if gamma > 0 {
		out = AmplitudeDamping(gamma).Apply(out, target, n)
	}
	if pflip > 0 {
		out = PhaseFlip(pflip).Apply(out, target, n)
	}
	return out
}

// NoisyGate2 applies a two-qubit unitary to adjacent qubits (target,
// target+1) followed by two-qubit depolarising noise parameterised by the
// gate fidelity: p = 1 − f. A fidelity of 1 reduces to the perfect gate.
// This is the standard NetSquid-style gate noise model the paper's hardware
// tables (Table 1) parameterise.
func NoisyGate2(rho, gate *linalg.Matrix, target, n int, fidelity float64) *linalg.Matrix {
	out := ApplyGate2(rho, gate, target, n)
	if fidelity < 1 {
		out = Depolarizing2(1-fidelity).Apply2(out, target, n)
	}
	return out
}

// NoisyGate1 applies a single-qubit unitary followed by single-qubit
// depolarising noise with p = 1 − f.
func NoisyGate1(rho, gate *linalg.Matrix, target, n int, fidelity float64) *linalg.Matrix {
	out := ApplyGate1(rho, gate, target, n)
	if fidelity < 1 {
		out = Depolarizing1(1-fidelity).Apply(out, target, n)
	}
	return out
}

func clamp01(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}
