package quantum

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"qnp/internal/linalg"
)

const tol = 1e-10

func TestBellVectorsOrthonormal(t *testing.T) {
	for i := BellIndex(0); i < 4; i++ {
		for j := BellIndex(0); j < 4; j++ {
			got := linalg.InnerProduct(BellVector(i), BellVector(j))
			want := complex(0, 0)
			if i == j {
				want = 1
			}
			if d := got - want; real(d)*real(d)+imag(d)*imag(d) > tol {
				t.Errorf("<B%d|B%d> = %v, want %v", i, j, got, want)
			}
		}
	}
}

func TestBellStateFidelity(t *testing.T) {
	for i := BellIndex(0); i < 4; i++ {
		rho := BellState(i)
		for j := BellIndex(0); j < 4; j++ {
			f := Fidelity(rho, j)
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(f-want) > tol {
				t.Errorf("Fidelity(B%d, B%d) = %v, want %v", i, j, f, want)
			}
		}
		if DominantBell(rho) != i {
			t.Errorf("DominantBell(B%d) = %v", i, DominantBell(rho))
		}
	}
}

func TestBellIndexBits(t *testing.T) {
	cases := []struct {
		idx  BellIndex
		x, z uint8
		str  string
	}{
		{PhiPlus, 0, 0, "Φ+"},
		{PsiPlus, 1, 0, "Ψ+"},
		{PhiMinus, 0, 1, "Φ−"},
		{PsiMinus, 1, 1, "Ψ−"},
	}
	for _, c := range cases {
		if c.idx.XBit() != c.x || c.idx.ZBit() != c.z {
			t.Errorf("%v: bits (%d,%d), want (%d,%d)", c.idx, c.idx.XBit(), c.idx.ZBit(), c.x, c.z)
		}
		if c.idx.String() != c.str {
			t.Errorf("String(%d) = %q, want %q", c.idx, c.idx.String(), c.str)
		}
		if !c.idx.Valid() {
			t.Errorf("%v not Valid", c.idx)
		}
	}
	if BellIndex(4).Valid() {
		t.Error("BellIndex(4) reported Valid")
	}
}

// The Pauli structure of the Bell basis: applying X/Z to the left qubit of a
// Bell state flips exactly the corresponding index bit.
func TestBellPauliStructure(t *testing.T) {
	for i := BellIndex(0); i < 4; i++ {
		rho := BellState(i)
		gotX := ApplyGate1(rho, X, 0, 2)
		if f := Fidelity(gotX, i^1); math.Abs(f-1) > tol {
			t.Errorf("X⊗I on B%d: fidelity with B%d = %v", i, i^1, f)
		}
		gotZ := ApplyGate1(rho, Z, 0, 2)
		if f := Fidelity(gotZ, i^2); math.Abs(f-1) > tol {
			t.Errorf("Z⊗I on B%d: fidelity with B%d = %v", i, i^2, f)
		}
		// Pauli on the right qubit flips the same bits (up to phase).
		gotXR := ApplyGate1(rho, X, 1, 2)
		if f := Fidelity(gotXR, i^1); math.Abs(f-1) > tol {
			t.Errorf("I⊗X on B%d: fidelity with B%d = %v", i, i^1, f)
		}
	}
}

func TestPauliFor(t *testing.T) {
	for from := BellIndex(0); from < 4; from++ {
		for to := BellIndex(0); to < 4; to++ {
			op := PauliFor(from, to)
			got := ApplyGate1(BellState(from), op, 0, 2)
			if f := Fidelity(got, to); math.Abs(f-1) > tol {
				t.Errorf("PauliFor(%v→%v) gives fidelity %v", from, to, f)
			}
		}
	}
}

func TestWernerState(t *testing.T) {
	for _, f := range []float64{0.25, 0.5, 0.8, 1.0} {
		w := WernerState(f)
		if got := real(linalg.Trace(w)); math.Abs(got-1) > tol {
			t.Errorf("Tr W(%v) = %v", f, got)
		}
		if got := Fidelity(w, PhiPlus); math.Abs(got-f) > tol {
			t.Errorf("Fidelity(W(%v)) = %v", f, got)
		}
		if !linalg.IsHermitian(w, tol) {
			t.Errorf("W(%v) not hermitian", f)
		}
		d := BellDiagonal(w)
		for i := BellIndex(1); i < 4; i++ {
			if math.Abs(d[i]-(1-f)/3) > tol {
				t.Errorf("W(%v) off-component %v = %v", f, i, d[i])
			}
		}
	}
	// WernerFor targets other Bell states.
	w := WernerFor(0.9, PsiMinus)
	if got := Fidelity(w, PsiMinus); math.Abs(got-0.9) > tol {
		t.Errorf("WernerFor fidelity = %v", got)
	}
	if DominantBell(w) != PsiMinus {
		t.Error("WernerFor dominant state wrong")
	}
}

func TestCombineIsGroupXOR(t *testing.T) {
	for a := BellIndex(0); a < 4; a++ {
		for b := BellIndex(0); b < 4; b++ {
			for m := BellIndex(0); m < 4; m++ {
				got := Combine(a, b, m)
				if got != a^b^m {
					t.Fatalf("Combine(%v,%v,%v) = %v", a, b, m, got)
				}
				// XOR algebra: combining is associative and self-inverse.
				if Combine(got, b, m) != a {
					t.Fatal("Combine not self-inverse")
				}
			}
		}
	}
}

// Property: fidelity of any valid density matrix with any Bell state lies in
// [0,1], and the Bell diagonal sums to the trace.
func TestQuickFidelityBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rho := randDensity(rng, 4)
		var sum float64
		for i := BellIndex(0); i < 4; i++ {
			fi := Fidelity(rho, i)
			if fi < -tol || fi > 1+tol {
				return false
			}
			sum += fi
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(11))}); err != nil {
		t.Error(err)
	}
}

// randDensity builds a random valid density matrix via ρ = G·G†/Tr.
func randDensity(r *rand.Rand, n int) *linalg.Matrix {
	g := linalg.New(n, n)
	for i := range g.Data {
		g.Data[i] = complex(r.NormFloat64(), r.NormFloat64())
	}
	rho := linalg.Mul(g, linalg.Adjoint(g))
	rho.ScaleInPlace(1 / linalg.Trace(rho))
	return rho
}
