package quantum

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"qnp/internal/linalg"
)

func TestChannelsTracePreserving(t *testing.T) {
	cases := map[string]Kraus{
		"AmplitudeDamping(0.3)": AmplitudeDamping(0.3),
		"AmplitudeDamping(1)":   AmplitudeDamping(1),
		"PhaseFlip(0.2)":        PhaseFlip(0.2),
		"BitFlip(0.7)":          BitFlip(0.7),
		"Depolarizing1(0.5)":    Depolarizing1(0.5),
		"Depolarizing2(0.1)":    Depolarizing2(0.1),
	}
	for name, k := range cases {
		if !k.IsTracePreserving(tol) {
			t.Errorf("%s not trace preserving", name)
		}
	}
	if (Kraus{}).IsTracePreserving(tol) {
		t.Error("empty Kraus accepted")
	}
}

func TestChannelPreservesDensityMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	rho := randDensity(rng, 4)
	for _, k := range []Kraus{AmplitudeDamping(0.4), PhaseFlip(0.3), Depolarizing1(0.2)} {
		out := k.Apply(rho, 0, 2)
		if math.Abs(real(linalg.Trace(out))-1) > 1e-9 {
			t.Error("trace not preserved through Apply")
		}
		if !linalg.IsHermitian(out, 1e-9) {
			t.Error("hermiticity not preserved")
		}
	}
	out := Depolarizing2(0.3).Apply2(rho, 0, 2)
	if math.Abs(real(linalg.Trace(out))-1) > 1e-9 {
		t.Error("trace not preserved through Apply2")
	}
}

// Dephasing of one qubit of Φ+ mixes it with Φ−:
// F(t) = 1 − p = (1 + exp(−t/T2)) / 2 when T1 = ∞.
func TestDephasingFidelityDecay(t *testing.T) {
	t2 := 1.0
	for _, dt := range []float64{0, 0.1, 0.5, 1, 5} {
		rho := Decohere(BellState(PhiPlus), 0, 2, dt, 0, t2)
		want := (1 + math.Exp(-dt/t2)) / 2
		if got := Fidelity(rho, PhiPlus); math.Abs(got-want) > 1e-9 {
			t.Errorf("dephasing t=%v: F=%v, want %v", dt, got, want)
		}
	}
}

func TestDecohereBothMechanisms(t *testing.T) {
	rho := BellState(PhiPlus)
	// T1-only decay must also reduce fidelity (relaxation towards |00>).
	r1 := Decohere(rho, 0, 2, 1.0, 1.0, 0)
	if f := Fidelity(r1, PhiPlus); f >= 1 || f < 0.5 {
		t.Errorf("T1 decay fidelity = %v", f)
	}
	// Infinite lifetimes: no change.
	r2 := Decohere(rho, 0, 2, 1.0, 0, 0)
	if !linalg.ApproxEqual(r2, rho, tol) {
		t.Error("decoherence with no lifetimes changed the state")
	}
	// Decohering both qubits of the pair compounds.
	r3 := Decohere(Decohere(rho, 0, 2, 0.5, 0, 1), 1, 2, 0.5, 0, 1)
	f3 := Fidelity(r3, PhiPlus)
	fSingle := Fidelity(Decohere(rho, 0, 2, 0.5, 0, 1), PhiPlus)
	if f3 >= fSingle {
		t.Errorf("two-sided decoherence (%v) not worse than one-sided (%v)", f3, fSingle)
	}
}

func TestDecoherenceProbabilities(t *testing.T) {
	g, p := DecoherenceProbabilities(0, 1, 1)
	if g != 0 || p != 0 {
		t.Error("t=0 must not decay")
	}
	g, p = DecoherenceProbabilities(1, 0, 1)
	if g != 0 || p <= 0 {
		t.Errorf("T1=∞: gamma=%v p=%v", g, p)
	}
	// T2* = 2·T1 means pure dephasing is exactly zero.
	_, p = DecoherenceProbabilities(1, 1, 2)
	if p != 0 {
		t.Errorf("T2*=2T1 should have zero pure dephasing, got %v", p)
	}
	// Long times saturate.
	g, p = DecoherenceProbabilities(1e6, 1, 0.1)
	if math.Abs(g-1) > 1e-9 || math.Abs(p-0.5) > 1e-9 {
		t.Errorf("saturation: gamma=%v p=%v", g, p)
	}
}

func TestDepolarizingFixedPoint(t *testing.T) {
	// The maximally mixed state is a fixed point of depolarising noise.
	mixed := linalg.Scale(0.25, linalg.Identity(4))
	out := Depolarizing2(0.7).Apply2(mixed, 0, 2)
	if !linalg.ApproxEqual(out, mixed, 1e-9) {
		t.Error("depolarising moved the maximally mixed state")
	}
	// Full two-qubit depolarising sends anything to maximally mixed.
	out = Depolarizing2(1).Apply2(BellState(PhiPlus), 0, 2)
	if !linalg.ApproxEqual(out, mixed, 1e-9) {
		t.Error("p=1 depolarising did not fully mix")
	}
}

func TestNoisyGates(t *testing.T) {
	// A perfect noisy gate is just the gate.
	rho := BellState(PhiPlus)
	if !linalg.ApproxEqual(NoisyGate2(rho, CNOT, 0, 2, 1), ApplyGate2(rho, CNOT, 0, 2), tol) {
		t.Error("NoisyGate2 with f=1 differs from perfect gate")
	}
	if !linalg.ApproxEqual(NoisyGate1(rho, H, 0, 2, 1), ApplyGate1(rho, H, 0, 2), tol) {
		t.Error("NoisyGate1 with f=1 differs from perfect gate")
	}
	// Imperfect gates reduce Bell fidelity.
	out := NoisyGate2(rho, linalg.Identity(4), 0, 2, 0.99)
	if f := Fidelity(out, PhiPlus); f >= 1 || f < 0.98 {
		t.Errorf("0.99-fidelity identity gate gives F=%v", f)
	}
}

func TestRotationGatesUnitary(t *testing.T) {
	for _, th := range []float64{0, 0.3, math.Pi / 2, math.Pi, 2.5} {
		for name, g := range map[string]*linalg.Matrix{"Rx": Rx(th), "Ry": Ry(th), "Rz": Rz(th)} {
			if !linalg.IsUnitary(g, tol) {
				t.Errorf("%s(%v) not unitary", name, th)
			}
		}
	}
	// Rx(π) = −iX up to phase: conjugation equals X conjugation.
	rho := randDensity(rand.New(rand.NewSource(2)), 2)
	a := Conjugate(Rx(math.Pi), rho)
	b := Conjugate(X, rho)
	if !linalg.ApproxEqual(a, b, 1e-9) {
		t.Error("Rx(π) does not act like X")
	}
}

func TestStandardGatesUnitary(t *testing.T) {
	for name, g := range map[string]*linalg.Matrix{
		"X": X, "Y": Y, "Z": Z, "H": H, "S": S, "SDagger": SDagger, "T": T,
		"CNOT": CNOT, "CZ": CZ, "SWAP": SWAP,
	} {
		if !linalg.IsUnitary(g, tol) {
			t.Errorf("%s not unitary", name)
		}
	}
	// H|0> = |+>, CNOT on |+0> gives Φ+.
	zero := linalg.ColumnVector(1, 0, 0, 0)
	rho := linalg.OuterProduct(zero, zero)
	rho = ApplyGate1(rho, H, 0, 2)
	rho = ApplyGate2(rho, CNOT, 0, 2)
	if f := Fidelity(rho, PhiPlus); math.Abs(f-1) > tol {
		t.Errorf("H+CNOT Bell prep fidelity = %v", f)
	}
}

func TestLiftPlacement(t *testing.T) {
	// X on qubit 1 of 3 maps |000> to |010>.
	v := linalg.New(8, 1)
	v.Data[0] = 1
	rho := linalg.OuterProduct(v, v)
	out := ApplyGate1(rho, X, 1, 3)
	if got := real(out.At(2, 2)); math.Abs(got-1) > tol {
		t.Errorf("X on middle qubit: population at |010> = %v", got)
	}
	// CNOT on (1,2) of 3 qubits: |010> → |011>.
	out = ApplyGate2(out, CNOT, 1, 3)
	if got := real(out.At(3, 3)); math.Abs(got-1) > tol {
		t.Errorf("CNOT on (1,2): population at |011> = %v", got)
	}
}

// Property: channels keep eigen-structure sane — output diagonal entries in
// computational basis stay in [0,1] and sum to 1 for random inputs.
func TestQuickChannelValidity(t *testing.T) {
	f := func(seed int64, pRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		p := float64(pRaw) / 255
		rho := randDensity(rng, 4)
		for _, k := range []Kraus{AmplitudeDamping(p), PhaseFlip(p), Depolarizing1(p)} {
			out := k.Apply(rho, rng.Intn(2), 2)
			var sum float64
			for i := 0; i < 4; i++ {
				d := real(out.At(i, i))
				if d < -1e-9 || d > 1+1e-9 {
					return false
				}
				sum += d
			}
			if math.Abs(sum-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(5))}); err != nil {
		t.Error(err)
	}
}
