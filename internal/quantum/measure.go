package quantum

import (
	"math/rand"

	"qnp/internal/linalg"
)

// Basis selects a single-qubit measurement basis.
type Basis uint8

// Measurement bases. ZBasis is the computational basis; X and Y are reached
// by basis-change rotations before a Z measurement, exactly as on hardware.
const (
	ZBasis Basis = iota
	XBasis
	YBasis
)

func (b Basis) String() string {
	switch b {
	case ZBasis:
		return "Z"
	case XBasis:
		return "X"
	case YBasis:
		return "Y"
	}
	return "Basis(?)"
}

// Readout models a noisy single-qubit readout: F0 is the probability of
// reporting 0 when the projected state is |0>, F1 of reporting 1 when it is
// |1>. Table 1's "electron readout" rows populate this.
type Readout struct {
	F0, F1 float64
}

// PerfectReadout reports outcomes faithfully.
var PerfectReadout = Readout{F0: 1, F1: 1}

var (
	proj0 = linalg.FromRows([][]complex128{{1, 0}, {0, 0}})
	proj1 = linalg.FromRows([][]complex128{{0, 0}, {0, 1}})
)

// Measure performs a Z-basis measurement of qubit target of an n-qubit ρ.
// It samples the physical outcome from ρ, projects ρ accordingly (the
// physical collapse is faithful), then flips the *reported* classical bit
// with the readout error probability. It returns the reported bit and the
// normalised post-measurement state (same dimension; the measured qubit
// remains, collapsed).
func Measure(rho *linalg.Matrix, target, n int, ro Readout, rng *rand.Rand) (bit int, post *linalg.Matrix) {
	return MeasureW(nil, rho, target, n, ro, rng)
}

// MeasureW is the workspace-threaded Measure: scratch comes from ws and the
// returned post state is a fresh ws matrix owned by the caller; ρ is
// untouched. The RNG consumption and results are bit-identical to Measure.
func MeasureW(ws *linalg.Workspace, rho *linalg.Matrix, target, n int, ro Readout, rng *rand.Rand) (bit int, post *linalg.Matrix) {
	p0op := ws.GetRaw(rho.Rows, rho.Cols)
	Lift1Into(p0op, proj0, target, n)
	tmp := ws.GetRaw(rho.Rows, rho.Cols)
	linalg.MulInto(tmp, p0op, rho)
	p0 := real(linalg.Trace(tmp))
	ws.Put(tmp)
	if p0 < 0 {
		p0 = 0
	}
	if p0 > 1 {
		p0 = 1
	}
	truth := 1
	proj := p0op
	prob := 1 - p0
	if rng.Float64() < p0 {
		truth = 0
		prob = p0
	} else {
		Lift1Into(proj, proj1, target, n)
	}
	post = conjugateW(ws, proj, rho)
	ws.Put(p0op)
	if prob > 1e-15 {
		post.ScaleInPlace(complex(1/prob, 0))
	}
	bit = truth
	if truth == 0 {
		if rng.Float64() > ro.F0 {
			bit = 1
		}
	} else {
		if rng.Float64() > ro.F1 {
			bit = 0
		}
	}
	return bit, post
}

// MeasureInBasis rotates qubit target into the requested basis and performs
// a Z measurement. The rotation is noiseless (Table 1: electron single-qubit
// gate fidelity 1.0); readout noise applies as in Measure.
func MeasureInBasis(rho *linalg.Matrix, target, n int, basis Basis, ro Readout, rng *rand.Rand) (bit int, post *linalg.Matrix) {
	return MeasureInBasisW(nil, rho, target, n, basis, ro, rng)
}

// MeasureInBasisW is the workspace-threaded MeasureInBasis; see MeasureW.
func MeasureInBasisW(ws *linalg.Workspace, rho *linalg.Matrix, target, n int, basis Basis, ro Readout, rng *rand.Rand) (bit int, post *linalg.Matrix) {
	in := rho
	switch basis {
	case XBasis:
		in = ApplyGate1W(ws, in, H, target, n)
	case YBasis:
		in = ApplyGate1W(ws, in, SDagger, target, n)
		rot := ApplyGate1W(ws, in, H, target, n)
		ws.Put(in)
		in = rot
	}
	bit, post = MeasureW(ws, in, target, n, ro, rng)
	if in != rho {
		ws.Put(in)
	}
	return bit, post
}

// TraceOut removes qubit target from an n-qubit state (after it has been
// measured or otherwise disposed of), returning the (n−1)-qubit state.
func TraceOut(rho *linalg.Matrix, target, n int) *linalg.Matrix {
	dims := make([]int, n)
	keep := make([]bool, n)
	for i := range dims {
		dims[i] = 2
		keep[i] = i != target
	}
	return linalg.PartialTrace(rho, dims, keep)
}

// ExpectationPauli returns <P_a ⊗ P_b> for a two-qubit state, with Pauli
// indices 0..3 = I,X,Y,Z. Fidelity test rounds (§3.4, "fidelity test
// rounds") estimate the fidelity of delivered pairs from exactly these
// correlators: F(Φ+) = (1 + <XX> − <YY> + <ZZ>)/4.
func ExpectationPauli(rho *linalg.Matrix, a, b int) float64 {
	op := linalg.Kron(Pauli(a), Pauli(b))
	return real(linalg.Trace(linalg.Mul(op, rho)))
}

// FidelityFromCorrelators reconstructs the fidelity with Bell state idx from
// the three Pauli correlators of the state. The sign pattern per Bell state
// follows from each Bell state being a ±1 eigenstate of XX, YY and ZZ.
func FidelityFromCorrelators(xx, yy, zz float64, idx BellIndex) float64 {
	sx, sy, sz := 1.0, -1.0, 1.0
	switch idx {
	case PhiPlus: // +XX −YY +ZZ
	case PhiMinus: // −XX +YY +ZZ
		sx, sy = -1, 1
	case PsiPlus: // +XX +YY −ZZ
		sy, sz = 1, -1
	case PsiMinus: // −XX −YY −ZZ
		sx, sz = -1, -1
	}
	return (1 + sx*xx + sy*yy + sz*zz) / 4
}
