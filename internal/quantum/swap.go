package quantum

import (
	"math"
	"math/rand"

	"qnp/internal/linalg"
)

// SwapConfig carries the hardware parameters that make an entanglement swap
// imperfect: the two-qubit gate fidelity (Table 1 "two-qubit gate"), the
// single-qubit gate fidelity, and the readout error model.
type SwapConfig struct {
	TwoQubitFidelity    float64
	SingleQubitFidelity float64
	Readout             Readout
}

// PerfectSwap has no noise anywhere; useful for tests and calibration.
var PerfectSwap = SwapConfig{TwoQubitFidelity: 1, SingleQubitFidelity: 1, Readout: PerfectReadout}

// SwapResult is the outcome of an entanglement swap.
type SwapResult struct {
	// Rho is the exact post-measurement 4×4 state of the surviving remote
	// pair (left qubit from the first input pair, right qubit from the
	// second).
	Rho *linalg.Matrix
	// Outcome is the two-bit Bell-measurement result announced by the
	// swapping node — the value a swap record stores and TRACK messages
	// collect. With noisy readout it may differ from the true projection.
	Outcome BellIndex
}

// Swap performs an entanglement swap (Fig. 3 of the paper) between pair
// rhoAB (qubits A,b1 with b1 at the swapping node) and pair rhoBC (qubits
// b2,C with b2 at the swapping node). It executes the physical Bell-state
// measurement circuit — CNOT(b1→b2), H(b1), Z-measurements of b1 and b2 —
// with the configured noise, and returns the exact state of the surviving
// (A,C) pair plus the announced two-bit outcome.
//
// The resulting Bell index obeys Combine(idxAB, idxBC, Outcome); the tests
// pin this identity against the returned density matrix.
func Swap(rhoAB, rhoBC *linalg.Matrix, cfg SwapConfig, rng *rand.Rand) SwapResult {
	return SwapW(nil, rhoAB, rhoBC, cfg, rng)
}

// dims/keep vectors for the four-qubit partial trace of SwapW, hoisted so
// the hot path does not allocate them per swap. Read-only.
var (
	dims4qubit = []int{2, 2, 2, 2}
	keepOuter  = []bool{true, false, false, true}
)

// SwapW is the workspace-threaded Swap: every intermediate joint state comes
// from ws and is returned to it; the resulting Rho is a fresh ws matrix whose
// ownership transfers to the caller (it typically becomes the merged pair's
// long-lived state). The inputs are untouched, and RNG consumption and
// results are bit-identical to Swap.
func SwapW(ws *linalg.Workspace, rhoAB, rhoBC *linalg.Matrix, cfg SwapConfig, rng *rand.Rand) SwapResult {
	if rhoAB.Rows != 4 || rhoBC.Rows != 4 {
		panic("quantum: Swap needs 4×4 pair states")
	}
	// Joint order (A, b1, b2, C): the two node-local qubits are adjacent.
	joint := ws.GetRaw(16, 16)
	linalg.KronInto(joint, rhoAB, rhoBC)
	next := NoisyGate2W(ws, joint, CNOT, 1, 4, cfg.TwoQubitFidelity)
	ws.Put(joint)
	joint = next
	next = NoisyGate1W(ws, joint, H, 1, 4, cfg.SingleQubitFidelity)
	ws.Put(joint)
	joint = next
	// After the basis change: b1 carries the phase bit, b2 the flip bit.
	zbit, next := MeasureW(ws, joint, 1, 4, cfg.Readout, rng)
	ws.Put(joint)
	joint = next
	xbit, next := MeasureW(ws, joint, 2, 4, cfg.Readout, rng)
	ws.Put(joint)
	joint = next
	// Remove the measured qubits; the survivors are (A, C).
	rhoAC := ws.GetRaw(4, 4)
	linalg.PartialTraceInto(rhoAC, joint, dims4qubit, keepOuter)
	ws.Put(joint)
	return SwapResult{
		Rho:     rhoAC,
		Outcome: BellIndex(uint8(xbit) | uint8(zbit)<<1),
	}
}

// Teleport sends the single-qubit state data (2×2 density matrix) through an
// entangled pair rho (qubits A,B; A co-located with the data qubit). It
// performs the Bell-state measurement on (data, A), applies the Pauli
// correction X^x Z^z on B assuming the pair is in Bell state pairIdx, and
// returns the exact received state. This is the paper's headline use of
// end-to-end pairs: deterministic qubit transmission.
func Teleport(data, rho *linalg.Matrix, pairIdx BellIndex, cfg SwapConfig, rng *rand.Rand) *linalg.Matrix {
	if data.Rows != 2 || rho.Rows != 4 {
		panic("quantum: Teleport needs a 2×2 data state and 4×4 pair")
	}
	// Joint order (D, A, B).
	joint := linalg.Kron(data, rho)
	joint = NoisyGate2(joint, CNOT, 0, 3, cfg.TwoQubitFidelity)
	joint = NoisyGate1(joint, H, 0, 3, cfg.SingleQubitFidelity)
	zbit, joint := Measure(joint, 0, 3, cfg.Readout, rng)
	xbit, joint := Measure(joint, 1, 3, cfg.Readout, rng)
	out := linalg.PartialTrace(joint, []int{2, 2, 2}, []bool{false, false, true})
	// Correction for a Φ+ resource: X^xbit then Z^zbit. If the pair is in a
	// different Bell state, fold its index into the correction — this is
	// exactly why the network must deliver the Bell index with the pair.
	x := uint8(xbit) ^ pairIdx.XBit()
	z := uint8(zbit) ^ pairIdx.ZBit()
	if x == 1 {
		out = ApplyGate1(out, X, 0, 1)
	}
	if z == 1 {
		out = ApplyGate1(out, Z, 0, 1)
	}
	return out
}

// DistillResult reports one BBPSSW/DEJMPS distillation round.
type DistillResult struct {
	// OK reports whether the round succeeded (the two measurement outcomes
	// agreed); on failure both pairs are lost.
	OK bool
	// Rho is the surviving pair's state when OK.
	Rho *linalg.Matrix
}

// Distill runs one round of DEJMPS entanglement distillation on two pairs
// shared between the same two nodes (§4.3 of the paper: the network service
// built from QNP circuits). Pair states are (A,B)-ordered. Both pairs should
// be (close to) Bell state Φ+; use PauliFor to rotate first otherwise.
func Distill(pair1, pair2 *linalg.Matrix, cfg SwapConfig, rng *rand.Rand) DistillResult {
	// kron gives order (A1, B1, A2, B2); swap middle qubits for locality:
	// (A1, A2, B1, B2).
	joint := linalg.Kron(pair1, pair2)
	joint = ApplyGate2(joint, SWAP, 1, 4)
	// DEJMPS basis rotation: Rx(π/2) on Alice's qubits, Rx(−π/2) on Bob's.
	for _, q := range []int{0, 1} {
		joint = ApplyGate1(joint, Rx(math.Pi/2), q, 4)
	}
	for _, q := range []int{2, 3} {
		joint = ApplyGate1(joint, Rx(-math.Pi/2), q, 4)
	}
	// Bilateral CNOT: A1→A2 and B1→B2, both adjacent after the reorder.
	joint = NoisyGate2(joint, CNOT, 0, 4, cfg.TwoQubitFidelity)
	joint = NoisyGate2(joint, CNOT, 2, 4, cfg.TwoQubitFidelity)
	// Measure the target pair (A2, B2) = qubits 1 and 3.
	ma, joint := Measure(joint, 1, 4, cfg.Readout, rng)
	mb, joint := Measure(joint, 3, 4, cfg.Readout, rng)
	if ma != mb {
		return DistillResult{OK: false}
	}
	rho := linalg.PartialTrace(joint, []int{2, 2, 2, 2}, []bool{true, false, true, false})
	return DistillResult{OK: true, Rho: rho}
}
