package quantum

import (
	"math"
	"math/rand"
	"testing"

	"qnp/internal/linalg"
)

// The central correctness property of entanglement tracking: for noiseless
// swaps of pure Bell states, the surviving pair is exactly the Bell state
// predicted by Combine(a, b, outcome). This pins the XOR algebra the QNP's
// TRACK messages rely on to the actual physics.
func TestSwapCombineIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for a := BellIndex(0); a < 4; a++ {
		for b := BellIndex(0); b < 4; b++ {
			seen := map[BellIndex]bool{}
			for trial := 0; trial < 64; trial++ {
				res := Swap(BellState(a), BellState(b), PerfectSwap, rng)
				want := Combine(a, b, res.Outcome)
				if f := Fidelity(res.Rho, want); math.Abs(f-1) > 1e-9 {
					t.Fatalf("swap(B%d,B%d) outcome %v: fidelity with B%v = %v",
						a, b, res.Outcome, want, f)
				}
				if got := real(linalg.Trace(res.Rho)); math.Abs(got-1) > 1e-9 {
					t.Fatalf("swap output trace = %v", got)
				}
				seen[res.Outcome] = true
			}
			// All four outcomes occur (each has probability 1/4).
			if len(seen) != 4 {
				t.Errorf("swap(B%d,B%d): only outcomes %v seen in 64 trials", a, b, seen)
			}
		}
	}
}

func TestSwapOutcomeUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	counts := [4]int{}
	const n = 4000
	for i := 0; i < n; i++ {
		res := Swap(BellState(PhiPlus), BellState(PhiPlus), PerfectSwap, rng)
		counts[res.Outcome]++
	}
	for i, c := range counts {
		if c < n/4-200 || c > n/4+200 {
			t.Errorf("outcome %d count %d, want ≈%d", i, c, n/4)
		}
	}
}

// Swapping two Werner states gives the standard composition
// F' = F1·F2 + (1−F1)(1−F2)/3 for noiseless operations.
func TestSwapWernerComposition(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, f1 := range []float64{1, 0.95, 0.8} {
		for _, f2 := range []float64{1, 0.9, 0.7} {
			res := Swap(WernerState(f1), WernerState(f2), PerfectSwap, rng)
			want := f1*f2 + (1-f1)*(1-f2)/3
			idx := Combine(PhiPlus, PhiPlus, res.Outcome)
			if got := Fidelity(res.Rho, idx); math.Abs(got-want) > 1e-9 {
				t.Errorf("Werner swap F1=%v F2=%v: F=%v, want %v", f1, f2, got, want)
			}
		}
	}
}

// Noisy gates and readout reduce the fidelity of the swapped pair — the
// paper's loss mechanisms P2 and P3.
func TestSwapNoiseDegrades(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// With perfect readout, gate noise alone bounds the damage: every swap
	// lands a little below 1 but nowhere near misidentification.
	cfgGate := SwapConfig{TwoQubitFidelity: 0.98, SingleQubitFidelity: 1, Readout: PerfectReadout}
	worst := 1.0
	for i := 0; i < 50; i++ {
		res := Swap(BellState(PhiPlus), BellState(PhiPlus), cfgGate, rng)
		f := Fidelity(res.Rho, Combine(PhiPlus, PhiPlus, res.Outcome))
		if f < worst {
			worst = f
		}
	}
	if worst >= 1 {
		t.Error("noisy swap never degraded fidelity")
	}
	if worst < 0.9 {
		t.Errorf("gate-noise-only swap fidelity %v implausibly low", worst)
	}
	// Adding readout noise occasionally misreports an outcome bit (declared
	// Bell state wrong → fidelity ≈ 0), so assert on the mean instead.
	cfg := SwapConfig{TwoQubitFidelity: 0.98, SingleQubitFidelity: 1, Readout: Readout{F0: 0.99, F1: 0.99}}
	var sum float64
	const n = 300
	for i := 0; i < n; i++ {
		res := Swap(BellState(PhiPlus), BellState(PhiPlus), cfg, rng)
		sum += Fidelity(res.Rho, Combine(PhiPlus, PhiPlus, res.Outcome))
	}
	if avg := sum / n; avg < 0.9 || avg >= 1 {
		t.Errorf("noisy swap mean fidelity %v, want in [0.9, 1)", avg)
	}
}

// Readout errors corrupt the *announced* outcome: tracking then declares the
// wrong Bell state, which surfaces as fidelity loss — exactly why the paper
// needs fidelity test rounds rather than trusting tracking blindly.
func TestSwapReadoutErrorMisleadsTracking(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cfg := SwapConfig{TwoQubitFidelity: 1, SingleQubitFidelity: 1, Readout: Readout{F0: 0.5, F1: 0.5}}
	mis := 0
	const n = 200
	for i := 0; i < n; i++ {
		res := Swap(BellState(PhiPlus), BellState(PhiPlus), cfg, rng)
		idx := Combine(PhiPlus, PhiPlus, res.Outcome)
		if Fidelity(res.Rho, idx) < 0.9 {
			mis++
		}
	}
	if mis == 0 {
		t.Error("fully random readout never misled tracking")
	}
}

func TestSwapChainThreeHops(t *testing.T) {
	// Compose two swaps like a 4-node path: A-B, B-C, C-D.
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		ab, bc, cd := BellState(PhiPlus), BellState(PsiPlus), BellState(PhiMinus)
		r1 := Swap(ab, bc, PerfectSwap, rng)
		idx1 := Combine(PhiPlus, PsiPlus, r1.Outcome)
		r2 := Swap(r1.Rho, cd, PerfectSwap, rng)
		idx2 := Combine(idx1, PhiMinus, r2.Outcome)
		if f := Fidelity(r2.Rho, idx2); math.Abs(f-1) > 1e-9 {
			t.Fatalf("three-hop chain fidelity %v with predicted %v", f, idx2)
		}
	}
}

func TestTeleportPerfect(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	// Teleport a batch of random pure states through each Bell resource.
	for idx := BellIndex(0); idx < 4; idx++ {
		for trial := 0; trial < 10; trial++ {
			theta, phi := rng.Float64()*math.Pi, rng.Float64()*2*math.Pi
			v := linalg.ColumnVector(
				complex(math.Cos(theta/2), 0),
				complex(math.Sin(theta/2)*math.Cos(phi), math.Sin(theta/2)*math.Sin(phi)),
			)
			data := linalg.OuterProduct(v, v)
			out := Teleport(data, BellState(idx), idx, PerfectSwap, rng)
			if f := real(linalg.Expectation(out, v)); math.Abs(f-1) > 1e-9 {
				t.Fatalf("teleport via B%v: output fidelity %v", idx, f)
			}
		}
	}
}

func TestTeleportNoisyPair(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	v := linalg.ColumnVector(complex(math.Sqrt(0.3), 0), complex(math.Sqrt(0.7), 0))
	data := linalg.OuterProduct(v, v)
	var sum float64
	const n = 100
	for i := 0; i < n; i++ {
		out := Teleport(data, WernerState(0.8), PhiPlus, PerfectSwap, rng)
		sum += real(linalg.Expectation(out, v))
	}
	avg := sum / n
	if avg > 0.95 || avg < 0.7 {
		t.Errorf("teleport through F=0.8 pair: avg output fidelity %v", avg)
	}
}

func TestDistillImprovesFidelity(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	const f0 = 0.8
	var sum float64
	succ, n := 0, 400
	for i := 0; i < n; i++ {
		res := Distill(WernerState(f0), WernerState(f0), PerfectSwap, rng)
		if !res.OK {
			continue
		}
		succ++
		sum += Fidelity(res.Rho, PhiPlus)
	}
	if succ == 0 {
		t.Fatal("distillation never succeeded")
	}
	avg := sum / float64(succ)
	// DEJMPS on two F=0.8 Werner pairs yields ≈0.84.
	if avg <= f0 {
		t.Errorf("distilled fidelity %v not above input %v", avg, f0)
	}
	if avg < 0.81 || avg > 0.88 {
		t.Errorf("distilled fidelity %v outside expected DEJMPS band", avg)
	}
	// Success probability for F=0.8 inputs is ≈0.77.
	rate := float64(succ) / float64(n)
	if rate < 0.6 || rate > 0.9 {
		t.Errorf("distillation success rate %v outside expected band", rate)
	}
}

func TestDistillBelowThresholdUseless(t *testing.T) {
	// Werner pairs at F=0.5 cannot be distilled above 0.5 on average.
	rng := rand.New(rand.NewSource(9))
	var sum float64
	succ := 0
	for i := 0; i < 300; i++ {
		res := Distill(WernerState(0.5), WernerState(0.5), PerfectSwap, rng)
		if res.OK {
			succ++
			sum += Fidelity(res.Rho, PhiPlus)
		}
	}
	if succ == 0 {
		t.Fatal("no successes")
	}
	if avg := sum / float64(succ); avg > 0.55 {
		t.Errorf("F=0.5 inputs distilled to %v — should stay near 0.5", avg)
	}
}

func TestMeasureStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	// |+> measured in Z: 50/50.
	plus := linalg.ColumnVector(complex(1/math.Sqrt2, 0), complex(1/math.Sqrt2, 0))
	rho := linalg.OuterProduct(plus, plus)
	ones := 0
	const n = 2000
	for i := 0; i < n; i++ {
		bit, post := Measure(rho, 0, 1, PerfectReadout, rng)
		ones += bit
		// Post-state must be collapsed to the reported outcome.
		if got := real(post.At(bit, bit)); math.Abs(got-1) > 1e-9 {
			t.Fatalf("post-measurement state not collapsed: pop=%v", got)
		}
	}
	if ones < n/2-150 || ones > n/2+150 {
		t.Errorf("Z measurement of |+>: %d ones out of %d", ones, n)
	}
	// |+> measured in X: always 0.
	for i := 0; i < 50; i++ {
		bit, _ := MeasureInBasis(rho, 0, 1, XBasis, PerfectReadout, rng)
		if bit != 0 {
			t.Fatal("X measurement of |+> returned 1")
		}
	}
	// |i> (Y eigenstate) measured in Y: always 0.
	iket := linalg.ColumnVector(complex(1/math.Sqrt2, 0), complex(0, 1/math.Sqrt2))
	rhoi := linalg.OuterProduct(iket, iket)
	for i := 0; i < 50; i++ {
		bit, _ := MeasureInBasis(rhoi, 0, 1, YBasis, PerfectReadout, rng)
		if bit != 0 {
			t.Fatal("Y measurement of |i> returned 1")
		}
	}
}

func TestMeasureReadoutNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	zero := linalg.ColumnVector(1, 0)
	rho := linalg.OuterProduct(zero, zero)
	flips := 0
	const n = 2000
	for i := 0; i < n; i++ {
		bit, _ := Measure(rho, 0, 1, Readout{F0: 0.9, F1: 0.9}, rng)
		flips += bit
	}
	if flips < 120 || flips > 280 {
		t.Errorf("readout flips = %d/%d, want ≈10%%", flips, n)
	}
}

func TestBellCorrelationsOnPair(t *testing.T) {
	// Measuring both qubits of Φ+ in the same basis gives correlated bits in
	// Z and X, anticorrelated in Y.
	rng := rand.New(rand.NewSource(12))
	for _, c := range []struct {
		basis Basis
		equal bool
	}{{ZBasis, true}, {XBasis, true}, {YBasis, false}} {
		for i := 0; i < 100; i++ {
			rho := BellState(PhiPlus)
			b1, post := MeasureInBasis(rho, 0, 2, c.basis, PerfectReadout, rng)
			b2, _ := MeasureInBasis(post, 1, 2, c.basis, PerfectReadout, rng)
			if (b1 == b2) != c.equal {
				t.Fatalf("basis %v: outcomes %d,%d (want equal=%v)", c.basis, b1, b2, c.equal)
			}
		}
	}
}

func TestExpectationPauliAndCorrelators(t *testing.T) {
	for idx := BellIndex(0); idx < 4; idx++ {
		rho := WernerFor(0.85, idx)
		xx := ExpectationPauli(rho, 1, 1)
		yy := ExpectationPauli(rho, 2, 2)
		zz := ExpectationPauli(rho, 3, 3)
		if got := FidelityFromCorrelators(xx, yy, zz, idx); math.Abs(got-0.85) > 1e-9 {
			t.Errorf("correlator fidelity for B%v = %v, want 0.85", idx, got)
		}
	}
	// <Z⊗I> of Φ+ is 0; <Z⊗Z> is 1.
	if got := ExpectationPauli(BellState(PhiPlus), 3, 0); math.Abs(got) > tol {
		t.Errorf("<ZI> = %v", got)
	}
	if got := ExpectationPauli(BellState(PhiPlus), 3, 3); math.Abs(got-1) > tol {
		t.Errorf("<ZZ> = %v", got)
	}
}

func TestTraceOut(t *testing.T) {
	// Tracing out either qubit of Φ+ leaves I/2.
	red := TraceOut(BellState(PhiPlus), 0, 2)
	if !linalg.ApproxEqual(red, linalg.Scale(0.5, linalg.Identity(2)), tol) {
		t.Error("TraceOut(0) of Bell state not maximally mixed")
	}
	red = TraceOut(BellState(PhiPlus), 1, 2)
	if !linalg.ApproxEqual(red, linalg.Scale(0.5, linalg.Identity(2)), tol) {
		t.Error("TraceOut(1) of Bell state not maximally mixed")
	}
}

func TestBasisString(t *testing.T) {
	if ZBasis.String() != "Z" || XBasis.String() != "X" || YBasis.String() != "Y" {
		t.Error("Basis.String wrong")
	}
}
