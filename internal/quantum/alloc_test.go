package quantum

import (
	"math/rand"
	"testing"

	"qnp/internal/linalg"
	"qnp/internal/race"
)

// warmWS returns a workspace pre-warmed by running fn once, so steady-state
// allocation measurements start from a populated pool.
func warmWS(fn func(ws *linalg.Workspace)) *linalg.Workspace {
	ws := linalg.NewWorkspace()
	fn(ws)
	return ws
}

// TestAllocsApplyGate1W pins the acceptance gate: the workspace-threaded
// gate application runs at zero allocs/op once the pool is warm.
func TestAllocsApplyGate1W(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation gates run with -race off")
	}
	rho := BellState(PhiPlus)
	ws := warmWS(func(ws *linalg.Workspace) {
		ws.Put(ApplyGate1W(ws, rho, X, 0, 2))
	})
	allocs := testing.AllocsPerRun(100, func() {
		out := ApplyGate1W(ws, rho, X, 0, 2)
		ws.Put(out)
	})
	if allocs != 0 {
		t.Errorf("ApplyGate1W allocs/op = %v, want 0", allocs)
	}
}

func TestAllocsSwapW(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation gates run with -race off")
	}
	rng := rand.New(rand.NewSource(7))
	cfg := SwapConfig{TwoQubitFidelity: 0.98, SingleQubitFidelity: 0.99, Readout: Readout{F0: 0.95, F1: 0.95}}
	a, b := BellState(PhiPlus), BellState(PsiMinus)
	ws := warmWS(func(ws *linalg.Workspace) {
		ws.Put(SwapW(ws, a, b, cfg, rng).Rho)
	})
	allocs := testing.AllocsPerRun(50, func() {
		res := SwapW(ws, a, b, cfg, rng)
		ws.Put(res.Rho)
	})
	if allocs != 0 {
		t.Errorf("SwapW allocs/op = %v, want 0", allocs)
	}
}

func TestAllocsDecohereAndMeasureW(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation gates run with -race off")
	}
	rng := rand.New(rand.NewSource(7))
	rho := WernerState(0.9)
	ws := warmWS(func(ws *linalg.Workspace) {
		ws.Put(DecohereW(ws, rho, 0, 2, 0.01, 1.0, 0.5))
	})
	allocs := testing.AllocsPerRun(50, func() {
		out := DecohereW(ws, rho, 0, 2, 0.01, 1.0, 0.5)
		ws.Put(out)
	})
	if allocs != 0 {
		t.Errorf("DecohereW allocs/op = %v, want 0", allocs)
	}
	allocs = testing.AllocsPerRun(50, func() {
		_, post := MeasureW(ws, rho, 0, 2, PerfectReadout, rng)
		ws.Put(post)
	})
	if allocs != 0 {
		t.Errorf("MeasureW allocs/op = %v, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() { Fidelity(rho, PhiPlus) }); allocs != 0 {
		t.Errorf("Fidelity allocs/op = %v, want 0", allocs)
	}
}

// The W variants must be bit-identical to the allocating API: same values
// and the same RNG consumption.
func TestSwapWMatchesSwap(t *testing.T) {
	cfg := SwapConfig{TwoQubitFidelity: 0.97, SingleQubitFidelity: 0.99, Readout: Readout{F0: 0.93, F1: 0.95}}
	for seed := int64(0); seed < 20; seed++ {
		a, b := WernerState(0.92), WernerFor(0.88, PsiPlus)
		rng1 := rand.New(rand.NewSource(seed))
		rng2 := rand.New(rand.NewSource(seed))
		want := Swap(a, b, cfg, rng1)
		got := SwapW(linalg.NewWorkspace(), a, b, cfg, rng2)
		if got.Outcome != want.Outcome {
			t.Fatalf("seed %d: outcome %v != %v", seed, got.Outcome, want.Outcome)
		}
		if linalg.MaxAbsDiff(got.Rho, want.Rho) != 0 {
			t.Fatalf("seed %d: SwapW state differs from Swap by %g", seed, linalg.MaxAbsDiff(got.Rho, want.Rho))
		}
		if rng1.Int63() != rng2.Int63() {
			t.Fatalf("seed %d: RNG streams diverged", seed)
		}
	}
}

func TestDecohereWMatchesDecohere(t *testing.T) {
	rho := WernerState(0.85)
	for _, tc := range []struct{ t, t1, t2 float64 }{
		{0.01, 1.0, 0.5}, {0.5, 2.0, 0}, {0.1, 0, 0.3}, {0, 1, 1},
	} {
		want := Decohere(rho, 1, 2, tc.t, tc.t1, tc.t2)
		got := DecohereW(linalg.NewWorkspace(), rho, 1, 2, tc.t, tc.t1, tc.t2)
		if linalg.MaxAbsDiff(got, want) != 0 {
			t.Errorf("DecohereW(%v) differs from Decohere", tc)
		}
	}
}

func TestMeasureInBasisWMatches(t *testing.T) {
	for _, basis := range []Basis{ZBasis, XBasis, YBasis} {
		for seed := int64(1); seed < 10; seed++ {
			rho := WernerState(0.9)
			rng1 := rand.New(rand.NewSource(seed))
			rng2 := rand.New(rand.NewSource(seed))
			ro := Readout{F0: 0.9, F1: 0.85}
			wantBit, wantPost := MeasureInBasis(rho, 0, 2, basis, ro, rng1)
			gotBit, gotPost := MeasureInBasisW(linalg.NewWorkspace(), rho, 0, 2, basis, ro, rng2)
			if gotBit != wantBit || linalg.MaxAbsDiff(gotPost, wantPost) != 0 {
				t.Fatalf("basis %v seed %d: W variant diverged", basis, seed)
			}
		}
	}
}

func TestLiftIntoMatchesLift(t *testing.T) {
	for n := 1; n <= 4; n++ {
		for target := 0; target < n; target++ {
			want := Lift1(Y, target, n)
			got := Lift1Into(linalg.New(1<<n, 1<<n), Y, target, n)
			if linalg.MaxAbsDiff(got, want) != 0 {
				t.Errorf("Lift1Into(Y,%d,%d) differs", target, n)
			}
		}
		for target := 0; target+1 < n; target++ {
			want := Lift2(CNOT, target, n)
			got := Lift2Into(linalg.New(1<<n, 1<<n), CNOT, target, n)
			if linalg.MaxAbsDiff(got, want) != 0 {
				t.Errorf("Lift2Into(CNOT,%d,%d) differs", target, n)
			}
		}
	}
}

func TestBellProjectorCachedReadOnlyValue(t *testing.T) {
	for b := BellIndex(0); b < 4; b++ {
		if linalg.MaxAbsDiff(BellProjectorCached(b), BellProjector(b)) != 0 {
			t.Errorf("cached projector %v differs from fresh", b)
		}
	}
	// The public BellProjector must keep returning mutable copies.
	p := BellProjector(PhiPlus)
	p.Set(0, 0, 99)
	if BellProjectorCached(PhiPlus).At(0, 0) == 99 {
		t.Fatal("BellProjector returned the shared cached matrix")
	}
}
