package quantum

import (
	"fmt"
	"math"
	"math/cmplx"

	"qnp/internal/linalg"
)

// BellIndex identifies one of the four Bell states by two bits: bit 0 is the
// bit-flip (X) component, bit 1 the phase-flip (Z) component, relative to
// |Φ+>. This is the two-bit value the paper's swap records carry and its
// TRACK messages accumulate ("the two-bit output of the entanglement swap").
//
//	Index 0 (x=0,z=0): |Φ+> = (|00>+|11>)/√2
//	Index 1 (x=1,z=0): |Ψ+> = (|01>+|10>)/√2
//	Index 2 (x=0,z=1): |Φ−> = (|00>−|11>)/√2
//	Index 3 (x=1,z=1): |Ψ−> = (|01>−|10>)/√2
type BellIndex uint8

// The four Bell states.
const (
	PhiPlus  BellIndex = 0
	PsiPlus  BellIndex = 1
	PhiMinus BellIndex = 2
	PsiMinus BellIndex = 3
)

// XBit returns the bit-flip component.
func (b BellIndex) XBit() uint8 { return uint8(b) & 1 }

// ZBit returns the phase-flip component.
func (b BellIndex) ZBit() uint8 { return (uint8(b) >> 1) & 1 }

// Combine returns the Bell index of the pair produced by an entanglement
// swap: the two input pairs' indices and the Bell-measurement outcome XOR
// component-wise. This is the "combine_state" function of Appendix C; its
// correctness against the exact post-measurement state is pinned by tests.
func Combine(a, b, outcome BellIndex) BellIndex { return a ^ b ^ outcome }

func (b BellIndex) String() string {
	switch b {
	case PhiPlus:
		return "Φ+"
	case PsiPlus:
		return "Ψ+"
	case PhiMinus:
		return "Φ−"
	case PsiMinus:
		return "Ψ−"
	}
	return fmt.Sprintf("BellIndex(%d)", uint8(b))
}

// Valid reports whether b is one of the four Bell states.
func (b BellIndex) Valid() bool { return b < 4 }

// BellVector returns the state vector |B_b> as a 4×1 column.
func BellVector(b BellIndex) *linalg.Matrix {
	s := complex(1/math.Sqrt2, 0)
	switch b {
	case PhiPlus:
		return linalg.ColumnVector(s, 0, 0, s)
	case PsiPlus:
		return linalg.ColumnVector(0, s, s, 0)
	case PhiMinus:
		return linalg.ColumnVector(s, 0, 0, -s)
	case PsiMinus:
		return linalg.ColumnVector(0, s, -s, 0)
	}
	panic("quantum: invalid BellIndex")
}

// BellProjector returns |B_b><B_b|. The result is fresh and may be mutated.
func BellProjector(b BellIndex) *linalg.Matrix {
	v := BellVector(b)
	return linalg.OuterProduct(v, v)
}

// bellVecCache and bellProjCache hold the four Bell vectors and projectors
// for read-only hot-path use; they are never handed out for mutation.
var (
	bellVecCache  [4]*linalg.Matrix
	bellProjCache [4]*linalg.Matrix
)

func init() {
	for b := BellIndex(0); b < 4; b++ {
		bellVecCache[b] = BellVector(b)
		bellProjCache[b] = BellProjector(b)
	}
}

// BellProjectorCached returns the shared, read-only projector |B_b><B_b|.
// Callers must NOT modify the result; use BellProjector for a mutable copy.
func BellProjectorCached(b BellIndex) *linalg.Matrix {
	if !b.Valid() {
		panic("quantum: invalid BellIndex")
	}
	return bellProjCache[b]
}

// BellState returns the density matrix of the pure Bell state b.
func BellState(b BellIndex) *linalg.Matrix { return BellProjector(b) }

// Fidelity returns <B_b|ρ|B_b>, the fidelity of a two-qubit state with the
// pure Bell state b. This is the paper's fidelity metric: 1 means the pair is
// exactly in the desired state, below 0.5 means it is no longer usable.
// It is allocation-free: the metric runs on every delivery.
func Fidelity(rho *linalg.Matrix, b BellIndex) float64 {
	if rho.Rows != 4 || rho.Cols != 4 {
		panic("quantum: Fidelity needs a 4×4 density matrix")
	}
	v := bellVecCache[b]
	// <v|ρ|v> with the same accumulation order as Expectation(rho, v):
	// w = ρ·v with the Mul zero-skip, then Σ conj(v_i)·w_i.
	var w [4]complex128
	for i := 0; i < 4; i++ {
		row := rho.Data[i*4 : (i+1)*4]
		for k, av := range row {
			if av == 0 {
				continue
			}
			w[i] += av * v.Data[k]
		}
	}
	var s complex128
	for i := range w {
		s += cmplx.Conj(v.Data[i]) * w[i]
	}
	return real(s)
}

// BellDiagonal returns the four Bell-basis diagonal elements of ρ, indexed by
// BellIndex. For states produced by this package they sum to ≈Tr(ρ).
func BellDiagonal(rho *linalg.Matrix) [4]float64 {
	var d [4]float64
	for i := BellIndex(0); i < 4; i++ {
		d[i] = Fidelity(rho, i)
	}
	return d
}

// DominantBell returns the Bell index with the largest overlap with ρ.
func DominantBell(rho *linalg.Matrix) BellIndex {
	d := BellDiagonal(rho)
	best := BellIndex(0)
	for i := BellIndex(1); i < 4; i++ {
		if d[i] > d[best] {
			best = i
		}
	}
	return best
}

// PauliFor returns the single-qubit Pauli correction that maps Bell state
// `from` to Bell state `to` when applied to one qubit of the pair:
// X^(Δx)·Z^(Δz). Applying the returned operator to the *left* qubit performs
// the paper's final-state Pauli correction at the head-end node.
func PauliFor(from, to BellIndex) *linalg.Matrix {
	d := from ^ to
	op := linalg.Identity(2)
	if d.ZBit() == 1 {
		op = linalg.Mul(Z, op)
	}
	if d.XBit() == 1 {
		op = linalg.Mul(X, op)
	}
	return op
}

// WernerState returns the Werner state with fidelity f to |Φ+>:
// W(f) = f|Φ+><Φ+| + (1-f)/3 · (I − |Φ+><Φ+|).
func WernerState(f float64) *linalg.Matrix {
	p := BellProjector(PhiPlus)
	rest := linalg.Sub(linalg.Identity(4), p)
	return linalg.Add(linalg.Scale(complex(f, 0), p), linalg.Scale(complex((1-f)/3, 0), rest))
}

// WernerFor returns a Werner-like state twirled around an arbitrary Bell
// state b with fidelity f.
func WernerFor(f float64, b BellIndex) *linalg.Matrix {
	p := BellProjector(b)
	rest := linalg.Sub(linalg.Identity(4), p)
	return linalg.Add(linalg.Scale(complex(f, 0), p), linalg.Scale(complex((1-f)/3, 0), rest))
}
