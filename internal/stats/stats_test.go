package stats

import (
	"encoding/json"
	"math"
	"math/rand"
	"sort"
	"testing"

	"qnp/internal/race"
)

// fill adds xs to a fresh aggregate.
func fill(xs []float64) *Agg {
	a := new(Agg)
	for _, x := range xs {
		a.Add(x)
	}
	return a
}

// samples draws a deterministic mixed-scale stream: exponential latencies,
// a heavy tail, and some exact zeros.
func samples(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	for i := range xs {
		switch {
		case i%97 == 0:
			xs[i] = 0
		case i%13 == 0:
			xs[i] = rng.ExpFloat64() * 1e3
		default:
			xs[i] = rng.ExpFloat64() * 1e-2
		}
	}
	return xs
}

// assertIdentical fails unless every summary statistic of got is
// bit-identical to want's.
func assertIdentical(t *testing.T, want, got *Agg, label string) {
	t.Helper()
	if got.Count != want.Count {
		t.Errorf("%s: Count = %d, want %d", label, got.Count, want.Count)
	}
	if got.Min != want.Min || got.Max != want.Max {
		t.Errorf("%s: Min/Max = %v/%v, want %v/%v", label, got.Min, got.Max, want.Min, want.Max)
	}
	if gs, ws := got.Sum(), want.Sum(); gs != ws {
		t.Errorf("%s: Sum = %v, want %v (diff %g)", label, gs, ws, gs-ws)
	}
	if gm, wm := got.Mean(), want.Mean(); gm != wm {
		t.Errorf("%s: Mean = %v, want %v", label, gm, wm)
	}
	for _, p := range []float64{0, 0.25, 0.5, 0.9, 0.95, 0.99, 1} {
		if gp, wp := got.Percentile(p), want.Percentile(p); gp != wp {
			t.Errorf("%s: Percentile(%v) = %v, want %v", label, p, gp, wp)
		}
	}
	for _, x := range []float64{0, 1e-3, 0.5, 10, 1e4} {
		if gc, wc := got.CDF(x), want.CDF(x); gc != wc {
			t.Errorf("%s: CDF(%v) = %v, want %v", label, x, gc, wc)
		}
		if ga, wa := got.CountAtOrAbove(x), want.CountAtOrAbove(x); ga != wa {
			t.Errorf("%s: CountAtOrAbove(%v) = %v, want %v", label, x, ga, wa)
		}
	}
}

// TestMergeSplitInvariance pins the sharded-merge contract: splitting one
// stream into shards and merging the per-shard aggregates — in any
// grouping — yields bit-identical summary statistics to one aggregate fed
// the whole stream. Exercised both below the exact threshold and far past
// it (histogram regime), including the mixed case where some shards have
// spilled and others have not.
func TestMergeSplitInvariance(t *testing.T) {
	for _, n := range []int{30, ExactThreshold - 1, ExactThreshold + 5, 6000} {
		xs := samples(n, 42)
		whole := fill(xs)

		// Three contiguous shards, merged in order.
		third := n / 3
		s1, s2, s3 := fill(xs[:third]), fill(xs[third:2*third]), fill(xs[2*third:])
		leftFold := new(Agg)
		leftFold.Merge(s1)
		leftFold.Merge(s2)
		leftFold.Merge(s3)
		assertIdentical(t, whole, leftFold, "n=30 (s1+s2)+s3")

		// Associativity: group the right pair first.
		right := new(Agg)
		right.Merge(s2)
		right.Merge(s3)
		rightFold := new(Agg)
		rightFold.Merge(s1)
		rightFold.Merge(right)
		assertIdentical(t, whole, rightFold, "s1+(s2+s3)")

		// Commuted order still matches on order-free statistics (all of
		// them are, by design).
		swapped := new(Agg)
		swapped.Merge(s3)
		swapped.Merge(s1)
		swapped.Merge(s2)
		assertIdentical(t, whole, swapped, "s3+s1+s2")
	}
}

// TestMergeEmptyAndNil covers the degenerate merges.
func TestMergeEmptyAndNil(t *testing.T) {
	a := fill([]float64{1, 2, 3})
	a.Merge(nil)
	a.Merge(new(Agg))
	if a.Count != 3 || a.Sum() != 6 {
		t.Fatalf("merge with empty changed state: count %d sum %v", a.Count, a.Sum())
	}
	b := new(Agg)
	b.Merge(a)
	assertIdentical(t, a, b, "empty+full")
}

// TestExactMatchesRunnerRule pins the exact-mode percentile to the
// nearest-rank rule runner.Stats uses: element ⌊p·(n−1)⌋ of the sorted
// sample, p clamped to [0, 1].
func TestExactMatchesRunnerRule(t *testing.T) {
	xs := samples(101, 7)
	a := fill(xs)
	if !a.IsExact() {
		t.Fatal("101 samples should be in exact mode")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	for _, p := range []float64{-1, 0, 0.25, 0.5, 0.99, 1, 2, math.NaN()} {
		pc := p
		if !(pc > 0) {
			pc = 0
		} else if pc > 1 {
			pc = 1
		}
		want := sorted[int(pc*float64(len(sorted)-1))]
		if got := a.Percentile(p); got != want {
			t.Errorf("Percentile(%v) = %v, want %v", p, got, want)
		}
	}
	if got, want := a.Percentile(0), sorted[0]; got != want {
		t.Errorf("p=0 = %v, want min %v", got, want)
	}
	if got, want := a.Percentile(1), sorted[len(sorted)-1]; got != want {
		t.Errorf("p=1 = %v, want max %v", got, want)
	}
}

// TestHistogramAccuracy bounds the histogram percentile approximation by
// the documented bucket policy: relative error at most
// 1/(2·BucketsPerOctave) plus a bucket width of rank slack.
func TestHistogramAccuracy(t *testing.T) {
	xs := samples(20000, 11)
	a := fill(xs)
	if a.IsExact() {
		t.Fatal("20000 samples should have spilled")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	for _, p := range []float64{0.1, 0.5, 0.9, 0.99} {
		got := a.Percentile(p)
		want := sorted[int(p*float64(len(sorted)-1))]
		if want == 0 {
			continue
		}
		if rel := math.Abs(got-want) / want; rel > 2.0/BucketsPerOctave {
			t.Errorf("Percentile(%v) = %v, exact %v, rel err %.4f > %.4f",
				p, got, want, rel, 2.0/BucketsPerOctave)
		}
	}
	// Mean and Sum stay exact in histogram mode.
	var kahan, comp float64
	for _, x := range xs {
		y := x - comp
		s := kahan + y
		comp = (s - kahan) - y
		kahan = s
	}
	if rel := math.Abs(a.Sum()-kahan) / kahan; rel > 1e-12 {
		t.Errorf("Sum = %v, kahan %v", a.Sum(), kahan)
	}
}

// TestExactSumIsCorrectlyRounded checks the expansion sum against cases
// naive summation gets wrong.
func TestExactSumIsCorrectlyRounded(t *testing.T) {
	// fl(0.1) = 0.1 + 5.55e-18, so ten of them total just over 1e16+1 —
	// past the midpoint of [1e16, 1e16+2] (ulp is 2 here), which rounds
	// to 1e16+2. Naive left-to-right summation loses every 0.1 and
	// returns 1e16 exactly.
	a := new(Agg)
	a.Add(1e16)
	for i := 0; i < 10; i++ {
		a.Add(0.1)
	}
	if got, want := a.Sum(), math.Nextafter(1e16, math.Inf(1)); got != want {
		t.Errorf("Sum = %v, want %v", got, want)
	}
	// Alternating magnitudes that cancel: exact sum is 1.
	b := new(Agg)
	b.Add(1e100)
	b.Add(1)
	b.Add(-1e100)
	if got := b.Sum(); got != 1 {
		t.Errorf("cancellation Sum = %v, want 1", got)
	}
}

// TestJSONRoundTrip: the wire form reproduces every summary statistic
// bit-identically, in both exact and histogram regimes, and a decoded
// aggregate keeps aggregating.
func TestJSONRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 40, 5000} {
		a := fill(samples(n, 3))
		blob, err := json.Marshal(a)
		if err != nil {
			t.Fatalf("n=%d: marshal: %v", n, err)
		}
		b := new(Agg)
		if err := json.Unmarshal(blob, b); err != nil {
			t.Fatalf("n=%d: unmarshal: %v", n, err)
		}
		assertIdentical(t, a, b, "round-trip")
		a.Add(0.25)
		b.Add(0.25)
		assertIdentical(t, a, b, "post-round-trip add")
	}
}

// TestZeroAndNegative: the underflow bucket holds nonpositive samples at
// representative 0; Min stays exact.
func TestZeroAndNegative(t *testing.T) {
	xs := make([]float64, 2000)
	for i := range xs {
		xs[i] = float64(i % 5) // 400 zeros among small ints
	}
	xs[17] = -3
	a := fill(xs)
	if a.Min != -3 {
		t.Errorf("Min = %v, want -3", a.Min)
	}
	if got := a.Percentile(0.05); got != 0 {
		t.Errorf("p05 = %v, want 0 (underflow bucket)", got)
	}
	if got := a.CountAtOrAbove(5); got != 0 {
		t.Errorf("CountAtOrAbove(5) = %d, want 0", got)
	}
	if got := a.CountAtOrAbove(-10); got != int64(len(xs)) {
		t.Errorf("CountAtOrAbove(-10) = %d, want all", got)
	}
}

// TestBucketKeyBounds: every positive float lands in the bucket whose
// bounds contain it, and representatives sit inside their bucket.
func TestBucketKeyBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 10000; i++ {
		x := math.Ldexp(0.5+rng.Float64()/2, rng.Intn(60)-30)
		k := bucketKey(x)
		lo, hi := bucketBounds(k)
		if x < lo || x >= hi {
			t.Fatalf("x=%v outside bucket %d [%v, %v)", x, k, lo, hi)
		}
		if mid := bucketMid(k); mid < lo || mid >= hi {
			t.Fatalf("mid %v outside bucket %d [%v, %v)", mid, k, lo, hi)
		}
	}
	// Octave boundaries land in the first sub-bucket of the octave.
	for _, x := range []float64{0.5, 1, 2, 4, 1024} {
		lo, _ := bucketBounds(bucketKey(x))
		if lo != x {
			t.Errorf("bucketBounds(bucketKey(%v)).lo = %v, want %v", x, lo, x)
		}
	}
}

// TestAllocsAggAdd is the constant-memory gate at the aggregate level: a
// warm Agg absorbs a million samples with allocations bounded by the
// histogram's occupied-bucket growth, not the sample count.
func TestAllocsAggAdd(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation gates run with -race off")
	}
	rng := rand.New(rand.NewSource(9))
	a := new(Agg)
	for i := 0; i < 2*ExactThreshold; i++ { // warm past the spill
		a.Add(rng.ExpFloat64())
	}
	allocs := testing.AllocsPerRun(1, func() {
		for i := 0; i < 1_000_000; i++ {
			a.Add(rng.ExpFloat64())
		}
	})
	// The only legal allocations are map growth for newly occupied
	// buckets and rare expansion regrowth — dozens, not millions.
	if allocs > 100 {
		t.Errorf("1e6 adds allocated %v times, want ≤ 100", allocs)
	}
}
