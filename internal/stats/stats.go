// Package stats provides Agg, a mergeable constant-memory aggregate for
// metric sample streams: running count/min/max, an exactly-rounded running
// sum, and a fixed-bucket log-linear histogram with an exact-sample
// fallback below a size threshold.
//
// Agg exists to make simulation metrics O(1) in the number of samples: a
// billion-delivery run costs the same metrics memory as a ten-delivery one
// (qnet's MetricsStreaming mode feeds delivery times, latencies and
// fidelities through Agg instead of per-record slices).
//
// # Determinism and merging
//
// Aggregation is exact where it can be and deterministic everywhere:
//
//   - Count, Min and Max are exact.
//   - Sum (and therefore Mean) is the correctly rounded value of the exact
//     real sum, independent of add and merge order: the running sum is kept
//     as a non-overlapping floating-point expansion (Shewchuk's
//     GROW-EXPANSION), which represents the real-valued total without
//     rounding error; Sum rounds that exact total once.
//   - Histogram bucket boundaries are fixed properties of the value, never
//     of the data, so bucket counts are plain integer sums.
//
// Consequently Merge is associative and commutative up to bit-identical
// summary statistics: splitting one sample stream across any number of
// shards and merging the per-shard aggregates (in any grouping) yields the
// same Count, Min, Max, Sum, Mean, Percentile and CDF results as one
// aggregate fed the whole stream. This is the property process-sharded
// metrics merging relies on.
//
// # Exactness of queries
//
// While Count ≤ ExactThreshold samples are buffered verbatim and every
// query is exact (Percentile uses the same nearest-rank rule as
// runner.Stats). Past the threshold samples spill into the histogram and
// Percentile/CDF/CountAtOrAbove become approximate with bounded relative
// error (see bucket policy below); Count, Min, Max, Sum and Mean stay
// exact at any size. IsExact reports which regime an aggregate is in.
//
// # Bucket policy
//
// The histogram is log-linear over positive values, HDR-histogram style:
// each power-of-two octave [2^(e-1), 2^e) splits into BucketsPerOctave
// equal-width buckets, so a bucket's relative width is 1/BucketsPerOctave
// (≈3.1%) of its value and a bucket-midpoint estimate is off by at most
// half that (≈1.6%). Bucket coordinates depend only on the sample value,
// so any two aggregates share the same bucket grid by construction. Zero
// and negative samples share one underflow bucket represented as 0 — the
// intended sample domain is nonnegative (times, latencies, fidelities);
// Min still records the exact minimum. Buckets are stored sparsely, so
// memory is bounded by the number of distinct occupied buckets (the
// sample range), not the sample count.
//
// Samples must be finite (no NaN/±Inf): aggregates of non-finite values
// do not round-trip through JSON and have no meaningful histogram bucket.
package stats

import (
	"math"
	"math/big"
	"sort"
)

// ExactThreshold is the sample count up to which an Agg buffers raw
// samples and answers every query exactly; past it, samples live in the
// histogram. 512 samples ≈ 4 KiB — small enough to stay "constant memory"
// per aggregate, large enough that most per-circuit series never
// approximate at all.
const ExactThreshold = 512

// BucketsPerOctave is the histogram resolution: buckets per power-of-two
// range. 32 gives ≤ 1/32 relative bucket width.
const BucketsPerOctave = 32

// zeroBucket keys the underflow bucket holding zero and negative samples.
// It sorts below every real bucket key.
const zeroBucket = math.MinInt32

// Agg is a mergeable constant-memory aggregate of a float64 sample
// stream. The zero value is ready to use. The exported fields are the
// wire form (JSON round-trips bit-exactly); treat them as read-only and
// use the methods for queries.
type Agg struct {
	// Count is the number of samples added.
	Count int64
	// Min and Max are the exact extremes (meaningful when Count > 0).
	Min float64
	Max float64
	// SumParts is the running sum as a non-overlapping floating-point
	// expansion in increasing-magnitude order; its components sum to the
	// exact real total. Read it through Sum.
	SumParts []float64 `json:",omitempty"`
	// Samples buffers the raw stream while Count ≤ ExactThreshold (exact
	// mode); nil after spilling into Buckets.
	Samples []float64 `json:",omitempty"`
	// Buckets holds sparse histogram counts keyed by bucket index once
	// the exact buffer has spilled.
	Buckets map[int]int64 `json:",omitempty"`
}

// Add folds one sample into the aggregate.
func (a *Agg) Add(x float64) {
	if a.Count == 0 || x < a.Min {
		a.Min = x
	}
	if a.Count == 0 || x > a.Max {
		a.Max = x
	}
	a.Count++
	a.SumParts = growExpansion(a.SumParts, x)
	if a.Buckets == nil {
		if a.Count <= ExactThreshold {
			a.Samples = append(a.Samples, x)
			return
		}
		a.spill()
	}
	a.Buckets[bucketKey(x)]++
}

// Merge folds another aggregate into this one. Merging the pieces of a
// split stream (in any grouping or order) yields bit-identical summary
// statistics to aggregating the whole stream; see the package comment.
func (a *Agg) Merge(b *Agg) {
	if b == nil || b.Count == 0 {
		return
	}
	if a.Count == 0 || b.Min < a.Min {
		a.Min = b.Min
	}
	if a.Count == 0 || b.Max > a.Max {
		a.Max = b.Max
	}
	a.Count += b.Count
	for _, p := range b.SumParts {
		a.SumParts = growExpansion(a.SumParts, p)
	}
	if a.Buckets == nil && b.Buckets == nil && a.Count <= ExactThreshold {
		a.Samples = append(a.Samples, b.Samples...)
		return
	}
	if a.Buckets == nil {
		a.spill()
	}
	for k, c := range b.Buckets {
		a.Buckets[k] += c
	}
	for _, x := range b.Samples {
		a.Buckets[bucketKey(x)]++
	}
}

// spill moves the exact buffer into the histogram.
func (a *Agg) spill() {
	a.Buckets = make(map[int]int64, len(a.Samples))
	for _, x := range a.Samples {
		a.Buckets[bucketKey(x)]++
	}
	a.Samples = nil
}

// IsExact reports whether the aggregate still holds its raw samples, so
// Percentile, CDF and CountAtOrAbove are exact rather than
// histogram-approximated.
func (a *Agg) IsExact() bool { return a.Buckets == nil }

// N returns the sample count.
func (a *Agg) N() int64 { return a.Count }

// Sum returns the correctly rounded value of the exact real sum of every
// sample, independent of add/merge order. The expansion components are
// totalled in extended precision (their combined magnitude window fits
// well inside sumPrec bits, so the big.Float additions are exact) and
// rounded to float64 once.
func (a *Agg) Sum() float64 {
	switch len(a.SumParts) {
	case 0:
		return 0
	case 1:
		return a.SumParts[0]
	}
	acc := new(big.Float).SetPrec(sumPrec)
	tmp := new(big.Float).SetPrec(sumPrec)
	for _, p := range a.SumParts {
		acc.Add(acc, tmp.SetFloat64(p))
	}
	f, _ := acc.Float64()
	return f
}

// sumPrec comfortably covers the exponent window of any sum of float64s
// (subnormal 2^-1074 up to overflow 2^1024, plus carry headroom).
const sumPrec = 2240

// Mean returns the arithmetic mean, 0 when empty. Exact-sum based, so
// bit-identical across shard splits.
func (a *Agg) Mean() float64 {
	if a.Count == 0 {
		return 0
	}
	return a.Sum() / float64(a.Count)
}

// Percentile returns the p-quantile by the nearest-rank rule runner.Stats
// uses: the sample of rank ⌊p·(n−1)⌋. p is clamped to [0, 1]; returns 0
// when empty. Exact below ExactThreshold; past it the ranked sample's
// bucket midpoint, within ≈1/(2·BucketsPerOctave) relative error.
func (a *Agg) Percentile(p float64) float64 {
	if a.Count == 0 {
		return 0
	}
	if !(p > 0) { // clamps NaN too
		p = 0
	} else if p > 1 {
		p = 1
	}
	rank := int64(p * float64(a.Count-1))
	if a.IsExact() {
		return a.sorted()[rank]
	}
	var cum int64
	for _, k := range a.sortedKeys() {
		cum += a.Buckets[k]
		if cum > rank {
			return bucketMid(k)
		}
	}
	return a.Max // unreachable: bucket counts total Count
}

// CDF evaluates the empirical distribution at x: the fraction of samples
// strictly below x (SearchFloat64s semantics, matching runner.Stats).
// Exact below ExactThreshold; past it the straddled bucket contributes a
// linear interpolation of its count.
func (a *Agg) CDF(x float64) float64 {
	if a.Count == 0 {
		return 0
	}
	if a.IsExact() {
		return float64(sort.SearchFloat64s(a.sorted(), x)) / float64(a.Count)
	}
	return float64(a.Count-a.countAtOrAbove(x)) / float64(a.Count)
}

// CountAtOrAbove counts samples ≥ x. Exact below ExactThreshold; past it
// whole buckets above x count fully and the bucket straddling x
// contributes a linearly interpolated share.
func (a *Agg) CountAtOrAbove(x float64) int64 {
	if a.Count == 0 {
		return 0
	}
	if a.IsExact() {
		var n int64
		for _, s := range a.Samples {
			if s >= x {
				n++
			}
		}
		return n
	}
	return a.countAtOrAbove(x)
}

// countAtOrAbove is the histogram path of CountAtOrAbove.
func (a *Agg) countAtOrAbove(x float64) int64 {
	if x <= a.Min {
		return a.Count
	}
	if x > a.Max {
		return 0
	}
	var n int64
	for k, c := range a.Buckets {
		lo, hi := bucketBounds(k)
		switch {
		case lo >= x:
			n += c
		case hi > x:
			// Straddling bucket: assume a uniform spread inside it.
			n += int64(math.Round(float64(c) * (hi - x) / (hi - lo)))
		}
	}
	return n
}

// sorted returns the exact buffer in ascending order (copying, so the
// add-order wire form is preserved).
func (a *Agg) sorted() []float64 {
	xs := append([]float64(nil), a.Samples...)
	sort.Float64s(xs)
	return xs
}

// sortedKeys returns the occupied bucket keys in ascending value order.
func (a *Agg) sortedKeys() []int {
	keys := make([]int, 0, len(a.Buckets))
	for k := range a.Buckets {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// bucketKey maps a sample to its histogram bucket: BucketsPerOctave
// equal-width buckets per power-of-two octave, zero/negative samples in
// the shared underflow bucket. Depends only on x, never on prior data.
func bucketKey(x float64) int {
	if x <= 0 {
		return zeroBucket
	}
	frac, exp := math.Frexp(x) // x = frac·2^exp, frac ∈ [0.5, 1)
	sub := int((frac - 0.5) * (2 * BucketsPerOctave))
	if sub >= BucketsPerOctave { // guard the frac→1 boundary
		sub = BucketsPerOctave - 1
	}
	return exp*BucketsPerOctave + sub
}

// bucketBounds returns bucket k's half-open value range [lo, hi).
func bucketBounds(k int) (lo, hi float64) {
	if k == zeroBucket {
		return math.Inf(-1), 0
	}
	exp := k / BucketsPerOctave
	sub := k - exp*BucketsPerOctave
	if sub < 0 { // floor division for negative exponents
		exp--
		sub += BucketsPerOctave
	}
	lo = math.Ldexp(0.5+float64(sub)/(2*BucketsPerOctave), exp)
	hi = math.Ldexp(0.5+float64(sub+1)/(2*BucketsPerOctave), exp)
	return lo, hi
}

// bucketMid returns bucket k's representative value (its midpoint; 0 for
// the underflow bucket).
func bucketMid(k int) float64 {
	if k == zeroBucket {
		return 0
	}
	lo, hi := bucketBounds(k)
	return (lo + hi) / 2
}

// growExpansion adds b to the expansion e (Shewchuk's GROW-EXPANSION):
// the returned components are non-overlapping, carry no rounding error
// (they sum to exactly sum(e)+b), and reuse e's backing array. The
// expansion length is bounded by the number of non-overlapping float64
// components a value can need (≈40), not by the number of adds.
func growExpansion(e []float64, b float64) []float64 {
	out := e[:0]
	q := b
	for _, comp := range e {
		var err float64
		q, err = twoSum(q, comp)
		if err != 0 {
			out = append(out, err)
		}
	}
	if q != 0 {
		out = append(out, q)
	}
	return out
}

// twoSum returns s = fl(a+b) and the exact rounding error err such that
// a + b = s + err (Knuth's branch-free TWO-SUM).
func twoSum(a, b float64) (s, err float64) {
	s = a + b
	bv := s - a
	av := s - bv
	return s, (a - av) + (b - bv)
}
