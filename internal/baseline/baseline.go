// Package baseline implements the comparison protocol of §5.2: "a simpler
// protocol which instead of using a cutoff in the network discards
// end-to-end pairs that are below fidelity". Knowing a pair's fidelity is
// physically impossible, so — exactly as in the paper — the baseline cheats
// with a simulation oracle: "we use the simulation to give us the fidelity.
// The QNP does not use this backdoor mechanism."
//
// The baseline therefore runs the QNP with CutoffNone and filters delivered
// pairs at the end-nodes through this oracle.
package baseline

import (
	"qnp/internal/core"
)

// Filter is the oracle discard rule applied at an end-node.
type Filter struct {
	// Threshold is the end-to-end fidelity below which delivered pairs are
	// discarded.
	Threshold float64
	// Accepted and Rejected count filter decisions.
	Accepted, Rejected uint64
}

// Accept consults the oracle: the pair's exact fidelity against its
// protocol-declared Bell state at delivery time. Measure-type deliveries
// (no pair handle) pass through: the baseline protocol of the paper
// operates on kept pairs.
func (f *Filter) Accept(d core.Delivered) bool {
	if d.Pair == nil {
		f.Accepted++
		return true
	}
	return f.AcceptFidelity(d.Pair.FidelityWith(d.At, d.State))
}

// AcceptFidelity applies the oracle rule to an already-computed delivery
// fidelity — the form scenario metrics use, where the exact fidelity was
// recorded once at delivery time.
func (f *Filter) AcceptFidelity(fid float64) bool {
	if fid >= f.Threshold {
		f.Accepted++
		return true
	}
	f.Rejected++
	return false
}
