package baseline

import (
	"testing"

	"qnp/internal/core"
	"qnp/internal/device"
	"qnp/internal/hardware"
	"qnp/internal/quantum"
	"qnp/internal/sim"
)

func TestFilterAcceptsAboveThreshold(t *testing.T) {
	s := sim.New(1)
	a := device.New(s, "a", hardware.Simulation())
	b := device.New(s, "b", hardware.Simulation())
	a.AddCommQubits("l", 4)
	b.AddCommQubits("l", 4)

	mk := func(f float64) *device.Pair {
		qa, _ := a.AllocComm("l")
		qb, _ := b.AllocComm("l")
		return device.NewPair(s.Now(), quantum.WernerState(f), quantum.PhiPlus, qa, qb)
	}
	filt := &Filter{Threshold: 0.8}
	good := core.Delivered{Pair: mk(0.9), State: quantum.PhiPlus, At: s.Now()}
	bad := core.Delivered{Pair: mk(0.6), State: quantum.PhiPlus, At: s.Now()}
	if !filt.Accept(good) {
		t.Error("good pair rejected")
	}
	if filt.Accept(bad) {
		t.Error("bad pair accepted")
	}
	// A pair whose *declared* state is wrong fails the oracle even though
	// its raw state is fine — the oracle judges what the application sees.
	wrong := core.Delivered{Pair: mk(0.95), State: quantum.PsiMinus, At: s.Now()}
	if filt.Accept(wrong) {
		t.Error("misdeclared pair accepted")
	}
	if filt.Accepted != 1 || filt.Rejected != 2 {
		t.Errorf("counters = %d/%d", filt.Accepted, filt.Rejected)
	}
	// Measure deliveries (no pair handle) pass through.
	if !filt.Accept(core.Delivered{}) {
		t.Error("measure delivery rejected")
	}
}
