package core

import (
	"fmt"

	"qnp/internal/linklayer"
	"qnp/internal/quantum"
)

// Submit polices, shapes and (when admissible) activates a request at the
// head-end node (§4.1 "Policing and shaping"). Rejected requests trigger
// OnReject; shaped requests queue until capacity frees.
func (n *Node) Submit(req Request) error {
	cs, ok := n.circuits[req.Circuit]
	if !ok {
		return fmt.Errorf("core %s: no circuit %q", n.id, req.Circuit)
	}
	if cs.role != RoleHead {
		return fmt.Errorf("core %s: Submit on %s node; requests start at the head-end", n.id, cs.role)
	}
	if cs.dmx.get(req.ID) != nil {
		return fmt.Errorf("core %s: duplicate request ID %q", n.id, req.ID)
	}
	if req.Type == Early && req.FinalState != nil {
		return fmt.Errorf("core %s: final-state correction unavailable for EARLY requests", n.id)
	}
	minEER := req.MinEER()
	if cs.entry.MaxEER > 0 && minEER > cs.entry.MaxEER {
		n.reject(req, "police: request rate exceeds circuit EER")
		return nil
	}
	if cs.entry.MaxEER > 0 && n.activeEER(cs)+minEER > cs.entry.MaxEER {
		// Shape: the request can be satisfied later — unless its deadline
		// makes that impossible, in which case police it away now.
		if req.Deadline > 0 && !n.deadlineFeasible(cs, req) {
			n.reject(req, "police: deadline infeasible under current load")
			return nil
		}
		cs.queued = append(cs.queued, &reqState{req: req, submittedAt: n.sim.Now()})
		return nil
	}
	n.activate(cs, &reqState{req: req, submittedAt: n.sim.Now()})
	return nil
}

// Cancel completes an open-ended (rate-based) request from the application
// side.
func (n *Node) Cancel(circuitID CircuitID, id RequestID) error {
	cs, ok := n.circuits[circuitID]
	if !ok || cs.role != RoleHead {
		return fmt.Errorf("core %s: Cancel needs the head-end of an installed circuit", n.id)
	}
	rs := cs.dmx.get(id)
	if rs == nil || !rs.active {
		return fmt.Errorf("core %s: no active request %q", n.id, id)
	}
	n.finishRequest(cs, rs)
	return nil
}

func (n *Node) reject(req Request, reason string) {
	if n.apps.OnReject != nil {
		n.apps.OnReject(req, reason)
	}
}

// activeEER sums the minimum EERs of active requests.
func (n *Node) activeEER(cs *circuit) float64 {
	var sum float64
	for _, rs := range cs.dmx.activeRequests() {
		if rs.active {
			sum += rs.req.MinEER()
		}
	}
	return sum
}

// deadlineFeasible estimates whether a shaped request could still meet its
// deadline: all queued and active work ahead of it, served at the circuit's
// EER, plus its own pairs.
func (n *Node) deadlineFeasible(cs *circuit, req Request) bool {
	if cs.entry.MaxEER <= 0 {
		return true
	}
	pairsAhead := 0
	for _, rs := range cs.dmx.activeRequests() {
		if rs.active && rs.req.NumPairs > 0 {
			pairsAhead += rs.req.NumPairs - rs.delivered
		}
	}
	for _, rs := range cs.queued {
		pairsAhead += rs.req.NumPairs
	}
	eta := float64(pairsAhead+req.NumPairs) / cs.entry.MaxEER
	return eta <= req.Deadline.Seconds()
}

// activate admits a request: new epoch, FORWARD downstream, link layer
// (re)configuration.
func (n *Node) activate(cs *circuit, rs *reqState) {
	cs.dmx.add(rs)
	cs.dmx.jumpToLatest()
	rate := n.requestedRate(cs)
	n.registerLinks(cs, rate)
	n.sendDown(cs, ForwardMsg{
		Circuit:      cs.entry.Circuit,
		Request:      rs.req.ID,
		Type:         rs.req.Type,
		MeasureBasis: rs.req.MeasureBasis,
		NumPairs:     rs.req.NumPairs,
		FinalState:   rs.req.FinalState,
		TestEvery:    rs.req.TestEvery,
		Rate:         rate,
	})
}

// requestedRate computes the FORWARD/COMPLETE rate field: maximum LPR unless
// only rate-based requests are active (§4.1 "Continuous link generation").
func (n *Node) requestedRate(cs *circuit) float64 {
	active := 0
	var sum float64
	for _, rs := range cs.dmx.activeRequests() {
		if !rs.active {
			continue
		}
		active++
		if rs.req.Rate <= 0 {
			return maxLPRSentinel
		}
		sum += rs.req.Rate
	}
	if active == 0 {
		return 0
	}
	return sum
}

// finishRequest completes a request at the head-end: epoch change, COMPLETE
// downstream, link layer update, shaped-queue admission.
func (n *Node) finishRequest(cs *circuit, rs *reqState) {
	cs.dmx.remove(rs.req.ID)
	cs.dmx.jumpToLatest()
	rate := n.requestedRate(cs)
	if rate == 0 {
		n.deactivateLinks(cs)
	} else {
		n.registerLinks(cs, rate)
	}
	n.sendDown(cs, CompleteMsg{Circuit: cs.entry.Circuit, Request: rs.req.ID, Rate: rate})
	if n.apps.OnComplete != nil {
		n.apps.OnComplete(cs.entry.Circuit, rs.req.ID)
	}
	n.admitQueued(cs)
}

// admitQueued admits shaped requests that fit the circuit's current EER
// allocation — after a completion frees capacity, or after a re-fit grows
// the allocation itself.
func (n *Node) admitQueued(cs *circuit) {
	for len(cs.queued) > 0 {
		next := cs.queued[0]
		minEER := next.req.MinEER()
		if cs.entry.MaxEER > 0 && n.activeEER(cs)+minEER > cs.entry.MaxEER {
			break
		}
		cs.queued = cs.queued[1:]
		n.activate(cs, next)
	}
}

// --- End-node LINK rule (Algorithms 1 and 4) -------------------------------

func (n *Node) endLinkRule(cs *circuit, slot *pairSlot) {
	rs := cs.dmx.next()
	if rs == nil {
		// No assignable request (drain window after completion): free the
		// qubit and leave a tombstone so a late TRACK from the other end is
		// answered with EXPIRE.
		cs.endExpired[slot.corr] = n.sim.Now()
		n.dev.Free(slot.qubit)
		return
	}
	it := &inTransitEntry{rs: rs, slot: slot}
	cs.inTransit[slot.corr] = it

	// Head-end designates fidelity test rounds, cycling the bases. The
	// monotonic assignment counter keys the choice, so re-assigned slots
	// (after expiry or cross-check discard) are not re-designated.
	if cs.role == RoleHead && rs.req.TestEvery > 0 && rs.totalAssigned%rs.req.TestEvery == 0 {
		it.test = true
		it.testBasis = quantum.Basis(cs.tests.issued % 3)
		cs.tests.issued++
	}

	tm := TrackMsg{
		Circuit:  cs.entry.Circuit,
		Request:  rs.req.ID,
		Origin:   slot.corr,
		LinkCorr: slot.corr,
		Outcome:  slot.idx,
		FromHead: cs.role == RoleHead,
		Test:     it.test,
	}
	if it.test {
		tm.TestBasis = it.testBasis
	}
	if cs.role == RoleHead {
		tm.Epoch = cs.dmx.latest
		n.sendDown(cs, tm)
	} else {
		n.sendUp(cs, tm)
	}

	// Consume-early modes: measure now, or hand the qubit to the app now.
	switch {
	case it.test:
		n.measureLocal(cs, it, it.testBasis)
	case rs.req.Type == Measure:
		n.measureLocal(cs, it, rs.req.MeasureBasis)
	case rs.req.Type == Early:
		it.earlyGiven = true
		if n.apps.OnEarlyPair != nil {
			n.apps.OnEarlyPair(Delivered{
				Circuit:   cs.entry.Circuit,
				Request:   rs.req.ID,
				Corr:      slot.corr, // provisional; the canonical ID follows with tracking
				LocalCorr: slot.corr,
				Pair:      slot.pair(),
				State:     slot.idx, // provisional; final state follows with tracking
				Type:      Early,
				At:        n.sim.Now(),
			})
		}
	}
}

// measureLocal performs the local half's measurement for MEASURE requests
// and test rounds; the outcome is withheld until tracking resolves.
func (n *Node) measureLocal(cs *circuit, it *inTransitEntry, basis quantum.Basis) {
	n.dev.MeasureHalf(it.slot.qubit, basis, func(bit int) {
		it.measured = true
		it.measuredBit = bit
		if it.test && cs.role == RoleHead {
			// Push the head's bit into the test sample (the chain may or
			// may not be confirmed yet).
			hb := cs.tests.headBits[it.slot.corr]
			hb.basis = it.testBasis
			hb.bit, hb.haveBit = bit, true
			cs.tests.headBits[it.slot.corr] = hb
			n.maybeScoreTest(cs, it.slot.corr)
			return
		}
		if it.trackArrived {
			n.deliver(cs, it)
		}
	})
}

// --- End-node TRACK rule (Algorithms 2 and 5) ------------------------------

func (n *Node) endTrackRule(cs *circuit, m TrackMsg) {
	if _, dead := cs.endExpired[m.LinkCorr]; dead {
		delete(cs.endExpired, m.LinkCorr)
		// Answer with EXPIRE toward the TRACK's origin end-node so it can
		// recycle its chain-end qubit.
		exp := ExpireMsg{Circuit: cs.entry.Circuit, Origin: m.Origin, ToHead: m.FromHead}
		if m.FromHead { // we are the tail; origin is the head
			n.sendUp(cs, exp)
		} else {
			n.sendDown(cs, exp)
		}
		cs.expiresSent++
		return
	}
	it, ok := cs.inTransit[m.LinkCorr]
	if !ok {
		// Stale TRACK for a pair we no longer hold (already resolved by an
		// EXPIRE): nothing to do.
		return
	}
	// Demultiplexer cross-check (§4.1 "Aggregation"): the other end's
	// assignment must match ours, else both ends discard. Chains resolving
	// for already-completed requests drain the same way.
	if it.rs.req.ID != m.Request || !it.rs.active {
		cs.trackMismatch++
		n.dropInTransit(cs, m.LinkCorr, it)
		return
	}
	delete(cs.inTransit, m.LinkCorr)
	it.trackArrived = true
	it.trackState = m.Outcome
	if m.FromHead {
		it.chainCorr = m.Origin // we are the tail; the head-side ID travels on its TRACK
	} else {
		it.chainCorr = it.slot.corr // we are the head; our own correlator is canonical
	}

	// Tail activates the epoch announced by the head on delivery.
	if cs.role == RoleTail && m.Epoch > 0 {
		cs.dmx.advance(m.Epoch)
	}

	if m.Test || it.test {
		n.resolveTestRound(cs, it, m)
		return
	}
	if it.measured || it.rs.req.Type == Measure {
		if it.measured {
			n.deliver(cs, it)
		}
		// else: measurement still on the device timeline; deliver fires
		// from its completion callback.
		return
	}
	n.deliver(cs, it)
}

// deliver finalises a confirmed pair at this end-node.
func (n *Node) deliver(cs *circuit, it *inTransitEntry) {
	rs := it.rs
	state := it.trackState
	if rs.req.FinalState != nil {
		want := *rs.req.FinalState
		if cs.role == RoleHead {
			// Pauli-correct the local half into the requested Bell state.
			if p := it.slot.pair(); p != nil && !it.measured && p.LocalSide(string(n.id)) >= 0 {
				d := state ^ want
				p.ApplyPauli(p.LocalSide(string(n.id)), d.XBit(), d.ZBit())
			}
		}
		// Both ends report the corrected state (Algorithm 5: the tail
		// trusts the head-end's correction).
		state = want
	}
	if !rs.haveFirst {
		rs.haveFirst = true
		rs.firstAt = n.sim.Now()
	}
	rs.delivered++
	d := Delivered{
		Circuit:   cs.entry.Circuit,
		Request:   rs.req.ID,
		Seq:       rs.nextSeq(),
		Corr:      it.chainCorr,
		LocalCorr: it.slot.corr,
		State:     state,
		Type:      rs.req.Type,
		At:        n.sim.Now(),
	}
	switch rs.req.Type {
	case Measure:
		d.Bit = it.measuredBit
	default:
		d.Pair = it.slot.pair()
	}
	if n.apps.OnPair != nil {
		n.apps.OnPair(d)
	}
	if cs.role == RoleHead && rs.active && rs.req.NumPairs > 0 && rs.delivered >= rs.req.NumPairs {
		n.finishRequest(cs, rs)
	}
}

// dropInTransit discards a local pair after a failed cross-check or an
// EXPIRE: the assignment is returned to the demultiplexer for reuse.
func (n *Node) dropInTransit(cs *circuit, corr linklayer.Correlator, it *inTransitEntry) {
	delete(cs.inTransit, corr)
	cs.dmx.unassign(it.rs)
	if it.earlyGiven {
		if n.apps.OnExpire != nil {
			n.apps.OnExpire(cs.entry.Circuit, it.rs.req.ID, corr)
		}
		return // the application owns the early qubit and must free it
	}
	if !it.measured {
		if p := it.slot.pair(); p != nil && p.LocalSide(string(n.id)) >= 0 {
			n.dev.Free(it.slot.qubit)
		}
	}
}

// --- End-node EXPIRE rule (Algorithms 3 and 6) ------------------------------

func (n *Node) endExpireRule(cs *circuit, m ExpireMsg) {
	it, ok := cs.inTransit[m.Origin]
	if !ok {
		return
	}
	n.dropInTransit(cs, m.Origin, it)
}

// --- Fidelity test rounds ----------------------------------------------------

// resolveTestRound handles a confirmed test-round chain at either end.
func (n *Node) resolveTestRound(cs *circuit, it *inTransitEntry, m TrackMsg) {
	cs.dmx.unassign(it.rs) // test rounds do not count toward the request
	if cs.role == RoleTail {
		// Measure in the head's announced basis and report back.
		report := func(bit int) {
			n.sendUp(cs, TestResultMsg{
				Circuit: cs.entry.Circuit,
				Origin:  m.Origin,
				Basis:   m.TestBasis,
				Bit:     bit,
				ToHead:  true,
			})
		}
		if it.measured {
			report(it.measuredBit)
			return
		}
		n.dev.MeasureHalf(it.slot.qubit, m.TestBasis, report)
		return
	}
	// Head: remember the declared state and our own measurement; the tail's
	// result arrives as a TestResultMsg keyed by our origin correlator. If
	// our measurement is still on the device timeline, its completion
	// callback (measureLocal) fills in the bit and re-scores.
	hb := cs.tests.headBits[it.slot.corr]
	hb.basis = it.testBasis
	hb.idx = m.Outcome
	hb.haveIdx = true
	if it.measured {
		hb.bit, hb.haveBit = it.measuredBit, true
	}
	cs.tests.headBits[it.slot.corr] = hb
	n.maybeScoreTest(cs, it.slot.corr)
}

// headRecordTestResult stores the tail's measurement and scores the sample
// when both bits are in.
func (n *Node) headRecordTestResult(cs *circuit, m TestResultMsg) {
	hb := cs.tests.headBits[m.Origin]
	hb.tailBit, hb.haveTailBit = m.Bit, true
	cs.tests.headBits[m.Origin] = hb
	n.maybeScoreTest(cs, m.Origin)
}

func (n *Node) maybeScoreTest(cs *circuit, corr linklayer.Correlator) {
	hb := cs.tests.headBits[corr]
	if !hb.haveBit || !hb.haveTailBit || !hb.haveIdx {
		return
	}
	delete(cs.tests.headBits, corr)
	s := 1.0
	if hb.bit != hb.tailBit {
		s = -1
	}
	// Adjust the outcome product into the Φ+ frame using the declared Bell
	// state's expected correlation signs.
	s *= bellSign(hb.idx, hb.basis)
	b := int(hb.basis)
	cs.tests.sum[b] += s
	cs.tests.count[b]++
	if n.apps.OnTestEstimate != nil {
		n.apps.OnTestEstimate(TestEstimate{
			Circuit:  cs.entry.Circuit,
			Samples:  cs.tests.count[0] + cs.tests.count[1] + cs.tests.count[2],
			Estimate: n.testFidelityEstimate(cs),
		})
	}
}

// bellSign is the expected sign of the basis-B correlation for Bell state
// idx: every Bell state is a ±1 eigenstate of XX, YY and ZZ.
func bellSign(idx quantum.BellIndex, basis quantum.Basis) float64 {
	// Signs (XX, YY, ZZ) per state: Φ+:(+,−,+) Ψ+:(+,+,−) Φ−:(−,+,+) Ψ−:(−,−,−).
	var xx, yy, zz float64
	switch idx {
	case quantum.PhiPlus:
		xx, yy, zz = 1, -1, 1
	case quantum.PsiPlus:
		xx, yy, zz = 1, 1, -1
	case quantum.PhiMinus:
		xx, yy, zz = -1, 1, 1
	case quantum.PsiMinus:
		xx, yy, zz = -1, -1, -1
	}
	switch basis {
	case quantum.XBasis:
		return xx
	case quantum.YBasis:
		return yy
	default:
		return zz
	}
}

// testFidelityEstimate reconstructs F from the per-basis correlator
// estimates, normalised to the Φ+ frame: F ≈ (1 + <XX> − <YY> + <ZZ>)/4
// with the sign adjustments already folded in per sample.
func (n *Node) testFidelityEstimate(cs *circuit) float64 {
	e := func(b quantum.Basis) float64 {
		i := int(b)
		if cs.tests.count[i] == 0 {
			return 1 // no samples yet: assume perfect (optimistic prior)
		}
		return cs.tests.sum[i] / float64(cs.tests.count[i])
	}
	// All three adjusted correlators should be +1 for perfect pairs.
	return (1 + e(quantum.XBasis) + e(quantum.YBasis) + e(quantum.ZBasis)) / 4
}

// TestEstimateFor exposes the current estimate (head-end).
func (n *Node) TestEstimateFor(id CircuitID) (float64, int, bool) {
	cs, ok := n.circuits[id]
	if !ok || cs.role != RoleHead {
		return 0, 0, false
	}
	samples := cs.tests.count[0] + cs.tests.count[1] + cs.tests.count[2]
	if samples == 0 {
		return 0, 0, false
	}
	return n.testFidelityEstimate(cs), samples, true
}

// NodeStats aggregates a node's QNP counters across circuits. LateDrops
// counts data-plane messages dropped because their circuit had already torn
// down (churn stragglers); EERUpdates counts allocation re-fits applied at
// the node (always zero when the network does not enforce admission).
type NodeStats struct {
	Swaps, Discards, ExpiresSent, TrackMismatches, LateDrops, EERUpdates uint64
}

// Stats returns the node's counters.
func (n *Node) Stats() NodeStats {
	var st NodeStats
	for _, cs := range n.circuits {
		st.Swaps += cs.swaps
		st.Discards += cs.discards
		st.ExpiresSent += cs.expiresSent
		st.TrackMismatches += cs.trackMismatch
	}
	st.LateDrops = n.lateDrops
	st.EERUpdates = n.eerUpdates
	return st
}
