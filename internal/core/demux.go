package core

import (
	"qnp/internal/sim"
)

// reqState is an end-node's book-keeping for one request sharing a circuit.
type reqState struct {
	req Request
	// assigned counts local link-pairs currently assigned to this request
	// (in transit or delivered); discarded chains are unassigned again —
	// "if a qubit was not delivered early it can be reassigned".
	assigned int
	// totalAssigned counts assignments ever made (monotonic; never
	// decremented) — test-round designation keys off it so a re-assigned
	// slot is not re-designated forever.
	totalAssigned int
	// delivered counts confirmed deliveries at this end.
	delivered int
	active    bool
	seq       int
	// submittedAt/firstAt support deadline/window accounting.
	submittedAt sim.Time
	firstAt     sim.Time
	haveFirst   bool
}

func (rs *reqState) nextSeq() int {
	s := rs.seq
	rs.seq++
	return s
}

// wantsMore reports whether the request can take another pair assignment.
func (rs *reqState) wantsMore() bool {
	if !rs.active {
		return false
	}
	if rs.req.NumPairs == 0 {
		return true // rate-based, open-ended
	}
	return rs.assigned < rs.req.NumPairs
}

// demux is the symmetric demultiplexer (§4.1 "Aggregation", Appendix C
// "Demultiplexing"): it assigns a circuit's pairs to requests using the same
// deterministic rule at both end-nodes — oldest active request first — and
// relies on TRACK cross-checks to discard the occasional inconsistent
// assignment. Epochs version the active request set: a new epoch is created
// on every request arrival/completion, the head-end announces the next epoch
// on each TRACK, and the tail activates it after delivering that pair.
type demux struct {
	// latest is the newest created epoch; sets[e] is epoch e's request list
	// in arrival order.
	latest uint64
	// active is the epoch this end currently assigns from (the head always
	// tracks latest; the tail advances on deliveries).
	active uint64
	sets   map[uint64][]*reqState
	byID   map[RequestID]*reqState
}

func newDemux() *demux {
	return &demux{
		sets: map[uint64][]*reqState{0: nil},
		byID: make(map[RequestID]*reqState),
	}
}

// add creates a new epoch containing the previous set plus rs.
func (d *demux) add(rs *reqState) uint64 {
	prev := d.sets[d.latest]
	d.latest++
	next := make([]*reqState, len(prev), len(prev)+1)
	copy(next, prev)
	next = append(next, rs)
	d.sets[d.latest] = next
	d.byID[rs.req.ID] = rs
	rs.active = true
	return d.latest
}

// remove creates a new epoch without rs and deactivates it.
func (d *demux) remove(id RequestID) uint64 {
	rs, ok := d.byID[id]
	if !ok {
		return d.latest
	}
	rs.active = false
	prev := d.sets[d.latest]
	d.latest++
	next := make([]*reqState, 0, len(prev))
	for _, r := range prev {
		if r != rs {
			next = append(next, r)
		}
	}
	d.sets[d.latest] = next
	return d.latest
}

// get looks up a request.
func (d *demux) get(id RequestID) *reqState { return d.byID[id] }

// jumpToLatest moves assignment to the newest epoch (head-end behaviour).
func (d *demux) jumpToLatest() { d.advance(d.latest) }

// advance activates epoch e if it is newer than the current one, pruning
// older set snapshots.
func (d *demux) advance(e uint64) {
	if e <= d.active || e > d.latest {
		return
	}
	for old := d.active; old < e; old++ {
		delete(d.sets, old)
	}
	d.active = e
}

// next assigns the next pair: the oldest request in the active epoch that
// still wants pairs. If the active epoch has nothing assignable but a later
// epoch exists, the demux advances — this bootstraps the first request and
// drains dead epochs.
func (d *demux) next() *reqState {
	for {
		for _, rs := range d.sets[d.active] {
			if rs.wantsMore() {
				rs.assigned++
				rs.totalAssigned++
				return rs
			}
		}
		if d.active >= d.latest {
			return nil
		}
		d.advance(d.active + 1)
	}
}

// unassign returns an assignment after a discarded chain or failed
// cross-check, making the slot reusable.
func (d *demux) unassign(rs *reqState) {
	if rs.assigned > rs.delivered {
		rs.assigned--
	}
}

// activeRequests returns the requests of the newest epoch.
func (d *demux) activeRequests() []*reqState { return d.sets[d.latest] }
