package core

import (
	"fmt"

	"qnp/internal/device"
	"qnp/internal/linklayer"
	"qnp/internal/netsim"
	"qnp/internal/quantum"
	"qnp/internal/sim"
)

// Delivered is handed to the application when a pair (or a measurement
// outcome) is delivered at an end-node.
type Delivered struct {
	Circuit CircuitID
	Request RequestID
	// Seq numbers deliveries within the request at this end.
	Seq int
	// Corr is the entangled pair identifier of §3.2: the head-end-side
	// chain correlator, identical at both end-nodes (the tail learns it
	// from the head's TRACK message Origin field).
	Corr linklayer.Correlator
	// LocalCorr is this end's own link-pair correlator for the chain; EARLY
	// hand-offs and EXPIRE notices are keyed by it.
	LocalCorr linklayer.Correlator
	// Pair is the live end-to-end pair (nil for Measure deliveries).
	Pair *device.Pair
	// State is the protocol's declared Bell state for the pair.
	State quantum.BellIndex
	// Bit is the measurement outcome for Measure requests.
	Bit  int
	Type RequestType
	At   sim.Time
}

// TestEstimate reports the running fidelity estimate from test rounds.
type TestEstimate struct {
	Circuit  CircuitID
	Samples  int
	Estimate float64
}

// AppCallbacks connect an end-node's QNP to the local application.
// Unset callbacks are ignored.
type AppCallbacks struct {
	// OnPair delivers confirmed pairs (KEEP), tracking confirmations
	// (EARLY) and withheld measurement results (MEASURE).
	OnPair func(Delivered)
	// OnEarlyPair hands over the qubit as soon as it is available (EARLY
	// requests); tracking info follows via OnPair.
	OnEarlyPair func(Delivered)
	// OnExpire notifies that an early-delivered or in-flight pair's chain
	// broke (the application must discard its early qubit).
	OnExpire func(CircuitID, RequestID, linklayer.Correlator)
	// OnComplete fires at the head-end when a request finishes.
	OnComplete func(CircuitID, RequestID)
	// OnReject fires when policing rejects a request.
	OnReject func(Request, string)
	// OnTestEstimate reports fidelity test-round statistics (head-end).
	OnTestEstimate func(TestEstimate)
}

// pairSlot tracks one local link-pair half at a node. The qubit is the
// stable handle: remote entanglement swaps rewire qubit→pair bindings, so
// the current (possibly multi-hop) pair is always qubit.Pair().
type pairSlot struct {
	corr      linklayer.Correlator
	idx       quantum.BellIndex // heralded link-pair Bell state
	qubit     *device.Qubit
	cutoff    sim.Event
	arrivedAt sim.Time
	// moving marks a half mid-transfer to a storage qubit (near-term
	// platform); it cannot be swapped until the move completes.
	moving bool
}

func (s *pairSlot) pair() *device.Pair { return s.qubit.Pair() }

// swapRecord is the temporary record logged after every entanglement swap
// (§4.1 "Swap records"): the partner pair's correlator and heralded state
// plus the two-bit swap outcome. Records are soft state: chains whose both
// ends were drained never send a TRACK to consume them, so a TTL sweep
// reclaims them (at is the creation time).
type swapRecord struct {
	otherCorr linklayer.Correlator
	otherIdx  quantum.BellIndex
	outcome   quantum.BellIndex
	at        sim.Time
}

// parkedTrack is a TRACK waiting at a node for its swap to complete.
type parkedTrack struct {
	msg TrackMsg
	at  sim.Time
}

// inTransitEntry is an end-node's record of a local pair assigned to a
// request and awaiting tracking confirmation.
type inTransitEntry struct {
	rs   *reqState
	slot *pairSlot
	// test marks head-chosen fidelity test rounds.
	test      bool
	testBasis quantum.Basis
	// measured holds the outcome of an already-performed measurement
	// (Measure requests and test rounds).
	measured     bool
	measuredBit  int
	trackArrived bool
	trackState   quantum.BellIndex
	earlyGiven   bool
	// chainCorr is the canonical (head-side) chain identifier, learned from
	// the confirming TRACK.
	chainCorr linklayer.Correlator
}

// testStats accumulates fidelity test-round correlators at the head-end.
type testStats struct {
	// sum of ±1 outcome products per basis, sign-adjusted to the Φ+ frame.
	sum   [3]float64
	count [3]int
	// issued counts test rounds designated so far (for basis cycling).
	issued int
	// pending head measurements/tail results keyed by origin correlator.
	headBits map[linklayer.Correlator]headTestBit
}

type headTestBit struct {
	basis   quantum.Basis
	bit     int
	haveBit bool
	// tailBit arrives via TestResultMsg.
	tailBit     int
	haveTailBit bool
	idx         quantum.BellIndex
	haveIdx     bool
}

// circuit is the per-node state of one virtual circuit.
type circuit struct {
	entry RoutingEntry
	role  Role

	// Intermediate node state (Appendix C Algorithms 7–9). All maps are
	// soft state with TTL reclamation (see sweep).
	upQ, downQ             []*pairSlot
	upRecord, downRecord   map[linklayer.Correlator]swapRecord
	upTrack, downTrack     map[linklayer.Correlator]parkedTrack
	upExpired, downExpired map[linklayer.Correlator]sim.Time

	// End-node state (Algorithms 1–6).
	dmx        *demux
	inTransit  map[linklayer.Correlator]*inTransitEntry
	endExpired map[linklayer.Correlator]sim.Time
	queued     []*reqState // shaped (delayed) requests, head-end only
	tests      testStats

	// Link layer registration state.
	upRegistered, downRegistered bool

	// Stats.
	swaps, discards, expiresSent, trackMismatch uint64
}

// Node is one network node's QNP engine. It owns the node's circuits,
// consumes link layer deliveries, exchanges FORWARD/COMPLETE/TRACK/EXPIRE
// messages with its neighbours, and applies the Appendix C rules.
type Node struct {
	id     netsim.NodeID
	sim    *sim.Simulation
	net    *netsim.Network
	dev    *device.Device
	fabric *linklayer.Fabric

	circuits map[CircuitID]*circuit
	apps     AppCallbacks
	// torn tombstones recently uninstalled circuits (keyed by teardown
	// time): the teardown wave races in-flight data-plane messages, so a
	// TRACK or EXPIRE arriving for a tombstoned circuit is dropped as a
	// legitimate late straggler rather than treated as a signalling bug.
	// The GC sweep reclaims old tombstones.
	torn map[CircuitID]sim.Time
	// lateDrops counts messages dropped against tombstones.
	lateDrops uint64
	// eerUpdates counts allocation re-fits applied at this node — the
	// observable footprint of UpdateMsg refit traffic (a non-enforcing
	// network must keep it at zero).
	eerUpdates uint64
	// gcRunning marks the periodic soft-state sweep as started.
	gcRunning bool
}

// NewNode creates the QNP engine for a node and hooks it into the classical
// network's message dispatch.
func NewNode(s *sim.Simulation, net *netsim.Network, dev *device.Device, fabric *linklayer.Fabric) *Node {
	n := &Node{
		id:       netsim.NodeID(dev.ID()),
		sim:      s,
		net:      net,
		dev:      dev,
		fabric:   fabric,
		circuits: make(map[CircuitID]*circuit),
		torn:     make(map[CircuitID]sim.Time),
	}
	net.Handle(n.id, n.handleMessage)
	return n
}

// ID returns the node's network ID.
func (n *Node) ID() netsim.NodeID { return n.id }

// Device returns the node's quantum device.
func (n *Node) Device() *device.Device { return n.dev }

// SetCallbacks installs the application callbacks (end-nodes).
func (n *Node) SetCallbacks(cb AppCallbacks) { n.apps = cb }

// InstallCircuit installs the routing-table entry for a circuit at this
// node — the signalling protocol's job (§3.3).
func (n *Node) InstallCircuit(e RoutingEntry) {
	if _, ok := n.circuits[e.Circuit]; ok {
		panic(fmt.Sprintf("core %s: circuit %q already installed", n.id, e.Circuit))
	}
	cs := &circuit{
		entry:       e,
		role:        e.Role(),
		upRecord:    make(map[linklayer.Correlator]swapRecord),
		downRecord:  make(map[linklayer.Correlator]swapRecord),
		upTrack:     make(map[linklayer.Correlator]parkedTrack),
		downTrack:   make(map[linklayer.Correlator]parkedTrack),
		upExpired:   make(map[linklayer.Correlator]sim.Time),
		downExpired: make(map[linklayer.Correlator]sim.Time),
		inTransit:   make(map[linklayer.Correlator]*inTransitEntry),
		endExpired:  make(map[linklayer.Correlator]sim.Time),
	}
	cs.tests.headBits = make(map[linklayer.Correlator]headTestBit)
	if cs.role != RoleIntermediate {
		cs.dmx = newDemux()
	}
	n.circuits[e.Circuit] = cs
	delete(n.torn, e.Circuit) // a reinstalled ID is live again
	if !n.gcRunning {
		n.gcRunning = true
		n.sim.Schedule(gcInterval, n.gcSweep)
	}
}

// Soft-state reclamation: swap records, discard records, end-node
// tombstones and parked TRACKs all describe chains whose resolution
// messages normally consume them — but a chain whose both ends were drained
// (e.g. pairs arriving after a request completed) never resolves. The sweep
// drops entries older than several cutoff intervals; any TRACK that would
// have consumed them has long since been answered or abandoned.
const gcInterval = 5 * sim.Second

func (n *Node) gcTTL(cs *circuit) sim.Duration {
	ttl := 10 * cs.entry.Cutoff
	if ttl < 2*gcInterval {
		ttl = 2 * gcInterval
	}
	return ttl
}

func (n *Node) gcSweep() {
	now := n.sim.Now()
	for _, cs := range n.circuits {
		cutoff := now.Add(-n.gcTTL(cs))
		for k, v := range cs.upRecord {
			if v.at < cutoff {
				delete(cs.upRecord, k)
			}
		}
		for k, v := range cs.downRecord {
			if v.at < cutoff {
				delete(cs.downRecord, k)
			}
		}
		for k, v := range cs.upTrack {
			if v.at < cutoff {
				delete(cs.upTrack, k)
			}
		}
		for k, v := range cs.downTrack {
			if v.at < cutoff {
				delete(cs.downTrack, k)
			}
		}
		for k, v := range cs.upExpired {
			if v < cutoff {
				delete(cs.upExpired, k)
			}
		}
		for k, v := range cs.downExpired {
			if v < cutoff {
				delete(cs.downExpired, k)
			}
		}
		for k, v := range cs.endExpired {
			if v < cutoff {
				delete(cs.endExpired, k)
			}
		}
	}
	// Teardown tombstones outlive any in-flight message by orders of
	// magnitude before reclamation (message latencies are sub-second).
	tombCutoff := now.Add(-2 * gcInterval)
	for id, at := range n.torn {
		if at < tombCutoff {
			delete(n.torn, id)
		}
	}
	n.sim.Schedule(gcInterval, n.gcSweep)
}

// UninstallCircuit tears a circuit down at this node: link layer requests
// are deactivated, queued pairs and cutoff timers are released, and the
// routing-table entry is removed (§4.1: "If a circuit goes down due to loss
// of connectivity, the protocol aborts all requests").
func (n *Node) UninstallCircuit(id CircuitID) {
	cs, ok := n.circuits[id]
	if !ok {
		return
	}
	n.deactivateLinks(cs)
	for _, q := range [][]*pairSlot{cs.upQ, cs.downQ} {
		for _, slot := range q {
			n.sim.Cancel(slot.cutoff)
			n.dev.Free(slot.qubit)
		}
	}
	for _, it := range cs.inTransit {
		if !it.measured && !it.earlyGiven {
			if p := it.slot.pair(); p != nil && p.LocalSide(string(n.id)) >= 0 {
				n.dev.Free(it.slot.qubit)
			}
		}
	}
	delete(n.circuits, id)
	n.torn[id] = n.sim.Now()
}

// UpdateCircuitEER re-fits the circuit's end-to-end rate allocation at this
// node (§4.4: the controller recomputes allocations as circuits join and
// leave; the signalling protocol propagates the new value along the path).
// The head-end re-derives its link pacing from the new allocation and
// re-examines shaped requests, which may now fit.
func (n *Node) UpdateCircuitEER(id CircuitID, maxEER float64) {
	n.eerUpdates++
	cs, ok := n.circuits[id]
	if !ok {
		return // circuit mid-teardown: the update raced its departure
	}
	cs.entry.MaxEER = maxEER
	if cs.role != RoleHead {
		return
	}
	if rate := n.requestedRate(cs); rate != 0 && cs.downRegistered {
		n.registerLinks(cs, rate)
	}
	n.admitQueued(cs)
}

// Circuit returns the routing entry installed for a circuit.
func (n *Node) Circuit(id CircuitID) (RoutingEntry, bool) {
	cs, ok := n.circuits[id]
	if !ok {
		return RoutingEntry{}, false
	}
	return cs.entry, true
}

// mustCircuit fetches circuit state or panics — messages for uninstalled
// circuits indicate a signalling bug.
func (n *Node) mustCircuit(id CircuitID) *circuit {
	cs, ok := n.circuits[id]
	if !ok {
		panic(fmt.Sprintf("core %s: message for uninstalled circuit %q", n.id, id))
	}
	return cs
}

// --- Message plumbing -----------------------------------------------------

func (n *Node) handleMessage(from netsim.NodeID, msg netsim.Message) {
	switch m := msg.(type) {
	case ForwardMsg:
		if !n.dropLate(m.Circuit) {
			n.onForward(m)
		}
	case CompleteMsg:
		if !n.dropLate(m.Circuit) {
			n.onComplete(m)
		}
	case TrackMsg:
		if !n.dropLate(m.Circuit) {
			n.onTrack(m)
		}
	case ExpireMsg:
		if !n.dropLate(m.Circuit) {
			n.onExpire(m)
		}
	case TestResultMsg:
		if !n.dropLate(m.Circuit) {
			n.onTestResult(m)
		}
	}
}

// dropLate reports (and counts) a data-plane message for a circuit that has
// already torn down at this node — the teardown wave races in-flight
// messages, so stragglers are a legitimate outcome, not a signalling bug.
// Messages for circuits never installed still panic via mustCircuit.
func (n *Node) dropLate(id CircuitID) bool {
	if _, live := n.circuits[id]; live {
		return false
	}
	if _, gone := n.torn[id]; gone {
		n.lateDrops++
		return true
	}
	return false
}

func (n *Node) sendUp(cs *circuit, msg netsim.Message) {
	n.net.Send(n.id, cs.entry.Upstream, msg)
}

func (n *Node) sendDown(cs *circuit, msg netsim.Message) {
	n.net.Send(n.id, cs.entry.Downstream, msg)
}

// --- Link layer management ------------------------------------------------

// registerLinks (re-)activates the circuit's link layer requests at this
// node per the FORWARD's rate field.
func (n *Node) registerLinks(cs *circuit, rate float64) {
	e := cs.entry
	if e.Downstream != "" {
		eng := n.fabric.Between(string(n.id), string(e.Downstream))
		lpr := n.effectiveLPR(cs, rate)
		if !cs.downRegistered {
			label := e.DownLabel
			if err := eng.Register(string(n.id), label, e.DownMinFidelity, lpr, func(d linklayer.Delivery) {
				n.onLinkPair(cs, d, false)
			}); err != nil {
				panic(fmt.Sprintf("core %s: link register: %v", n.id, err))
			}
			cs.downRegistered = true
		} else {
			eng.UpdateRate(e.DownLabel, lpr)
		}
		if cs.role == RoleHead && e.MaxEER > 0 {
			// Shaping (§4.1): under admission control the head-end caps its
			// first hop at the admitted end-to-end rate. Every end-to-end
			// pair consumes one head-link pair, so pacing here bounds the
			// circuit's measured EER by its allocation regardless of how
			// idle the rest of the plant is.
			pace := 0.0
			if rate != maxLPRSentinel {
				pace = rate
			}
			eng.SetPace(string(n.id), e.DownLabel, pace)
		}
	}
	if e.Upstream != "" && !cs.upRegistered {
		eng := n.fabric.Between(string(n.id), string(e.Upstream))
		// The upstream neighbour owns this link's fidelity/rate settings
		// (its DownMinFidelity); we register with the same values, which
		// the routing table guarantees to match: our upstream link is the
		// neighbour's downstream link.
		if err := eng.Register(string(n.id), e.UpLabel, e.UpMinFidelity, e.UpMaxLPR, func(d linklayer.Delivery) {
			n.onLinkPair(cs, d, true)
		}); err != nil {
			panic(fmt.Sprintf("core %s: link register: %v", n.id, err))
		}
		cs.upRegistered = true
	}
}

// effectiveLPR maps the circuit's current requested EER to the link-pair
// rate to ask of the link layer: the max LPR unless only rate-based
// requests are active, in which case the proportional fraction (§4.1
// "Continuous link generation").
func (n *Node) effectiveLPR(cs *circuit, rate float64) float64 {
	e := cs.entry
	if rate == maxLPRSentinel || e.MaxEER <= 0 {
		return e.DownMaxLPR
	}
	lpr := e.DownMaxLPR * rate / e.MaxEER
	if lpr > e.DownMaxLPR {
		lpr = e.DownMaxLPR
	}
	if lpr < 0 {
		lpr = 0
	}
	return lpr
}

// deactivateLinks pauses the circuit's generation at this node when no
// requests remain.
func (n *Node) deactivateLinks(cs *circuit) {
	e := cs.entry
	if cs.downRegistered {
		n.fabric.Between(string(n.id), string(e.Downstream)).Deactivate(string(n.id), e.DownLabel)
		cs.downRegistered = false
	}
	if cs.upRegistered {
		n.fabric.Between(string(n.id), string(e.Upstream)).Deactivate(string(n.id), e.UpLabel)
		cs.upRegistered = false
	}
}

// --- FORWARD / COMPLETE ---------------------------------------------------

func (n *Node) onForward(m ForwardMsg) {
	cs := n.mustCircuit(m.Circuit)
	n.registerLinks(cs, m.Rate)
	if cs.role == RoleTail {
		// Tail book-keeping: a new epoch with the request added.
		rs := &reqState{
			req: Request{
				ID:           m.Request,
				Circuit:      m.Circuit,
				Type:         m.Type,
				MeasureBasis: m.MeasureBasis,
				NumPairs:     m.NumPairs,
				FinalState:   m.FinalState,
				TestEvery:    m.TestEvery,
			},
			submittedAt: n.sim.Now(),
		}
		cs.dmx.add(rs)
		return
	}
	n.sendDown(cs, m)
}

func (n *Node) onComplete(m CompleteMsg) {
	cs := n.mustCircuit(m.Circuit)
	if cs.role == RoleTail {
		cs.dmx.remove(m.Request)
		if m.Rate == 0 {
			n.deactivateLinks(cs)
		}
		return
	}
	if m.Rate == 0 {
		n.deactivateLinks(cs)
	} else {
		n.registerLinks(cs, m.Rate)
	}
	n.sendDown(cs, m)
}

// --- LINK rules -----------------------------------------------------------

// onLinkPair dispatches a link layer delivery to the role-specific rule.
func (n *Node) onLinkPair(cs *circuit, d linklayer.Delivery, fromUpstream bool) {
	slot := &pairSlot{
		corr:      d.Corr,
		idx:       d.Idx,
		qubit:     d.Pair.Half(d.Pair.LocalSide(string(n.id))),
		arrivedAt: n.sim.Now(),
	}
	if cs.role == RoleIntermediate {
		n.intermediateLinkRule(cs, slot, fromUpstream)
		return
	}
	n.endLinkRule(cs, slot)
}

// intermediateLinkRule is Algorithm 7: queue the pair, arm its cutoff, and
// swap as soon as an upstream and a downstream pair are both available.
// Swaps always take the oldest unexpired pairs (§5 evaluation setup).
//
// On carbon-storage platforms (§5.3) the freshly delivered half sits on the
// node's only communication qubit; it is first moved into a storage qubit so
// the electron can generate on the other link. The slot is not swappable
// until the move completes.
func (n *Node) intermediateLinkRule(cs *circuit, slot *pairSlot, fromUpstream bool) {
	if cs.entry.Cutoff > 0 {
		slot.cutoff = n.sim.Schedule(cs.entry.Cutoff, func() {
			n.expiryRule(cs, slot, fromUpstream)
		})
	}
	if fromUpstream {
		cs.upQ = append(cs.upQ, slot)
	} else {
		cs.downQ = append(cs.downQ, slot)
	}
	if n.dev.Params().HasCarbon && slot.qubit.Kind() == device.Communication {
		slot.moving = true
		n.dev.MoveToStorage(slot.qubit, func(newQ *device.Qubit, ok bool) {
			slot.moving = false
			if !ok {
				// No storage space: treat like a cutoff discard so the
				// tracking machinery cleans the chain up.
				n.sim.Cancel(slot.cutoff)
				n.expiryRule(cs, slot, fromUpstream)
				return
			}
			slot.qubit = newQ
			n.trySwap(cs)
		})
		return
	}
	n.trySwap(cs)
}

// swappable finds the oldest slot in q that is ready for a swap.
func swappable(q []*pairSlot) *pairSlot {
	for _, s := range q {
		if !s.moving {
			return s
		}
	}
	return nil
}

func (n *Node) trySwap(cs *circuit) {
	for {
		up := swappable(cs.upQ)
		down := swappable(cs.downQ)
		if up == nil || down == nil {
			return
		}
		cs.upQ = removeSlot(cs.upQ, up)
		cs.downQ = removeSlot(cs.downQ, down)
		n.sim.Cancel(up.cutoff)
		n.sim.Cancel(down.cutoff)
		n.dev.Swap(up.qubit, down.qubit, func(_ *device.Pair, outcome quantum.BellIndex) {
			n.swapDone(cs, up, down, outcome)
		})
	}
}

// swapDone logs swap records and forwards any parked TRACKs (the tail halves
// of Algorithm 7).
func (n *Node) swapDone(cs *circuit, up, down *pairSlot, outcome quantum.BellIndex) {
	cs.swaps++
	if pt, ok := cs.upTrack[up.corr]; ok {
		delete(cs.upTrack, up.corr)
		tm := pt.msg
		tm.LinkCorr = down.corr
		tm.Outcome = quantum.Combine(tm.Outcome, down.idx, outcome)
		n.sendDown(cs, tm)
	} else {
		cs.upRecord[up.corr] = swapRecord{otherCorr: down.corr, otherIdx: down.idx, outcome: outcome, at: n.sim.Now()}
	}
	if pt, ok := cs.downTrack[down.corr]; ok {
		delete(cs.downTrack, down.corr)
		tm := pt.msg
		tm.LinkCorr = up.corr
		tm.Outcome = quantum.Combine(tm.Outcome, up.idx, outcome)
		n.sendUp(cs, tm)
	} else {
		cs.downRecord[down.corr] = swapRecord{otherCorr: up.corr, otherIdx: up.idx, outcome: outcome, at: n.sim.Now()}
	}
}

// expiryRule is Algorithm 9: the cutoff timer popped for a queued pair.
func (n *Node) expiryRule(cs *circuit, slot *pairSlot, fromUpstream bool) {
	if fromUpstream {
		cs.upQ = removeSlot(cs.upQ, slot)
	} else {
		cs.downQ = removeSlot(cs.downQ, slot)
	}
	cs.discards++
	n.dev.Free(slot.qubit)
	if fromUpstream {
		if pt, ok := cs.upTrack[slot.corr]; ok {
			delete(cs.upTrack, slot.corr)
			n.sendUp(cs, ExpireMsg{Circuit: cs.entry.Circuit, Origin: pt.msg.Origin, ToHead: true})
			cs.expiresSent++
		} else {
			cs.upExpired[slot.corr] = n.sim.Now()
		}
		return
	}
	if pt, ok := cs.downTrack[slot.corr]; ok {
		delete(cs.downTrack, slot.corr)
		n.sendDown(cs, ExpireMsg{Circuit: cs.entry.Circuit, Origin: pt.msg.Origin, ToHead: false})
		cs.expiresSent++
	} else {
		cs.downExpired[slot.corr] = n.sim.Now()
	}
}

func removeSlot(q []*pairSlot, s *pairSlot) []*pairSlot {
	for i, x := range q {
		if x == s {
			return append(q[:i], q[i+1:]...)
		}
	}
	return q
}

// --- TRACK rules ----------------------------------------------------------

func (n *Node) onTrack(m TrackMsg) {
	cs := n.mustCircuit(m.Circuit)
	if cs.role == RoleIntermediate {
		n.intermediateTrackRule(cs, m)
		return
	}
	n.endTrackRule(cs, m)
}

// intermediateTrackRule is Algorithm 8: resolve the TRACK against a swap
// record, an expiry record, or park it until the swap completes.
func (n *Node) intermediateTrackRule(cs *circuit, m TrackMsg) {
	if m.FromHead {
		if rec, ok := cs.upRecord[m.LinkCorr]; ok {
			delete(cs.upRecord, m.LinkCorr)
			m.LinkCorr = rec.otherCorr
			m.Outcome = quantum.Combine(m.Outcome, rec.otherIdx, rec.outcome)
			n.sendDown(cs, m)
			return
		}
		if _, dead := cs.upExpired[m.LinkCorr]; dead {
			delete(cs.upExpired, m.LinkCorr)
			n.sendUp(cs, ExpireMsg{Circuit: cs.entry.Circuit, Origin: m.Origin, ToHead: true})
			cs.expiresSent++
			return
		}
		cs.upTrack[m.LinkCorr] = parkedTrack{msg: m, at: n.sim.Now()}
		return
	}
	if rec, ok := cs.downRecord[m.LinkCorr]; ok {
		delete(cs.downRecord, m.LinkCorr)
		m.LinkCorr = rec.otherCorr
		m.Outcome = quantum.Combine(m.Outcome, rec.otherIdx, rec.outcome)
		n.sendUp(cs, m)
		return
	}
	if _, dead := cs.downExpired[m.LinkCorr]; dead {
		delete(cs.downExpired, m.LinkCorr)
		n.sendDown(cs, ExpireMsg{Circuit: cs.entry.Circuit, Origin: m.Origin, ToHead: false})
		cs.expiresSent++
		return
	}
	cs.downTrack[m.LinkCorr] = parkedTrack{msg: m, at: n.sim.Now()}
}

// --- EXPIRE / TestResult relay ---------------------------------------------

func (n *Node) onExpire(m ExpireMsg) {
	cs := n.mustCircuit(m.Circuit)
	if cs.role == RoleIntermediate {
		if m.ToHead {
			n.sendUp(cs, m)
		} else {
			n.sendDown(cs, m)
		}
		return
	}
	n.endExpireRule(cs, m)
}

func (n *Node) onTestResult(m TestResultMsg) {
	cs := n.mustCircuit(m.Circuit)
	if cs.role == RoleIntermediate {
		if m.ToHead {
			n.sendUp(cs, m)
		} else {
			n.sendDown(cs, m)
		}
		return
	}
	n.headRecordTestResult(cs, m)
}
