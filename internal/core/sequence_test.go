package core

import (
	"testing"

	"qnp/internal/netsim"
	"qnp/internal/sim"
)

// TestSequenceDiagramFig6 checks the paper's Fig. 6 message flow on a
// four-node circuit: a FORWARD wave head→tail, TRACK messages in both
// directions collecting swap records, delivery at both ends, and a COMPLETE
// wave after the last pair.
func TestSequenceDiagramFig6(t *testing.T) {
	cfg := defaultChainConfig(4)
	cfg.perfectRO = true
	c := buildChain(t, cfg)

	// Tap every node's classical handler to build the event log.
	type event struct {
		node netsim.NodeID
		kind string
	}
	var log []event
	for _, id := range c.ids {
		id := id
		c.net.Handle(id, func(_ netsim.NodeID, msg netsim.Message) {
			switch m := msg.(type) {
			case ForwardMsg:
				log = append(log, event{id, "FORWARD"})
			case CompleteMsg:
				log = append(log, event{id, "COMPLETE"})
			case TrackMsg:
				dir := "TRACK↓"
				if !m.FromHead {
					dir = "TRACK↑"
				}
				log = append(log, event{id, dir})
			case ExpireMsg:
				log = append(log, event{id, "EXPIRE"})
			}
		})
	}
	hc := newCollector(c, c.head())
	tc := newCollector(c, c.tail())
	if err := c.head().Submit(Request{ID: "r", Circuit: "vc", Type: Keep, NumPairs: 1}); err != nil {
		t.Fatal(err)
	}
	c.sim.RunFor(10 * sim.Second)
	if len(hc.pairs) != 1 || len(tc.pairs) != 1 {
		t.Fatalf("deliveries %d/%d", len(hc.pairs), len(tc.pairs))
	}

	pos := func(node netsim.NodeID, kind string) int {
		for i, e := range log {
			if e.node == node && e.kind == kind {
				return i
			}
		}
		return -1
	}
	last := func(node netsim.NodeID, kind string) int {
		p := -1
		for i, e := range log {
			if e.node == node && e.kind == kind {
				p = i
			}
		}
		return p
	}

	// FORWARD wave traverses n1 → n2 → n3 in order.
	f1, f2, f3 := pos("n1", "FORWARD"), pos("n2", "FORWARD"), pos("n3", "FORWARD")
	if f1 < 0 || f2 < 0 || f3 < 0 || !(f1 < f2 && f2 < f3) {
		t.Fatalf("FORWARD wave out of order: %d %d %d", f1, f2, f3)
	}
	// The head's TRACK reaches the tail, and the tail's TRACK reaches the
	// head — both after the FORWARD wave began.
	td := pos("n3", "TRACK↓")
	tu := pos("n0", "TRACK↑")
	if td < 0 || tu < 0 {
		t.Fatalf("missing end-to-end TRACKs: down@n3=%d up@n0=%d", td, tu)
	}
	if td < f3 {
		t.Error("tail received TRACK before FORWARD")
	}
	// COMPLETE wave follows the final delivery, traversing in order.
	c1, c2, c3 := last("n1", "COMPLETE"), last("n2", "COMPLETE"), last("n3", "COMPLETE")
	if c1 < 0 || c2 < 0 || c3 < 0 || !(c1 < c2 && c2 < c3) {
		t.Fatalf("COMPLETE wave out of order: %d %d %d", c1, c2, c3)
	}
	if c1 < td || c1 < tu {
		t.Error("COMPLETE sent before the pair resolved at both ends")
	}
	// Intermediate nodes saw TRACKs in both directions.
	for _, mid := range []netsim.NodeID{"n1", "n2"} {
		if pos(mid, "TRACK↓") < 0 || pos(mid, "TRACK↑") < 0 {
			t.Errorf("node %s missing a TRACK direction", mid)
		}
	}
	// Render the observed sequence on failure.
	if t.Failed() {
		for i, e := range log {
			t.Logf("%3d %-3s %s", i, e.node, e.kind)
		}
	}
}
