package core

import (
	"fmt"
	"testing"

	"qnp/internal/device"
	"qnp/internal/hardware"
	"qnp/internal/linklayer"
	"qnp/internal/netsim"
	"qnp/internal/quantum"
	"qnp/internal/sim"
)

// chain is a hand-wired linear network (what the signalling protocol will
// automate): N nodes, one circuit head→tail, identical links.
type chain struct {
	sim    *sim.Simulation
	net    *netsim.Network
	nodes  []*Node
	ids    []netsim.NodeID
	fabric *linklayer.Fabric
}

type chainConfig struct {
	n         int
	linkF     float64
	cutoff    sim.Duration
	maxEER    float64
	maxLPR    float64
	params    hardware.Params
	qubits    int
	seed      int64
	perfectRO bool
}

func defaultChainConfig(n int) chainConfig {
	return chainConfig{
		n:      n,
		linkF:  0.95,
		cutoff: 2 * sim.Second,
		maxLPR: 200,
		params: hardware.Simulation(),
		qubits: 2,
		seed:   1,
	}
}

func buildChain(t *testing.T, cfg chainConfig) *chain {
	t.Helper()
	s := sim.New(cfg.seed)
	nw := netsim.New(s)
	fabric := linklayer.NewFabric()
	params := cfg.params
	if cfg.perfectRO {
		params.Gates.Readout = quantum.PerfectReadout
	}
	link := hardware.LabLink()

	c := &chain{sim: s, net: nw, fabric: fabric}
	devs := make([]*device.Device, cfg.n)
	for i := 0; i < cfg.n; i++ {
		id := netsim.NodeID(fmt.Sprintf("n%d", i))
		c.ids = append(c.ids, id)
		nw.AddNode(id)
		devs[i] = device.New(s, string(id), params)
	}
	for i := 0; i+1 < cfg.n; i++ {
		a, b := string(c.ids[i]), string(c.ids[i+1])
		name := linklayer.LinkName(a, b)
		devs[i].AddCommQubits(name, cfg.qubits)
		devs[i+1].AddCommQubits(name, cfg.qubits)
		nw.Connect(c.ids[i], c.ids[i+1], link.PropagationDelay())
		fabric.Add(linklayer.NewEngine(s, name, link, devs[i], devs[i+1]))
	}
	for i := 0; i < cfg.n; i++ {
		c.nodes = append(c.nodes, NewNode(s, nw, devs[i], fabric))
	}
	// Install the circuit "vc" along the whole chain.
	for i := 0; i < cfg.n; i++ {
		e := RoutingEntry{
			Circuit: "vc",
			HeadEnd: c.ids[0],
			TailEnd: c.ids[cfg.n-1],
			MaxEER:  cfg.maxEER,
			Cutoff:  cfg.cutoff,
		}
		if i > 0 {
			e.Upstream = c.ids[i-1]
			e.UpLabel = "vc"
			e.UpMinFidelity = cfg.linkF
			e.UpMaxLPR = cfg.maxLPR
		}
		if i < cfg.n-1 {
			e.Downstream = c.ids[i+1]
			e.DownLabel = "vc"
			e.DownMinFidelity = cfg.linkF
			e.DownMaxLPR = cfg.maxLPR
		}
		c.nodes[i].InstallCircuit(e)
	}
	return c
}

func (c *chain) head() *Node { return c.nodes[0] }
func (c *chain) tail() *Node { return c.nodes[len(c.nodes)-1] }

// delivery snapshots a Delivered plus physics read at delivery time (the
// collector frees the qubit immediately — a real application consumes pairs,
// which is what keeps end-node memory flowing).
type delivery struct {
	Delivered
	fidelity  float64
	trueIdx   quantum.BellIndex
	spansEnds bool
}

// collector gathers deliveries at one end and consumes the qubits.
type collector struct {
	node      *Node
	headID    string
	tailID    string
	pairs     []delivery
	early     []Delivered
	expired   []linklayer.Correlator
	completed []RequestID
	rejected  []string
	// keepEarly leaves early-delivered qubits to the test (owner semantics).
	earlyHeld map[linklayer.Correlator]*device.Pair
}

func newCollector(c *chain, n *Node) *collector {
	col := &collector{
		node:      n,
		headID:    string(c.ids[0]),
		tailID:    string(c.ids[len(c.ids)-1]),
		earlyHeld: make(map[linklayer.Correlator]*device.Pair),
	}
	n.SetCallbacks(AppCallbacks{
		OnPair: func(d Delivered) {
			rec := delivery{Delivered: d}
			if d.Pair != nil {
				rec.fidelity = d.Pair.FidelityWith(d.At, d.State)
				rec.trueIdx = d.Pair.TrueIdx()
				rec.spansEnds = d.Pair.LocalSide(string(n.ID())) >= 0
				// Consume: free this end's half.
				if s := d.Pair.LocalSide(string(n.ID())); s >= 0 {
					if q := d.Pair.Half(s); q != nil {
						n.Device().Free(q)
					}
				}
				delete(col.earlyHeld, d.LocalCorr)
			}
			col.pairs = append(col.pairs, rec)
		},
		OnEarlyPair: func(d Delivered) {
			col.early = append(col.early, d)
			col.earlyHeld[d.LocalCorr] = d.Pair
		},
		OnExpire: func(_ CircuitID, _ RequestID, corr linklayer.Correlator) {
			col.expired = append(col.expired, corr)
			if p, ok := col.earlyHeld[corr]; ok {
				delete(col.earlyHeld, corr)
				if s := p.LocalSide(string(n.ID())); s >= 0 {
					if q := p.Half(s); q != nil {
						n.Device().Free(q)
					}
				}
			}
		},
		OnComplete: func(_ CircuitID, id RequestID) { col.completed = append(col.completed, id) },
		OnReject:   func(_ Request, r string) { col.rejected = append(col.rejected, r) },
	})
	return col
}

func TestTwoNodeKeepRequest(t *testing.T) {
	c := buildChain(t, defaultChainConfig(2))
	hc := newCollector(c, c.head())
	tc := newCollector(c, c.tail())

	if err := c.head().Submit(Request{ID: "r1", Circuit: "vc", Type: Keep, NumPairs: 3}); err != nil {
		t.Fatal(err)
	}
	c.sim.RunFor(5 * sim.Second)

	if len(hc.pairs) != 3 || len(tc.pairs) != 3 {
		t.Fatalf("deliveries head=%d tail=%d, want 3/3", len(hc.pairs), len(tc.pairs))
	}
	if len(hc.completed) != 1 || hc.completed[0] != "r1" {
		t.Fatalf("completion = %v", hc.completed)
	}
	for i := range hc.pairs {
		h, tl := hc.pairs[i], tc.pairs[i]
		if h.Corr != tl.Corr {
			t.Error("pair identifiers differ between ends")
		}
		if h.State != tl.State {
			t.Error("declared states differ between ends")
		}
		if h.Pair == nil || tl.Pair == nil {
			t.Fatal("KEEP delivery without pair")
		}
		// Protocol-declared state matches physical ground truth (perfect
		// tracking on a single link: no swaps, no readout involved).
		if h.State != h.trueIdx {
			t.Errorf("declared %v != true %v", h.State, h.trueIdx)
		}
		if h.fidelity < 0.9 {
			t.Errorf("delivered fidelity %v", h.fidelity)
		}
	}
}

func TestThreeNodeSwapDelivery(t *testing.T) {
	cfg := defaultChainConfig(3)
	cfg.perfectRO = true // so announced swap outcomes are always truthful
	c := buildChain(t, cfg)
	hc := newCollector(c, c.head())
	tc := newCollector(c, c.tail())

	if err := c.head().Submit(Request{ID: "r1", Circuit: "vc", Type: Keep, NumPairs: 5}); err != nil {
		t.Fatal(err)
	}
	c.sim.RunFor(20 * sim.Second)

	if len(hc.pairs) != 5 || len(tc.pairs) != 5 {
		t.Fatalf("deliveries head=%d tail=%d, want 5/5", len(hc.pairs), len(tc.pairs))
	}
	mid := c.nodes[1]
	if mid.Stats().Swaps < 5 {
		t.Errorf("middle node swaps = %d, want ≥5", mid.Stats().Swaps)
	}
	for i := range hc.pairs {
		h := hc.pairs[i]
		// With perfect readout the lazy tracking must agree exactly with
		// the physical Bell index of the merged pair.
		if h.State != h.trueIdx {
			t.Errorf("pair %d: declared %v != physical %v", i, h.State, h.trueIdx)
		}
		// The delivered pair is attached at this end-node.
		if !h.spansEnds {
			t.Error("delivered pair not attached at the end-node")
		}
		if h.fidelity < 0.85 {
			t.Errorf("end-to-end fidelity %v", h.fidelity)
		}
	}
	// Head and tail report the same set of canonical pair identifiers.
	hSet := map[linklayer.Correlator]bool{}
	for _, d := range hc.pairs {
		hSet[d.Corr] = true
	}
	for _, d := range tc.pairs {
		if !hSet[d.Corr] {
			t.Errorf("tail delivered chain %v unknown to head", d.Corr)
		}
	}
}

func TestFourNodeChain(t *testing.T) {
	cfg := defaultChainConfig(4)
	cfg.perfectRO = true
	c := buildChain(t, cfg)
	hc := newCollector(c, c.head())
	tc := newCollector(c, c.tail())
	if err := c.head().Submit(Request{ID: "r1", Circuit: "vc", Type: Keep, NumPairs: 4}); err != nil {
		t.Fatal(err)
	}
	c.sim.RunFor(30 * sim.Second)
	if len(hc.pairs) != 4 || len(tc.pairs) != 4 {
		t.Fatalf("deliveries head=%d tail=%d, want 4/4", len(hc.pairs), len(tc.pairs))
	}
	for _, d := range hc.pairs {
		if d.State != d.trueIdx {
			t.Errorf("tracking wrong through two swaps: %v vs %v", d.State, d.trueIdx)
		}
	}
}

func TestMeasureRequestCorrelations(t *testing.T) {
	cfg := defaultChainConfig(3)
	cfg.perfectRO = true
	c := buildChain(t, cfg)
	hc := newCollector(c, c.head())
	tc := newCollector(c, c.tail())
	if err := c.head().Submit(Request{
		ID: "r1", Circuit: "vc", Type: Measure, MeasureBasis: quantum.ZBasis, NumPairs: 20,
	}); err != nil {
		t.Fatal(err)
	}
	c.sim.RunFor(60 * sim.Second)
	if len(hc.pairs) != 20 || len(tc.pairs) != 20 {
		t.Fatalf("measure deliveries %d/%d, want 20/20", len(hc.pairs), len(tc.pairs))
	}
	agree := 0
	for i := range hc.pairs {
		h, tl := hc.pairs[i], tc.pairs[i]
		if h.Pair != nil {
			t.Fatal("MEASURE delivery carried a qubit")
		}
		// Z-correlation depends on the declared state: Φ states correlate,
		// Ψ states anticorrelate.
		wantEqual := h.State.XBit() == 0
		if (h.Bit == tl.Bit) == wantEqual {
			agree++
		}
	}
	if agree < 17 {
		t.Errorf("correct Z correlations %d/20", agree)
	}
	// Memory released: MEASURE qubits never sit in memory at the ends.
	if c.head().Device().FreeCommCount(linklayer.LinkName("n0", "n1")) != 2 {
		t.Error("head qubits not all free after MEASURE request")
	}
}

func TestEarlyDelivery(t *testing.T) {
	c := buildChain(t, defaultChainConfig(2))
	hc := newCollector(c, c.head())
	tc := newCollector(c, c.tail())
	_ = tc // the tail consumes its halves; only the head's view is asserted
	if err := c.head().Submit(Request{ID: "r1", Circuit: "vc", Type: Early, NumPairs: 3}); err != nil {
		t.Fatal(err)
	}
	c.sim.RunFor(5 * sim.Second)
	if len(hc.early) != 3 {
		t.Fatalf("early deliveries = %d", len(hc.early))
	}
	if len(hc.pairs) != 3 {
		t.Fatalf("tracking confirmations = %d", len(hc.pairs))
	}
	// Early hand-off precedes confirmation for each pair (same local corr).
	for i := range hc.early {
		if hc.early[i].LocalCorr != hc.pairs[i].LocalCorr {
			t.Error("early/confirm correlators out of order")
		}
	}
	// EARLY with FinalState is rejected.
	phi := quantum.PhiPlus
	if err := c.head().Submit(Request{ID: "r2", Circuit: "vc", Type: Early, NumPairs: 1, FinalState: &phi}); err == nil {
		t.Error("EARLY+FinalState accepted")
	}
}

func TestFinalStateCorrection(t *testing.T) {
	cfg := defaultChainConfig(3)
	cfg.perfectRO = true
	c := buildChain(t, cfg)
	hc := newCollector(c, c.head())
	tc := newCollector(c, c.tail())
	phi := quantum.PhiPlus
	if err := c.head().Submit(Request{ID: "r1", Circuit: "vc", Type: Keep, NumPairs: 5, FinalState: &phi}); err != nil {
		t.Fatal(err)
	}
	c.sim.RunFor(20 * sim.Second)
	if len(hc.pairs) != 5 {
		t.Fatalf("deliveries = %d", len(hc.pairs))
	}
	for _, d := range hc.pairs {
		if d.State != quantum.PhiPlus {
			t.Errorf("delivered state %v, want Φ+", d.State)
		}
		if d.trueIdx != quantum.PhiPlus {
			t.Errorf("physical state %v after correction", d.trueIdx)
		}
		if d.fidelity < 0.85 {
			t.Errorf("corrected fidelity %v", d.fidelity)
		}
	}
	for _, d := range tc.pairs {
		if d.State != quantum.PhiPlus {
			t.Errorf("tail reported %v, want Φ+", d.State)
		}
	}
}

func TestPolicingRejects(t *testing.T) {
	cfg := defaultChainConfig(2)
	cfg.maxEER = 5 // pairs/s
	c := buildChain(t, cfg)
	hc := newCollector(c, c.head())
	// 100 pairs in 1 s needs EER 100 > 5: police.
	if err := c.head().Submit(Request{ID: "r1", Circuit: "vc", Type: Keep, NumPairs: 100, Deadline: sim.Second}); err != nil {
		t.Fatal(err)
	}
	if len(hc.rejected) != 1 {
		t.Fatalf("rejections = %v", hc.rejected)
	}
}

func TestShapingDelaysRequests(t *testing.T) {
	cfg := defaultChainConfig(2)
	cfg.maxEER = 40
	c := buildChain(t, cfg)
	hc := newCollector(c, c.head())
	// First request claims the full EER (rate-based).
	if err := c.head().Submit(Request{ID: "r1", Circuit: "vc", Type: Measure, NumPairs: 5, Rate: 40}); err != nil {
		t.Fatal(err)
	}
	// Second request must be shaped (no deadline → wait).
	if err := c.head().Submit(Request{ID: "r2", Circuit: "vc", Type: Keep, NumPairs: 2, Window: 10 * sim.Second}); err != nil {
		t.Fatal(err)
	}
	if len(hc.rejected) != 0 {
		t.Fatalf("unexpected rejections: %v", hc.rejected)
	}
	c.sim.RunFor(10 * sim.Second)
	// Both eventually complete, r1 first.
	if len(hc.completed) != 2 || hc.completed[0] != "r1" || hc.completed[1] != "r2" {
		t.Fatalf("completions = %v", hc.completed)
	}
}

func TestAggregationTwoRequests(t *testing.T) {
	c := buildChain(t, defaultChainConfig(2))
	hc := newCollector(c, c.head())
	tc := newCollector(c, c.tail())
	if err := c.head().Submit(Request{ID: "a", Circuit: "vc", Type: Keep, NumPairs: 2}); err != nil {
		t.Fatal(err)
	}
	if err := c.head().Submit(Request{ID: "b", Circuit: "vc", Type: Keep, NumPairs: 2}); err != nil {
		t.Fatal(err)
	}
	c.sim.RunFor(10 * sim.Second)
	if len(hc.completed) != 2 {
		t.Fatalf("completions = %v", hc.completed)
	}
	count := map[RequestID]int{}
	for _, d := range hc.pairs {
		count[d.Request]++
	}
	if count["a"] != 2 || count["b"] != 2 {
		t.Errorf("per-request deliveries = %v", count)
	}
	// Tail agrees on every assignment (no mismatches on an uncontended run).
	for i := range hc.pairs {
		if hc.pairs[i].Request != tc.pairs[i].Request {
			t.Error("request assignment differs between ends")
		}
	}
}

func TestDuplicateRequestIDRejected(t *testing.T) {
	c := buildChain(t, defaultChainConfig(2))
	if err := c.head().Submit(Request{ID: "a", Circuit: "vc", Type: Keep, NumPairs: 1}); err != nil {
		t.Fatal(err)
	}
	if err := c.head().Submit(Request{ID: "a", Circuit: "vc", Type: Keep, NumPairs: 1}); err == nil {
		t.Error("duplicate request ID accepted")
	}
	if err := c.head().Submit(Request{ID: "x", Circuit: "nope", Type: Keep, NumPairs: 1}); err == nil {
		t.Error("unknown circuit accepted")
	}
	if err := c.tail().Submit(Request{ID: "y", Circuit: "vc", Type: Keep, NumPairs: 1}); err == nil {
		t.Error("Submit at tail accepted")
	}
}

func TestCancelRateBasedRequest(t *testing.T) {
	c := buildChain(t, defaultChainConfig(2))
	hc := newCollector(c, c.head())
	if err := c.head().Submit(Request{ID: "r", Circuit: "vc", Type: Keep, NumPairs: 0}); err != nil {
		t.Fatal(err)
	}
	c.sim.RunFor(2 * sim.Second)
	delivered := len(hc.pairs)
	if delivered == 0 {
		t.Fatal("open-ended request delivered nothing")
	}
	if err := c.head().Cancel("vc", "r"); err != nil {
		t.Fatal(err)
	}
	c.sim.RunFor(2 * sim.Second)
	// A handful of in-flight chains may still resolve right at cancel time,
	// but generation must stop: allow a small drain margin.
	if grown := len(hc.pairs) - delivered; grown > 4 {
		t.Errorf("deliveries after cancel: %d", grown)
	}
	if err := c.head().Cancel("vc", "r"); err == nil {
		t.Error("double cancel accepted")
	}
}

func TestCutoffExpiresAndEndNodesRecover(t *testing.T) {
	// A 3-node chain where the downstream link is starved of memory: the
	// middle node's upstream pairs hit their cutoff, EXPIREs flow to the
	// head, and its qubits are freed for reuse.
	cfg := defaultChainConfig(3)
	cfg.cutoff = 50 * sim.Millisecond
	cfg.seed = 7
	c := buildChain(t, cfg)
	hc := newCollector(c, c.head())
	// Occupy the tail's qubits so the downstream link cannot generate:
	// allocate both qubits of the n1-n2 link at n2 out from under the QNP.
	tailDev := c.tail().Device()
	tailDev.AllocComm(linklayer.LinkName("n1", "n2"))
	tailDev.AllocComm(linklayer.LinkName("n1", "n2"))

	if err := c.head().Submit(Request{ID: "r", Circuit: "vc", Type: Keep, NumPairs: 3}); err != nil {
		t.Fatal(err)
	}
	c.sim.RunFor(3 * sim.Second)
	if len(hc.pairs) != 0 {
		t.Fatalf("impossible deliveries: %d", len(hc.pairs))
	}
	mid := c.nodes[1].Stats()
	if mid.Discards == 0 {
		t.Error("middle node never discarded at cutoff")
	}
	if mid.ExpiresSent == 0 {
		t.Error("no EXPIRE messages sent")
	}
	// The head keeps recycling qubits via EXPIREs: the head link must keep
	// generating far beyond its 2-qubit memory (≈1 round per cutoff window
	// per slot over 3 s).
	gen := c.fabric.Between("n0", "n1").Stats().PairsDelivered
	if gen < 10 {
		t.Errorf("head link generated only %d pairs — memory wedged", gen)
	}
}

func TestFidelityTestRounds(t *testing.T) {
	cfg := defaultChainConfig(3)
	cfg.perfectRO = true
	c := buildChain(t, cfg)
	hc := newCollector(c, c.head())
	tc := newCollector(c, c.tail())
	_ = tc // tail consumption only
	if err := c.head().Submit(Request{ID: "r", Circuit: "vc", Type: Keep, NumPairs: 10, TestEvery: 2}); err != nil {
		t.Fatal(err)
	}
	c.sim.RunFor(60 * sim.Second)
	if len(hc.pairs) != 10 {
		t.Fatalf("real deliveries = %d, want 10 (tests must not count)", len(hc.pairs))
	}
	est, samples, ok := c.head().TestEstimateFor("vc")
	if !ok || samples == 0 {
		t.Fatal("no test estimate accumulated")
	}
	// The true fidelity of delivered pairs is ≈0.87–0.95 here; with few
	// samples the estimate is coarse but must be physically sensible.
	if est < 0.6 || est > 1.01 {
		t.Errorf("test-round fidelity estimate %v with %d samples", est, samples)
	}
}

func TestStatsAndAccessors(t *testing.T) {
	c := buildChain(t, defaultChainConfig(3))
	if _, ok := c.head().Circuit("vc"); !ok {
		t.Error("Circuit lookup failed")
	}
	if _, ok := c.head().Circuit("nope"); ok {
		t.Error("bogus circuit found")
	}
	if c.head().ID() != "n0" {
		t.Error("ID wrong")
	}
	if Keep.String() != "KEEP" || Early.String() != "EARLY" || Measure.String() != "MEASURE" {
		t.Error("RequestType strings wrong")
	}
	if RoleHead.String() != "head" || RoleTail.String() != "tail" || RoleIntermediate.String() != "intermediate" {
		t.Error("Role strings wrong")
	}
}

func TestMinEER(t *testing.T) {
	if got := (Request{Type: Keep, NumPairs: 10, Window: 2 * sim.Second}).MinEER(); got != 5 {
		t.Errorf("create-and-keep MinEER = %v", got)
	}
	if got := (Request{Type: Measure, Rate: 7}).MinEER(); got != 7 {
		t.Errorf("rate MinEER = %v", got)
	}
	if got := (Request{Type: Measure, NumPairs: 10, Deadline: 5 * sim.Second}).MinEER(); got != 2 {
		t.Errorf("deadline MinEER = %v", got)
	}
	if got := (Request{Type: Measure, NumPairs: 10}).MinEER(); got != 0 {
		t.Errorf("no-deadline MinEER = %v", got)
	}
}
