// Package core implements the Quantum Network Protocol (QNP) — the paper's
// primary contribution: a connection-oriented quantum data plane protocol
// that turns link-level entangled pairs into end-to-end pairs via
// entanglement swapping, with lazy entanglement tracking, cutoff timers for
// decoherence management, aggregation of requests onto virtual circuits, and
// policing/shaping of incoming requests.
//
// The protocol rules follow Appendix C of the paper: head-end, tail-end and
// intermediate LINK / TRACK / EXPIRE rules (Algorithms 1–9), the FORWARD /
// COMPLETE / TRACK / EXPIRE message set, swap records, discard records,
// epochs and the symmetric demultiplexer with cross-checks.
package core

import (
	"qnp/internal/linklayer"
	"qnp/internal/netsim"
	"qnp/internal/quantum"
	"qnp/internal/sim"
)

// CircuitID identifies a virtual circuit. The QNP treats it as an opaque
// handle owned by the signalling protocol (Appendix C.1).
type CircuitID string

// RequestID identifies a request between a pair of end-point addresses
// (Appendix C.1). Assigned by the application.
type RequestID string

// RequestType says when a pair's qubit is consumed (Appendix C.2 FORWARD:
// KEEP / EARLY / MEASURE).
type RequestType int

// Request types.
const (
	// Keep delivers the qubit once creation is confirmed by tracking.
	Keep RequestType = iota
	// Early delivers the qubit as soon as it is available at the end-node;
	// the application takes over handling of expiry notices and waits for
	// tracking info to post-process.
	Early
	// Measure has the QNP measure the qubit immediately; the classical
	// result is withheld until tracking confirms the pair, so only outcomes
	// from successful pairs are delivered.
	Measure
)

func (t RequestType) String() string {
	switch t {
	case Keep:
		return "KEEP"
	case Early:
		return "EARLY"
	case Measure:
		return "MEASURE"
	}
	return "RequestType(?)"
}

// Request is what an application submits to the head-end node (§3.2 class
// of service). Exactly one service shape applies:
//
//   - measure directly: NumPairs with Deadline, or Rate pairs/second;
//   - create and keep: NumPairs with Window (Δt) between first and last.
type Request struct {
	ID      RequestID
	Circuit CircuitID
	Type    RequestType
	// MeasureBasis applies to Measure requests.
	MeasureBasis quantum.Basis
	// NumPairs is the number of pairs wanted; 0 means an open-ended
	// rate-based request (terminated with Cancel).
	NumPairs int
	// Deadline is T relative to submission; 0 means none.
	Deadline sim.Duration
	// Window is Δt for create-and-keep (max spacing first→last pair).
	Window sim.Duration
	// Rate is R for rate-based measure-directly requests (pairs/second).
	Rate float64
	// FinalState, if set, asks for delivery in a specific Bell state; the
	// head-end applies the Pauli correction (unavailable for Early).
	FinalState *quantum.BellIndex
	// TestEvery makes every k-th pair a fidelity test round (§3.4 quality
	// of service: estimating delivered fidelity by measuring a sample);
	// 0 disables testing.
	TestEvery int
}

// MinEER is the request's minimum end-to-end rate in pairs/second, used for
// policing and shaping (§4.1): measure directly → N/T, R, or 0 with no
// deadline; create and keep → N/Δt.
func (r Request) MinEER() float64 {
	if r.Type == Keep && r.Window > 0 && r.NumPairs > 0 {
		return float64(r.NumPairs) / r.Window.Seconds()
	}
	if r.Rate > 0 {
		return r.Rate
	}
	if r.Deadline > 0 && r.NumPairs > 0 {
		return float64(r.NumPairs) / r.Deadline.Seconds()
	}
	return 0
}

// RoutingEntry is the per-circuit data plane state installed at every node
// by the signalling protocol (§4.1 "Routing table").
type RoutingEntry struct {
	Circuit CircuitID
	// Upstream/Downstream are the neighbouring nodes on the circuit; empty
	// at the head-end/tail-end respectively.
	Upstream   netsim.NodeID
	Downstream netsim.NodeID
	// HeadEnd and TailEnd name the circuit's end-nodes.
	HeadEnd, TailEnd netsim.NodeID
	// UpLabel/DownLabel are the link-labels on the adjacent links.
	UpLabel, DownLabel linklayer.Label
	// DownMinFidelity is the minimum link-pair fidelity to request on the
	// downstream link (chosen by routing to meet the end-to-end target).
	DownMinFidelity float64
	// DownMaxLPR is the maximum link-pair rate reserved on the downstream
	// link (pairs/s).
	DownMaxLPR float64
	// UpMinFidelity/UpMaxLPR mirror the upstream neighbour's downstream
	// settings so this node can register its side of the upstream link's
	// request with matching parameters.
	UpMinFidelity float64
	UpMaxLPR      float64
	// MaxEER is the circuit's allocated end-to-end rate (pairs/s).
	MaxEER float64
	// Cutoff is the qubit discard deadline at intermediate nodes; 0 disables
	// the cutoff mechanism (the oracle baseline runs without it).
	Cutoff sim.Duration
	// EndToEndFidelity records the circuit's fidelity target (informational;
	// used by test rounds and the oracle baseline).
	EndToEndFidelity float64
}

// Role is a node's role on a circuit.
type Role int

// Circuit roles.
const (
	RoleHead Role = iota
	RoleTail
	RoleIntermediate
)

func (r Role) String() string {
	switch r {
	case RoleHead:
		return "head"
	case RoleTail:
		return "tail"
	}
	return "intermediate"
}

// Role derives the node's role from the entry.
func (e RoutingEntry) Role() Role {
	switch {
	case e.Upstream == "":
		return RoleHead
	case e.Downstream == "":
		return RoleTail
	}
	return RoleIntermediate
}

// maxLPRSentinel in ForwardMsg.Rate means "request the maximum LPR" (the
// default unless only rate-based requests are active, §4.1 "Continuous link
// generation").
const maxLPRSentinel = -1

// ForwardMsg propagates a request from the head-end to the tail-end
// (Appendix C.2). It initiates/updates link layer requests at each node and
// gives the tail-end its book-keeping information.
type ForwardMsg struct {
	Circuit      CircuitID
	Request      RequestID
	Type         RequestType
	MeasureBasis quantum.Basis
	NumPairs     int
	FinalState   *quantum.BellIndex
	TestEvery    int
	// Rate is the end-to-end rate the sum of all active requests requires;
	// maxLPRSentinel means "maximum LPR".
	Rate float64
}

// CompleteMsg is the reverse of FORWARD: it updates/terminates link layer
// requests and notifies the tail-end of a request's completion.
type CompleteMsg struct {
	Circuit CircuitID
	Request RequestID
	Rate    float64
}

// TrackMsg is the key quantum data plane message: it follows the chain of
// link-pairs and entanglement swaps along the circuit, collecting swap
// records, so the end-nodes can identify the delivered pair and its Bell
// state (§4.1 "Lazy entanglement tracking", Appendix C.2).
type TrackMsg struct {
	Circuit CircuitID
	// Request is the origin end-node's demultiplexing assignment; the
	// receiving end cross-checks it against its own.
	Request RequestID
	// Origin is the correlator of the link-pair that begins the chain (at
	// the message's origin end-node); EXPIRE uses it to address the broken
	// chain's end qubit.
	Origin linklayer.Correlator
	// LinkCorr identifies the chain's current link-pair; every swap node
	// rewrites it to the next link's correlator.
	LinkCorr linklayer.Correlator
	// Outcome is the estimated Bell state of the chain so far, folded with
	// each swap record's two-bit outcome.
	Outcome quantum.BellIndex
	// Epoch is set by the head-end: the epoch to activate after this pair
	// is delivered (0 on tail-initiated TRACKs).
	Epoch uint64
	// FromHead gives the travel direction: head-initiated TRACKs travel
	// downstream, tail-initiated upstream.
	FromHead bool
	// Test marks a fidelity test round; the pair is consumed by measurement
	// in TestBasis at both ends instead of being delivered.
	Test      bool
	TestBasis quantum.Basis
}

// ExpireMsg notifies an end-node that the chain its TRACK followed was
// broken by a qubit discarded at a cutoff (Appendix C.2). End-nodes do not
// run cutoff timers — they discard only on EXPIRE, which closes the paper's
// half-delivered-pair window.
type ExpireMsg struct {
	Circuit CircuitID
	Origin  linklayer.Correlator
	// ToHead gives the relay direction toward the origin end-node.
	ToHead bool
}

// TestResultMsg carries a fidelity-test measurement outcome from the tail
// back to the head (relayed hop-by-hop along the circuit).
type TestResultMsg struct {
	Circuit CircuitID
	Origin  linklayer.Correlator
	Basis   quantum.Basis
	Bit     int
	ToHead  bool
}
