package device

import (
	"fmt"
	"math"
	"math/rand"

	"qnp/internal/hardware"
	"qnp/internal/linalg"
	"qnp/internal/quantum"
	"qnp/internal/sim"
	"qnp/internal/werner"
)

// Physics selects the pair-state engine a device (and the pairs it creates)
// runs on.
type Physics int

// The two physics engines.
const (
	// PhysicsExact tracks every pair as a 4×4 density matrix through the
	// exact channel models in internal/quantum. The default.
	PhysicsExact Physics = iota
	// PhysicsWerner tracks a single Werner parameter per pair using the
	// closed forms in internal/werner — O(1) per operation instead of
	// O(d²) matrix algebra, at the cost of re-twirling the state to Werner
	// form after each step. RNG draw order matches the exact engine, so
	// the event timeline is identical under both settings.
	PhysicsWerner
)

func (p Physics) String() string {
	if p == PhysicsWerner {
		return "werner"
	}
	return "exact"
}

// Device is one node's quantum hardware: its qubit memory (managed QMM-style
// with alloc/free), its serial operation timeline (the quantum task
// scheduler of Fig. 4 — current platforms execute one local quantum
// operation at a time), and the hardware parameter set.
type Device struct {
	id      string
	params  hardware.Params
	physics Physics
	sim     *sim.Simulation
	rng     *rand.Rand
	qubits  []*Qubit
	// busyUntil is the quantum task scheduler's horizon: local operations
	// submitted while another runs queue behind it.
	busyUntil sim.Time
	onFree    []func()
	// notifying guards against re-entrant free-notification storms.
	notifying bool
	// ws pools the small matrices the device's quantum operations burn
	// through. One workspace per device is safe: all devices of a network
	// live on one simulation goroutine, and buffers may migrate freely
	// between the pools of devices in the same simulation.
	ws *linalg.Workspace
}

// New creates a device for node id with the given hardware parameters,
// running the exact density-matrix engine.
func New(s *sim.Simulation, id string, params hardware.Params) *Device {
	return NewWithPhysics(s, id, params, PhysicsExact)
}

// NewWithPhysics creates a device running the given pair-state engine.
func NewWithPhysics(s *sim.Simulation, id string, params hardware.Params, ph Physics) *Device {
	return &Device{
		id:      id,
		params:  params,
		physics: ph,
		sim:     s,
		rng:     s.Rand(),
		ws:      linalg.NewWorkspace(),
	}
}

// Physics returns the pair-state engine this device runs on.
func (d *Device) Physics() Physics { return d.physics }

// Workspace exposes the device's matrix pool so co-located layers (the link
// layer materialising fresh pair states) can share it.
func (d *Device) Workspace() *linalg.Workspace { return d.ws }

// ID returns the node ID.
func (d *Device) ID() string { return d.id }

// Params returns the hardware parameter set.
func (d *Device) Params() hardware.Params { return d.params }

// AddCommQubits adds n communication qubits dedicated to the named link
// (empty string = shared across links, as on the near-term single-electron
// platform).
func (d *Device) AddCommQubits(link string, n int) {
	for i := 0; i < n; i++ {
		d.qubits = append(d.qubits, &Qubit{
			dev:       d,
			id:        len(d.qubits),
			kind:      Communication,
			link:      link,
			lifetimes: Lifetimes(d.params.Electron),
			free:      true,
		})
	}
}

// AddStorageQubits adds n storage (carbon) qubits.
func (d *Device) AddStorageQubits(n int) {
	for i := 0; i < n; i++ {
		d.qubits = append(d.qubits, &Qubit{
			dev:       d,
			id:        len(d.qubits),
			kind:      Storage,
			link:      "",
			lifetimes: Lifetimes(d.params.Carbon),
			free:      true,
		})
	}
}

// AllocComm allocates a free communication qubit usable on the given link:
// first a link-dedicated one, then a shared one.
func (d *Device) AllocComm(link string) (*Qubit, bool) {
	var shared *Qubit
	for _, q := range d.qubits {
		if !q.free || q.kind != Communication {
			continue
		}
		if q.link == link {
			q.free = false
			return q, true
		}
		if q.link == "" && shared == nil {
			shared = q
		}
	}
	if shared != nil {
		shared.free = false
		return shared, true
	}
	return nil, false
}

// AllocStorage allocates a free storage qubit.
func (d *Device) AllocStorage() (*Qubit, bool) {
	for _, q := range d.qubits {
		if q.free && q.kind == Storage {
			q.free = false
			return q, true
		}
	}
	return nil, false
}

// FreeCommCount reports the number of free communication qubits usable on
// the given link.
func (d *Device) FreeCommCount(link string) int {
	n := 0
	for _, q := range d.qubits {
		if q.free && q.kind == Communication && (q.link == link || q.link == "") {
			n++
		}
	}
	return n
}

// free returns a qubit to the pool and fires free-notifications. It resets
// the qubit's lifetimes to its native kind (a carbon that held a moved state
// stays carbon; an electron stays electron).
func (d *Device) free(q *Qubit) {
	if q.free {
		return
	}
	q.free = true
	q.pair = nil
	if q.kind == Communication {
		q.lifetimes = Lifetimes(d.params.Electron)
	} else {
		q.lifetimes = Lifetimes(d.params.Carbon)
	}
	d.notifyFree()
}

func (d *Device) notifyFree() {
	if d.notifying {
		return
	}
	d.notifying = true
	for _, fn := range d.onFree {
		fn()
	}
	d.notifying = false
}

// Free releases an allocated qubit that holds no pair (or discards the
// pair's local half if it does).
func (d *Device) Free(q *Qubit) {
	if q.pair != nil {
		d.Discard(q.pair)
		return
	}
	d.free(q)
}

// OnFree registers a callback invoked whenever a qubit becomes free — the
// link layer uses it to resume blocked generation.
func (d *Device) OnFree(fn func()) { d.onFree = append(d.onFree, fn) }

// Discard releases this node's half of a pair (cutoff expiry or protocol
// discard). The pair is marked broken; the remote half is untouched — the
// remote node discards on its own timer or on an EXPIRE message, exactly the
// window the paper's end-node rule exists to close.
func (d *Device) Discard(p *Pair) {
	s := p.LocalSide(d.id)
	if s < 0 {
		return
	}
	p.broken = true
	p.releaseHalf(s)
}

// SubmitOp enqueues a local quantum operation of the given duration on the
// task scheduler; fn runs at its completion time. The returned time is when
// the operation completes.
func (d *Device) SubmitOp(dur sim.Duration, fn func()) sim.Time {
	start := d.sim.Now()
	if d.busyUntil > start {
		start = d.busyUntil
	}
	end := start.Add(dur)
	d.busyUntil = end
	d.sim.ScheduleAt(end, fn)
	return end
}

// BusyUntil reports the task scheduler's current horizon.
func (d *Device) BusyUntil() sim.Time { return d.busyUntil }

// Swap schedules an entanglement swap between the pairs whose local halves
// live on qubits q1 and q2. The pairs are resolved from the qubits at
// *completion* time: a concurrent swap at a neighbouring node may merge a
// shared pair mid-flight, rewiring the qubit to the merged pair — the
// physical qubit, not the pair object, is the stable identity. At completion
// the two local qubits are freed, the remote qubits are rewired into the
// merged pair, and done receives the merged pair plus the announced two-bit
// outcome.
func (d *Device) Swap(q1, q2 *Qubit, done func(merged *Pair, outcome quantum.BellIndex)) {
	if q1.pair == nil || q2.pair == nil {
		panic(fmt.Sprintf("device %s: swap on qubits without pairs", d.id))
	}
	d.SubmitOp(d.params.SwapDuration(), func() {
		now := d.sim.Now()
		p1, p2 := q1.pair, q2.pair
		s1, s2 := p1.LocalSide(d.id), p2.LocalSide(d.id)
		if s1 < 0 || s2 < 0 {
			panic(fmt.Sprintf("device %s: swap halves vanished mid-flight", d.id))
		}
		p1.AdvanceTo(now)
		p2.AdvanceTo(now)
		if p1.scalar != p2.scalar {
			panic(fmt.Sprintf("device %s: swap across physics engines", d.id))
		}
		var (
			mergedRho *linalg.Matrix
			mergedW   float64
			outcome   quantum.BellIndex
		)
		if p1.scalar {
			// Werner states are symmetric under qubit exchange, so no
			// orientation is needed; the closed form consumes the same four
			// RNG draws as the exact Bell measurement below.
			sres := werner.Swap(p1.w, p2.w, d.params.SwapConfig(), d.rng)
			mergedW, outcome = sres.W, sres.Outcome
		} else {
			// Orient so the swap circuit sees (remote1, local1) ⊗ (local2,
			// remote2). Exchanging the qubits of a Bell-diagnosable state keeps
			// its Bell index (|Ψ−> only changes global phase).
			rho1 := p1.rho
			if s1 == 0 {
				rho1 = quantum.ApplyGate2W(d.ws, rho1, quantum.SWAP, 0, 2)
			}
			rho2 := p2.rho
			if s2 == 1 {
				rho2 = quantum.ApplyGate2W(d.ws, rho2, quantum.SWAP, 0, 2)
			}
			res := quantum.SwapW(d.ws, rho1, rho2, d.params.SwapConfig(), d.rng)
			if rho1 != p1.rho {
				d.ws.Put(rho1)
			}
			if rho2 != p2.rho {
				d.ws.Put(rho2)
			}
			// The Bell measurement consumed both input pairs: recycle their
			// states and nil the fields so a stale read fails fast instead of
			// observing a recycled buffer.
			d.ws.Put(p1.rho)
			p1.rho = nil
			d.ws.Put(p2.rho)
			p2.rho = nil
			mergedRho, outcome = res.Rho, res.Outcome
		}

		remote1 := p1.halves[1-s1]
		remote2 := p2.halves[1-s2]
		created := p1.createdAt
		if p2.createdAt < created {
			created = p2.createdAt
		}
		merged := &Pair{
			rho:        mergedRho,
			scalar:     p1.scalar,
			w:          mergedW,
			ws:         d.ws,
			trueIdx:    quantum.Combine(p1.trueIdx, p2.trueIdx, outcome),
			createdAt:  created,
			lastUpdate: now,
		}
		merged.consumed[0] = p1.consumed[1-s1]
		merged.consumed[1] = p2.consumed[1-s2]
		merged.halves[0] = remote1
		merged.halves[1] = remote2
		if remote1 != nil {
			remote1.pair, remote1.side = merged, 0
		}
		if remote2 != nil {
			remote2.pair, remote2.side = merged, 1
		}
		// Free this node's qubits: the Bell measurement consumed them.
		p1.releaseHalf(s1)
		p2.releaseHalf(s2)
		done(merged, outcome)
	})
}

// MoveToStorage transfers the pair half held by communication qubit q into a
// storage qubit (the near-term platform's mandatory step before the electron
// can generate on another link). The transfer costs MoveDuration and applies
// depolarising noise from the two-qubit gate and carbon initialisation. done
// receives the storage qubit now holding the half, or ok=false if no storage
// qubit is free. The pair is resolved from the qubit at completion,
// surviving concurrent remote merges.
func (d *Device) MoveToStorage(q *Qubit, done func(newQ *Qubit, ok bool)) {
	if q.pair == nil {
		panic(fmt.Sprintf("device %s: move on qubit without pair", d.id))
	}
	storage, ok := d.AllocStorage()
	if !ok {
		done(nil, false)
		return
	}
	d.SubmitOp(d.params.MoveDuration(), func() {
		now := d.sim.Now()
		p := q.pair
		s := p.LocalSide(d.id)
		if s < 0 {
			d.free(storage)
			done(nil, false)
			return
		}
		p.AdvanceTo(now)
		pNoise := 1 - d.params.Gates.TwoQubitFidelity*d.params.Gates.CarbonInitFidelity
		p.applyDepol1(s, pNoise)
		old := p.halves[s]
		storage.pair, storage.side = p, s
		p.halves[s] = storage
		old.pair = nil
		d.free(old)
		done(storage, true)
	})
}

// MeasureHalf measures the pair half held by qubit q in the given basis
// after the readout duration, frees the qubit, and hands the reported bit to
// done. The remote half retains the (collapsed) conditional state — this is
// what makes the paper's "early delivery" MEASURE mode physically sound: the
// effect propagates through later swaps. The pair is resolved from the qubit
// at completion time.
func (d *Device) MeasureHalf(q *Qubit, basis quantum.Basis, done func(bit int)) {
	if q.pair == nil {
		panic(fmt.Sprintf("device %s: measure on qubit without pair", d.id))
	}
	d.SubmitOp(d.params.Gates.ReadoutTime, func() {
		now := d.sim.Now()
		p := q.pair
		s := p.LocalSide(d.id)
		if s < 0 {
			panic(fmt.Sprintf("device %s: measured half vanished mid-flight", d.id))
		}
		p.AdvanceTo(now)
		var bit int
		if p.scalar {
			// The Werner marginal is I/2 in every basis: the scalar engine
			// draws the same truth coin and readout flip as the exact
			// measurement. The surviving half keeps the maximally mixed
			// conditional state (w = 0) — the Werner twirl of the collapsed
			// remote qubit.
			bit = werner.Measure(d.params.Gates.Readout, d.rng)
			p.w = 0
		} else {
			var post *linalg.Matrix
			bit, post = quantum.MeasureInBasisW(d.ws, p.rho, s, 2, basis, d.params.Gates.Readout, d.rng)
			d.ws.Put(p.rho)
			p.rho = post
		}
		p.consumed[s] = true
		p.releaseHalf(s)
		done(bit)
	})
}

// ApplyAttemptDephasing models the nuclear-spin dephasing of stored carbon
// qubits caused by k entanglement generation attempts on this node's
// electron (§5.3 / Kalb et al.). Each stored pair half takes a phase-flip
// channel with the k-attempt accumulated probability.
func (d *Device) ApplyAttemptDephasing(k int) {
	per := d.params.AttemptDephasingProb
	if per <= 0 || k <= 0 {
		return
	}
	// k compositions of a phase flip with probability per:
	// p_k = (1 − (1−2·per)^k)/2.
	pk := (1 - math.Pow(1-2*per, float64(k))) / 2
	for _, q := range d.qubits {
		if q.free || q.kind != Storage || q.pair == nil {
			continue
		}
		q.pair.AdvanceTo(d.sim.Now())
		q.pair.applyPhaseFlip(q.side, pk)
	}
}

// Qubits exposes the memory for inspection in tests.
func (d *Device) Qubits() []*Qubit { return d.qubits }
