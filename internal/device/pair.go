// Package device models a quantum network node's hardware resources the way
// the paper's Fig. 4 lays them out: a quantum memory of communication and
// storage qubits managed by a quantum memory management unit (QMM), and a
// quantum task scheduler that serialises local quantum operations
// (entanglement swaps, moves to storage, measurements) on the device.
//
// The package also owns Pair, the live representation of an entangled pair:
// an exact two-qubit density matrix shared between two nodes, with lazy
// decoherence — the state is advanced under each side's T1/T2 only when an
// operation touches it, so idle qubits cost nothing to simulate.
package device

import (
	"fmt"

	"qnp/internal/linalg"
	"qnp/internal/quantum"
	"qnp/internal/sim"
)

// Kind classifies qubits the way the paper does: communication qubits can
// participate in entanglement generation; storage qubits only hold state.
type Kind int

// Qubit kinds.
const (
	Communication Kind = iota
	Storage
)

func (k Kind) String() string {
	if k == Storage {
		return "storage"
	}
	return "communication"
}

// Lifetimes mirrors hardware.Lifetimes (seconds; zero = no decay). Duplicated
// here to keep the device package independent of parameter tables.
type Lifetimes struct {
	T1, T2 float64
}

// Qubit is one physical qubit in a node's memory.
type Qubit struct {
	dev  *Device
	id   int
	kind Kind
	// link dedicates a communication qubit to one physical link (the main
	// evaluation gives each link two dedicated qubits per node); empty means
	// usable for any link.
	link string
	// lifetimes are the decoherence parameters currently governing this
	// qubit; they change when a state moves between electron and carbon.
	lifetimes Lifetimes
	pair      *Pair
	side      int
	free      bool
}

// ID returns the qubit's index within its device.
func (q *Qubit) ID() int { return q.id }

// Kind returns the qubit's kind.
func (q *Qubit) Kind() Kind { return q.kind }

// Node returns the owning device's node ID.
func (q *Qubit) Node() string { return q.dev.id }

// Pair returns the pair whose half this qubit holds, or nil.
func (q *Qubit) Pair() *Pair { return q.pair }

// Free reports whether the qubit is unallocated.
func (q *Qubit) Free() bool { return q.free }

// Pair is a (possibly multi-hop) entangled pair: an exact 4×4 density matrix
// whose two qubits live at two different nodes. The left qubit is index 0 of
// the state, the right qubit index 1.
type Pair struct {
	rho *linalg.Matrix
	// ws recycles the pair's density matrices: every operation that replaces
	// rho returns the old buffer to this pool. It is the workspace of the
	// device that created the pair (all devices of one network share a
	// simulation goroutine, so any of their pools is safe to use).
	ws         *linalg.Workspace
	trueIdx    quantum.BellIndex
	halves     [2]*Qubit // a half becomes nil once measured or released
	createdAt  sim.Time
	lastUpdate sim.Time
	broken     bool
	// consumed marks halves that no longer carry live state (measured) so
	// decoherence stops being applied to them.
	consumed [2]bool
}

// NewPair wires a fresh pair between two allocated qubits. The qubits must
// belong to different devices and be allocated (not free).
func NewPair(now sim.Time, rho *linalg.Matrix, idx quantum.BellIndex, left, right *Qubit) *Pair {
	if left.dev == right.dev {
		panic("device: pair halves on the same node")
	}
	if left.free || right.free {
		panic("device: pair over free qubits")
	}
	p := &Pair{rho: rho, ws: left.dev.ws, trueIdx: idx, createdAt: now, lastUpdate: now}
	p.halves[0], p.halves[1] = left, right
	left.pair, left.side = p, 0
	right.pair, right.side = p, 1
	return p
}

// CreatedAt returns the generation time of the oldest constituent link-pair.
func (p *Pair) CreatedAt() sim.Time { return p.createdAt }

// TrueIdx is the ground-truth Bell index accumulated through swaps. The
// protocol must NOT read this (it reconstructs its own view from TRACK
// messages); it exists for verification and for the oracle baseline.
func (p *Pair) TrueIdx() quantum.BellIndex { return p.trueIdx }

// Broken reports whether a half was discarded, killing the pair.
func (p *Pair) Broken() bool { return p.broken }

// Half returns the qubit at side 0 (left) or 1 (right); nil once consumed.
func (p *Pair) Half(side int) *Qubit { return p.halves[side] }

// LocalSide returns which side of the pair lives at the given node, or -1.
func (p *Pair) LocalSide(node string) int {
	for s, q := range p.halves {
		if q != nil && q.dev.id == node {
			return s
		}
	}
	return -1
}

// RemoteNode returns the node holding the other half relative to node.
func (p *Pair) RemoteNode(node string) string {
	s := p.LocalSide(node)
	if s < 0 {
		return ""
	}
	if other := p.halves[1-s]; other != nil {
		return other.dev.id
	}
	return ""
}

// AdvanceTo applies lazy decoherence: each live half decays under its
// current qubit's T1/T2 for the elapsed time since the last update.
func (p *Pair) AdvanceTo(now sim.Time) {
	if now < p.lastUpdate {
		panic(fmt.Sprintf("device: pair advanced backwards: %v < %v", now, p.lastUpdate))
	}
	dt := now.Sub(p.lastUpdate).Seconds()
	if dt > 0 {
		for s, q := range p.halves {
			if q == nil || p.consumed[s] {
				continue
			}
			next := quantum.DecohereW(p.ws, p.rho, s, 2, dt, q.lifetimes.T1, q.lifetimes.T2)
			if next != p.rho {
				p.ws.Put(p.rho)
				p.rho = next
			}
		}
	}
	p.lastUpdate = now
}

// StateAt returns a copy of the pair state as it would be at time t, without
// mutating the pair. This is the simulation-only oracle used by the baseline
// protocol of §5.2 and by verification tests. Ownership of the returned
// matrix transfers to the caller (it never has to be returned to the pool).
func (p *Pair) StateAt(t sim.Time) *linalg.Matrix {
	return p.stateAtW(t)
}

// stateAtW computes the state at time t into a ws matrix the caller must
// Put back (or keep). It performs the same arithmetic as StateAt.
func (p *Pair) stateAtW(t sim.Time) *linalg.Matrix {
	rho := p.ws.GetRaw(p.rho.Rows, p.rho.Cols)
	copy(rho.Data, p.rho.Data)
	dt := t.Sub(p.lastUpdate).Seconds()
	if dt > 0 {
		for s, q := range p.halves {
			if q == nil || p.consumed[s] {
				continue
			}
			next := quantum.DecohereW(p.ws, rho, s, 2, dt, q.lifetimes.T1, q.lifetimes.T2)
			if next != rho {
				p.ws.Put(rho)
				rho = next
			}
		}
	}
	return rho
}

// FidelityAt returns the oracle fidelity with the true Bell index at time t.
func (p *Pair) FidelityAt(t sim.Time) float64 {
	return p.FidelityWith(t, p.trueIdx)
}

// FidelityWith returns the oracle fidelity against an arbitrary declared
// Bell index — what an application would actually see given the protocol's
// (possibly wrong) tracking information.
func (p *Pair) FidelityWith(t sim.Time, idx quantum.BellIndex) float64 {
	rho := p.stateAtW(t)
	f := quantum.Fidelity(rho, idx)
	p.ws.Put(rho)
	return f
}

// applyDepol1 applies single-qubit depolarising noise with probability prob
// to one side's qubit, in place. The channel comes pre-lifted from the
// global cache (prob is fixed per device).
func (p *Pair) applyDepol1(side int, prob float64) {
	next := quantum.ApplyDepolarizing1W(p.ws, p.rho, prob, side, 2)
	p.ws.Put(p.rho)
	p.rho = next
}

// applyPhaseFlip applies dephasing with probability prob to one side's
// qubit, in place.
func (p *Pair) applyPhaseFlip(side int, prob float64) {
	next := quantum.ApplyPhaseFlipW(p.ws, p.rho, prob, side, 2)
	p.ws.Put(p.rho)
	p.rho = next
}

// ApplyPauli applies a Pauli correction to one side (used by the head-end's
// final-state correction). The declared index transformation is the
// caller's business; the true index flips accordingly.
func (p *Pair) ApplyPauli(side int, x, z uint8) {
	if x == 1 {
		next := quantum.ApplyGate1W(p.ws, p.rho, quantum.X, side, 2)
		p.ws.Put(p.rho)
		p.rho = next
	}
	if z == 1 {
		next := quantum.ApplyGate1W(p.ws, p.rho, quantum.Z, side, 2)
		p.ws.Put(p.rho)
		p.rho = next
	}
	p.trueIdx ^= quantum.BellIndex(x) | quantum.BellIndex(z)<<1
}

// releaseHalf detaches the qubit at side and frees it.
func (p *Pair) releaseHalf(side int) {
	q := p.halves[side]
	if q == nil {
		return
	}
	p.halves[side] = nil
	q.dev.free(q)
}

// Rho exposes the current density matrix for inspection (tests, examples).
func (p *Pair) Rho() *linalg.Matrix { return p.rho }
