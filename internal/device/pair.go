// Package device models a quantum network node's hardware resources the way
// the paper's Fig. 4 lays them out: a quantum memory of communication and
// storage qubits managed by a quantum memory management unit (QMM), and a
// quantum task scheduler that serialises local quantum operations
// (entanglement swaps, moves to storage, measurements) on the device.
//
// The package also owns Pair, the live representation of an entangled pair
// shared between two nodes — an exact two-qubit density matrix, or a single
// Werner parameter under the scalar fast-path engine (Physics) — with lazy
// decoherence: the state is advanced under each side's T1/T2 only when an
// operation touches it, so idle qubits cost nothing to simulate.
package device

import (
	"fmt"

	"qnp/internal/linalg"
	"qnp/internal/quantum"
	"qnp/internal/sim"
	"qnp/internal/werner"
)

// Kind classifies qubits the way the paper does: communication qubits can
// participate in entanglement generation; storage qubits only hold state.
type Kind int

// Qubit kinds.
const (
	Communication Kind = iota
	Storage
)

func (k Kind) String() string {
	if k == Storage {
		return "storage"
	}
	return "communication"
}

// Lifetimes mirrors hardware.Lifetimes (seconds; zero = no decay). Duplicated
// here to keep the device package independent of parameter tables.
type Lifetimes struct {
	T1, T2 float64
}

// Qubit is one physical qubit in a node's memory.
type Qubit struct {
	dev  *Device
	id   int
	kind Kind
	// link dedicates a communication qubit to one physical link (the main
	// evaluation gives each link two dedicated qubits per node); empty means
	// usable for any link.
	link string
	// lifetimes are the decoherence parameters currently governing this
	// qubit; they change when a state moves between electron and carbon.
	lifetimes Lifetimes
	pair      *Pair
	side      int
	free      bool
}

// ID returns the qubit's index within its device.
func (q *Qubit) ID() int { return q.id }

// Kind returns the qubit's kind.
func (q *Qubit) Kind() Kind { return q.kind }

// Node returns the owning device's node ID.
func (q *Qubit) Node() string { return q.dev.id }

// Pair returns the pair whose half this qubit holds, or nil.
func (q *Qubit) Pair() *Pair { return q.pair }

// Free reports whether the qubit is unallocated.
func (q *Qubit) Free() bool { return q.free }

// Pair is a (possibly multi-hop) entangled pair whose two qubits live at two
// different nodes. The left qubit is index 0 of the state, the right qubit
// index 1. Its state lives in one of two representations, chosen by the
// owning device's Physics setting: an exact 4×4 density matrix (rho), or a
// single Werner parameter (w) under the scalar fast-path engine
// (internal/werner). Every operation below branches on the representation;
// both consume identical RNG streams, so the event timeline is engine-
// independent.
type Pair struct {
	rho *linalg.Matrix
	// ws recycles the pair's density matrices: every operation that replaces
	// rho returns the old buffer to this pool. It is the workspace of the
	// device that created the pair (all devices of one network share a
	// simulation goroutine, so any of their pools is safe to use).
	ws         *linalg.Workspace
	trueIdx    quantum.BellIndex
	halves     [2]*Qubit // a half becomes nil once measured or released
	createdAt  sim.Time
	lastUpdate sim.Time
	broken     bool
	// consumed marks halves that no longer carry live state (measured) so
	// decoherence stops being applied to them.
	consumed [2]bool
	// scalar selects the Werner fast-path representation: the state is
	// w·|B_trueIdx><B_trueIdx| + (1−w)·I/4 and rho stays nil.
	scalar bool
	w      float64
}

// NewPair wires a fresh pair between two allocated qubits. The qubits must
// belong to different devices and be allocated (not free).
func NewPair(now sim.Time, rho *linalg.Matrix, idx quantum.BellIndex, left, right *Qubit) *Pair {
	p := &Pair{rho: rho, ws: left.dev.ws}
	wirePair(p, now, idx, left, right)
	return p
}

// NewScalarPair wires a fresh Werner fast-path pair with parameter w
// relative to Bell index idx.
func NewScalarPair(now sim.Time, w float64, idx quantum.BellIndex, left, right *Qubit) *Pair {
	p := &Pair{scalar: true, w: w, ws: left.dev.ws}
	wirePair(p, now, idx, left, right)
	return p
}

func wirePair(p *Pair, now sim.Time, idx quantum.BellIndex, left, right *Qubit) {
	if left.dev == right.dev {
		panic("device: pair halves on the same node")
	}
	if left.free || right.free {
		panic("device: pair over free qubits")
	}
	p.trueIdx, p.createdAt, p.lastUpdate = idx, now, now
	p.halves[0], p.halves[1] = left, right
	left.pair, left.side = p, 0
	right.pair, right.side = p, 1
}

// CreatedAt returns the generation time of the oldest constituent link-pair.
func (p *Pair) CreatedAt() sim.Time { return p.createdAt }

// TrueIdx is the ground-truth Bell index accumulated through swaps. The
// protocol must NOT read this (it reconstructs its own view from TRACK
// messages); it exists for verification and for the oracle baseline.
func (p *Pair) TrueIdx() quantum.BellIndex { return p.trueIdx }

// Broken reports whether a half was discarded, killing the pair.
func (p *Pair) Broken() bool { return p.broken }

// Half returns the qubit at side 0 (left) or 1 (right); nil once consumed.
func (p *Pair) Half(side int) *Qubit { return p.halves[side] }

// LocalSide returns which side of the pair lives at the given node, or -1.
func (p *Pair) LocalSide(node string) int {
	for s, q := range p.halves {
		if q != nil && q.dev.id == node {
			return s
		}
	}
	return -1
}

// RemoteNode returns the node holding the other half relative to node.
func (p *Pair) RemoteNode(node string) string {
	s := p.LocalSide(node)
	if s < 0 {
		return ""
	}
	if other := p.halves[1-s]; other != nil {
		return other.dev.id
	}
	return ""
}

// AdvanceTo applies lazy decoherence: each live half decays under its
// current qubit's T1/T2 for the elapsed time since the last update.
func (p *Pair) AdvanceTo(now sim.Time) {
	if now < p.lastUpdate {
		panic(fmt.Sprintf("device: pair advanced backwards: %v < %v", now, p.lastUpdate))
	}
	dt := now.Sub(p.lastUpdate).Seconds()
	if dt > 0 {
		if p.scalar {
			p.w = p.decoheredW(dt)
		} else {
			for s, q := range p.halves {
				if q == nil || p.consumed[s] {
					continue
				}
				next := quantum.DecohereW(p.ws, p.rho, s, 2, dt, q.lifetimes.T1, q.lifetimes.T2)
				if next != p.rho {
					p.ws.Put(p.rho)
					p.rho = next
				}
			}
		}
	}
	p.lastUpdate = now
}

// decoheredW returns the Werner parameter after dt seconds of idling: one
// joint two-sided closed-form step (exactly the composition of the per-side
// exact channels), with dead sides contributing no decay.
func (p *Pair) decoheredW(dt float64) float64 {
	var g, pf [2]float64
	for s, q := range p.halves {
		if q == nil || p.consumed[s] {
			continue
		}
		g[s], pf[s] = quantum.DecoherenceProbabilities(dt, q.lifetimes.T1, q.lifetimes.T2)
	}
	return werner.Decohere(p.w, p.trueIdx.XBit() == 0, g[0], pf[0], g[1], pf[1])
}

// StateAt returns a copy of the pair state as it would be at time t, without
// mutating the pair. This is the simulation-only oracle used by the baseline
// protocol of §5.2 and by verification tests. Ownership of the returned
// matrix transfers to the caller (it never has to be returned to the pool).
func (p *Pair) StateAt(t sim.Time) *linalg.Matrix {
	return p.stateAtW(t)
}

// stateAtW computes the state at time t into a ws matrix the caller must
// Put back (or keep). It performs the same arithmetic as StateAt. A scalar
// pair materialises its Werner state w·|B><B| + (1−w)·I/4.
func (p *Pair) stateAtW(t sim.Time) *linalg.Matrix {
	if p.scalar {
		w := p.w
		if dt := t.Sub(p.lastUpdate).Seconds(); dt > 0 {
			w = p.decoheredW(dt)
		}
		rho := p.ws.GetRaw(4, 4)
		proj := quantum.BellProjectorCached(p.trueIdx)
		mixed := complex((1-w)/4, 0)
		for i, pv := range proj.Data {
			rho.Data[i] = complex(w, 0) * pv
			if i%5 == 0 { // diagonal of the 4×4 identity
				rho.Data[i] += mixed
			}
		}
		return rho
	}
	rho := p.ws.GetRaw(p.rho.Rows, p.rho.Cols)
	copy(rho.Data, p.rho.Data)
	dt := t.Sub(p.lastUpdate).Seconds()
	if dt > 0 {
		for s, q := range p.halves {
			if q == nil || p.consumed[s] {
				continue
			}
			next := quantum.DecohereW(p.ws, rho, s, 2, dt, q.lifetimes.T1, q.lifetimes.T2)
			if next != rho {
				p.ws.Put(rho)
				rho = next
			}
		}
	}
	return rho
}

// FidelityAt returns the oracle fidelity with the true Bell index at time t.
func (p *Pair) FidelityAt(t sim.Time) float64 {
	return p.FidelityWith(t, p.trueIdx)
}

// FidelityWith returns the oracle fidelity against an arbitrary declared
// Bell index — what an application would actually see given the protocol's
// (possibly wrong) tracking information.
func (p *Pair) FidelityWith(t sim.Time, idx quantum.BellIndex) float64 {
	if p.scalar {
		w := p.w
		if dt := t.Sub(p.lastUpdate).Seconds(); dt > 0 {
			w = p.decoheredW(dt)
		}
		if idx == p.trueIdx {
			return werner.Fidelity(w)
		}
		return werner.CrossFidelity(w)
	}
	rho := p.stateAtW(t)
	f := quantum.Fidelity(rho, idx)
	p.ws.Put(rho)
	return f
}

// applyDepol1 applies single-qubit depolarising noise with probability prob
// to one side's qubit, in place. The channel comes pre-lifted from the
// global cache (prob is fixed per device).
func (p *Pair) applyDepol1(side int, prob float64) {
	if p.scalar {
		p.w = werner.Depolarize1(p.w, prob)
		return
	}
	next := quantum.ApplyDepolarizing1W(p.ws, p.rho, prob, side, 2)
	p.ws.Put(p.rho)
	p.rho = next
}

// applyPhaseFlip applies dephasing with probability prob to one side's
// qubit, in place.
func (p *Pair) applyPhaseFlip(side int, prob float64) {
	if p.scalar {
		p.w = werner.PhaseFlip(p.w, prob)
		return
	}
	next := quantum.ApplyPhaseFlipW(p.ws, p.rho, prob, side, 2)
	p.ws.Put(p.rho)
	p.rho = next
}

// ApplyPauli applies a Pauli correction to one side (used by the head-end's
// final-state correction). The declared index transformation is the
// caller's business; the true index flips accordingly. On a scalar pair the
// correction is a pure Bell-frame relabelling: w is untouched.
func (p *Pair) ApplyPauli(side int, x, z uint8) {
	if !p.scalar {
		if x == 1 {
			next := quantum.ApplyGate1W(p.ws, p.rho, quantum.X, side, 2)
			p.ws.Put(p.rho)
			p.rho = next
		}
		if z == 1 {
			next := quantum.ApplyGate1W(p.ws, p.rho, quantum.Z, side, 2)
			p.ws.Put(p.rho)
			p.rho = next
		}
	}
	p.trueIdx ^= quantum.BellIndex(x) | quantum.BellIndex(z)<<1
}

// releaseHalf detaches the qubit at side and frees it.
func (p *Pair) releaseHalf(side int) {
	q := p.halves[side]
	if q == nil {
		return
	}
	p.halves[side] = nil
	q.dev.free(q)
}

// Rho exposes the current density matrix for inspection (tests, examples).
// Scalar pairs hold no matrix and return nil; use StateAt to materialise
// their Werner state.
func (p *Pair) Rho() *linalg.Matrix { return p.rho }

// Scalar reports whether the pair uses the Werner fast-path representation.
func (p *Pair) Scalar() bool { return p.scalar }

// W returns the scalar pair's Werner parameter as of its last update.
func (p *Pair) W() float64 { return p.w }
