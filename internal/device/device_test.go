package device

import (
	"math"
	"testing"

	"qnp/internal/hardware"
	"qnp/internal/quantum"
	"qnp/internal/sim"
)

func twoDevices(t *testing.T) (*sim.Simulation, *Device, *Device) {
	t.Helper()
	s := sim.New(1)
	a := New(s, "a", hardware.Simulation())
	b := New(s, "b", hardware.Simulation())
	a.AddCommQubits("ab", 2)
	b.AddCommQubits("ab", 2)
	return s, a, b
}

func makePair(t *testing.T, s *sim.Simulation, a, b *Device, idx quantum.BellIndex) *Pair {
	t.Helper()
	qa, ok1 := a.AllocComm("ab")
	qb, ok2 := b.AllocComm("ab")
	if !ok1 || !ok2 {
		t.Fatal("allocation failed")
	}
	return NewPair(s.Now(), quantum.BellState(idx), idx, qa, qb)
}

func TestAllocFree(t *testing.T) {
	_, a, _ := twoDevices(t)
	if a.FreeCommCount("ab") != 2 {
		t.Fatalf("free count = %d", a.FreeCommCount("ab"))
	}
	q1, ok := a.AllocComm("ab")
	if !ok || q1.Free() {
		t.Fatal("alloc failed")
	}
	q2, ok := a.AllocComm("ab")
	if !ok {
		t.Fatal("second alloc failed")
	}
	if _, ok := a.AllocComm("ab"); ok {
		t.Fatal("third alloc should fail")
	}
	freed := 0
	a.OnFree(func() { freed++ })
	a.Free(q1)
	a.Free(q2)
	if freed != 2 {
		t.Errorf("free notifications = %d", freed)
	}
	if a.FreeCommCount("ab") != 2 {
		t.Errorf("free count after Free = %d", a.FreeCommCount("ab"))
	}
}

func TestAllocLinkDedication(t *testing.T) {
	s := sim.New(1)
	d := New(s, "n", hardware.Simulation())
	d.AddCommQubits("l1", 1)
	d.AddCommQubits("", 1) // shared
	q, ok := d.AllocComm("l1")
	if !ok || q.link != "l1" {
		t.Fatal("dedicated qubit not preferred")
	}
	q2, ok := d.AllocComm("l2")
	if !ok || q2.link != "" {
		t.Fatal("shared qubit not used for other link")
	}
	if _, ok := d.AllocComm("l1"); ok {
		t.Fatal("no qubits left for l1")
	}
}

func TestStorageAlloc(t *testing.T) {
	s := sim.New(1)
	d := New(s, "n", hardware.NearTerm())
	d.AddStorageQubits(1)
	q, ok := d.AllocStorage()
	if !ok || q.Kind() != Storage {
		t.Fatal("storage alloc failed")
	}
	if _, ok := d.AllocStorage(); ok {
		t.Fatal("storage over-allocated")
	}
	if q.lifetimes.T2 != 60 {
		t.Errorf("carbon lifetimes not applied: %+v", q.lifetimes)
	}
}

func TestPairLazyDecoherence(t *testing.T) {
	s, a, b := twoDevices(t)
	p := makePair(t, s, a, b, quantum.PhiPlus)
	if f := p.FidelityAt(s.Now()); math.Abs(f-1) > 1e-9 {
		t.Fatalf("fresh pair fidelity %v", f)
	}
	// After 30 s with T2*=60 s on both sides, fidelity drops noticeably but
	// the pair is still usable.
	s.RunFor(30 * sim.Second)
	f := p.FidelityAt(s.Now())
	if f >= 0.95 || f <= 0.5 {
		t.Errorf("fidelity after 30s idle = %v", f)
	}
	// FidelityAt must not mutate: asking twice gives the same answer.
	if f2 := p.FidelityAt(s.Now()); math.Abs(f-f2) > 1e-12 {
		t.Error("FidelityAt mutated the pair")
	}
	// AdvanceTo then zero elapsed: same fidelity.
	p.AdvanceTo(s.Now())
	if f3 := p.FidelityAt(s.Now()); math.Abs(f-f3) > 1e-12 {
		t.Errorf("AdvanceTo changed fidelity: %v vs %v", f, f3)
	}
}

func TestSwapMergesPairs(t *testing.T) {
	s := sim.New(2)
	a := New(s, "a", hardware.Simulation())
	m := New(s, "m", hardware.Simulation())
	c := New(s, "c", hardware.Simulation())
	a.AddCommQubits("am", 1)
	m.AddCommQubits("am", 1)
	m.AddCommQubits("mc", 1)
	c.AddCommQubits("mc", 1)

	qa, _ := a.AllocComm("am")
	qm1, _ := m.AllocComm("am")
	p1 := NewPair(s.Now(), quantum.BellState(quantum.PsiPlus), quantum.PsiPlus, qa, qm1)
	qm2, _ := m.AllocComm("mc")
	qc, _ := c.AllocComm("mc")
	p2 := NewPair(s.Now(), quantum.BellState(quantum.PhiMinus), quantum.PhiMinus, qm2, qc)

	var merged *Pair
	var outcome quantum.BellIndex
	m.Swap(p1.Half(p1.LocalSide("m")), p2.Half(p2.LocalSide("m")), func(mp *Pair, o quantum.BellIndex) { merged, outcome = mp, o })
	s.Run()

	if merged == nil {
		t.Fatal("swap never completed")
	}
	want := quantum.Combine(quantum.PsiPlus, quantum.PhiMinus, outcome)
	if merged.TrueIdx() != want {
		t.Errorf("merged TrueIdx = %v, want %v", merged.TrueIdx(), want)
	}
	// The merged pair spans a-c and the middle qubits are free again.
	if merged.LocalSide("a") != 0 || merged.LocalSide("c") != 1 {
		t.Error("merged pair endpoints wrong")
	}
	if m.FreeCommCount("am") != 1 || m.FreeCommCount("mc") != 1 {
		t.Error("middle qubits not freed after swap")
	}
	// Fidelity close to 1 (only 500µs of gate time and slight gate noise).
	if f := merged.FidelityAt(s.Now()); f < 0.95 {
		t.Errorf("merged fidelity = %v", f)
	}
	// Qubit rewiring: a's qubit now belongs to the merged pair.
	if qa.Pair() != merged || qc.Pair() != merged {
		t.Error("remote qubits not rewired to merged pair")
	}
	// The swap took the device's SwapDuration.
	if s.Now() != sim.Time(hardware.Simulation().SwapDuration()) {
		t.Errorf("swap completed at %v", s.Now())
	}
}

func TestSwapOrientation(t *testing.T) {
	// Build pairs whose local halves sit on "wrong" sides and check the
	// merged endpoints still come out as (remote1, remote2).
	s := sim.New(3)
	a := New(s, "a", hardware.Simulation())
	m := New(s, "m", hardware.Simulation())
	c := New(s, "c", hardware.Simulation())
	a.AddCommQubits("", 1)
	m.AddCommQubits("", 2)
	c.AddCommQubits("", 1)

	qm1, _ := m.AllocComm("")
	qa, _ := a.AllocComm("")
	// Local half of p1 is side 0 (left).
	p1 := NewPair(s.Now(), quantum.BellState(quantum.PhiPlus), quantum.PhiPlus, qm1, qa)
	qc, _ := c.AllocComm("")
	qm2, _ := m.AllocComm("")
	// Local half of p2 is side 1 (right).
	p2 := NewPair(s.Now(), quantum.BellState(quantum.PhiPlus), quantum.PhiPlus, qc, qm2)

	var merged *Pair
	var outcome quantum.BellIndex
	m.Swap(p1.Half(p1.LocalSide("m")), p2.Half(p2.LocalSide("m")), func(mp *Pair, o quantum.BellIndex) { merged, outcome = mp, o })
	s.Run()
	if merged.LocalSide("a") < 0 || merged.LocalSide("c") < 0 {
		t.Fatal("merged pair lost an endpoint")
	}
	want := quantum.Combine(quantum.PhiPlus, quantum.PhiPlus, outcome)
	if f := quantum.Fidelity(merged.StateAt(s.Now()), want); f < 0.95 {
		t.Errorf("orientation-corrected swap fidelity = %v (idx %v)", f, want)
	}
}

func TestTaskSchedulerSerialises(t *testing.T) {
	s := sim.New(4)
	d := New(s, "d", hardware.Simulation())
	var done []sim.Time
	d.SubmitOp(100, func() { done = append(done, s.Now()) })
	d.SubmitOp(50, func() { done = append(done, s.Now()) })
	s.Run()
	if len(done) != 2 || done[0] != 100 || done[1] != 150 {
		t.Errorf("op completion times = %v, want [100 150]", done)
	}
	if d.BusyUntil() != 150 {
		t.Errorf("BusyUntil = %v", d.BusyUntil())
	}
}

func TestDiscardBreaksPair(t *testing.T) {
	s, a, b := twoDevices(t)
	p := makePair(t, s, a, b, quantum.PhiPlus)
	a.Discard(p)
	if !p.Broken() {
		t.Error("pair not broken after discard")
	}
	if a.FreeCommCount("ab") != 2 {
		t.Error("discarding did not free the qubit")
	}
	// Remote half still allocated until b discards.
	if b.FreeCommCount("ab") != 1 {
		t.Error("remote half freed prematurely")
	}
	b.Discard(p)
	if b.FreeCommCount("ab") != 2 {
		t.Error("remote discard did not free")
	}
}

func TestMeasureHalfCollapsesAndCorrelates(t *testing.T) {
	s, a, b := twoDevices(t)
	agree := 0
	const n = 60
	for i := 0; i < n; i++ {
		p := makePair(t, s, a, b, quantum.PhiPlus)
		var bitA, bitB int
		a.MeasureHalf(p.Half(p.LocalSide("a")), quantum.ZBasis, func(bit int) {
			bitA = bit
			b.MeasureHalf(p.Half(p.LocalSide("b")), quantum.ZBasis, func(bit int) { bitB = bit })
		})
		s.Run()
		if bitA == bitB {
			agree++
		}
	}
	// Readout fidelity 0.998 ⇒ nearly always correlated.
	if agree < n-5 {
		t.Errorf("Z-basis agreement %d/%d for Φ+", agree, n)
	}
}

func TestMeasureFreesQubit(t *testing.T) {
	s, a, b := twoDevices(t)
	p := makePair(t, s, a, b, quantum.PhiPlus)
	a.MeasureHalf(p.Half(p.LocalSide("a")), quantum.ZBasis, func(int) {})
	s.Run()
	if a.FreeCommCount("ab") != 2 {
		t.Error("measurement did not free the qubit")
	}
	if b.FreeCommCount("ab") != 1 {
		t.Error("remote qubit should stay allocated")
	}
	// The measured half no longer decoheres but the pair still advances.
	p.AdvanceTo(s.Now())
}

func TestMoveToStorage(t *testing.T) {
	s := sim.New(5)
	nt := hardware.NearTerm()
	a := New(s, "a", nt)
	b := New(s, "b", nt)
	a.AddCommQubits("", 1)
	a.AddStorageQubits(1)
	b.AddCommQubits("", 1)
	qa, _ := a.AllocComm("")
	qb, _ := b.AllocComm("")
	p := NewPair(s.Now(), quantum.BellState(quantum.PhiPlus), quantum.PhiPlus, qa, qb)
	moved := false
	a.MoveToStorage(p.Half(p.LocalSide("a")), func(_ *Qubit, ok bool) { moved = ok })
	s.Run()
	if !moved {
		t.Fatal("move failed")
	}
	if a.FreeCommCount("") != 1 {
		t.Error("electron not freed after move")
	}
	half := p.Half(p.LocalSide("a"))
	if half.Kind() != Storage {
		t.Error("pair half not on storage qubit")
	}
	if half.lifetimes.T2 != 60 {
		t.Errorf("carbon lifetimes not in effect: %+v", half.lifetimes)
	}
	// Move noise costs some fidelity (carbon init 0.95, gate 0.992).
	f := p.FidelityAt(s.Now())
	if f >= 1 || f < 0.9 {
		t.Errorf("post-move fidelity = %v", f)
	}
	// Second move fails: no storage qubits left... first release it.
	a.MoveToStorage(p.Half(p.LocalSide("a")), func(_ *Qubit, ok bool) {
		if ok {
			t.Error("move with no free storage should fail")
		}
	})
	s.Run()
}

func TestAttemptDephasingHitsStoredOnly(t *testing.T) {
	s := sim.New(6)
	nt := hardware.NearTerm()
	a := New(s, "a", nt)
	b := New(s, "b", nt)
	a.AddCommQubits("", 1)
	a.AddStorageQubits(1)
	b.AddCommQubits("", 2)
	qa, _ := a.AllocComm("")
	qb, _ := b.AllocComm("")
	p := NewPair(s.Now(), quantum.BellState(quantum.PhiPlus), quantum.PhiPlus, qa, qb)
	a.MoveToStorage(p.Half(p.LocalSide("a")), func(*Qubit, bool) {})
	s.Run()
	f0 := p.FidelityAt(s.Now())
	// 20k attempts ≈ the 1/e budget: noticeable decay.
	a.ApplyAttemptDephasing(20000)
	f1 := p.FidelityAt(s.Now())
	if f1 >= f0 {
		t.Errorf("attempt dephasing did not degrade: %v -> %v", f0, f1)
	}
	if f1 < 0.5 {
		t.Errorf("attempt dephasing too harsh: %v", f1)
	}
	// Zero attempts: no-op.
	a.ApplyAttemptDephasing(0)
	if f2 := p.FidelityAt(s.Now()); math.Abs(f2-f1) > 1e-12 {
		t.Error("zero attempts changed state")
	}
}

func TestApplyPauliCorrection(t *testing.T) {
	s, a, b := twoDevices(t)
	p := makePair(t, s, a, b, quantum.PsiPlus)
	// Correct Ψ+ to Φ+ by applying X on the left qubit.
	p.ApplyPauli(0, 1, 0)
	if p.TrueIdx() != quantum.PhiPlus {
		t.Errorf("TrueIdx after correction = %v", p.TrueIdx())
	}
	if f := p.FidelityAt(s.Now()); math.Abs(f-1) > 1e-9 {
		t.Errorf("corrected fidelity = %v", f)
	}
}

func TestPairAccessors(t *testing.T) {
	s, a, b := twoDevices(t)
	p := makePair(t, s, a, b, quantum.PhiPlus)
	if p.LocalSide("a") != 0 || p.LocalSide("b") != 1 || p.LocalSide("zz") != -1 {
		t.Error("LocalSide wrong")
	}
	if p.RemoteNode("a") != "b" || p.RemoteNode("b") != "a" || p.RemoteNode("zz") != "" {
		t.Error("RemoteNode wrong")
	}
	if p.CreatedAt() != 0 {
		t.Error("CreatedAt wrong")
	}
	if p.Half(0).Node() != "a" {
		t.Error("Half/Node wrong")
	}
	if Communication.String() != "communication" || Storage.String() != "storage" {
		t.Error("Kind.String wrong")
	}
	if len(a.Qubits()) != 2 {
		t.Error("Qubits() wrong")
	}
	if a.Params().Name != "simulation" {
		t.Error("Params() wrong")
	}
}
