//go:build !race

// Package race reports whether the race detector is compiled in, so
// allocation-gate tests can skip themselves under -race (the detector adds
// bookkeeping allocations that would trip testing.AllocsPerRun).
package race

// Enabled is true when the binary was built with -race.
const Enabled = false
