package signaling

import (
	"fmt"
	"testing"

	"qnp/internal/core"
	"qnp/internal/device"
	"qnp/internal/hardware"
	"qnp/internal/linklayer"
	"qnp/internal/netsim"
	"qnp/internal/routing"
	"qnp/internal/sim"
)

// testNet builds a 4-node chain with full plumbing.
func testNet(t *testing.T) (*sim.Simulation, *Signaler, []*core.Node, *routing.Controller) {
	t.Helper()
	s := sim.New(1)
	nw := netsim.New(s)
	fabric := linklayer.NewFabric()
	params := hardware.Simulation()
	link := hardware.LabLink()
	g := routing.NewGraph()

	var devs []*device.Device
	var ids []string
	for i := 0; i < 4; i++ {
		id := fmt.Sprintf("n%d", i)
		ids = append(ids, id)
		nw.AddNode(netsim.NodeID(id))
		g.AddNode(id)
		devs = append(devs, device.New(s, id, params))
	}
	for i := 0; i+1 < 4; i++ {
		name := linklayer.LinkName(ids[i], ids[i+1])
		devs[i].AddCommQubits(name, 2)
		devs[i+1].AddCommQubits(name, 2)
		nw.Connect(netsim.NodeID(ids[i]), netsim.NodeID(ids[i+1]), link.PropagationDelay())
		fabric.Add(linklayer.NewEngine(s, name, link, devs[i], devs[i+1]))
		g.AddLink(ids[i], ids[i+1], link)
	}
	var nodes []*core.Node
	for i := 0; i < 4; i++ {
		nodes = append(nodes, core.NewNode(s, nw, devs[i], fabric))
	}
	return s, New(nw, nodes), nodes, routing.NewController(g, params)
}

// probePlan fetches a budgeted long-cutoff plan through the Place probe
// surface for the four-node chain testNet builds.
func probePlan(ctrl *routing.Controller, src, dst string, f float64) (routing.Plan, error) {
	dec, _, err := ctrl.Place(routing.PlacementRequest{Src: src, Dst: dst, Fidelity: f, Cutoff: routing.CutoffLong, Probe: true})
	return dec.Plan, err
}

func TestEstablishInstallsWholePath(t *testing.T) {
	s, sig, nodes, ctrl := testNet(t)
	plan, err := probePlan(ctrl, "n0", "n3", 0.8)
	if err != nil {
		t.Fatal(err)
	}
	ready := false
	if err := sig.Establish("c1", plan, func() { ready = true }); err != nil {
		t.Fatal(err)
	}
	s.RunFor(sim.Millisecond)
	if !ready || !sig.Ready("c1") {
		t.Fatal("circuit never confirmed")
	}
	for i, n := range nodes {
		e, ok := n.Circuit("c1")
		if !ok {
			t.Fatalf("node %d has no entry", i)
		}
		if e.Cutoff != plan.Cutoff || e.DownMinFidelity != 0 && e.DownMinFidelity != plan.LinkFidelity {
			t.Errorf("node %d entry fields wrong: %+v", i, e)
		}
		switch i {
		case 0:
			if e.Role() != core.RoleHead {
				t.Error("n0 not head")
			}
		case 3:
			if e.Role() != core.RoleTail {
				t.Error("n3 not tail")
			}
		default:
			if e.Role() != core.RoleIntermediate {
				t.Errorf("n%d not intermediate", i)
			}
		}
	}
}

// End-to-end: establish via signalling, request pairs, get deliveries —
// the full stack wired by the protocols rather than by hand.
func TestEstablishedCircuitDeliversPairs(t *testing.T) {
	s, sig, nodes, ctrl := testNet(t)
	plan, err := probePlan(ctrl, "n0", "n3", 0.75)
	if err != nil {
		t.Fatal(err)
	}
	if err := sig.Establish("c1", plan, nil); err != nil {
		t.Fatal(err)
	}
	s.RunFor(sim.Millisecond)

	var got []core.Delivered
	nodes[0].SetCallbacks(core.AppCallbacks{OnPair: func(d core.Delivered) {
		got = append(got, d)
		if p := d.Pair; p != nil {
			if side := p.LocalSide("n0"); side >= 0 {
				nodes[0].Device().Free(p.Half(side))
			}
		}
	}})
	nodes[3].SetCallbacks(core.AppCallbacks{OnPair: func(d core.Delivered) {
		if p := d.Pair; p != nil {
			if side := p.LocalSide("n3"); side >= 0 {
				nodes[3].Device().Free(p.Half(side))
			}
		}
	}})
	if err := nodes[0].Submit(core.Request{ID: "r", Circuit: "c1", Type: core.Keep, NumPairs: 3}); err != nil {
		t.Fatal(err)
	}
	s.RunFor(30 * sim.Second)
	if len(got) != 3 {
		t.Fatalf("delivered %d pairs, want 3", len(got))
	}
}

func TestTeardownRemovesState(t *testing.T) {
	s, sig, nodes, ctrl := testNet(t)
	plan, _ := probePlan(ctrl, "n0", "n3", 0.8)
	if err := sig.Establish("c1", plan, nil); err != nil {
		t.Fatal(err)
	}
	s.RunFor(sim.Millisecond)
	sig.Teardown("c1", plan)
	s.RunFor(sim.Millisecond)
	for i, n := range nodes {
		if _, ok := n.Circuit("c1"); ok {
			t.Errorf("node %d still has the circuit", i)
		}
	}
	if sig.Ready("c1") {
		t.Error("torn-down circuit still ready")
	}
	// The path can be re-established afterwards.
	if err := sig.Establish("c1", plan, nil); err != nil {
		t.Fatal(err)
	}
	s.RunFor(sim.Millisecond)
	if !sig.Ready("c1") {
		t.Error("re-establishment failed")
	}
}

func TestEstablishValidation(t *testing.T) {
	_, sig, _, ctrl := testNet(t)
	if err := sig.Establish("bad", routing.Plan{Path: []string{"n0"}}, nil); err == nil {
		t.Error("short path accepted")
	}
	plan, _ := probePlan(ctrl, "n0", "n3", 0.8)
	plan.Path = []string{"zz", "n1"}
	if err := sig.Establish("bad2", plan, nil); err == nil {
		t.Error("unknown head accepted")
	}
}

// TestUpdateAllocationPropagates pins the re-fit propagation path: an
// UpdateMsg rides hop by hop and rewrites MaxEER in every node's routing
// entry, head first (synchronously — it owns pacing).
func TestUpdateAllocationPropagates(t *testing.T) {
	s, sig, nodes, ctrl := testNet(t)
	plan, err := probePlan(ctrl, "n0", "n3", 0.8)
	if err != nil {
		t.Fatal(err)
	}
	plan.MaxEER = 10
	if err := sig.Establish("c1", plan, nil); err != nil {
		t.Fatal(err)
	}
	s.RunFor(sim.Millisecond)

	sig.UpdateAllocation("c1", plan.Path, 4)
	if e, _ := nodes[0].Circuit("c1"); e.MaxEER != 4 {
		t.Fatalf("head not updated synchronously: MaxEER = %v", e.MaxEER)
	}
	s.RunFor(sim.Millisecond)
	for i, n := range nodes {
		e, ok := n.Circuit("c1")
		if !ok {
			t.Fatalf("node %d lost entry", i)
		}
		if e.MaxEER != 4 {
			t.Errorf("node %d MaxEER = %v, want 4", i, e.MaxEER)
		}
	}

	// An update for a torn-down circuit is dropped harmlessly.
	sig.Teardown("c1", plan)
	s.RunFor(sim.Millisecond)
	sig.UpdateAllocation("c1", plan.Path, 7)
	s.RunFor(sim.Millisecond)
	if _, ok := nodes[1].Circuit("c1"); ok {
		t.Fatal("torn-down circuit resurrected by update")
	}
}
