// Package signaling implements the paper's source-routed signalling
// protocol (§3.3): it installs virtual circuits along a path computed by
// the routing controller, in the way RSVP-TE installs MPLS circuits. A
// SETUP message travels head→tail installing the routing-table entry and
// link-labels hop by hop; a CONFIRM returns tail→head, after which the
// circuit is usable. TEARDOWN removes the state.
package signaling

import (
	"fmt"

	"qnp/internal/core"
	"qnp/internal/linklayer"
	"qnp/internal/netsim"
	"qnp/internal/routing"
)

// SetupMsg installs one circuit hop by hop. Hop indexes into Path.
type SetupMsg struct {
	Circuit core.CircuitID
	Plan    routing.Plan
	Hop     int
}

// ConfirmMsg acknowledges installation back to the head-end.
type ConfirmMsg struct {
	Circuit core.CircuitID
	Hop     int
}

// TeardownMsg removes the circuit at each node it visits.
type TeardownMsg struct {
	Circuit core.CircuitID
	Plan    routing.Plan
	Hop     int
}

// UpdateMsg re-fits a circuit's end-to-end rate allocation at each node on
// its path (§4.4: allocations are recomputed as circuits join and leave).
// It rides the same hop-by-hop relay as FORWARD/SETUP — the head applies
// the new MaxEER locally (re-pacing its first hop) and each downstream node
// updates its routing-table entry in turn.
type UpdateMsg struct {
	Circuit core.CircuitID
	MaxEER  float64
	Path    []string
	Hop     int
}

// Signaler drives circuit installation. One instance manages the whole
// simulated network (it registers a handler on every node, the way each
// node would run a signalling daemon).
type Signaler struct {
	net       *netsim.Network
	nodes     map[netsim.NodeID]*core.Node
	confirmed map[core.CircuitID]bool
	onReady   map[core.CircuitID]func()
}

// New creates the signalling plane over the given QNP nodes.
func New(nw *netsim.Network, nodes []*core.Node) *Signaler {
	s := &Signaler{
		net:       nw,
		nodes:     make(map[netsim.NodeID]*core.Node),
		confirmed: make(map[core.CircuitID]bool),
		onReady:   make(map[core.CircuitID]func()),
	}
	for _, n := range nodes {
		n := n
		s.nodes[n.ID()] = n
		nw.Handle(n.ID(), func(from netsim.NodeID, msg netsim.Message) {
			s.handle(n, from, msg)
		})
	}
	return s
}

// Establish installs a circuit along the plan's path. The head-end entry is
// installed immediately; the rest of the path installs as the SETUP message
// propagates. onReady (optional) fires when the CONFIRM returns to the head.
func (s *Signaler) Establish(id core.CircuitID, plan routing.Plan, onReady func()) error {
	if len(plan.Path) < 2 {
		return fmt.Errorf("signaling: path too short: %v", plan.Path)
	}
	head, ok := s.nodes[netsim.NodeID(plan.Path[0])]
	if !ok {
		return fmt.Errorf("signaling: unknown head-end %q", plan.Path[0])
	}
	if onReady != nil {
		s.onReady[id] = onReady
	}
	head.InstallCircuit(entryFor(id, plan, 0))
	s.net.Send(netsim.NodeID(plan.Path[0]), netsim.NodeID(plan.Path[1]), SetupMsg{Circuit: id, Plan: plan, Hop: 1})
	return nil
}

// Teardown removes the circuit along its path, starting at the head.
func (s *Signaler) Teardown(id core.CircuitID, plan routing.Plan) {
	head := s.nodes[netsim.NodeID(plan.Path[0])]
	head.UninstallCircuit(id)
	delete(s.confirmed, id)
	s.net.Send(netsim.NodeID(plan.Path[0]), netsim.NodeID(plan.Path[1]), TeardownMsg{Circuit: id, Plan: plan, Hop: 1})
}

// UpdateAllocation re-fits an installed circuit's MaxEER along its path:
// immediately at the head (which owns pacing), then hop by hop downstream.
func (s *Signaler) UpdateAllocation(id core.CircuitID, path []string, maxEER float64) {
	if len(path) < 2 {
		return
	}
	head, ok := s.nodes[netsim.NodeID(path[0])]
	if !ok {
		return
	}
	head.UpdateCircuitEER(id, maxEER)
	s.net.Send(netsim.NodeID(path[0]), netsim.NodeID(path[1]),
		UpdateMsg{Circuit: id, MaxEER: maxEER, Path: path, Hop: 1})
}

// Ready reports whether the circuit's CONFIRM has returned.
func (s *Signaler) Ready(id core.CircuitID) bool { return s.confirmed[id] }

func (s *Signaler) handle(n *core.Node, _ netsim.NodeID, msg netsim.Message) {
	switch m := msg.(type) {
	case SetupMsg:
		n.InstallCircuit(entryFor(m.Circuit, m.Plan, m.Hop))
		path := m.Plan.Path
		if m.Hop+1 < len(path) {
			s.net.Send(netsim.NodeID(path[m.Hop]), netsim.NodeID(path[m.Hop+1]),
				SetupMsg{Circuit: m.Circuit, Plan: m.Plan, Hop: m.Hop + 1})
			return
		}
		// Tail reached: confirm back along the path.
		s.net.Send(netsim.NodeID(path[m.Hop]), netsim.NodeID(path[m.Hop-1]),
			ConfirmMsg{Circuit: m.Circuit, Hop: m.Hop - 1})
	case ConfirmMsg:
		if m.Hop > 0 {
			path := s.pathOf(n, m.Circuit)
			if path != nil {
				s.net.Send(netsim.NodeID(path[m.Hop]), netsim.NodeID(path[m.Hop-1]),
					ConfirmMsg{Circuit: m.Circuit, Hop: m.Hop - 1})
			}
			return
		}
		s.confirmed[m.Circuit] = true
		if fn := s.onReady[m.Circuit]; fn != nil {
			delete(s.onReady, m.Circuit)
			fn()
		}
	case TeardownMsg:
		n.UninstallCircuit(m.Circuit)
		path := m.Plan.Path
		if m.Hop+1 < len(path) {
			s.net.Send(netsim.NodeID(path[m.Hop]), netsim.NodeID(path[m.Hop+1]),
				TeardownMsg{Circuit: m.Circuit, Plan: m.Plan, Hop: m.Hop + 1})
		}
	case UpdateMsg:
		n.UpdateCircuitEER(m.Circuit, m.MaxEER)
		if m.Hop+1 < len(m.Path) {
			s.net.Send(netsim.NodeID(m.Path[m.Hop]), netsim.NodeID(m.Path[m.Hop+1]),
				UpdateMsg{Circuit: m.Circuit, MaxEER: m.MaxEER, Path: m.Path, Hop: m.Hop + 1})
		}
	}
}

// pathOf reconstructs the circuit's full path by walking the installed
// routing entries' upstream pointers to the head and downstream pointers to
// the tail (the CONFIRM relay needs hop indexes).
func (s *Signaler) pathOf(n *core.Node, id core.CircuitID) []string {
	var up []string
	cur := n
	for {
		ent, ok := cur.Circuit(id)
		if !ok {
			return nil
		}
		up = append([]string{string(cur.ID())}, up...)
		if ent.Upstream == "" {
			break
		}
		cur = s.nodes[ent.Upstream]
		if cur == nil {
			return nil
		}
	}
	cur = n
	var down []string
	for {
		ent, ok := cur.Circuit(id)
		if !ok {
			return nil
		}
		if ent.Downstream == "" {
			break
		}
		down = append(down, string(ent.Downstream))
		cur = s.nodes[ent.Downstream]
		if cur == nil {
			return nil
		}
	}
	return append(up, down...)
}

// entryFor builds the per-node routing-table entry for hop i of the plan.
func entryFor(id core.CircuitID, plan routing.Plan, i int) core.RoutingEntry {
	path := plan.Path
	e := core.RoutingEntry{
		Circuit:          id,
		HeadEnd:          netsim.NodeID(path[0]),
		TailEnd:          netsim.NodeID(path[len(path)-1]),
		MaxEER:           plan.MaxEER,
		Cutoff:           plan.Cutoff,
		EndToEndFidelity: plan.EndToEndFidelity,
	}
	if i > 0 {
		e.Upstream = netsim.NodeID(path[i-1])
		e.UpLabel = labelFor(id)
		e.UpMinFidelity = plan.LinkFidelity
		e.UpMaxLPR = plan.MaxLPR
	}
	if i < len(path)-1 {
		e.Downstream = netsim.NodeID(path[i+1])
		e.DownLabel = labelFor(id)
		e.DownMinFidelity = plan.LinkFidelity
		e.DownMaxLPR = plan.MaxLPR
	}
	return e
}

// labelFor allocates the link-label for a circuit. Labels are link-unique;
// a circuit traverses each link at most once, so the circuit ID itself is a
// valid (and debuggable) label on every hop.
func labelFor(id core.CircuitID) linklayer.Label { return linklayer.Label(string(id)) }
