package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestScheduleOrdering(t *testing.T) {
	s := New(1)
	var got []int
	s.Schedule(30, func() { got = append(got, 3) })
	s.Schedule(10, func() { got = append(got, 1) })
	s.Schedule(20, func() { got = append(got, 2) })
	s.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if s.Now() != 30 {
		t.Errorf("Now() = %v, want 30", s.Now())
	}
}

func TestFIFOTieBreak(t *testing.T) {
	s := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(5, func() { got = append(got, i) })
	}
	s.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events fired out of order: %v", got)
		}
	}
}

func TestCancel(t *testing.T) {
	s := New(1)
	fired := false
	e := s.Schedule(10, func() { fired = true })
	s.Cancel(e)
	s.Run()
	if fired {
		t.Error("cancelled event fired")
	}
	if !e.Cancelled() {
		t.Error("Cancelled() = false after Cancel")
	}
	// Double-cancel and cancel-after-fire must be no-ops.
	s.Cancel(e)
	e2 := s.Schedule(1, func() {})
	s.Run()
	s.Cancel(e2)
}

func TestCancelFromWithinEvent(t *testing.T) {
	s := New(1)
	fired := false
	var victim Event
	s.Schedule(5, func() { s.Cancel(victim) })
	victim = s.Schedule(10, func() { fired = true })
	s.Run()
	if fired {
		t.Error("event cancelled mid-run still fired")
	}
}

func TestScheduleInPastPanics(t *testing.T) {
	s := New(1)
	s.Schedule(10, func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past did not panic")
		}
	}()
	s.ScheduleAt(5, func() {})
}

func TestRunUntil(t *testing.T) {
	s := New(1)
	var got []Time
	for _, d := range []Duration{10, 20, 30, 40} {
		s.Schedule(d, func() { got = append(got, s.Now()) })
	}
	s.RunUntil(25)
	if len(got) != 2 {
		t.Fatalf("fired %d events by t=25, want 2", len(got))
	}
	if s.Now() != 25 {
		t.Errorf("Now() = %v after RunUntil(25)", s.Now())
	}
	if s.Pending() != 2 {
		t.Errorf("Pending() = %d, want 2", s.Pending())
	}
	s.RunUntil(100)
	if len(got) != 4 {
		t.Errorf("fired %d events total, want 4", len(got))
	}
	if s.Now() != 100 {
		t.Errorf("Now() = %v after RunUntil(100)", s.Now())
	}
}

func TestStepUntil(t *testing.T) {
	s := New(1)
	var got []Time
	for _, d := range []Duration{10, 20, 30} {
		s.Schedule(d, func() { got = append(got, s.Now()) })
	}
	if !s.StepUntil(15) {
		t.Fatal("StepUntil(15) refused the event at t=10")
	}
	// The next event (t=20) lies beyond the deadline: nothing may fire and
	// the clock must not move.
	if s.StepUntil(15) {
		t.Error("StepUntil(15) fired an event beyond the deadline")
	}
	if s.Now() != 10 {
		t.Errorf("Now() = %v after bounded stepping to 15, want 10", s.Now())
	}
	// Inclusive boundary: an event exactly at the deadline fires.
	if !s.StepUntil(20) {
		t.Error("StepUntil(20) refused the event exactly at the deadline")
	}
	s.RunUntil(100)
	if len(got) != 3 {
		t.Errorf("fired %d events total, want 3", len(got))
	}
	if s.StepUntil(1000) {
		t.Error("StepUntil on an empty queue returned true")
	}
	s.Schedule(Second, func() {})
	s.Stop()
	if s.StepUntil(Time(10 * Second)) {
		t.Error("StepUntil on a stopped simulation returned true")
	}
}

func TestRunForAdvancesClock(t *testing.T) {
	s := New(1)
	s.RunFor(Second)
	if s.Now() != Time(Second) {
		t.Errorf("Now() = %v, want 1s", s.Now())
	}
}

func TestStop(t *testing.T) {
	s := New(1)
	count := 0
	for i := 0; i < 10; i++ {
		s.Schedule(Duration(i), func() {
			count++
			if count == 3 {
				s.Stop()
			}
		})
	}
	s.Run()
	if count != 3 {
		t.Errorf("processed %d events after Stop at 3", count)
	}
	if !s.Stopped() {
		t.Error("Stopped() = false")
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New(1)
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 100 {
			s.Schedule(1, recurse)
		}
	}
	s.Schedule(0, recurse)
	s.Run()
	if depth != 100 {
		t.Errorf("depth = %d, want 100", depth)
	}
	if s.Now() != 99 {
		t.Errorf("Now() = %v, want 99", s.Now())
	}
}

func TestDeterminism(t *testing.T) {
	run := func(seed int64) []float64 {
		s := New(seed)
		var out []float64
		for i := 0; i < 50; i++ {
			s.Schedule(Duration(s.Rand().Intn(1000)), func() {
				out = append(out, s.Rand().Float64())
			})
		}
		s.Run()
		return out
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatal("different lengths")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs with same seed diverged at %d", i)
		}
	}
	c := run(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical runs")
	}
}

// Property: for any set of delays, events fire in nondecreasing time order
// and the clock ends at the maximum delay.
func TestQuickEventOrdering(t *testing.T) {
	f := func(delays []uint16) bool {
		if len(delays) == 0 {
			return true
		}
		s := New(7)
		var fired []Time
		for _, d := range delays {
			s.Schedule(Duration(d), func() { fired = append(fired, s.Now()) })
		}
		s.Run()
		if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
			return false
		}
		var max Duration
		for _, d := range delays {
			if Duration(d) > max {
				max = Duration(d)
			}
		}
		return s.Now() == Time(max) && len(fired) == len(delays)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

// Property: cancelling a random subset of events fires exactly the rest.
func TestQuickCancelSubset(t *testing.T) {
	f := func(delays []uint16, mask uint64) bool {
		s := New(3)
		fired := 0
		want := 0
		var evs []Event
		for _, d := range delays {
			evs = append(evs, s.Schedule(Duration(d), func() { fired++ }))
		}
		for i, e := range evs {
			if mask&(1<<(uint(i)%64)) != 0 {
				s.Cancel(e)
			} else {
				want++
			}
		}
		s.Run()
		return fired == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Error(err)
	}
}

func TestTimeArithmetic(t *testing.T) {
	tm := Time(0).Add(2 * Second).Add(500 * Millisecond)
	if tm.Seconds() != 2.5 {
		t.Errorf("Seconds() = %v, want 2.5", tm.Seconds())
	}
	if tm.Sub(Time(Second)) != 1500*Millisecond {
		t.Errorf("Sub = %v", tm.Sub(Time(Second)))
	}
	if d := DurationFromSeconds(0.25); d != 250*Millisecond {
		t.Errorf("DurationFromSeconds(0.25) = %v", d)
	}
	if d := (10 * Millisecond).Scale(1.5); d != 15*Millisecond {
		t.Errorf("Scale = %v", d)
	}
	if (2 * Millisecond).Milliseconds() != 2 {
		t.Error("Milliseconds conversion wrong")
	}
	if (3 * Microsecond).Microseconds() != 3 {
		t.Error("Microseconds conversion wrong")
	}
	if Time(1500*Millisecond).String() != "1.500000000s" {
		t.Errorf("String = %q", Time(1500*Millisecond).String())
	}
	if Duration(1500*Millisecond).String() != "1.500000000s" {
		t.Errorf("String = %q", Duration(1500*Millisecond).String())
	}
}
