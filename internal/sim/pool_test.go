package sim

import (
	"testing"

	"qnp/internal/race"
)

// TestCancelAfterFireIsNoOp pins the generation-count contract: once an
// event fired, its slot may be reused by a new event, and cancelling the
// stale handle must not touch the new occupant.
func TestCancelAfterFireIsNoOp(t *testing.T) {
	s := New(1)
	fired1 := false
	e1 := s.Schedule(10, func() { fired1 = true })
	s.Run()
	if !fired1 {
		t.Fatal("event did not fire")
	}
	if e1.Cancelled() {
		t.Error("fired event reports Cancelled")
	}
	// The slot freed by e1 is reused by e2 (pooling). Cancelling stale e1
	// must leave e2 untouched.
	fired2 := false
	e2 := s.Schedule(10, func() { fired2 = true })
	s.Cancel(e1)
	if !e2.Pending() {
		t.Fatal("cancelling a stale handle killed the slot's new occupant")
	}
	s.Run()
	if !fired2 {
		t.Error("recycled event did not fire after stale cancel")
	}
}

func TestCancelTwice(t *testing.T) {
	s := New(1)
	fired := 0
	e := s.Schedule(10, func() { fired++ })
	other := s.Schedule(20, func() { fired++ })
	s.Cancel(e)
	s.Cancel(e) // second cancel must not decrement live again or touch others
	if !e.Cancelled() {
		t.Error("Cancelled() = false after double cancel")
	}
	if got := s.Pending(); got != 1 {
		t.Errorf("Pending() = %d after double cancel, want 1", got)
	}
	s.Run()
	if fired != 1 {
		t.Errorf("fired %d events, want 1", fired)
	}
	_ = other
}

// TestRescheduleSameTimestamp pins the now-queue ordering: an event that
// schedules a follow-up at its own timestamp must see it fire in the same
// instant, after every event already queued for that instant, in seq order.
func TestRescheduleSameTimestamp(t *testing.T) {
	s := New(1)
	var order []int
	s.Schedule(5, func() {
		order = append(order, 1)
		// Same-instant follow-up: scheduled mid-fire, must run after the
		// already-queued event 2 (earlier seq) but within time 5.
		s.Schedule(0, func() {
			order = append(order, 3)
			if s.Now() != 5 {
				t.Errorf("follow-up fired at %v, want 5", s.Now())
			}
		})
	})
	s.Schedule(5, func() { order = append(order, 2) })
	s.Schedule(6, func() { order = append(order, 4) })
	s.Run()
	want := []int{1, 2, 3, 4}
	if len(order) != len(want) {
		t.Fatalf("fired %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("fired %v, want %v", order, want)
		}
	}
}

// TestCancelNowQueueEntry covers lazy cancellation of same-instant events.
func TestCancelNowQueueEntry(t *testing.T) {
	s := New(1)
	fired := false
	var victim Event
	s.Schedule(5, func() {
		victim = s.Schedule(0, func() { fired = true })
	})
	s.Schedule(5, func() { s.Cancel(victim) })
	s.Run()
	if fired {
		t.Error("cancelled now-queue event fired")
	}
	if !victim.Cancelled() {
		t.Error("now-queue victim does not report Cancelled")
	}
}

// TestPoolingPreservesSeqOrder is the determinism gate for event pooling:
// heavy recycle churn must not disturb the (time, seq) tie-break order.
func TestPoolingPreservesSeqOrder(t *testing.T) {
	s := New(1)
	var order []int
	// Round 1: burn through a pile of events so the free list is hot and
	// nodes get reused in arbitrary pool order.
	for i := 0; i < 100; i++ {
		s.Schedule(Duration(i%7), func() {})
	}
	s.Run()
	// Round 2: schedule ties at one timestamp from recycled nodes; they
	// must fire in scheduling order regardless of which pooled node each
	// landed on.
	base := s.Now()
	for i := 0; i < 50; i++ {
		i := i
		s.ScheduleAt(base.Add(10), func() { order = append(order, i) })
	}
	// Interleave cancels to shuffle the free list mid-round.
	for i := 0; i < 25; i++ {
		e := s.ScheduleAt(base.Add(10), func() { t.Error("cancelled tie fired") })
		s.Cancel(e)
	}
	s.Run()
	if len(order) != 50 {
		t.Fatalf("fired %d ties, want 50", len(order))
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("tie %d fired out of order: got seq position %d", i, got)
		}
	}
}

// TestAllocsPerScheduledEvent pins the pooled scheduler's acceptance gate:
// zero allocations per schedule/fire cycle with a prebuilt callback, i.e.
// at most the caller's one closure allocation per scheduled event.
func TestAllocsPerScheduledEvent(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation gates run with -race off")
	}
	s := New(1)
	fn := func() {}
	// Warm the pool and the queue slices.
	for i := 0; i < 100; i++ {
		s.Schedule(Duration(i), fn)
	}
	s.Run()
	allocs := testing.AllocsPerRun(200, func() {
		s.Schedule(1, fn)
		s.Step()
	})
	if allocs != 0 {
		t.Errorf("allocs per scheduled event = %v, want 0 (callback prebuilt)", allocs)
	}
}

// TestAllocsSteadyStateRun measures a self-perpetuating workload through
// Run: a chain of events each scheduling its successor. Steady state must
// cost at most 1 alloc per event — the unavoidable closure.
func TestAllocsSteadyStateRun(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation gates run with -race off")
	}
	s := New(1)
	const events = 2000
	count := 0
	var next func()
	next = func() {
		count++
		if count < events {
			s.Schedule(1, next)
		}
	}
	// Warm-up chain.
	s.Schedule(1, next)
	s.Run()
	count = 0
	allocs := testing.AllocsPerRun(1, func() {
		count = 0
		s.Schedule(1, next)
		s.Run()
	})
	perEvent := allocs / float64(events)
	if perEvent > 1 {
		t.Errorf("steady-state allocs per event = %.3f, want ≤ 1", perEvent)
	}
}

// TestHandleAccessors covers the Event value API.
func TestHandleAccessors(t *testing.T) {
	var zero Event
	if zero.Pending() || zero.Cancelled() {
		t.Error("zero Event reports state")
	}
	s := New(1)
	s.Cancel(zero) // must be a no-op
	e := s.Schedule(7, func() {})
	if e.Time() != 7 {
		t.Errorf("Time() = %v, want 7", e.Time())
	}
	if !e.Pending() {
		t.Error("scheduled event not Pending")
	}
	s.Run()
	if e.Pending() {
		t.Error("fired event still Pending")
	}
}
