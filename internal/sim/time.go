// Package sim implements the discrete-event simulation core on which the
// whole quantum network is built. It plays the role NetSquid's simulation
// engine plays in the paper: a single global virtual clock, an event queue,
// and deterministic pseudo-randomness.
//
// The simulator is deliberately single-threaded. Quantum network protocol
// behaviour depends on precise event interleavings (a swap racing a cutoff
// timer, a TRACK message racing a qubit expiry), so every run must be exactly
// reproducible from its seed. Concurrency belongs one level up: independent
// simulation runs fan out across goroutines in the experiment harness.
//
// The event loop is allocation-free in steady state: fired and cancelled
// events are recycled through an intrusive pool, and events scheduled for
// the current instant bypass the heap through a FIFO now-queue. Scheduling
// returns a small generation-counted Event value, not a pointer into the
// pool — hold it as long as you like; Cancel on a handle whose event
// already fired is always a safe no-op. The only allocation a caller pays
// per scheduled event is its own callback closure, if any.
package sim

import "fmt"

// Time is an absolute point in simulated time, in nanoseconds since the
// start of the simulation. Nanosecond resolution covers the full dynamic
// range used by the paper: the fastest modelled operation is a 5 ns
// single-qubit gate and the longest runs are tens of simulated seconds.
type Time int64

// Duration is a span of simulated time in nanoseconds.
type Duration int64

// Common durations, mirroring the time/Duration constants but for simulated
// time. Simulated time is kept as a distinct type so wall-clock time cannot
// be confused with virtual time anywhere in the codebase.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
	Minute               = 60 * Second
	Hour                 = 60 * Minute
)

// Add returns the time shifted by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds reports the time as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Seconds reports the duration as floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Milliseconds reports the duration as floating-point milliseconds.
func (d Duration) Milliseconds() float64 { return float64(d) / float64(Millisecond) }

// Microseconds reports the duration as floating-point microseconds.
func (d Duration) Microseconds() float64 { return float64(d) / float64(Microsecond) }

// Scale multiplies the duration by a dimensionless factor, rounding to the
// nearest nanosecond.
func (d Duration) Scale(f float64) Duration { return Duration(float64(d)*f + 0.5) }

// DurationFromSeconds converts floating-point seconds to a Duration.
func DurationFromSeconds(s float64) Duration { return Duration(s * float64(Second)) }

func (t Time) String() string     { return fmt.Sprintf("%.9fs", t.Seconds()) }
func (d Duration) String() string { return fmt.Sprintf("%.9fs", d.Seconds()) }
