package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// Event is a scheduled callback. Events are created through Simulation's
// scheduling methods and can be cancelled until they fire.
type Event struct {
	at     Time
	seq    uint64 // FIFO tie-break for events at the same instant
	fn     func()
	index  int // heap index, -1 once removed
	cancel bool
}

// Cancelled reports whether the event was cancelled before firing.
func (e *Event) Cancelled() bool { return e.cancel }

// Time returns the virtual time the event is (or was) scheduled for.
func (e *Event) Time() Time { return e.at }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Simulation is a discrete-event simulation: a virtual clock, an event
// queue, and a deterministic random number source. The zero value is not
// usable; construct with New.
type Simulation struct {
	now     Time
	queue   eventQueue
	seq     uint64
	rng     *rand.Rand
	stopped bool
	// processed counts events that have fired, for diagnostics and for
	// runaway-simulation guards in tests.
	processed uint64
}

// New creates a simulation whose random stream is derived from seed.
// Identical seeds give identical runs.
func New(seed int64) *Simulation {
	return &Simulation{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (s *Simulation) Now() Time { return s.now }

// Rand returns the simulation's deterministic random source. All model
// randomness must come from here; nothing in the repository calls the
// global rand functions.
func (s *Simulation) Rand() *rand.Rand { return s.rng }

// Processed returns the number of events fired so far.
func (s *Simulation) Processed() uint64 { return s.processed }

// ScheduleAt schedules fn to run at absolute time at. Scheduling in the past
// panics: it always indicates a protocol bug, and silently reordering time
// would corrupt every experiment built on top.
func (s *Simulation) ScheduleAt(at Time, fn func()) *Event {
	if at < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, s.now))
	}
	e := &Event{at: at, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.queue, e)
	return e
}

// Schedule schedules fn to run after delay d. Negative delays panic.
func (s *Simulation) Schedule(d Duration, fn func()) *Event {
	return s.ScheduleAt(s.now.Add(d), fn)
}

// Cancel removes a pending event. Cancelling an already-fired or
// already-cancelled event is a no-op, which lets protocol code drop timers
// unconditionally.
func (s *Simulation) Cancel(e *Event) {
	if e == nil || e.cancel || e.index < 0 {
		if e != nil {
			e.cancel = true
		}
		return
	}
	e.cancel = true
	heap.Remove(&s.queue, e.index)
}

// Step fires the next pending event and returns true, or returns false if
// the queue is empty or the simulation was stopped.
func (s *Simulation) Step() bool {
	if s.stopped || len(s.queue) == 0 {
		return false
	}
	e := heap.Pop(&s.queue).(*Event)
	s.now = e.at
	s.processed++
	e.fn()
	return true
}

// Run fires events until the queue drains or Stop is called.
func (s *Simulation) Run() {
	for s.Step() {
	}
}

// StepUntil fires the next pending event only if it is scheduled at or
// before deadline. It returns false — firing nothing and leaving the clock
// untouched — when the queue is empty, the simulation is stopped, or the
// next event lies beyond the deadline. This is the bounded building block
// for waits that must never overshoot a virtual-time budget (circuit
// installation, scenario horizons).
func (s *Simulation) StepUntil(deadline Time) bool {
	if s.stopped || len(s.queue) == 0 || s.queue[0].at > deadline {
		return false
	}
	return s.Step()
}

// RunUntil fires events with time ≤ deadline, then advances the clock to the
// deadline. Events scheduled beyond the deadline stay queued.
func (s *Simulation) RunUntil(deadline Time) {
	for s.StepUntil(deadline) {
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// RunFor runs the simulation for a span of virtual time from now.
func (s *Simulation) RunFor(d Duration) { s.RunUntil(s.now.Add(d)) }

// Stop halts Run/RunUntil after the current event returns.
func (s *Simulation) Stop() { s.stopped = true }

// Stopped reports whether Stop has been called.
func (s *Simulation) Stopped() bool { return s.stopped }

// Pending returns the number of queued events.
func (s *Simulation) Pending() int { return len(s.queue) }
