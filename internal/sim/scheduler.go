package sim

import (
	"fmt"
	"math/rand"
)

// Event is a generation-counted handle to a scheduled callback. The zero
// Event is valid and refers to nothing: Cancel on it is a no-op, Pending and
// Cancelled report false. Handles are small values — store and copy them
// freely.
//
// Fired and cancelled events are recycled through an intrusive pool, so a
// handle may outlive the slot it points at. The generation count keeps stale
// handles safe: Cancel on a handle whose event already fired (or was already
// cancelled and its slot reused) is a no-op rather than a corruption of
// whatever event now occupies the slot.
type Event struct {
	n   *eventNode
	gen uint64
	at  Time
}

// Cancelled reports whether this event was cancelled while it was still
// pending. Note one pooling caveat: the bit lives in the recycled slot, so
// it stays accurate only until the slot is reused AND the new occupant is
// itself cancelled — query it promptly (protocol code only ever needs
// Cancel's no-op guarantee, which has no such caveat).
func (e Event) Cancelled() bool { return e.n != nil && e.n.cancelledGen == e.gen }

// Pending reports whether the event is still queued to fire.
func (e Event) Pending() bool {
	return e.n != nil && e.n.gen == e.gen && e.n.cancelledGen != e.gen
}

// Time returns the virtual time the event is (or was) scheduled for.
func (e Event) Time() Time { return e.at }

// eventNode is the pooled representation of a scheduled callback. Nodes are
// owned by the Simulation and cycle through: free list → queued (heap or
// now-queue) → fired/cancelled → free list. gen increments on every
// recycle, invalidating outstanding handles.
type eventNode struct {
	at  Time
	seq uint64 // FIFO tie-break for events at the same instant
	fn  func()
	// index is the node's heap position, or -1 while in the now-queue or
	// the free list.
	index int32
	gen   uint64
	// cancelledGen records which generation of this node was cancelled
	// while pending; compared against handle generations only.
	cancelledGen uint64
	next         *eventNode // free-list link
}

// Simulation is a discrete-event simulation: a virtual clock, an event
// queue, and a deterministic random number source. The zero value is not
// usable; construct with New.
//
// The queue is two structures. Events scheduled for a later instant go into
// a hand-rolled binary heap ordered by (time, seq). Events scheduled for the
// *current* instant — the dominant pattern in busy protocol runs, where a
// firing event cascades into same-timestamp follow-ups — go into a FIFO
// now-queue and bypass the heap entirely. Seq order across the two is
// preserved: a heap entry at the current instant was necessarily scheduled
// before every now-queue entry (otherwise it would be in the now-queue), so
// the heap drains first at each instant.
type Simulation struct {
	now      Time
	heap     []*eventNode
	nowq     []*eventNode
	nowqHead int
	free     *eventNode
	seq      uint64
	live     int // queued, uncancelled events
	rng      *rand.Rand
	stopped  bool
	// processed counts events that have fired, for diagnostics and for
	// runaway-simulation guards in tests.
	processed uint64
}

// New creates a simulation whose random stream is derived from seed.
// Identical seeds give identical runs.
func New(seed int64) *Simulation {
	return &Simulation{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (s *Simulation) Now() Time { return s.now }

// Rand returns the simulation's deterministic random source. All model
// randomness must come from here; nothing in the repository calls the
// global rand functions.
func (s *Simulation) Rand() *rand.Rand { return s.rng }

// Processed returns the number of events fired so far.
func (s *Simulation) Processed() uint64 { return s.processed }

// alloc takes a node from the free list, or makes one.
func (s *Simulation) alloc() *eventNode {
	if n := s.free; n != nil {
		s.free = n.next
		n.next = nil
		return n
	}
	return &eventNode{gen: 1, index: -1}
}

// recycle invalidates all outstanding handles to n and returns it to the
// free list. The closure reference is dropped so it can be collected.
func (s *Simulation) recycle(n *eventNode) {
	n.fn = nil
	n.gen++
	n.index = -1
	n.next = s.free
	s.free = n
}

// ScheduleAt schedules fn to run at absolute time at. Scheduling in the past
// panics: it always indicates a protocol bug, and silently reordering time
// would corrupt every experiment built on top.
func (s *Simulation) ScheduleAt(at Time, fn func()) Event {
	if at < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, s.now))
	}
	n := s.alloc()
	n.at, n.seq, n.fn = at, s.seq, fn
	s.seq++
	s.live++
	if at == s.now {
		n.index = -1
		s.nowq = append(s.nowq, n)
	} else {
		s.heapPush(n)
	}
	return Event{n: n, gen: n.gen, at: at}
}

// Schedule schedules fn to run after delay d. Negative delays panic.
func (s *Simulation) Schedule(d Duration, fn func()) Event {
	return s.ScheduleAt(s.now.Add(d), fn)
}

// Cancel removes a pending event. Cancelling an already-fired or
// already-cancelled event — or the zero Event — is a no-op, which lets
// protocol code drop timers unconditionally.
func (s *Simulation) Cancel(e Event) {
	n := e.n
	if n == nil || n.gen != e.gen || n.cancelledGen == e.gen {
		return
	}
	n.cancelledGen = e.gen
	s.live--
	if n.index >= 0 {
		s.heapRemove(int(n.index))
		s.recycle(n)
	}
	// Now-queue entries are pruned lazily when the queue head is consulted.
}

// pruneNowq discards cancelled entries at the head of the now-queue and
// resets the queue once drained so its capacity is reused.
func (s *Simulation) pruneNowq() {
	for s.nowqHead < len(s.nowq) {
		n := s.nowq[s.nowqHead]
		if n.cancelledGen != n.gen {
			break
		}
		s.nowq[s.nowqHead] = nil
		s.nowqHead++
		s.recycle(n)
	}
	if s.nowqHead == len(s.nowq) && s.nowqHead > 0 {
		s.nowq = s.nowq[:0]
		s.nowqHead = 0
	}
}

// pop removes and returns the next event in (time, seq) order, or nil.
func (s *Simulation) pop() *eventNode {
	s.pruneNowq()
	if len(s.heap) > 0 && (s.heap[0].at == s.now || s.nowqHead >= len(s.nowq)) {
		return s.heapPop()
	}
	if s.nowqHead < len(s.nowq) {
		n := s.nowq[s.nowqHead]
		s.nowq[s.nowqHead] = nil
		s.nowqHead++
		if s.nowqHead == len(s.nowq) {
			s.nowq = s.nowq[:0]
			s.nowqHead = 0
		}
		return n
	}
	return nil
}

// nextTime reports the time of the next pending event.
func (s *Simulation) nextTime() (Time, bool) {
	s.pruneNowq()
	if s.nowqHead < len(s.nowq) {
		return s.now, true
	}
	if len(s.heap) > 0 {
		return s.heap[0].at, true
	}
	return 0, false
}

// fire advances the clock to n, recycles its slot (the event is no longer
// pending once it runs — cancelling it from inside its own callback is a
// no-op), and runs the callback.
func (s *Simulation) fire(n *eventNode) {
	s.now = n.at
	s.processed++
	s.live--
	fn := n.fn
	s.recycle(n)
	fn()
}

// Step fires the next pending event and returns true, or returns false if
// the queue is empty or the simulation was stopped.
func (s *Simulation) Step() bool {
	if s.stopped {
		return false
	}
	n := s.pop()
	if n == nil {
		return false
	}
	s.fire(n)
	return true
}

// Run fires events until the queue drains or Stop is called.
func (s *Simulation) Run() {
	for s.Step() {
	}
}

// StepUntil fires the next pending event only if it is scheduled at or
// before deadline. It returns false — firing nothing and leaving the clock
// untouched — when the queue is empty, the simulation is stopped, or the
// next event lies beyond the deadline. This is the bounded building block
// for waits that must never overshoot a virtual-time budget (circuit
// installation, scenario horizons).
func (s *Simulation) StepUntil(deadline Time) bool {
	if s.stopped {
		return false
	}
	t, ok := s.nextTime()
	if !ok || t > deadline {
		return false
	}
	return s.Step()
}

// RunUntil fires events with time ≤ deadline, then advances the clock to the
// deadline. Events scheduled beyond the deadline stay queued.
func (s *Simulation) RunUntil(deadline Time) {
	for s.StepUntil(deadline) {
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// RunFor runs the simulation for a span of virtual time from now.
func (s *Simulation) RunFor(d Duration) { s.RunUntil(s.now.Add(d)) }

// Stop halts Run/RunUntil after the current event returns.
func (s *Simulation) Stop() { s.stopped = true }

// Stopped reports whether Stop has been called.
func (s *Simulation) Stopped() bool { return s.stopped }

// Pending returns the number of queued events.
func (s *Simulation) Pending() int { return s.live }

// --- Binary heap over (at, seq), no interface boxing ----------------------

func eventLess(a, b *eventNode) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (s *Simulation) heapPush(n *eventNode) {
	n.index = int32(len(s.heap))
	s.heap = append(s.heap, n)
	s.siftUp(len(s.heap) - 1)
}

func (s *Simulation) heapPop() *eventNode {
	n := s.heap[0]
	last := len(s.heap) - 1
	s.heap[0] = s.heap[last]
	s.heap[0].index = 0
	s.heap[last] = nil
	s.heap = s.heap[:last]
	if last > 1 {
		s.siftDown(0)
	}
	n.index = -1
	return n
}

// heapRemove removes the node at position i.
func (s *Simulation) heapRemove(i int) {
	last := len(s.heap) - 1
	if i != last {
		s.heap[i] = s.heap[last]
		s.heap[i].index = int32(i)
	}
	s.heap[last] = nil
	s.heap = s.heap[:last]
	if i < last {
		if !s.siftDown(i) {
			s.siftUp(i)
		}
	}
}

func (s *Simulation) siftUp(i int) {
	n := s.heap[i]
	for i > 0 {
		parent := (i - 1) / 2
		p := s.heap[parent]
		if !eventLess(n, p) {
			break
		}
		s.heap[i] = p
		p.index = int32(i)
		i = parent
	}
	s.heap[i] = n
	n.index = int32(i)
}

// siftDown restores the heap below i; it reports whether the node moved.
func (s *Simulation) siftDown(i int) bool {
	n := s.heap[i]
	start := i
	half := len(s.heap) / 2
	for i < half {
		child := 2*i + 1
		if r := child + 1; r < len(s.heap) && eventLess(s.heap[r], s.heap[child]) {
			child = r
		}
		c := s.heap[child]
		if !eventLess(c, n) {
			break
		}
		s.heap[i] = c
		c.index = int32(i)
		i = child
	}
	s.heap[i] = n
	n.index = int32(i)
	return i > start
}
