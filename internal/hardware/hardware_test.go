package hardware

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"qnp/internal/linalg"
	"qnp/internal/quantum"
	"qnp/internal/sim"
)

// Table 1 parameters must be wired through exactly as published.
func TestTable1Parameters(t *testing.T) {
	s := Simulation()
	if s.Gates.SingleQubitFidelity != 1.0 || s.Gates.SingleQubitTime != 5*sim.Nanosecond {
		t.Error("simulation single-qubit gate params wrong")
	}
	if s.Gates.TwoQubitFidelity != 0.998 || s.Gates.TwoQubitTime != 500*sim.Microsecond {
		t.Error("simulation two-qubit gate params wrong")
	}
	if s.Gates.ElectronInitFidelity != 0.99 || s.Gates.ElectronInitTime != 2*sim.Microsecond {
		t.Error("simulation electron init params wrong")
	}
	if s.Gates.Readout.F0 != 0.998 || s.Gates.Readout.F1 != 0.998 {
		t.Error("simulation readout params wrong")
	}
	n := NearTerm()
	if n.Gates.TwoQubitFidelity != 0.992 {
		t.Error("near-term two-qubit gate fidelity wrong")
	}
	if n.Gates.CarbonRotZTime != 20*sim.Microsecond || n.Gates.CarbonRotZFidelity != 1.0 {
		t.Error("near-term carbon RotZ params wrong")
	}
	if n.Gates.CarbonInitFidelity != 0.95 || n.Gates.CarbonInitTime != 300*sim.Microsecond {
		t.Error("near-term carbon init params wrong")
	}
	if n.Gates.Readout.F0 != 0.95 || n.Gates.Readout.F1 != 0.995 {
		t.Error("near-term readout params wrong")
	}
}

// Table 2 parameters likewise.
func TestTable2Parameters(t *testing.T) {
	s := Simulation()
	if s.Electron.T2 != 60 || s.Electron.T1 != 3600 {
		t.Error("simulation electron lifetimes wrong")
	}
	if s.Photon.TauWindow != 25*sim.Nanosecond || s.Photon.TauEmission != 6*sim.Nanosecond {
		t.Error("simulation photon timings wrong")
	}
	if math.Abs(s.Photon.DeltaPhi-2*math.Pi/180) > 1e-12 {
		t.Error("simulation Δφ wrong")
	}
	if s.Photon.PZeroPhonon != 0.75 || s.Photon.CollectionEff != 20e-3 ||
		s.Photon.PDetection != 0.8 || s.Photon.Visibility != 1.0 ||
		s.Photon.DarkCountRate != 20 || s.Photon.PDoubleExcitation != 0 {
		t.Error("simulation photon params wrong")
	}
	n := NearTerm()
	if n.Electron.T2 != 1.46 || n.Carbon.T2 != 60 || n.Carbon.T1 != 360 {
		t.Error("near-term lifetimes wrong")
	}
	if n.Photon.PZeroPhonon != 0.46 || n.Photon.CollectionEff != 4.38e-3 ||
		n.Photon.Visibility != 0.9 || n.Photon.PDoubleExcitation != 0.04 {
		t.Error("near-term photon params wrong")
	}
	if !n.HasCarbon || s.HasCarbon {
		t.Error("HasCarbon flags wrong")
	}
}

func TestSwapDurations(t *testing.T) {
	s := Simulation()
	want := 500*sim.Microsecond + 5*sim.Nanosecond + 2*sim.Duration(3700)
	if got := s.SwapDuration(); got != want {
		t.Errorf("SwapDuration = %v, want %v", got, want)
	}
	n := NearTerm()
	if got := n.MoveDuration(); got != 300*sim.Microsecond+500*sim.Microsecond {
		t.Errorf("MoveDuration = %v", got)
	}
	cfg := s.SwapConfig()
	if cfg.TwoQubitFidelity != 0.998 || cfg.Readout.F0 != 0.998 {
		t.Error("SwapConfig extraction wrong")
	}
}

func TestLinkGeometry(t *testing.T) {
	lab := LabLink()
	if lab.LengthM != 2 || lab.LossDBPerKm != 5 {
		t.Error("lab link config wrong")
	}
	// 2 m at 2e8 m/s = 10 ns one-way.
	if got := lab.PropagationDelay(); got != 10*sim.Nanosecond {
		t.Errorf("lab propagation delay = %v", got)
	}
	tele := TelecomLink(25000)
	if got := tele.PropagationDelay(); got != 125*sim.Microsecond {
		t.Errorf("telecom propagation delay = %v", got)
	}
	// Transmission to midpoint: 12.5 km at 0.5 dB/km = 6.25 dB.
	want := math.Pow(10, -0.625)
	if got := tele.Transmission(); math.Abs(got-want) > 1e-12 {
		t.Errorf("telecom transmission = %v, want %v", got, want)
	}
	if lab.Transmission() < 0.98 {
		t.Errorf("lab transmission = %v, want ≈1", lab.Transmission())
	}
}

// Fig. 5 calibration: a fidelity-0.95 pair over 2 m of fibre takes ≈10 ms on
// average, and ≈95% of pairs arrive within 30 ms (exponential tail: the 95th
// percentile of a geometric distribution sits at ≈3× the mean).
func TestFig5Calibration(t *testing.T) {
	p := Simulation()
	l := LabLink()
	mean, ok := l.ExpectedPairTime(p, 0.95)
	if !ok {
		t.Fatal("link cannot produce F=0.95")
	}
	if mean < 5*sim.Millisecond || mean > 20*sim.Millisecond {
		t.Errorf("expected pair time at F=0.95 = %v, want ≈10ms", mean)
	}
	t95 := mean.Scale(3)
	if t95 > 60*sim.Millisecond {
		t.Errorf("95th percentile ≈ %v, want tens of ms", t95)
	}
}

func TestFidelityRateTradeoff(t *testing.T) {
	p := Simulation()
	l := LabLink()
	// Higher fidelity must require smaller α and therefore lower rate.
	a80, ok1 := l.AlphaForFidelity(p, 0.80)
	a95, ok2 := l.AlphaForFidelity(p, 0.95)
	if !ok1 || !ok2 {
		t.Fatal("AlphaForFidelity failed")
	}
	if a95 >= a80 {
		t.Errorf("α(F=0.95)=%v not below α(F=0.80)=%v", a95, a80)
	}
	t80, _ := l.ExpectedPairTime(p, 0.80)
	t95, _ := l.ExpectedPairTime(p, 0.95)
	if t95 <= t80 {
		t.Errorf("F=0.95 pairs (%v) not slower than F=0.80 pairs (%v)", t95, t80)
	}
}

func TestAlphaForFidelityInversion(t *testing.T) {
	p := Simulation()
	l := LabLink()
	for _, f := range []float64{0.6, 0.8, 0.9, 0.95, 0.98} {
		a, ok := l.AlphaForFidelity(p, f)
		if !ok {
			t.Fatalf("cannot reach F=%v", f)
		}
		got := l.Model(p, a).Fidelity()
		if math.Abs(got-f) > 1e-6 && got < f {
			t.Errorf("α inversion for F=%v gives fidelity %v", f, got)
		}
	}
	// Unreachable fidelity is reported as such.
	if _, ok := l.AlphaForFidelity(p, 0.99999); ok {
		t.Error("impossible fidelity accepted")
	}
	// The achievable ceiling sits just below 0.99: the dark-count floor
	// (≈1e-6 per window) and the emission trade-off cap it at ≈0.987.
	_, maxF := l.MaxFidelity(p)
	if maxF < 0.97 || maxF >= 1 {
		t.Errorf("max fidelity = %v, want ≈0.987", maxF)
	}
}

// The produced state's exact fidelity matches the closed-form model.
func TestPairStateMatchesModel(t *testing.T) {
	p := Simulation()
	l := LabLink()
	for _, alpha := range []float64{0.01, 0.05, 0.2, 0.4} {
		m := l.Model(p, alpha)
		for _, idx := range []quantum.BellIndex{quantum.PsiPlus, quantum.PsiMinus} {
			rho := m.State(idx)
			if got := real(linalg.Trace(rho)); math.Abs(got-1) > 1e-9 {
				t.Fatalf("trace = %v", got)
			}
			if !linalg.IsHermitian(rho, 1e-9) {
				t.Fatal("state not hermitian")
			}
			if got := quantum.Fidelity(rho, idx); math.Abs(got-m.Fidelity()) > 1e-9 {
				t.Errorf("α=%v idx=%v: state fidelity %v, model %v", alpha, idx, got, m.Fidelity())
			}
			if quantum.DominantBell(rho) != idx {
				t.Errorf("α=%v: dominant Bell is not the heralded %v", alpha, idx)
			}
		}
	}
}

// TestPairModelFidelityMatchesStateW pins the consistency of the two
// independently computed sides of the pair model — the closed-form
// PairModel.Fidelity() and the Bell-diagonal element ⟨B_idx|ρ|B_idx⟩ of
// the materialised StateW output — across the parameter grid, including
// operating points where the dark-count herald fraction is significant
// (long telecom links at small α push WDark well above zero). The Werner
// engine seeds its scalar from Fidelity() while the exact engine carries
// StateW, so a divergence here would silently skew every cross-engine
// comparison.
func TestPairModelFidelityMatchesStateW(t *testing.T) {
	ws := linalg.NewWorkspace()
	sawDark := false
	for _, hw := range []struct {
		name   string
		params Params
	}{{"simulation", Simulation()}, {"nearterm", NearTerm()}} {
		for _, lc := range []struct {
			name string
			link LinkConfig
		}{{"lab", LabLink()}, {"telecom-25km", TelecomLink(25000)}, {"telecom-50km", TelecomLink(50000)}} {
			for _, alpha := range []float64{1e-6, 1e-4, 0.01, 0.05, 0.2, 0.4} {
				m := lc.link.Model(hw.params, alpha)
				if m.SuccessProb <= 0 {
					continue
				}
				if m.WDark > 0.01 {
					sawDark = true
				}
				for _, idx := range []quantum.BellIndex{quantum.PsiPlus, quantum.PsiMinus} {
					rho := m.StateW(ws, idx)
					got := quantum.Fidelity(rho, idx)
					if math.Abs(got-m.Fidelity()) > 1e-12 {
						t.Errorf("%s/%s α=%v idx=%v (wDark=%.3g): ⟨B|ρ|B⟩ = %v, Fidelity() = %v",
							hw.name, lc.name, alpha, idx, m.WDark, got, m.Fidelity())
					}
					ws.Put(rho)
				}
			}
		}
	}
	if !sawDark {
		t.Fatal("parameter grid never reached a significant dark-count fraction; widen it")
	}
}

func TestGenerateHeraldsBothSigns(t *testing.T) {
	p := Simulation()
	l := LabLink()
	rng := rand.New(rand.NewSource(1))
	counts := map[quantum.BellIndex]int{}
	for i := 0; i < 200; i++ {
		rho, idx := l.Generate(p, 0.05, rng)
		if idx != quantum.PsiPlus && idx != quantum.PsiMinus {
			t.Fatalf("heralded index %v", idx)
		}
		if quantum.Fidelity(rho, idx) < 0.9 {
			t.Fatal("generated state does not match herald")
		}
		counts[idx]++
	}
	if counts[quantum.PsiPlus] < 50 || counts[quantum.PsiMinus] < 50 {
		t.Errorf("herald sign counts unbalanced: %v", counts)
	}
}

func TestSampleAttemptsGeometric(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const p = 0.01
	const n = 20000
	var sum float64
	for i := 0; i < n; i++ {
		k := SampleAttempts(p, rng)
		if k < 1 {
			t.Fatal("attempts < 1")
		}
		sum += float64(k)
	}
	mean := sum / n
	if mean < 90 || mean > 110 {
		t.Errorf("geometric mean = %v, want ≈100", mean)
	}
	if SampleAttempts(1, rng) != 1 {
		t.Error("p=1 must succeed on first attempt")
	}
	if SampleAttempts(0, rng) < math.MaxInt32 {
		t.Error("p=0 must never succeed")
	}
}

func TestAttemptsWithin(t *testing.T) {
	p := Simulation()
	l := LabLink()
	ct := l.CycleTime(p)
	if got := l.AttemptsWithin(p, 10*ct); got != 10 {
		t.Errorf("AttemptsWithin = %d, want 10", got)
	}
}

// Near-term hardware produces lower fidelities and lower rates — the regime
// of Fig. 11.
func TestNearTermRegime(t *testing.T) {
	p := NearTerm()
	l := TelecomLink(25000)
	_, maxF := l.MaxFidelity(p)
	if maxF > 0.95 {
		t.Errorf("near-term max fidelity %v implausibly high", maxF)
	}
	if maxF < 0.7 {
		t.Errorf("near-term max fidelity %v too low to be useful", maxF)
	}
	mean, ok := l.ExpectedPairTime(p, 0.75)
	if !ok {
		t.Fatal("near-term link cannot reach F=0.75")
	}
	if mean < 100*sim.Millisecond || mean > 10*sim.Second {
		t.Errorf("near-term pair time at F=0.75 = %v, want ≈1s scale", mean)
	}
}

// Property: fidelity decreases monotonically with α on the operating branch,
// and success probability increases.
func TestQuickMonotoneTradeoff(t *testing.T) {
	p := Simulation()
	l := LabLink()
	peakA, _ := l.MaxFidelity(p)
	f := func(raw1, raw2 uint16) bool {
		a1 := peakA + (0.5-peakA)*float64(raw1)/65535
		a2 := peakA + (0.5-peakA)*float64(raw2)/65535
		if a1 > a2 {
			a1, a2 = a2, a1
		}
		m1, m2 := l.Model(p, a1), l.Model(p, a2)
		return m1.Fidelity() >= m2.Fidelity()-1e-12 && m1.SuccessProb <= m2.SuccessProb+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Error(err)
	}
}
