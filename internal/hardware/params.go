// Package hardware models the nitrogen-vacancy (NV) centre repeater platform
// the paper evaluates on: the quantum gate and memory parameters of Tables 1
// and 2, and the single-click heralded entanglement generation scheme whose
// bright-state population α is the paper's fidelity-versus-rate knob ("some
// implementations are able to vary the fidelity of the produced pairs though
// higher fidelities come at the cost of reduced rates").
package hardware

import (
	"math"

	"qnp/internal/quantum"
	"qnp/internal/sim"
)

// GateParams are the quantum gate parameters of Table 1.
type GateParams struct {
	// SingleQubit is the electron single-qubit gate.
	SingleQubitFidelity float64
	SingleQubitTime     sim.Duration
	// TwoQubit is the electron-carbon controlled gate used for swaps, moves
	// and distillation.
	TwoQubitFidelity float64
	TwoQubitTime     sim.Duration
	// CarbonRotZ exists only on the near-term platform.
	CarbonRotZFidelity float64
	CarbonRotZTime     sim.Duration
	// Electron/carbon initialisation in |0>.
	ElectronInitFidelity float64
	ElectronInitTime     sim.Duration
	CarbonInitFidelity   float64
	CarbonInitTime       sim.Duration
	// Readout is the electron readout model; Readout0/1 fidelities may be
	// asymmetric (near-term column of Table 1).
	Readout     quantum.Readout
	ReadoutTime sim.Duration
}

// Lifetimes are T1/T2* memory coherence times in seconds (Table 2). A zero
// value means "effectively infinite" (no decay of that kind).
type Lifetimes struct {
	T1, T2 float64
}

// PhotonParams are the photonic interface parameters of Table 2.
type PhotonParams struct {
	// TauWindow (τ_w) is the detection window.
	TauWindow sim.Duration
	// TauEmission (τ_e) is the photon emission time.
	TauEmission sim.Duration
	// DeltaPhi is the optical phase uncertainty in radians (Table 2 lists
	// degrees).
	DeltaPhi float64
	// PDoubleExcitation is the probability of emitting two photons.
	PDoubleExcitation float64
	// PZeroPhonon is the zero-phonon-line fraction of useful photons.
	PZeroPhonon float64
	// CollectionEff is the photon collection efficiency into the fibre.
	CollectionEff float64
	// DarkCountRate is the detector dark-count rate in counts/second.
	DarkCountRate float64
	// PDetection is the detector efficiency.
	PDetection float64
	// Visibility is the two-photon indistinguishability.
	Visibility float64
}

// Params bundles the per-node hardware model: one of the two columns of
// Tables 1 and 2.
type Params struct {
	Name     string
	Gates    GateParams
	Electron Lifetimes
	Carbon   Lifetimes
	Photon   PhotonParams
	// HasCarbon reports whether the platform exposes carbon storage qubits.
	// The main evaluation treats all qubits as communication (electron)
	// qubits; the near-term platform has one electron plus carbon storage.
	HasCarbon bool
	// AttemptDephasingProb is the phase-flip probability applied to stored
	// carbon qubits per entanglement generation attempt — the nuclear-spin
	// dephasing of Kalb et al. that the paper's §5.3 must cope with. Zero on
	// the idealised platform. The raw per-attempt kick is
	// (1−exp(−(Δω·τ_d)²/2))/2 ≈ 4.7e-3; the stored value divides by a
	// decoherence-protection factor (decoupled storage) so that the 1/e
	// storage budget is ≈2×10⁴ attempts, in line with protected nuclear
	// memories. See DESIGN.md §2.
	AttemptDephasingProb float64
}

// SwapConfig extracts the noise configuration for entanglement swaps and
// other Bell-measurement circuits on this hardware.
func (p Params) SwapConfig() quantum.SwapConfig {
	return quantum.SwapConfig{
		TwoQubitFidelity:    p.Gates.TwoQubitFidelity,
		SingleQubitFidelity: p.Gates.SingleQubitFidelity,
		Readout:             p.Gates.Readout,
	}
}

// SwapDuration is the wall-clock (simulated) time of an entanglement swap:
// the two-qubit gate, the basis-change single-qubit gate, and two readouts.
func (p Params) SwapDuration() sim.Duration {
	return p.Gates.TwoQubitTime + p.Gates.SingleQubitTime + 2*p.Gates.ReadoutTime
}

// MoveDuration is the time to move a communication-qubit state into carbon
// storage (two-qubit gate plus carbon initialisation).
func (p Params) MoveDuration() sim.Duration {
	return p.Gates.CarbonInitTime + p.Gates.TwoQubitTime
}

// Simulation returns the left ("Simulation") column of Tables 1 and 2: the
// optimistic configuration used for §5.1 and §5.2 — parameters beyond current
// hardware chosen to produce higher fidelities while retaining comparable
// rates.
func Simulation() Params {
	return Params{
		Name: "simulation",
		Gates: GateParams{
			SingleQubitFidelity:  1.0,
			SingleQubitTime:      5 * sim.Nanosecond,
			TwoQubitFidelity:     0.998,
			TwoQubitTime:         500 * sim.Microsecond,
			ElectronInitFidelity: 0.99,
			ElectronInitTime:     2 * sim.Microsecond,
			Readout:              quantum.Readout{F0: 0.998, F1: 0.998},
			ReadoutTime:          sim.Duration(3700),
		},
		Electron: Lifetimes{T1: 3600, T2: 60},
		Photon: PhotonParams{
			TauWindow:         25 * sim.Nanosecond,
			TauEmission:       6 * sim.Nanosecond,
			DeltaPhi:          2.0 * math.Pi / 180,
			PDoubleExcitation: 0.0,
			PZeroPhonon:       0.75,
			CollectionEff:     20.0e-3,
			DarkCountRate:     20,
			PDetection:        0.8,
			Visibility:        1.0,
		},
	}
}

// NearTerm returns the right ("Near-term") column of Tables 1 and 2: the
// currently-achievable parameters used for the §5.3 near-future hardware
// evaluation (Fig. 11).
func NearTerm() Params {
	return Params{
		Name: "near-term",
		Gates: GateParams{
			SingleQubitFidelity:  1.0,
			SingleQubitTime:      5 * sim.Nanosecond,
			TwoQubitFidelity:     0.992,
			TwoQubitTime:         500 * sim.Microsecond,
			CarbonRotZFidelity:   1.0,
			CarbonRotZTime:       20 * sim.Microsecond,
			ElectronInitFidelity: 0.99,
			ElectronInitTime:     2 * sim.Microsecond,
			CarbonInitFidelity:   0.95,
			CarbonInitTime:       300 * sim.Microsecond,
			Readout:              quantum.Readout{F0: 0.95, F1: 0.995},
			ReadoutTime:          sim.Duration(3700),
		},
		Electron: Lifetimes{T1: 3600, T2: 1.46},
		Carbon:   Lifetimes{T1: 6 * 60, T2: 60},
		Photon: PhotonParams{
			TauWindow:         25 * sim.Nanosecond,
			TauEmission:       6 * sim.Nanosecond, // 6.48 ns rounded to ns resolution
			DeltaPhi:          10.6 * math.Pi / 180,
			PDoubleExcitation: 0.04,
			PZeroPhonon:       0.46,
			CollectionEff:     4.38e-3,
			DarkCountRate:     20,
			PDetection:        0.8,
			Visibility:        0.9,
		},
		HasCarbon: true,
		// Raw kick (1−exp(−(Δω·τ_d)²/2))/2 ≈ 4.7e-3 with Δω = 2π·377 kHz and
		// τ_d = 82 ns, divided by a protection factor of ≈190, for a 1/e
		// storage budget of ≈2×10⁴ attempts.
		AttemptDephasingProb: 2.5e-5,
	}
}
