package hardware

import (
	"math"
	"math/rand"

	"qnp/internal/linalg"
	"qnp/internal/quantum"
	"qnp/internal/sim"
)

// SpeedOfLightFibre is the signal velocity in standard telecom fibre, m/s.
const SpeedOfLightFibre = 2.0e8

// LinkConfig describes the physical channel between two neighbouring nodes:
// the fibre and the heralding geometry. The heralding station sits at the
// fibre midpoint (single-click scheme): each node emits a photon entangled
// with its spin, the photons interfere at the midpoint, and a single detector
// click heralds a spin-spin entangled pair.
type LinkConfig struct {
	// LengthM is the node-to-node fibre length in metres.
	LengthM float64
	// LossDBPerKm is the fibre attenuation. The paper uses 5 dB/km for the
	// lab (2 m, no frequency conversion) and 0.5 dB/km for telecom
	// wavelength (25 km, near-term scenario).
	LossDBPerKm float64
	// CycleOverhead is the per-attempt overhead beyond photon emission and
	// travel: phase stabilisation, spin pumping/reset. It calibrates the
	// attempt rate; see DESIGN.md (Fig. 5 calibration).
	CycleOverhead sim.Duration
}

// LabLink is the link used by the main evaluation: 2 m of fibre, no
// frequency conversion. The 10 µs cycle overhead calibrates the attempt rate
// so that a fidelity-0.95 pair takes ≈10 ms on average (paper Fig. 5).
func LabLink() LinkConfig {
	return LinkConfig{LengthM: 2, LossDBPerKm: 5, CycleOverhead: 10 * sim.Microsecond}
}

// TelecomLink is the near-term scenario's 25 km telecom-wavelength link.
func TelecomLink(lengthM float64) LinkConfig {
	return LinkConfig{LengthM: lengthM, LossDBPerKm: 0.5, CycleOverhead: 10 * sim.Microsecond}
}

// PropagationDelay is the one-way classical/photonic signal delay across the
// full link.
func (l LinkConfig) PropagationDelay() sim.Duration {
	return sim.DurationFromSeconds(l.LengthM / SpeedOfLightFibre)
}

// CycleTime is the duration of one entanglement generation attempt: electron
// initialisation, photon emission, photon travel to the midpoint and the
// heralding signal back, plus the calibration overhead.
func (l LinkConfig) CycleTime(p Params) sim.Duration {
	return p.Gates.ElectronInitTime + p.Photon.TauEmission + l.PropagationDelay() + l.CycleOverhead
}

// Transmission is the photon survival probability from node to midpoint.
func (l LinkConfig) Transmission() float64 {
	halfKm := l.LengthM / 2 / 1000
	return math.Pow(10, -l.LossDBPerKm*halfKm/10)
}

// Eta is the total per-photon detection efficiency: collection into the
// fibre, the zero-phonon-line fraction, fibre transmission to the midpoint
// and detector efficiency.
func (l LinkConfig) Eta(p Params) float64 {
	return p.Photon.CollectionEff * p.Photon.PZeroPhonon * l.Transmission() * p.Photon.PDetection
}

// SuccessProb is the per-attempt heralding probability for bright-state
// population α: 2αη for a real photon, plus the (tiny) dark-count rate.
func (l LinkConfig) SuccessProb(p Params, alpha float64) float64 {
	return 2*alpha*l.Eta(p) + l.darkProb(p)
}

// darkProb is the probability of a dark-count click in the detection window
// (two detectors).
func (l LinkConfig) darkProb(p Params) float64 {
	return 2 * p.Photon.DarkCountRate * p.Photon.TauWindow.Seconds()
}

// coherence is the off-diagonal survival factor of the heralded pair:
// interferometer visibility times the Gaussian phase-noise factor
// exp(−Δφ²/2).
func (p PhotonParams) coherence() float64 {
	return p.Visibility * math.Exp(-p.DeltaPhi*p.DeltaPhi/2)
}

// PairModel describes the state produced by a heralded attempt, before any
// decoherence: the components of
//
//	ρ = wReal·[ g·ρ_Ψ(v) + (1−g)·|11><11| ] + wDark·I/4
//
// where ρ_Ψ(v) is the heralded Ψ state with coherence v, g = 1 − α − p_de
// is the fraction of heralds leaving the spins in the entangled subspace,
// and wDark is the fraction of heralds caused by dark counts.
type PairModel struct {
	Alpha       float64
	V           float64 // coherence of the Ψ component
	G           float64 // good fraction among real heralds
	WDark       float64 // dark-count herald fraction
	SuccessProb float64
}

// Model computes the produced-state model for a given α.
func (l LinkConfig) Model(p Params, alpha float64) PairModel {
	pm := PairModel{Alpha: alpha, V: p.Photon.coherence()}
	real2 := 2 * alpha * l.Eta(p)
	dark := l.darkProb(p)
	pm.SuccessProb = real2 + dark
	if pm.SuccessProb > 0 {
		pm.WDark = dark / pm.SuccessProb
	}
	pm.G = 1 - alpha - p.Photon.PDoubleExcitation
	if pm.G < 0 {
		pm.G = 0
	}
	return pm
}

// Fidelity is the expected fidelity of the produced pair with its heralded
// Bell state: wReal·g·(1+v)/2 + wDark/4.
func (m PairModel) Fidelity() float64 {
	return (1-m.WDark)*m.G*(1+m.V)/2 + m.WDark/4
}

// State materialises the produced 4×4 density matrix for heralded Bell
// index idx (Ψ+ or Ψ−; the detector that clicks selects the sign).
func (m PairModel) State(idx quantum.BellIndex) *linalg.Matrix {
	return m.StateW(nil, idx)
}

// identity4 is the shared read-only 4×4 identity for StateW's dark-count
// term.
var identity4 = linalg.Identity(4)

// StateW is the workspace-threaded State: scratch comes from ws and the
// returned state is a fresh ws matrix whose ownership transfers to the
// caller (it becomes the new pair's long-lived density matrix). Results are
// bit-identical to State.
func (m PairModel) StateW(ws *linalg.Workspace, idx quantum.BellIndex) *linalg.Matrix {
	// Dephased Ψ component: v·|Ψ><Ψ| + (1−v)·(|Ψ_+><Ψ_+|+|Ψ_-><Ψ_-|)/2,
	// which equals the fully dephased {|01>,|10>} mixture at v=0.
	other := idx ^ 2 // flip the phase bit: Ψ+ ↔ Ψ−
	dep := ws.GetRaw(4, 4)
	t := ws.GetRaw(4, 4)
	linalg.ScaleInto(dep, complex((1+m.V)/2, 0), quantum.BellProjectorCached(idx))
	linalg.ScaleInto(t, complex((1-m.V)/2, 0), quantum.BellProjectorCached(other))
	dep.AddInPlace(t)
	bright := ws.Get(4, 4)
	bright.Set(3, 3, 1) // |11><11|
	rho := ws.GetRaw(4, 4)
	linalg.ScaleInto(dep, complex((1-m.WDark)*m.G, 0), dep)
	linalg.ScaleInto(bright, complex((1-m.WDark)*(1-m.G), 0), bright)
	linalg.AddInto(rho, dep, bright)
	linalg.ScaleInto(t, complex(m.WDark/4, 0), identity4)
	rho.AddInPlace(t)
	ws.Put(dep)
	ws.Put(t)
	ws.Put(bright)
	return rho
}

// Generate samples one heralded pair: the Bell index (Ψ+ or Ψ− with equal
// probability, chosen by which detector clicked) and the produced state.
func (l LinkConfig) Generate(p Params, alpha float64, rng *rand.Rand) (*linalg.Matrix, quantum.BellIndex) {
	rho, idx := l.GenerateW(nil, p, alpha, rng)
	return rho, idx
}

// GenerateW is the workspace-threaded Generate; the returned state is a ws
// matrix owned by the caller.
func (l LinkConfig) GenerateW(ws *linalg.Workspace, p Params, alpha float64, rng *rand.Rand) (*linalg.Matrix, quantum.BellIndex) {
	idx := quantum.PsiPlus
	if rng.Intn(2) == 1 {
		idx = quantum.PsiMinus
	}
	return l.Model(p, alpha).StateW(ws, idx), idx
}

// MaxFidelity returns the largest fidelity this link can produce and the α
// that achieves it. Fidelity is not monotone at the extreme low-α end (dark
// counts dominate when almost no photons are emitted), so the peak is found
// by scanning.
func (l LinkConfig) MaxFidelity(p Params) (alpha, fid float64) {
	best, bestA := -1.0, 0.0
	for i := 0; i <= 400; i++ {
		// Log-spaced α from 1e-6 to 0.5.
		a := math.Exp(math.Log(1e-6) + (math.Log(0.5)-math.Log(1e-6))*float64(i)/400)
		if f := l.Model(p, a).Fidelity(); f > best {
			best, bestA = f, a
		}
	}
	return bestA, best
}

// AlphaForFidelity inverts the fidelity model: it returns the α producing
// pairs of the requested fidelity (on the fast, decreasing branch above the
// dark-count peak), or ok=false if the link cannot reach it. Routing uses
// this to translate a link min-fidelity into a link-layer request.
func (l LinkConfig) AlphaForFidelity(p Params, f float64) (alpha float64, ok bool) {
	peakA, peakF := l.MaxFidelity(p)
	if f > peakF {
		return 0, false
	}
	lo, hi := peakA, 0.5
	if l.Model(p, hi).Fidelity() > f {
		return hi, true // even the fastest setting beats the request
	}
	for i := 0; i < 80; i++ {
		mid := (lo + hi) / 2
		if l.Model(p, mid).Fidelity() >= f {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, true
}

// SampleAttempts draws the number of attempts until the first success from
// the geometric distribution with per-attempt probability prob. The fast
// path for the simulator: a full generation round becomes a single event
// k·CycleTime later rather than k per-attempt events.
func SampleAttempts(prob float64, rng *rand.Rand) int {
	if prob <= 0 {
		return math.MaxInt32
	}
	if prob >= 1 {
		return 1
	}
	u := rng.Float64()
	// P(K > k) = (1-p)^k ⇒ K = ceil(log(1-u)/log(1-p)).
	k := int(math.Ceil(math.Log(1-u) / math.Log(1-prob)))
	if k < 1 {
		k = 1
	}
	return k
}

// AttemptsWithin returns the number of attempts that fit in a time budget.
func (l LinkConfig) AttemptsWithin(p Params, budget sim.Duration) int {
	ct := l.CycleTime(p)
	if ct <= 0 {
		return 0
	}
	return int(budget / ct)
}

// ExpectedPairTime is the mean time to generate one pair at fidelity f
// (attempt cycle divided by success probability). Routing uses it to compute
// achievable link-pair rates.
func (l LinkConfig) ExpectedPairTime(p Params, f float64) (sim.Duration, bool) {
	a, ok := l.AlphaForFidelity(p, f)
	if !ok {
		return 0, false
	}
	prob := l.SuccessProb(p, a)
	return l.CycleTime(p).Scale(1 / prob), true
}
