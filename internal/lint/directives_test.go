package lint

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseSrc extracts directives from a one-file package built around the
// given comment lines.
func parseSrc(t *testing.T, comments ...string) []directive {
	t.Helper()
	src := "package p\n\n" + strings.Join(comments, "\n") + "\n"
	f, err := parser.ParseFile(token.NewFileSet(), "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return parseDirectives(f)
}

func TestDirectiveGrammar(t *testing.T) {
	cases := []struct {
		comment   string
		analyzer  string // valid directives: suppressed analyzer
		reason    string
		malformed string // substring of the grammar error, "" if valid
	}{
		{"//qnetlint:allow detrand replays a recorded trace", "detrand", "replays a recorded trace", ""},
		{"//qnetlint:sorted keys feed a commutative integer count", "maporder", "keys feed a commutative integer count", ""},
		{"//qnetlint:allow detrand", "detrand", "", "no reason"},
		{"//qnetlint:allow", "", "", "names no analyzer"},
		{"//qnetlint:sorted", "maporder", "", "no reason"},
		{"//qnetlint:frobnicate stuff", "", "", "unknown qnetlint directive verb"},
		{"//qnetlint:", "", "", "missing verb"},
	}
	for _, c := range cases {
		ds := parseSrc(t, c.comment)
		if len(ds) != 1 {
			t.Errorf("%q parsed to %d directives, want 1", c.comment, len(ds))
			continue
		}
		d := ds[0]
		if c.malformed == "" {
			if d.malformed != "" {
				t.Errorf("%q unexpectedly malformed: %s", c.comment, d.malformed)
			}
			if d.analyzer != c.analyzer || d.reason != c.reason {
				t.Errorf("%q = (%q, %q), want (%q, %q)", c.comment, d.analyzer, d.reason, c.analyzer, c.reason)
			}
			continue
		}
		if d.malformed == "" {
			t.Errorf("%q parsed clean; want grammar error containing %q (reason=%q)", c.comment, c.malformed, d.reason)
		} else if !strings.Contains(d.malformed, c.malformed) {
			t.Errorf("%q error = %q, want it to contain %q", c.comment, d.malformed, c.malformed)
		}
	}
}

// A plain comment that merely mentions qnetlint is not a directive, and a
// spaced "// qnetlint:allow" reads as prose, not grammar.
func TestDirectiveRequiresExactPrefix(t *testing.T) {
	if ds := parseSrc(t, "// qnetlint:allow detrand spaced out", "// the qnetlint suite"); len(ds) != 0 {
		t.Errorf("non-directive comments parsed to %d directives, want 0", len(ds))
	}
}
