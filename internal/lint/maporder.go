package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"qnp/internal/lint/analysis"
)

// MapOrderAnalyzer flags `for range` statements over maps whose body is
// order-sensitive: accumulating floating-point values (float addition does
// not commute bit-exactly), emitting output, feeding the internal/stats
// aggregates, or building a slice that is never sorted afterwards. Go
// randomises map iteration order per run, so any such fold diverges between
// replicas, shard layouts and reruns — the exact bug class PR 8 hit in the
// allocation sums. The sanctioned pattern is collect-then-sort: append the
// keys, sort them, iterate the sorted slice. A deliberately
// order-insensitive iteration is annotated //qnetlint:sorted <reason>.
var MapOrderAnalyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc: "flag order-sensitive folds over map iteration\n\n" +
		"A `for range` over a map may not accumulate floats, print, feed\n" +
		"stats aggregates, or append to a slice that is never sorted: map\n" +
		"order is randomised per run, so the result depends on it. Collect\n" +
		"keys, sort, then fold — or justify with //qnetlint:sorted <reason>.",
	Run: runMapOrder,
}

func runMapOrder(pass *analysis.Pass) (interface{}, error) {
	sup := newSuppressor(pass)
	for _, f := range pass.Files {
		// Each function (declaration or literal) is its own scope: map
		// ranges are matched against sort calls in the same body.
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch n := n.(type) {
			case *ast.FuncDecl:
				body = n.Body
			case *ast.FuncLit:
				body = n.Body
			default:
				return true
			}
			if body != nil {
				checkMapRangesIn(pass, sup, body)
			}
			return true
		})
	}
	return nil, nil
}

// checkMapRangesIn scans one function body (excluding nested function
// literals, which get their own scan) for order-sensitive map ranges.
func checkMapRangesIn(pass *analysis.Pass, sup *suppressor, body *ast.BlockStmt) {
	walkSameFunc(body, func(n ast.Node) {
		rs, ok := n.(*ast.RangeStmt)
		if !ok || !rangesOverMap(pass, rs) {
			return
		}
		if sup.suppressed(rs.Pos()) {
			return
		}
		checkMapRangeBody(pass, sup, body, rs)
	})
}

// walkSameFunc visits every node under root except the bodies of nested
// function literals.
func walkSameFunc(root ast.Node, visit func(ast.Node)) {
	ast.Inspect(root, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != root {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}

func rangesOverMap(pass *analysis.Pass, rs *ast.RangeStmt) bool {
	t := pass.TypesInfo.TypeOf(rs.X)
	if t == nil {
		return false
	}
	_, isMap := t.Underlying().(*types.Map)
	return isMap
}

// checkMapRangeBody reports the order-sensitive operations inside one map
// range. enclosing is the function body the loop lives in — the scope
// searched for a later sort call that sanctions collected slices.
func checkMapRangeBody(pass *analysis.Pass, sup *suppressor, enclosing *ast.BlockStmt, rs *ast.RangeStmt) {
	info := pass.TypesInfo
	walkSameFunc(rs.Body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.AssignStmt:
			switch n.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				if isFloatLike(info.TypeOf(n.Lhs[0])) {
					sup.report(n.Pos(), "floating-point accumulation inside a map range: float folds are not order-independent and map order is random per run — collect keys, sort, then accumulate (//qnetlint:sorted <reason> if truly order-insensitive)")
				}
			case token.ASSIGN:
				// x = x + y (and -,*,/) over floats is the same fold.
				if len(n.Lhs) == 1 && len(n.Rhs) == 1 && isFloatLike(info.TypeOf(n.Lhs[0])) {
					if be, ok := n.Rhs[0].(*ast.BinaryExpr); ok && isArith(be.Op) && mentionsSameObject(info, be, n.Lhs[0]) {
						sup.report(n.Pos(), "floating-point accumulation inside a map range: float folds are not order-independent and map order is random per run — collect keys, sort, then accumulate (//qnetlint:sorted <reason> if truly order-insensitive)")
					}
				}
			default:
			}
			// append to a slice declared outside the loop: the element
			// order is the (random) map order unless sorted afterwards.
			if call := appendCall(n); call != nil {
				if id, ok := n.Lhs[0].(*ast.Ident); ok {
					obj := info.ObjectOf(id)
					if obj != nil && !within(obj.Pos(), rs) && !sortedLater(pass, enclosing, rs, obj) {
						sup.report(n.Pos(), "append inside a map range builds %s in random map order and no later sort call fixes it — sort the slice (or iterate sorted keys), or annotate the loop //qnetlint:sorted <reason>", id.Name)
					}
				}
			}
		case *ast.CallExpr:
			fn := calleeFunc(info, n)
			if fn == nil || fn.Pkg() == nil {
				return
			}
			switch {
			case fn.Pkg().Path() == "fmt" && emittingFmtFunc[fn.Name()]:
				sup.report(n.Pos(), "fmt.%s inside a map range emits in random map order — iterate sorted keys instead (//qnetlint:sorted <reason> if order truly cannot matter)", fn.Name())
			case fn.Pkg().Path() == modulePath+"/internal/stats" && fn.Pkg() != pass.Pkg:
				// The stats package's own internal helpers are not
				// "feeding the aggregates"; the rule targets callers.
				sup.report(n.Pos(), "feeding %s.%s from inside a map range: stats aggregates fold floats in arrival order, which here is random map order — iterate sorted keys (//qnetlint:sorted <reason> if truly order-insensitive)", fn.Pkg().Name(), fn.Name())
			}
		}
	})
}

var emittingFmtFunc = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

func isFloatLike(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}

func isArith(op token.Token) bool {
	return op == token.ADD || op == token.SUB || op == token.MUL || op == token.QUO
}

// mentionsSameObject reports whether expr references the same object as ref
// (an identifier or selector), making `x = x + y` a self-accumulation.
func mentionsSameObject(info *types.Info, expr ast.Expr, ref ast.Expr) bool {
	target := exprObject(info, ref)
	if target == nil {
		return exprString(ref) != "" && containsExprString(info, expr, exprString(ref))
	}
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.ObjectOf(id) == target {
			found = true
		}
		return !found
	})
	return found
}

// exprObject resolves x or x.y to the variable object it denotes.
func exprObject(info *types.Info, e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.Ident:
		return info.ObjectOf(e)
	case *ast.SelectorExpr:
		return info.ObjectOf(e.Sel)
	}
	return nil
}

func exprString(e ast.Expr) string {
	if id, ok := e.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

func containsExprString(info *types.Info, expr ast.Expr, name string) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			found = true
		}
		return !found
	})
	return found
}

// appendCall returns the append CallExpr when stmt has the shape
// `s = append(s, ...)` / `s := append(s, ...)`, else nil.
func appendCall(stmt *ast.AssignStmt) *ast.CallExpr {
	if len(stmt.Lhs) != 1 || len(stmt.Rhs) != 1 {
		return nil
	}
	call, ok := stmt.Rhs[0].(*ast.CallExpr)
	if !ok {
		return nil
	}
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" {
		return call
	}
	return nil
}

func within(pos token.Pos, n ast.Node) bool {
	return pos >= n.Pos() && pos <= n.End()
}

// sortedLater reports whether a sort call that touches obj appears in the
// enclosing body after the map range — the collect-then-sort sanction.
func sortedLater(pass *analysis.Pass, enclosing *ast.BlockStmt, rs *ast.RangeStmt, obj types.Object) bool {
	info := pass.TypesInfo
	found := false
	walkSameFunc(enclosing, func(n ast.Node) {
		if found {
			return
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= rs.End() {
			return
		}
		fn := calleeFunc(info, call)
		if fn == nil || fn.Pkg() == nil {
			return
		}
		pkg := fn.Pkg().Path()
		if pkg != "sort" && pkg != "slices" {
			return
		}
		// Any sort-package call whose arguments reference the collected
		// slice counts: sort.Strings(ids), sort.Slice(ids, less),
		// sort.Sort(byLen(ids)), slices.Sort(ids), ...
		for _, arg := range call.Args {
			match := false
			ast.Inspect(arg, func(an ast.Node) bool {
				if id, ok := an.(*ast.Ident); ok && info.ObjectOf(id) == obj {
					match = true
				}
				return !match
			})
			if match {
				found = true
				return
			}
		}
	})
	return found
}

// calleeFunc resolves a call's callee to its *types.Func (function or
// method), nil for builtins, conversions and indirect calls.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.ObjectOf(fun).(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.ObjectOf(fun.Sel).(*types.Func)
		return fn
	}
	return nil
}
