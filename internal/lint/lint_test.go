package lint

import (
	"testing"

	"qnp/internal/lint/analysis"
	"qnp/internal/lint/linttest"
)

// Each analyzer runs over its fixture with the claimed import path that
// puts the fixture inside the analyzer's scope.
func TestDetRandFixture(t *testing.T) {
	linttest.Run(t, DetRandAnalyzer, "qnp/internal/sim", "testdata/detrand/fixture.go")
}

func TestMapOrderFixture(t *testing.T) {
	linttest.Run(t, MapOrderAnalyzer, "qnp/internal/mapfix", "testdata/maporder/fixture.go")
}

func TestWSOwnershipFixture(t *testing.T) {
	linttest.Run(t, WSOwnershipAnalyzer, "qnp/internal/wsfix", "testdata/wsownership/fixture.go")
}

func TestHotAllocFixture(t *testing.T) {
	linttest.Run(t, HotAllocAnalyzer, "qnp/internal/device", "testdata/hotalloc/fixture.go")
}

func TestNoDeprecatedFixture(t *testing.T) {
	linttest.Run(t, NoDeprecatedAnalyzer, "qnp/internal/depfix", "testdata/nodeprecated/fixture.go")
}

func TestStreamOffsetFixture(t *testing.T) {
	linttest.Run(t, StreamOffsetAnalyzer, "qnp/internal/sim", "testdata/streamoffset/fixture.go")
}

// Malformed directives surface through the designated grammar reporter in
// any package, simulation or not.
func TestDirectiveGrammarFixture(t *testing.T) {
	linttest.Run(t, DetRandAnalyzer, "qnp/internal/lintfix", "testdata/directives/fixture.go")
}

// Package-gated analyzers go quiet outside their scope: the same detrand
// fixture claimed as a non-simulation package yields nothing.
func TestDetRandScopedToSimulationPackages(t *testing.T) {
	diags, _, err := linttest.Diagnostics(DetRandAnalyzer, "qnp/internal/lintfix", []string{"testdata/detrand/fixture.go"})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("detrand reported outside a simulation package: %s", d.Message)
	}
}

// Cold functions outside hot-path packages keep the allocating forms even
// with a workspace in scope.
func TestHotAllocScopedToHotPathPackages(t *testing.T) {
	diags, _, err := linttest.Diagnostics(HotAllocAnalyzer, "qnp/internal/experiments", []string{"testdata/hotalloc/fixture.go"})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("hotalloc reported outside a hot-path package: %s", d.Message)
	}
}

// A no-op analyzer stands in for a disabled check: every fixture want must
// turn into a harness failure, so silently disabling an analyzer cannot
// keep the suite green.
func TestFixturesFailWhenCheckDisabled(t *testing.T) {
	noop := &analysis.Analyzer{
		Name: DetRandAnalyzer.Name,
		Doc:  "no-op stand-in for a disabled check",
		Run:  func(*analysis.Pass) (interface{}, error) { return nil, nil },
	}
	files := []string{"testdata/detrand/fixture.go"}
	diags, fset, err := linttest.Diagnostics(noop, "qnp/internal/sim", files)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("no-op analyzer reported %d diagnostics", len(diags))
	}
	if problems := linttest.Compare(fset, files, diags); len(problems) == 0 {
		t.Fatal("fixture wants went unmatched yet Compare reported nothing — a disabled analyzer would pass CI")
	}
}

// The suite is six uniquely named analyzers; the driver's flags, the
// directive grammar and the docs all key off these names.
func TestSuiteIntegrity(t *testing.T) {
	as := Analyzers()
	if len(as) != 6 {
		t.Fatalf("suite has %d analyzers, want 6", len(as))
	}
	seen := map[string]bool{}
	for _, a := range as {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q is missing name, doc or run", a.Name)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	if !seen[grammarReporter] {
		t.Errorf("grammar reporter %q is not in the suite", grammarReporter)
	}
}
