package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"qnp/internal/lint/analysis"
)

// StreamOffsetAnalyzer polices the RNG stream discipline: replica seeds are
// base*runner.SeedStride + offset, engine-side offsets live in the qnet
// stream registry as named …StreamOffset constants (even, nonzero) and the
// per-circuit workload family takes the odd offsets via
// workloadStreamOffset. Three checks:
//
//  1. The literal 7919 outside internal/runner is a hand-rolled copy of
//     SeedStride: if runner changes the stride, the copy silently aliases
//     a different replica's stream. Use runner.SeedStride/DeriveSeed.
//  2. In simulation packages, a rand.NewSource seed built with arithmetic
//     must multiply by runner.SeedStride and add a named …StreamOffset
//     constant or helper — never ad-hoc literals, which is how two streams
//     end up sharing a seed.
//  3. A …StreamOffset constant must be even and nonzero: odd offsets are
//     reserved for the per-circuit workload family and offset 0 is the
//     physics stream itself.
var StreamOffsetAnalyzer = &analysis.Analyzer{
	Name: "streamoffset",
	Doc: "RNG stream offsets come from the registry; seed arithmetic uses runner.SeedStride\n\n" +
		"No bare 7919 outside internal/runner; rand.NewSource seed\n" +
		"arithmetic multiplies by runner.SeedStride and adds a named\n" +
		"…StreamOffset constant/helper; engine offsets are even and nonzero.",
	Run: runStreamOffset,
}

func runStreamOffset(pass *analysis.Pass) (interface{}, error) {
	sup := newSuppressor(pass)
	inRunner := strings.TrimSuffix(pass.Pkg.Path(), "_test") == modulePath+"/internal/runner"
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BasicLit:
				if !inRunner && n.Kind == token.INT && n.Value == "7919" {
					sup.report(n.Pos(), "bare 7919 duplicates runner.SeedStride: if the stride changes this expression silently aliases another replica's stream — use runner.SeedStride or runner.DeriveSeed")
				}
			case *ast.CallExpr:
				if isSimulationPackage(pass.Pkg.Path()) {
					checkNewSourceSeed(pass, sup, n)
				}
			case *ast.GenDecl:
				if n.Tok == token.CONST {
					checkOffsetConsts(pass, sup, n)
				}
			}
			return true
		})
	}
	return nil, nil
}

// checkNewSourceSeed validates the seed expression of a rand.NewSource
// call. Bare seeds (a literal, an ident, cfg.Seed, a call) are fine — the
// discipline only constrains derived seeds, i.e. arithmetic.
func checkNewSourceSeed(pass *analysis.Pass, sup *suppressor, call *ast.CallExpr) {
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Name() != "NewSource" {
		return
	}
	if p := fn.Pkg().Path(); p != "math/rand" && p != "math/rand/v2" {
		return
	}
	if len(call.Args) != 1 {
		return
	}
	seed := unparen(call.Args[0])
	be, ok := seed.(*ast.BinaryExpr)
	if !ok {
		return
	}
	switch be.Op {
	case token.ADD:
		checkSeedTerm(pass, sup, be.X, true)
		checkSeedTerm(pass, sup, be.Y, false)
	case token.MUL:
		checkStrideProduct(pass, sup, be)
	default:
		sup.report(be.Pos(), "derived rand.NewSource seed uses %s arithmetic: replica streams are base*runner.SeedStride + <registry offset> only (//qnetlint:allow streamoffset <reason> if deliberate)", be.Op)
	}
}

// checkSeedTerm validates one side of seed = X + Y. The stride side is a
// product that must involve runner.SeedStride; the offset side must be a
// named …StreamOffset constant or helper call.
func checkSeedTerm(pass *analysis.Pass, sup *suppressor, e ast.Expr, strideSide bool) {
	e = unparen(e)
	if be, ok := e.(*ast.BinaryExpr); ok && be.Op == token.MUL {
		checkStrideProduct(pass, sup, be)
		return
	}
	if strideSide {
		// Plain base on the left of the + (seed + offset form): fine.
		if isStreamOffsetRef(pass.TypesInfo, e) {
			return
		}
		return
	}
	if !isStreamOffsetRef(pass.TypesInfo, e) {
		sup.report(e.Pos(), "RNG stream offset is not a registry name: declare it as a …StreamOffset constant/helper next to the others so the even/odd family audit sees it (//qnetlint:allow streamoffset <reason> if deliberate)")
	}
}

// checkStrideProduct requires one factor of a seed product to be
// runner.SeedStride.
func checkStrideProduct(pass *analysis.Pass, sup *suppressor, be *ast.BinaryExpr) {
	if isSeedStrideRef(pass.TypesInfo, be.X) || isSeedStrideRef(pass.TypesInfo, be.Y) {
		return
	}
	sup.report(be.Pos(), "seed product does not multiply by runner.SeedStride — replica stream separation must come from the shared stride (use runner.SeedStride or runner.DeriveSeed)")
}

// isSeedStrideRef reports whether e denotes the runner.SeedStride constant.
func isSeedStrideRef(info *types.Info, e ast.Expr) bool {
	obj := exprObject(info, unparen(e))
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == modulePath+"/internal/runner" && obj.Name() == "SeedStride"
}

// isStreamOffsetRef reports whether e is a named …StreamOffset constant,
// variable, or helper call — i.e. it came from the stream registry.
func isStreamOffsetRef(info *types.Info, e ast.Expr) bool {
	e = unparen(e)
	if call, ok := e.(*ast.CallExpr); ok {
		fn := calleeFunc(info, call)
		return fn != nil && isStreamOffsetName(fn.Name())
	}
	if obj := exprObject(info, e); obj != nil {
		return isStreamOffsetName(obj.Name())
	}
	return false
}

func isStreamOffsetName(name string) bool {
	return strings.HasSuffix(name, "StreamOffset")
}

// checkOffsetConsts enforces the even/nonzero rule on …StreamOffset
// constants: odd values are the workload family's, zero is the physics
// stream.
func checkOffsetConsts(pass *analysis.Pass, sup *suppressor, gd *ast.GenDecl) {
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for _, name := range vs.Names {
			if !isStreamOffsetName(name.Name) {
				continue
			}
			c, ok := pass.TypesInfo.ObjectOf(name).(*types.Const)
			if !ok {
				continue
			}
			v, exact := constant.Int64Val(constant.ToInt(c.Val()))
			if !exact {
				continue
			}
			switch {
			case v == 0:
				sup.report(name.Pos(), "stream offset %s is 0: that seed belongs to the physics stream — pick the next free even offset", name.Name)
			case v%2 != 0:
				sup.report(name.Pos(), "stream offset %s is odd (%d): odd offsets are reserved for the per-circuit workload family (workloadStreamOffset) — engine offsets must be even", name.Name, v)
			}
		}
	}
}
