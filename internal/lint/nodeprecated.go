package lint

import (
	"go/types"

	"qnp/internal/lint/analysis"
)

// NoDeprecatedAnalyzer stops new code from reaching for the compatibility
// shims kept only so external callers migrate gradually: the positional
// runner.Execute wrapper (use Backend.Dispatch with an ExecRequest), the
// Controller.Admit / Controller.PlanCircuit pair (use Place with a
// PlacementRequest, probe or commit form) and the Config.StaticAllocation
// boolean (use the Alloc policy enum). Each shim keeps exactly one
// intentionally covered test, marked //qnetlint:allow nodeprecated
// <reason>; everything else inside the module must be on the replacement
// API so the shims can eventually be deleted in one sweep.
var NoDeprecatedAnalyzer = &analysis.Analyzer{
	Name: "nodeprecated",
	Doc: "internal code must not call the deprecated compatibility shims\n\n" +
		"runner.Execute -> Backend.Dispatch(ExecRequest);\n" +
		"Controller.PlanCircuit -> Place(PlacementRequest{Probe: true});\n" +
		"Controller.Admit -> Place(PlacementRequest{Plan: ...});\n" +
		"Config.StaticAllocation -> Config.Alloc.",
	Run: runNoDeprecated,
}

// deprecatedShim describes one banned symbol: package path + name (+
// receiver type name for methods / struct name for fields) and the
// replacement to suggest.
type deprecatedShim struct {
	pkg     string
	recv    string // receiver or owning struct type name; "" for package-level
	name    string
	useThis string
}

var deprecatedShims = []deprecatedShim{
	{modulePath + "/internal/runner", "", "Execute",
		"Backend.Dispatch with an ExecRequest (runner.Local().Dispatch(req))"},
	{modulePath + "/internal/routing", "Controller", "PlanCircuit",
		"Place with PlacementRequest{Probe: true} — identical path, model-based admission available"},
	{modulePath + "/internal/routing", "Controller", "Admit",
		"Place with a PlacementRequest carrying the Plan (commit form)"},
	{modulePath + "/qnet", "Config", "StaticAllocation",
		"the Config.Alloc policy enum (qnet.AllocStatic)"},
}

func runNoDeprecated(pass *analysis.Pass) (interface{}, error) {
	sup := newSuppressor(pass)
	for id, obj := range pass.TypesInfo.Uses {
		shim := matchShim(obj)
		if shim == nil {
			continue
		}
		// The shim's own declaring file legitimately references it (the
		// wrapper body, backward-compat reads); everything else must not.
		if obj.Pkg() != nil && obj.Pkg() == pass.Pkg {
			declFile := pass.Fset.Position(obj.Pos()).Filename
			useFile := pass.Fset.Position(id.Pos()).Filename
			if declFile == useFile {
				continue
			}
		}
		qual := shim.name
		if shim.recv != "" {
			qual = shim.recv + "." + shim.name
		}
		sup.report(id.Pos(), "%s is a deprecated compatibility shim — use %s (one covered legacy test per shim may keep it with //qnetlint:allow nodeprecated <reason>)",
			qual, shim.useThis)
	}
	return nil, nil
}

// matchShim returns the shim entry obj refers to, nil if none.
func matchShim(obj types.Object) *deprecatedShim {
	if obj == nil || obj.Pkg() == nil {
		return nil
	}
	for i := range deprecatedShims {
		s := &deprecatedShims[i]
		if obj.Pkg().Path() != s.pkg || obj.Name() != s.name {
			continue
		}
		switch obj := obj.(type) {
		case *types.Func:
			sig, ok := obj.Type().(*types.Signature)
			if !ok {
				continue
			}
			if s.recv == "" {
				if sig.Recv() == nil {
					return s
				}
				continue
			}
			if recv := sig.Recv(); recv != nil {
				if named, ok := derefNamed(recv.Type()); ok && named.Obj().Name() == s.recv {
					return s
				}
			}
		case *types.Var:
			// Struct field: IsField distinguishes cfg.StaticAllocation from
			// an unrelated local variable of the same name.
			if s.recv != "" && obj.IsField() {
				return s
			}
		}
	}
	return nil
}
