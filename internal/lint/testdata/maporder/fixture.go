// The maporder fixture: order-sensitive folds over map iteration. The
// analyzer is not package-gated, so the claimed path is arbitrary.
package mapfix

import (
	"fmt"
	"sort"

	"qnp/internal/stats"
)

func sumCompound(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		total += v // want `floating-point accumulation inside a map range`
	}
	return total
}

func sumExplicit(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total = total + v // want `floating-point accumulation inside a map range`
	}
	return total
}

func emit(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want `fmt.Printf inside a map range emits in random map order`
	}
}

func feedStats(m map[string]float64, agg *stats.Agg) {
	for _, v := range m {
		agg.Add(v) // want `feeding stats.Add from inside a map range`
	}
}

func collectUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append inside a map range builds keys in random map order`
	}
	return keys
}

// Collect-then-sort is the sanctioned pattern: the later sort call
// sanctions the append.
func collectThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Integer folds commute exactly; nothing to flag.
func countValues(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// A genuinely order-insensitive float fold carries its justification.
func annotatedFold(m map[string]float64) float64 {
	var max float64
	//qnetlint:sorted taking a running maximum is order-insensitive
	for _, v := range m {
		if v > max {
			max = v
		}
	}
	return max
}
