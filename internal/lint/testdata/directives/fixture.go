// The directives fixture exercises the //qnetlint: comment grammar:
// malformed directives are diagnostics themselves, surfaced by the
// designated grammar reporter (detrand) in any package, and never suppress
// anything.
package lintfix

//qnetlint:frobnicate misspelled verb // want `unknown qnetlint directive verb frobnicate`
