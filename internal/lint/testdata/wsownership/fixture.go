// The wsownership fixture exercises the workspace Get/Put ownership walk
// against the real linalg package.
package wsfix

import "qnp/internal/linalg"

// A Get that silently goes out of scope is a pool leak, reported at the
// exit it escapes through — here the closing brace.
func leak(ws *linalg.Workspace) {
	m := ws.Get(2, 2)
	m.Set(0, 0, 1)
} // want `workspace matrix m .* may leak`

// An early return that skips the Put leaks on that path only.
func earlyLeak(ws *linalg.Workspace, cond bool) int {
	m := ws.Get(2, 2)
	if cond {
		return 0 // want `workspace matrix m .* may leak`
	}
	ws.Put(m)
	return 1
}

// GetRaw carries the same obligation as Get.
func rawLeak(ws *linalg.Workspace) {
	m := ws.GetRaw(4, 4)
	m.Set(0, 0, 1)
} // want `workspace matrix m .* may leak`

// The straight-line Get → use → Put discipline is clean.
func balanced(ws *linalg.Workspace) complex128 {
	m := ws.Get(2, 2)
	m.Set(0, 0, 1)
	v := m.At(0, 0)
	ws.Put(m)
	return v
}

// A deferred Put covers every exit path.
func deferred(ws *linalg.Workspace, cond bool) complex128 {
	m := ws.Get(2, 2)
	defer ws.Put(m)
	if cond {
		return m.At(0, 0)
	}
	return m.At(1, 1)
}

// Returning the matrix transfers ownership to the caller.
func transferred(ws *linalg.Workspace) *linalg.Matrix {
	m := ws.Get(2, 2)
	m.Set(0, 0, 1)
	return m
}

// Storing into a longer-lived structure is a visible hand-off.
func stored(ws *linalg.Workspace, out []*linalg.Matrix) {
	m := ws.Get(2, 2)
	out[0] = m
}

// The walk is optimistic across branches: a Put on each arm satisfies the
// join even though no single Put dominates the exit.
func branchPuts(ws *linalg.Workspace, cond bool) {
	m := ws.Get(2, 2)
	if cond {
		ws.Put(m)
	} else {
		ws.Put(m)
	}
}

// Genuine transfers the walk cannot see use the escape hatch on the Get.
func allowedLeak(ws *linalg.Workspace) {
	//qnetlint:allow wsownership fixture hands the buffer to an owner the walk cannot see
	m := ws.Get(2, 2)
	m.Set(0, 0, 1)
}
