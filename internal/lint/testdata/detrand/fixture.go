// The detrand fixture claims the qnp/internal/sim import path, putting it
// inside the analyzer's simulation-package scope.
package sim

import (
	crand "crypto/rand"
	"math/rand"
	"time"
)

func wallClock() time.Time {
	return time.Now() // want `time.Now reads the wall clock`
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `time.Since reads the wall clock`
}

func globalDraw() int {
	return rand.Intn(6) // want `rand.Intn draws from the shared global source`
}

func globalFloat() float64 {
	return rand.Float64() // want `rand.Float64 draws from the shared global source`
}

func cryptoDraw(p []byte) {
	_, _ = crand.Read(p) // want `rand.Read is nondeterministic by design`
}

// Methods on an explicitly seeded stream are the sanctioned pattern: only
// the package-level draws touch the global source.
func seeded(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(6)
}

// Durations and time arithmetic on values already in hand are fine.
func later(t0 time.Time) time.Time {
	return t0.Add(3 * time.Second)
}

func allowedClock() time.Time {
	//qnetlint:allow detrand fixture exercises the escape hatch
	return time.Now()
}
