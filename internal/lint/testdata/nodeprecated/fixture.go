// The nodeprecated fixture calls each deprecated shim from outside its
// declaring package — the position every internal caller is in.
package depfix

import (
	"qnp/internal/routing"
	"qnp/internal/runner"
	"qnp/qnet"
)

func legacyExecute(b runner.Backend) error {
	return runner.Execute(b, runner.Options{}, "kind", nil, 1, func(int, []byte) {}) // want `Execute is a deprecated compatibility shim`
}

func legacyPlan(c *routing.Controller) (routing.Plan, error) {
	return c.PlanCircuit("a", "b", 0.8, routing.CutoffShort, 0) // want `Controller.PlanCircuit is a deprecated compatibility shim`
}

func legacyAdmit(c *routing.Controller) []routing.Refit {
	return c.Admit("c", []string{"a", "m", "b"}, 100, false) // want `Controller.Admit is a deprecated compatibility shim`
}

func legacyBool(cfg qnet.Config) bool {
	return cfg.StaticAllocation // want `Config.StaticAllocation is a deprecated compatibility shim`
}

// The replacement API is clean: probe and commit forms of Place.
func migrated(c *routing.Controller) (routing.PlacementDecision, error) {
	dec, _, err := c.Place(routing.PlacementRequest{Src: "a", Dst: "b", Fidelity: 0.8, Probe: true})
	return dec, err
}

// The designated covered legacy test keeps its shim with a justification.
func covered(c *routing.Controller) []routing.Refit {
	//qnetlint:allow nodeprecated fixture plays the designated covered legacy test
	return c.Admit("c", []string{"a", "m", "b"}, 100, false)
}
