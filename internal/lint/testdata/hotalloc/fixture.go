// The hotalloc fixture claims the qnp/internal/device import path, a
// hot-path package, so workspace-threaded functions are under the rule.
package device

import "qnp/internal/linalg"

// A workspace parameter puts the function in scope: allocating twins are
// flagged.
func hot(ws *linalg.Workspace, a, b *linalg.Matrix) *linalg.Matrix {
	return linalg.Mul(a, b) // want `linalg.Mul allocates on every call but a workspace is in scope`
}

// The workspace-threaded twin is the sanctioned call.
func hotInto(ws *linalg.Workspace, a, b *linalg.Matrix) *linalg.Matrix {
	dst := ws.Get(a.Rows, b.Cols)
	defer ws.Put(dst)
	linalg.MulInto(dst, a, b)
	return linalg.Kron(a, b) // want `linalg.Kron allocates on every call but a workspace is in scope`
}

// No workspace anywhere: cold-path composition keeps the ergonomic forms.
func cold(a, b *linalg.Matrix) *linalg.Matrix {
	return linalg.Mul(a, b)
}

// A receiver whose struct carries a Workspace is workspace-threaded too.
type engine struct {
	ws *linalg.Workspace
}

func (e *engine) step(a, b *linalg.Matrix) *linalg.Matrix {
	return linalg.Mul(a, b) // want `linalg.Mul allocates on every call but a workspace is in scope`
}

// Closures inherit the enclosing function's workspace scope.
func hotClosure(ws *linalg.Workspace, a, b *linalg.Matrix) func() *linalg.Matrix {
	return func() *linalg.Matrix {
		return linalg.Mul(a, b) // want `linalg.Mul allocates on every call but a workspace is in scope`
	}
}

// Deliberate cold-path use inside a workspace-threaded function carries its
// justification.
func allowedAlloc(ws *linalg.Workspace, a, b *linalg.Matrix) *linalg.Matrix {
	//qnetlint:allow hotalloc fixture exercises the cold-path escape hatch
	return linalg.Mul(a, b)
}
