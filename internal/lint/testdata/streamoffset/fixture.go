// The streamoffset fixture claims the qnp/internal/sim import path so the
// seed-arithmetic check applies; the 7919 and offset-constant rules hold in
// any package.
package sim

import (
	"math/rand"

	"qnp/internal/runner"
)

const (
	fixtureStreamOffset = 2
	physicsStreamOffset = 0 // want `stream offset physicsStreamOffset is 0`
	oddStreamOffset     = 3 // want `stream offset oddStreamOffset is odd \(3\)`
)

// The registry discipline: base times the shared stride plus a named
// offset.
func registrySeed(base int64) *rand.Rand {
	return rand.New(rand.NewSource(base*runner.SeedStride + fixtureStreamOffset))
}

// DeriveSeed wraps the same arithmetic; a plain call is fine.
func derivedSeed(base int64) *rand.Rand {
	return rand.New(rand.NewSource(runner.DeriveSeed(base, 3)))
}

// A bare seed with no arithmetic is unconstrained.
func plainSeed(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

func adHocOffset(base int64) *rand.Rand {
	return rand.New(rand.NewSource(base*runner.SeedStride + 11)) // want `RNG stream offset is not a registry name`
}

func wrongStride(base int64) *rand.Rand {
	return rand.New(rand.NewSource(base*31 + fixtureStreamOffset)) // want `seed product does not multiply by runner.SeedStride`
}

func xorSeed(base int64) *rand.Rand {
	return rand.New(rand.NewSource(base ^ 5)) // want `derived rand.NewSource seed uses \^ arithmetic`
}

func bareStride(base int64) int64 {
	return base*7919 + 1 // want `bare 7919 duplicates runner.SeedStride`
}

func allowedAdHoc(base int64) *rand.Rand {
	//qnetlint:allow streamoffset fixture exercises the escape hatch
	return rand.New(rand.NewSource(base*runner.SeedStride + 13))
}
