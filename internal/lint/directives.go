package lint

import (
	"go/ast"
	"go/token"
	"strings"

	"qnp/internal/lint/analysis"
)

// The //qnetlint: comment grammar.
//
//	//qnetlint:allow <analyzer> <reason>
//	//qnetlint:sorted <reason>
//
// An allow directive suppresses the named analyzer's diagnostics on the
// directive's line and on the line directly below it (so it works both as a
// trailing comment and as a lead comment above the flagged statement). The
// sorted directive is maporder's dedicated justification: it asserts the
// annotated map iteration is order-insensitive by construction. Both forms
// REQUIRE a non-empty reason — a directive without one is itself reported,
// never honoured, so every suppression in the tree carries its
// justification (CI greps for naked directives as a second line of
// defence).

const directivePrefix = "//qnetlint:"

// grammarReporter is the analyzer that reports directives too malformed to
// name the analyzer they meant to address (unknown or missing verb). Any
// one will do as long as it is exactly one; detrand is first in the suite.
const grammarReporter = "detrand"

// directive is one parsed //qnetlint: comment.
type directive struct {
	pos  token.Pos
	verb string // "allow", "sorted", ...
	// analyzer is the suppressed analyzer's name (allow) or "maporder"
	// (sorted, implicitly).
	analyzer string
	reason   string
	// malformed holds the grammar error, if any; a malformed directive
	// suppresses nothing.
	malformed string
}

// parseDirectives extracts every //qnetlint: directive from a file.
func parseDirectives(f *ast.File) []directive {
	var out []directive
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, directivePrefix)
			if !ok {
				continue
			}
			d := directive{pos: c.Pos()}
			fields := strings.Fields(text)
			if len(fields) == 0 {
				d.malformed = "missing verb (want //qnetlint:allow <analyzer> <reason> or //qnetlint:sorted <reason>)"
				out = append(out, d)
				continue
			}
			// The verb is glued to the prefix (//qnetlint:allow ...); a
			// space there would read as a plain comment, so fields[0] is
			// the verb only when the comment had no space — reconstruct
			// from the raw text instead.
			d.verb = fields[0]
			switch d.verb {
			case "allow":
				if len(fields) < 2 {
					d.malformed = "allow directive names no analyzer (want //qnetlint:allow <analyzer> <reason>)"
					break
				}
				d.analyzer = fields[1]
				d.reason = strings.TrimSpace(strings.Join(fields[2:], " "))
				if d.reason == "" {
					d.malformed = "allow directive has no reason — justify the suppression (//qnetlint:allow " + d.analyzer + " <reason>)"
				}
			case "sorted":
				d.analyzer = "maporder"
				d.reason = strings.TrimSpace(strings.Join(fields[1:], " "))
				if d.reason == "" {
					d.malformed = "sorted directive has no reason — say why this map iteration is order-insensitive (//qnetlint:sorted <reason>)"
				}
			default:
				d.malformed = "unknown qnetlint directive verb " + d.verb + " (want allow or sorted)"
			}
			out = append(out, d)
		}
	}
	return out
}

// suppressor answers "is this analyzer suppressed at this position?" for one
// package, and reports malformed directives exactly once per pass.
type suppressor struct {
	pass *analysis.Pass
	// allowed maps analyzer name -> set of line numbers (per file) where
	// diagnostics are suppressed.
	allowed map[string]map[suppressKey]bool
}

type suppressKey struct {
	file string
	line int
}

// newSuppressor parses every file's directives, reports the malformed ones
// through pass, and indexes the valid ones.
func newSuppressor(pass *analysis.Pass) *suppressor {
	s := &suppressor{pass: pass, allowed: make(map[string]map[suppressKey]bool)}
	for _, f := range pass.Files {
		for _, d := range parseDirectives(f) {
			if d.malformed != "" {
				// Every analyzer builds a suppressor, but the grammar
				// error belongs to the directive, not the check; report
				// it from the analyzer the directive tried to address —
				// or, for directives too broken to name one, from a
				// single designated pass — so it surfaces exactly once
				// per multichecker run.
				if d.analyzer == pass.Analyzer.Name ||
					(d.analyzer == "" && pass.Analyzer.Name == grammarReporter) {
					pass.Reportf(d.pos, "malformed qnetlint directive: %s", d.malformed)
				}
				continue
			}
			if d.analyzer != pass.Analyzer.Name {
				continue
			}
			pos := pass.Fset.Position(d.pos)
			m := s.allowed[d.analyzer]
			if m == nil {
				m = make(map[suppressKey]bool)
				s.allowed[d.analyzer] = m
			}
			// Honour the directive on its own line (trailing comment)
			// and on the next line (lead comment above the statement).
			m[suppressKey{pos.Filename, pos.Line}] = true
			m[suppressKey{pos.Filename, pos.Line + 1}] = true
		}
	}
	return s
}

// suppressed reports whether the pass's analyzer is allowed at pos.
func (s *suppressor) suppressed(pos token.Pos) bool {
	p := s.pass.Fset.Position(pos)
	return s.allowed[s.pass.Analyzer.Name][suppressKey{p.Filename, p.Line}]
}

// report emits a diagnostic unless an allow directive covers its line.
func (s *suppressor) report(pos token.Pos, format string, args ...interface{}) {
	if s.suppressed(pos) {
		return
	}
	s.pass.Reportf(pos, format, args...)
}
