package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"qnp/internal/lint/analysis"
)

// WSOwnershipAnalyzer enforces the linalg.Workspace ownership rules from
// the zero-allocation refactor: a matrix obtained with Get/GetRaw must, on
// every path out of the function, either be Put back or visibly change
// owner — returned, stored into a field/slice/map, sent on a channel, or
// captured by a closure. A Get whose result silently goes out of scope is a
// pool leak: the buffer is lost to the pool and steady-state allocation
// pressure creeps back.
//
// The analysis is a conservative single-pass walk: optimistic across
// branches (a Put or hand-off in any branch releases the variable; a branch
// ending in return/panic does not leak its state into the fall-through
// path) but strict about exits — a `return` or function end reached while a
// workspace matrix is live and unmentioned is reported. Call arguments are
// treated as borrows, not transfers, matching the linalg convention that
// …Into operands stay caller-owned. Genuine transfer-by-call patterns the
// walk cannot see are annotated //qnetlint:allow wsownership <reason>.
var WSOwnershipAnalyzer = &analysis.Analyzer{
	Name: "wsownership",
	Doc: "workspace Get/GetRaw must be matched by Put on all return paths\n\n" +
		"Every linalg.Workspace.Get/GetRaw result must be Put back, deferred,\n" +
		"returned, or stored into a longer-lived structure before the\n" +
		"function exits on any path; otherwise the pooled buffer leaks.",
	Run: runWSOwnership,
}

func runWSOwnership(pass *analysis.Pass) (interface{}, error) {
	sup := newSuppressor(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch n := n.(type) {
			case *ast.FuncDecl:
				body = n.Body
			case *ast.FuncLit:
				// Closure bodies are walked as their own functions; the
				// enclosing walk released anything a closure captures.
				body = n.Body
			default:
				return true
			}
			if body != nil {
				w := &wsWalker{pass: pass, sup: sup, live: map[types.Object]token.Pos{}}
				terminated := w.block(body)
				if !terminated {
					w.exit(body.Rbrace)
				}
			}
			return true
		})
	}
	return nil, nil
}

// workspaceMethod reports whether call is Get/GetRaw/Put on a
// *linalg.Workspace receiver, returning the method name ("" otherwise).
func workspaceMethod(info *types.Info, call *ast.CallExpr) string {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != modulePath+"/internal/linalg" {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	if named, ok := derefNamed(sig.Recv().Type()); !ok || named.Obj().Name() != "Workspace" {
		return ""
	}
	switch fn.Name() {
	case "Get", "GetRaw", "Put":
		return fn.Name()
	}
	return ""
}

func derefNamed(t types.Type) (*types.Named, bool) {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return n, ok
}

// wsWalker tracks live workspace-owned matrices through one function body.
type wsWalker struct {
	pass *analysis.Pass
	sup  *suppressor
	// live maps each owning variable to the position of the Get that
	// produced it.
	live map[types.Object]token.Pos
}

func (w *wsWalker) clone() *wsWalker {
	c := &wsWalker{pass: w.pass, sup: w.sup, live: make(map[types.Object]token.Pos, len(w.live))}
	for k, v := range w.live {
		c.live[k] = v
	}
	return c
}

// intersectInto keeps only the variables live in both w and other: a
// variable released on either branch is optimistically considered released.
func (w *wsWalker) intersectInto(other *wsWalker) {
	for obj := range w.live {
		if _, ok := other.live[obj]; !ok {
			delete(w.live, obj)
		}
	}
}

// block walks a statement list; reports whether control definitely leaves
// the enclosing path (return/panic/branch) before the end.
func (w *wsWalker) block(b *ast.BlockStmt) bool {
	for _, s := range b.List {
		if w.stmt(s) {
			return true
		}
	}
	return false
}

// stmt processes one statement, returning true when it terminates the path.
func (w *wsWalker) stmt(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return w.block(s)
	case *ast.AssignStmt:
		w.assign(s)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if i < len(vs.Values) {
						w.trackOrBorrow(name, vs.Values[i])
					}
				}
			}
		}
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if w.call(call) {
				return true // panic(...)
			}
		}
	case *ast.DeferStmt:
		// A deferred Put (or deferred closure touching the variable) runs
		// on every exit path: release unconditionally.
		if workspaceMethod(w.pass.TypesInfo, s.Call) == "Put" {
			w.releaseMentionedIn(s.Call)
		} else {
			for _, arg := range s.Call.Args {
				w.releaseMentionedIn(arg)
			}
			w.releaseMentionedIn(s.Call.Fun)
		}
	case *ast.GoStmt:
		w.releaseMentionedIn(s.Call)
	case *ast.SendStmt:
		w.releaseMentionedIn(s.Value)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.releaseMentionedIn(r)
		}
		w.exit(s.Pos())
		return true
	case *ast.BranchStmt:
		// break/continue/goto: the fall-through path after the enclosing
		// construct is reached by some other branch; treat as terminating
		// this one (optimistic).
		return true
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		thenW := w.clone()
		thenDone := thenW.block(s.Body)
		elseW := w.clone()
		elseDone := false
		if s.Else != nil {
			elseDone = elseW.stmt(s.Else)
		}
		switch {
		case thenDone && elseDone:
			return true
		case thenDone:
			w.live = elseW.live
		case elseDone:
			w.live = thenW.live
		default:
			thenW.intersectInto(elseW)
			w.live = thenW.live
		}
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		w.caseMerge(s)
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		bodyW := w.clone()
		if !bodyW.block(s.Body) {
			// A release inside the body counts (optimistic): keep the
			// body-end state intersected with the incoming one.
			w.intersectInto(bodyW)
		}
	case *ast.RangeStmt:
		bodyW := w.clone()
		if !bodyW.block(s.Body) {
			w.intersectInto(bodyW)
		}
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt)
	}
	return false
}

// caseMerge handles switch/type-switch/select: each clause runs on its own
// copy; the fall-through state is the intersection of the non-terminating
// clauses (plus the incoming state when no default clause exists, since the
// switch may match nothing).
func (w *wsWalker) caseMerge(s ast.Stmt) {
	var body *ast.BlockStmt
	hasDefault := false
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		body = s.Body
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		body = s.Body
	case *ast.SelectStmt:
		body = s.Body
	}
	var states []*wsWalker
	for _, cl := range body.List {
		var stmts []ast.Stmt
		switch cl := cl.(type) {
		case *ast.CaseClause:
			if cl.List == nil {
				hasDefault = true
			}
			stmts = cl.Body
		case *ast.CommClause:
			if cl.Comm == nil {
				hasDefault = true
			} else {
				w.stmt(cl.Comm)
			}
			stmts = cl.Body
		}
		cw := w.clone()
		done := false
		for _, st := range stmts {
			if cw.stmt(st) {
				done = true
				break
			}
		}
		if !done {
			states = append(states, cw)
		}
	}
	if !hasDefault {
		states = append(states, w.clone())
	}
	if len(states) == 0 {
		// Every clause terminated and a default exists; nothing flows on.
		w.live = map[types.Object]token.Pos{}
		return
	}
	merged := states[0]
	for _, st := range states[1:] {
		merged.intersectInto(st)
	}
	w.live = merged.live
}

// assign handles tracking starts, Put-style releases and hand-offs in one
// assignment statement.
func (w *wsWalker) assign(s *ast.AssignStmt) {
	if len(s.Lhs) == len(s.Rhs) {
		for i := range s.Lhs {
			w.trackOrBorrow(s.Lhs[i], s.Rhs[i])
		}
		return
	}
	// Multi-value form: nothing on the RHS is a workspace Get (they return
	// a single matrix), so just apply hand-off rules.
	for _, r := range s.Rhs {
		w.handOff(r, nil)
	}
}

// trackOrBorrow processes one lhs := rhs pair.
func (w *wsWalker) trackOrBorrow(lhs, rhs ast.Expr) {
	info := w.pass.TypesInfo
	if call, ok := unparen(rhs).(*ast.CallExpr); ok {
		switch workspaceMethod(info, call) {
		case "Get", "GetRaw":
			if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
				if obj := info.ObjectOf(id); obj != nil {
					w.live[obj] = call.Pos()
					return
				}
			}
			// Get assigned straight into a field/slice/blank: ownership
			// is immediately elsewhere; nothing to track.
			return
		}
	}
	var keep types.Object
	if id, ok := lhs.(*ast.Ident); ok {
		keep = info.ObjectOf(id)
	}
	w.handOff(rhs, keep)
}

// handOff releases live variables that visibly flow somewhere else in expr:
// aliased to another variable, placed in a composite literal, address
// taken, captured by a function literal. Appearing as a plain call argument
// is a borrow and does NOT release — linalg's …Into operands stay
// caller-owned. keep (the assignment's own target) never releases itself:
// `out = linalg.MulInto(out, …)` keeps out tracked.
func (w *wsWalker) handOff(expr ast.Expr, keep types.Object) {
	if len(w.live) == 0 {
		return
	}
	info := w.pass.TypesInfo
	var walk func(e ast.Node, inCallArg bool)
	walk = func(e ast.Node, inCallArg bool) {
		switch e := e.(type) {
		case nil:
			return
		case *ast.Ident:
			if inCallArg {
				return
			}
			if obj := info.ObjectOf(e); obj != nil && obj != keep {
				if _, tracked := w.live[obj]; tracked {
					w.release(obj)
				}
			}
		case *ast.CallExpr:
			// ws.Put(v) in expression position still releases.
			if workspaceMethod(info, e) == "Put" {
				w.releaseMentionedIn(e)
				return
			}
			walk(e.Fun, inCallArg)
			for _, a := range e.Args {
				walk(a, true)
			}
		case *ast.FuncLit:
			// Captured by a closure: the closure owns it now.
			w.releaseMentionedIn(e.Body)
		case *ast.SelectorExpr:
			// v.Field reads don't move ownership; walk the base as a
			// borrow.
			return
		default:
			ast.Inspect(e, func(n ast.Node) bool {
				if n == e {
					return true
				}
				walk(n, inCallArg)
				return false
			})
		}
	}
	walk(expr, false)
}

// call processes a statement-position call: Put releases, panic terminates,
// closures capture.
func (w *wsWalker) call(call *ast.CallExpr) (terminates bool) {
	info := w.pass.TypesInfo
	if workspaceMethod(info, call) == "Put" {
		w.releaseMentionedIn(call)
		return false
	}
	if id, ok := unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" && info.ObjectOf(id) == nil {
		return true
	}
	for _, a := range call.Args {
		if fl, ok := unparen(a).(*ast.FuncLit); ok {
			w.releaseMentionedIn(fl.Body)
		}
	}
	return false
}

func (w *wsWalker) release(obj types.Object) {
	delete(w.live, obj)
}

// releaseMentionedIn releases every live variable referenced under n.
func (w *wsWalker) releaseMentionedIn(n ast.Node) {
	if n == nil || len(w.live) == 0 {
		return
	}
	ast.Inspect(n, func(c ast.Node) bool {
		if id, ok := c.(*ast.Ident); ok {
			if obj := w.pass.TypesInfo.ObjectOf(id); obj != nil {
				if _, tracked := w.live[obj]; tracked {
					w.release(obj)
				}
			}
		}
		return true
	})
}

// exit reports every variable still live at a function exit point, then
// releases them so later exits don't re-report the same leak.
func (w *wsWalker) exit(pos token.Pos) {
	for obj, getPos := range w.live {
		if w.sup.suppressed(getPos) || w.sup.suppressed(pos) {
			continue
		}
		g := w.pass.Fset.Position(getPos)
		w.pass.Reportf(pos, "workspace matrix %s (Get at %s:%d) may leak: no Put, defer, return or hand-off reaches this exit — Put it back or annotate the Get //qnetlint:allow wsownership <reason>", obj.Name(), shortName(g.Filename), g.Line)
	}
	w.live = map[types.Object]token.Pos{}
}

func shortName(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}
