// Package analysis is a dependency-free miniature of the
// golang.org/x/tools/go/analysis framework: just enough surface — Analyzer,
// Pass, Diagnostic — for qnetlint's checkers to be written in the standard
// shape (name + doc + Run(*Pass)) and driven either by the go vet -vettool
// protocol (cmd/qnetlint) or by the fixture harness (internal/lint/linttest).
//
// The x/tools module is deliberately not vendored: the container builds
// offline, and the six qnetlint analyzers need only syntax, type info and a
// Report callback — none of the fact propagation, result dependencies or
// SSA passes the full framework adds.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check. It mirrors the x/tools type of the
// same name so the checkers read idiomatically and could be ported to the
// real framework by swapping the import.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, escape-hatch comments
	// (//qnetlint:allow <name> <reason>) and the driver's -<name> flags.
	// It must be a valid identifier.
	Name string

	// Doc is the analyzer's documentation: a one-line summary, a blank
	// line, then detail.
	Doc string

	// Run applies the analyzer to one package and reports diagnostics via
	// pass.Report. The returned value is unused by qnetlint's drivers but
	// kept for framework-shape compatibility.
	Run func(*Pass) (interface{}, error)
}

// Pass provides one analyzed package to an Analyzer's Run function: the
// syntax trees, the type information, and the Report sink.
type Pass struct {
	Analyzer *Analyzer

	// Fset maps token positions of Files.
	Fset *token.FileSet
	// Files are the package's parsed source files, with comments.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo holds the package's type-checking results.
	TypesInfo *types.Info

	// Report delivers one diagnostic. The driver owns ordering and output.
	Report func(Diagnostic)
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos. It is the common path the
// checkers use; the format verbs are fmt.Sprintf's.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}
