package analysis

import "testing"

func TestReportfFormatsAndDelivers(t *testing.T) {
	var got []Diagnostic
	p := &Pass{Report: func(d Diagnostic) { got = append(got, d) }}
	p.Reportf(42, "offset %d is %s", 3, "odd")
	p.Reportf(7, "plain")
	if len(got) != 2 {
		t.Fatalf("delivered %d diagnostics, want 2", len(got))
	}
	if got[0].Pos != 42 || got[0].Message != "offset 3 is odd" {
		t.Errorf("first diagnostic = {%v %q}", got[0].Pos, got[0].Message)
	}
	if got[1].Pos != 7 || got[1].Message != "plain" {
		t.Errorf("second diagnostic = {%v %q}", got[1].Pos, got[1].Message)
	}
}
