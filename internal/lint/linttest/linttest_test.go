package linttest

import (
	"go/ast"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"qnp/internal/lint/analysis"
)

// findFoo flags every identifier named foo — a minimal analyzer to drive
// the harness itself.
var findFoo = &analysis.Analyzer{
	Name: "findfoo",
	Doc:  "flags every identifier named foo",
	Run: func(pass *analysis.Pass) (interface{}, error) {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok && id.Name == "foo" {
					pass.Reportf(id.Pos(), "identifier foo at large")
				}
				return true
			})
		}
		return nil, nil
	},
}

var noop = &analysis.Analyzer{
	Name: "noop",
	Doc:  "reports nothing",
	Run:  func(*analysis.Pass) (interface{}, error) { return nil, nil },
}

func write(t *testing.T, name, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunMatchesWants(t *testing.T) {
	f := write(t, "fix.go", "package p\n\nvar foo = 1 // want `foo at large`\nvar bar = 2\n")
	Run(t, findFoo, "example/p", f)
}

func TestCompareFlagsUnexpectedDiagnostic(t *testing.T) {
	f := write(t, "fix.go", "package p\n\nvar foo = 1\n")
	diags, fset, err := Diagnostics(findFoo, "example/p", []string{f})
	if err != nil {
		t.Fatal(err)
	}
	problems := Compare(fset, []string{f}, diags)
	if len(problems) != 1 || !strings.Contains(problems[0], "unexpected diagnostic") {
		t.Fatalf("problems = %q, want one unexpected-diagnostic entry", problems)
	}
}

func TestCompareFlagsUnmatchedWant(t *testing.T) {
	f := write(t, "fix.go", "package p\n\nvar bar = 2 // want `foo at large`\n")
	diags, fset, err := Diagnostics(noop, "example/p", []string{f})
	if err != nil {
		t.Fatal(err)
	}
	problems := Compare(fset, []string{f}, diags)
	if len(problems) != 1 || !strings.Contains(problems[0], "no diagnostic matched") {
		t.Fatalf("problems = %q, want one unmatched-want entry", problems)
	}
}

func TestCompareRejectsMalformedWants(t *testing.T) {
	f := write(t, "fix.go", "package p\n\nvar a = 1 // want nothing quoted\nvar b = 2 // want `ba(d`\n")
	diags, fset, err := Diagnostics(noop, "example/p", []string{f})
	if err != nil {
		t.Fatal(err)
	}
	problems := Compare(fset, []string{f}, diags)
	if len(problems) != 2 {
		t.Fatalf("problems = %q, want a no-regexp entry and a bad-regexp entry", problems)
	}
	if !strings.Contains(problems[0], "no backquoted regexp") || !strings.Contains(problems[1], "bad want regexp") {
		t.Fatalf("problems = %q", problems)
	}
}

func TestDiagnosticsRejectsParseError(t *testing.T) {
	f := write(t, "fix.go", "package p\n\nfunc {\n")
	if _, _, err := Diagnostics(findFoo, "example/p", []string{f}); err == nil {
		t.Fatal("unparsable fixture produced no error")
	}
}

func TestDiagnosticsRejectsTypeError(t *testing.T) {
	f := write(t, "fix.go", "package p\n\nvar x = undefinedSymbol\n")
	_, _, err := Diagnostics(findFoo, "example/p", []string{f})
	if err == nil || !strings.Contains(err.Error(), "does not typecheck") {
		t.Fatalf("err = %v, want a typecheck failure", err)
	}
}
