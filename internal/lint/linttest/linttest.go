// Package linttest is the fixture harness for the qnetlint analyzers: an
// offline, dependency-free analogue of x/tools' analysistest. A fixture is
// a Go file under the caller's testdata/ tree annotated with trailing
//
//	// want `regexp`
//
// comments on each line where the analyzer must report (several backquoted
// regexps may follow one want, one per expected diagnostic). Run typechecks
// the fixture through the source importer — so fixtures import real qnp/...
// packages and the stdlib — applies one analyzer, and fails the test on any
// mismatch in either direction: a diagnostic no want matched, or a want no
// diagnostic matched. The second direction is the suite's own safety net: a
// disabled or broken analyzer turns every fixture want into a failure.
package linttest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"regexp"
	"strings"
	"testing"

	"qnp/internal/lint/analysis"
)

// Run typechecks files as a package claiming import path pkgPath, applies
// a, and compares its diagnostics against the files' want comments. The
// claimed path is what the analyzer sees as Pkg.Path(): claim a simulation
// or hot-path package to put the fixture inside a path-gated analyzer's
// scope, anything else to stay outside it.
func Run(t *testing.T, a *analysis.Analyzer, pkgPath string, files ...string) {
	t.Helper()
	diags, fset, err := Diagnostics(a, pkgPath, files)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range Compare(fset, files, diags) {
		t.Error(p)
	}
}

// Diagnostics parses and typechecks the fixture files as pkgPath and
// returns a's diagnostics. Fixture imports resolve from source relative to
// the test's working directory, which `go test` places inside the module.
func Diagnostics(a *analysis.Analyzer, pkgPath string, files []string) ([]analysis.Diagnostic, *token.FileSet, error) {
	fset := token.NewFileSet()
	var parsed []*ast.File
	for _, name := range files {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, nil, err
		}
		parsed = append(parsed, f)
	}
	var typeErrs []string
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "source", nil),
		Error:    func(err error) { typeErrs = append(typeErrs, err.Error()) },
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	pkg, err := conf.Check(pkgPath, fset, parsed, info)
	if len(typeErrs) > 0 {
		return nil, nil, fmt.Errorf("fixture does not typecheck:\n  %s", strings.Join(typeErrs, "\n  "))
	}
	if err != nil {
		return nil, nil, err
	}
	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     parsed,
		Pkg:       pkg,
		TypesInfo: info,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if _, err := a.Run(pass); err != nil {
		return nil, nil, err
	}
	return diags, fset, nil
}

var (
	wantRE = regexp.MustCompile(`// want (.+)$`)
	patRE  = regexp.MustCompile("`([^`]+)`")
)

// Compare matches diagnostics against the files' want comments and returns
// one problem string per mismatch; an empty slice means the fixture passed.
// Each want consumes exactly one diagnostic on its own line.
func Compare(fset *token.FileSet, files []string, diags []analysis.Diagnostic) []string {
	type want struct {
		file string
		line int
		re   *regexp.Regexp
		hit  bool
	}
	var wants []*want
	var problems []string
	for _, name := range files {
		src, err := os.ReadFile(name)
		if err != nil {
			problems = append(problems, err.Error())
			continue
		}
		for i, line := range strings.Split(string(src), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			pats := patRE.FindAllStringSubmatch(m[1], -1)
			if len(pats) == 0 {
				problems = append(problems, fmt.Sprintf("%s:%d: want comment carries no backquoted regexp", name, i+1))
				continue
			}
			for _, pat := range pats {
				re, err := regexp.Compile(pat[1])
				if err != nil {
					problems = append(problems, fmt.Sprintf("%s:%d: bad want regexp: %v", name, i+1, err))
					continue
				}
				wants = append(wants, &want{file: name, line: i + 1, re: re})
			}
		}
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			problems = append(problems, fmt.Sprintf("%s:%d: unexpected diagnostic: %s", pos.Filename, pos.Line, d.Message))
		}
	}
	for _, w := range wants {
		if !w.hit {
			problems = append(problems, fmt.Sprintf("%s:%d: no diagnostic matched want `%s`", w.file, w.line, w.re))
		}
	}
	return problems
}
