// Package lint is qnetlint: the simulator's own static-analysis suite.
//
// The paper's protocol evaluation rests on deterministic discrete-event
// simulation — same seed, same event timeline, byte-identical figure output
// — and the project history shows every regression class that threatened it
// (map-iteration float ordering, RNG stream aliasing, workspace Get/Put
// leaks, allocating wrappers creeping back into hot paths) was caught only
// after the fact by byte-identity CI runs. This package encodes those
// conventions as compile-time checks instead of reviewer lore. Six
// analyzers:
//
//   - detrand: simulation packages must not read wall-clock time or the
//     global math/rand source. All randomness flows from the replica seed.
//   - maporder: a `for range` over a map must not accumulate floats, emit
//     output, feed the stats aggregators, or build an unsorted slice — map
//     order is random per run, so any order-sensitive fold diverges
//     between replicas and shards.
//   - wsownership: a linalg.Workspace.Get/GetRaw result must be Put back,
//     deferred, or visibly handed off (returned, stored in a field) on
//     every path out of the function — the PR 3 ownership rules.
//   - hotalloc: inside workspace-threaded functions in hot-path packages,
//     calls to an allocating API whose …Into/…W twin exists are flagged.
//   - nodeprecated: internal code must not call the deprecated shims
//     (positional runner.Execute, Controller.Admit/PlanCircuit,
//     Config.StaticAllocation); each keeps exactly one intentionally
//     covered test, marked //qnetlint:allow nodeprecated <reason>.
//   - streamoffset: RNG stream offsets must come from the qnet stream
//     registry (named *StreamOffset constants/helpers, engine offsets even
//     and nonzero) and seed arithmetic must go through runner.SeedStride /
//     runner.DeriveSeed — never a bare 7919 or literal offset.
//
// Escape hatches use the //qnetlint: comment grammar (see directives.go):
// `//qnetlint:allow <analyzer> <reason>` on or directly above the flagged
// line, and `//qnetlint:sorted <reason>` for maporder. A reason is
// mandatory; a naked directive is itself a diagnostic.
//
// Run the suite with the multichecker binary:
//
//	go build -o bin/qnetlint ./cmd/qnetlint
//	go vet -vettool=$PWD/bin/qnetlint ./...
//
// or let the binary re-exec go vet for you: `bin/qnetlint ./...`.
package lint

import (
	"go/ast"
	"strings"

	"qnp/internal/lint/analysis"
)

// Analyzers returns the full qnetlint suite in its canonical order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		DetRandAnalyzer,
		MapOrderAnalyzer,
		WSOwnershipAnalyzer,
		HotAllocAnalyzer,
		NoDeprecatedAnalyzer,
		StreamOffsetAnalyzer,
	}
}

// modulePath is the module all checked packages live in. Analyzer scope
// tables below are full package paths under it.
const modulePath = "qnp"

// simulationPackages are the packages whose code runs inside the
// deterministic event loop: everything here must be a pure function of the
// replica seed. detrand enforces the no-wall-clock/no-global-rand rule in
// exactly these packages; streamoffset polices their rand.NewSource seed
// arithmetic.
var simulationPackages = map[string]bool{
	"qnp/internal/sim":       true,
	"qnp/qnet":               true,
	"qnp/internal/core":      true,
	"qnp/internal/routing":   true,
	"qnp/internal/linklayer": true,
	"qnp/internal/device":    true,
	"qnp/internal/hardware":  true,
	"qnp/internal/werner":    true,
	"qnp/internal/quantum":   true,
	"qnp/internal/signaling": true,
}

// hotPathPackages are the packages PR 3 made allocation-free: the quantum
// engine and the device/link stack it runs under, plus the scalar Werner
// tier. hotalloc flags allocating-API calls only here, and only inside
// workspace-threaded functions.
var hotPathPackages = map[string]bool{
	"qnp/internal/quantum":   true,
	"qnp/internal/device":    true,
	"qnp/internal/hardware":  true,
	"qnp/internal/linklayer": true,
	"qnp/internal/werner":    true,
	"qnp/internal/core":      true,
	"qnp/internal/linalg":    true,
}

// isSimulationPackage reports whether path is a simulation package.
// External-test packages (pkg_test) share their subject's rules.
func isSimulationPackage(path string) bool {
	return simulationPackages[strings.TrimSuffix(path, "_test")]
}

// isHotPathPackage reports whether path is a hot-path package.
func isHotPathPackage(path string) bool {
	return hotPathPackages[strings.TrimSuffix(path, "_test")]
}

// unparen strips any number of enclosing parentheses from e. (The stdlib
// grew ast.Unparen in go1.22; this module's language version predates it.)
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
