package lint

import (
	"go/types"

	"qnp/internal/lint/analysis"
)

// DetRandAnalyzer flags nondeterminism sources inside simulation packages:
// wall-clock reads and the process-global math/rand source. Simulation code
// must be a pure function of the replica seed — a single time.Now or global
// rand.Intn silently breaks worker-count invariance, shard equivalence and
// the byte-identity CI gates. Escape hatch: //qnetlint:allow detrand
// <reason>.
var DetRandAnalyzer = &analysis.Analyzer{
	Name: "detrand",
	Doc: "forbid wall-clock time and global math/rand in simulation packages\n\n" +
		"Simulation packages (sim, qnet, core, routing, linklayer, device,\n" +
		"hardware, werner, quantum, signaling) must derive every random draw\n" +
		"from the replica seed and every timestamp from sim.Time. Wall-clock\n" +
		"reads (time.Now/Since/Sleep/...) and the shared global math/rand\n" +
		"functions make replicas diverge run to run.",
	Run: runDetRand,
}

// detrandBanned maps package path -> function name -> why it is banned.
var detrandBanned = map[string]map[string]string{
	"time": {
		"Now":       "reads the wall clock",
		"Since":     "reads the wall clock",
		"Until":     "reads the wall clock",
		"Sleep":     "blocks on the wall clock",
		"After":     "schedules on the wall clock",
		"Tick":      "schedules on the wall clock",
		"NewTimer":  "schedules on the wall clock",
		"NewTicker": "schedules on the wall clock",
		"AfterFunc": "schedules on the wall clock",
	},
	// Top-level math/rand functions draw from the process-global source,
	// which is shared across goroutines and (since go1.20) randomly
	// seeded. Constructors (New, NewSource, NewZipf) are fine: they build
	// explicitly seeded streams.
	"math/rand": {
		"Int": "", "Intn": "", "Int31": "", "Int31n": "", "Int63": "", "Int63n": "",
		"Uint32": "", "Uint64": "", "Float32": "", "Float64": "",
		"ExpFloat64": "", "NormFloat64": "", "Perm": "", "Shuffle": "",
		"Read": "", "Seed": "",
	},
	"math/rand/v2": {
		"Int": "", "IntN": "", "Int32": "", "Int32N": "", "Int64": "", "Int64N": "",
		"Uint32": "", "Uint32N": "", "Uint64": "", "Uint64N": "", "UintN": "", "Uint": "",
		"Float32": "", "Float64": "", "ExpFloat64": "", "NormFloat64": "",
		"Perm": "", "Shuffle": "", "N": "",
	},
	// crypto/rand is nondeterministic by design.
	"crypto/rand": {
		"Read": "", "Int": "", "Prime": "", "Text": "",
	},
}

func runDetRand(pass *analysis.Pass) (interface{}, error) {
	sup := newSuppressor(pass)
	if !isSimulationPackage(pass.Pkg.Path()) {
		return nil, nil
	}
	// The driver sorts diagnostics by position, so the random iteration
	// order of Uses never reaches the output.
	for id, obj := range pass.TypesInfo.Uses {
		switch obj := obj.(type) {
		case *types.Func:
			if obj.Pkg() == nil {
				continue
			}
			// Methods on explicitly seeded values ((*rand.Rand).Intn,
			// (*time.Timer).Reset, ...) are fine: only the package-level
			// functions touch the global source / wall clock.
			if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
				continue
			}
			why, banned := detrandBanned[obj.Pkg().Path()][obj.Name()]
			if !banned {
				continue
			}
			if why == "" {
				if obj.Pkg().Path() == "crypto/rand" {
					why = "is nondeterministic by design"
				} else {
					why = "draws from the shared global source"
				}
			}
			sup.report(id.Pos(), "%s.%s %s: simulation code must derive all randomness and time from the replica seed (use the scenario's seeded streams / sim.Time)",
				obj.Pkg().Name(), obj.Name(), why)
		case *types.Var:
			// crypto/rand.Reader is a package variable, not a function.
			if obj.Pkg() != nil && obj.Pkg().Path() == "crypto/rand" && obj.Name() == "Reader" {
				sup.report(id.Pos(), "crypto/rand.Reader is nondeterministic by design: simulation code must derive all randomness from the replica seed")
			}
		}
	}
	return nil, nil
}
