package lint

import (
	"go/ast"
	"go/types"

	"qnp/internal/lint/analysis"
)

// HotAllocAnalyzer keeps the hot path allocation-free: inside hot-path
// packages, a call to an allocating linalg/quantum API whose
// workspace-threaded twin (…Into, …W, …Cached) exists is flagged — but only
// in functions that actually have a Workspace in scope (a *linalg.Workspace
// parameter, or a receiver carrying a Workspace field). Constructors, test
// setup and cold-path composition code have no workspace and keep using the
// ergonomic allocating forms; the rule only bites where the zero-allocation
// contract already holds and a stray Mul/Kron would quietly reintroduce
// steady-state garbage. Escape hatch: //qnetlint:allow hotalloc <reason>.
var HotAllocAnalyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc: "flag allocating API calls where a workspace-threaded twin exists\n\n" +
		"In hot-path packages, functions with a linalg.Workspace in scope\n" +
		"must call the …Into/…W twins (MulInto, ApplyGate1W, DecohereW, …)\n" +
		"instead of the allocating forms; anything else leaks allocations\n" +
		"back into the per-event path the zero-allocation refactor cleared.",
	Run: runHotAlloc,
}

// hotAllocTwins maps package path -> allocating function/method name ->
// the workspace-threaded twin to use instead.
var hotAllocTwins = map[string]map[string]string{
	modulePath + "/internal/linalg": {
		"Mul":          "MulInto",
		"Add":          "AddInto",
		"Scale":        "ScaleInto",
		"Adjoint":      "ConjTransposeInto",
		"Kron":         "KronInto",
		"PartialTrace": "PartialTraceInto",
	},
	modulePath + "/internal/quantum": {
		"ApplyGate1":     "ApplyGate1W",
		"ApplyGate2":     "ApplyGate2W",
		"NoisyGate1":     "NoisyGate1W",
		"NoisyGate2":     "NoisyGate2W",
		"Decohere":       "DecohereW",
		"Measure":        "MeasureW",
		"MeasureInBasis": "MeasureInBasisW",
		"Swap":           "SwapW",
		"Lift1":          "Lift1Into",
		"Lift2":          "Lift2Into",
		"Apply":          "ApplyW",  // Kraus method
		"Apply2":         "Apply2W", // Kraus method
		"BellProjector":  "BellProjectorCached",
	},
}

func runHotAlloc(pass *analysis.Pass) (interface{}, error) {
	if !isHotPathPackage(pass.Pkg.Path()) {
		return nil, nil
	}
	sup := newSuppressor(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkHotAllocIn(pass, sup, fd.Body, funcHasWorkspace(pass.TypesInfo, fd))
		}
	}
	return nil, nil
}

// checkHotAllocIn walks a body; wsInScope tracks whether the surrounding
// function is workspace-threaded. Nested function literals inherit the
// enclosing availability (they capture the workspace) and may add their own
// via parameters.
func checkHotAllocIn(pass *analysis.Pass, sup *suppressor, n ast.Node, wsInScope bool) {
	info := pass.TypesInfo
	ast.Inspect(n, func(c ast.Node) bool {
		switch c := c.(type) {
		case *ast.FuncLit:
			if c.Pos() == n.Pos() {
				return true
			}
			inner := wsInScope
			if sig, ok := info.TypeOf(c).(*types.Signature); ok && signatureHasWorkspace(sig) {
				inner = true
			}
			checkHotAllocIn(pass, sup, c.Body, inner)
			return false
		case *ast.CallExpr:
			if !wsInScope {
				return true
			}
			fn := calleeFunc(info, c)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			twin, banned := hotAllocTwins[fn.Pkg().Path()][fn.Name()]
			if !banned {
				return true
			}
			sup.report(c.Pos(), "%s.%s allocates on every call but a workspace is in scope here — use %s.%s (//qnetlint:allow hotalloc <reason> for deliberate cold-path use)",
				fn.Pkg().Name(), fn.Name(), fn.Pkg().Name(), twin)
		}
		return true
	})
}

// funcHasWorkspace reports whether fd is workspace-threaded: a
// *linalg.Workspace parameter, or a receiver whose struct carries a
// Workspace field.
func funcHasWorkspace(info *types.Info, fd *ast.FuncDecl) bool {
	obj, ok := info.ObjectOf(fd.Name).(*types.Func)
	if !ok {
		return false
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok {
		return false
	}
	if signatureHasWorkspace(sig) {
		return true
	}
	if recv := sig.Recv(); recv != nil {
		if named, ok := derefNamed(recv.Type()); ok {
			if st, ok := named.Underlying().(*types.Struct); ok {
				for i := 0; i < st.NumFields(); i++ {
					if isWorkspaceType(st.Field(i).Type()) {
						return true
					}
				}
			}
		}
	}
	return false
}

func signatureHasWorkspace(sig *types.Signature) bool {
	for i := 0; i < sig.Params().Len(); i++ {
		if isWorkspaceType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

func isWorkspaceType(t types.Type) bool {
	named, ok := derefNamed(t)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == "Workspace" &&
		obj.Pkg() != nil && obj.Pkg().Path() == modulePath+"/internal/linalg"
}
