// Package werner is the scalar fast-path physics engine: it tracks one
// Werner parameter w per entangled pair instead of a 4×4 density matrix,
// with closed-form updates for every operation the exact engine
// (internal/quantum) performs on a pair — heralded generation, memory
// decoherence, entanglement swapping, single-qubit depolarising and
// dephasing noise, Pauli-frame corrections and destructive measurement.
//
// A Werner state with parameter w relative to Bell state |B> is
//
//	ρ(w) = w·|B><B| + (1−w)·I/4,
//
// so its fidelity to |B> is (1+3w)/4 and to any other Bell state (1−w)/4.
// Each closed form below is exact for Werner inputs (the property tests in
// this package pin them against the exact engine to ≤1e-12); composing them
// through a protocol run is an approximation only because intermediate
// states are re-twirled to Werner form after each step.
//
// Determinism contract: every function that consumes randomness draws from
// the *rand.Rand in exactly the same order and count as its exact-engine
// counterpart (quantum.SwapW, quantum.MeasureInBasisW, hardware.GenerateW),
// so a simulation switched between engines sees identical RNG streams and
// an identical event timeline.
package werner

import (
	"math"
	"math/rand"

	"qnp/internal/quantum"
)

// FromFidelity converts a fidelity to the equivalent Werner parameter
// w = (4f−1)/3. Fidelities below 1/4 yield negative w (still a valid
// density matrix down to w = −1/3).
func FromFidelity(f float64) float64 { return (4*f - 1) / 3 }

// Fidelity returns the fidelity (1+3w)/4 of a Werner-w pair to its own
// Bell state.
func Fidelity(w float64) float64 { return (1 + 3*w) / 4 }

// CrossFidelity returns the fidelity (1−w)/4 of a Werner-w pair to any of
// the three Bell states other than its own.
func CrossFidelity(w float64) float64 { return (1 - w) / 4 }

// Generate maps a heralded-generation attempt to its Werner equivalent.
// fidelity is hardware.PairModel.Fidelity(), which already folds in photon
// dephasing, double excitation and the dark-count branch; the one Intn(2)
// draw mirrors hardware.GenerateW's random Ψ+/Ψ− herald so the RNG stream
// stays aligned with the exact engine.
func Generate(fidelity float64, rng *rand.Rand) (w float64, idx quantum.BellIndex) {
	idx = quantum.PsiPlus
	if rng.Intn(2) == 1 {
		idx = quantum.PsiMinus
	}
	return FromFidelity(fidelity), idx
}

// Decohere applies one joint amplitude-damping + dephasing step to both
// qubits of a Werner-w pair and returns the re-twirled Werner parameter.
// (g1, p1) and (g2, p2) are the per-side damping probability γ and phase
// flip probability from quantum.DecoherenceProbabilities; pass (0, 0) for
// a side that no longer holds a live qubit. phi says whether the pair's
// Bell state has X-bit 0 (Φ± live on |00>,|11>) or 1 (Ψ± on |01>,|10>) —
// amplitude damping treats the two supports differently, which is why the
// closed form needs it.
//
// The formula is exact for Werner input even though the exact engine
// applies the two sides sequentially: DecohereW is a product channel per
// side, so one joint application equals the composition.
func Decohere(w float64, phi bool, g1, p1, g2, p2 float64) float64 {
	// Coherence survival of the off-diagonal Bell element.
	d := math.Sqrt((1-g1)*(1-g2)) * (1 - 2*p1) * (1 - 2*p2)
	var f float64
	if phi {
		// Φ support: |11> decays to |00>, which is also in the support, so
		// the double-decay product γ₁γ₂ feeds fidelity back.
		f = w*((2-g1-g2+2*g1*g2)/4+d/2) + (1-w)*(1+g1*g2)/4
	} else {
		// Ψ support: decay leaves the support entirely.
		f = w*((2-g1-g2)/4+d/2) + (1-w)*(1-g1*g2)/4
	}
	return FromFidelity(f)
}

// Depolarize1 applies a one-sided depolarising channel with probability p.
// A Werner state's marginals are maximally mixed, so the closed form
// w' = (1−p)·w is exact.
func Depolarize1(w, p float64) float64 { return (1 - p) * w }

// PhaseFlip applies a one-sided phase flip (Z with probability p): the
// affected Bell component's fidelity moves to its phase partner, and the
// re-twirled parameter is w' = w·(1 − 4p/3).
func PhaseFlip(w, p float64) float64 { return w * (1 - 4*p/3) }

// SwapResult is the scalar analogue of quantum.SwapResult.
type SwapResult struct {
	// W is the merged pair's Werner parameter relative to the Bell index
	// the protocol *declares* via quantum.Combine with Outcome — readout
	// errors that misreport the Bell measurement are already folded in.
	W       float64
	Outcome quantum.BellIndex
}

// Swap performs the Bell-state measurement of an entanglement swap on two
// Werner pairs with parameters w1 and w2. It mirrors quantum.SwapW's noise
// model (depolarising two-qubit CNOT, depolarising single-qubit H, readout
// errors on both bits) and its RNG discipline exactly: four draws, in the
// order z-truth, z-readout, x-truth, x-readout. Werner marginals are
// maximally mixed, so each truth bit is an unbiased coin in every noise
// branch — the 0.5 threshold below is exact, not an approximation.
func Swap(w1, w2 float64, cfg quantum.SwapConfig, rng *rand.Rand) SwapResult {
	p2 := 1 - cfg.TwoQubitFidelity    // CNOT depolarising weight
	p1 := 1 - cfg.SingleQubitFidelity // H depolarising weight (z-measured qubit)
	zTruth, zBit := measureBit(cfg.Readout, rng)
	xTruth, xBit := measureBit(cfg.Readout, rng)

	// Fidelity of the merged pair to the *declared* Bell state, conditioned
	// on what was measured vs what was reported. In the clean branch
	// (probability q0) the declared frame is right only if neither readout
	// flipped; if the H-target qubit was depolarised (q1) the z bit carries
	// no information and contributes 1/2; the CNOT-depolarised branch (p2)
	// is maximally mixed and contributes 1/4.
	q0 := (1 - p2) * (1 - p1)
	q1 := (1 - p2) * p1
	var dz, dx float64
	if zBit == zTruth {
		dz = 1
	}
	if xBit == xTruth {
		dx = 1
	}
	fBB := q0*dz*dx + q1*dx/2 + p2/4
	return SwapResult{
		W:       w1 * w2 * FromFidelity(fBB),
		Outcome: quantum.BellIndex(uint8(xBit) | uint8(zBit)<<1),
	}
}

// Measure destructively measures one qubit of a Werner pair in any basis
// and returns the reported bit. The marginal of a Werner state is I/2 in
// every basis, so the truth bit is a fair coin; the readout model and the
// two-draw RNG discipline match quantum.MeasureW (basis rotations in
// MeasureInBasisW consume no draws).
func Measure(ro quantum.Readout, rng *rand.Rand) int {
	_, bit := measureBit(ro, rng)
	return bit
}

// measureBit draws one uniformly random truth bit and pushes it through the
// readout error model, consuming exactly two rng draws in MeasureW's order.
func measureBit(ro quantum.Readout, rng *rand.Rand) (truth, bit int) {
	truth = 1
	if rng.Float64() < 0.5 {
		truth = 0
	}
	bit = truth
	if truth == 0 {
		if rng.Float64() > ro.F0 {
			bit = 1
		}
	} else {
		if rng.Float64() > ro.F1 {
			bit = 0
		}
	}
	return truth, bit
}
