package werner

import (
	"math"
	"math/rand"
	"testing"

	"qnp/internal/hardware"
	"qnp/internal/linalg"
	"qnp/internal/quantum"
)

// The closed forms are exact on Werner inputs; everything here pins them
// against the exact density-matrix engine to this tolerance.
const tol = 1e-12

var (
	wGrid   = []float64{-0.3, 0, 0.2, 0.6, 0.9, 1}
	allBell = []quantum.BellIndex{quantum.PhiPlus, quantum.PsiPlus, quantum.PhiMinus, quantum.PsiMinus}
)

// wernerRho materialises the Werner state w·|B><B| + (1−w)·I/4.
func wernerRho(w float64, idx quantum.BellIndex) *linalg.Matrix {
	return quantum.WernerFor(Fidelity(w), idx)
}

func TestFidelityConversions(t *testing.T) {
	for _, w := range wGrid {
		if got := FromFidelity(Fidelity(w)); math.Abs(got-w) > tol {
			t.Errorf("FromFidelity(Fidelity(%v)) = %v", w, got)
		}
		for _, idx := range allBell {
			rho := wernerRho(w, idx)
			if got := quantum.Fidelity(rho, idx); math.Abs(got-Fidelity(w)) > tol {
				t.Errorf("w=%v idx=%v: exact fidelity %v, scalar %v", w, idx, got, Fidelity(w))
			}
			if got := quantum.Fidelity(rho, idx^1); math.Abs(got-CrossFidelity(w)) > tol {
				t.Errorf("w=%v idx=%v: exact cross fidelity %v, scalar %v", w, idx, got, CrossFidelity(w))
			}
		}
	}
}

// TestDecohereMatchesExact pins the joint two-sided decoherence closed form
// against sequential per-side DecohereW — the exact composition Pair.AdvanceTo
// performs — over both Bell supports, asymmetric lifetimes and dead sides.
func TestDecohereMatchesExact(t *testing.T) {
	ws := linalg.NewWorkspace()
	lifetimes := []struct{ t1, t2 float64 }{
		{3600, 60}, // simulation electron
		{360, 60},  // near-term carbon
		{0.5, 0.1}, // fast decay: large γ and pflip
		{0, 2},     // no amplitude damping
		{1, 0},     // no dephasing
	}
	for _, w := range wGrid {
		for _, idx := range allBell {
			for _, dt := range []float64{1e-4, 0.01, 0.5, 5} {
				for _, l0 := range lifetimes {
					for _, l1 := range lifetimes {
						for _, live := range [][2]bool{{true, true}, {true, false}, {false, true}} {
							rho := wernerRho(w, idx)
							var g, p [2]float64
							sides := [2]struct{ t1, t2 float64 }{l0, l1}
							for s := 0; s < 2; s++ {
								if !live[s] {
									continue
								}
								g[s], p[s] = quantum.DecoherenceProbabilities(dt, sides[s].t1, sides[s].t2)
								rho = quantum.DecohereW(ws, rho, s, 2, dt, sides[s].t1, sides[s].t2)
							}
							exactF := quantum.Fidelity(rho, idx)
							got := Fidelity(Decohere(w, idx.XBit() == 0, g[0], p[0], g[1], p[1]))
							if math.Abs(got-exactF) > tol {
								t.Fatalf("w=%v idx=%v dt=%v l0=%+v l1=%+v live=%v: exact %v scalar %v (Δ=%.3g)",
									w, idx, dt, l0, l1, live, exactF, got, got-exactF)
							}
						}
					}
				}
			}
		}
	}
}

func TestDepolarize1MatchesExact(t *testing.T) {
	ws := linalg.NewWorkspace()
	for _, w := range wGrid {
		for _, idx := range allBell {
			for _, p := range []float64{0, 0.002, 0.05, 0.3, 1} {
				for side := 0; side < 2; side++ {
					rho := quantum.ApplyDepolarizing1W(ws, wernerRho(w, idx), p, side, 2)
					exactF := quantum.Fidelity(rho, idx)
					if got := Fidelity(Depolarize1(w, p)); math.Abs(got-exactF) > tol {
						t.Fatalf("w=%v idx=%v p=%v side=%d: exact %v scalar %v", w, idx, p, side, got, exactF)
					}
				}
			}
		}
	}
}

func TestPhaseFlipMatchesExact(t *testing.T) {
	ws := linalg.NewWorkspace()
	for _, w := range wGrid {
		for _, idx := range allBell {
			for _, p := range []float64{0, 2.5e-5, 0.01, 0.2, 0.5} {
				for side := 0; side < 2; side++ {
					rho := quantum.ApplyPhaseFlipW(ws, wernerRho(w, idx), p, side, 2)
					exactF := quantum.Fidelity(rho, idx)
					if got := Fidelity(PhaseFlip(w, p)); math.Abs(got-exactF) > tol {
						t.Fatalf("w=%v idx=%v p=%v side=%d: exact %v scalar %v", w, idx, p, side, got, exactF)
					}
				}
			}
		}
	}
}

// TestSwapMatchesExact drives quantum.SwapW and the scalar Swap from
// identically seeded RNGs on Werner inputs: the reported outcome must be
// identical (same draws, same thresholds), the merged fidelity to the
// declared Bell index equal to float precision, and both engines must leave
// their RNG at the same position.
func TestSwapMatchesExact(t *testing.T) {
	ws := linalg.NewWorkspace()
	cfgs := []quantum.SwapConfig{
		quantum.PerfectSwap,
		{TwoQubitFidelity: 0.998, SingleQubitFidelity: 1.0, Readout: quantum.Readout{F0: 0.998, F1: 0.998}},
		{TwoQubitFidelity: 0.95, SingleQubitFidelity: 0.97, Readout: quantum.Readout{F0: 0.9, F1: 0.95}},
	}
	for _, cfg := range cfgs {
		for _, w1 := range []float64{0.2, 0.6, 0.9, 1} {
			for _, w2 := range []float64{-0.2, 0.5, 0.95} {
				for _, idx1 := range allBell {
					for _, idx2 := range []quantum.BellIndex{quantum.PhiPlus, quantum.PsiMinus} {
						for seed := int64(1); seed <= 8; seed++ {
							rngE := rand.New(rand.NewSource(seed))
							rngS := rand.New(rand.NewSource(seed))
							res := quantum.SwapW(ws, wernerRho(w1, idx1), wernerRho(w2, idx2), cfg, rngE)
							sres := Swap(w1, w2, cfg, rngS)
							if res.Outcome != sres.Outcome {
								t.Fatalf("cfg=%+v w=(%v,%v) seed=%d: outcome exact %v scalar %v",
									cfg, w1, w2, seed, res.Outcome, sres.Outcome)
							}
							declared := quantum.Combine(idx1, idx2, res.Outcome)
							exactF := quantum.Fidelity(res.Rho, declared)
							if got := Fidelity(sres.W); math.Abs(got-exactF) > tol {
								t.Fatalf("cfg=%+v w=(%v,%v) idx=(%v,%v) seed=%d: fidelity exact %v scalar %v (Δ=%.3g)",
									cfg, w1, w2, idx1, idx2, seed, exactF, got, got-exactF)
							}
							if a, b := rngE.Float64(), rngS.Float64(); a != b {
								t.Fatalf("RNG streams diverged after swap: %v vs %v", a, b)
							}
							ws.Put(res.Rho)
						}
					}
				}
			}
		}
	}
}

// TestMeasureMatchesExact checks destructive measurement: identical reported
// bits from identically seeded RNGs in all three bases (Werner marginals are
// I/2 in every basis), and identical RNG positions afterwards.
func TestMeasureMatchesExact(t *testing.T) {
	ws := linalg.NewWorkspace()
	readouts := []quantum.Readout{quantum.PerfectReadout, {F0: 0.998, F1: 0.998}, {F0: 0.9, F1: 0.95}}
	for _, ro := range readouts {
		for _, basis := range []quantum.Basis{quantum.ZBasis, quantum.XBasis, quantum.YBasis} {
			for _, w := range []float64{0, 0.6, 1} {
				for side := 0; side < 2; side++ {
					for seed := int64(1); seed <= 16; seed++ {
						rngE := rand.New(rand.NewSource(seed))
						rngS := rand.New(rand.NewSource(seed))
						bitE, post := quantum.MeasureInBasisW(ws, wernerRho(w, quantum.PsiPlus), side, 2, basis, ro, rngE)
						if bitS := Measure(ro, rngS); bitE != bitS {
							t.Fatalf("ro=%+v basis=%v w=%v side=%d seed=%d: bit exact %d scalar %d",
								ro, basis, w, side, seed, bitE, bitS)
						}
						if a, b := rngE.Float64(), rngS.Float64(); a != b {
							t.Fatalf("RNG streams diverged after measure: %v vs %v", a, b)
						}
						ws.Put(post)
					}
				}
			}
		}
	}
}

// TestGenerateMatchesExact pins heralded generation: same Bell index from
// the same draws, and the scalar Werner parameter derived from the model
// fidelity reproduces the exact produced state's fidelity to its heralded
// index. This covers the dark-count branch via the tiny-α settings, where
// WDark dominates.
func TestGenerateMatchesExact(t *testing.T) {
	ws := linalg.NewWorkspace()
	links := []hardware.LinkConfig{hardware.LabLink(), hardware.TelecomLink(25000)}
	params := []hardware.Params{hardware.Simulation(), hardware.NearTerm()}
	for _, l := range links {
		for _, p := range params {
			for _, alpha := range []float64{1e-6, 1e-4, 0.01, 0.1, 0.3} {
				model := l.Model(p, alpha)
				for seed := int64(1); seed <= 8; seed++ {
					rngE := rand.New(rand.NewSource(seed))
					rngS := rand.New(rand.NewSource(seed))
					rhoE, idxE := l.GenerateW(ws, p, alpha, rngE)
					wS, idxS := Generate(model.Fidelity(), rngS)
					if idxE != idxS {
						t.Fatalf("alpha=%v seed=%d: herald exact %v scalar %v", alpha, seed, idxE, idxS)
					}
					exactF := quantum.Fidelity(rhoE, idxE)
					if got := Fidelity(wS); math.Abs(got-exactF) > tol {
						t.Fatalf("alpha=%v wdark=%v: fidelity exact %v scalar %v (Δ=%.3g)",
							alpha, model.WDark, exactF, got, got-exactF)
					}
					if a, b := rngE.Float64(), rngS.Float64(); a != b {
						t.Fatalf("RNG streams diverged after generate: %v vs %v", a, b)
					}
					ws.Put(rhoE)
				}
			}
		}
	}
}
