package netsim

import (
	"testing"

	"qnp/internal/sim"
)

func build(t *testing.T) (*sim.Simulation, *Network) {
	t.Helper()
	s := sim.New(1)
	n := New(s)
	for _, id := range []NodeID{"a", "b", "c"} {
		n.AddNode(id)
	}
	n.Connect("a", "b", 10*sim.Microsecond)
	n.Connect("b", "c", 20*sim.Microsecond)
	return s, n
}

func TestDeliveryWithDelay(t *testing.T) {
	s, n := build(t)
	var gotAt sim.Time
	var gotFrom NodeID
	var gotMsg Message
	n.Handle("b", func(from NodeID, msg Message) {
		gotAt, gotFrom, gotMsg = s.Now(), from, msg
	})
	n.Send("a", "b", "hello")
	s.Run()
	if gotAt != sim.Time(10*sim.Microsecond) {
		t.Errorf("delivered at %v, want 10µs", gotAt)
	}
	if gotFrom != "a" || gotMsg != "hello" {
		t.Errorf("got %v from %v", gotMsg, gotFrom)
	}
}

func TestInOrderDelivery(t *testing.T) {
	s, n := build(t)
	var got []int
	n.Handle("b", func(_ NodeID, msg Message) { got = append(got, msg.(int)) })
	for i := 0; i < 20; i++ {
		n.Send("a", "b", i)
	}
	s.Run()
	if len(got) != 20 {
		t.Fatalf("delivered %d messages", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("reordered delivery: %v", got)
		}
	}
}

func TestProcessingDelayKnob(t *testing.T) {
	s, n := build(t)
	var gotAt sim.Time
	n.Handle("b", func(NodeID, Message) { gotAt = s.Now() })
	n.SetProcessingDelay(5 * sim.Millisecond)
	if n.ProcessingDelay() != 5*sim.Millisecond {
		t.Error("ProcessingDelay readback wrong")
	}
	n.Send("a", "b", 1)
	s.Run()
	want := sim.Time(10*sim.Microsecond + 5*sim.Millisecond)
	if gotAt != want {
		t.Errorf("delivered at %v, want %v", gotAt, want)
	}
}

func TestMultipleHandlers(t *testing.T) {
	s, n := build(t)
	calls := 0
	n.Handle("b", func(NodeID, Message) { calls++ })
	n.Handle("b", func(NodeID, Message) { calls++ })
	n.Send("a", "b", 1)
	s.Run()
	if calls != 2 {
		t.Errorf("handler calls = %d, want 2", calls)
	}
}

func TestTopologyQueries(t *testing.T) {
	_, n := build(t)
	if !n.Connected("a", "b") || !n.Connected("b", "a") {
		t.Error("Connected symmetric lookup failed")
	}
	if n.Connected("a", "c") {
		t.Error("a-c should not be connected")
	}
	if n.Delay("b", "c") != 20*sim.Microsecond {
		t.Error("Delay lookup wrong")
	}
	nb := n.Neighbors("b")
	if len(nb) != 2 {
		t.Errorf("Neighbors(b) = %v", nb)
	}
	if got := n.PathDelay([]NodeID{"a", "b", "c"}); got != 30*sim.Microsecond {
		t.Errorf("PathDelay = %v", got)
	}
	if !n.HasNode("a") || n.HasNode("zz") {
		t.Error("HasNode wrong")
	}
}

func TestSendWithoutChannelPanics(t *testing.T) {
	_, n := build(t)
	defer func() {
		if recover() == nil {
			t.Error("Send without channel did not panic")
		}
	}()
	n.Send("a", "c", 1)
}

func TestDuplicateNodePanics(t *testing.T) {
	_, n := build(t)
	defer func() {
		if recover() == nil {
			t.Error("duplicate AddNode did not panic")
		}
	}()
	n.AddNode("a")
}

func TestDuplicateChannelPanics(t *testing.T) {
	_, n := build(t)
	defer func() {
		if recover() == nil {
			t.Error("duplicate Connect did not panic")
		}
	}()
	n.Connect("b", "a", sim.Microsecond)
}

func TestStatsCount(t *testing.T) {
	s, n := build(t)
	n.Handle("b", func(NodeID, Message) {})
	for i := 0; i < 7; i++ {
		n.Send("a", "b", i)
	}
	s.Run()
	if n.Stats().MessagesSent != 7 {
		t.Errorf("MessagesSent = %d", n.Stats().MessagesSent)
	}
}

func TestBidirectional(t *testing.T) {
	s, n := build(t)
	got := map[NodeID]bool{}
	n.Handle("a", func(from NodeID, _ Message) { got["a<-"+from] = true })
	n.Handle("b", func(from NodeID, _ Message) { got["b<-"+from] = true })
	n.Send("a", "b", 1)
	n.Send("b", "a", 2)
	s.Run()
	if !got["a<-b"] || !got["b<-a"] {
		t.Errorf("bidirectional delivery failed: %v", got)
	}
}
