// Package netsim provides the classical message plane of the simulated
// quantum network: nodes joined by bidirectional channels that deliver
// messages reliably and in order after a propagation delay.
//
// The paper's QNP "requires that all its control messages are transmitted
// reliably and in order ... we may simply rely on a transport protocol to
// provide these guarantees (e.g. TCP or QUIC)". This package is that
// abstraction: no loss, no reordering, plus a configurable processing delay
// so the Fig. 10c experiment can sweep "the time between the sending of any
// QNP message to the moment that message is processed at the next node".
package netsim

import (
	"fmt"
	"sort"

	"qnp/internal/sim"
)

// NodeID names a node. IDs are unique within a Network.
type NodeID string

// Message is any protocol payload. Handlers type-switch on the concrete
// type, the same way a demultiplexing transport hands frames to protocols.
type Message any

// Handler consumes messages delivered to a node.
type Handler func(from NodeID, msg Message)

type channel struct {
	delay sim.Duration
}

type linkKey struct{ a, b NodeID }

func keyFor(a, b NodeID) linkKey {
	if a > b {
		a, b = b, a
	}
	return linkKey{a, b}
}

// Stats counts classical-plane activity.
type Stats struct {
	MessagesSent uint64
}

// Network is the classical plane. All methods must be called from the
// simulation goroutine (the simulator is single-threaded by design).
type Network struct {
	sim      *sim.Simulation
	channels map[linkKey]*channel
	handlers map[NodeID][]Handler
	// processing is the extra per-hop delay added to every delivery — the
	// Fig. 10c knob.
	processing sim.Duration
	stats      Stats
}

// New creates an empty classical network on the given simulation.
func New(s *sim.Simulation) *Network {
	return &Network{
		sim:      s,
		channels: make(map[linkKey]*channel),
		handlers: make(map[NodeID][]Handler),
	}
}

// AddNode registers a node. Adding the same node twice panics — topology is
// static configuration, and a duplicate always means a miswired experiment.
func (n *Network) AddNode(id NodeID) {
	if _, ok := n.handlers[id]; ok {
		panic(fmt.Sprintf("netsim: duplicate node %q", id))
	}
	n.handlers[id] = nil
}

// HasNode reports whether id is registered.
func (n *Network) HasNode(id NodeID) bool {
	_, ok := n.handlers[id]
	return ok
}

// Connect joins two registered nodes with a bidirectional channel of the
// given one-way propagation delay.
func (n *Network) Connect(a, b NodeID, delay sim.Duration) {
	if !n.HasNode(a) || !n.HasNode(b) {
		panic(fmt.Sprintf("netsim: Connect %q-%q with unregistered node", a, b))
	}
	if a == b {
		panic("netsim: self-loop")
	}
	k := keyFor(a, b)
	if _, ok := n.channels[k]; ok {
		panic(fmt.Sprintf("netsim: duplicate channel %q-%q", a, b))
	}
	n.channels[k] = &channel{delay: delay}
}

// Connected reports whether a and b share a channel.
func (n *Network) Connected(a, b NodeID) bool {
	_, ok := n.channels[keyFor(a, b)]
	return ok
}

// Delay returns the one-way propagation delay of the a-b channel.
func (n *Network) Delay(a, b NodeID) sim.Duration {
	c, ok := n.channels[keyFor(a, b)]
	if !ok {
		panic(fmt.Sprintf("netsim: no channel %q-%q", a, b))
	}
	return c.delay
}

// SetProcessingDelay sets the extra per-hop delay applied to every message
// from now on (it does not affect messages already in flight).
func (n *Network) SetProcessingDelay(d sim.Duration) { n.processing = d }

// ProcessingDelay returns the current per-hop processing delay.
func (n *Network) ProcessingDelay() sim.Duration { return n.processing }

// Handle registers a message handler at a node. Multiple handlers receive
// every message in registration order; protocols filter by message type.
func (n *Network) Handle(id NodeID, h Handler) {
	if !n.HasNode(id) {
		panic(fmt.Sprintf("netsim: Handle on unregistered node %q", id))
	}
	n.handlers[id] = append(n.handlers[id], h)
}

// Send transmits msg from one node to an adjacent node. Delivery happens
// after the channel's propagation delay plus the processing delay; messages
// between the same pair of nodes are never reordered (the event queue is
// FIFO at equal timestamps and delays are constant per channel).
func (n *Network) Send(from, to NodeID, msg Message) {
	c, ok := n.channels[keyFor(from, to)]
	if !ok {
		panic(fmt.Sprintf("netsim: Send %q→%q without channel", from, to))
	}
	n.stats.MessagesSent++
	n.sim.Schedule(c.delay+n.processing, func() {
		for _, h := range n.handlers[to] {
			h(from, msg)
		}
	})
}

// Stats returns counters accumulated so far.
func (n *Network) Stats() Stats { return n.stats }

// Neighbors returns the nodes adjacent to id, in lexicographic order.
func (n *Network) Neighbors(id NodeID) []NodeID {
	var out []NodeID
	for k := range n.channels {
		switch id {
		case k.a:
			out = append(out, k.b)
		case k.b:
			out = append(out, k.a)
		}
	}
	// The channel map's iteration order is random per run; callers walking
	// the topology must see a stable adjacency list.
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PathDelay sums the propagation delays along a node path.
func (n *Network) PathDelay(path []NodeID) sim.Duration {
	var d sim.Duration
	for i := 0; i+1 < len(path); i++ {
		d += n.Delay(path[i], path[i+1])
	}
	return d
}
