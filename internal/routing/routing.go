// Package routing implements the paper's evaluation routing protocol (§5):
// "a rudimentary algorithm that runs in a central controller and assumes all
// links and nodes are identical. It calculates a network path together with
// link fidelities as a function of end-to-end requirements by simulating the
// worst case scenario where every link-pair is swapped just before its
// cutoff timer pops."
//
// The worst-case simulation here is literal: candidate link fidelities are
// evaluated by ageing the hardware model's produced state for the cutoff
// interval on both qubits and composing noisy entanglement swaps with the
// same quantum engine the data plane uses, then bisecting for the smallest
// link fidelity that still meets the end-to-end target.
//
// Beyond the paper, the controller places circuits rather than merely
// routing them: Place (the typed PlacementRequest/PlacementDecision API)
// enumerates up to K loopless candidate paths with Yen's algorithm, budgets
// each candidate with the worst-case simulation above, scores it by its
// modeled deliverable end-to-end rate against the current link membership,
// and — when admission control would reject a MinEER demand on the
// shortest path — falls back to the first candidate that can absorb it.
// Under admission control each link's pair-rate budget is divided among
// its member circuits by an AllocPolicy: equal count-split, model-weighted
// (proportional to each member's modeled deliverable rate), or frozen
// static halves.
package routing

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"qnp/internal/hardware"
	"qnp/internal/linalg"
	"qnp/internal/quantum"
	"qnp/internal/sim"
)

// CutoffPolicy selects how the controller sets the circuit's cutoff timer.
type CutoffPolicy int

// Cutoff policies from the evaluation section. The zero value is the
// paper's default policy.
const (
	// CutoffLong is the default: "the time it takes a link-pair to lose
	// approximately 1.5% of its initial fidelity".
	CutoffLong CutoffPolicy = iota
	// CutoffShort is §5.1's alternative: "the time it takes for a link to
	// have a 0.85 probability of generating a link-pair".
	CutoffShort
	// CutoffNone disables the cutoff — the oracle baseline of §5.2 runs
	// this way.
	CutoffNone
	// CutoffManual uses a hand-picked value (§5.3 near-term evaluation:
	// "we tune the cutoff timer to ensure we meet the end-to-end fidelity
	// threshold").
	CutoffManual
)

func (p CutoffPolicy) String() string {
	switch p {
	case CutoffNone:
		return "none"
	case CutoffLong:
		return "long"
	case CutoffShort:
		return "short"
	case CutoffManual:
		return "manual"
	}
	return "CutoffPolicy(?)"
}

// Graph is the controller's view of the network topology. Links carry their
// physical configuration; nodes are identified by name.
type Graph struct {
	nodes map[string]bool
	links map[string]map[string]hardware.LinkConfig
}

// NewGraph returns an empty topology.
func NewGraph() *Graph {
	return &Graph{
		nodes: make(map[string]bool),
		links: make(map[string]map[string]hardware.LinkConfig),
	}
}

// AddNode registers a node.
func (g *Graph) AddNode(id string) { g.nodes[id] = true }

// AddLink registers a bidirectional link.
func (g *Graph) AddLink(a, b string, cfg hardware.LinkConfig) {
	if !g.nodes[a] || !g.nodes[b] {
		panic(fmt.Sprintf("routing: link %s-%s with unknown node", a, b))
	}
	if g.links[a] == nil {
		g.links[a] = make(map[string]hardware.LinkConfig)
	}
	if g.links[b] == nil {
		g.links[b] = make(map[string]hardware.LinkConfig)
	}
	g.links[a][b] = cfg
	g.links[b][a] = cfg
}

// Link returns the configuration of the a-b link.
func (g *Graph) Link(a, b string) (hardware.LinkConfig, bool) {
	cfg, ok := g.links[a][b]
	return cfg, ok
}

// Nodes returns every node name in sorted order.
func (g *Graph) Nodes() []string {
	out := make([]string, 0, len(g.nodes))
	for n := range g.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Neighbors returns a node's adjacent nodes in sorted order.
func (g *Graph) Neighbors(id string) []string {
	out := make([]string, 0, len(g.links[id]))
	for n := range g.links[id] {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// LinkCount returns the number of (bidirectional) links.
func (g *Graph) LinkCount() int {
	total := 0
	for _, nbrs := range g.links {
		total += len(nbrs)
	}
	return total / 2
}

// ShortestPath runs Dijkstra with unit link costs (all links identical in
// the paper's evaluation), breaking ties deterministically by node name.
func (g *Graph) ShortestPath(src, dst string) ([]string, error) {
	if !g.nodes[src] || !g.nodes[dst] {
		return nil, fmt.Errorf("routing: unknown endpoint %q or %q", src, dst)
	}
	return g.shortestPathFiltered(src, dst, nil, nil)
}

// shortestPathFiltered is ShortestPath with banned nodes and banned
// (canonically keyed) links removed from the graph — the spur searches of
// Yen's algorithm. With nil bans it is exactly ShortestPath: the iteration
// and tie-break order are untouched, so public results cannot drift.
func (g *Graph) shortestPathFiltered(src, dst string, bannedNode map[string]bool, bannedLink map[string]bool) ([]string, error) {
	dist := map[string]int{src: 0}
	prev := map[string]string{}
	visited := map[string]bool{}
	for {
		// Extract the unvisited node with minimal distance (deterministic
		// order for equal distances).
		best, bestD := "", math.MaxInt
		var names []string
		for n := range dist {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			if !visited[n] && dist[n] < bestD {
				best, bestD = n, dist[n]
			}
		}
		if best == "" {
			return nil, fmt.Errorf("routing: no path %s→%s", src, dst)
		}
		if best == dst {
			break
		}
		visited[best] = true
		var nbrs []string
		for nb := range g.links[best] {
			nbrs = append(nbrs, nb)
		}
		sort.Strings(nbrs)
		for _, nb := range nbrs {
			if bannedNode[nb] || bannedLink[linkID(best, nb)] {
				continue
			}
			if d := bestD + 1; !visited[nb] {
				if old, ok := dist[nb]; !ok || d < old {
					dist[nb] = d
					prev[nb] = best
				}
			}
		}
	}
	var path []string
	for at := dst; ; at = prev[at] {
		path = append([]string{at}, path...)
		if at == src {
			return path, nil
		}
	}
}

// Plan is the controller's output for one circuit: everything the
// signalling protocol needs to install it.
type Plan struct {
	Path []string
	// LinkFidelity is the minimum fidelity each link layer request asks for.
	LinkFidelity float64
	// Cutoff is the intermediate-node discard deadline (0 when disabled).
	Cutoff sim.Duration
	// LinkPairTime is the expected generation time of one link-pair.
	LinkPairTime sim.Duration
	// MaxLPR is the reserved link-pair rate on each link (pairs/s).
	MaxLPR float64
	// MaxEER is the circuit's end-to-end rate allocation (pairs/s);
	// 0 means no admission control (the paper's evaluation admits all).
	MaxEER float64
	// WorstCaseFidelity is the end-to-end fidelity of the worst-case
	// composition the plan was validated against.
	WorstCaseFidelity float64
	// EndToEndFidelity echoes the request.
	EndToEndFidelity float64
}

// Controller is the central routing controller.
type Controller struct {
	Graph  *Graph
	Params hardware.Params
	// EnforceEER enables admission control by populating Plan.MaxEER; the
	// paper's evaluation leaves it off ("we do not perform any resource
	// management").
	EnforceEER bool
	// Policy selects how link budget divides among the circuits sharing a
	// link; the zero value is the legacy count-split rule. See
	// AllocationPolicy.
	Policy AllocationPolicy

	// members tracks installed circuits for allocation accounting, keyed by
	// circuit ID; linkMembers indexes which members hold each link, so
	// share lookups are O(path length) and a membership change re-fits only
	// the members actually sharing a link with the changed path.
	members     map[string]member
	linkMembers map[string]map[string]bool
}

// Refit is one circuit's re-fitted allocation after a membership change.
type Refit struct {
	Circuit string
	MaxEER  float64
}

// NewController builds a controller over a topology with uniform hardware.
func NewController(g *Graph, p hardware.Params) *Controller {
	return &Controller{Graph: g, Params: p, members: make(map[string]member), linkMembers: make(map[string]map[string]bool)}
}

// linkID canonically names the a-b link for membership counting.
func linkID(a, b string) string {
	if a > b {
		a, b = b, a
	}
	return a + "|" + b
}

// PlanCircuit computes a shortest path and per-link fidelity budget for an
// end-to-end fidelity target, applying the cutoff policy. manualCutoff is
// used only with CutoffManual.
//
// Deprecated: use Place with PlacementRequest{Probe: true}, which also
// scores k-shortest-path candidates. PlanCircuit remains the k=1 legacy
// entry point and is bit-identical to its pre-placement behaviour.
func (c *Controller) PlanCircuit(src, dst string, e2eFidelity float64, policy CutoffPolicy, manualCutoff sim.Duration) (Plan, error) {
	path, err := c.Graph.ShortestPath(src, dst)
	if err != nil {
		return Plan{}, err
	}
	plan, err := c.planPath(path, e2eFidelity, policy, manualCutoff)
	if err != nil {
		return Plan{}, err
	}
	if c.EnforceEER {
		// Prospective allocation: what this circuit would be handed if it
		// joined the current membership. Admission compares this number
		// against the circuit's demand before installing.
		plan.MaxEER = c.allocationFor(memberFor(plan, false), false)
	}
	return plan, nil
}

// planPath computes the per-link fidelity budget for one concrete path:
// the smallest link fidelity whose worst-case end-to-end composition still
// meets the target, plus the cutoff and rate numbers derived from it. It
// never sets Plan.MaxEER — allocation is the placement layer's job.
func (c *Controller) planPath(path []string, e2eFidelity float64, policy CutoffPolicy, manualCutoff sim.Duration) (Plan, error) {
	link, _ := c.Graph.Link(path[0], path[1])
	hops := len(path) - 1

	_, maxF := link.MaxFidelity(c.Params)
	// Bisect the smallest link fidelity whose worst-case end-to-end
	// composition still meets the target.
	lo, hi := e2eFidelity, maxF
	if c.worstCase(link, hi, hops, policy, manualCutoff) < e2eFidelity {
		return Plan{}, fmt.Errorf("routing: %d-hop path cannot reach end-to-end fidelity %.3f", hops, e2eFidelity)
	}
	if wc := c.worstCase(link, lo, hops, policy, manualCutoff); wc >= e2eFidelity {
		hi = lo
	} else {
		for i := 0; i < 30; i++ {
			mid := (lo + hi) / 2
			if c.worstCase(link, mid, hops, policy, manualCutoff) >= e2eFidelity {
				hi = mid
			} else {
				lo = mid
			}
		}
	}
	linkF := hi
	pairTime, ok := link.ExpectedPairTime(c.Params, linkF)
	if !ok {
		return Plan{}, fmt.Errorf("routing: link cannot produce fidelity %.3f", linkF)
	}
	plan := Plan{
		Path:              path,
		LinkFidelity:      linkF,
		Cutoff:            c.cutoffFor(link, linkF, policy, manualCutoff),
		LinkPairTime:      pairTime,
		MaxLPR:            1 / pairTime.Seconds(),
		WorstCaseFidelity: c.worstCase(link, linkF, hops, policy, manualCutoff),
		EndToEndFidelity:  e2eFidelity,
	}
	return plan, nil
}

// cutoffFor computes the cutoff per policy for pairs of the given fidelity.
func (c *Controller) cutoffFor(link hardware.LinkConfig, linkF float64, policy CutoffPolicy, manual sim.Duration) sim.Duration {
	switch policy {
	case CutoffNone:
		return 0
	case CutoffManual:
		return manual
	case CutoffShort:
		// Time for 0.85 success probability: t = ln(1/0.15)/p attempts.
		alpha, ok := link.AlphaForFidelity(c.Params, linkF)
		if !ok {
			return 0
		}
		p := link.SuccessProb(c.Params, alpha)
		attempts := math.Log(1/0.15) / p
		return link.CycleTime(c.Params).Scale(attempts)
	default: // CutoffLong
		return c.fidelityLossTime(link, linkF, 0.015)
	}
}

// storageLifetimes returns the lifetimes governing idle pairs: carbon
// storage when the platform has it (§5.3 pairs are moved off the electron),
// otherwise the electron itself.
func (c *Controller) storageLifetimes() hardware.Lifetimes {
	if c.Params.HasCarbon {
		return c.Params.Carbon
	}
	return c.Params.Electron
}

// fidelityLossTime finds the idle time after which a fresh link-pair has
// lost the given fraction of its initial fidelity (both qubits decohering
// under the storage lifetimes).
func (c *Controller) fidelityLossTime(link hardware.LinkConfig, linkF, fraction float64) sim.Duration {
	alpha, ok := link.AlphaForFidelity(c.Params, linkF)
	if !ok {
		return 0
	}
	lt := c.storageLifetimes()
	model := link.Model(c.Params, alpha)
	rho0 := model.State(quantum.PsiPlus)
	f0 := quantum.Fidelity(rho0, quantum.PsiPlus)
	target := f0 * (1 - fraction)
	aged := func(t float64) float64 {
		rho := quantum.Decohere(rho0, 0, 2, t, lt.T1, lt.T2)
		rho = quantum.Decohere(rho, 1, 2, t, lt.T1, lt.T2)
		return quantum.Fidelity(rho, quantum.PsiPlus)
	}
	lo, hi := 0.0, 1.0
	for aged(hi) > target && hi < 1e5 {
		hi *= 2
	}
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if aged(mid) > target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return sim.DurationFromSeconds(hi)
}

// worstCaseSingleAged returns the fraction of a fresh link-pair's fidelity
// that survives idling for t (both qubits decohering) — the quantity the
// long-cutoff policy holds at ≈98.5%.
func (c *Controller) worstCaseSingleAged(link hardware.LinkConfig, linkF float64, t sim.Duration) float64 {
	alpha, ok := link.AlphaForFidelity(c.Params, linkF)
	if !ok {
		return 0
	}
	rho0 := link.Model(c.Params, alpha).State(quantum.PsiPlus)
	f0 := quantum.Fidelity(rho0, quantum.PsiPlus)
	rho := quantum.Decohere(rho0, 0, 2, t.Seconds(), c.Params.Electron.T1, c.Params.Electron.T2)
	rho = quantum.Decohere(rho, 1, 2, t.Seconds(), c.Params.Electron.T1, c.Params.Electron.T2)
	return quantum.Fidelity(rho, quantum.PsiPlus) / f0
}

// worstCase composes the end-to-end fidelity assuming every link-pair ages
// for the full cutoff before its swap — the paper's conservative bound. With
// no cutoff the ageing interval falls back to the expected link-pair time
// (pairs wait about one generation interval for a partner on average).
func (c *Controller) worstCase(link hardware.LinkConfig, linkF float64, hops int, policy CutoffPolicy, manual sim.Duration) float64 {
	alpha, ok := link.AlphaForFidelity(c.Params, linkF)
	if !ok {
		return 0
	}
	wait := c.cutoffFor(link, linkF, policy, manual).Seconds()
	if wait <= 0 {
		if t, ok := link.ExpectedPairTime(c.Params, linkF); ok {
			wait = t.Seconds()
		}
	}
	lt := c.storageLifetimes()
	model := link.Model(c.Params, alpha)
	agedPair := func() *linalg.Matrix {
		rho := model.State(quantum.PsiPlus)
		if c.Params.HasCarbon {
			// The intermediate half is moved into carbon: two-qubit gate
			// plus carbon initialisation noise on one qubit.
			pNoise := 1 - c.Params.Gates.TwoQubitFidelity*c.Params.Gates.CarbonInitFidelity
			rho = quantum.Depolarizing1(pNoise).Apply(rho, 0, 2)
		}
		rho = quantum.Decohere(rho, 0, 2, wait, lt.T1, lt.T2)
		return quantum.Decohere(rho, 1, 2, wait, lt.T1, lt.T2)
	}
	// Deterministic composition with a fixed RNG: swap outcomes only select
	// which Bell state is declared, not how much fidelity survives, so any
	// outcome sequence gives the same worst-case number (verified in tests).
	rng := rand.New(rand.NewSource(1))
	cur := agedPair()
	idx := quantum.PsiPlus
	for h := 1; h < hops; h++ {
		next := agedPair()
		res := quantum.Swap(cur, next, quantum.SwapConfig{
			TwoQubitFidelity:    c.Params.Gates.TwoQubitFidelity,
			SingleQubitFidelity: c.Params.Gates.SingleQubitFidelity,
			Readout:             quantum.PerfectReadout,
		}, rng)
		idx = quantum.Combine(idx, quantum.PsiPlus, res.Outcome)
		cur = res.Rho
	}
	return quantum.Fidelity(cur, idx)
}
