// Yen's k-shortest loopless paths over the controller graph, feeding the
// placement layer's candidate enumeration.

package routing

import (
	"sort"
	"strings"
)

// KShortestPaths returns up to k loopless paths from src to dst under unit
// link costs (Yen's algorithm), ordered by increasing hop count with
// lexicographic tie-breaks among equal-length spur candidates. The first
// entry is always exactly ShortestPath's result — k ≤ 1 delegates to it
// outright — so legacy single-path planning is bit-identical by
// construction. Fewer than k paths are returned when the graph holds no
// more loopless alternatives.
func (g *Graph) KShortestPaths(src, dst string, k int) ([][]string, error) {
	first, err := g.ShortestPath(src, dst)
	if err != nil {
		return nil, err
	}
	paths := [][]string{first}
	if k <= 1 {
		return paths, nil
	}
	seen := map[string]bool{pathKey(first): true}
	// pool holds spur candidates not yet promoted; it persists across
	// rounds (a candidate generated while finding path 2 may become path 4).
	var pool [][]string
	for len(paths) < k {
		prev := paths[len(paths)-1]
		for i := 0; i+1 < len(prev); i++ {
			spur := prev[i]
			root := prev[:i+1]
			// Ban the next edge of every accepted path sharing this root so
			// the spur search is forced to deviate, and ban the root's
			// interior nodes so the result stays loopless.
			bannedLink := make(map[string]bool)
			for _, p := range paths {
				if len(p) > i+1 && samePrefix(p, root) {
					bannedLink[linkID(p[i], p[i+1])] = true
				}
			}
			bannedNode := make(map[string]bool)
			for _, n := range root[:i] {
				bannedNode[n] = true
			}
			tail, err := g.shortestPathFiltered(spur, dst, bannedNode, bannedLink)
			if err != nil {
				continue // no deviation from this spur node
			}
			cand := append(append([]string(nil), root...), tail[1:]...)
			if key := pathKey(cand); !seen[key] {
				seen[key] = true
				pool = append(pool, cand)
			}
		}
		if len(pool) == 0 {
			break
		}
		sort.Slice(pool, func(a, b int) bool { return pathLess(pool[a], pool[b]) })
		paths = append(paths, pool[0])
		pool = pool[1:]
	}
	return paths, nil
}

// pathKey canonically names a path for dedup.
func pathKey(p []string) string { return strings.Join(p, "|") }

// samePrefix reports whether p starts with root.
func samePrefix(p, root []string) bool {
	if len(p) < len(root) {
		return false
	}
	for i := range root {
		if p[i] != root[i] {
			return false
		}
	}
	return true
}

// pathLess orders candidate paths by hop count, then lexicographically by
// node name — a total, deterministic order.
func pathLess(a, b []string) bool {
	if len(a) != len(b) {
		return len(a) < len(b)
	}
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}
