package routing

import (
	"math"
	"testing"

	"qnp/internal/hardware"
	"qnp/internal/sim"
)

func dumbbell() *Graph {
	g := NewGraph()
	for _, n := range []string{"A0", "A1", "MA", "MB", "B0", "B1"} {
		g.AddNode(n)
	}
	lab := hardware.LabLink()
	g.AddLink("A0", "MA", lab)
	g.AddLink("A1", "MA", lab)
	g.AddLink("MA", "MB", lab)
	g.AddLink("MB", "B0", lab)
	g.AddLink("MB", "B1", lab)
	return g
}

func TestShortestPathDumbbell(t *testing.T) {
	g := dumbbell()
	path, err := g.ShortestPath("A0", "B0")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"A0", "MA", "MB", "B0"}
	if len(path) != len(want) {
		t.Fatalf("path = %v", path)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
	if _, err := g.ShortestPath("A0", "nope"); err == nil {
		t.Error("unknown destination accepted")
	}
	// Deterministic repeated runs.
	p2, _ := g.ShortestPath("A0", "B0")
	for i := range path {
		if p2[i] != path[i] {
			t.Fatal("path not deterministic")
		}
	}
}

// probePlan runs a Place k=1 probe in the legacy PlanCircuit call shape:
// these tests pin the budget math, which is identical on both surfaces (see
// TestPlaceProbeMatchesPlanCircuit in placement_test.go).
func probePlan(c *Controller, src, dst string, f float64, policy CutoffPolicy, manual sim.Duration) (Plan, error) {
	dec, _, err := c.Place(PlacementRequest{Src: src, Dst: dst, Fidelity: f, Cutoff: policy, ManualCutoff: manual, Probe: true})
	return dec.Plan, err
}

// admitPath installs a bare path member through the Place commit form and
// returns the re-fits, as the legacy Admit did.
func admitPath(c *Controller, id string, path []string, maxLPR float64, fixed bool) []Refit {
	_, refits, err := c.Place(PlacementRequest{ID: id, Fixed: fixed, Plan: &Plan{Path: path, MaxLPR: maxLPR}})
	if err != nil {
		panic(err)
	}
	return refits
}

func TestNoPath(t *testing.T) {
	g := NewGraph()
	g.AddNode("x")
	g.AddNode("y")
	if _, err := g.ShortestPath("x", "y"); err == nil {
		t.Error("disconnected nodes produced a path")
	}
}

func TestPlanCircuitBudget(t *testing.T) {
	c := NewController(dumbbell(), hardware.Simulation())
	plan, err := probePlan(c, "A0", "B0", 0.8, CutoffLong, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Path) != 4 {
		t.Fatalf("path = %v", plan.Path)
	}
	// The link fidelity must exceed the end-to-end target (swaps and
	// decoherence only lose fidelity).
	if plan.LinkFidelity <= 0.8 {
		t.Errorf("link fidelity %v not above end-to-end 0.8", plan.LinkFidelity)
	}
	// And the worst case must meet the target.
	if plan.WorstCaseFidelity < 0.8-1e-6 {
		t.Errorf("worst case %v below target", plan.WorstCaseFidelity)
	}
	if plan.Cutoff <= 0 {
		t.Error("long cutoff policy produced no cutoff")
	}
	if plan.MaxLPR <= 0 || plan.LinkPairTime <= 0 {
		t.Error("rate fields not populated")
	}
}

func TestHigherTargetNeedsHigherLinkFidelity(t *testing.T) {
	c := NewController(dumbbell(), hardware.Simulation())
	p80, err1 := probePlan(c, "A0", "B0", 0.8, CutoffLong, 0)
	p90, err2 := probePlan(c, "A0", "B0", 0.9, CutoffLong, 0)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if p90.LinkFidelity <= p80.LinkFidelity {
		t.Errorf("link fidelity for F=0.9 (%v) not above F=0.8 (%v)", p90.LinkFidelity, p80.LinkFidelity)
	}
	// Higher fidelity pairs are slower.
	if p90.MaxLPR >= p80.MaxLPR {
		t.Errorf("LPR for F=0.9 (%v) not below F=0.8 (%v)", p90.MaxLPR, p80.MaxLPR)
	}
}

func TestLongerPathNeedsHigherLinkFidelity(t *testing.T) {
	c := NewController(dumbbell(), hardware.Simulation())
	short, err1 := probePlan(c, "MA", "MB", 0.8, CutoffLong, 0) // 1 hop
	long, err2 := probePlan(c, "A0", "B0", 0.8, CutoffLong, 0)  // 3 hops
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if long.LinkFidelity <= short.LinkFidelity {
		t.Errorf("3-hop link fidelity %v not above 1-hop %v", long.LinkFidelity, short.LinkFidelity)
	}
}

// The short cutoff allows a tighter decoherence bound, so the same
// end-to-end target needs lower link fidelities — the mechanism behind the
// rate improvement in Fig. 8(d-f).
func TestShortCutoffRelaxesLinkFidelity(t *testing.T) {
	c := NewController(dumbbell(), hardware.Simulation())
	long, err1 := probePlan(c, "A0", "B0", 0.85, CutoffLong, 0)
	short, err2 := probePlan(c, "A0", "B0", 0.85, CutoffShort, 0)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if short.Cutoff >= long.Cutoff {
		t.Errorf("short cutoff %v not below long cutoff %v", short.Cutoff, long.Cutoff)
	}
	if short.LinkFidelity > long.LinkFidelity {
		t.Errorf("short-cutoff link fidelity %v above long-cutoff %v", short.LinkFidelity, long.LinkFidelity)
	}
	if short.MaxLPR < long.MaxLPR {
		t.Errorf("short-cutoff LPR %v below long-cutoff %v", short.MaxLPR, long.MaxLPR)
	}
}

func TestUnreachableTargetRejected(t *testing.T) {
	c := NewController(dumbbell(), hardware.Simulation())
	if _, err := probePlan(c, "A0", "B0", 0.97, CutoffLong, 0); err == nil {
		t.Error("impossible end-to-end fidelity accepted")
	}
}

func TestCutoffPolicies(t *testing.T) {
	c := NewController(dumbbell(), hardware.Simulation())
	none, _ := probePlan(c, "A0", "B0", 0.8, CutoffNone, 0)
	if none.Cutoff != 0 {
		t.Error("CutoffNone produced a cutoff")
	}
	manual, _ := probePlan(c, "A0", "B0", 0.8, CutoffManual, 123*sim.Millisecond)
	if manual.Cutoff != 123*sim.Millisecond {
		t.Errorf("manual cutoff = %v", manual.Cutoff)
	}
	if CutoffNone.String() != "none" || CutoffLong.String() != "long" ||
		CutoffShort.String() != "short" || CutoffManual.String() != "manual" {
		t.Error("policy strings wrong")
	}
}

// The long cutoff is defined by a 1.5% fidelity loss; verify the computed
// time indeed loses ≈1.5%.
func TestLongCutoffCalibration(t *testing.T) {
	c := NewController(dumbbell(), hardware.Simulation())
	link := hardware.LabLink()
	cut := c.cutoffFor(link, 0.9, CutoffLong, 0)
	if cut <= 0 {
		t.Fatal("no cutoff computed")
	}
	lost := 1 - c.worstCaseSingleAged(link, 0.9, cut)
	// worstCaseSingleAged returns F(aged)/F(fresh).
	if math.Abs(lost-0.015) > 0.003 {
		t.Errorf("fidelity loss at cutoff = %.4f, want ≈0.015", lost)
	}
}

func TestEnforceEERPopulatesBudget(t *testing.T) {
	c := NewController(dumbbell(), hardware.Simulation())
	c.EnforceEER = true
	plan, err := probePlan(c, "A0", "B0", 0.8, CutoffLong, 0)
	if err != nil {
		t.Fatal(err)
	}
	if plan.MaxEER <= 0 || plan.MaxEER > plan.MaxLPR {
		t.Errorf("MaxEER = %v with MaxLPR %v", plan.MaxEER, plan.MaxLPR)
	}
}

// TestRefitAllocations pins the §4.4 membership math: each link's budget
// (MaxLPR/2) splits equally across the circuits on the path's most
// contended link, Admit/Release report exactly the members whose share
// changed (sorted), and fixed members occupy budget without being re-fit.
func TestRefitAllocations(t *testing.T) {
	c := NewController(dumbbell(), hardware.Simulation())
	c.EnforceEER = true
	plan, err := probePlan(c, "A0", "B0", 0.85, CutoffShort, 0)
	if err != nil {
		t.Fatal(err)
	}
	full := plan.MaxLPR / 2
	if plan.MaxEER != full {
		t.Fatalf("uncontended allocation = %v, want MaxLPR/2 = %v", plan.MaxEER, full)
	}

	if refits := admitPath(c, "a", plan.Path, plan.MaxLPR, false); len(refits) != 0 {
		t.Fatalf("first Admit re-fitted %v", refits)
	}
	if got, ok := c.Allocation("a"); !ok || got != full {
		t.Fatalf("Allocation(a) = %v, %v", got, ok)
	}

	// A second circuit over the MA-MB bottleneck halves both.
	plan2, err := probePlan(c, "A1", "B1", 0.85, CutoffShort, 0)
	if err != nil {
		t.Fatal(err)
	}
	if plan2.MaxEER != full/2 {
		t.Fatalf("prospective shared allocation = %v, want %v", plan2.MaxEER, full/2)
	}
	refits := admitPath(c, "b", plan2.Path, plan2.MaxLPR, false)
	if len(refits) != 1 || refits[0].Circuit != "a" || refits[0].MaxEER != full/2 {
		t.Fatalf("Admit(b) refits = %+v, want a at %v", refits, full/2)
	}

	// A fixed member (caller-chosen cap) dilutes shares but is never
	// re-fitted itself.
	plan3, _ := probePlan(c, "A0", "B1", 0.85, CutoffShort, 0)
	refits = admitPath(c, "fixed", plan3.Path, plan3.MaxLPR, true)
	for _, r := range refits {
		if r.Circuit == "fixed" {
			t.Fatalf("fixed member re-fitted: %+v", refits)
		}
	}
	if _, ok := c.Allocation("fixed"); ok {
		t.Fatal("fixed member reports a re-fitted allocation")
	}
	if got, _ := c.Allocation("a"); got != full/3 {
		t.Fatalf("three-way share = %v, want %v", got, full/3)
	}

	// Departures restore the survivors, in sorted order.
	refits = c.Release("fixed")
	if len(refits) != 2 || refits[0].Circuit != "a" || refits[1].Circuit != "b" ||
		refits[0].MaxEER != full/2 || refits[1].MaxEER != full/2 {
		t.Fatalf("Release(fixed) refits = %+v", refits)
	}
	refits = c.Release("b")
	if len(refits) != 1 || refits[0].Circuit != "a" || refits[0].MaxEER != full {
		t.Fatalf("Release(b) refits = %+v", refits)
	}
	if refits := c.Release("b"); refits != nil {
		t.Fatalf("double Release returned %+v", refits)
	}

	// Static controllers never dilute.
	s := NewController(dumbbell(), hardware.Simulation())
	s.EnforceEER = true
	s.Policy = AllocStatic
	sp, _ := probePlan(s, "A0", "B0", 0.85, CutoffShort, 0)
	admitPath(s, "a", sp.Path, sp.MaxLPR, false)
	sp2, _ := probePlan(s, "A1", "B1", 0.85, CutoffShort, 0)
	if sp2.MaxEER != full {
		t.Fatalf("static prospective allocation = %v, want %v", sp2.MaxEER, full)
	}
	if refits := admitPath(s, "b", sp2.Path, sp2.MaxLPR, false); len(refits) != 0 {
		t.Fatalf("static Admit re-fitted %v", refits)
	}
}
