// Circuit placement: the controller's admission-control surface. The
// legacy controller priced circuits (equal split of the most contended
// link's budget over the single shortest path); this layer makes it *place*
// them — k-shortest-path candidates scored by a per-circuit end-to-end
// throughput model against the current link membership, with re-routing to
// the next candidate when the primary cannot meet a MinEER demand.

package routing

import (
	"fmt"
	"math"
	"sort"

	"qnp/internal/sim"
)

// AllocationPolicy selects how a link's reserved pair-rate budget divides
// among the circuits sharing it.
type AllocationPolicy int

const (
	// AllocCountSplit — the zero value and legacy default — splits the
	// budget equally among the circuits on the path's most contended link:
	// MaxLPR / (2 · share).
	AllocCountSplit AllocationPolicy = iota
	// AllocModelWeighted divides every link's budget in proportion to each
	// member's modeled end-to-end deliverable rate per unit of link budget
	// (worst-case swap survival × cutoff discard survival × worst-case
	// fidelity), then hands the circuit its bottleneck-link share converted
	// to a deliverable end-to-end rate. A long lossy circuit no longer
	// receives the same nominal rate as a one-hop neighbour.
	AllocModelWeighted
	// AllocStatic pins the original MaxLPR/2-per-circuit heuristic
	// regardless of membership (the pre-re-fit behaviour, kept for
	// comparison studies).
	AllocStatic
)

func (p AllocationPolicy) String() string {
	switch p {
	case AllocCountSplit:
		return "count-split"
	case AllocModelWeighted:
		return "model-weighted"
	case AllocStatic:
		return "static"
	}
	return "AllocationPolicy(?)"
}

// member is one installed circuit's allocation-relevant state. Fixed
// members (caller-overridden MaxEER, manual plans) occupy link budget but
// never receive re-fit updates.
type member struct {
	path   []string
	maxLPR float64
	fixed  bool
	// deliver is the modeled fraction of the circuit's reserved link-pair
	// rate that survives to an end-to-end delivery; weight is the
	// fidelity-weighted division key derived from it (see modelDeliver /
	// modelWeight).
	deliver float64
	weight  float64
}

// memberFor derives the allocation-relevant state from a plan. Members
// admitted through the deprecated positional Admit carry a bare
// Plan{Path, MaxLPR} and fall back to the base swap-pipeline discount.
func memberFor(plan Plan, fixed bool) member {
	d := modelDeliver(plan)
	return member{
		path:    append([]string(nil), plan.Path...),
		maxLPR:  plan.MaxLPR,
		fixed:   fixed,
		deliver: d,
		weight:  modelWeight(plan, d),
	}
}

// modelDeliver is the modeled fraction of the circuit's link-pair rate
// delivered end to end: the worst-case swap-pipeline survival discount
// (1/2, the same factor the legacy rule divides by) times the probability
// that a link-pair finds its swap partner before the cutoff pops at each
// intermediate node. Partner arrivals are modeled as exponential with the
// link's expected pair time, so a pair survives one cutoff window with
// probability 1 − exp(−Cutoff/LinkPairTime); a circuit with h hops crosses
// h−1 such windows.
func modelDeliver(p Plan) float64 {
	deliver := 0.5
	hops := len(p.Path) - 1
	if hops > 1 && p.Cutoff > 0 && p.LinkPairTime > 0 {
		keep := 1 - math.Exp(-p.Cutoff.Seconds()/p.LinkPairTime.Seconds())
		deliver *= math.Pow(keep, float64(hops-1))
	}
	return deliver
}

// modelWeight is the member's link-budget division key: its deliverable
// rate per unit of reserved link budget, weighted by the worst-case
// end-to-end fidelity the plan was validated against (fidelity-weighted
// throughput, after Shi & Qian). Plans that never computed a worst-case
// fidelity (manual installs) keep the bare deliver fraction.
func modelWeight(p Plan, deliver float64) float64 {
	if p.WorstCaseFidelity > 0 {
		return deliver * p.WorstCaseFidelity
	}
	return deliver
}

// countLinks adds (or removes) one member on every link of its path.
func (c *Controller) countLinks(id string, path []string, add bool) {
	for i := 0; i+1 < len(path); i++ {
		k := linkID(path[i], path[i+1])
		if add {
			if c.linkMembers[k] == nil {
				c.linkMembers[k] = make(map[string]bool)
			}
			c.linkMembers[k][id] = true
			continue
		}
		delete(c.linkMembers[k], id)
		if len(c.linkMembers[k]) == 0 {
			delete(c.linkMembers, k)
		}
	}
}

// sharing collects the members holding any link of path, excluding except —
// the only circuits whose allocation a change to this path can move.
func (c *Controller) sharing(path []string, except string) map[string]bool {
	out := make(map[string]bool)
	for i := 0; i+1 < len(path); i++ {
		for id := range c.linkMembers[linkID(path[i], path[i+1])] {
			if id != except {
				out[id] = true
			}
		}
	}
	return out
}

// linkShare is the membership of the path's most contended link. admitted
// says whether the path's own circuit is already indexed; a prospective
// candidate adds itself on top.
func (c *Controller) linkShare(path []string, admitted bool) int {
	maxShare := 1 // the circuit itself
	for i := 0; i+1 < len(path); i++ {
		share := len(c.linkMembers[linkID(path[i], path[i+1])])
		if !admitted {
			share++
		}
		if share > maxShare {
			maxShare = share
		}
	}
	return maxShare
}

// allocationFor is the admission-control rate allocation for the member
// under the controller's policy. admitted says whether the member is
// already indexed; a prospective candidate counts itself on top.
func (c *Controller) allocationFor(m member, admitted bool) float64 {
	switch c.Policy {
	case AllocStatic:
		return m.maxLPR / 2
	case AllocModelWeighted:
		return c.modelAllocation(m, admitted)
	default: // AllocCountSplit
		return m.maxLPR / (2 * float64(c.linkShare(m.path, admitted)))
	}
}

// modelAllocation is the model-weighted allocation: on every link of the
// member's path the budget divides in proportion to the holders' model
// weights; the member's sustainable share is its smallest (bottleneck)
// utilisation fraction, and its end-to-end allocation is that fraction of
// its reserved rate converted by its deliver factor. Per link the
// utilisation fractions sum to ≤ 1, so the division conserves every link's
// budget by construction (asserted by TestModelWeightedConservation).
// Member IDs are visited in sorted order so the float sums are
// reproducible across runs and shard layouts.
func (c *Controller) modelAllocation(m member, admitted bool) float64 {
	util := 1.0
	for i := 0; i+1 < len(m.path); i++ {
		k := linkID(m.path[i], m.path[i+1])
		ids := make([]string, 0, len(c.linkMembers[k]))
		for id := range c.linkMembers[k] {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		sum := 0.0
		for _, id := range ids {
			sum += c.members[id].weight
		}
		if !admitted {
			sum += m.weight
		}
		if sum <= 0 {
			continue
		}
		if u := m.weight / sum; u < util {
			util = u
		}
	}
	return m.deliver * m.maxLPR * util
}

// PlacementRequest asks the controller to place one circuit. It has two
// forms:
//
//   - Planning (Plan == nil): Src/Dst/Fidelity describe the demand; the
//     controller enumerates up to K loopless candidate paths, budgets each,
//     scores them by modeled deliverable rate against the current
//     membership and picks the best candidate that can meet MinEER (the
//     re-route fallback). With Probe set nothing is installed — the
//     two-phase signalling flow probes at request time and commits at
//     CONFIRM time.
//   - Commit (Plan != nil): the already-budgeted plan from a prior probe is
//     installed under ID; no path search runs.
type PlacementRequest struct {
	// ID names the circuit for membership accounting. Required to install
	// (commit or non-probe planning); ignored by probes.
	ID string
	// Src and Dst are the circuit endpoints (planning form only).
	Src, Dst string
	// Fidelity is the end-to-end fidelity target.
	Fidelity float64
	// Cutoff and ManualCutoff select the cutoff rule for budgeting.
	Cutoff       CutoffPolicy
	ManualCutoff sim.Duration
	// MinEER is the admission demand: when enforcing, candidates whose
	// prospective allocation falls short are skipped in favour of the next
	// one. 0 means no demand.
	MinEER float64
	// Fixed marks a caller-capped MaxEER: the member occupies link budget
	// but never receives re-fit updates and skips the MinEER fallback.
	Fixed bool
	// K is the number of loopless candidate paths to enumerate and score;
	// 0 or 1 places on the shortest path only (legacy behaviour).
	K int
	// Probe plans and scores without installing anything.
	Probe bool
	// Plan switches to the commit form.
	Plan *Plan
}

// PlacementDecision is the controller's answer to a PlacementRequest.
type PlacementDecision struct {
	// Plan is the budgeted plan for the chosen path. When the controller
	// enforces admission its MaxEER carries the prospective allocation.
	Plan Plan
	// CandidateIndex is the chosen path's index in the k-shortest-path
	// candidate list (0 = the shortest path; >0 means the circuit was
	// re-routed off its primary).
	CandidateIndex int
	// Candidates is the number of feasible candidates that were budgeted
	// and scored.
	Candidates int
	// ModelEER is the modeled deliverable end-to-end rate of the chosen
	// placement against the current membership (the placement score; it is
	// the allocation itself under AllocModelWeighted).
	ModelEER float64
	// Allocation is the prospective (probe/plan) or installed (commit)
	// MaxEER allocation; 0 when the controller does not enforce admission.
	Allocation float64
}

// Place is the controller's typed placement API, replacing the positional
// Admit/PlanCircuit pair. Planning requests return a decision and, unless
// Probe is set, install the circuit and return the other members'
// re-fitted allocations (sorted by circuit ID). Commit requests install a
// previously probed plan. Re-fits are only produced while EnforceEER is
// set — a non-enforcing controller tracks membership but never moves
// anyone's allocation.
func (c *Controller) Place(req PlacementRequest) (PlacementDecision, []Refit, error) {
	if req.Plan != nil {
		return c.commitPlacement(req)
	}
	dec, err := c.planPlacement(req)
	if err != nil {
		return PlacementDecision{}, nil, err
	}
	if req.Probe {
		return dec, nil, nil
	}
	creq := req
	creq.Plan = &dec.Plan
	cdec, refits, err := c.commitPlacement(creq)
	if err != nil {
		return PlacementDecision{}, nil, err
	}
	cdec.CandidateIndex = dec.CandidateIndex
	cdec.Candidates = dec.Candidates
	return cdec, refits, nil
}

// planPlacement budgets and scores up to K candidate paths and picks the
// placement. Candidates are ordered by score (modeled deliverable rate at
// current membership), ties broken toward the shorter/earlier candidate;
// when enforcing a MinEER demand, the best candidate whose prospective
// allocation meets the demand wins — re-routing around contention the
// shortest path cannot absorb. If none can, the best-scoring candidate is
// returned and the caller's admission check rejects it.
func (c *Controller) planPlacement(req PlacementRequest) (PlacementDecision, error) {
	k := req.K
	if k < 1 {
		k = 1
	}
	paths, err := c.Graph.KShortestPaths(req.Src, req.Dst, k)
	if err != nil {
		return PlacementDecision{}, err
	}
	type candidate struct {
		idx   int
		plan  Plan
		score float64
		alloc float64
	}
	var cands []candidate
	var firstErr error
	for i, p := range paths {
		plan, err := c.planPath(p, req.Fidelity, req.Cutoff, req.ManualCutoff)
		if err != nil {
			// Longer candidates can be infeasible at the fidelity target
			// even when the primary is fine; remember the first failure so
			// a fully infeasible request reports the shortest path's error.
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		m := memberFor(plan, req.Fixed)
		score := c.modelAllocation(m, false)
		alloc := 0.0
		if c.EnforceEER {
			alloc = c.allocationFor(m, false)
			plan.MaxEER = alloc
		}
		cands = append(cands, candidate{idx: i, plan: plan, score: score, alloc: alloc})
	}
	if len(cands) == 0 {
		return PlacementDecision{}, firstErr
	}
	sort.SliceStable(cands, func(a, b int) bool {
		if cands[a].score != cands[b].score {
			return cands[a].score > cands[b].score
		}
		return cands[a].idx < cands[b].idx
	})
	chosen := cands[0]
	if c.EnforceEER && req.MinEER > 0 && !req.Fixed {
		for _, cd := range cands {
			if cd.alloc >= req.MinEER {
				chosen = cd
				break
			}
		}
	}
	return PlacementDecision{
		Plan:           chosen.plan,
		CandidateIndex: chosen.idx,
		Candidates:     len(cands),
		ModelEER:       chosen.score,
		Allocation:     chosen.alloc,
	}, nil
}

// commitPlacement installs an already-budgeted plan under the request ID.
func (c *Controller) commitPlacement(req PlacementRequest) (PlacementDecision, []Refit, error) {
	if req.ID == "" {
		return PlacementDecision{}, nil, fmt.Errorf("routing: placement commit requires a circuit ID")
	}
	if len(req.Plan.Path) < 2 {
		return PlacementDecision{}, nil, fmt.Errorf("routing: placement commit requires a plan with a path")
	}
	m := memberFor(*req.Plan, req.Fixed)
	refits := c.admitMember(req.ID, m)
	dec := PlacementDecision{Plan: *req.Plan, ModelEER: c.modelAllocation(m, true)}
	if c.EnforceEER && !req.Fixed {
		dec.Allocation = c.allocationFor(m, true)
	} else {
		dec.Allocation = req.Plan.MaxEER
	}
	return dec, refits, nil
}

// Admit registers an installed circuit for allocation accounting and
// returns the re-fitted allocations of the *other* members whose share
// changed, sorted by circuit ID (deterministic propagation order).
//
// Deprecated: use Place with the commit form (PlacementRequest.Plan set),
// which keeps the full plan so model-weighted allocation sees the
// circuit's cutoff and fidelity budget instead of falling back to the base
// discount.
func (c *Controller) Admit(id string, path []string, maxLPR float64, fixed bool) []Refit {
	return c.admitMember(id, memberFor(Plan{Path: path, MaxLPR: maxLPR}, fixed))
}

// admitMember installs (or re-installs) a member and re-fits the circuits
// its links touch.
func (c *Controller) admitMember(id string, m member) []Refit {
	affected := c.sharing(m.path, id)
	if old, ok := c.members[id]; ok {
		for a := range c.sharing(old.path, id) {
			affected[a] = true
		}
		c.countLinks(id, old.path, false)
	}
	before := c.snapshot(affected)
	c.members[id] = m
	c.countLinks(id, m.path, true)
	return c.refitChanged(before)
}

// Release removes a departing circuit and returns the re-fitted allocations
// of the survivors whose share grew, sorted by circuit ID.
func (c *Controller) Release(id string) []Refit {
	m, ok := c.members[id]
	if !ok {
		return nil
	}
	before := c.snapshot(c.sharing(m.path, id))
	delete(c.members, id)
	c.countLinks(id, m.path, false)
	return c.refitChanged(before)
}

// Allocation reports a tracked circuit's current re-fitted allocation
// (fixed members have no re-fitted allocation and report false).
func (c *Controller) Allocation(id string) (float64, bool) {
	m, ok := c.members[id]
	if !ok || m.fixed {
		return 0, false
	}
	return c.allocationFor(m, true), true
}

// MemberPath reports a tracked circuit's path (for signalling propagation).
func (c *Controller) MemberPath(id string) ([]string, bool) {
	m, ok := c.members[id]
	return m.path, ok
}

// snapshot records the current allocation of each listed re-fittable
// member (members off the changed path's links cannot move, so they are
// never snapshotted). A non-enforcing controller snapshots nothing: its
// members have no live allocation to move, so membership changes must not
// produce re-fit (UpdateMsg) traffic.
func (c *Controller) snapshot(ids map[string]bool) map[string]float64 {
	if !c.EnforceEER {
		return nil
	}
	out := make(map[string]float64, len(ids))
	for id := range ids {
		if m, ok := c.members[id]; ok && !m.fixed {
			out[id] = c.allocationFor(m, true)
		}
	}
	return out
}

// refitChanged diffs the snapshotted members' allocations against their
// values before the membership change.
func (c *Controller) refitChanged(before map[string]float64) []Refit {
	var out []Refit
	for id, prev := range before {
		m, ok := c.members[id]
		if !ok || m.fixed {
			continue
		}
		if alloc := c.allocationFor(m, true); alloc != prev {
			out = append(out, Refit{Circuit: id, MaxEER: alloc})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Circuit < out[j].Circuit })
	return out
}
