package routing

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"qnp/internal/hardware"
)

func ringGraph(n int) *Graph {
	g := NewGraph()
	lab := hardware.LabLink()
	for i := 0; i < n; i++ {
		g.AddNode(fmt.Sprintf("n%d", i))
	}
	for i := 0; i < n; i++ {
		g.AddLink(fmt.Sprintf("n%d", i), fmt.Sprintf("n%d", (i+1)%n), lab)
	}
	return g
}

func gridGraph(w, h int) *Graph {
	g := NewGraph()
	lab := hardware.LabLink()
	id := func(x, y int) string { return fmt.Sprintf("n%d", y*w+x) }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			g.AddNode(id(x, y))
		}
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				g.AddLink(id(x, y), id(x+1, y), lab)
			}
			if y+1 < h {
				g.AddLink(id(x, y), id(x, y+1), lab)
			}
		}
	}
	return g
}

// randomGraph is a Waxman-flavoured random graph: a connecting ring plus
// random chords from a fixed seed.
func randomGraph(n, chords int, seed int64) *Graph {
	g := ringGraph(n)
	lab := hardware.LabLink()
	rng := rand.New(rand.NewSource(seed))
	for added := 0; added < chords; {
		a, b := rng.Intn(n), rng.Intn(n)
		if a == b {
			continue
		}
		na, nb := fmt.Sprintf("n%d", a), fmt.Sprintf("n%d", b)
		if _, ok := g.Link(na, nb); ok {
			continue
		}
		g.AddLink(na, nb, lab)
		added++
	}
	return g
}

// TestKShortestPathsProperties checks Yen's output on ring, grid and
// random topologies: loopless, valid, distinct, sorted by hop count, first
// entry identical to ShortestPath, and k=1 delegating to it exactly.
func TestKShortestPathsProperties(t *testing.T) {
	graphs := map[string]*Graph{
		"ring":   ringGraph(8),
		"grid":   gridGraph(4, 4),
		"random": randomGraph(12, 8, 42),
	}
	pairs := [][2]string{{"n0", "n5"}, {"n1", "n7"}, {"n2", "n3"}}
	for name, g := range graphs {
		for _, pr := range pairs {
			for _, k := range []int{1, 2, 3, 5} {
				paths, err := g.KShortestPaths(pr[0], pr[1], k)
				if err != nil {
					t.Fatalf("%s %v k=%d: %v", name, pr, k, err)
				}
				if len(paths) == 0 || len(paths) > k {
					t.Fatalf("%s %v k=%d: %d paths", name, pr, k, len(paths))
				}
				sp, _ := g.ShortestPath(pr[0], pr[1])
				if pathKey(paths[0]) != pathKey(sp) {
					t.Errorf("%s %v k=%d: first path %v != ShortestPath %v", name, pr, k, paths[0], sp)
				}
				seen := map[string]bool{}
				for i, p := range paths {
					if p[0] != pr[0] || p[len(p)-1] != pr[1] {
						t.Fatalf("%s %v: path %v has wrong endpoints", name, pr, p)
					}
					nodes := map[string]bool{}
					for j, nd := range p {
						if nodes[nd] {
							t.Errorf("%s %v: path %v revisits %s", name, pr, p, nd)
						}
						nodes[nd] = true
						if j+1 < len(p) {
							if _, ok := g.Link(p[j], p[j+1]); !ok {
								t.Errorf("%s %v: path %v uses missing link %s-%s", name, pr, p, p[j], p[j+1])
							}
						}
					}
					if seen[pathKey(p)] {
						t.Errorf("%s %v: duplicate path %v", name, pr, p)
					}
					seen[pathKey(p)] = true
					if i > 0 && len(p) < len(paths[i-1]) {
						t.Errorf("%s %v: paths not sorted by length: %v after %v", name, pr, p, paths[i-1])
					}
				}
				// Determinism: a second run returns the identical list.
				again, _ := g.KShortestPaths(pr[0], pr[1], k)
				if len(again) != len(paths) {
					t.Fatalf("%s %v k=%d: non-deterministic count", name, pr, k)
				}
				for i := range paths {
					if pathKey(again[i]) != pathKey(paths[i]) {
						t.Errorf("%s %v k=%d: non-deterministic path %d", name, pr, k, i)
					}
				}
			}
		}
	}
}

// A ring has exactly two loopless paths between any two nodes.
func TestKShortestPathsExhaustsRing(t *testing.T) {
	g := ringGraph(6)
	paths, err := g.KShortestPaths("n0", "n3", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("ring returned %d paths, want 2: %v", len(paths), paths)
	}
}

// TestModelWeightedConservation: under AllocModelWeighted, the modeled
// link-budget shares handed out on any link never exceed that link's
// budget — Σ over members of alloc/(deliver·maxLPR) ≤ 1 per link, at every
// point of an admit/release churn sequence.
func TestModelWeightedConservation(t *testing.T) {
	c := NewController(gridGraph(4, 4), hardware.Simulation())
	c.EnforceEER = true
	c.Policy = AllocModelWeighted

	check := func(stage string) {
		t.Helper()
		linkLoad := map[string]float64{}
		ids := make([]string, 0, len(c.members))
		for id := range c.members {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			m := c.members[id]
			alloc, ok := c.Allocation(id)
			if !ok {
				continue
			}
			frac := alloc / (m.deliver * m.maxLPR)
			for i := 0; i+1 < len(m.path); i++ {
				linkLoad[linkID(m.path[i], m.path[i+1])] += frac
			}
		}
		for link, load := range linkLoad {
			if load > 1+1e-9 {
				t.Fatalf("%s: link %s over budget: utilisation %v", stage, link, load)
			}
		}
	}

	rng := rand.New(rand.NewSource(7))
	live := []string{}
	for step := 0; step < 60; step++ {
		if len(live) > 0 && rng.Intn(3) == 0 {
			i := rng.Intn(len(live))
			c.Release(live[i])
			live = append(live[:i], live[i+1:]...)
			check(fmt.Sprintf("release step %d", step))
			continue
		}
		src := fmt.Sprintf("n%d", rng.Intn(16))
		dst := fmt.Sprintf("n%d", rng.Intn(16))
		if src == dst {
			continue
		}
		id := fmt.Sprintf("c%d", step)
		_, _, err := c.Place(PlacementRequest{ID: id, Src: src, Dst: dst, Fidelity: 0.8, Cutoff: CutoffShort, K: 3})
		if err != nil {
			continue // infeasible pair at this fidelity; not what we test
		}
		live = append(live, id)
		check(fmt.Sprintf("admit step %d", step))
	}
	if len(live) == 0 {
		t.Fatal("no circuits ever admitted; test exercised nothing")
	}
}

// TestPlaceProbeMatchesPlanCircuit: a k=1 probe is the deprecated
// PlanCircuit, bit for bit, under both count-split and static policies and
// with enforcement on or off.
func TestPlaceProbeMatchesPlanCircuit(t *testing.T) {
	for _, policy := range []AllocationPolicy{AllocCountSplit, AllocStatic, AllocModelWeighted} {
		for _, enforce := range []bool{false, true} {
			c := NewController(dumbbell(), hardware.Simulation())
			c.EnforceEER = enforce
			c.Policy = policy
			c.Place(PlacementRequest{ID: "bg", Plan: &Plan{Path: []string{"A1", "MA", "MB", "B1"}, MaxLPR: 2000}})
			//qnetlint:allow nodeprecated the PlanCircuit shim's designated coverage: pins probe/legacy bit-equality until the shim is deleted
			legacy, err1 := c.PlanCircuit("A0", "B0", 0.85, CutoffShort, 0)
			dec, _, err2 := c.Place(PlacementRequest{Src: "A0", Dst: "B0", Fidelity: 0.85, Cutoff: CutoffShort, Probe: true})
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("policy %v enforce %v: errors differ: %v vs %v", policy, enforce, err1, err2)
			}
			if err1 == nil && !reflect.DeepEqual(dec.Plan, legacy) {
				t.Fatalf("policy %v enforce %v: probe plan %+v != PlanCircuit %+v", policy, enforce, dec.Plan, legacy)
			}
			if dec.CandidateIndex != 0 || dec.Candidates != 1 {
				t.Fatalf("k=1 probe chose candidate %d of %d", dec.CandidateIndex, dec.Candidates)
			}
		}
	}
}

// TestPlaceReroutesAroundContention: on a ring with two equal-length sides,
// a loaded primary forces a MinEER demand onto the alternate candidate —
// and k=1 has no alternate, so the same demand is left under-allocated.
func TestPlaceReroutesAroundContention(t *testing.T) {
	c := NewController(ringGraph(6), hardware.Simulation())
	c.EnforceEER = true

	// Saturate the primary side with two circuits.
	first, _, err := c.Place(PlacementRequest{ID: "p1", Src: "n0", Dst: "n3", Fidelity: 0.8, Cutoff: CutoffShort})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Place(PlacementRequest{ID: "p2", Src: "n0", Dst: "n3", Fidelity: 0.8, Cutoff: CutoffShort}); err != nil {
		t.Fatal(err)
	}
	demand := first.Allocation / 2.5 // > a 3-way split, < a 2-way split

	probe1, _, err := c.Place(PlacementRequest{Src: "n0", Dst: "n3", Fidelity: 0.8, Cutoff: CutoffShort, MinEER: demand, K: 1, Probe: true})
	if err != nil {
		t.Fatal(err)
	}
	if probe1.Allocation >= demand {
		t.Fatalf("k=1 probe allocation %v unexpectedly meets demand %v", probe1.Allocation, demand)
	}
	probe2, _, err := c.Place(PlacementRequest{Src: "n0", Dst: "n3", Fidelity: 0.8, Cutoff: CutoffShort, MinEER: demand, K: 2, Probe: true})
	if err != nil {
		t.Fatal(err)
	}
	if probe2.CandidateIndex == 0 {
		t.Fatal("k=2 probe did not re-route off the loaded primary")
	}
	if probe2.Allocation < demand {
		t.Fatalf("re-routed allocation %v below demand %v", probe2.Allocation, demand)
	}
	if probe2.Candidates != 2 {
		t.Fatalf("ring probe scored %d candidates, want 2", probe2.Candidates)
	}
}

// TestNonEnforcingControllerNeverRefits: the EnforceEER=false controller
// tracks membership but must not produce re-fit traffic from any admission
// surface (the legacy Admit bug this PR fixes).
func TestNonEnforcingControllerNeverRefits(t *testing.T) {
	c := NewController(dumbbell(), hardware.Simulation())
	//qnetlint:allow nodeprecated the Admit shim's designated coverage: the legacy surface must stay refit-silent until the shim is deleted
	if r := c.Admit("a", []string{"A0", "MA", "MB", "B0"}, 2000, false); len(r) != 0 {
		t.Fatalf("non-enforcing Admit produced refits: %+v", r)
	}
	plan, err := probePlan(c, "A1", "B1", 0.85, CutoffShort, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, r, _ := c.Place(PlacementRequest{ID: "b", Fixed: false, Plan: &plan}); len(r) != 0 {
		t.Fatalf("non-enforcing Place commit produced refits: %+v", r)
	}
	if _, r, _ := c.Place(PlacementRequest{ID: "c", Src: "A0", Dst: "B1", Fidelity: 0.85, Cutoff: CutoffShort}); len(r) != 0 {
		t.Fatalf("non-enforcing Place produced refits: %+v", r)
	}
	if r := c.Release("a"); len(r) != 0 {
		t.Fatalf("non-enforcing Release produced refits: %+v", r)
	}
}

// TestModelWeightedFavoursShortCircuits: under the model a 1-hop member
// sharing a link with a 3-hop member gets the larger end-to-end allocation
// (equal under count-split would hand both the same nominal rate).
func TestModelWeightedFavoursShortCircuits(t *testing.T) {
	c := NewController(dumbbell(), hardware.Simulation())
	c.EnforceEER = true
	c.Policy = AllocModelWeighted
	long, err := probePlan(c, "A0", "B0", 0.8, CutoffShort, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Place(PlacementRequest{ID: "long", Plan: &long}); err != nil {
		t.Fatal(err)
	}
	short, err := probePlan(c, "MA", "MB", 0.8, CutoffShort, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Place(PlacementRequest{ID: "short", Plan: &short}); err != nil {
		t.Fatal(err)
	}
	la, _ := c.Allocation("long")
	sa, _ := c.Allocation("short")
	if la <= 0 || sa <= 0 {
		t.Fatalf("allocations not populated: long %v short %v", la, sa)
	}
	if sa <= la {
		t.Errorf("model-weighted short-circuit allocation %v not above long-circuit %v", sa, la)
	}
}
