package runner

import (
	"context"
	"fmt"
	"sort"
	"sync"
)

// A KindFunc executes one replica of a registered job kind: it decodes the
// job payload, runs replica `replica` with the seed derived for it, and
// returns the replica's encoded result. It must be a pure function of
// (payload, replica, seed) — that is what makes process-sharded execution
// bit-identical to in-process execution — and it must be safe for
// concurrent calls.
type KindFunc func(payload []byte, replica int, seed int64) ([]byte, error)

var (
	kindsMu sync.RWMutex
	kinds   = make(map[string]KindFunc)
)

// RegisterKind installs the executor for a job kind, keyed by a stable
// name. Packages register their kinds in init so that a re-exec'd worker
// process (which runs the same binary) holds the same table. Registering a
// duplicate name panics: kind names are a cross-process protocol and must
// be unambiguous.
func RegisterKind(kind string, fn KindFunc) {
	kindsMu.Lock()
	defer kindsMu.Unlock()
	if kind == "" || fn == nil {
		panic("runner: RegisterKind with empty kind or nil func")
	}
	if _, dup := kinds[kind]; dup {
		panic(fmt.Sprintf("runner: job kind %q registered twice", kind))
	}
	kinds[kind] = fn
}

func lookupKind(kind string) (KindFunc, error) {
	kindsMu.RLock()
	fn := kinds[kind]
	kindsMu.RUnlock()
	if fn == nil {
		return nil, fmt.Errorf("runner: unknown job kind %q (known: %v)", kind, kindNames())
	}
	return fn, nil
}

func kindNames() []string {
	kindsMu.RLock()
	defer kindsMu.RUnlock()
	names := make([]string, 0, len(kinds))
	for k := range kinds {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// A Backend executes the replicas of a registered job kind. Dispatch
// starts the run and returns an Execution whose Results channel streams
// each replica's encoded result in strict replica order (the Stream
// contract), so aggregate output is bit-identical regardless of where and
// with how much parallelism the replicas actually ran. Replica i always
// runs with DeriveSeed(req.Options.Seed, i); req.Options.Workers bounds
// per-process parallelism and never affects results.
//
// Dispatch returns an error only for requests that cannot start at all
// (unknown kind, unresolvable worker command, unusable journal); runtime
// failures surface from Execution.Wait. A replica whose KindFunc returns
// an error fails the whole execution: kind errors are deterministic (the
// same bytes fail everywhere), so no backend retries them.
type Backend interface {
	Dispatch(req ExecRequest) (*Execution, error)
}

// InProcess executes replicas on a goroutine pool inside the calling
// process — the Backend form of the plain Stream runner. It still routes
// payloads and results through the job-kind codec, so it exercises exactly
// the bytes a process-sharded run would ship; use the direct Run/Map/Stream
// API to skip encoding entirely.
type InProcess struct{}

// Dispatch implements Backend.
func (InProcess) Dispatch(req ExecRequest) (*Execution, error) {
	fn, err := lookupKind(req.Kind)
	if err != nil {
		return nil, err
	}
	if req.Replicas <= 0 {
		return completedExecution(nil), nil
	}
	e := newExecution(req.Replicas, nil)
	go func() { e.finish(inProcessRun(fn, req, e.emit)) }()
	return e, nil
}

// inProcessRun is the pool run behind InProcess.Dispatch, delivering
// results to emit in strict replica order.
func inProcessRun(fn KindFunc, req ExecRequest, emit func(replica int, result []byte)) error {
	// A deterministic kind error dooms the run; cancel the pool so the
	// remaining replicas stop claiming (Subprocess does the same for its
	// sibling shards) instead of simulating results nobody will read.
	o := req.Options
	parent := o.Context
	if parent == nil {
		parent = context.Background()
	}
	ctx, cancel := context.WithCancel(parent)
	defer cancel()
	o.Context = ctx
	type res struct {
		b   []byte
		err error
	}
	// Stream serializes sink calls under its own lock, so firstErr needs no
	// extra synchronization.
	var firstErr error
	serr := Stream(o, req.Replicas, func(replica int, seed int64) res {
		b, err := fn(req.Payload, replica, seed)
		return res{b, err}
	}, func(replica int, v res) {
		if v.err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("runner: %s replica %d: %w", req.Kind, replica, v.err)
				cancel()
			}
			return
		}
		if firstErr == nil {
			emit(replica, v.b)
		}
	})
	if firstErr != nil {
		return firstErr
	}
	if serr != nil {
		// Stream saw our internal cancel context; report the caller's.
		return parent.Err()
	}
	return nil
}
