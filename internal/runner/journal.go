package runner

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// The fleet checkpoint journal is an append-only file of the same
// length-prefixed JSON frames the worker protocol uses: one journalHeader
// frame binding the file to a job identity, then one journalRecord frame
// per completed replica in arrival order. Every record carries a checksum
// over (replica, result), so silent corruption is detected and reported;
// a torn final record — the parent died mid-append — is recognized as
// clean truncation, dropped, and overwritten by the resumed run. Appends
// are a single write each, so a crash can tear at most the final record.

// journalHeader stamps a journal with the job it checkpoints. The file
// name already encodes the same identity; the header catches renamed or
// copied files.
type journalHeader struct {
	Kind       string
	Seed       int64
	Replicas   int
	PayloadCRC uint32
}

// journalRecord is one completed replica.
type journalRecord struct {
	Replica int
	Result  []byte
	// CRC is recordCRC(Replica, Result): corruption of either field —
	// including a record claiming the wrong replica — fails the checksum.
	CRC uint32
}

func recordCRC(replica int, result []byte) uint32 {
	var idx [8]byte
	binary.BigEndian.PutUint64(idx[:], uint64(replica))
	c := crc32.ChecksumIEEE(idx[:])
	return crc32.Update(c, crc32.IEEETable, result)
}

func headerFor(req ExecRequest) journalHeader {
	return journalHeader{Kind: req.Kind, Seed: req.Options.Seed, Replicas: req.Replicas, PayloadCRC: crc32.ChecksumIEEE(req.Payload)}
}

// journalPath derives the per-job journal file under dir: one job identity,
// one file, so a directory can checkpoint a whole figure suite.
func journalPath(dir string, req ExecRequest) string {
	kind := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '.':
			return r
		}
		return '_'
	}, req.Kind)
	return filepath.Join(dir, fmt.Sprintf("%s-%08x-s%d-n%d.journal", kind, crc32.ChecksumIEEE(req.Payload), req.Options.Seed, req.Replicas))
}

// scanFrame decodes the length-prefixed JSON frame at data[off:] and
// returns the offset past it. io.EOF means a clean end exactly at off;
// io.ErrUnexpectedEOF means the frame is torn (a truncated final write).
func scanFrame(data []byte, off int, v any) (int, error) {
	if off+4 > len(data) {
		if off == len(data) {
			return off, io.EOF
		}
		return off, io.ErrUnexpectedEOF
	}
	n := int(binary.BigEndian.Uint32(data[off:]))
	if n > maxFrame {
		return off, fmt.Errorf("frame of %d bytes exceeds the %d-byte protocol limit", n, maxFrame)
	}
	if off+4+n > len(data) {
		return off, io.ErrUnexpectedEOF
	}
	if err := json.Unmarshal(data[off+4:off+4+n], v); err != nil {
		return off, fmt.Errorf("decode frame: %w", err)
	}
	return off + 4 + n, nil
}

// journal is the open append handle plus the set of replicas already on
// disk (so a duplicate arrival is never written twice).
type journal struct {
	mu   sync.Mutex
	f    *os.File
	path string
	have map[int]bool
}

// openJournal loads (or creates) the journal for req under dir, returning
// the append handle and the recovered replica results. A journal written
// by a different job, or one whose content fails its checksums, is
// reported as an error; a torn final record is truncated away.
func openJournal(dir string, req ExecRequest) (*journal, map[int][]byte, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("runner: journal dir: %w", err)
	}
	path := journalPath(dir, req)
	want := headerFor(req)
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, fmt.Errorf("runner: read journal: %w", err)
	}
	recovered := map[int][]byte{}
	goodLen := 0
	if len(data) > 0 {
		var hdr journalHeader
		off, err := scanFrame(data, 0, &hdr)
		switch {
		case err == io.ErrUnexpectedEOF:
			// The header itself is torn: nothing is recoverable, start the
			// journal over from scratch.
		case err != nil:
			return nil, nil, fmt.Errorf("runner: journal %s corrupted: %v", path, err)
		case hdr != want:
			return nil, nil, fmt.Errorf("runner: journal %s was written by a different job (kind %q seed %d replicas %d payload %08x; this job is kind %q seed %d replicas %d payload %08x)",
				path, hdr.Kind, hdr.Seed, hdr.Replicas, hdr.PayloadCRC, want.Kind, want.Seed, want.Replicas, want.PayloadCRC)
		default:
			goodLen = off
			for off < len(data) {
				var rec journalRecord
				next, err := scanFrame(data, off, &rec)
				if err == io.EOF || err == io.ErrUnexpectedEOF {
					// Torn tail: the process died mid-append. Everything
					// before it is intact; the truncate below drops it.
					break
				}
				if err != nil {
					return nil, nil, fmt.Errorf("runner: journal %s corrupted at byte %d: %v", path, off, err)
				}
				if rec.CRC != recordCRC(rec.Replica, rec.Result) {
					return nil, nil, fmt.Errorf("runner: journal %s corrupted at byte %d: replica %d record fails its checksum", path, off, rec.Replica)
				}
				if rec.Replica < 0 || rec.Replica >= req.Replicas {
					return nil, nil, fmt.Errorf("runner: journal %s corrupted at byte %d: replica %d out of range [0,%d)", path, off, rec.Replica, req.Replicas)
				}
				if _, dup := recovered[rec.Replica]; !dup {
					recovered[rec.Replica] = rec.Result
				}
				off = next
				goodLen = off
			}
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("runner: open journal: %w", err)
	}
	if err := f.Truncate(int64(goodLen)); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("runner: truncate journal torn tail: %w", err)
	}
	if _, err := f.Seek(int64(goodLen), io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("runner: seek journal: %w", err)
	}
	j := &journal{f: f, path: path, have: make(map[int]bool, len(recovered))}
	if goodLen == 0 {
		if err := j.appendFrame(want); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("runner: stamp journal header: %w", err)
		}
	}
	for r := range recovered {
		j.have[r] = true
	}
	return j, recovered, nil
}

// append spills one completed replica to disk; duplicates are dropped.
func (j *journal) append(replica int, result []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.have[replica] {
		return nil
	}
	rec := journalRecord{Replica: replica, Result: result, CRC: recordCRC(replica, result)}
	if err := j.appendFrame(rec); err != nil {
		return fmt.Errorf("append replica %d to journal %s: %w", replica, j.path, err)
	}
	j.have[replica] = true
	return nil
}

// appendFrame writes one frame in a single Write call, so a dying process
// tears at most the final record. Callers hold j.mu (or own j exclusively).
func (j *journal) appendFrame(v any) error {
	var buf bytes.Buffer
	if err := writeFrame(&buf, v); err != nil {
		return err
	}
	_, err := j.f.Write(buf.Bytes())
	return err
}

func (j *journal) close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}
