package runner

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// The shard worker protocol: every message is a frame of a 4-byte
// big-endian length followed by that many bytes of JSON. The parent sends
// exactly one jobFrame on the worker's stdin and closes it; the worker
// answers with one resultFrame per replica on stdout, in ascending replica
// order, and exits 0. Any other behaviour — short read, oversized frame,
// nonzero exit, silence past the inactivity timeout — counts as a shard
// crash, which the parent may retry because replicas are pure functions of
// (payload, replica, seed).

// maxFrame bounds a frame so a corrupted length prefix fails fast instead
// of attempting a multi-gigabyte allocation.
const maxFrame = 1 << 28

// jobFrame is the single parent→worker message: one shard of a run.
type jobFrame struct {
	// Kind names the registered job kind to execute.
	Kind string
	// Payload is the kind's job description, opaque to the protocol.
	Payload []byte
	// Seed is the run's base seed: replica i (global index) runs with
	// DeriveSeed(Seed, i), exactly as in-process replicas do.
	Seed int64
	// Start and Count delimit this shard's contiguous global replica range
	// [Start, Start+Count).
	Start, Count int
	// Workers bounds the shard's in-process parallelism (0 = NumCPU).
	Workers int
	// Heartbeat, when positive, asks the worker to interleave a heartbeat
	// frame at this interval while replicas are in flight — the Fleet
	// liveness protocol, which tolerates replicas longer than the liveness
	// bound while still detecting dead processes and partitioned hosts.
	// Zero keeps the classic results-only stream (Subprocess), where the
	// result frames themselves are the liveness signal.
	Heartbeat time.Duration `json:",omitempty"`
}

// resultFrame is one replica's worker→parent answer.
type resultFrame struct {
	// Replica is the global replica index.
	Replica int
	// Result is the replica's encoded result when Err is empty.
	Result []byte
	// Err reports a KindFunc error. Kind errors are deterministic, so the
	// parent fails the run rather than retrying the shard.
	Err string `json:",omitempty"`
	// Heartbeat marks a liveness-only frame: no replica, no result — it
	// exists solely to reset the reader's watchdog (see jobFrame.Heartbeat).
	Heartbeat bool `json:",omitempty"`
}

// writeFrame encodes v as JSON and writes it length-prefixed.
func writeFrame(w io.Writer, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("runner: encode frame: %w", err)
	}
	if len(b) > maxFrame {
		return fmt.Errorf("runner: frame of %d bytes exceeds the %d-byte protocol limit", len(b), maxFrame)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(b)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

// readFrame reads one length-prefixed JSON frame into v. io.EOF is returned
// untranslated on a clean end-of-stream so callers can distinguish it from
// a torn frame.
func readFrame(r *bufio.Reader, v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return io.EOF
		}
		return fmt.Errorf("runner: read frame header: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return fmt.Errorf("runner: frame of %d bytes exceeds the %d-byte protocol limit", n, maxFrame)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return fmt.Errorf("runner: read frame body: %w", err)
	}
	if err := json.Unmarshal(b, v); err != nil {
		return fmt.Errorf("runner: decode frame: %w", err)
	}
	return nil
}
