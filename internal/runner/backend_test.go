package runner

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestMain doubles as the shard worker entrypoint: the subprocess tests
// re-exec this test binary with WorkerFlag, and MaybeWorker diverts those
// children into the worker loop before any test machinery runs.
func TestMain(m *testing.M) {
	MaybeWorker()
	os.Exit(m.Run())
}

// testWorkerCmd re-execs this test binary as a shard worker.
func testWorkerCmd() []string { return []string{os.Args[0], WorkerFlag} }

func init() {
	// test.echo: the deterministic happy-path kind.
	RegisterKind("test.echo", func(payload []byte, replica int, seed int64) ([]byte, error) {
		return json.Marshal(fmt.Sprintf("%s/r%d/s%d", payload, replica, seed))
	})
	// test.crash-once: hard-exits the process on one replica, but only the
	// first time (a marker file in the payload directory remembers) — the
	// injected crash for the shard-retry test.
	RegisterKind("test.crash-once", func(payload []byte, replica int, seed int64) ([]byte, error) {
		var p struct {
			Dir     string
			Replica int
		}
		if err := json.Unmarshal(payload, &p); err != nil {
			return nil, err
		}
		if replica == p.Replica {
			marker := filepath.Join(p.Dir, "crashed")
			if _, err := os.Stat(marker); os.IsNotExist(err) {
				os.WriteFile(marker, []byte("x"), 0o644)
				os.Exit(3)
			}
		}
		return json.Marshal(replica)
	})
	// test.crash-always: hard-exits on one replica, every attempt.
	RegisterKind("test.crash-always", func(payload []byte, replica int, seed int64) ([]byte, error) {
		var target int
		if err := json.Unmarshal(payload, &target); err != nil {
			return nil, err
		}
		if replica == target {
			os.Exit(3)
		}
		return json.Marshal(replica)
	})
	// test.fail: a deterministic KindFunc error on one replica.
	RegisterKind("test.fail", func(payload []byte, replica int, seed int64) ([]byte, error) {
		var target int
		if err := json.Unmarshal(payload, &target); err != nil {
			return nil, err
		}
		if replica == target {
			return nil, errors.New("synthetic kind failure")
		}
		return json.Marshal(replica)
	})
	// test.hang: never answers, for the inactivity watchdog test.
	RegisterKind("test.hang", func(payload []byte, replica int, seed int64) ([]byte, error) {
		time.Sleep(time.Hour)
		return nil, nil
	})
}

// executeAll collects a backend run's results indexed by replica, failing
// the test if the result stream is not strictly ascending.
func executeAll(t *testing.T, b Backend, o Options, kind string, payload []byte, n int) [][]byte {
	t.Helper()
	ex, err := b.Dispatch(ExecRequest{Kind: kind, Payload: payload, Replicas: n, Options: o})
	if err != nil {
		t.Fatalf("%T.Dispatch: %v", b, err)
	}
	out := make([][]byte, n)
	next := 0
	for r := range ex.Results() {
		if r.Replica != next {
			t.Errorf("stream got replica %d, want %d (order must be strict)", r.Replica, next)
		}
		next++
		out[r.Replica] = append([]byte(nil), r.Data...)
	}
	if err := ex.Wait(); err != nil {
		t.Fatalf("%T run: %v", b, err)
	}
	if next != n {
		t.Fatalf("stream delivered %d of %d replicas", next, n)
	}
	return out
}

// executeErr runs a job to completion, discarding results, and returns the
// run's error.
func executeErr(b Backend, o Options, kind string, payload []byte, n int) error {
	ex, err := b.Dispatch(ExecRequest{Kind: kind, Payload: payload, Replicas: n, Options: o})
	if err != nil {
		return err
	}
	for range ex.Results() {
	}
	return ex.Wait()
}

func TestInProcessBackendMatchesKindFunc(t *testing.T) {
	const n = 9
	payload := []byte(`"p"`)
	got := executeAll(t, InProcess{}, Options{Workers: 3, Seed: 5}, "test.echo", payload, n)
	for i := 0; i < n; i++ {
		want, _ := json.Marshal(fmt.Sprintf("%s/r%d/s%d", payload, i, DeriveSeed(5, i)))
		if !bytes.Equal(got[i], want) {
			t.Errorf("replica %d = %s, want %s", i, got[i], want)
		}
	}
}

func TestInProcessBackendUnknownKind(t *testing.T) {
	// An unknown kind is a request that cannot start: Dispatch itself fails.
	_, err := InProcess{}.Dispatch(ExecRequest{Kind: "test.unregistered", Replicas: 1})
	if err == nil || !strings.Contains(err.Error(), "unknown job kind") {
		t.Fatalf("err = %v, want unknown-kind error", err)
	}
}

// TestSubprocessShardCountInvariance is the process-sharded analogue of
// worker-count invariance: any shard count yields byte-identical results
// in identical order.
func TestSubprocessShardCountInvariance(t *testing.T) {
	const n = 11
	payload := []byte(`"inv"`)
	want := executeAll(t, InProcess{}, Options{Seed: 7}, "test.echo", payload, n)
	for _, shards := range []int{1, 2, 3, 5, n + 3} {
		sp := Subprocess{Shards: shards, Command: testWorkerCmd()}
		got := executeAll(t, sp, Options{Seed: 7}, "test.echo", payload, n)
		for i := range want {
			if !bytes.Equal(got[i], want[i]) {
				t.Fatalf("shards=%d: replica %d = %s, want %s", shards, i, got[i], want[i])
			}
		}
	}
}

// TestSubprocessProgressTicks: the sharded backend honours
// Options.Progress exactly like the in-process pool — one serialized tick
// per replica.
func TestSubprocessProgressTicks(t *testing.T) {
	const n = 9
	var mu sync.Mutex
	var ticks []int
	sp := Subprocess{Shards: 3, Command: testWorkerCmd()}
	err := executeErr(sp, Options{Seed: 1, Progress: func(done, total int) {
		mu.Lock()
		defer mu.Unlock()
		if total != n {
			t.Errorf("progress total = %d, want %d", total, n)
		}
		ticks = append(ticks, done)
	}}, "test.echo", []byte(`"pg"`), n)
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(ticks) != n {
		t.Fatalf("progress ticked %d times, want %d (%v)", len(ticks), n, ticks)
	}
	for i, d := range ticks {
		if d != i+1 {
			t.Fatalf("tick %d reported done=%d, want %d", i, d, i+1)
		}
	}
}

func TestSubprocessCrashMidShardIsRetried(t *testing.T) {
	dir := t.TempDir()
	payload, _ := json.Marshal(struct {
		Dir     string
		Replica int
	}{dir, 4})
	sp := Subprocess{Shards: 3, Command: testWorkerCmd()}
	got := executeAll(t, sp, Options{Seed: 1}, "test.crash-once", payload, 9)
	for i := range got {
		var v int
		if err := json.Unmarshal(got[i], &v); err != nil || v != i {
			t.Errorf("replica %d = %s (err %v)", i, got[i], err)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "crashed")); err != nil {
		t.Fatal("the injected crash never fired; the retry path was not exercised")
	}
}

func TestSubprocessPersistentCrashFailsTheRun(t *testing.T) {
	payload, _ := json.Marshal(2)
	sp := Subprocess{Shards: 2, Command: testWorkerCmd()}
	err := executeErr(sp, Options{Seed: 1}, "test.crash-always", payload, 6)
	if err == nil {
		t.Fatal("run succeeded despite a deterministic worker crash")
	}
	msg := err.Error()
	if !strings.Contains(msg, "failed after 2 attempts") || !strings.Contains(msg, "shard") {
		t.Errorf("error does not identify the failing shard and attempts: %v", err)
	}
}

func TestSubprocessKindErrorFailsWithoutRetry(t *testing.T) {
	payload, _ := json.Marshal(3)
	sp := Subprocess{Shards: 1, Command: testWorkerCmd()}
	err := executeErr(sp, Options{Seed: 1}, "test.fail", payload, 5)
	if err == nil || !strings.Contains(err.Error(), "synthetic kind failure") {
		t.Fatalf("err = %v, want the replica's own failure", err)
	}
	if !strings.Contains(err.Error(), "replica 3") {
		t.Errorf("error does not name the failing replica: %v", err)
	}
}

func TestSubprocessInactivityTimeout(t *testing.T) {
	sp := Subprocess{Shards: 1, Command: testWorkerCmd(), Timeout: 300 * time.Millisecond, Retries: -1}
	start := time.Now()
	err := executeErr(sp, Options{Seed: 1}, "test.hang", nil, 1)
	if err == nil || !strings.Contains(err.Error(), "no frame for") {
		t.Fatalf("err = %v, want an inactivity-timeout error", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("timeout took %v to fire", elapsed)
	}
}

func TestSubprocessContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sp := Subprocess{Shards: 2, Command: testWorkerCmd()}
	err := executeErr(sp, Options{Seed: 1, Context: ctx}, "test.echo", []byte(`"c"`), 8)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestSplitShards(t *testing.T) {
	for replicas := 1; replicas <= 20; replicas++ {
		for n := 1; n <= replicas; n++ {
			ranges := splitShards(replicas, n)
			if len(ranges) != n {
				t.Fatalf("splitShards(%d,%d) gave %d ranges", replicas, n, len(ranges))
			}
			next := 0
			for _, r := range ranges {
				if r.start != next {
					t.Fatalf("splitShards(%d,%d): range starts at %d, want %d", replicas, n, r.start, next)
				}
				if r.count < replicas/n || r.count > replicas/n+1 {
					t.Fatalf("splitShards(%d,%d): uneven count %d", replicas, n, r.count)
				}
				next += r.count
			}
			if next != replicas {
				t.Fatalf("splitShards(%d,%d) covers %d replicas", replicas, n, next)
			}
		}
	}
}

// TestWorkerMainProtocol drives the worker loop in-memory: one job frame
// in, ascending per-replica result frames out.
func TestWorkerMainProtocol(t *testing.T) {
	var in, out bytes.Buffer
	job := jobFrame{Kind: "test.echo", Payload: []byte(`"w"`), Seed: 9, Start: 3, Count: 4, Workers: 2}
	if err := writeFrame(&in, job); err != nil {
		t.Fatal(err)
	}
	if err := WorkerMain(&in, &out); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(&out)
	for i := 0; i < job.Count; i++ {
		var f resultFrame
		if err := readFrame(br, &f); err != nil {
			t.Fatalf("result %d: %v", i, err)
		}
		replica := job.Start + i
		if f.Replica != replica || f.Err != "" {
			t.Fatalf("frame %d = %+v", i, f)
		}
		want, _ := json.Marshal(fmt.Sprintf(`"w"/r%d/s%d`, replica, DeriveSeed(job.Seed, replica)))
		if !bytes.Equal(f.Result, want) {
			t.Errorf("replica %d result = %s, want %s", replica, f.Result, want)
		}
	}
}

// TestProgressAndPartialResultsUnderCancellation is the regression test
// for the dispatch gate: a replica finishing after cancellation keeps its
// result but must not tick Progress.
func TestProgressAndPartialResultsUnderCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ticks []int
	out, err := Run(Options{Workers: 1, Seed: 1, Context: ctx, Progress: func(done, total int) {
		ticks = append(ticks, done)
	}}, 10, func(replica int, seed int64) int {
		if replica == 2 {
			cancel()
		}
		return replica + 100
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// One serial worker: replicas 0 and 1 tick progress; replica 2 runs to
	// completion after cancelling, so its result is recorded but its tick
	// is suppressed; replicas 3+ are never claimed.
	if want := []int{1, 2}; len(ticks) != len(want) || ticks[0] != 1 || ticks[1] != 2 {
		t.Errorf("progress ticks = %v, want %v", ticks, want)
	}
	for i, want := range []int{100, 101, 102, 0, 0} {
		if out[i] != want {
			t.Errorf("out[%d] = %d, want %d", i, out[i], want)
		}
	}
}
