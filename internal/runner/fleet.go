package runner

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// An Endpoint is one worker host of a Fleet: a command that, when
// executed, speaks the length-prefixed worker frame protocol on its
// stdin/stdout. A plain local exec and an ssh remote exec look identical
// from here — the protocol rides whatever byte pipe the command provides.
type Endpoint struct {
	// Name labels the endpoint in lease snapshots and error messages.
	// Empty gets a positional default ("endpoint-i").
	Name string
	// Command is the full worker argv — e.g. {"/path/bin", runner.WorkerFlag}
	// for a local process, or {"ssh", "host", "/path/bin", runner.WorkerFlag}
	// for a remote one. Empty re-execs the current binary with WorkerFlag.
	Command []string
	// Env is extra environment appended to the parent's for each worker
	// the endpoint spawns (local commands; ssh does not forward it).
	Env []string
	// Workers bounds the in-process parallelism of each worker the
	// endpoint runs (0 = the request's Options.Workers, which in turn
	// defaults to the worker host's NumCPU). It never affects results.
	Workers int
	// Throttle pauses this long after each chunk claim before the worker
	// starts — an artificially slow host for heterogeneity tests and the
	// CI steal-schedule gate. It never affects results.
	Throttle time.Duration
}

// Fleet executes replicas across multiple worker endpoints from a shared
// chunk queue with work stealing: the replica range is cut into chunks,
// and every endpoint claims the next unclaimed chunk the moment it goes
// idle, so fast hosts drain what slow hosts never claimed instead of
// idling behind fixed ranges. Because replica i runs with
// DeriveSeed(Seed, i) no matter which endpoint executes it, and results
// are re-assembled in strict replica order, the output is bit-identical
// to InProcess for any endpoint count, steal schedule, or crash/resume
// history.
//
// Failure detection is heartbeat-based: workers interleave liveness
// frames with their results (jobFrame.Heartbeat), and an endpoint silent
// past the liveness bound loses its lease — the chunk's unfinished
// remainder returns to the shared queue for any live endpoint to pick up.
// Deterministic replicas make the re-run exact, so a steal or retry can
// never change output. An endpoint that fails several chunks in a row is
// benched; a chunk that keeps failing everywhere fails the run.
//
// With Journal set, every completed replica spills to an append-only
// on-disk journal as it arrives, and a later Dispatch of the same job
// resumes from the journal instead of replica 0 — the checkpoint story
// for multi-hour grids.
type Fleet struct {
	// Endpoints are the worker hosts; at least one is required.
	Endpoints []Endpoint
	// ChunkSize is the replicas per lease. 0 picks a size that gives each
	// endpoint about four chunks (min 1) — small enough to steal, large
	// enough to amortize process spawns.
	ChunkSize int
	// Heartbeat is the liveness bound: a leased worker silent (no result,
	// no heartbeat frame) for this long is declared lost. Unlike the
	// Subprocess watchdog it tolerates single replicas running longer
	// than the bound, because workers heartbeat while computing.
	// ExecRequest.Timeout, when set, overrides this; 0 means the
	// 10-minute default; negative disables detection.
	Heartbeat time.Duration
	// Retries is how many extra attempts a chunk's remainder gets after a
	// lost lease (0 = default 2; negative disables retries). Attempts are
	// counted per chunk across all endpoints.
	Retries int
	// Journal, when non-empty, is a directory of per-job replica journals
	// (the file name encodes kind, payload checksum, seed and replica
	// count). Completed replicas are appended as they arrive; on
	// Dispatch, replicas already journaled are served from disk and never
	// re-run. Corrupted journal content is detected (checksums) and
	// reported; a torn final record from a killed process is truncated
	// and recovered from.
	Journal string
}

const (
	// defaultChunkRetries is the extra attempts a chunk gets by default.
	defaultChunkRetries = 2
	// endpointMaxStrikes benches an endpoint after this many consecutive
	// chunk failures, so one bad host cannot grind the queue forever.
	endpointMaxStrikes = 3
)

func (f Fleet) chunkSize(replicas int) int {
	if f.ChunkSize > 0 {
		return f.ChunkSize
	}
	n := replicas / (4 * len(f.Endpoints))
	if n < 1 {
		n = 1
	}
	return n
}

// attempts is the total tries a chunk gets before failing the run.
func (f Fleet) attempts() int {
	if f.Retries < 0 {
		return 1
	}
	if f.Retries == 0 {
		return 1 + defaultChunkRetries
	}
	return 1 + f.Retries
}

// chunk is one leasable slice of the replica range.
type chunk struct {
	start, count int
	// attempt counts failed leases so far (0 for a fresh chunk).
	attempt int
}

// leaseState is one claimed chunk in flight on an endpoint.
type leaseState struct {
	endpoint string
	ch       chunk
	done     atomic.Int64
}

// fleetState is the shared queue and lease table of one dispatch.
type fleetState struct {
	mu      sync.Mutex
	cond    *sync.Cond
	queue   []chunk
	active  map[*leaseState]struct{}
	failed  error
	lastErr error
}

func (st *fleetState) leases() []Lease {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]Lease, 0, len(st.active))
	for ls := range st.active {
		out = append(out, Lease{
			Endpoint: ls.endpoint,
			Start:    ls.ch.start,
			Count:    ls.ch.count,
			Attempt:  ls.ch.attempt + 1,
			Done:     int(ls.done.Load()),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// fatalError marks a failure that retrying on another endpoint cannot fix
// (the journal refusing an append, protocol violations that indicate a
// wrong binary); kindError plays the same role for deterministic replica
// errors. Both fail the run immediately.
type fatalError struct{ err error }

func (e fatalError) Error() string { return e.err.Error() }
func (e fatalError) Unwrap() error { return e.err }

// Dispatch implements Backend.
func (f Fleet) Dispatch(req ExecRequest) (*Execution, error) {
	if len(f.Endpoints) == 0 {
		return nil, errors.New("runner: Fleet with no endpoints")
	}
	if req.Replicas <= 0 {
		return completedExecution(nil), nil
	}
	// Resolve endpoint identities and commands up front so a bad setup
	// fails the Dispatch call, not the run.
	eps := make([]Endpoint, len(f.Endpoints))
	copy(eps, f.Endpoints)
	for i := range eps {
		if eps[i].Name == "" {
			eps[i].Name = fmt.Sprintf("endpoint-%d", i)
		}
		if len(eps[i].Command) == 0 {
			exe, err := os.Executable()
			if err != nil {
				return nil, fmt.Errorf("runner: cannot locate executable to re-exec: %w", err)
			}
			eps[i].Command = []string{exe, WorkerFlag}
		}
	}
	var jr *journal
	var recovered map[int][]byte
	if f.Journal != "" {
		var err error
		jr, recovered, err = openJournal(f.Journal, req)
		if err != nil {
			return nil, err
		}
	}
	st := &fleetState{active: map[*leaseState]struct{}{}}
	st.cond = sync.NewCond(&st.mu)
	e := newExecution(req.Replicas, st.leases)
	go func() { e.finish(f.run(req, eps, st, jr, recovered, e.emit)) }()
	return e, nil
}

// run drives one fleet dispatch: recover the journal, queue the missing
// replicas as chunks, and let every endpoint loop over the queue until it
// drains, the run fails, or the context fires.
func (f Fleet) run(req ExecRequest, eps []Endpoint, st *fleetState, jr *journal, recovered map[int][]byte, emit func(int, []byte)) error {
	if jr != nil {
		defer jr.close()
	}
	parent := req.Options.Context
	if parent == nil {
		parent = context.Background()
	}
	ctx, cancel := context.WithCancel(parent)
	defer cancel()

	// Progress ticks once per distinct replica (journal-recovered ones
	// included) and is suppressed after cancellation, like every backend.
	progress := req.Options.Progress
	if progress != nil {
		user := progress
		progress = func(done, total int) {
			if ctx.Err() == nil {
				user(done, total)
			}
		}
	}
	coll := newCollector(req.Replicas, emit, progress)

	// Journal-recovered replicas are delivered first and never re-run:
	// the resume story. The collector orders them, so delivery order here
	// is irrelevant to output.
	for replica, data := range recovered {
		coll.add(replica, data)
	}

	// Queue the replicas the journal does not cover, in contiguous chunks.
	size := f.chunkSize(req.Replicas)
	for start := 0; start < req.Replicas; {
		if _, ok := recovered[start]; ok {
			start++
			continue
		}
		count := 0
		for start+count < req.Replicas && count < size {
			if _, ok := recovered[start+count]; ok {
				break
			}
			count++
		}
		st.queue = append(st.queue, chunk{start: start, count: count})
		start += count
	}
	if len(st.queue) == 0 {
		return parent.Err()
	}

	timeout := req.timeout(f.Heartbeat)

	// Cancellation must wake endpoints parked on the queue condition.
	go func() {
		<-ctx.Done()
		st.cond.Broadcast()
	}()

	var wg sync.WaitGroup
	for i := range eps {
		wg.Add(1)
		go func(ep Endpoint) {
			defer wg.Done()
			f.serve(ctx, cancel, ep, req, st, jr, coll, timeout)
		}(eps[i])
	}
	wg.Wait()

	st.mu.Lock()
	failed, lastErr := st.failed, st.lastErr
	unserved := 0
	for _, c := range st.queue {
		unserved += c.count
	}
	st.mu.Unlock()
	switch {
	case failed != nil:
		return failed
	case parent.Err() != nil:
		return parent.Err()
	case unserved > 0:
		// Every endpoint benched itself with work still queued.
		return fmt.Errorf("runner: fleet ran out of live endpoints with %d replicas unserved (last error: %w)", unserved, lastErr)
	}
	return nil
}

// serve is one endpoint's work-stealing loop: claim the next chunk the
// moment this endpoint goes idle, run it, and return its unfinished
// remainder to the queue if the lease is lost.
func (f Fleet) serve(ctx context.Context, cancel context.CancelFunc, ep Endpoint, req ExecRequest, st *fleetState, jr *journal, coll *collector, timeout time.Duration) {
	strikes := 0
	maxAttempts := f.attempts()
	for {
		st.mu.Lock()
		for len(st.queue) == 0 && len(st.active) > 0 && st.failed == nil && ctx.Err() == nil {
			// Idle but the run is not over: a lost lease may yet requeue
			// work for us to steal.
			st.cond.Wait()
		}
		if len(st.queue) == 0 || st.failed != nil || ctx.Err() != nil {
			st.mu.Unlock()
			return
		}
		ch := st.queue[0]
		st.queue = st.queue[1:]
		ls := &leaseState{endpoint: ep.Name, ch: ch}
		st.active[ls] = struct{}{}
		st.mu.Unlock()

		if ep.Throttle > 0 {
			select {
			case <-time.After(ep.Throttle):
			case <-ctx.Done():
			}
		}
		seen, err := f.runChunk(ctx, ep, req, ch, ls, jr, coll, timeout)

		st.mu.Lock()
		delete(st.active, ls)
		benched := false
		switch {
		case err == nil:
			strikes = 0
		case ctx.Err() != nil:
			// Cancelled mid-chunk: nobody's fault, nothing to requeue.
		default:
			rem := chunk{start: ch.start + seen, count: ch.count - seen, attempt: ch.attempt + 1}
			fatal := false
			switch err.(type) {
			case kindError, fatalError:
				fatal = true
			}
			switch {
			case fatal:
				if st.failed == nil {
					st.failed = fmt.Errorf("runner: fleet chunk (replicas %d-%d) on %s: %w", ch.start, ch.start+ch.count-1, ep.Name, err)
					cancel()
				}
			case rem.count == 0:
				// Every result arrived before the worker died; the chunk
				// is complete and the exit noise is not worth a re-run.
				strikes = 0
			case rem.attempt >= maxAttempts:
				if st.failed == nil {
					st.failed = fmt.Errorf("runner: fleet chunk (replicas %d-%d) failed after %d attempts: %w", rem.start, rem.start+rem.count-1, rem.attempt, err)
					cancel()
				}
			default:
				// The lease is lost: the unfinished remainder returns to
				// the shared queue for any live endpoint to steal.
				st.queue = append(st.queue, rem)
				st.lastErr = err
				strikes++
				benched = strikes >= endpointMaxStrikes
			}
		}
		st.cond.Broadcast()
		st.mu.Unlock()
		if benched {
			return
		}
	}
}

// runChunk spawns one worker for a chunk and streams its frames: results
// feed the journal and the collector as they arrive, heartbeats feed the
// watchdog. It returns how many of the chunk's replicas completed (frames
// arrive in ascending order, so the remainder is exactly what is left).
func (f Fleet) runChunk(ctx context.Context, ep Endpoint, req ExecRequest, ch chunk, ls *leaseState, jr *journal, coll *collector, timeout time.Duration) (seen int, err error) {
	cmd := exec.CommandContext(ctx, ep.Command[0], ep.Command[1:]...)
	cmd.Env = append(os.Environ(), ep.Env...)
	var stderr boundedBuffer
	cmd.Stderr = &stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return 0, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return 0, err
	}
	if err := cmd.Start(); err != nil {
		return 0, fmt.Errorf("spawn worker %q on %s: %w", ep.Command[0], ep.Name, err)
	}

	// The heartbeat watchdog: results and heartbeat frames both reset it;
	// total silence past the bound kills the worker and loses the lease.
	var timedOut atomic.Bool
	var watchdog *time.Timer
	if timeout > 0 {
		watchdog = time.AfterFunc(timeout, func() {
			timedOut.Store(true)
			cmd.Process.Kill()
		})
	}
	var hb time.Duration
	if timeout > 0 {
		// Several beats per bound, so one delayed tick is not a death
		// sentence; floor it so short test bounds don't spin the worker.
		hb = timeout / 4
		if hb < 10*time.Millisecond {
			hb = 10 * time.Millisecond
		}
	}

	workers := ep.Workers
	if workers == 0 {
		workers = req.Options.Workers
	}

	loopErr := func() error {
		job := jobFrame{Kind: req.Kind, Payload: req.Payload, Seed: req.Options.Seed, Start: ch.start, Count: ch.count, Workers: workers, Heartbeat: hb}
		if err := writeFrame(stdin, job); err != nil {
			return fmt.Errorf("send job: %w", err)
		}
		stdin.Close()

		br := bufio.NewReader(stdout)
		for seen < ch.count {
			var fr resultFrame
			if err := readFrame(br, &fr); err != nil {
				return fmt.Errorf("worker stream ended after %d/%d results: %w", seen, ch.count, err)
			}
			if watchdog != nil {
				watchdog.Reset(timeout)
			}
			if fr.Heartbeat {
				continue
			}
			if fr.Replica != ch.start+seen {
				return fmt.Errorf("worker answered for replica %d, want %d (chunk results must arrive in order)", fr.Replica, ch.start+seen)
			}
			if fr.Err != "" {
				return kindError{fmt.Errorf("replica %d: %s", fr.Replica, fr.Err)}
			}
			if jr != nil {
				if err := jr.append(fr.Replica, fr.Result); err != nil {
					return fatalError{err}
				}
			}
			coll.add(fr.Replica, fr.Result)
			seen++
			ls.done.Store(int64(seen))
		}
		return nil
	}()

	if watchdog != nil {
		watchdog.Stop()
	}
	stdin.Close()
	if loopErr != nil {
		cmd.Process.Kill()
	}
	waitErr := cmd.Wait()

	switch {
	case loopErr != nil:
		switch loopErr.(type) {
		case kindError, fatalError:
			return seen, loopErr
		}
		if timedOut.Load() {
			return seen, fmt.Errorf("heartbeat lost: no frame from %s for %v (%s)", ep.Name, timeout, stderrNote(&stderr))
		}
		return seen, fmt.Errorf("%w (%s)", loopErr, stderrNote(&stderr))
	case waitErr != nil && seen < ch.count:
		return seen, fmt.Errorf("worker on %s exited uncleanly (%s): %w", ep.Name, stderrNote(&stderr), waitErr)
	}
	// An unclean exit after the final result (including a watchdog that
	// fired in the read/Stop window) leaves a complete chunk; re-running
	// it would only reproduce the same bytes.
	return seen, nil
}

var _ Backend = Fleet{}
