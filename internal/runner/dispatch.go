package runner

import (
	"sync"
	"time"
)

// ExecRequest describes one backend execution: replicas 0..Replicas-1 of a
// registered job kind, each a pure function of (Payload, replica, derived
// seed). It is the typed form of the old positional Execute signature, with
// room to grow (Timeout is the first addition) without breaking every
// Backend implementation again.
type ExecRequest struct {
	// Kind names the registered job kind (RegisterKind) to execute.
	Kind string
	// Payload is the kind's job description, opaque to the runner.
	Payload []byte
	// Replicas is the number of replicas to run; replica i executes with
	// DeriveSeed(Options.Seed, i) regardless of where it runs.
	Replicas int
	// Options carry the run's seed, parallelism bound, progress callback
	// and cancellation context.
	Options Options
	// Timeout is the per-worker liveness bound shared by every backend
	// that can lose a worker: the Subprocess inactivity watchdog and the
	// Fleet heartbeat grace resolve from this one knob. 0 falls back to
	// the backend's own Timeout/Heartbeat field and then to the 10-minute
	// default; negative disables liveness detection entirely.
	Timeout time.Duration
}

// timeout resolves the effective liveness bound: the request wins, then the
// backend's configured default, then the package default. Negative at any
// level disables the watchdog (returns 0).
func (req ExecRequest) timeout(backendDefault time.Duration) time.Duration {
	d := req.Timeout
	if d == 0 {
		d = backendDefault
	}
	switch {
	case d < 0:
		return 0
	case d == 0:
		return defaultShardTimeout
	}
	return d
}

// Result is one replica's encoded output.
type Result struct {
	// Replica is the global replica index.
	Replica int
	// Data is the replica's encoded result.
	Data []byte
}

// Lease describes one in-flight replica chunk held by a fleet endpoint — a
// live snapshot for monitoring, never part of the result contract.
type Lease struct {
	// Endpoint names the worker endpoint serving the chunk.
	Endpoint string
	// Start and Count delimit the chunk's replica range [Start, Start+Count).
	Start, Count int
	// Attempt is 1 for a first run, higher for a re-leased chunk.
	Attempt int
	// Done is how many of the chunk's replicas have reported results.
	Done int
}

// Execution is a dispatched run in flight. Results streams every replica's
// output in strict ascending replica order — the same bytes in the same
// order regardless of backend, worker count, steal schedule, or
// crash/resume history — and Wait reports the run's final error. The
// results channel is buffered for the full replica count, so calling Wait
// without draining Results cannot deadlock.
type Execution struct {
	total    int
	results  chan Result
	finished chan struct{}
	err      error

	mu      sync.Mutex
	emitted int

	leaseFn func() []Lease
}

func newExecution(total int, leases func() []Lease) *Execution {
	return &Execution{
		total:    total,
		results:  make(chan Result, total),
		finished: make(chan struct{}),
		leaseFn:  leases,
	}
}

// completedExecution is an execution that was over before it began (zero
// replicas, or a backend that failed after the point of no return).
func completedExecution(err error) *Execution {
	e := newExecution(0, nil)
	e.finish(err)
	return e
}

// emit delivers one result. Backends call it from their ordered sink, one
// goroutine at a time, in strictly ascending replica order.
func (e *Execution) emit(replica int, data []byte) {
	e.mu.Lock()
	e.emitted++
	e.mu.Unlock()
	e.results <- Result{Replica: replica, Data: data}
}

// finish seals the execution: the results channel closes and Wait unblocks
// with err. Called exactly once, after the last emit.
func (e *Execution) finish(err error) {
	e.err = err
	close(e.results)
	close(e.finished)
}

// Results streams the replica results in strict ascending replica order;
// the channel closes when the run is over (drain it, then call Wait for
// the verdict).
func (e *Execution) Results() <-chan Result { return e.results }

// Wait blocks until the run is over and returns its error, nil on success.
// Results already streamed are valid even when Wait returns an error.
func (e *Execution) Wait() error {
	<-e.finished
	return e.err
}

// Progress reports how many results have streamed so far out of the total.
// (Options.Progress remains the push-style variant: it ticks once per
// distinct completed replica, which may run ahead of the ordered stream.)
func (e *Execution) Progress() (done, total int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.emitted, e.total
}

// Leases snapshots the in-flight chunk leases. Only Fleet has lease state;
// other backends return nil.
func (e *Execution) Leases() []Lease {
	if e.leaseFn == nil {
		return nil
	}
	return e.leaseFn()
}

// Execute runs req's replicas on b and hands each result to sink in strict
// replica order, blocking until the run is over — the positional contract
// the Backend interface had before Dispatch.
//
// Deprecated: build an ExecRequest and call Backend.Dispatch; it exposes
// the same ordered stream plus progress and lease state.
func Execute(b Backend, o Options, kind string, payload []byte, replicas int, sink func(replica int, result []byte)) error {
	ex, err := b.Dispatch(ExecRequest{Kind: kind, Payload: payload, Replicas: replicas, Options: o})
	if err != nil {
		return err
	}
	for r := range ex.Results() {
		sink(r.Replica, r.Data)
	}
	return ex.Wait()
}
