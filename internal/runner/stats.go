package runner

import "sort"

// Stats is an order-stable aggregator for replica results: feed it values
// in replica order (e.g. from Stream or a Run result slice) and read the
// mean, percentiles, or the empirical CDF. The zero value is ready to use.
type Stats struct {
	xs     []float64
	sum    float64
	sorted bool
}

// Add appends values in arrival order.
func (s *Stats) Add(xs ...float64) {
	s.xs = append(s.xs, xs...)
	for _, x := range xs {
		s.sum += x
	}
	s.sorted = false
}

// N reports how many values were added.
func (s *Stats) N() int { return len(s.xs) }

// Mean returns the arithmetic mean, 0 when empty.
func (s *Stats) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	return s.sum / float64(len(s.xs))
}

// Percentile returns the p-quantile by the nearest-rank rule the
// experiment suite has always used: element ⌊p·(n−1)⌋ of the sorted
// sample. p is clamped to [0, 1] (NaN clamps to 0) — out-of-domain
// p used to index out of range and panic. Returns 0 when empty.
func (s *Stats) Percentile(p float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	if !(p > 0) { // also catches NaN
		p = 0
	} else if p > 1 {
		p = 1
	}
	xs := s.Sorted()
	return xs[int(p*float64(len(xs)-1))]
}

// CDF evaluates the empirical distribution at x: the fraction of samples
// strictly below x (SearchFloat64s semantics, matching Fig. 5).
func (s *Stats) CDF(x float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	xs := s.Sorted()
	return float64(sort.SearchFloat64s(xs, x)) / float64(len(xs))
}

// Sorted returns the samples in ascending order. The slice is owned by the
// aggregator; callers must not modify it.
func (s *Stats) Sorted() []float64 {
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
	return s.xs
}

// Mean is the one-shot form of Stats.Mean.
func Mean(xs []float64) float64 {
	var s Stats
	s.Add(xs...)
	return s.Mean()
}

// Percentile is the one-shot form of Stats.Percentile.
func Percentile(xs []float64, p float64) float64 {
	var s Stats
	s.Add(xs...)
	return s.Percentile(p)
}
