package runner

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Subprocess executes replicas in re-exec'd worker processes — the
// process-sharded Backend. The replica range is split into Shards
// contiguous slices; each shard is served by one worker process (a re-exec
// of the current binary behind WorkerFlag) speaking the length-prefixed
// JSON frame protocol on stdin/stdout. Because every replica's seed is
// DeriveSeed(base, replica) regardless of which process runs it, sharded
// results are bit-identical to in-process results for any shard count.
//
// A shard whose worker crashes, writes a torn frame, or goes silent past
// the inactivity timeout is retried from scratch (replicas are pure, so a
// re-run reproduces the lost results exactly); a shard that keeps failing
// fails the run with the worker's stderr attached. Replica-level KindFunc
// errors are deterministic and fail the run without retry.
type Subprocess struct {
	// Shards is the worker process count (0 = NumCPU), capped at the
	// replica count. The value never affects results, only parallelism.
	Shards int
	// Command is the worker argv (argv[0] is the executable). Empty means
	// re-exec the current binary with WorkerFlag — the production setup;
	// tests point it at a test binary instead.
	Command []string
	// Env is extra environment appended to the parent's for each worker.
	Env []string
	// Timeout is the per-shard inactivity limit: a worker that produces no
	// frame for this long is killed and the shard retried. Result frames
	// are the only liveness signal here (a stuck replica IS a stuck
	// shard), unlike Fleet's explicit heartbeats. ExecRequest.Timeout,
	// when set, overrides this; 0 means the 10-minute default; negative
	// disables the watchdog.
	Timeout time.Duration
	// Retries is how many times a crashed shard is re-run (0 = the default
	// single retry; negative disables retries).
	Retries int
}

const defaultShardTimeout = 10 * time.Minute

func (s Subprocess) shards(replicas int) int {
	n := s.Shards
	if n <= 0 {
		n = runtime.NumCPU()
	}
	if n > replicas {
		n = replicas
	}
	if n < 1 {
		n = 1
	}
	return n
}

func (s Subprocess) retries() int {
	if s.Retries < 0 {
		return 0
	}
	if s.Retries == 0 {
		return 1
	}
	return s.Retries
}

func (s Subprocess) command() ([]string, error) {
	if len(s.Command) > 0 {
		return s.Command, nil
	}
	exe, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("runner: cannot locate executable to re-exec: %w", err)
	}
	return []string{exe, WorkerFlag}, nil
}

// shardRange is one worker's contiguous global replica slice.
type shardRange struct {
	start, count int
}

// splitShards slices [0, replicas) into n near-equal contiguous ranges.
func splitShards(replicas, n int) []shardRange {
	out := make([]shardRange, 0, n)
	base, rem := replicas/n, replicas%n
	start := 0
	for k := 0; k < n; k++ {
		c := base
		if k < rem {
			c++
		}
		out = append(out, shardRange{start, c})
		start += c
	}
	return out
}

// collector buffers out-of-order shard results and hands them to sink in
// strict replica order — the cross-process analogue of Stream's ordered
// emission — ticking Progress once per distinct replica, serialized.
type collector struct {
	mu       sync.Mutex
	buf      [][]byte
	ready    []bool
	next     int
	done     int
	sink     func(replica int, result []byte)
	progress func(done, total int)
}

func newCollector(replicas int, sink func(int, []byte), progress func(done, total int)) *collector {
	return &collector{buf: make([][]byte, replicas), ready: make([]bool, replicas), sink: sink, progress: progress}
}

// add records one replica result; duplicates from a retried shard are
// dropped (determinism makes them byte-identical re-runs).
func (c *collector) add(replica int, b []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ready[replica] {
		return
	}
	c.buf[replica], c.ready[replica] = b, true
	c.done++
	if c.progress != nil {
		c.progress(c.done, len(c.buf))
	}
	for c.next < len(c.buf) && c.ready[c.next] {
		c.sink(c.next, c.buf[c.next])
		c.buf[c.next] = nil
		c.next++
	}
}

// kindError marks a deterministic replica-level failure (a KindFunc error
// reported by the worker) that retrying cannot fix.
type kindError struct{ err error }

func (e kindError) Error() string { return e.err.Error() }

// Dispatch implements Backend.
func (s Subprocess) Dispatch(req ExecRequest) (*Execution, error) {
	if req.Replicas <= 0 {
		return completedExecution(nil), nil
	}
	argv, err := s.command()
	if err != nil {
		return nil, err
	}
	e := newExecution(req.Replicas, nil)
	go func() { e.finish(s.run(argv, req, e.emit)) }()
	return e, nil
}

// run is the sharded execution behind Dispatch, delivering results to emit
// in strict replica order.
func (s Subprocess) run(argv []string, req ExecRequest, emit func(replica int, result []byte)) error {
	o, replicas := req.Options, req.Replicas
	timeout := req.timeout(s.Timeout)
	parent := o.Context
	if parent == nil {
		parent = context.Background()
	}
	ctx, cancel := context.WithCancel(parent)
	defer cancel()

	ranges := splitShards(replicas, s.shards(replicas))
	// Progress ticks once per distinct replica as shards report in; after
	// cancellation it is suppressed, matching the in-process pool.
	progress := o.Progress
	if progress != nil {
		progress = func(done, total int) {
			if ctx.Err() == nil {
				o.Progress(done, total)
			}
		}
	}
	coll := newCollector(replicas, emit, progress)

	// Divide the in-process parallelism budget across the shards so N
	// worker processes on one box don't oversubscribe it N-fold. Workers
	// never affect results, only wall-clock time.
	if o.Workers <= 0 {
		o.Workers = runtime.NumCPU()
	}
	o.Workers = (o.Workers + len(ranges) - 1) / len(ranges)

	var wg sync.WaitGroup
	var errMu sync.Mutex
	var firstErr error
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
			cancel() // a dead run: stop the sibling shards
		}
		errMu.Unlock()
	}

	for k, r := range ranges {
		if r.count == 0 {
			continue
		}
		wg.Add(1)
		go func(k int, r shardRange) {
			defer wg.Done()
			var lastErr error
			for attempt := 0; attempt <= s.retries(); attempt++ {
				if ctx.Err() != nil {
					return
				}
				lastErr = s.runShard(ctx, argv, o, req, r, coll, timeout)
				if lastErr == nil {
					return
				}
				if _, fatal := lastErr.(kindError); fatal {
					fail(fmt.Errorf("runner: shard %d (replicas %d-%d): %w",
						k, r.start, r.start+r.count-1, lastErr))
					return
				}
			}
			if ctx.Err() == nil {
				fail(fmt.Errorf("runner: shard %d (replicas %d-%d) failed after %d attempts: %w",
					k, r.start, r.start+r.count-1, s.retries()+1, lastErr))
			}
		}(k, r)
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return parent.Err()
}

// runShard spawns one worker process for a replica range and feeds its
// results to the collector as frames arrive.
func (s Subprocess) runShard(ctx context.Context, argv []string, o Options, req ExecRequest, r shardRange, coll *collector, timeout time.Duration) error {
	cmd := exec.CommandContext(ctx, argv[0], argv[1:]...)
	cmd.Env = append(os.Environ(), s.Env...)
	var stderr boundedBuffer
	cmd.Stderr = &stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("spawn worker %q: %w", argv[0], err)
	}

	// The inactivity watchdog: any frame resets it; silence kills the
	// worker, which surfaces below as a read error on stdout.
	var timedOut atomic.Bool
	var watchdog *time.Timer
	if timeout > 0 {
		watchdog = time.AfterFunc(timeout, func() {
			timedOut.Store(true)
			cmd.Process.Kill()
		})
	}

	loopErr := func() error {
		job := jobFrame{Kind: req.Kind, Payload: req.Payload, Seed: o.Seed, Start: r.start, Count: r.count, Workers: o.Workers}
		if err := writeFrame(stdin, job); err != nil {
			return fmt.Errorf("send job: %w", err)
		}
		stdin.Close()

		br := bufio.NewReader(stdout)
		for seen := 0; seen < r.count; {
			var f resultFrame
			if err := readFrame(br, &f); err != nil {
				return fmt.Errorf("worker stream ended after %d/%d results: %w", seen, r.count, err)
			}
			if watchdog != nil {
				watchdog.Reset(timeout)
			}
			if f.Heartbeat {
				continue
			}
			if f.Replica < r.start || f.Replica >= r.start+r.count {
				return fmt.Errorf("worker answered for replica %d outside its range [%d,%d)", f.Replica, r.start, r.start+r.count)
			}
			if f.Err != "" {
				return kindError{fmt.Errorf("replica %d: %s", f.Replica, f.Err)}
			}
			coll.add(f.Replica, f.Result)
			seen++
		}
		return nil
	}()

	// Reap the process before returning so a retry never races its
	// predecessor; Wait also flushes the worker's remaining stderr.
	if watchdog != nil {
		watchdog.Stop()
	}
	stdin.Close()
	if loopErr != nil {
		cmd.Process.Kill()
	}
	waitErr := cmd.Wait()

	switch {
	case loopErr != nil:
		if fatal, ok := loopErr.(kindError); ok {
			return fatal
		}
		if timedOut.Load() {
			return fmt.Errorf("worker produced no frame for %v (%s)", timeout, stderrNote(&stderr))
		}
		return fmt.Errorf("%w (%s)", loopErr, stderrNote(&stderr))
	case waitErr != nil:
		if timedOut.Load() {
			// The watchdog fired in the window between the final frame read
			// and its Stop: every result arrived, the kill was ours — a
			// completed shard, not a crash (a retry would only redo it all).
			return nil
		}
		return fmt.Errorf("worker exited uncleanly after all results (%s): %w", stderrNote(&stderr), waitErr)
	}
	return nil
}

// boundedBuffer keeps the head of a worker's stderr for error reports
// without letting a chatty worker grow memory unboundedly.
type boundedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

const maxStderr = 4 << 10

func (b *boundedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if room := maxStderr - b.buf.Len(); room > 0 {
		if len(p) > room {
			b.buf.Write(p[:room])
		} else {
			b.buf.Write(p)
		}
	}
	return len(p), nil
}

func (b *boundedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func stderrNote(b *boundedBuffer) string {
	s := bytes.TrimSpace([]byte(b.String()))
	if len(s) == 0 {
		return "no stderr"
	}
	return "stderr: " + string(s)
}

var _ io.Writer = (*boundedBuffer)(nil)
var _ Backend = Subprocess{}
var _ Backend = InProcess{}
