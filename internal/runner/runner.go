// Package runner shards independent simulation replicas across workers.
// Every replica draws its RNG seed from the base seed and its own index
// alone, and results are collected (or streamed) in replica order, so
// aggregate output is bit-identical regardless of how many workers run or
// how the scheduler interleaves them. This is the execution platform for
// the experiment suite: figures fan their scenario grid × replica matrix
// through Map, and scaling work plugs in underneath without touching
// experiment code.
//
// # The Backend seam
//
// Run, Map and Stream execute on a goroutine pool inside the calling
// process. The Backend interface is the drop-in seam beneath them for
// executing replicas elsewhere: Dispatch takes a typed ExecRequest — a
// registered job kind, an opaque payload, a replica count, Options, and a
// liveness Timeout — and returns an Execution that streams the encoded
// results in strict ascending replica order (Results), reports the final
// verdict (Wait), and exposes progress and in-flight lease state. The
// package-level Execute function is the deprecated positional wrapper over
// Dispatch kept for old call sites.
//
// Three backends ship today: InProcess (the goroutine pool, routed through
// the job codec), Subprocess (worker processes — re-execs of the current
// binary behind WorkerFlag — speaking length-prefixed JSON frames over
// stdin/stdout, with crash/timeout detection and per-shard retry), and
// Fleet (multiple worker endpoints — local commands or ssh-style remote
// execs — pulling chunks from a shared work-stealing queue, with
// heartbeat-based failure detection and an optional on-disk checkpoint
// journal for resume). Because replica seeds and ordering are
// backend-independent, swapping backends can never change results, only
// wall-clock time.
//
// Job kinds are registered by name (RegisterKind) in package init, so a
// re-exec'd worker process holds the same kind table as its parent.
// Binaries that offer the Subprocess or Fleet backends must call
// MaybeWorker first in main.
package runner

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// SeedStride separates per-replica seed streams. Replica seeds are
// base*SeedStride + replica, so distinct bases give disjoint streams for
// any replica count below the stride.
const SeedStride = 7919

// DeriveSeed returns the deterministic RNG seed for one replica of a run.
func DeriveSeed(base int64, replica int) int64 {
	return base*SeedStride + int64(replica)
}

// Options configure a parallel run.
type Options struct {
	// Workers is the pool size; 0 means runtime.NumCPU(). The value never
	// affects results, only wall-clock time.
	Workers int
	// Seed is the base seed; replica i runs with DeriveSeed(Seed, i).
	Seed int64
	// Progress, when non-nil, is called after each replica completes with
	// the number finished so far and the total. Calls are serialized, and
	// Progress never fires after the context is cancelled — replicas that
	// were already in flight still finish and their results are recorded,
	// but they tick no progress.
	Progress func(done, total int)
	// Context, when non-nil, cancels the run: workers stop claiming new
	// replicas once it is done and Run returns the context's error with
	// the partial results (unclaimed slots hold zero values). Replicas in
	// flight at cancellation run to completion — their slots hold real
	// results — but their Progress callbacks are suppressed.
	Context context.Context
}

func (o Options) workers(n int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.NumCPU()
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Run executes fn for replicas 0..replicas-1 across the worker pool and
// returns the results in replica order. fn must be self-contained: it
// builds its own simulation from the seed it is handed and shares no
// mutable state with other replicas.
func Run[T any](o Options, replicas int, fn func(replica int, seed int64) T) ([]T, error) {
	out := make([]T, replicas)
	err := dispatch(o, replicas, func(i int) {
		out[i] = fn(i, DeriveSeed(o.Seed, i))
	})
	return out, err
}

// Map runs fn over every job and returns the results in job order. The
// seed handed to fn is derived from the job's index, so a given job list
// and base seed always reproduce the same results.
func Map[J, T any](o Options, jobs []J, fn func(job J, seed int64) T) ([]T, error) {
	return Run(o, len(jobs), func(i int, seed int64) T {
		return fn(jobs[i], seed)
	})
}

// Stream executes fn for each replica and hands results to sink in strict
// replica order as soon as the completed prefix grows, buffering
// out-of-order completions. Streaming aggregators therefore observe the
// exact same sequence for any worker count. sink runs under the runner's
// lock and must not call back into the runner.
func Stream[T any](o Options, replicas int, fn func(replica int, seed int64) T, sink func(replica int, v T)) error {
	buf := make([]T, replicas)
	ready := make([]bool, replicas)
	next := 0
	var mu sync.Mutex
	return dispatch(o, replicas, func(i int) {
		v := fn(i, DeriveSeed(o.Seed, i))
		mu.Lock()
		buf[i], ready[i] = v, true
		for next < replicas && ready[next] {
			sink(next, buf[next])
			next++
		}
		mu.Unlock()
	})
}

// dispatch is the shared pool: workers claim replica indices from an
// atomic counter until the range is exhausted or the context fires.
func dispatch(o Options, n int, work func(i int)) error {
	ctx := o.Context
	var claim atomic.Int64
	done := 0
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := o.workers(n); w > 0; w-- {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(claim.Add(1)) - 1
				if i >= n || (ctx != nil && ctx.Err() != nil) {
					return
				}
				work(i)
				if o.Progress != nil {
					mu.Lock()
					// Re-check under the lock: a replica finishing after
					// cancellation keeps its result but must not tick
					// progress (the run is already reporting an error).
					if ctx == nil || ctx.Err() == nil {
						done++
						o.Progress(done, n)
					}
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if ctx != nil {
		return ctx.Err()
	}
	return nil
}
