package runner

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// WorkerFlag is the hidden argv sentinel that switches a binary into shard
// worker mode. It is deliberately not a registered flag.FlagSet member:
// workers are spawned only by the Subprocess backend, never by hand.
const WorkerFlag = "-runner-worker"

// MaybeWorker turns the current process into a shard worker when it was
// spawned with WorkerFlag as its first argument: it serves one jobFrame on
// stdin/stdout and exits. Binaries that offer a Subprocess backend must
// call it first in main, before flag parsing. In a normal invocation it is
// a no-op.
func MaybeWorker() {
	if len(os.Args) < 2 || os.Args[1] != WorkerFlag {
		return
	}
	if err := WorkerMain(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "runner worker:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// WorkerMain is the shard worker loop: it reads one jobFrame from r, runs
// the shard's replicas through the in-process pool, writes one resultFrame
// per replica to w in ascending replica order, and returns. Replica i of
// the shard (global index Start+i) runs with DeriveSeed(Seed, Start+i) —
// the same seed it would get in-process, which is what makes sharded runs
// bit-identical.
//
// Every frame is flushed as it is written, so the parent's watchdog sees
// results the moment they exist; when the job asks for heartbeats
// (jobFrame.Heartbeat > 0) a ticker interleaves liveness-only frames with
// the results under the same write lock.
func WorkerMain(r io.Reader, w io.Writer) error {
	br := bufio.NewReader(r)
	bw := bufio.NewWriter(w)
	var job jobFrame
	if err := readFrame(br, &job); err != nil {
		return err
	}
	if job.Count < 0 || job.Start < 0 {
		return fmt.Errorf("runner: worker got invalid replica range [%d,%d)", job.Start, job.Start+job.Count)
	}
	fn, err := lookupKind(job.Kind)
	if err != nil {
		return err
	}
	var wmu sync.Mutex
	var writeErr error
	put := func(f resultFrame) {
		wmu.Lock()
		defer wmu.Unlock()
		if writeErr != nil {
			return
		}
		if writeErr = writeFrame(bw, f); writeErr == nil {
			writeErr = bw.Flush()
		}
	}
	stopHeartbeat := func() {}
	if job.Heartbeat > 0 {
		stop := make(chan struct{})
		done := make(chan struct{})
		go func() {
			defer close(done)
			t := time.NewTicker(job.Heartbeat)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					put(resultFrame{Heartbeat: true})
				case <-stop:
					return
				}
			}
		}()
		stopHeartbeat = func() { close(stop); <-done }
	}
	type res struct {
		b   []byte
		err error
	}
	err = Stream(Options{Workers: job.Workers, Seed: job.Seed}, job.Count, func(i int, _ int64) res {
		replica := job.Start + i
		b, err := fn(job.Payload, replica, DeriveSeed(job.Seed, replica))
		return res{b, err}
	}, func(i int, v res) {
		f := resultFrame{Replica: job.Start + i, Result: v.b}
		if v.err != nil {
			f.Err = v.err.Error()
		}
		put(f)
	})
	// Stop the ticker before reading writeErr: after stopHeartbeat returns
	// no goroutine writes frames, so the read below is race-free.
	stopHeartbeat()
	if err != nil {
		return err
	}
	return writeErr
}
