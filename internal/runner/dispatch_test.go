package runner

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"
)

// TestDeprecatedExecuteWrapper pins the compatibility contract: the old
// positional Execute keeps working on top of Dispatch — same results, same
// strict order, same error surface.
func TestDeprecatedExecuteWrapper(t *testing.T) {
	const n = 7
	payload := []byte(`"wrap"`)
	want := executeAll(t, InProcess{}, Options{Seed: 3}, "test.echo", payload, n)
	next := 0
	//lint:ignore SA1019 the deprecated wrapper is exactly what this test pins
	//qnetlint:allow nodeprecated the Execute shim's designated coverage: pins the wrapper's result/order/error contract until deletion
	err := Execute(InProcess{}, Options{Seed: 3}, "test.echo", payload, n, func(replica int, result []byte) {
		if replica != next {
			t.Errorf("sink got replica %d, want %d", replica, next)
		}
		if string(result) != string(want[replica]) {
			t.Errorf("replica %d = %s, want %s", replica, result, want[replica])
		}
		next++
	})
	if err != nil {
		t.Fatal(err)
	}
	if next != n {
		t.Fatalf("sink saw %d of %d replicas", next, n)
	}

	//lint:ignore SA1019 error passthrough of the deprecated wrapper
	//qnetlint:allow nodeprecated the Execute shim's designated coverage: error passthrough half of the same pinned contract
	err = Execute(InProcess{}, Options{}, "test.unregistered", nil, 1, func(int, []byte) {})
	if err == nil || !strings.Contains(err.Error(), "unknown job kind") {
		t.Fatalf("err = %v, want unknown-kind error", err)
	}
}

// TestTimeoutResolution pins the one-knob liveness contract: the request's
// Timeout wins, then the backend's configured default, then the package
// default; negative at either level disables the watchdog.
func TestTimeoutResolution(t *testing.T) {
	for _, tc := range []struct {
		req, backend, want time.Duration
	}{
		{0, 0, defaultShardTimeout},
		{0, time.Minute, time.Minute},
		{time.Second, time.Minute, time.Second},
		{time.Second, 0, time.Second},
		{-1, time.Minute, 0},
		{-1, 0, 0},
		{0, -1, 0},
	} {
		got := ExecRequest{Timeout: tc.req}.timeout(tc.backend)
		if got != tc.want {
			t.Errorf("timeout(req=%v, backend=%v) = %v, want %v", tc.req, tc.backend, got, tc.want)
		}
	}
}

// TestRequestTimeoutOverridesBackend: an ExecRequest.Timeout beats the
// backend's own (here uselessly long) watchdog setting.
func TestRequestTimeoutOverridesBackend(t *testing.T) {
	sp := Subprocess{Shards: 1, Command: testWorkerCmd(), Timeout: time.Hour, Retries: -1}
	ex, err := sp.Dispatch(ExecRequest{Kind: "test.hang", Replicas: 1, Options: Options{Seed: 1}, Timeout: 300 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	for range ex.Results() {
	}
	err = ex.Wait()
	if err == nil || !strings.Contains(err.Error(), "no frame for 300ms") {
		t.Fatalf("err = %v, want the request-level 300ms watchdog to fire", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("timeout took %v to fire", elapsed)
	}
}

// TestExecutionProgressAndLeases: the pull-style Execution observers. The
// stream-side Progress counts emitted results; backends without lease
// state answer Leases with nil.
func TestExecutionProgressAndLeases(t *testing.T) {
	const n = 5
	ex, err := InProcess{}.Dispatch(ExecRequest{Kind: "test.echo", Payload: []byte(`"o"`), Replicas: n, Options: Options{Seed: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if ex.Leases() != nil {
		t.Error("InProcess execution reports leases; only Fleet has lease state")
	}
	seen := 0
	for r := range ex.Results() {
		seen++
		done, total := ex.Progress()
		if total != n {
			t.Fatalf("Progress total = %d, want %d", total, n)
		}
		if done < seen {
			t.Fatalf("after receiving replica %d, Progress done = %d < %d received", r.Replica, done, seen)
		}
	}
	if err := ex.Wait(); err != nil {
		t.Fatal(err)
	}
	if done, _ := ex.Progress(); done != n {
		t.Errorf("final Progress done = %d, want %d", done, n)
	}
}

// TestWaitWithoutDraining: the results channel is buffered for the full
// replica count, so Wait without consuming Results must not deadlock.
func TestWaitWithoutDraining(t *testing.T) {
	const n = 50
	ex, err := InProcess{}.Dispatch(ExecRequest{Kind: "test.echo", Payload: []byte(`"d"`), Replicas: n, Options: Options{Seed: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if err := ex.Wait(); err != nil {
		t.Fatal(err)
	}
	i := 0
	for r := range ex.Results() {
		want, _ := json.Marshal(fmt.Sprintf(`"d"/r%d/s%d`, i, DeriveSeed(4, i)))
		if r.Replica != i || string(r.Data) != string(want) {
			t.Fatalf("post-Wait result %d = {%d %s}, want {%d %s}", i, r.Replica, r.Data, i, want)
		}
		i++
	}
	if i != n {
		t.Fatalf("drained %d of %d buffered results after Wait", i, n)
	}
}
