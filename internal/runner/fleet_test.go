package runner

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

func init() {
	// test.stop-once: SIGSTOPs its own process on one replica, but only the
	// first time (a marker file remembers) — the injected silent worker for
	// the heartbeat-loss test. A stopped process sends no frames and no
	// heartbeats but is still alive, which is exactly the failure mode the
	// heartbeat watchdog exists to catch.
	RegisterKind("test.stop-once", func(payload []byte, replica int, seed int64) ([]byte, error) {
		var p struct {
			Dir     string
			Replica int
		}
		if err := json.Unmarshal(payload, &p); err != nil {
			return nil, err
		}
		if replica == p.Replica {
			marker := filepath.Join(p.Dir, "stopped")
			if _, err := os.Stat(marker); os.IsNotExist(err) {
				os.WriteFile(marker, []byte("x"), 0o644)
				syscall.Kill(syscall.Getpid(), syscall.SIGSTOP)
			}
		}
		return json.Marshal(replica)
	})
	// test.echo-log: appends its replica index to a shared log before
	// echoing, so resume tests can prove which replicas actually executed
	// (journal-recovered ones must not).
	RegisterKind("test.echo-log", func(payload []byte, replica int, seed int64) ([]byte, error) {
		var p struct{ Dir string }
		if err := json.Unmarshal(payload, &p); err != nil {
			return nil, err
		}
		f, err := os.OpenFile(filepath.Join(p.Dir, "ran.log"), os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(f, "%d\n", replica)
		f.Close()
		return json.Marshal(fmt.Sprintf("r%d/s%d", replica, seed))
	})
}

// localEndpoints builds n loopback endpoints re-execing this test binary.
func localEndpoints(n int) []Endpoint {
	eps := make([]Endpoint, n)
	for i := range eps {
		eps[i] = Endpoint{Name: fmt.Sprintf("local-%d", i), Command: testWorkerCmd()}
	}
	return eps
}

func TestFleetNoEndpoints(t *testing.T) {
	_, err := Fleet{}.Dispatch(ExecRequest{Kind: "test.echo", Replicas: 1})
	if err == nil || !strings.Contains(err.Error(), "no endpoints") {
		t.Fatalf("err = %v, want a no-endpoints error", err)
	}
}

// TestFleetMatchesInProcess is the core invariant: a multi-endpoint
// work-stealing fleet produces byte-identical results in identical order to
// the in-process pool, for several endpoint and chunk geometries.
func TestFleetMatchesInProcess(t *testing.T) {
	const n = 13
	payload := []byte(`"fleet"`)
	want := executeAll(t, InProcess{}, Options{Seed: 11}, "test.echo", payload, n)
	for _, tc := range []struct{ endpoints, chunk int }{
		{1, 0}, {2, 2}, {3, 1}, {4, 5},
	} {
		fl := Fleet{Endpoints: localEndpoints(tc.endpoints), ChunkSize: tc.chunk}
		got := executeAll(t, fl, Options{Seed: 11}, "test.echo", payload, n)
		for i := range want {
			if !bytes.Equal(got[i], want[i]) {
				t.Fatalf("endpoints=%d chunk=%d: replica %d = %s, want %s",
					tc.endpoints, tc.chunk, i, got[i], want[i])
			}
		}
	}
}

// TestFleetStealScheduleInvariance: one fast and one artificially slow
// endpoint produce the same bytes as two uniform endpoints — the steal
// schedule moves work between hosts but can never move results.
func TestFleetStealScheduleInvariance(t *testing.T) {
	const n = 12
	payload := []byte(`"steal"`)
	want := executeAll(t, InProcess{}, Options{Seed: 23}, "test.echo", payload, n)

	skewed := localEndpoints(2)
	skewed[1].Throttle = 40 * time.Millisecond
	for name, fl := range map[string]Fleet{
		"uniform": {Endpoints: localEndpoints(2), ChunkSize: 2},
		"skewed":  {Endpoints: skewed, ChunkSize: 2},
	} {
		ex, err := fl.Dispatch(ExecRequest{Kind: "test.echo", Payload: payload, Replicas: n, Options: Options{Seed: 23}})
		if err != nil {
			t.Fatal(err)
		}
		// Lease snapshots are monitoring-only; just check well-formedness.
		for _, l := range ex.Leases() {
			if l.Endpoint == "" || l.Count <= 0 || l.Start < 0 || l.Start+l.Count > n || l.Attempt < 1 {
				t.Errorf("%s: malformed lease %+v", name, l)
			}
		}
		got := make([][]byte, n)
		for r := range ex.Results() {
			got[r.Replica] = r.Data
		}
		if err := ex.Wait(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i := range want {
			if !bytes.Equal(got[i], want[i]) {
				t.Fatalf("%s: replica %d = %s, want %s", name, i, got[i], want[i])
			}
		}
	}
}

// TestFleetWorkerCrashMidGrid: killing a worker mid-run loses a lease, the
// chunk remainder returns to the queue, and the final results are identical
// to an undisturbed run.
func TestFleetWorkerCrashMidGrid(t *testing.T) {
	dir := t.TempDir()
	payload, _ := json.Marshal(struct {
		Dir     string
		Replica int
	}{dir, 5})
	const n = 9
	fl := Fleet{Endpoints: localEndpoints(2), ChunkSize: 3}
	got := executeAll(t, fl, Options{Seed: 1}, "test.crash-once", payload, n)
	for i := range got {
		want, _ := json.Marshal(i)
		if !bytes.Equal(got[i], want) {
			t.Errorf("replica %d = %s, want %s", i, got[i], want)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "crashed")); err != nil {
		t.Fatal("the injected crash never fired; the lease-loss path was not exercised")
	}
}

// TestFleetHeartbeatLossRequeues: a worker that goes silent without dying
// (SIGSTOP) is declared lost via missed heartbeats, its chunk remainder is
// requeued, and the run still completes with correct results.
func TestFleetHeartbeatLossRequeues(t *testing.T) {
	dir := t.TempDir()
	payload, _ := json.Marshal(struct {
		Dir     string
		Replica int
	}{dir, 3})
	const n = 6
	fl := Fleet{Endpoints: localEndpoints(1), ChunkSize: 3, Heartbeat: 500 * time.Millisecond}
	got := executeAll(t, fl, Options{Seed: 2, Workers: 1}, "test.stop-once", payload, n)
	for i := range got {
		want, _ := json.Marshal(i)
		if !bytes.Equal(got[i], want) {
			t.Errorf("replica %d = %s, want %s", i, got[i], want)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "stopped")); err != nil {
		t.Fatal("the injected stall never fired; the heartbeat-loss path was not exercised")
	}
}

func TestFleetKindErrorFailsWithoutRetry(t *testing.T) {
	payload, _ := json.Marshal(3)
	fl := Fleet{Endpoints: localEndpoints(2), ChunkSize: 2}
	err := executeErr(fl, Options{Seed: 1}, "test.fail", payload, 6)
	if err == nil || !strings.Contains(err.Error(), "synthetic kind failure") {
		t.Fatalf("err = %v, want the replica's own failure", err)
	}
	if !strings.Contains(err.Error(), "replica 3") {
		t.Errorf("error does not name the failing replica: %v", err)
	}
}

func TestFleetPersistentCrashFailsTheRun(t *testing.T) {
	payload, _ := json.Marshal(2)
	fl := Fleet{Endpoints: localEndpoints(2), ChunkSize: 2}
	err := executeErr(fl, Options{Seed: 1}, "test.crash-always", payload, 6)
	if err == nil {
		t.Fatal("run succeeded despite a deterministic worker crash")
	}
	if !strings.Contains(err.Error(), "failed after 3 attempts") {
		t.Errorf("error does not report the exhausted attempts: %v", err)
	}
}

// TestFleetBadEndpointIsBenched: an endpoint that fails every chunk it
// touches is benched after a few strikes, and the remaining endpoints
// finish the queue — one bad host cannot take down the run.
func TestFleetBadEndpointIsBenched(t *testing.T) {
	const n = 12
	payload := []byte(`"bench"`)
	want := executeAll(t, InProcess{}, Options{Seed: 31}, "test.echo", payload, n)
	eps := []Endpoint{
		{Name: "good", Command: testWorkerCmd()},
		{Name: "broken", Command: []string{"/bin/false"}},
	}
	// ChunkSize 1 gives the broken endpoint many distinct chunks to fail,
	// so it strikes out before any single chunk exhausts its attempts.
	fl := Fleet{Endpoints: eps, ChunkSize: 1}
	got := executeAll(t, fl, Options{Seed: 31}, "test.echo", payload, n)
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Errorf("replica %d = %s, want %s", i, got[i], want[i])
		}
	}
}

// TestFleetRemoteStyleCommand runs an endpoint through a shell exec — the
// same shape as an ssh remote command — proving the protocol only needs a
// byte pipe, not a direct child process.
func TestFleetRemoteStyleCommand(t *testing.T) {
	const n = 8
	payload := []byte(`"remote"`)
	want := executeAll(t, InProcess{}, Options{Seed: 17}, "test.echo", payload, n)
	cmd := testWorkerCmd()
	eps := []Endpoint{{
		Name:    "sh-tunnel",
		Command: []string{"/bin/sh", "-c", `exec "$0" "$1"`, cmd[0], cmd[1]},
	}}
	fl := Fleet{Endpoints: eps, ChunkSize: 3}
	got := executeAll(t, fl, Options{Seed: 17}, "test.echo", payload, n)
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Errorf("replica %d = %s, want %s", i, got[i], want[i])
		}
	}
}

// readLog parses test.echo-log's executed-replica log.
func readLog(t *testing.T, dir string) []int {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(dir, "ran.log"))
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		t.Fatal(err)
	}
	var out []int
	for _, line := range strings.Fields(string(data)) {
		var v int
		fmt.Sscanf(line, "%d", &v)
		out = append(out, v)
	}
	return out
}

// TestFleetJournalResume is the checkpoint/resume story end to end: a run
// cancelled partway leaves a journal; re-dispatching the same job resumes
// from it, re-running only the un-journaled replicas, and the combined
// output is byte-identical to an uninterrupted in-process run. A third
// dispatch on the now-complete journal succeeds with no live endpoint at
// all.
func TestFleetJournalResume(t *testing.T) {
	dir := t.TempDir()
	jdir := filepath.Join(dir, "journal")
	payload, _ := json.Marshal(struct{ Dir string }{dir})
	const n = 10
	want := executeAll(t, InProcess{}, Options{Seed: 5}, "test.echo-log", payload, n)
	os.Remove(filepath.Join(dir, "ran.log"))

	req := func(ctx context.Context, progress func(int, int)) ExecRequest {
		return ExecRequest{Kind: "test.echo-log", Payload: payload, Replicas: n,
			Options: Options{Seed: 5, Workers: 1, Context: ctx, Progress: progress}}
	}
	fl := Fleet{Endpoints: localEndpoints(1), ChunkSize: 2, Journal: jdir}

	// First run: cancel once a few replicas have completed (and therefore
	// hit the journal — every result is journaled before it is delivered).
	ctx, cancel := context.WithCancel(context.Background())
	ex, err := fl.Dispatch(req(ctx, func(done, total int) {
		if done >= 3 {
			cancel()
		}
	}))
	if err != nil {
		t.Fatal(err)
	}
	for range ex.Results() {
	}
	if err := ex.Wait(); err != context.Canceled {
		t.Fatalf("cancelled run: err = %v, want context.Canceled", err)
	}
	cancel()

	// The journal now holds the completed prefix of the run.
	jr, journaled, err := openJournal(jdir, req(nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	jr.close()
	if len(journaled) < 3 {
		t.Fatalf("journal holds %d replicas after 3 progress ticks", len(journaled))
	}
	ranBefore := readLog(t, dir)

	// Resume: same job, same journal directory. Only the complement of the
	// journaled set may execute.
	got := executeAll(t, fl, Options{Seed: 5, Workers: 1}, "test.echo-log", payload, n)
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Errorf("resumed replica %d = %s, want %s", i, got[i], want[i])
		}
	}
	reran := readLog(t, dir)[len(ranBefore):]
	sort.Ints(reran)
	var wantReran []int
	for i := 0; i < n; i++ {
		if _, ok := journaled[i]; !ok {
			wantReran = append(wantReran, i)
		}
	}
	if fmt.Sprint(reran) != fmt.Sprint(wantReran) {
		t.Errorf("resume executed replicas %v, want exactly the un-journaled %v", reran, wantReran)
	}

	// With the journal complete, a fleet of only broken endpoints still
	// serves the whole job from disk.
	dead := Fleet{Endpoints: []Endpoint{{Name: "dead", Command: []string{"/bin/false"}}}, Journal: jdir}
	got = executeAll(t, dead, Options{Seed: 5, Workers: 1}, "test.echo-log", payload, n)
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Errorf("journal-only replica %d = %s, want %s", i, got[i], want[i])
		}
	}
	if after := readLog(t, dir); len(after) != len(ranBefore)+len(reran) {
		t.Error("the journal-only dispatch executed replicas it should have recovered from disk")
	}
}

// journalFile finds the single journal file written under dir.
func journalFile(t *testing.T, dir string) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "*.journal"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("journal dir holds %v (err %v), want exactly one file", matches, err)
	}
	return matches[0]
}

// completeJournal runs a job to completion under a fresh journal dir and
// returns the dir, the request, and the expected results.
func completeJournal(t *testing.T, seed int64) (string, ExecRequest, [][]byte) {
	t.Helper()
	jdir := t.TempDir()
	payload, _ := json.Marshal(fmt.Sprintf("j%d", seed))
	const n = 6
	fl := Fleet{Endpoints: localEndpoints(1), ChunkSize: 2, Journal: jdir}
	want := executeAll(t, fl, Options{Seed: seed}, "test.echo", payload, n)
	return jdir, ExecRequest{Kind: "test.echo", Payload: payload, Replicas: n, Options: Options{Seed: seed}}, want
}

// TestFleetJournalTornTailRecovered: a torn final record — the parent died
// mid-append — is truncated away and the journal stays usable.
func TestFleetJournalTornTailRecovered(t *testing.T) {
	jdir, req, want := completeJournal(t, 41)
	f, err := os.OpenFile(journalFile(t, jdir), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	// A frame header promising 100 bytes, followed by only 4: torn.
	f.Write([]byte{0, 0, 0, 100, 'x', 'x', 'x', 'x'})
	f.Close()

	dead := Fleet{Endpoints: []Endpoint{{Name: "dead", Command: []string{"/bin/false"}}}, Journal: jdir}
	got := executeAll(t, dead, req.Options, req.Kind, req.Payload, req.Replicas)
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Errorf("replica %d = %s, want %s", i, got[i], want[i])
		}
	}
}

// TestFleetJournalCorruptionDetected: a flipped byte inside a record is a
// hard, reported error — never silently wrong results.
func TestFleetJournalCorruptionDetected(t *testing.T) {
	jdir, req, _ := completeJournal(t, 43)
	path := journalFile(t, jdir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the first record's Result payload (the header
	// frame ends at 4+len(header); the record's own framing starts there).
	idx := bytes.Index(data, []byte(`"Result":"`))
	if idx < 0 {
		t.Fatal("no Result field found in journal")
	}
	data[idx+len(`"Result":"`)] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	fl := Fleet{Endpoints: localEndpoints(1), Journal: jdir}
	_, err = fl.Dispatch(req)
	if err == nil || !strings.Contains(err.Error(), "corrupted") {
		t.Fatalf("err = %v, want a corruption report", err)
	}
}

// TestFleetJournalChecksumCatchesReplicaRemap: a record whose Replica field
// was altered (bytes still valid JSON) fails its checksum — the CRC covers
// the replica index, not just the result bytes.
func TestFleetJournalChecksumCatchesReplicaRemap(t *testing.T) {
	jdir, req, _ := completeJournal(t, 47)
	path := journalFile(t, jdir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Rewrite the second record's replica index from 1 to 7: same length,
	// valid JSON, wrong identity.
	idx := bytes.Index(data, []byte(`"Replica":1,`))
	if idx < 0 {
		t.Fatal("no replica-1 record found in journal")
	}
	data[idx+len(`"Replica":`)] = '7'
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	fl := Fleet{Endpoints: localEndpoints(1), Journal: jdir}
	_, err = fl.Dispatch(req)
	if err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("err = %v, want a checksum failure", err)
	}
}

// TestFleetJournalJobMismatch: a journal copied under another job's name is
// refused — the header binds the file to the job that wrote it.
func TestFleetJournalJobMismatch(t *testing.T) {
	jdir, _, _ := completeJournal(t, 53)
	other := ExecRequest{Kind: "test.echo", Payload: []byte(`"different"`), Replicas: 6, Options: Options{Seed: 53}}
	src, _ := os.ReadFile(journalFile(t, jdir))
	if err := os.WriteFile(journalPath(jdir, other), src, 0o644); err != nil {
		t.Fatal(err)
	}
	fl := Fleet{Endpoints: localEndpoints(1), Journal: jdir}
	_, err := fl.Dispatch(other)
	if err == nil || !strings.Contains(err.Error(), "different job") {
		t.Fatalf("err = %v, want a job-mismatch report", err)
	}
}

// TestProgressSingleTickUnderShardRetry pins the Progress contract under
// retries: a retried shard re-runs replicas whose results already arrived,
// and the collector must tick done exactly once per distinct replica — the
// sequence is 1..n with no repeats regardless of crash history.
func TestProgressSingleTickUnderShardRetry(t *testing.T) {
	for name, mk := range map[string]func() Backend{
		"subprocess": func() Backend { return Subprocess{Shards: 3, Command: testWorkerCmd()} },
		"fleet":      func() Backend { return Fleet{Endpoints: localEndpoints(2), ChunkSize: 3} },
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			payload, _ := json.Marshal(struct {
				Dir     string
				Replica int
			}{dir, 4})
			const n = 9
			var mu sync.Mutex
			var ticks []int
			err := executeErr(mk(), Options{Seed: 1, Progress: func(done, total int) {
				mu.Lock()
				defer mu.Unlock()
				if total != n {
					t.Errorf("progress total = %d, want %d", total, n)
				}
				ticks = append(ticks, done)
			}}, "test.crash-once", payload, n)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := os.Stat(filepath.Join(dir, "crashed")); err != nil {
				t.Fatal("the injected crash never fired; the retry path was not exercised")
			}
			mu.Lock()
			defer mu.Unlock()
			if len(ticks) != n {
				t.Fatalf("progress ticked %d times, want %d (%v)", len(ticks), n, ticks)
			}
			for i, d := range ticks {
				if d != i+1 {
					t.Fatalf("tick %d reported done=%d, want %d (a retried replica double-ticked)", i, d, i+1)
				}
			}
		})
	}
}
