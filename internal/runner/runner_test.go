package runner

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"
)

// replicaWork is a stand-in for a simulation replica: a value that depends
// on the seed and replica index alone, with a scheduling-hostile sleep so
// completions land out of order.
func replicaWork(replica int, seed int64) float64 {
	time.Sleep(time.Duration(rand.Intn(3)) * time.Millisecond)
	return float64(seed)*1e-6 + float64(replica)
}

func TestDeriveSeed(t *testing.T) {
	if DeriveSeed(1, 0) != SeedStride {
		t.Errorf("DeriveSeed(1,0) = %d", DeriveSeed(1, 0))
	}
	// Distinct (base, replica) pairs must give distinct seeds for sane sizes.
	seen := map[int64]bool{}
	for base := int64(1); base <= 8; base++ {
		for r := 0; r < 100; r++ {
			s := DeriveSeed(base, r)
			if seen[s] {
				t.Fatalf("seed collision at base=%d replica=%d", base, r)
			}
			seen[s] = true
		}
	}
}

func TestRunDeterministicAcrossWorkers(t *testing.T) {
	const n = 64
	var want []float64
	for _, workers := range []int{1, 2, 3, runtime.NumCPU(), 4 * runtime.NumCPU()} {
		got, err := Run(Options{Workers: workers, Seed: 42}, n, replicaWork)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != n {
			t.Fatalf("workers=%d: %d results", workers, len(got))
		}
		if want == nil {
			want = got
			continue
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: result[%d] = %v, want %v", workers, i, got[i], want[i])
			}
		}
	}
}

func TestMapPreservesJobOrder(t *testing.T) {
	jobs := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	got, err := Map(Options{Workers: 4, Seed: 7}, jobs, func(j string, seed int64) string {
		time.Sleep(time.Duration(rand.Intn(2)) * time.Millisecond)
		return fmt.Sprintf("%s/%d", j, seed)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, j := range jobs {
		want := fmt.Sprintf("%s/%d", j, DeriveSeed(7, i))
		if got[i] != want {
			t.Errorf("result[%d] = %q, want %q", i, got[i], want)
		}
	}
}

func TestStreamEmitsInReplicaOrder(t *testing.T) {
	const n = 40
	var order []int
	var vals []float64
	err := Stream(Options{Workers: 4, Seed: 3}, n, replicaWork, func(replica int, v float64) {
		order = append(order, replica)
		vals = append(vals, v)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != n {
		t.Fatalf("emitted %d of %d", len(order), n)
	}
	for i, r := range order {
		if r != i {
			t.Fatalf("emission %d was replica %d", i, r)
		}
		if want := replicaWork(i, DeriveSeed(3, i)); vals[i] != want {
			t.Fatalf("value[%d] = %v, want %v", i, vals[i], want)
		}
	}
}

func TestProgressMonotonic(t *testing.T) {
	var mu sync.Mutex
	last := 0
	_, err := Run(Options{Workers: 4, Seed: 1, Progress: func(done, total int) {
		mu.Lock()
		defer mu.Unlock()
		if done != last+1 || total != 32 {
			t.Errorf("progress (%d,%d) after %d", done, total, last)
		}
		last = done
	}}, 32, replicaWork)
	if err != nil {
		t.Fatal(err)
	}
	if last != 32 {
		t.Errorf("final progress %d", last)
	}
}

func TestCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ran := 0
	var mu sync.Mutex
	out, err := Run(Options{Workers: 2, Seed: 1, Context: ctx}, 1000, func(replica int, seed int64) float64 {
		mu.Lock()
		ran++
		if ran == 4 {
			cancel()
		}
		mu.Unlock()
		return 1
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(out) != 1000 {
		t.Fatalf("len(out) = %d", len(out))
	}
	mu.Lock()
	if ran >= 1000 {
		t.Errorf("cancellation did not stop the run (ran=%d)", ran)
	}
	mu.Unlock()
}

func TestZeroReplicas(t *testing.T) {
	out, err := Run(Options{}, 0, replicaWork)
	if err != nil || len(out) != 0 {
		t.Fatalf("out=%v err=%v", out, err)
	}
}

func TestStats(t *testing.T) {
	var s Stats
	if s.Mean() != 0 || s.Percentile(0.5) != 0 || s.CDF(1) != 0 || s.N() != 0 {
		t.Error("zero-value Stats not zero")
	}
	s.Add(5, 1, 3)
	if s.N() != 3 || s.Mean() != 3 {
		t.Errorf("N=%d mean=%v", s.N(), s.Mean())
	}
	if s.Percentile(0.5) != 3 || s.Percentile(0) != 1 || s.Percentile(1) != 5 {
		t.Errorf("percentiles wrong: %v %v %v", s.Percentile(0.5), s.Percentile(0), s.Percentile(1))
	}
	if s.CDF(3) != 1.0/3 || s.CDF(100) != 1 {
		t.Errorf("CDF wrong: %v %v", s.CDF(3), s.CDF(100))
	}
	// Adding after a sorted read keeps aggregates correct.
	s.Add(7)
	if s.Mean() != 4 || s.Percentile(1) != 7 {
		t.Errorf("post-sort Add broken: mean=%v max=%v", s.Mean(), s.Percentile(1))
	}
	if Mean([]float64{2, 4}) != 3 || Percentile([]float64{9, 8, 7}, 0.5) != 8 {
		t.Error("one-shot helpers wrong")
	}
}

// TestPercentileDomainClamp is the regression net for the out-of-domain
// panic: Percentile(p) with p outside [0, 1] used to index past the sorted
// slice. NaN and out-of-range p now clamp to the nearest endpoint.
func TestPercentileDomainClamp(t *testing.T) {
	var s Stats
	s.Add(10, 20, 30)
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 10}, {1, 30}, // endpoints stay exact
		{-0.5, 10}, {1.5, 30}, // out-of-domain clamps, no panic
		{math.Inf(-1), 10}, {math.Inf(1), 30},
		{math.NaN(), 10}, // NaN clamps low
	}
	for _, tc := range cases {
		if got := s.Percentile(tc.p); got != tc.want {
			t.Errorf("Percentile(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
	if got := Percentile([]float64{4}, 2); got != 4 {
		t.Errorf("one-shot Percentile(2) = %v, want 4", got)
	}
}
