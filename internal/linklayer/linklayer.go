// Package linklayer implements the link layer entanglement generation
// service of Dahlberg et al. (SIGCOMM'19) that the paper's QNP builds on
// (§3.5): a robust, batched, multiplexed pair-generation service on one
// physical link.
//
// The service contract the QNP needs (§3.5) is honoured exactly:
//
//  1. requests are keyed by a link-unique identifier (Label — the paper's
//     link-label / Purpose ID), delivered with every pair at both ends;
//  2. every pair carries an identifier unique within the request
//     (Correlator — the paper's Entanglement ID);
//  3. every delivery announces which Bell state the pair is in;
//  4. requests specify a minimum fidelity and a rate.
//
// Scheduling follows the paper's evaluation setup: a weighted round-robin
// (implemented as start-time fair queuing over link time) where each
// circuit's share of the link's time is proportional to its requested
// link-pair rate, independent of fidelity — "circuits get an equal share of
// the link's time regardless of fidelity".
package linklayer

import (
	"fmt"
	"math"

	"qnp/internal/device"
	"qnp/internal/hardware"
	"qnp/internal/linalg"
	"qnp/internal/quantum"
	"qnp/internal/sim"
	"qnp/internal/werner"
)

// Label identifies a virtual circuit's reservation on one link (the paper's
// link-label, with the same role as an MPLS label).
type Label string

// Correlator uniquely identifies a link-pair on its link (the paper's
// Entanglement ID / link-pair correlator: both ends can map it to the
// qubits in their local memory).
type Correlator struct {
	Link string
	Seq  uint64
}

func (c Correlator) String() string { return fmt.Sprintf("%s#%d", c.Link, c.Seq) }

// Delivery is handed to both endpoints when a link-pair is ready.
type Delivery struct {
	Label Label
	Corr  Correlator
	Pair  *device.Pair
	// Idx is the heralded Bell state (requirement 3 of §3.5).
	Idx quantum.BellIndex
	// ModelFidelity is the expected fidelity of the produced state at
	// generation time (before decoherence), from the hardware model.
	ModelFidelity float64
}

// Consumer receives pair deliveries at one endpoint.
type Consumer func(Delivery)

type request struct {
	label       Label
	minFidelity float64
	weight      float64 // requested link-pair rate (pairs/s), the WRR weight
	alpha       float64
	prob        float64
	registered  [2]bool
	consumers   [2]Consumer
	// used is the virtual link time consumed, for fair queuing.
	used sim.Duration
	// paceRate, when positive, caps the request's absolute pair rate:
	// generation rounds keep a minimum spacing of 1/paceRate. Zero means
	// share-only scheduling (the default WRR behaviour). Shaped circuits
	// (admission-controlled EER) pace their head-end link this way — a WRR
	// weight only divides link time among competitors and cannot bound a
	// request's absolute rate on an otherwise idle link.
	paceRate    float64
	nextAllowed sim.Time
	// paceSetter is the endpoint index that last set a positive pace (-1:
	// none). The pace dies with its setter: when that side deactivates, the
	// cap is cleared, so a circuit re-established over the same label never
	// inherits a previous tenant's shaping.
	paceSetter int
}

func (r *request) active() bool { return r.registered[0] && r.registered[1] }

type round struct {
	req    *request
	qubits [2]*device.Qubit
	event  sim.Event
	start  sim.Time
	k      int
}

// Stats aggregates per-engine counters.
type Stats struct {
	PairsDelivered uint64
	Attempts       uint64
	RoundsAborted  uint64
}

// Engine drives entanglement generation on one physical link. It is the
// shared physical substrate (emitters, midpoint heralding station) plus the
// link layer protocol instances at both endpoints.
type Engine struct {
	sim     *sim.Simulation
	name    string
	cfg     hardware.LinkConfig
	devs    [2]*device.Device
	reqs    map[Label]*request
	order   []*request // deterministic scheduling order
	current *round
	seq     uint64
	stats   Stats
	// exclusive serialises generation with local quantum operations — set on
	// single-communication-qubit platforms (near-term §5.3), where the
	// electron cannot generate while a gate runs.
	exclusive bool
	// retry wakes the dispatcher when an exclusivity wait expires.
	retry sim.Event
}

// NewEngine creates the generation engine for the link between a and b.
// Both devices are assumed to have the same hardware parameter set, as in
// the paper's evaluation ("assumes all links and nodes are identical").
func NewEngine(s *sim.Simulation, name string, cfg hardware.LinkConfig, a, b *device.Device) *Engine {
	e := &Engine{
		sim:       s,
		name:      name,
		cfg:       cfg,
		devs:      [2]*device.Device{a, b},
		reqs:      make(map[Label]*request),
		exclusive: a.Params().HasCarbon,
	}
	a.OnFree(e.dispatch)
	b.OnFree(e.dispatch)
	return e
}

// Name returns the link name used in correlators.
func (e *Engine) Name() string { return e.name }

// Config returns the physical link configuration.
func (e *Engine) Config() hardware.LinkConfig { return e.cfg }

// Stats returns generation counters.
func (e *Engine) Stats() Stats { return e.stats }

// side maps a node ID to this engine's endpoint index.
func (e *Engine) side(node string) int {
	for i, d := range e.devs {
		if d.ID() == node {
			return i
		}
	}
	panic(fmt.Sprintf("linklayer: node %q not on link %q", node, e.name))
}

// ExpectedPairTime reports the mean generation time for a fidelity on this
// link (exposed for routing).
func (e *Engine) ExpectedPairTime(f float64) (sim.Duration, bool) {
	return e.cfg.ExpectedPairTime(e.devs[0].Params(), f)
}

// Register activates (one side of) a continuous generation request. Pairs
// flow once both endpoints have registered the same label — the engine is
// the physical medium, and a link-pair needs participation from both nodes.
// Register returns an error if the link cannot reach the requested fidelity.
func (e *Engine) Register(node string, label Label, minFidelity, rate float64, c Consumer) error {
	s := e.side(node)
	r, ok := e.reqs[label]
	if !ok {
		alpha, achievable := e.cfg.AlphaForFidelity(e.devs[0].Params(), minFidelity)
		if !achievable {
			return fmt.Errorf("linklayer %s: fidelity %.4f unreachable", e.name, minFidelity)
		}
		r = &request{
			label:       label,
			minFidelity: minFidelity,
			weight:      rate,
			alpha:       alpha,
			prob:        e.cfg.SuccessProb(e.devs[0].Params(), alpha),
			used:        e.minVirtualUsed(rate),
			paceSetter:  -1,
		}
		e.reqs[label] = r
		e.order = append(e.order, r)
	}
	if r.minFidelity != minFidelity {
		return fmt.Errorf("linklayer %s: label %q registered with conflicting fidelity", e.name, label)
	}
	r.registered[s] = true
	r.consumers[s] = c
	e.dispatch()
	return nil
}

// minVirtualUsed gives a joining request the virtual time of the
// least-served active request so it cannot monopolise the link to "catch
// up" on time it never waited for.
func (e *Engine) minVirtualUsed(rate float64) sim.Duration {
	minV := math.Inf(1)
	for _, r := range e.order {
		if !r.active() || r.weight <= 0 {
			continue
		}
		if v := float64(r.used) / r.weight; v < minV {
			minV = v
		}
	}
	if math.IsInf(minV, 1) || rate <= 0 {
		return 0
	}
	return sim.Duration(minV * rate)
}

// UpdateRate changes a request's link-pair rate (weight).
func (e *Engine) UpdateRate(label Label, rate float64) {
	if r, ok := e.reqs[label]; ok {
		if r.weight > 0 && rate > 0 {
			// Preserve the virtual-time position under the new weight.
			r.used = sim.Duration(float64(r.used) / r.weight * rate)
		}
		r.weight = rate
	}
}

// SetPace caps a request's absolute link-pair rate (pairs/s); 0 removes the
// cap. Unlike the WRR weight — a relative share of link time — the pace is
// an absolute ceiling, honoured even when the link is otherwise idle. The
// cap is owned by the setting endpoint (the circuit's head-end) and is
// cleared when that endpoint deactivates.
func (e *Engine) SetPace(node string, label Label, pairsPerSec float64) {
	r, ok := e.reqs[label]
	if !ok {
		return
	}
	r.paceRate = pairsPerSec
	if pairsPerSec <= 0 {
		r.nextAllowed = 0
		r.paceSetter = -1
	} else {
		r.paceSetter = e.side(node)
	}
	e.dispatch()
}

// Pace reports the current absolute rate cap on a label (0 = uncapped or
// unknown label) — an inspection hook for teardown/re-establish tests.
func (e *Engine) Pace(label Label) float64 {
	if r, ok := e.reqs[label]; ok {
		return r.paceRate
	}
	return 0
}

// RequestCount reports how many labels hold state on this engine (active or
// half-registered) — an inspection hook for teardown tests.
func (e *Engine) RequestCount() int { return len(e.reqs) }

// Deactivate stops one side's participation. When the in-flight round
// belongs to a request that lost an endpoint, the round is aborted and its
// qubits are freed. Once both sides have deactivated, the request is
// removed.
func (e *Engine) Deactivate(node string, label Label) {
	r, ok := e.reqs[label]
	if !ok {
		return
	}
	s := e.side(node)
	r.registered[s] = false
	r.consumers[s] = nil
	if s == r.paceSetter {
		// The pace cap dies with the endpoint that set it: a later tenant of
		// this label (a re-established circuit) must not inherit shaping the
		// old head-end configured. The surviving side keeps generating only
		// once both ends re-register, at which point the new head re-asserts
		// its own pace (or none).
		r.paceRate = 0
		r.nextAllowed = 0
		r.paceSetter = -1
	}
	if e.current != nil && e.current.req == r {
		e.abortCurrent()
	}
	if !r.registered[0] && !r.registered[1] {
		delete(e.reqs, label)
		for i, rr := range e.order {
			if rr == r {
				e.order = append(e.order[:i], e.order[i+1:]...)
				break
			}
		}
	}
	e.dispatch()
}

func (e *Engine) abortCurrent() {
	cur := e.current
	e.current = nil
	e.sim.Cancel(cur.event)
	// Attempts made before the abort still dephase stored qubits.
	elapsed := e.sim.Now().Sub(cur.start)
	k := int(elapsed / e.cfg.CycleTime(e.devs[0].Params()))
	if k > 0 {
		for _, d := range e.devs {
			d.ApplyAttemptDephasing(k)
		}
	}
	for i, q := range cur.qubits {
		e.devs[i].Free(q)
	}
	e.stats.RoundsAborted++
}

// dispatch starts a generation round if the engine is idle and some active
// request has memory available at both endpoints. Start-time fair queuing:
// among runnable requests, pick the one with the smallest weight-normalised
// virtual time used.
func (e *Engine) dispatch() {
	if e.current != nil {
		return
	}
	e.sim.Cancel(e.retry)
	e.retry = sim.Event{}
	if e.exclusive {
		// The electron is also the gate qubit: wait out local operations.
		var until sim.Time
		for _, d := range e.devs {
			if bu := d.BusyUntil(); bu > until {
				until = bu
			}
		}
		if until > e.sim.Now() {
			e.retry = e.sim.ScheduleAt(until, e.dispatch)
			return
		}
	}
	if e.devs[0].FreeCommCount(e.name) == 0 || e.devs[1].FreeCommCount(e.name) == 0 {
		// Memory pressure: no request can run until a qubit frees. This is
		// the Fig. 8c regime — pairs parked in memory block the link.
		return
	}
	var best *request
	var bestV float64
	var wake sim.Time
	for _, r := range e.order {
		if !r.active() || r.weight <= 0 {
			continue
		}
		if r.paceRate > 0 && r.nextAllowed > e.sim.Now() {
			// Paced out: remember the earliest time a capped request frees.
			if wake == 0 || r.nextAllowed < wake {
				wake = r.nextAllowed
			}
			continue
		}
		v := float64(r.used) / r.weight
		if best == nil || v < bestV {
			best, bestV = r, v
		}
	}
	if best == nil {
		if wake > 0 {
			e.retry = e.sim.ScheduleAt(wake, e.dispatch)
		}
		return
	}
	q0, ok0 := e.devs[0].AllocComm(e.name)
	if !ok0 {
		return
	}
	q1, ok1 := e.devs[1].AllocComm(e.name)
	if !ok1 {
		e.devs[0].Free(q0)
		return
	}
	k := hardware.SampleAttempts(best.prob, e.sim.Rand())
	dur := e.cfg.CycleTime(e.devs[0].Params()).Scale(float64(k))
	cur := &round{req: best, qubits: [2]*device.Qubit{q0, q1}, start: e.sim.Now(), k: k}
	cur.event = e.sim.Schedule(dur, func() { e.complete(cur) })
	e.current = cur
}

// complete finishes a successful generation round: it charges the request's
// virtual time, applies per-attempt nuclear dephasing to stored qubits at
// both nodes, materialises the pair state, and delivers to both endpoints.
func (e *Engine) complete(cur *round) {
	e.current = nil
	r := cur.req
	r.used += e.sim.Now().Sub(cur.start)
	if r.paceRate > 0 {
		r.nextAllowed = e.sim.Now().Add(sim.DurationFromSeconds(1 / r.paceRate))
	}
	e.stats.Attempts += uint64(cur.k)
	e.stats.PairsDelivered++
	for _, d := range e.devs {
		d.ApplyAttemptDephasing(cur.k)
	}
	model := e.cfg.Model(e.devs[0].Params(), r.alpha)
	var pair *device.Pair
	var idx quantum.BellIndex
	if e.devs[0].Physics() == device.PhysicsWerner {
		// Scalar fast path: the produced state collapses to the model
		// fidelity's Werner equivalent; the herald draw matches GenerateW.
		var w float64
		w, idx = werner.Generate(model.Fidelity(), e.sim.Rand())
		pair = device.NewScalarPair(e.sim.Now(), w, idx, cur.qubits[0], cur.qubits[1])
	} else {
		var rho *linalg.Matrix
		rho, idx = e.cfg.GenerateW(e.devs[0].Workspace(), e.devs[0].Params(), r.alpha, e.sim.Rand())
		pair = device.NewPair(e.sim.Now(), rho, idx, cur.qubits[0], cur.qubits[1])
	}
	corr := Correlator{Link: e.name, Seq: e.seq}
	e.seq++
	d := Delivery{
		Label:         r.label,
		Corr:          corr,
		Pair:          pair,
		Idx:           idx,
		ModelFidelity: model.Fidelity(),
	}
	// Deliver to both ends; consumers may free qubits or trigger swaps,
	// which re-enters dispatch via OnFree — that's fine, we're idle now.
	for s := 0; s < 2; s++ {
		if c := r.consumers[s]; c != nil {
			c(d)
		}
	}
	e.dispatch()
}

// Fabric is the registry of link engines, keyed by canonical link name.
type Fabric struct {
	engines map[string]*Engine
}

// NewFabric returns an empty link registry.
func NewFabric() *Fabric { return &Fabric{engines: make(map[string]*Engine)} }

// LinkName returns the canonical name for the link between two nodes.
func LinkName(a, b string) string {
	if a > b {
		a, b = b, a
	}
	return a + "|" + b
}

// Add registers an engine.
func (f *Fabric) Add(e *Engine) {
	if _, ok := f.engines[e.name]; ok {
		panic(fmt.Sprintf("linklayer: duplicate engine %q", e.name))
	}
	f.engines[e.name] = e
}

// Between returns the engine for the a-b link.
func (f *Fabric) Between(a, b string) *Engine {
	e, ok := f.engines[LinkName(a, b)]
	if !ok {
		panic(fmt.Sprintf("linklayer: no engine for %s-%s", a, b))
	}
	return e
}

// All returns every engine (iteration order unspecified).
func (f *Fabric) All() map[string]*Engine { return f.engines }
