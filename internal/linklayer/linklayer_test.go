package linklayer

import (
	"math"
	"testing"

	"qnp/internal/device"
	"qnp/internal/hardware"
	"qnp/internal/quantum"
	"qnp/internal/sim"
)

type harness struct {
	sim    *sim.Simulation
	a, b   *device.Device
	engine *Engine
}

func newHarness(seed int64, qubitsPerSide int) *harness {
	s := sim.New(seed)
	p := hardware.Simulation()
	a := device.New(s, "a", p)
	b := device.New(s, "b", p)
	name := LinkName("a", "b")
	a.AddCommQubits(name, qubitsPerSide)
	b.AddCommQubits(name, qubitsPerSide)
	return &harness{sim: s, a: a, b: b, engine: NewEngine(s, name, hardware.LabLink(), a, b)}
}

// collect registers consumers at both sides that free qubits immediately,
// recording deliveries.
func (h *harness) collect(label Label, f, rate float64, t *testing.T) (*[]Delivery, *[]Delivery) {
	var da, db []Delivery
	err := h.engine.Register("a", label, f, rate, func(d Delivery) {
		da = append(da, d)
		h.a.Free(d.Pair.Half(d.Pair.LocalSide("a")))
	})
	if err != nil {
		t.Fatalf("register a: %v", err)
	}
	err = h.engine.Register("b", label, f, rate, func(d Delivery) {
		db = append(db, d)
		h.b.Free(d.Pair.Half(d.Pair.LocalSide("b")))
	})
	if err != nil {
		t.Fatalf("register b: %v", err)
	}
	return &da, &db
}

func TestPairsDeliveredToBothEnds(t *testing.T) {
	h := newHarness(1, 2)
	da, db := h.collect("vc1", 0.9, 10, t)
	h.sim.RunFor(2 * sim.Second)
	if len(*da) == 0 {
		t.Fatal("no deliveries")
	}
	if len(*da) != len(*db) {
		t.Fatalf("asymmetric deliveries: %d vs %d", len(*da), len(*db))
	}
	for i := range *da {
		x, y := (*da)[i], (*db)[i]
		if x.Corr != y.Corr || x.Idx != y.Idx || x.Label != y.Label {
			t.Fatal("delivery metadata differs between ends")
		}
		if x.Idx != quantum.PsiPlus && x.Idx != quantum.PsiMinus {
			t.Fatalf("heralded index %v", x.Idx)
		}
		if x.ModelFidelity < 0.9 {
			t.Fatalf("model fidelity %v below request", x.ModelFidelity)
		}
	}
	// Correlators are unique and sequenced.
	seen := map[Correlator]bool{}
	for _, d := range *da {
		if seen[d.Corr] {
			t.Fatal("duplicate correlator")
		}
		seen[d.Corr] = true
		if d.Corr.Link != LinkName("a", "b") {
			t.Fatal("correlator link name wrong")
		}
	}
}

func TestGenerationWaitsForBothSides(t *testing.T) {
	h := newHarness(2, 2)
	var da []Delivery
	if err := h.engine.Register("a", "vc1", 0.9, 10, func(d Delivery) { da = append(da, d) }); err != nil {
		t.Fatal(err)
	}
	h.sim.RunFor(sim.Second)
	if len(da) != 0 {
		t.Fatal("pairs generated with only one side registered")
	}
	if err := h.engine.Register("b", "vc1", 0.9, 10, func(Delivery) {}); err != nil {
		t.Fatal(err)
	}
	h.sim.RunFor(sim.Second)
	if len(da) == 0 {
		t.Fatal("no pairs after both sides registered")
	}
}

func TestGenerationRateMatchesModel(t *testing.T) {
	h := newHarness(3, 2)
	da, _ := h.collect("vc1", 0.95, 10, t)
	const horizon = 20 * sim.Second
	h.sim.RunFor(horizon)
	want, _ := h.engine.ExpectedPairTime(0.95)
	wantCount := float64(horizon) / float64(want)
	got := float64(len(*da))
	if got < wantCount*0.8 || got > wantCount*1.2 {
		t.Errorf("delivered %v pairs in %v, want ≈%.0f", got, horizon, wantCount)
	}
}

// Two circuits with equal LPR weights share the link's *time* equally, so
// the lower-fidelity circuit (faster pairs) delivers more pairs — the
// paper's stated WRR property (i).
func TestFairTimeSharingAcrossFidelities(t *testing.T) {
	h := newHarness(4, 4)
	daHi, _ := h.collect("hi", 0.95, 10, t)
	daLo, _ := h.collect("lo", 0.80, 10, t)
	h.sim.RunFor(30 * sim.Second)
	tHi, _ := h.engine.ExpectedPairTime(0.95)
	tLo, _ := h.engine.ExpectedPairTime(0.80)
	wantRatio := float64(tHi) / float64(tLo) // pairs_lo / pairs_hi if time is split evenly
	gotRatio := float64(len(*daLo)) / float64(len(*daHi))
	if gotRatio < wantRatio*0.7 || gotRatio > wantRatio*1.3 {
		t.Errorf("pair ratio lo/hi = %.2f, want ≈%.2f (equal time share)", gotRatio, wantRatio)
	}
}

// Weighted sharing: a circuit with twice the LPR weight gets twice the link
// time.
func TestWeightedSharing(t *testing.T) {
	h := newHarness(5, 4)
	daA, _ := h.collect("w1", 0.9, 10, t)
	daB, _ := h.collect("w2", 0.9, 20, t)
	h.sim.RunFor(30 * sim.Second)
	ratio := float64(len(*daB)) / float64(len(*daA))
	if ratio < 1.5 || ratio > 2.5 {
		t.Errorf("weighted pair ratio = %.2f, want ≈2", ratio)
	}
}

// When consumers hold on to qubits, generation blocks — the memory-pressure
// behaviour behind the paper's "quantum congestion collapse" — and resumes
// when memory frees.
func TestMemoryPressureBlocksGeneration(t *testing.T) {
	h := newHarness(6, 2)
	var held []Delivery
	reg := func(node string) {
		err := h.engine.Register(node, "vc1", 0.9, 10, func(d Delivery) {
			if node == "a" {
				held = append(held, d)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	reg("a")
	reg("b")
	h.sim.RunFor(10 * sim.Second)
	// Two qubits per side → at most 2 pairs parked.
	if len(held) != 2 {
		t.Fatalf("held deliveries = %d, want 2 (memory-limited)", len(held))
	}
	// Free one pair: exactly one more round can complete.
	h.a.Discard(held[0].Pair)
	h.b.Discard(held[0].Pair)
	h.sim.RunFor(10 * sim.Second)
	if len(held) != 3 {
		t.Errorf("deliveries after freeing = %d, want 3", len(held))
	}
}

func TestDeactivateAbortsRound(t *testing.T) {
	h := newHarness(7, 2)
	da, _ := h.collect("vc1", 0.95, 10, t)
	// Let generation start, then deactivate mid-round.
	h.sim.RunFor(100 * sim.Microsecond)
	h.engine.Deactivate("a", "vc1")
	h.engine.Deactivate("b", "vc1")
	count := len(*da)
	h.sim.RunFor(5 * sim.Second)
	if len(*da) != count {
		t.Errorf("pairs delivered after deactivation: %d -> %d", count, len(*da))
	}
	if h.engine.Stats().RoundsAborted == 0 {
		t.Error("no round aborted")
	}
	// Qubits returned to the pool.
	if h.a.FreeCommCount(h.engine.Name()) != 2 || h.b.FreeCommCount(h.engine.Name()) != 2 {
		t.Error("aborted round leaked qubits")
	}
}

func TestUnreachableFidelityRejected(t *testing.T) {
	h := newHarness(8, 2)
	if err := h.engine.Register("a", "vc1", 0.9999, 10, func(Delivery) {}); err == nil {
		t.Error("unreachable fidelity accepted")
	}
}

func TestConflictingFidelityRejected(t *testing.T) {
	h := newHarness(9, 2)
	if err := h.engine.Register("a", "vc1", 0.9, 10, func(Delivery) {}); err != nil {
		t.Fatal(err)
	}
	if err := h.engine.Register("b", "vc1", 0.8, 10, func(Delivery) {}); err == nil {
		t.Error("conflicting fidelity accepted")
	}
}

func TestUpdateRateRebalances(t *testing.T) {
	h := newHarness(10, 4)
	daA, _ := h.collect("r1", 0.9, 10, t)
	daB, _ := h.collect("r2", 0.9, 10, t)
	h.sim.RunFor(10 * sim.Second)
	// Boost r2 to 3×; from here on it should receive ≈3× the pairs.
	a0, b0 := len(*daA), len(*daB)
	h.engine.UpdateRate("r2", 30)
	h.sim.RunFor(20 * sim.Second)
	dA, dB := len(*daA)-a0, len(*daB)-b0
	ratio := float64(dB) / float64(dA)
	if ratio < 2 || ratio > 4 {
		t.Errorf("post-update ratio = %.2f, want ≈3", ratio)
	}
}

func TestLateJoinerDoesNotStarve(t *testing.T) {
	h := newHarness(11, 4)
	daA, _ := h.collect("old", 0.9, 10, t)
	h.sim.RunFor(10 * sim.Second)
	// A new circuit joins; it must share fairly, not monopolise to catch up.
	daB, _ := h.collect("new", 0.9, 10, t)
	before := len(*daA)
	h.sim.RunFor(10 * sim.Second)
	dA := len(*daA) - before
	dB := len(*daB)
	if dA == 0 {
		t.Fatal("old circuit starved by joiner")
	}
	ratio := float64(dB) / float64(dA)
	if ratio < 0.6 || ratio > 1.6 {
		t.Errorf("joiner/old ratio = %.2f, want ≈1", ratio)
	}
}

func TestFabric(t *testing.T) {
	h := newHarness(12, 2)
	f := NewFabric()
	f.Add(h.engine)
	if f.Between("a", "b") != h.engine || f.Between("b", "a") != h.engine {
		t.Error("Fabric lookup failed")
	}
	if len(f.All()) != 1 {
		t.Error("Fabric.All wrong")
	}
	if LinkName("x", "a") != "a|x" {
		t.Error("LinkName not canonical")
	}
	if h.engine.Config().LengthM != 2 {
		t.Error("Config accessor wrong")
	}
}

func TestDeliveredStateMatchesHerald(t *testing.T) {
	h := newHarness(13, 2)
	da, _ := h.collect("vc1", 0.95, 10, t)
	h.sim.RunFor(2 * sim.Second)
	if len(*da) == 0 {
		t.Fatal("no deliveries")
	}
	for _, d := range *da {
		// Freshly delivered, fidelity should be ≈ the model's.
		f := quantum.Fidelity(d.Pair.StateAt(d.Pair.CreatedAt()), d.Idx)
		if math.Abs(f-d.ModelFidelity) > 1e-9 {
			t.Fatalf("delivered fidelity %v != model %v", f, d.ModelFidelity)
		}
		if d.Pair.TrueIdx() != d.Idx {
			t.Fatal("pair true index differs from heralded index")
		}
	}
}

func TestStatsAccumulate(t *testing.T) {
	h := newHarness(14, 2)
	h.collect("vc1", 0.9, 10, t)
	h.sim.RunFor(5 * sim.Second)
	st := h.engine.Stats()
	if st.PairsDelivered == 0 || st.Attempts < st.PairsDelivered {
		t.Errorf("stats implausible: %+v", st)
	}
}

// TestPaceClearedWhenSetterDeactivates is the pace-residue regression net:
// the absolute rate cap dies with the endpoint that set it, so a later
// tenant of the same label (a re-established circuit) never inherits it.
func TestPaceClearedWhenSetterDeactivates(t *testing.T) {
	h := newHarness(1, 2)
	h.collect("vc1", 0.9, 100, t)
	h.engine.SetPace("a", "vc1", 3)
	if got := h.engine.Pace("vc1"); got != 3 {
		t.Fatalf("pace not set: %v", got)
	}

	// The non-setter side deactivating must NOT clear the cap (the setter
	// still owns the link's shaping).
	h.engine.Deactivate("b", "vc1")
	if got := h.engine.Pace("vc1"); got != 3 {
		t.Fatalf("pace cleared by non-setter deactivation: %v", got)
	}

	// The setter deactivating clears it even though the request object
	// survives with the other side registered.
	if err := h.engine.Register("b", "vc1", 0.9, 100, func(d Delivery) {
		h.b.Free(d.Pair.Half(d.Pair.LocalSide("b")))
	}); err != nil {
		t.Fatal(err)
	}
	h.engine.Deactivate("a", "vc1")
	if got := h.engine.Pace("vc1"); got != 0 {
		t.Fatalf("pace survives its setter's deactivation: %v", got)
	}
	if h.engine.RequestCount() != 1 {
		t.Fatalf("request should survive with one side registered (got %d)", h.engine.RequestCount())
	}

	// Full deactivation removes the request entirely.
	h.engine.Deactivate("b", "vc1")
	if h.engine.RequestCount() != 0 {
		t.Fatalf("request not removed after both sides deactivated")
	}
}

// TestPaceCapsDeliveryRate pins SetPace's ceiling semantics on an otherwise
// idle link.
func TestPaceCapsDeliveryRate(t *testing.T) {
	h := newHarness(1, 2)
	da, _ := h.collect("vc1", 0.9, 1000, t)
	h.engine.SetPace("a", "vc1", 5)
	h.sim.RunFor(2 * sim.Second)
	if n := len(*da); n > 11 {
		t.Fatalf("paced request delivered %d pairs in 2 s (cap 5/s)", n)
	}
}
