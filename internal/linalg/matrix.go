// Package linalg provides dense complex-matrix operations sized for quantum
// state manipulation: density matrices of one to four qubits (2×2 up to
// 16×16), gates, Kraus operators, tensor products and partial traces.
//
// The package is deliberately small and allocation-conscious rather than a
// general numerics library: the quantum engine composes thousands of small
// matrix products per simulated entanglement swap, and everything stays in
// plain []complex128 with row-major layout.
//
// Every allocating operation has a destination-passing twin (MulInto,
// KronInto, AddInto, ScaleInto, ConjTransposeInto, PartialTraceInto) that
// writes into a caller-provided matrix, and Workspace provides a
// size-bucketed pool those destinations come from. The allocating forms are
// thin wrappers over the Into forms, so both produce bit-identical results.
// See Workspace for the ownership rules: who may hold a matrix across calls,
// and when it must be returned to the pool.
package linalg

import (
	"fmt"
	"math"
	"math/cmplx"
	"strings"
)

// Matrix is a dense, row-major complex matrix.
type Matrix struct {
	Rows, Cols int
	Data       []complex128
}

// New returns a zero matrix of the given shape.
func New(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("linalg: invalid shape %d×%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]complex128, rows*cols)}
}

// FromRows builds a matrix from row slices. All rows must have equal length.
func FromRows(rows [][]complex128) *Matrix {
	if len(rows) == 0 {
		panic("linalg: FromRows with no rows")
	}
	m := New(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic("linalg: ragged rows")
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// ColumnVector builds an n×1 matrix from the given amplitudes.
func ColumnVector(v ...complex128) *Matrix {
	m := New(len(v), 1)
	copy(m.Data, v)
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) complex128 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v complex128) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// IsSquare reports whether the matrix is square.
func (m *Matrix) IsSquare() bool { return m.Rows == m.Cols }

// Zero sets every element to zero.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Mul returns a·b.
func Mul(a, b *Matrix) *Matrix {
	return MulInto(New(a.Rows, b.Cols), a, b)
}

// MulInto computes a·b into dst and returns dst. dst must have shape
// a.Rows×b.Cols and must not alias a or b.
func MulInto(dst, a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: Mul shape mismatch %d×%d · %d×%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	mustShape("MulInto", dst, a.Rows, b.Cols)
	mustNotAlias("MulInto", dst, a)
	mustNotAlias("MulInto", dst, b)
	dst.Zero()
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		orow := dst.Data[i*dst.Cols : (i+1)*dst.Cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return dst
}

// MulChain multiplies matrices left to right: MulChain(a,b,c) = a·b·c.
// The result is always a fresh matrix: MulChain(a) returns a clone of a, so
// callers may freely mutate the result without corrupting the argument.
func MulChain(ms ...*Matrix) *Matrix {
	if len(ms) == 0 {
		panic("linalg: MulChain of nothing")
	}
	if len(ms) == 1 {
		return ms[0].Clone()
	}
	out := ms[0]
	for _, m := range ms[1:] {
		out = Mul(out, m)
	}
	return out
}

// Add returns a+b.
func Add(a, b *Matrix) *Matrix {
	return AddInto(New(a.Rows, a.Cols), a, b)
}

// AddInto computes a+b into dst and returns dst. dst may alias a or b.
func AddInto(dst, a, b *Matrix) *Matrix {
	mustSameShape("AddInto", a, b)
	mustShape("AddInto", dst, a.Rows, a.Cols)
	for i := range a.Data {
		dst.Data[i] = a.Data[i] + b.Data[i]
	}
	return dst
}

// Sub returns a-b.
func Sub(a, b *Matrix) *Matrix {
	mustSameShape("Sub", a, b)
	out := New(a.Rows, a.Cols)
	for i := range a.Data {
		out.Data[i] = a.Data[i] - b.Data[i]
	}
	return out
}

// AddInPlace accumulates b into a.
func (m *Matrix) AddInPlace(b *Matrix) {
	mustSameShape("AddInPlace", m, b)
	for i := range m.Data {
		m.Data[i] += b.Data[i]
	}
}

// Scale returns s·m.
func Scale(s complex128, m *Matrix) *Matrix {
	return ScaleInto(New(m.Rows, m.Cols), s, m)
}

// ScaleInto computes s·m into dst and returns dst. dst may alias m.
func ScaleInto(dst *Matrix, s complex128, m *Matrix) *Matrix {
	mustShape("ScaleInto", dst, m.Rows, m.Cols)
	for i, v := range m.Data {
		dst.Data[i] = s * v
	}
	return dst
}

// ScaleInPlace multiplies every element by s.
func (m *Matrix) ScaleInPlace(s complex128) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// Adjoint returns the conjugate transpose m†.
func Adjoint(m *Matrix) *Matrix {
	return ConjTransposeInto(New(m.Cols, m.Rows), m)
}

// ConjTransposeInto computes m† into dst and returns dst. dst must have
// shape m.Cols×m.Rows and must not alias m.
func ConjTransposeInto(dst, m *Matrix) *Matrix {
	mustShape("ConjTransposeInto", dst, m.Cols, m.Rows)
	mustNotAlias("ConjTransposeInto", dst, m)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			dst.Data[j*dst.Cols+i] = cmplx.Conj(m.Data[i*m.Cols+j])
		}
	}
	return dst
}

// Transpose returns mᵀ without conjugation.
func Transpose(m *Matrix) *Matrix {
	out := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Data[j*out.Cols+i] = m.Data[i*m.Cols+j]
		}
	}
	return out
}

// Kron returns the tensor (Kronecker) product a⊗b.
func Kron(a, b *Matrix) *Matrix {
	return KronInto(New(a.Rows*b.Rows, a.Cols*b.Cols), a, b)
}

// KronInto computes a⊗b into dst and returns dst. dst must have shape
// (a.Rows·b.Rows)×(a.Cols·b.Cols) and must not alias a or b.
func KronInto(dst, a, b *Matrix) *Matrix {
	mustShape("KronInto", dst, a.Rows*b.Rows, a.Cols*b.Cols)
	mustNotAlias("KronInto", dst, a)
	mustNotAlias("KronInto", dst, b)
	dst.Zero()
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			av := a.Data[i*a.Cols+j]
			if av == 0 {
				continue
			}
			for k := 0; k < b.Rows; k++ {
				base := (i*b.Rows+k)*dst.Cols + j*b.Cols
				brow := b.Data[k*b.Cols : (k+1)*b.Cols]
				for l, bv := range brow {
					dst.Data[base+l] = av * bv
				}
			}
		}
	}
	return dst
}

// KronChain folds Kron left to right: KronChain(a,b,c) = a⊗b⊗c.
func KronChain(ms ...*Matrix) *Matrix {
	if len(ms) == 0 {
		panic("linalg: KronChain of nothing")
	}
	out := ms[0]
	for _, m := range ms[1:] {
		out = Kron(out, m)
	}
	return out
}

// Trace returns the sum of diagonal elements of a square matrix.
func Trace(m *Matrix) complex128 {
	mustSquare("Trace", m)
	var t complex128
	for i := 0; i < m.Rows; i++ {
		t += m.Data[i*m.Cols+i]
	}
	return t
}

// PartialTrace traces out the subsystems whose indices appear in keep=false
// positions. dims gives the dimension of each subsystem in tensor order;
// keep[i] reports whether subsystem i survives. The input must be square with
// size equal to the product of dims.
func PartialTrace(m *Matrix, dims []int, keep []bool) *Matrix {
	keptDim := 1
	for i, k := range keep {
		if k {
			keptDim *= dims[i]
		}
	}
	return PartialTraceInto(New(keptDim, keptDim), m, dims, keep)
}

// PartialTraceInto computes the partial trace into dst and returns dst. dst
// must be square with size equal to the product of the kept dims and must
// not alias m. See PartialTrace for the semantics of dims and keep.
func PartialTraceInto(dst, m *Matrix, dims []int, keep []bool) *Matrix {
	mustSquare("PartialTraceInto", m)
	if len(dims) != len(keep) {
		panic("linalg: dims/keep length mismatch")
	}
	total := 1
	for _, d := range dims {
		total *= d
	}
	if total != m.Rows {
		panic(fmt.Sprintf("linalg: dims product %d != matrix size %d", total, m.Rows))
	}
	keptDim := 1
	for i, k := range keep {
		if k {
			keptDim *= dims[i]
		}
	}
	mustShape("PartialTraceInto", dst, keptDim, keptDim)
	mustNotAlias("PartialTraceInto", dst, m)
	dst.Zero()
	st := ptState{m: m, out: dst, dims: dims, keep: keep, keptDim: keptDim}
	st.rec(0, 0, 0, 0, 0)
	return dst
}

// ptState carries the partial-trace recursion without a heap-allocated
// closure; the recursion visits all (row, col) pairs of the input and folds
// into the output when the traced-out indices coincide.
type ptState struct {
	m, out  *Matrix
	dims    []int
	keep    []bool
	keptDim int
}

func (st *ptState) rec(pos, rowKept, colKept, rowFull, colFull int) {
	if pos == len(st.dims) {
		st.out.Data[rowKept*st.keptDim+colKept] += st.m.Data[rowFull*st.m.Cols+colFull]
		return
	}
	d := st.dims[pos]
	for a := 0; a < d; a++ {
		for b := 0; b < d; b++ {
			if st.keep[pos] {
				st.rec(pos+1, rowKept*d+a, colKept*d+b, rowFull*d+a, colFull*d+b)
			} else if a == b {
				st.rec(pos+1, rowKept, colKept, rowFull*d+a, colFull*d+b)
			}
		}
	}
}

// OuterProduct returns |v><w| for column vectors v, w.
func OuterProduct(v, w *Matrix) *Matrix {
	if v.Cols != 1 || w.Cols != 1 {
		panic("linalg: OuterProduct needs column vectors")
	}
	out := New(v.Rows, w.Rows)
	for i := 0; i < v.Rows; i++ {
		for j := 0; j < w.Rows; j++ {
			out.Data[i*out.Cols+j] = v.Data[i] * cmplx.Conj(w.Data[j])
		}
	}
	return out
}

// InnerProduct returns <v|w> for column vectors.
func InnerProduct(v, w *Matrix) complex128 {
	if v.Cols != 1 || w.Cols != 1 || v.Rows != w.Rows {
		panic("linalg: InnerProduct shape mismatch")
	}
	var s complex128
	for i := range v.Data {
		s += cmplx.Conj(v.Data[i]) * w.Data[i]
	}
	return s
}

// Expectation returns <v|M|v> for a column vector v and square M.
func Expectation(m, v *Matrix) complex128 {
	return InnerProduct(v, Mul(m, v))
}

// ApproxEqual reports element-wise equality within tol.
func ApproxEqual(a, b *Matrix, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := range a.Data {
		if cmplx.Abs(a.Data[i]-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

// IsHermitian reports whether m = m† within tol.
func IsHermitian(m *Matrix, tol float64) bool {
	if !m.IsSquare() {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		for j := i; j < m.Cols; j++ {
			if cmplx.Abs(m.At(i, j)-cmplx.Conj(m.At(j, i))) > tol {
				return false
			}
		}
	}
	return true
}

// IsUnitary reports whether m·m† = I within tol.
func IsUnitary(m *Matrix, tol float64) bool {
	if !m.IsSquare() {
		return false
	}
	return ApproxEqual(Mul(m, Adjoint(m)), Identity(m.Rows), tol)
}

// MaxAbsDiff returns the largest element-wise |a-b|.
func MaxAbsDiff(a, b *Matrix) float64 {
	mustSameShape("MaxAbsDiff", a, b)
	var max float64
	for i := range a.Data {
		if d := cmplx.Abs(a.Data[i] - b.Data[i]); d > max {
			max = d
		}
	}
	return max
}

// Norm1 returns the entry-wise 1-norm (sum of |elements|); a cheap sanity
// measure used in tests.
func Norm1(m *Matrix) float64 {
	var s float64
	for _, v := range m.Data {
		s += cmplx.Abs(v)
	}
	return s
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			v := m.At(i, j)
			fmt.Fprintf(&b, "%7.4f%+7.4fi ", real(v), imag(v))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// RealDiagonal returns the real parts of the diagonal.
func RealDiagonal(m *Matrix) []float64 {
	mustSquare("RealDiagonal", m)
	d := make([]float64, m.Rows)
	for i := range d {
		d[i] = real(m.At(i, i))
	}
	return d
}

func mustSameShape(op string, a, b *Matrix) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("linalg: %s shape mismatch %d×%d vs %d×%d", op, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}

func mustSquare(op string, m *Matrix) {
	if !m.IsSquare() {
		panic(fmt.Sprintf("linalg: %s needs square matrix, got %d×%d", op, m.Rows, m.Cols))
	}
}

func mustShape(op string, m *Matrix, rows, cols int) {
	if m.Rows != rows || m.Cols != cols {
		panic(fmt.Sprintf("linalg: %s dst shape %d×%d, want %d×%d", op, m.Rows, m.Cols, rows, cols))
	}
}

// mustNotAlias rejects a dst that shares its buffer with an input. Buffers
// come from distinct allocations, so comparing the first element's address
// is sufficient — partial overlap cannot occur.
func mustNotAlias(op string, dst, src *Matrix) {
	if len(dst.Data) > 0 && len(src.Data) > 0 && &dst.Data[0] == &src.Data[0] {
		panic(fmt.Sprintf("linalg: %s dst aliases an input", op))
	}
}

// Chop zeroes elements with magnitude below eps; useful before printing.
func Chop(m *Matrix, eps float64) *Matrix {
	out := m.Clone()
	for i, v := range out.Data {
		re, im := real(v), imag(v)
		if math.Abs(re) < eps {
			re = 0
		}
		if math.Abs(im) < eps {
			im = 0
		}
		out.Data[i] = complex(re, im)
	}
	return out
}
