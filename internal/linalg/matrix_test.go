package linalg

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

const tol = 1e-12

func randMatrix(r *rand.Rand, rows, cols int) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = complex(r.NormFloat64(), r.NormFloat64())
	}
	return m
}

func TestIdentityMul(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 4, 8, 16} {
		m := randMatrix(r, n, n)
		if !ApproxEqual(Mul(Identity(n), m), m, tol) {
			t.Errorf("I·m != m for n=%d", n)
		}
		if !ApproxEqual(Mul(m, Identity(n)), m, tol) {
			t.Errorf("m·I != m for n=%d", n)
		}
	}
}

func TestMulKnown(t *testing.T) {
	a := FromRows([][]complex128{{1, 2}, {3, 4}})
	b := FromRows([][]complex128{{5, 6}, {7, 8}})
	want := FromRows([][]complex128{{19, 22}, {43, 50}})
	if !ApproxEqual(Mul(a, b), want, tol) {
		t.Errorf("Mul known product wrong:\n%v", Mul(a, b))
	}
}

func TestMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Mul with mismatched shapes did not panic")
		}
	}()
	Mul(New(2, 3), New(2, 3))
}

func TestMulChain(t *testing.T) {
	a := FromRows([][]complex128{{0, 1}, {1, 0}}) // X
	if !ApproxEqual(MulChain(a, a, a), a, tol) {
		t.Error("X·X·X != X")
	}
}

func TestAddSubScale(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	a, b := randMatrix(r, 3, 4), randMatrix(r, 3, 4)
	if !ApproxEqual(Sub(Add(a, b), b), a, 1e-10) {
		t.Error("(a+b)-b != a")
	}
	if !ApproxEqual(Scale(2, a), Add(a, a), tol) {
		t.Error("2a != a+a")
	}
	c := a.Clone()
	c.AddInPlace(b)
	if !ApproxEqual(c, Add(a, b), tol) {
		t.Error("AddInPlace != Add")
	}
	d := a.Clone()
	d.ScaleInPlace(3)
	if !ApproxEqual(d, Scale(3, a), tol) {
		t.Error("ScaleInPlace != Scale")
	}
}

func TestAdjoint(t *testing.T) {
	m := FromRows([][]complex128{{complex(1, 2), complex(3, 4)}, {complex(5, 6), complex(7, 8)}})
	ad := Adjoint(m)
	if ad.At(0, 1) != complex(5, -6) {
		t.Errorf("Adjoint(0,1) = %v", ad.At(0, 1))
	}
	if !ApproxEqual(Adjoint(ad), m, tol) {
		t.Error("double adjoint != original")
	}
	tr := Transpose(m)
	if tr.At(0, 1) != complex(5, 6) {
		t.Errorf("Transpose(0,1) = %v", tr.At(0, 1))
	}
}

func TestKronKnown(t *testing.T) {
	x := FromRows([][]complex128{{0, 1}, {1, 0}})
	i2 := Identity(2)
	xi := Kron(x, i2)
	// X⊗I swaps the first qubit: basis |00>↔|10>, |01>↔|11>.
	want := New(4, 4)
	want.Set(0, 2, 1)
	want.Set(1, 3, 1)
	want.Set(2, 0, 1)
	want.Set(3, 1, 1)
	if !ApproxEqual(xi, want, tol) {
		t.Errorf("X⊗I wrong:\n%v", xi)
	}
	if got := KronChain(i2, i2, i2); got.Rows != 8 || !ApproxEqual(got, Identity(8), tol) {
		t.Error("I⊗I⊗I != I8")
	}
}

func TestKronMixedProduct(t *testing.T) {
	// (A⊗B)(C⊗D) = (AC)⊗(BD)
	r := rand.New(rand.NewSource(3))
	a, b, c, d := randMatrix(r, 2, 2), randMatrix(r, 3, 3), randMatrix(r, 2, 2), randMatrix(r, 3, 3)
	lhs := Mul(Kron(a, b), Kron(c, d))
	rhs := Kron(Mul(a, c), Mul(b, d))
	if !ApproxEqual(lhs, rhs, 1e-9) {
		t.Error("Kron mixed-product identity failed")
	}
}

func TestTrace(t *testing.T) {
	m := FromRows([][]complex128{{1, 2}, {3, complex(4, 5)}})
	if got := Trace(m); got != complex(5, 5) {
		t.Errorf("Trace = %v", got)
	}
}

func TestTraceCyclic(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	a, b := randMatrix(r, 4, 4), randMatrix(r, 4, 4)
	if cmplx.Abs(Trace(Mul(a, b))-Trace(Mul(b, a))) > 1e-9 {
		t.Error("Trace(ab) != Trace(ba)")
	}
}

func TestPartialTraceProductState(t *testing.T) {
	// For ρ = ρA⊗ρB, tracing out B must return ρA (and vice versa).
	r := rand.New(rand.NewSource(5))
	ra := randDensity(r, 2)
	rb := randDensity(r, 4)
	joint := Kron(ra, rb)
	gotA := PartialTrace(joint, []int{2, 4}, []bool{true, false})
	if !ApproxEqual(gotA, ra, 1e-9) {
		t.Error("PartialTrace over B != ρA")
	}
	gotB := PartialTrace(joint, []int{2, 4}, []bool{false, true})
	if !ApproxEqual(gotB, rb, 1e-9) {
		t.Error("PartialTrace over A != ρB")
	}
}

func TestPartialTraceBell(t *testing.T) {
	// Tracing one qubit of a Bell state leaves the maximally mixed state.
	phi := ColumnVector(1/math.Sqrt2, 0, 0, 1/math.Sqrt2)
	rho := OuterProduct(phi, phi)
	red := PartialTrace(rho, []int{2, 2}, []bool{true, false})
	want := Scale(0.5, Identity(2))
	if !ApproxEqual(red, want, tol) {
		t.Errorf("reduced Bell state not maximally mixed:\n%v", red)
	}
}

func TestPartialTracePreservesTrace(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	rho := randDensity(r, 8)
	red := PartialTrace(rho, []int{2, 2, 2}, []bool{true, false, true})
	if cmplx.Abs(Trace(red)-Trace(rho)) > 1e-9 {
		t.Error("partial trace changed total trace")
	}
	if red.Rows != 4 {
		t.Errorf("reduced dim = %d, want 4", red.Rows)
	}
}

// randDensity builds a random valid density matrix via ρ = G·G†/Tr.
func randDensity(r *rand.Rand, n int) *Matrix {
	g := randMatrix(r, n, n)
	rho := Mul(g, Adjoint(g))
	rho.ScaleInPlace(1 / Trace(rho))
	return rho
}

func TestOuterInnerProduct(t *testing.T) {
	v := ColumnVector(1, 0)
	w := ColumnVector(0, 1)
	if InnerProduct(v, w) != 0 {
		t.Error("<0|1> != 0")
	}
	if InnerProduct(v, v) != 1 {
		t.Error("<0|0> != 1")
	}
	op := OuterProduct(v, w)
	if op.At(0, 1) != 1 || op.At(0, 0) != 0 {
		t.Errorf("|0><1| wrong:\n%v", op)
	}
	vc := ColumnVector(complex(0, 1), 0)
	if got := InnerProduct(vc, vc); cmplx.Abs(got-1) > tol {
		t.Errorf("<i0|i0> = %v, want 1", got)
	}
	// Expectation of Z in |0> is +1, in |1> is -1.
	z := FromRows([][]complex128{{1, 0}, {0, -1}})
	if got := Expectation(z, v); got != 1 {
		t.Errorf("<0|Z|0> = %v", got)
	}
	if got := Expectation(z, w); got != -1 {
		t.Errorf("<1|Z|1> = %v", got)
	}
}

func TestHermitianUnitaryChecks(t *testing.T) {
	h := FromRows([][]complex128{{1, complex(0, -1)}, {complex(0, 1), 2}})
	if !IsHermitian(h, tol) {
		t.Error("hermitian matrix not recognised")
	}
	x := FromRows([][]complex128{{0, 1}, {1, 0}})
	if !IsUnitary(x, tol) {
		t.Error("X not unitary")
	}
	notU := FromRows([][]complex128{{2, 0}, {0, 1}})
	if IsUnitary(notU, tol) {
		t.Error("non-unitary accepted")
	}
	if IsHermitian(New(2, 3), tol) {
		t.Error("non-square accepted as hermitian")
	}
}

func TestChopAndDiagonal(t *testing.T) {
	m := FromRows([][]complex128{{complex(1, 1e-15), 1e-14}, {0, 0.5}})
	c := Chop(m, 1e-9)
	if c.At(0, 1) != 0 || imag(c.At(0, 0)) != 0 {
		t.Error("Chop left tiny values")
	}
	d := RealDiagonal(m)
	if d[0] != 1 || d[1] != 0.5 {
		t.Errorf("RealDiagonal = %v", d)
	}
}

// Property: (a·b)† = b†·a† for random square matrices.
func TestQuickAdjointProduct(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		a, b := randMatrix(rr, 4, 4), randMatrix(rr, 4, 4)
		return ApproxEqual(Adjoint(Mul(a, b)), Mul(Adjoint(b), Adjoint(a)), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: r}); err != nil {
		t.Error(err)
	}
}

// Property: trace is linear and Kron multiplies traces.
func TestQuickTraceKron(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		a, b := randMatrix(rr, 2, 2), randMatrix(rr, 3, 3)
		return cmplx.Abs(Trace(Kron(a, b))-Trace(a)*Trace(b)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: r}); err != nil {
		t.Error(err)
	}
}

func TestNorm1AndMaxAbsDiff(t *testing.T) {
	a := FromRows([][]complex128{{3, 4}})
	if Norm1(a) != 7 {
		t.Errorf("Norm1 = %v", Norm1(a))
	}
	b := FromRows([][]complex128{{3, 5}})
	if MaxAbsDiff(a, b) != 1 {
		t.Errorf("MaxAbsDiff = %v", MaxAbsDiff(a, b))
	}
}

func TestStringSmoke(t *testing.T) {
	if s := Identity(2).String(); len(s) == 0 {
		t.Error("empty String()")
	}
}
