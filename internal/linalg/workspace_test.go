package linalg

import (
	"testing"

	"qnp/internal/race"
)

func TestWorkspaceRecycles(t *testing.T) {
	ws := NewWorkspace()
	m := ws.Get(4, 4)
	m.Set(0, 0, 3)
	buf := &m.Data[0]
	ws.Put(m)
	if got := ws.Pooled(); got != 1 {
		t.Fatalf("Pooled() = %d, want 1", got)
	}
	//qnetlint:allow wsownership test inspects the recycled buffer and exits; the pool dies with it
	m2 := ws.Get(4, 4)
	if &m2.Data[0] != buf {
		t.Error("Get did not recycle the pooled buffer")
	}
	if m2.At(0, 0) != 0 {
		t.Error("recycled matrix not zeroed")
	}
}

func TestWorkspaceReshapesWithinBucket(t *testing.T) {
	ws := NewWorkspace()
	ws.Put(New(4, 4)) // capacity-16 buffer
	//qnetlint:allow wsownership test asserts the reshaped buffer's contents and exits; the pool dies with it
	v := ws.Get(4, 1) // smaller shape, same bucket
	if v.Rows != 4 || v.Cols != 1 || len(v.Data) != 4 {
		t.Fatalf("Get(4,1) returned %d×%d with %d elements", v.Rows, v.Cols, len(v.Data))
	}
	for i, x := range v.Data {
		if x != 0 {
			t.Fatalf("element %d not zeroed", i)
		}
	}
}

func TestWorkspaceNilIsAllocating(t *testing.T) {
	var ws *Workspace
	m := ws.Get(2, 2)
	if m == nil || m.Rows != 2 {
		t.Fatal("nil workspace Get did not allocate")
	}
	ws.Put(m) // must not panic
	if ws.Pooled() != 0 || ws.Misses() != 0 {
		t.Error("nil workspace reported state")
	}
}

func TestWorkspaceOversizeFallsBack(t *testing.T) {
	ws := NewWorkspace()
	m := ws.Get(32, 32) // beyond the largest bucket
	if m.Rows != 32 {
		t.Fatal("oversize Get failed")
	}
	ws.Put(m)
	if ws.Pooled() != 0 {
		t.Error("oversize matrix was pooled")
	}
}

// TestAllocsWorkspaceSteadyState pins the tentpole contract: a warm
// Get/compute/Put cycle performs zero heap allocations.
func TestAllocsWorkspaceSteadyState(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation gates run with -race off")
	}
	ws := NewWorkspace()
	a := Identity(4)
	b := Identity(4)
	allocs := testing.AllocsPerRun(200, func() {
		m := ws.Get(4, 4)
		MulInto(m, a, b)
		ws.Put(m)
	})
	if allocs != 0 {
		t.Errorf("workspace steady-state allocs/op = %v, want 0", allocs)
	}
}

// TestAllocsIntoOps pins zero allocs/op for the destination-passing linalg
// operations themselves.
func TestAllocsIntoOps(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation gates run with -race off")
	}
	a, b := Identity(4), Identity(4)
	dst16 := New(16, 16)
	dst4 := New(4, 4)
	dims := []int{2, 2, 2, 2}
	keep := []bool{true, false, false, true}
	big := Identity(16)
	for _, tc := range []struct {
		name string
		fn   func()
	}{
		{"MulInto", func() { MulInto(dst4, a, b) }},
		{"KronInto", func() { KronInto(dst16, a, b) }},
		{"AddInto", func() { AddInto(dst4, a, b) }},
		{"ScaleInto", func() { ScaleInto(dst4, 2, a) }},
		{"ConjTransposeInto", func() { ConjTransposeInto(dst4, a) }},
		{"PartialTraceInto", func() { PartialTraceInto(dst4, big, dims, keep) }},
	} {
		if allocs := testing.AllocsPerRun(100, tc.fn); allocs != 0 {
			t.Errorf("%s allocs/op = %v, want 0", tc.name, allocs)
		}
	}
}

func TestIntoOpsMatchAllocating(t *testing.T) {
	a := FromRows([][]complex128{{1, 2i}, {3, complex(4, -1)}})
	b := FromRows([][]complex128{{complex(0.5, 1), 0}, {1, 2}})
	if got, want := MulInto(New(2, 2), a, b), Mul(a, b); !ApproxEqual(got, want, 0) {
		t.Error("MulInto != Mul")
	}
	if got, want := KronInto(New(4, 4), a, b), Kron(a, b); !ApproxEqual(got, want, 0) {
		t.Error("KronInto != Kron")
	}
	if got, want := AddInto(New(2, 2), a, b), Add(a, b); !ApproxEqual(got, want, 0) {
		t.Error("AddInto != Add")
	}
	if got, want := ScaleInto(New(2, 2), 3i, a), Scale(3i, a); !ApproxEqual(got, want, 0) {
		t.Error("ScaleInto != Scale")
	}
	if got, want := ConjTransposeInto(New(2, 2), a), Adjoint(a); !ApproxEqual(got, want, 0) {
		t.Error("ConjTransposeInto != Adjoint")
	}
	big := Kron(a, b)
	dims := []int{2, 2}
	keep := []bool{true, false}
	if got, want := PartialTraceInto(New(2, 2), big, dims, keep), PartialTrace(big, dims, keep); !ApproxEqual(got, want, 0) {
		t.Error("PartialTraceInto != PartialTrace")
	}
}

func TestIntoOpsRejectAliasing(t *testing.T) {
	a := Identity(4)
	for _, tc := range []struct {
		name string
		fn   func()
	}{
		{"MulInto", func() { MulInto(a, a, Identity(4)) }},
		{"KronInto", func() { KronInto(a, Identity(2), a) }},
		{"ConjTransposeInto", func() { ConjTransposeInto(a, a) }},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with aliased dst did not panic", tc.name)
				}
			}()
			tc.fn()
		}()
	}
}

// TestMulChainSingleClones pins the aliasing fix: MulChain with one matrix
// must return a copy, so mutating the result cannot corrupt the argument.
func TestMulChainSingleClones(t *testing.T) {
	a := Identity(2)
	out := MulChain(a)
	if out == a || &out.Data[0] == &a.Data[0] {
		t.Fatal("MulChain(a) aliases its argument")
	}
	out.Set(0, 0, 42)
	if a.At(0, 0) != 1 {
		t.Error("mutating MulChain(a) corrupted a")
	}
	if !ApproxEqual(MulChain(a), a, 0) {
		t.Error("MulChain(a) != a")
	}
}
