package linalg

// Workspace is a size-bucketed pool of matrices for the simulation hot path.
// The quantum engine composes thousands of short-lived 2×2…16×16 matrices per
// entanglement swap; a Workspace lets those ops run allocation-free in steady
// state by recycling both the Matrix headers and their backing buffers.
//
// Ownership rules (the contract every workspace-threaded function follows):
//
//   - Get returns a zeroed matrix owned by the caller. The caller either
//     Puts it back when done, or transfers ownership (e.g. a matrix that
//     becomes a pair's long-lived density matrix is kept and only returned
//     to the pool when it is replaced).
//   - Put hands a matrix back to the pool. After Put the caller must not
//     touch the matrix again: the next Get may hand the same buffer to
//     someone else. Matrices that were never obtained from a Workspace may
//     also be Put (their buffers simply join the pool).
//   - A Workspace is NOT safe for concurrent use. One workspace belongs to
//     one simulation goroutine; parallel replicas each own their own.
//   - A nil *Workspace degrades gracefully: Get allocates fresh matrices and
//     Put is a no-op. Allocating wrapper APIs use this to share one code
//     path with the pooled ones.
//
// Buckets cover the capacities the quantum engine uses: 4 (2×2, 4×1),
// 16 (4×4), 64 (8×8) and 256 (16×16) complex128s. Larger shapes are not
// pooled; Get falls back to a fresh allocation and Put drops them.
type Workspace struct {
	buckets [numBuckets][]*Matrix
	// misses counts Gets served by allocation instead of the pool; a
	// diagnostic for tests and tuning.
	misses uint64
}

const numBuckets = 4

// maxPerBucket bounds pool growth; beyond it Put drops the matrix. Steady
// simulation state needs far fewer matrices than this in flight at once.
const maxPerBucket = 256

var bucketCaps = [numBuckets]int{4, 16, 64, 256}

// NewWorkspace returns an empty workspace.
func NewWorkspace() *Workspace { return &Workspace{} }

// bucketForSize returns the smallest bucket whose capacity fits n elements,
// or -1 when n exceeds every bucket.
func bucketForSize(n int) int {
	for i, c := range bucketCaps {
		if n <= c {
			return i
		}
	}
	return -1
}

// bucketForCap returns the largest bucket whose capacity is at most c, or -1
// when c is below the smallest bucket.
func bucketForCap(c int) int {
	b := -1
	for i, bc := range bucketCaps {
		if bc <= c {
			b = i
		}
	}
	return b
}

// Get returns a zeroed rows×cols matrix, recycling a pooled one when
// available. On a nil workspace it simply allocates.
func (w *Workspace) Get(rows, cols int) *Matrix {
	m := w.GetRaw(rows, cols)
	m.Zero()
	return m
}

// GetRaw is Get without the zero-fill: the returned matrix holds whatever
// the buffer's previous user left behind. Use it ONLY for destinations the
// very next operation fully overwrites — every Into op qualifies (each one
// either zeroes its dst first or writes every element). Accumulators that
// are read before being fully written (AddInPlace targets, Set-then-read
// patterns) must use Get.
func (w *Workspace) GetRaw(rows, cols int) *Matrix {
	if w == nil {
		return New(rows, cols)
	}
	n := rows * cols
	if b := bucketForSize(n); b >= 0 {
		if l := len(w.buckets[b]); l > 0 {
			m := w.buckets[b][l-1]
			w.buckets[b][l-1] = nil
			w.buckets[b] = w.buckets[b][:l-1]
			m.Rows, m.Cols = rows, cols
			m.Data = m.Data[:n]
			return m
		}
		w.misses++
		// Allocate at full bucket capacity so the buffer can serve any
		// shape in its class when it comes back. make() zero-fills, which
		// also covers GetRaw's first use of a fresh buffer.
		m := &Matrix{Rows: rows, Cols: cols, Data: make([]complex128, n, bucketCaps[b])}
		return m
	}
	w.misses++
	return New(rows, cols)
}

// Put returns a matrix to the pool. Put(nil) is a no-op, as is Put on a nil
// workspace. The caller must not use m afterwards.
func (w *Workspace) Put(m *Matrix) {
	if w == nil || m == nil {
		return
	}
	c := cap(m.Data)
	if c > bucketCaps[numBuckets-1] {
		return // oversize buffers are not pooled
	}
	b := bucketForCap(c)
	if b < 0 || len(w.buckets[b]) >= maxPerBucket {
		return
	}
	w.buckets[b] = append(w.buckets[b], m)
}

// Pooled reports how many matrices are currently parked in the pool.
func (w *Workspace) Pooled() int {
	if w == nil {
		return 0
	}
	n := 0
	for _, b := range w.buckets {
		n += len(b)
	}
	return n
}

// Misses reports how many Gets could not be served from the pool (they
// allocated instead). Steady-state hot paths should stop missing once warm.
func (w *Workspace) Misses() uint64 {
	if w == nil {
		return 0
	}
	return w.misses
}
